package repro

import (
	"bytes"
	"math"
	"testing"
)

// fig1 is the paper's running example (Fig. 1a): price in K$, mileage in Kmi.
func fig1() []Item {
	coords := [][2]float64{
		{5, 30}, {7.5, 42}, {2.5, 70}, {7.5, 90},
		{24, 20}, {20, 50}, {26, 70}, {16, 80},
	}
	items := make([]Item, len(coords))
	for i, c := range coords {
		items[i] = Item{ID: i + 1, Point: NewPoint(c[0], c[1])}
	}
	return items
}

func TestFacadeEndToEnd(t *testing.T) {
	products := fig1()
	db := NewDB(2, products)
	if db.Len() != 8 || db.Dims() != 2 {
		t.Fatalf("Len=%d Dims=%d", db.Len(), db.Dims())
	}
	q := NewPoint(8.5, 55)

	// Reverse skyline matches the paper: {c2, c3, c4, c6, c8}.
	rsl := db.ReverseSkyline(products, q)
	want := map[int]bool{2: true, 3: true, 4: true, 6: true, 8: true}
	if len(rsl) != len(want) {
		t.Fatalf("RSL = %v", rsl)
	}
	for _, c := range rsl {
		if !want[c.ID] {
			t.Fatalf("unexpected RSL member %d", c.ID)
		}
		if !db.IsReverseSkyline(c, q) {
			t.Fatalf("IsReverseSkyline(%d) inconsistent", c.ID)
		}
	}

	// Why-not question for c1.
	c1 := products[0]
	if db.IsReverseSkyline(c1, q) {
		t.Fatal("c1 should be a why-not point")
	}
	culprits := db.Explain(c1, q)
	if len(culprits) != 1 || culprits[0].ID != 2 {
		t.Fatalf("Explain = %v, want [p2]", culprits)
	}

	mwp := db.MWP(c1, q, Options{})
	if !db.ValidateWhyNotMove(c1, q, mwp.Best().Point, 1e-9) {
		t.Fatal("MWP best candidate invalid")
	}
	mqp := db.MQP(c1, q, Options{})
	if !db.ValidateQueryMove(c1, mqp.Best().Point, 1e-9) {
		t.Fatal("MQP best candidate invalid")
	}

	sr := db.SafeRegion(q, rsl)
	if !sr.Contains(q) {
		t.Fatal("safe region must contain q")
	}
	mwq := db.MWQ(c1, q, sr, Options{})
	if mwq.Cost > mwp.Best().Cost+1e-12 {
		t.Fatalf("MWQ cost %v > MWP cost %v", mwq.Cost, mwp.Best().Cost)
	}
	if got := db.MWQExact(c1, q, rsl, Options{}); got.Cost != mwq.Cost {
		t.Fatalf("MWQExact cost %v != MWQ cost %v", got.Cost, mwq.Cost)
	}

	// The anti-dominance region of an RSL member contains q; that of the
	// why-not point does not.
	if !db.AntiDominanceRegion(rsl[0]).Contains(q) {
		t.Fatal("anti-DDR of an RSL member must contain q")
	}
	if db.AntiDominanceRegion(c1).Contains(q) {
		t.Fatal("anti-DDR of the why-not point must not contain q")
	}
}

func TestFacadeApprox(t *testing.T) {
	products, err := GenerateDataset("UN", 2000, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(2, products)
	store := db.BuildApproxStore(products, 10)
	q := products[17].Point.Clone()
	q[0] += 1
	rsl := db.ReverseSkyline(products, q)
	if len(rsl) == 0 {
		t.Skip("no reverse skyline for the probe query")
	}
	var whyNot Item
	found := false
	for _, c := range products {
		if db.IsReverseSkyline(c, q) {
			continue
		}
		whyNot, found = c, true
		break
	}
	if !found {
		t.Skip("no why-not point")
	}
	approx := db.MWQApprox(whyNot, q, rsl, store, Options{})
	mwp := db.MWP(whyNot, q, Options{})
	if approx.Cost > mwp.Best().Cost+1e-9 {
		t.Fatalf("Approx-MWQ %v worse than MWP %v", approx.Cost, mwp.Best().Cost)
	}
}

func TestGenerateDatasetKinds(t *testing.T) {
	for _, kind := range []string{"UN", "CO", "AC", "CarDB", "uniform", "correlated", "anti-correlated", "cardb"} {
		items, err := GenerateDataset(kind, 100, 2, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(items) != 100 {
			t.Fatalf("%s: %d items", kind, len(items))
		}
	}
	if _, err := GenerateDataset("nope", 10, 2, 1); err == nil {
		t.Fatal("unknown kind must error")
	} else if err.Error() == "" {
		t.Fatal("error must carry a message")
	}
}

func TestMQPTotalCostFacade(t *testing.T) {
	products := fig1()
	db := NewDB(2, products)
	q := NewPoint(8.5, 55)
	rsl := db.ReverseSkyline(products, q)
	sr := db.SafeRegion(q, rsl)
	mqp := db.MQP(products[0], q, Options{})
	best := math.Inf(1)
	for _, cand := range mqp.Candidates {
		if c := db.MQPTotalCost(q, cand.Point, rsl, sr, Options{}); c < best {
			best = c
		}
	}
	if math.IsInf(best, 1) || best < 0 {
		t.Fatalf("MQP total cost = %v", best)
	}
	// Plain-move MQP cost ignores lost customers, so the total cost with
	// restoration can only be larger or equal for the same candidate.
	cand := mqp.Best()
	total := db.MQPTotalCost(q, cand.Point, rsl, sr, Options{})
	anchorFree := db.Engine().Norm.NormalizedL1(q, cand.Point, nil)
	_ = anchorFree // anchor uses the SR nearest point, so no direct ordering; just sanity-check non-negativity
	if total < 0 {
		t.Fatalf("negative total cost %v", total)
	}
}

func TestFacadeWideSurface(t *testing.T) {
	products := fig1()
	db := NewDB(2, products)
	q := NewPoint(8.5, 55)
	rsl := db.ReverseSkyline(products, q)

	// DynamicSkyline: DSL(q) over the catalogue is {p2, p6} (paper Fig. 2a).
	dsl := db.DynamicSkyline(q)
	if len(dsl) != 2 {
		t.Fatalf("DSL(q) = %v", dsl)
	}

	// BBRS variant agrees with the standard reverse skyline.
	bbrs := db.ReverseSkylineBBRS(q)
	if len(bbrs) != len(rsl) {
		t.Fatalf("BBRS RSL = %d, want %d", len(bbrs), len(rsl))
	}

	// Safe-region truncation and expansion helpers.
	sr := db.SafeRegion(q, rsl)
	limits := Rect{Lo: NewPoint(8, 50), Hi: NewPoint(12, 60)}
	trunc := TruncateSafeRegion(sr, limits)
	for _, r := range trunc {
		if !limits.ContainsRect(r) {
			t.Fatalf("truncated rect %v escapes limits", r)
		}
	}
	exp := ExpandSafeRegion(limits)
	if len(exp) != 1 {
		t.Fatalf("expanded region = %v", exp)
	}
	if lost := db.LostCustomers(NewPoint(26, 20), rsl); len(lost) == 0 {
		t.Fatal("drastic move should lose customers")
	}

	// Batch API matches singles.
	c1, c7 := products[0], products[6]
	batch := db.MWQBatch([]Item{c1, c7}, q, rsl, Options{})
	if len(batch) != 2 {
		t.Fatalf("batch = %d results", len(batch))
	}
	parallel := db.MWQBatchParallel([]Item{c1, c7}, q, sr, Options{}, 2)
	for i := range batch {
		if batch[i].Cost != parallel[i].Cost || batch[i].Case != parallel[i].Case {
			t.Fatalf("batch/parallel diverge at %d", i)
		}
	}

	// Store build (parallel), save, reload via the facade.
	store := db.BuildApproxStoreParallel(rsl, 5, 2)
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadApproxStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != store.Len() {
		t.Fatalf("store round trip: %d vs %d", back.Len(), store.Len())
	}
	res := db.MWQApprox(c1, q, rsl, back, Options{})
	mwp := db.MWP(c1, q, Options{})
	if res.Cost > mwp.Best().Cost+1e-12 {
		t.Fatalf("facade Approx-MWQ %v worse than MWP %v", res.Cost, mwp.Best().Cost)
	}

	// Engine escape hatch exists and shares the DB.
	if db.Engine().DB.Len() != db.Len() {
		t.Fatal("Engine() must expose the same database")
	}
}
