package repro

// Benchmarks: one per table and figure of the paper's evaluation (§VI), plus
// component micro-benchmarks for the substrates. The experiment benchmarks
// run the same harness as cmd/experiments on bench-sized datasets (the full
// paper-scale sweep is `go run ./cmd/experiments`); what testing.B measures
// here is the per-query cost of regenerating one row of the corresponding
// table or one point of the corresponding figure.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/rskyline"
	"repro/internal/rtree"
	"repro/internal/skyline"
	"repro/internal/whynot"
)

const (
	benchSize = 20000
	benchSeed = 2013 // ICDE 2013
)

var benchTargets = []int{1, 2, 3, 4, 5, 6, 7, 8}

// suiteCache builds each experiment suite once per process.
var suiteCache = struct {
	sync.Mutex
	m map[string]*experiments.Suite
}{m: map[string]*experiments.Suite{}}

func benchSuite(b *testing.B, kind datagen.Kind) *experiments.Suite {
	b.Helper()
	suiteCache.Lock()
	defer suiteCache.Unlock()
	key := kind.String()
	if s, ok := suiteCache.m[key]; ok {
		return s
	}
	s := experiments.NewSuite(kind, benchSize, benchTargets, benchSeed)
	if len(s.Cases) == 0 {
		b.Fatalf("no query cases for %v", kind)
	}
	suiteCache.m[key] = s
	return s
}

var storeCache = struct {
	sync.Mutex
	m map[string]*whynot.ApproxStore
}{m: map[string]*whynot.ApproxStore{}}

func benchStore(b *testing.B, s *experiments.Suite, k int) *whynot.ApproxStore {
	b.Helper()
	storeCache.Lock()
	defer storeCache.Unlock()
	if st, ok := storeCache.m[s.Name]; ok {
		return st
	}
	st := s.BuildStore(k, false)
	storeCache.m[s.Name] = st
	return st
}

// quality benchmarks: Tables III (CarDB) and IV (UN/CO/AC).

func benchmarkQuality(b *testing.B, kind datagen.Kind) {
	s := benchSuite(b, kind)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.RunQuality(nil)
		if bad := experiments.ShapeChecks(rows); len(bad) != 0 {
			b.Fatalf("shape violations: %v", bad)
		}
	}
}

func BenchmarkTable3CarDBQuality(b *testing.B)      { benchmarkQuality(b, datagen.CarDB) }
func BenchmarkTable4UniformQuality(b *testing.B)    { benchmarkQuality(b, datagen.Uniform) }
func BenchmarkTable4CorrelatedQuality(b *testing.B) { benchmarkQuality(b, datagen.Correlated) }
func BenchmarkTable4AntiCorrQuality(b *testing.B)   { benchmarkQuality(b, datagen.AntiCorrelated) }

// Tables V/VI: the approximate method against the exact ones.

func benchmarkApproxQuality(b *testing.B, kind datagen.Kind, k int) {
	s := benchSuite(b, kind)
	store := benchStore(b, s, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.RunQuality(store)
		if bad := experiments.ShapeChecks(rows); len(bad) != 0 {
			b.Fatalf("shape violations: %v", bad)
		}
	}
}

func BenchmarkTable5CarDBApprox(b *testing.B)   { benchmarkApproxQuality(b, datagen.CarDB, 10) }
func BenchmarkTable6UniformApprox(b *testing.B) { benchmarkApproxQuality(b, datagen.Uniform, 10) }

// Fig. 14: safe-region area per reverse-skyline size.

func BenchmarkFig14SafeRegionArea(b *testing.B) {
	s := benchSuite(b, datagen.CarDB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.RunSafeRegionArea(); len(rows) == 0 {
			b.Fatal("no area rows")
		}
	}
}

// Fig. 15: per-method execution time. Each method gets its own benchmark so
// that -bench output shows the same series as the figure.

func benchCase(b *testing.B, s *experiments.Suite) (e *whynot.Engine, qc0 int) {
	b.Helper()
	if len(s.Cases) == 0 {
		b.Fatal("no cases")
	}
	return s.Engine, len(s.Cases) - 1 // the largest-RSL case
}

func BenchmarkFig15MWP(b *testing.B) {
	s := benchSuite(b, datagen.CarDB)
	e, i := benchCase(b, s)
	qc := s.Cases[i]
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.MWP(qc.WhyNot, qc.Q, whynot.Options{})
	}
}

func BenchmarkFig15MQP(b *testing.B) {
	s := benchSuite(b, datagen.CarDB)
	e, i := benchCase(b, s)
	qc := s.Cases[i]
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.MQP(qc.WhyNot, qc.Q, whynot.Options{})
	}
}

func BenchmarkFig15SafeRegion(b *testing.B) {
	s := benchSuite(b, datagen.CarDB)
	e, i := benchCase(b, s)
	qc := s.Cases[i]
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.SafeRegion(qc.Q, qc.RSL)
	}
}

func BenchmarkFig15MWQ(b *testing.B) {
	s := benchSuite(b, datagen.CarDB)
	e, i := benchCase(b, s)
	qc := s.Cases[i]
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.MWQExact(qc.WhyNot, qc.Q, qc.RSL, whynot.Options{})
	}
}

// Fig. 17: the approximate pipeline at query time (precomputation excluded,
// as in the paper — the store is built offline).

func BenchmarkFig17ApproxMWQ(b *testing.B) {
	s := benchSuite(b, datagen.CarDB)
	store := benchStore(b, s, 10)
	e, i := benchCase(b, s)
	qc := s.Cases[i]
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.MWQApprox(qc.WhyNot, qc.Q, qc.RSL, store, whynot.Options{})
	}
}

// Substrate micro-benchmarks.

func benchItems(n int) []Item {
	return datagen.Generate(datagen.Uniform, n, 2, 99)
}

func BenchmarkRTreeBulkLoad(b *testing.B) {
	items := benchItems(benchSize)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		rtree.BulkLoad(2, items, rtree.Config{})
	}
}

func BenchmarkRTreeInsert(b *testing.B) {
	items := benchItems(benchSize)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		t := rtree.New(2, rtree.Config{})
		for _, it := range items[:5000] {
			t.Insert(it)
		}
	}
}

func BenchmarkWindowExistenceQuery(b *testing.B) {
	items := benchItems(benchSize)
	db := rskyline.NewDB(2, items, rtree.Config{})
	rng := rand.New(rand.NewSource(1))
	q := NewPoint(500, 500)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c := items[rng.Intn(len(items))]
		db.WindowExists(c.Point, q, c.ID)
	}
}

func BenchmarkDynamicSkylineBBS(b *testing.B) {
	items := benchItems(benchSize)
	db := rskyline.NewDB(2, items, rtree.Config{})
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		db.DynamicSkyline(NewPoint(500, 500))
	}
}

func BenchmarkReverseSkylineFiltered(b *testing.B) {
	items := benchItems(benchSize)
	db := rskyline.NewDB(2, items, rtree.Config{})
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		db.ReverseSkylineFiltered(items, NewPoint(500, 500))
	}
}

func BenchmarkReverseSkylineUnfiltered(b *testing.B) {
	items := benchItems(5000) // quadratic in effect; keep it smaller
	db := rskyline.NewDB(2, items, rtree.Config{})
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		db.ReverseSkyline(items, NewPoint(500, 500))
	}
}

func BenchmarkStaticSkylineAlgorithms(b *testing.B) {
	items := benchItems(benchSize)
	tr := rtree.BulkLoad(2, items, rtree.Config{})
	b.Run("BNL", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			skyline.BNL(items)
		}
	})
	b.Run("SFS", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			skyline.SFS(items)
		}
	})
	b.Run("DC", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			skyline.DC(items)
		}
	})
	b.Run("BBS", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			skyline.BBS(tr)
		}
	})
}

// Parallel-executor benchmarks on the CarDB-50K workload (the JSON smoke run
// with a fixed configuration is `make bench-smoke` / cmd/parallelbench).

var carDB50K = struct {
	sync.Once
	items []Item
	q     Point
	rsl   []Item
}{}

// benchCarDB50K lazily builds the CarDB-50K dataset plus a product-anchored
// query whose monochromatic reverse skyline is large enough for safe-region
// work to dominate, mirroring the paper's timing figures.
func benchCarDB50K(b *testing.B) ([]Item, Point, []Item) {
	b.Helper()
	carDB50K.Do(func() {
		items := datagen.Generate(datagen.CarDB, 50_000, 2, benchSeed)
		db := rskyline.NewDB(2, items, rtree.Config{})
		rng := rand.New(rand.NewSource(benchSeed + 1))
		for tries := 0; tries < 500; tries++ {
			p := items[rng.Intn(len(items))]
			q := append(Point{}, p.Point...)
			for j := range q {
				q[j] *= 1.01
			}
			if rsl := db.ReverseSkylineBBRS(q); len(rsl) >= 16 {
				carDB50K.items, carDB50K.q, carDB50K.rsl = items, q, rsl[:16]
				return
			}
		}
	})
	if carDB50K.items == nil {
		b.Fatal("no suitable CarDB-50K query found")
	}
	return carDB50K.items, carDB50K.q, carDB50K.rsl
}

func BenchmarkReverseSkylineParallel(b *testing.B) {
	items, q, _ := benchCarDB50K(b)
	cts := items[:5000]
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			db := NewDBWithOptions(2, items, DBOptions{Parallelism: w})
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				db.ReverseSkyline(cts, q)
			}
		})
	}
}

func BenchmarkSafeRegionParallel(b *testing.B) {
	items, q, rsl := benchCarDB50K(b)
	for _, cfg := range []struct {
		name string
		opts DBOptions
	}{
		{"sequential", DBOptions{}},
		{"workers=4", DBOptions{Parallelism: 4}},
		{"workers=4+cache", DBOptions{Parallelism: 4, CacheSize: 4096}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db := NewDBWithOptions(2, items, cfg.opts)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				db.SafeRegion(q, rsl)
			}
		})
	}
}

func BenchmarkApproxStoreBuild(b *testing.B) {
	items := benchItems(2000)
	db := rskyline.NewDB(2, items, rtree.Config{})
	e := whynot.NewEngine(db, true)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.BuildApproxStore(items[:200], 10, 0)
	}
}
