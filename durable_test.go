package repro

import (
	"errors"
	"testing"
)

func durableOpts(dir string) DBOptions {
	return DBOptions{Durability: &DurabilityOptions{Dir: dir, Policy: SyncNever}}
}

func TestOpenDurableSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	base := []Item{
		{ID: 0, Point: NewPoint(1, 1)},
		{ID: 1, Point: NewPoint(2, 2)},
	}
	db, rec, err := OpenDurable(2, base, durableOpts(dir))
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	if rec.LastSeq != 0 || db.Len() != 2 {
		t.Fatalf("fresh open: LastSeq=%d Len=%d, want 0/2", rec.LastSeq, db.Len())
	}
	if _, err := db.InsertDurable(Item{ID: 2, Point: NewPoint(3, 3)}); err != nil {
		t.Fatalf("InsertDurable: %v", err)
	}
	if _, err := db.DeleteDurable(base[0]); err != nil {
		t.Fatalf("DeleteDurable: %v", err)
	}
	if _, err := db.InsertDurable(Item{ID: 1, Point: NewPoint(9, 9)}); err == nil {
		t.Fatal("duplicate InsertDurable accepted")
	} else if dup := new(DuplicateIDError); !errors.As(err, &dup) {
		t.Fatalf("duplicate insert error = %T, want *DuplicateIDError", err)
	}
	if _, err := db.DeleteDurable(Item{ID: 7, Point: NewPoint(0, 0)}); err == nil {
		t.Fatal("absent DeleteDurable accepted")
	}
	q := db.ReverseSkylineBBRS(NewPoint(2.5, 2.5))
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, rec2, err := OpenDurable(2, base, durableOpts(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if rec2.LastSeq != 2 {
		t.Fatalf("recovered LastSeq = %d, want 2", rec2.LastSeq)
	}
	items := db2.DurableItems()
	if len(items) != 2 || items[0].ID != 1 || items[1].ID != 2 {
		t.Fatalf("recovered items = %v, want IDs 1 and 2", items)
	}
	q2 := db2.ReverseSkylineBBRS(NewPoint(2.5, 2.5))
	if len(q) != len(q2) {
		t.Fatalf("query answer changed across restart: %v vs %v", q, q2)
	}
	for i := range q {
		if q[i].ID != q2[i].ID || !q[i].Point.Equal(q2[i].Point) {
			t.Fatalf("query answer changed across restart: %v vs %v", q, q2)
		}
	}
}

func TestCheckpointShortensRecovery(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(2, nil, durableOpts(dir))
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.InsertDurable(Item{ID: i, Point: NewPoint(float64(i), float64(i))}); err != nil {
			t.Fatalf("InsertDurable: %v", err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2, rec, err := OpenDurable(2, nil, durableOpts(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if !rec.HaveSnapshot || rec.SnapshotSeq != 10 || len(rec.Tail) != 0 {
		t.Fatalf("recovery = %+v, want snapshot at 10 with empty tail", rec)
	}
	if db2.Len() != 10 {
		t.Fatalf("Len = %d, want 10", db2.Len())
	}
}

func TestDurableGuards(t *testing.T) {
	mem := NewDB(2, []Item{{ID: 1, Point: NewPoint(1, 1)}})
	if _, err := mem.InsertDurable(Item{ID: 2, Point: NewPoint(2, 2)}); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("InsertDurable on in-memory DB = %v, want ErrNotDurable", err)
	}
	if err := mem.Close(); err != nil {
		t.Fatalf("Close on in-memory DB = %v, want nil", err)
	}

	db, _, err := OpenDurable(2, nil, durableOpts(t.TempDir()))
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer db.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("plain Insert on durable DB did not panic")
			}
		}()
		db.Insert(Item{ID: 1, Point: NewPoint(1, 1)})
	}()
}

func TestDeleteDurableRefusesLastItem(t *testing.T) {
	dir := t.TempDir()
	base := []Item{
		{ID: 1, Point: NewPoint(1, 1)},
		{ID: 2, Point: NewPoint(2, 2)},
	}
	db, _, err := OpenDurable(2, base, durableOpts(dir))
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer db.Close()
	if _, err := db.DeleteDurable(base[0]); err != nil {
		t.Fatalf("DeleteDurable with two items left: %v", err)
	}
	if _, err := db.DeleteDurable(base[1]); !errors.Is(err, ErrLastItem) {
		t.Fatalf("DeleteDurable of last item = %v, want ErrLastItem", err)
	}
	// The refusal must leave no durable side effect: the item is still
	// present, queryable and deletable once company returns.
	if got := db.Len(); got != 1 {
		t.Fatalf("Len after refused delete = %d, want 1", got)
	}
	if _, err := db.InsertDurable(Item{ID: 3, Point: NewPoint(3, 3)}); err != nil {
		t.Fatalf("InsertDurable after refusal: %v", err)
	}
	if _, err := db.DeleteDurable(base[1]); err != nil {
		t.Fatalf("DeleteDurable once no longer last: %v", err)
	}
}
