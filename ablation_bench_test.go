package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// approximate-store sampling constant k, the R*-tree page size, the
// global-skyline candidate filter, and rectangle-set pruning inside the
// safe-region intersection.

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/region"
	"repro/internal/rskyline"
	"repro/internal/rtree"
	"repro/internal/whynot"
)

// Ablation 1: Approx-MWQ cost/time as k grows (paper: k chosen empirically;
// larger k = bigger store, tighter safe region, cheaper answers).
func BenchmarkAblationApproxK(b *testing.B) {
	s := benchSuite(b, datagen.CarDB)
	for _, k := range []int{2, 5, 10, 20, 40} {
		store := s.Engine.BuildApproxStoreParallel(rslCustomers(s), k, 0, 0)
		b.Run(benchName("k", k), func(b *testing.B) {
			e := s.Engine
			qc := s.Cases[len(s.Cases)-1]
			for n := 0; n < b.N; n++ {
				e.MWQApprox(qc.WhyNot, qc.Q, qc.RSL, store, whynot.Options{})
			}
		})
	}
}

// rslCustomers collects the distinct reverse-skyline customers across the
// suite's workload — the set a real deployment would precompute for.
func rslCustomers(s *experiments.Suite) []Item {
	seen := map[int]bool{}
	var out []Item
	for _, qc := range s.Cases {
		for _, c := range qc.RSL {
			if !seen[c.ID] {
				seen[c.ID] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// Ablation 2: window-query throughput vs R*-tree page size (the paper fixes
// 1536 bytes; this shows the sensitivity).
func BenchmarkAblationPageSize(b *testing.B) {
	items := benchItems(benchSize)
	q := NewPoint(500, 500)
	for _, page := range []int{512, 1536, 4096, 16384} {
		db := rskyline.NewDB(2, items, rtree.Config{PageSize: page})
		b.Run(benchName("page", page), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				c := items[n%len(items)]
				db.WindowExists(c.Point, q, c.ID)
			}
		})
	}
}

// Ablation 3: reverse-skyline computation with and without the
// global-skyline candidate filter, plus the index-based BBRS traversal.
func BenchmarkAblationRSLFilter(b *testing.B) {
	items := benchItems(benchSize)
	db := rskyline.NewDB(2, items, rtree.Config{})
	q := NewPoint(500, 500)
	b.Run("unfiltered", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			db.ReverseSkyline(items, q)
		}
	})
	b.Run("global-filter", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			db.ReverseSkylineMono(q)
		}
	})
	b.Run("bbrs-index", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			db.ReverseSkylineBBRS(q)
		}
	})
}

// Ablation 4: the containment prune inside rectangle-set intersection. The
// safe-region construction relies on it to keep intermediate sets small.
func BenchmarkAblationRegionPrune(b *testing.B) {
	s := benchSuite(b, datagen.CarDB)
	qc := s.Cases[len(s.Cases)-1]
	// Collect the per-customer anti-DDRs once.
	var parts []region.Set
	for _, c := range qc.RSL {
		parts = append(parts, s.Engine.AntiDDROf(c))
	}
	b.Run("with-prune", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			acc := parts[0]
			for _, p := range parts[1:] {
				acc = acc.IntersectSet(p) // prunes internally
			}
		}
	})
	b.Run("prune-only-at-end", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			acc := parts[0]
			for _, p := range parts[1:] {
				var raw region.Set
				for _, x := range acc {
					for _, y := range p {
						if r, ok := x.Intersect(y); ok {
							raw = append(raw, r)
						}
					}
				}
				acc = raw
			}
			_ = acc.Prune()
		}
	})
}

// Ablation 5: serial vs parallel approximate-store precomputation.
func BenchmarkAblationStoreBuild(b *testing.B) {
	s := benchSuite(b, datagen.CarDB)
	customers := rslCustomers(s)
	b.Run("serial", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			s.Engine.BuildApproxStore(customers, 10, 0)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			s.Engine.BuildApproxStoreParallel(customers, 10, 0, 0)
		}
	})
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Ablation 6: index substrate — R*-tree vs uniform grid for the window
// existence test, on uniform (grid-friendly) and CarDB (skewed) data.
func BenchmarkAblationIndexSubstrate(b *testing.B) {
	for _, kind := range []datagen.Kind{datagen.Uniform, datagen.CarDB} {
		items := datagen.Generate(kind, benchSize, 2, 99)
		db := rskyline.NewDB(2, items, rtree.Config{})
		g := grid.New(2, items, 128)
		b.Run(kind.String()+"/rtree", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				c := items[n%len(items)]
				q := items[(n*7+1)%len(items)]
				db.WindowExists(c.Point, q.Point, c.ID)
			}
		})
		b.Run(kind.String()+"/grid", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				c := items[n%len(items)]
				q := items[(n*7+1)%len(items)]
				g.WindowExists(c.Point, q.Point, c.ID)
			}
		})
	}
}
