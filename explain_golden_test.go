package repro

import (
	"context"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs/explain"
)

// TestExplainPlanGoldenWorkedExample pins the EXPLAIN plan of the paper's
// worked example (q = (8.5, 55), customer 1 at (5, 30), Fig. 1a): the phase
// tree, pruning rules, candidate in/out counts and prune ratios, per-level
// R-tree accesses, and the cost-counter deltas. The node-access and
// dominance-test numbers of the culprit plan are the oracle-verified counts
// of TestExplainCostMatchesOracle (1 node access, 1 leaf scan, 1 dominance
// test, 1 window query); the MWQ plan pins the full Algorithm 3 + 4
// pipeline. StableString drops every timing field, so the rendering is
// byte-stable across machines.
func TestExplainPlanGoldenWorkedExample(t *testing.T) {
	items := fig1()
	db := NewDB(2, items)
	q := NewPoint(8.5, 55)
	ct := items[0] // customer 1 at (5, 30)

	t.Run("culprit", func(t *testing.T) {
		ctx, finish := db.StartExplain(context.Background(), "explain")
		culprits, err := db.ExplainContext(ctx, ct, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(culprits) != 1 || culprits[0].ID != 2 {
			t.Fatalf("culprits = %v, want exactly product 2", culprits)
		}
		plan := finish("")
		const want = `plan explain dims=2 fp=04b9ed0960145f19
  explain acc=1 leaf=1 levels=[L0:1] dt=1 wq=1 cand=0 pruned=0
    explain.window rule=dsl-window out=1 acc=1 leaf=1 levels=[L0:1] dt=1 wq=1 cand=0 pruned=0
`
		if got := plan.StableString(); got != want {
			t.Errorf("culprit plan drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
		}
		// Cross-check the pinned numbers against the brute-force oracle the
		// flat-counter golden test uses.
		if oracle := oracleWindowDominanceTests(items, ct, q); plan.Root.Cost.DominanceTests != oracle {
			t.Errorf("plan dominance tests = %d, oracle says %d", plan.Root.Cost.DominanceTests, oracle)
		}
	})

	t.Run("mwq", func(t *testing.T) {
		rsl := db.ReverseSkyline(items, q)
		if len(rsl) != 5 {
			t.Fatalf("|RSL(q)| = %d, want 5 (worked example broke)", len(rsl))
		}
		res, plan, err := db.MWQExactExplain(context.Background(), ct, q, rsl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Case != 2 {
			t.Fatalf("case = C%d, want C2 (safe region cannot reach customer 1)", res.Case)
		}
		const want = `plan mwq dims=2 rung=exact fp=5f968168f11c7ae0
  mwq acc=9 leaf=9 levels=[L0:9] rtree_pruned=24 dt=37 wq=3 cand=5 pruned=6
    saferegion.exact rule=safe-region in=5 out=2 prune=60.0% acc=5 leaf=5 levels=[L0:5] rtree_pruned=19 dt=19 wq=0 cand=0 pruned=0
    mwq acc=4 leaf=4 levels=[L0:4] rtree_pruned=5 dt=18 wq=3 cand=5 pruned=6
      mwq.overlap rule=safe-region in=2 out=0 prune=100.0% acc=1 leaf=1 levels=[L0:1] rtree_pruned=5 dt=1 wq=0 cand=0 pruned=0
      mwq.corners rule=midpoint in=8 out=2 prune=75.0% acc=2 leaf=2 levels=[L0:2] dt=16 wq=2 cand=5 pruned=6
`
		if got := plan.StableString(); got != want {
			t.Errorf("mwq plan drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
		}
		// The timed rendering of the same plan carries estimates and deltas.
		timed := plan.String()
		for _, frag := range []string{"est=", "act=", "total="} {
			if !strings.Contains(timed, frag) {
				t.Errorf("timed rendering missing %q:\n%s", frag, timed)
			}
		}
	})
}

// TestExplainFingerprintFeedsStore: a profiled query lands in the DB's
// fingerprint store under a stable fingerprint, and repeating the same query
// shape accumulates into the same class.
func TestExplainFingerprintFeedsStore(t *testing.T) {
	items := fig1()
	db := NewDB(2, items)
	q := NewPoint(8.5, 55)
	rsl := db.ReverseSkyline(items, q)

	var fp string
	for i := 0; i < 3; i++ {
		_, plan, err := db.MWQExactExplain(context.Background(), items[0], q, rsl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fp == "" {
			fp = plan.Fingerprint
		} else if plan.Fingerprint != fp {
			t.Fatalf("fingerprint changed across identical queries: %s vs %s", plan.Fingerprint, fp)
		}
	}
	classes := db.Fingerprints()
	if len(classes) != 1 {
		t.Fatalf("classes = %d, want 1", len(classes))
	}
	c := classes[0]
	if c.Fingerprint != fp || c.Count != 3 || c.Op != "mwq" || c.Rung != "exact" {
		t.Fatalf("class = %+v, want fp=%s count=3 op=mwq rung=exact", c, fp)
	}
	if db.FingerprintDrift() != 0 {
		t.Fatalf("FingerprintDrift = %d on a healthy store", db.FingerprintDrift())
	}
}

// TestExplainHooksDisabledAllocFree pins the zero-alloc contract of the
// disabled path at the repro level: a context without StartExplain makes
// every instrumentation hook a nil no-op that allocates nothing.
func TestExplainHooksDisabledAllocFree(t *testing.T) {
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() {
		eb := explain.From(ctx)
		sp := eb.Start("phase", explain.RuleDSLWindow)
		sp.SetIn(3)
		sp.SetOut(1)
		sp.End()
		_ = eb.Finish("exact")
	}); allocs != 0 {
		t.Errorf("disabled explain hook path allocates %v per op, want 0", allocs)
	}
}

// explainOverheadWorkload runs the MWQ pipeline (safe region + both-point
// answer) on CarDB with or without a plan builder on the context — the
// workload whose hot loops carry every explain hook.
func explainOverheadWorkload(b *testing.B, explained bool) {
	b.Helper()
	items, err := GenerateDataset("CarDB", 4000, 2, 2013)
	if err != nil {
		b.Fatal(err)
	}
	db := NewDB(2, items)
	q := append(Point{}, items[13].Point...)
	q[0] *= 1.01
	rsl := db.ReverseSkylineBBRS(q)
	if len(rsl) > 8 {
		rsl = rsl[:8]
	}
	if len(rsl) == 0 {
		b.Fatal("empty reverse skyline")
	}
	ct := items[29]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		var finish func(string) *ExplainPlan
		if explained {
			ctx, finish = db.StartExplain(ctx, "mwq")
		}
		if _, err := db.MWQExactContext(ctx, ct, q, rsl, Options{}); err != nil {
			b.Fatal(err)
		}
		if finish != nil {
			finish("exact")
		}
	}
}

// BenchmarkExplainOverhead compares the same MWQ workload with explain off
// (nil hooks only) and on (plan building + fingerprint observation). Compare
// with benchstat; TestExplainOverheadBudget is the env-gated enforcement of
// the <5% enabled budget.
func BenchmarkExplainOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { explainOverheadWorkload(b, false) })
	b.Run("enabled", func(b *testing.B) { explainOverheadWorkload(b, true) })
}

// TestExplainOverheadBudget enforces the <5% enabled-path budget — but only
// when EXPLAIN_OVERHEAD_MAX_PCT is set (timing comparisons are too noisy for
// single-CPU CI hosts to gate on by default). Set e.g.
// EXPLAIN_OVERHEAD_MAX_PCT=5 to enforce.
func TestExplainOverheadBudget(t *testing.T) {
	spec := os.Getenv("EXPLAIN_OVERHEAD_MAX_PCT")
	if spec == "" {
		t.Skip("set EXPLAIN_OVERHEAD_MAX_PCT to enforce the timing budget")
	}
	maxPct, err := strconv.ParseFloat(spec, 64)
	if err != nil {
		t.Fatalf("bad EXPLAIN_OVERHEAD_MAX_PCT: %v", err)
	}
	disabled := testing.Benchmark(func(b *testing.B) { explainOverheadWorkload(b, false) })
	enabled := testing.Benchmark(func(b *testing.B) { explainOverheadWorkload(b, true) })
	over := (float64(enabled.NsPerOp())/float64(disabled.NsPerOp()) - 1) * 100
	t.Logf("disabled %v ns/op, enabled %v ns/op, overhead %.2f%%", disabled.NsPerOp(), enabled.NsPerOp(), over)
	if over > maxPct {
		t.Errorf("explain overhead %.2f%% exceeds budget %.2f%%", over, maxPct)
	}
}
