package repro

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/wal"
)

// DurabilityOptions configures the write-ahead log of a durable DB: the log
// directory, fsync policy, segment size, snapshot retention and optional
// crash-injection hook. See internal/wal.Options for field semantics.
type DurabilityOptions = wal.Options

// WALRecovery describes what OpenDurable reconstructed: snapshot used, tail
// replayed, torn-tail repairs, duration.
type WALRecovery = wal.Recovery

// WALStats is a point-in-time description of a live log.
type WALStats = wal.Stats

// WALMetrics is the WAL observability surface; build one with NewWALMetrics
// and pass it via DurabilityOptions.Metrics.
type WALMetrics = wal.Metrics

// NewWALMetrics registers the WAL metric set (fsync latency, append/byte
// counters, recovery duration) on a registry. A nil registry yields all-nil
// metrics, which every call site tolerates.
var NewWALMetrics = wal.NewMetrics

// SyncPolicy decides when an acknowledged mutation is fsynced.
type SyncPolicy = wal.SyncPolicy

// Fsync policies, re-exported for flag parsing and configuration.
const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncNever    = wal.SyncNever
)

// ParseSyncPolicy maps the CLI spellings ("always", "interval", "never") onto
// policies.
var ParseSyncPolicy = wal.ParseSyncPolicy

// ErrNotDurable is returned by the durable mutation API on a DB that was not
// opened with OpenDurable.
var ErrNotDurable = errors.New("repro: DB has no write-ahead log (open it with OpenDurable)")

// ErrReadOnly marks mutations refused because the WAL is degraded by a
// storage fault: the DB keeps serving queries from its intact in-memory
// state, but nothing can be made durable until the disk recovers. Errors
// from InsertDurable/DeleteDurable/Checkpoint wrap both this sentinel and
// the underlying *wal.StorageError; ReopenWAL clears the condition.
var ErrReadOnly = errors.New("repro: database is read-only (storage degraded)")

// StorageError is the typed WAL storage failure; see wal.StorageError.
type StorageError = wal.StorageError

// ScrubConfig tunes a WAL integrity-scrub pass; see wal.ScrubConfig.
type ScrubConfig = wal.ScrubConfig

// ScrubReport summarises a WAL integrity-scrub pass; see wal.ScrubReport.
type ScrubReport = wal.ScrubReport

// DuplicateIDError rejects an InsertDurable whose ID is already present.
type DuplicateIDError struct{ ID int }

func (e *DuplicateIDError) Error() string {
	return fmt.Sprintf("repro: insert: id %d already present", e.ID)
}

// NotFoundError rejects a DeleteDurable of an absent item (unknown ID, or a
// position that does not match the stored record).
type NotFoundError struct{ ID int }

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("repro: delete: id %d not present at that position", e.ID)
}

// ErrLastItem rejects a DeleteDurable that would empty the dataset: an empty
// reverse-skyline dataset has no recoverable meaning, and refusing before the
// WAL append keeps the refusal free of durable side effects. The serving
// layer applies the same rule at the snapshot level.
var ErrLastItem = errors.New("repro: delete: refusing to remove the last item")

// OpenDurable opens (or creates) a durable DB: the WAL directory named by
// opts.Durability is recovered — newest valid snapshot, or the given base
// item set when none exists, plus the replayed log tail — and the resulting
// item set is bulk-loaded. Mutations go through InsertDurable/DeleteDurable,
// which commit to the WAL before touching the index; Checkpoint persists a
// snapshot and compacts the log; Close flushes and releases it.
//
// The base set defines the dataset lineage: recovery refuses (with a
// corruption error) a log whose records do not replay cleanly over it.
func OpenDurable(dims int, base []Item, opts DBOptions) (*DB, WALRecovery, error) {
	if opts.Durability == nil {
		return nil, WALRecovery{}, errors.New("repro: OpenDurable requires DBOptions.Durability")
	}
	l, rec, err := wal.Open(*opts.Durability)
	if err != nil {
		return nil, rec, err
	}
	start := base
	if rec.HaveSnapshot {
		start = rec.Items
	}
	items, err := wal.ApplyTail(start, rec.Tail)
	if err != nil {
		if cerr := l.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, rec, err
	}
	db := NewDBWithOptions(dims, items, opts)
	db.wal = l
	db.recovery = rec
	db.items = make(map[int]Item, len(items))
	for _, it := range items {
		db.items[it.ID] = it
	}
	return db, rec, nil
}

// InsertDurable commits an insert to the WAL and then applies it to the index,
// returning the record's log sequence number. A nil error under the "always"
// fsync policy means the mutation is durable. Duplicate IDs are rejected
// before anything is logged.
func (db *DB) InsertDurable(it Item) (uint64, error) {
	if db.wal == nil {
		return 0, ErrNotDurable
	}
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	if _, dup := db.items[it.ID]; dup {
		return 0, &DuplicateIDError{ID: it.ID}
	}
	seq, err := db.wal.Append(wal.OpInsert, it)
	if err != nil {
		return 0, db.readOnlyErr(err)
	}
	db.engine.DB.Insert(it)
	db.engine.InvalidateCaches()
	db.items[it.ID] = it
	return seq, nil
}

// DeleteDurable commits a delete to the WAL and then applies it to the index,
// returning the record's log sequence number. The item must be present with
// that exact ID and position; an absent item is rejected before anything is
// logged, and the last remaining item cannot be deleted (ErrLastItem).
func (db *DB) DeleteDurable(it Item) (uint64, error) {
	if db.wal == nil {
		return 0, ErrNotDurable
	}
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	stored, ok := db.items[it.ID]
	if !ok || !stored.Point.Equal(it.Point) {
		return 0, &NotFoundError{ID: it.ID}
	}
	if len(db.items) == 1 {
		return 0, ErrLastItem
	}
	seq, err := db.wal.Append(wal.OpDelete, it)
	if err != nil {
		return 0, db.readOnlyErr(err)
	}
	db.engine.DB.Delete(it)
	db.engine.InvalidateCaches()
	delete(db.items, it.ID)
	return seq, nil
}

// Checkpoint persists a snapshot of the current item set and compacts the
// log: recovery after this point starts from the snapshot instead of
// replaying history, and superseded segments are deleted.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return ErrNotDurable
	}
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	if err := db.wal.Checkpoint(db.durableItemsLocked(), db.wal.LastSeq()); err != nil {
		return db.readOnlyErr(err)
	}
	return nil
}

// readOnlyErr wraps a WAL error that left (or found) the log degraded so
// callers can match errors.Is(err, ErrReadOnly) and still unwrap the typed
// *StorageError underneath. Errors that did not degrade the log (validation,
// frame encoding) pass through unchanged.
func (db *DB) readOnlyErr(err error) error {
	if db.wal.Failed() == nil {
		return err
	}
	return fmt.Errorf("%w: %v", ErrReadOnly, err)
}

// StorageFailed returns the sticky WAL storage failure, or nil while the log
// is healthy (always nil on an in-memory DB). Non-nil means the DB is
// read-only: mutations fail with ErrReadOnly, queries keep serving.
func (db *DB) StorageFailed() *StorageError {
	if db.wal == nil {
		return nil
	}
	return db.wal.Failed()
}

// ReopenWAL attempts to clear a degraded WAL — truncating any torn frame
// past the acknowledged prefix and re-arming the append path for IO faults,
// or retrying the quarantine salvage for corruption. On success the DB is
// writable again; on failure it stays read-only and the error says why.
// Intended to be driven by a supervised probe with backoff (the server does
// this) or an operator.
func (db *DB) ReopenWAL() error {
	if db.wal == nil {
		return ErrNotDurable
	}
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	return db.wal.Reopen()
}

// ScrubWAL runs one integrity-scrub pass over sealed segments and snapshots,
// with Checkpoint wired in as the salvage escalation: damage no snapshot
// covers triggers a fresh checkpoint of the live (still correct) state, and
// the damaged file is quarantined instead of degrading the DB.
func (db *DB) ScrubWAL(cfg ScrubConfig) (ScrubReport, error) {
	if db.wal == nil {
		return ScrubReport{}, ErrNotDurable
	}
	if cfg.Checkpoint == nil {
		cfg.Checkpoint = db.Checkpoint
	}
	return db.wal.Scrub(cfg)
}

// Close flushes and closes the WAL. The DB remains queryable (the index is
// untouched) but every further durable mutation fails. A no-op without a WAL.
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	return db.wal.Close()
}

// WALRecovery returns what OpenDurable reconstructed (zero value on an
// in-memory DB).
func (db *DB) WALRecovery() WALRecovery { return db.recovery }

// WALStats returns current log statistics (zero value on an in-memory DB).
func (db *DB) WALStats() WALStats {
	if db.wal == nil {
		return WALStats{}
	}
	return db.wal.Stats()
}

// DurableItems returns the current item set of a durable DB, sorted by ID —
// the exact set a Checkpoint would persist. Nil on an in-memory DB.
func (db *DB) DurableItems() []Item {
	if db.wal == nil {
		return nil
	}
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	return db.durableItemsLocked()
}

func (db *DB) durableItemsLocked() []Item {
	out := make([]Item, 0, len(db.items))
	for _, it := range db.items {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
