package repro

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestContextAPIPreCancelled drives every public Context method with a
// context that is already cancelled at the call boundary. Each one must
// return an error that (a) unwraps to context.Canceled, (b) carries the
// "repro:" operation prefix, and (c) was produced without touching the index
// at all — zero R-tree node accesses, the package's definition of "zero
// algorithmic work".
func TestContextAPIPreCancelled(t *testing.T) {
	items := fig1()
	db := NewDB(2, items)
	q := NewPoint(8.5, 55)
	ct := items[0]
	rsl := db.ReverseSkyline(items, q)
	sr := db.SafeRegion(q, rsl)
	store := db.BuildApproxStore(rsl, 5)

	ctx, cancelCtx := context.WithCancel(context.Background())
	cancelCtx()

	calls := []struct {
		name string
		call func(context.Context) error
	}{
		{"DynamicSkylineContext", func(c context.Context) error {
			_, err := db.DynamicSkylineContext(c, ct.Point)
			return err
		}},
		{"ReverseSkylineContext", func(c context.Context) error {
			_, err := db.ReverseSkylineContext(c, items, q)
			return err
		}},
		{"IsReverseSkylineContext", func(c context.Context) error {
			_, err := db.IsReverseSkylineContext(c, ct, q)
			return err
		}},
		{"ReverseSkylineBBRSContext", func(c context.Context) error {
			_, err := db.ReverseSkylineBBRSContext(c, q)
			return err
		}},
		{"ExplainContext", func(c context.Context) error {
			_, err := db.ExplainContext(c, ct, q)
			return err
		}},
		{"MWPContext", func(c context.Context) error {
			_, err := db.MWPContext(c, ct, q, Options{})
			return err
		}},
		{"MQPContext", func(c context.Context) error {
			_, err := db.MQPContext(c, ct, q, Options{})
			return err
		}},
		{"MQPTotalCostContext", func(c context.Context) error {
			_, err := db.MQPTotalCostContext(c, q, ct.Point, rsl, sr, Options{})
			return err
		}},
		{"SafeRegionContext", func(c context.Context) error {
			_, err := db.SafeRegionContext(c, q, rsl)
			return err
		}},
		{"ApproxSafeRegionContext", func(c context.Context) error {
			_, err := db.ApproxSafeRegionContext(c, q, rsl, store)
			return err
		}},
		{"AntiDominanceRegionContext", func(c context.Context) error {
			_, err := db.AntiDominanceRegionContext(c, ct)
			return err
		}},
		{"MWQContext", func(c context.Context) error {
			_, err := db.MWQContext(c, ct, q, sr, Options{})
			return err
		}},
		{"MWQExactContext", func(c context.Context) error {
			_, err := db.MWQExactContext(c, ct, q, rsl, Options{})
			return err
		}},
		{"MWQApproxContext", func(c context.Context) error {
			_, err := db.MWQApproxContext(c, ct, q, rsl, store, Options{})
			return err
		}},
		{"MWQBatchContext", func(c context.Context) error {
			_, err := db.MWQBatchContext(c, []Item{ct}, q, rsl, Options{})
			return err
		}},
		{"MWQBatchParallelContext", func(c context.Context) error {
			_, err := db.MWQBatchParallelContext(c, []Item{ct}, q, sr, Options{}, 2)
			return err
		}},
		{"LostCustomersContext", func(c context.Context) error {
			_, err := db.LostCustomersContext(c, ct.Point, rsl)
			return err
		}},
		{"BuildApproxStoreContext", func(c context.Context) error {
			_, err := db.BuildApproxStoreContext(c, rsl, 5)
			return err
		}},
		{"BuildApproxStoreParallelContext", func(c context.Context) error {
			_, err := db.BuildApproxStoreParallelContext(c, rsl, 5, 2)
			return err
		}},
		{"ValidateWhyNotMoveContext", func(c context.Context) error {
			_, err := db.ValidateWhyNotMoveContext(c, ct, q, ct.Point, 1e-7)
			return err
		}},
		{"ValidateQueryMoveContext", func(c context.Context) error {
			_, err := db.ValidateQueryMoveContext(c, ct, q, 1e-7)
			return err
		}},
	}

	tree := db.Engine().DB.Tree()
	for _, tc := range calls {
		t.Run(tc.name, func(t *testing.T) {
			tree.ResetAccesses()
			err := tc.call(ctx)
			if err == nil {
				t.Fatal("pre-cancelled context returned no error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error does not unwrap to context.Canceled: %v", err)
			}
			if !strings.HasPrefix(err.Error(), "repro: ") {
				t.Fatalf("error lacks the repro: operation prefix: %v", err)
			}
			if n := tree.Accesses(); n != 0 {
				t.Fatalf("pre-cancelled call touched the index: %d node accesses", n)
			}
		})
	}
}

// TestContextAPINilAndLiveContexts: a nil or never-cancelled context must
// behave exactly like the legacy context-free API.
func TestContextAPINilAndLiveContexts(t *testing.T) {
	items := fig1()
	db := NewDB(2, items)
	q := NewPoint(8.5, 55)
	ct := items[0]

	want := db.MWP(ct, q, Options{})
	for name, ctx := range map[string]context.Context{
		"background": context.Background(),
		"nil":        nil,
	} {
		got, err := db.MWPContext(ctx, ct, q, Options{})
		if err != nil {
			t.Fatalf("%s context errored: %v", name, err)
		}
		if len(got.Candidates) != len(want.Candidates) || got.Best().Cost != want.Best().Cost {
			t.Fatalf("%s context changed the answer", name)
		}
	}
}

// TestContextAPIExpiredDeadline: a deadline that expires mid-flight is
// reported as DeadlineExceeded (distinct from Canceled).
func TestContextAPIExpiredDeadline(t *testing.T) {
	items := fig1()
	db := NewDB(2, items)
	q := NewPoint(8.5, 55)
	ctx, cancelCtx := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelCtx()
	_, err := db.SafeRegionContext(ctx, q, db.ReverseSkyline(items, q))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}
