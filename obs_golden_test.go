package repro

import (
	"context"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// oracleWindowDominanceTests reproduces the dominance-test count of a window
// query by brute force: the counting rule charges one test per concrete
// product falling inside the closed window W(c, q) (excluding the customer's
// own record), because those are exactly the points the index path hands to
// DynDominates. Rectangle-level prune decisions are free by the same rule, so
// this oracle is index-independent.
func oracleWindowDominanceTests(products []Item, c Item, q Point) uint64 {
	var n uint64
	for _, p := range products {
		if p.ID == c.ID {
			continue
		}
		inside := true
		for j := range q {
			if math.Abs(p.Point[j]-c.Point[j]) > math.Abs(q[j]-c.Point[j]) {
				inside = false
				break
			}
		}
		if inside {
			n++
		}
	}
	return n
}

// TestExplainCostMatchesOracle pins the acceptance numbers of the paper's
// worked example: explaining why customer c1 = (5, 30) is not interested in
// q = (8.5, 55) costs exactly one R-tree node access (the 8-point example is
// a single leaf at the paper's 1536-byte page size) and exactly one dominance
// test (only the culprit p2 lies inside the window), matching the brute-force
// oracle count.
func TestExplainCostMatchesOracle(t *testing.T) {
	items := fig1()
	db := NewDBWithOptions(2, items, DBOptions{Observability: true})
	q := NewPoint(8.5, 55)
	ct := items[0] // customer 1 at (5, 30)

	before := db.Cost()
	culprits, err := db.ExplainContext(context.Background(), ct, q)
	if err != nil {
		t.Fatal(err)
	}
	d := db.Cost().Sub(before)

	if len(culprits) != 1 || culprits[0].ID != 2 {
		t.Fatalf("culprits = %v, want exactly product 2", culprits)
	}
	if d.NodeAccesses != 1 {
		t.Errorf("node accesses = %d, want 1", d.NodeAccesses)
	}
	if d.LeafScans != 1 {
		t.Errorf("leaf scans = %d, want 1", d.LeafScans)
	}
	want := oracleWindowDominanceTests(items, ct, q)
	if want != 1 {
		t.Fatalf("oracle count = %d, want 1 (worked example broke)", want)
	}
	if d.DominanceTests != want {
		t.Errorf("dominance tests = %d, oracle says %d", d.DominanceTests, want)
	}
	if d.WindowQueries != 1 {
		t.Errorf("window queries = %d, want 1", d.WindowQueries)
	}
}

// TestCostDeltaMatchesOracleOnDataset extends the oracle check beyond the
// worked example: on a generated catalogue, the dominance tests charged to a
// single window query (via Explain) must equal the brute-force in-window
// count for several customers.
func TestCostDeltaMatchesOracleOnDataset(t *testing.T) {
	items, err := GenerateDataset("CarDB", 300, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(2, items)
	q := append(Point{}, items[7].Point...)
	q[0] *= 1.05
	for _, ct := range []Item{items[3], items[42], items[250]} {
		before := db.Cost()
		if _, err := db.ExplainContext(context.Background(), ct, q); err != nil {
			t.Fatal(err)
		}
		d := db.Cost().Sub(before)
		if want := oracleWindowDominanceTests(items, ct, q); d.DominanceTests != want {
			t.Errorf("customer %d: dominance tests = %d, oracle says %d", ct.ID, d.DominanceTests, want)
		}
	}
}

// TestPrometheusEndpointServesCost scrapes a live /metrics endpoint after a
// query and checks the acceptance counters are exported in Prometheus text
// format with plausible values.
func TestPrometheusEndpointServesCost(t *testing.T) {
	items := fig1()
	db := NewDBWithOptions(2, items, DBOptions{Observability: true})
	q := NewPoint(8.5, 55)
	if _, err := db.ExplainContext(context.Background(), items[0], q); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.DebugMux(db.Metrics()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	readValue := func(name string) float64 {
		t.Helper()
		for _, line := range strings.Split(text, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
				if err != nil {
					t.Fatalf("bad sample for %s: %q", name, line)
				}
				return v
			}
		}
		t.Fatalf("metric %s not found in scrape:\n%s", name, text)
		return 0
	}
	// The R-tree counters are per-DB, so this scrape shows exactly the one
	// Explain window query; the algorithm counters are process-global and
	// only lower-bounded here.
	if got := readValue("rtree_node_accesses_total"); got != 1 {
		t.Errorf("rtree_node_accesses_total = %v, want 1", got)
	}
	if got := readValue("dominance_tests_total"); got < 1 {
		t.Errorf("dominance_tests_total = %v, want >= 1", got)
	}
	if got := readValue(`queries_total{op="explain"}`); got != 1 {
		t.Errorf(`queries_total{op="explain"} = %v, want 1`, got)
	}
	if !strings.Contains(text, "# TYPE query_duration_seconds histogram") {
		t.Error("query_duration_seconds histogram missing from scrape")
	}
}

// TestDisabledObservabilityIsInert: without the option, no registry exists,
// StartTrace is a pass-through, and starting a span on the nil trace
// allocates nothing — the guarantees behind the <2% overhead budget.
func TestDisabledObservabilityIsInert(t *testing.T) {
	db := NewDB(2, fig1())
	if db.Metrics() != nil {
		t.Fatal("disabled DB has a registry")
	}
	ctx := context.Background()
	tctx, tr := db.StartTrace(ctx, "explain")
	if tctx != ctx || tr != nil {
		t.Fatal("disabled StartTrace is not a pass-through")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		_, tr := db.StartTrace(ctx, "explain")
		tr.StartSpan("phase")()
		tr.Event("name", "detail")
	}); allocs != 0 {
		t.Errorf("disabled trace path allocates %v per op, want 0", allocs)
	}
}

// overheadWorkload is the satellite-4 measurement target: a safe-region
// sweep over CarDB, the workload where instrumentation sits in the hottest
// loops (window queries, DSL computations, dominance tests).
func overheadWorkload(b *testing.B, observability bool) {
	b.Helper()
	items, err := GenerateDataset("CarDB", 4000, 2, 2013)
	if err != nil {
		b.Fatal(err)
	}
	db := NewDBWithOptions(2, items, DBOptions{Observability: observability})
	q := append(Point{}, items[13].Point...)
	q[0] *= 1.01
	rsl := db.ReverseSkylineBBRS(q)
	if len(rsl) > 8 {
		rsl = rsl[:8]
	}
	if len(rsl) == 0 {
		b.Fatal("empty reverse skyline")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.SafeRegion(q, rsl)
	}
}

// BenchmarkInstrumentationOverhead compares the disabled and enabled
// observability paths on the same safe-region sweep. Compare with
// benchstat; the disabled path must stay within the noise floor of the
// pre-instrumentation baseline (<2% — see TestInstrumentationOverheadBudget
// for the env-gated enforcement).
func BenchmarkInstrumentationOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { overheadWorkload(b, false) })
	b.Run("enabled", func(b *testing.B) { overheadWorkload(b, true) })
}

// TestInstrumentationOverheadBudget enforces the <2% disabled-path budget —
// but only when OBS_OVERHEAD_MAX_PCT is set (timing comparisons are too
// noisy for single-CPU CI hosts to gate on by default). Set e.g.
// OBS_OVERHEAD_MAX_PCT=2 to enforce.
func TestInstrumentationOverheadBudget(t *testing.T) {
	spec := os.Getenv("OBS_OVERHEAD_MAX_PCT")
	if spec == "" {
		t.Skip("set OBS_OVERHEAD_MAX_PCT to enforce the timing budget")
	}
	maxPct, err := strconv.ParseFloat(spec, 64)
	if err != nil {
		t.Fatalf("bad OBS_OVERHEAD_MAX_PCT: %v", err)
	}
	disabled := testing.Benchmark(func(b *testing.B) { overheadWorkload(b, false) })
	enabled := testing.Benchmark(func(b *testing.B) { overheadWorkload(b, true) })
	over := (float64(enabled.NsPerOp())/float64(disabled.NsPerOp()) - 1) * 100
	t.Logf("disabled %v ns/op, enabled %v ns/op, overhead %.2f%%", disabled.NsPerOp(), enabled.NsPerOp(), over)
	if over > maxPct {
		t.Errorf("observability overhead %.2f%% exceeds budget %.2f%%", over, maxPct)
	}
}
