package repro

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs/flight"
)

// TestDBFlightRecorder pins the embedded-use recorder: DBOptions.FlightSize
// turns on a per-DB ledger that records one QueryRecord per Context entry
// point with Source "db", and the tail sampler keeps failed queries' traces
// exactly as the server's recorder does.
func TestDBFlightRecorder(t *testing.T) {
	items := fig1()
	q := NewPoint(8.5, 55)

	if NewDB(2, items).FlightRecorder() != nil {
		t.Fatal("flight recorder must be off unless DBOptions.FlightSize > 0")
	}

	db := NewDBWithOptions(2, items, DBOptions{FlightSize: 8})
	led := db.FlightRecorder()
	if led == nil {
		t.Fatal("FlightSize 8 left the recorder off")
	}
	if _, err := db.ReverseSkylineContext(context.Background(), items, q); err != nil {
		t.Fatalf("ReverseSkylineContext: %v", err)
	}
	tot := led.Totals()
	if tot.Started != 1 || tot.Finished != 1 || tot.InFlight != 0 {
		t.Fatalf("totals after one query = %+v, want 1 started / 1 finished", tot)
	}
	rec := led.Recent(1)[0]
	if rec.Source != "db" || rec.Op != "rsl" {
		t.Errorf("record source/op = %s/%s, want db/rsl", rec.Source, rec.Op)
	}
	if rec.Outcome != flight.OutcomeOK {
		t.Errorf("outcome = %q, want ok", rec.Outcome)
	}

	// A query entering with a dead deadline fails at the boundary; its record
	// must classify the outcome and the tail sampler must keep it.
	ctx, cancelCtx := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelCtx()
	if _, err := db.ReverseSkylineContext(ctx, items, q); err == nil {
		t.Fatal("expired deadline accepted")
	}
	rec = led.Recent(1)[0]
	if rec.Outcome != flight.OutcomeDeadline {
		t.Errorf("outcome = %q, want deadline", rec.Outcome)
	}
	if !rec.Sampled {
		t.Error("failed query's record was not tail-sampled")
	}
}
