# Development gate for this repository.
#
# `make check` is the full tier-1 gate (see ROADMAP.md): everything it runs
# must pass before a change lands. The individual targets exist so CI and
# humans can run the slices separately.

GO ?= go

# How long each fuzz target runs in the smoke pass. The point is crash
# detection on fresh mutations of the seed corpus, not deep exploration.
FUZZTIME ?= 10s

.PHONY: check build vet vet-obs vet-wal test race race-core bench-smoke bench-diff fuzz-smoke crash-smoke sim-smoke fsfault-smoke fsfault-soak chaos bench

check: vet-obs vet-wal build test race race-core bench-smoke bench-diff fuzz-smoke crash-smoke sim-smoke fsfault-smoke
	@echo "tier-1 gate: OK"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Observability lint on top of go vet: the query-path packages must take
# timestamps through internal/obs (monotonic, mockable via SetClockForTest,
# batched into histograms) — a raw time.Now() in a hot loop is both a per-
# iteration cost and untestable. internal/obs itself anchors the process
# clock and internal/experiments measures wall-clock by design; both are
# exempt, as are tests and the cmd/ front-ends.
OBS_LINT_PKGS = internal/rtree internal/skyline internal/rskyline internal/whynot \
	internal/exec internal/region internal/geom internal/cancel internal/grid \
	internal/engine
vet-obs: vet
	@bad=$$(grep -rn 'time\.Now()' $(OBS_LINT_PKGS) --include='*.go' | grep -v _test.go || true); \
	if [ -n "$$bad" ]; then \
		echo "vet-obs: raw time.Now() on the query path (use internal/obs):"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rn 'time\.Now()' internal/obs/flight --include='*.go' | grep -v _test.go || true); \
	if [ -n "$$bad" ]; then \
		echo "vet-obs: raw time.Now() in the flight recorder (timestamps come from obs.Now; callers supply Epoch):"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rn 'time\.Now()' internal/obs/explain --include='*.go' | grep -v _test.go || true); \
	if [ -n "$$bad" ]; then \
		echo "vet-obs: raw time.Now() in the explain plan builder (per-node timings and model calibration must use obs.Now):"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(for f in $$(grep -rl 'go func' internal/exec internal/engine --include='*.go' | grep -v _test.go); do \
		grep -q 'pprof\.Do' $$f || echo $$f; \
	done); \
	if [ -n "$$bad" ]; then \
		echo "vet-obs: worker-goroutine file without pprof.Do labels (profiles would attribute the hot path to anonymous funcs):"; \
		echo "$$bad"; exit 1; \
	fi
	@echo "vet-obs: OK"

# Durability lint on top of go vet: inside internal/wal every (*os.File)
# Sync and Close must have its error checked — an unchecked fsync error is
# an acknowledged-but-lost write, the exact bug the WAL exists to prevent.
# Discarding with `_ =` is also banned there; wrap in the named helpers or
# join the error instead.
vet-wal: vet
	@bad=$$(grep -nE '^[[:space:]]*(defer[[:space:]]+)?[A-Za-z_][A-Za-z0-9_.]*\.(Sync|Close)\(\)[[:space:]]*$$|_[[:space:]]*=[[:space:]]*[A-Za-z_][A-Za-z0-9_.]*\.(Sync|Close)\(\)' internal/wal/*.go | grep -v _test.go | grep -v 'vet-wal:allow' || true); \
	if [ -n "$$bad" ]; then \
		echo "vet-wal: unchecked (*os.File).Sync/Close under internal/wal:"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -nE 'os\.(OpenFile|Open|Create|Rename|Remove|ReadFile|ReadDir|MkdirAll|Truncate|WriteFile)\(' internal/wal/*.go | grep -v _test.go || true); \
	if [ -n "$$bad" ]; then \
		echo "vet-wal: direct os filesystem call under internal/wal (route it through Options.FS / internal/wal/vfs so fault injection sees it):"; \
		echo "$$bad"; exit 1; \
	fi
	@echo "vet-wal: OK"

# -shuffle=on randomises test (and subtest-source) execution order every
# run, so accidental inter-test state dependence surfaces instead of
# fossilising; the seed is printed on failure for exact reproduction.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# Targeted race gate for the executor substrate, the differential oracle
# suite, and the serving layer (admission control, circuit breakers, hot-swap
# snapshots, chaos harness) — the packages whose whole point is concurrency
# correctness. Redundant with `race` but kept separate so the critical slice
# has its own fast signal.
race-core:
	$(GO) test -race -short ./internal/exec/... ./internal/oracle/... ./internal/server/... ./internal/wal/... ./internal/sim/...

# Benchmark smoke: the parallel/cache-aware configuration against the
# sequential reference on CarDB-50K, recorded as BENCH_parallel.json.
bench-smoke:
	$(GO) run ./cmd/parallelbench -out BENCH_parallel.json

# Benchmark regression diff: latest vs previous same-config record in each
# BENCH_*.json, failing past a 20% slowdown. Non-blocking (leading -): shared
# runners are noisy, so a regression is a loud warning in the log, not a
# broken build. Run `go run ./cmd/benchdiff -v` locally for the full table.
bench-diff:
	-$(GO) run ./cmd/benchdiff

# go test accepts one -fuzz pattern per package invocation, hence one line
# per fuzz target.
fuzz-smoke:
	$(GO) test ./internal/dataset -run FuzzReadCSV -fuzz FuzzReadCSV -fuzztime $(FUZZTIME)
	$(GO) test ./internal/whynot -run FuzzLoadApproxStore -fuzz FuzzLoadApproxStore -fuzztime $(FUZZTIME)
	$(GO) test ./internal/whynot -run FuzzMWPMQP -fuzz FuzzMWPMQP -fuzztime $(FUZZTIME)
	$(GO) test ./internal/server -run FuzzDecodeRequests -fuzz FuzzDecodeRequests -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run FuzzDecodeFrame -fuzz FuzzDecodeFrame -fuzztime $(FUZZTIME)

# Crash smoke: the WAL kill-injection soak at short length — every log
# write/fsync/rotate/snapshot boundary killed twice, recovery verified
# against the oracle replay. Appends to BENCH_crash.json.
crash-smoke:
	$(GO) run ./cmd/crash -mutations 60 -visits 2 -out BENCH_crash.json

# Storage-fault smoke: the WAL filesystem-fault matrix at short length —
# every injectable fault kind (EIO, ENOSPC, short write, fsync failure, read
# bit flip) at every write-path call site, with degraded-mode, reopen and
# scrubber-quarantine contracts checked per trial. Appends to
# BENCH_fsfault.json; the nightly soak runs the same harness with
# `-soak` (more seeds, longer workloads).
fsfault-smoke:
	$(GO) run ./cmd/fsfault -out BENCH_fsfault.json

fsfault-soak:
	$(GO) run ./cmd/fsfault -soak -out BENCH_fsfault.json

# Simulation smoke: short seeded model-based histories against the embedded
# DB and the in-process server, with the metamorphic transforms, checked
# op-by-op against the brute-force oracle model. A divergence shrinks to a
# replayable .simtrace and fails the target. Appends to BENCH_sim.json.
# With SIM_ARTIFACT_DIR set (as CI does), the embedded server also writes
# its slow-query log (sampled flight records) there for artifact upload.
sim-smoke:
	$(GO) run ./cmd/sim -seeds 2 -ops 400 -out BENCH_sim.json

# Chaos smoke at soak length: fault window + recovery against a live server,
# with the flight-ledger accounting invariants checked at the end. The slow
# -query log defaults into $$SIM_ARTIFACT_DIR when set.
chaos:
	$(GO) run ./cmd/chaos -fault 5s -cool 5s -out BENCH_chaos.json

bench:
	$(GO) test -bench=. -benchmem ./...
