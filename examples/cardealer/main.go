// Car dealer scenario on a realistic market: a dealership prices a listing
// on the simulated CarDB (the stand-in for the paper's Yahoo! Autos crawl),
// measures its reverse skyline, and uses why-not answers to plan a targeted
// negotiation with a customer who is not interested yet.
//
// Run with: go run ./examples/cardealer
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	// 20K listings; each listing's (price, mileage) also serves as a
	// customer preference profile, as in the paper's experiments.
	market, err := repro.GenerateDataset("CarDB", 20000, 2, 7)
	if err != nil {
		panic(err)
	}
	db := repro.NewDB(2, market)

	// The dealership's new listing: a mid-range car.
	q := repro.NewPoint(9200, 61000)
	fmt.Printf("Listing: $%.0f, %.0f miles\n", q[0], q[1])

	rsl := db.ReverseSkyline(market, q)
	fmt.Printf("Currently interested customers: %d\n\n", len(rsl))

	// Pick a why-not customer whose profile is close to the listing — the
	// kind of near-miss lead a sales team would chase.
	rng := rand.New(rand.NewSource(3))
	var lead repro.Item
	bestDist := 1e18
	for i := 0; i < 500; i++ {
		c := market[rng.Intn(len(market))]
		if db.IsReverseSkyline(c, q) {
			continue
		}
		if d := c.Point.L2(q); d < bestDist {
			bestDist = d
			lead = c
		}
	}
	fmt.Printf("Near-miss lead: customer %d with profile ($%.0f, %.0f mi)\n",
		lead.ID, lead.Point[0], lead.Point[1])

	// Why is the lead not interested?
	culprits := db.Explain(lead, q)
	fmt.Printf("Blocking listings (%d):\n", len(culprits))
	for i, p := range culprits {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(culprits)-5)
			break
		}
		fmt.Printf("  listing %d at ($%.0f, %.0f mi)\n", p.ID, p.Point[0], p.Point[1])
	}
	fmt.Println()

	// Negotiation options.
	mwp := db.MWP(lead, q, repro.Options{})
	fmt.Println("A. Persuade the customer (MWP):")
	fmt.Printf("   cheapest preference shift: to ($%.0f, %.0f mi), cost %.5f\n",
		mwp.Best().Point[0], mwp.Best().Point[1], mwp.Best().Cost)

	mqp := db.MQP(lead, q, repro.Options{})
	sr := db.SafeRegion(q, rsl)
	fmt.Println("B. Reprice the listing (MQP):")
	bestTotal, bestIdx := 1e18, 0
	for i, cand := range mqp.Candidates {
		if t := db.MQPTotalCost(q, cand.Point, rsl, sr, repro.Options{}); t < bestTotal {
			bestTotal, bestIdx = t, i
		}
	}
	b := mqp.Candidates[bestIdx]
	fmt.Printf("   best reprice: to ($%.0f, %.0f mi), cost incl. lost customers %.5f\n",
		b.Point[0], b.Point[1], bestTotal)

	fmt.Println("C. Reprice without losing anyone (MWQ):")
	mwq := db.MWQ(lead, q, sr, repro.Options{})
	if mwq.Case == 1 {
		fmt.Printf("   safe reprice to ($%.0f, %.0f mi) wins the lead at zero customer cost\n",
			mwq.QStar[0], mwq.QStar[1])
	} else {
		fmt.Printf("   safe reprice to ($%.0f, %.0f mi) plus asking the lead to accept ($%.0f, %.0f mi); cost %.5f\n",
			mwq.QStar[0], mwq.QStar[1], mwq.CtStar[0], mwq.CtStar[1], mwq.Cost)
	}
	fmt.Printf("\nGuarantee: option C never loses any of the %d current customers,\n", len(rsl))
	fmt.Printf("and its cost (%.5f) is never worse than option A (%.5f).\n", mwq.Cost, mwp.Best().Cost)
}
