// Quickstart: the paper's running example (Fig. 1a) end to end.
//
// A car dealer wants to sell q = ($8.5K, 55K mi). The reverse skyline tells
// them which customers find q interesting; a why-not question explains why
// customer c1 does not, and the three modification techniques propose fixes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	// Fig. 1(a): eight data points, price in K$ and mileage in K miles. Each
	// point doubles as a product on the market and a customer preference.
	coords := [][2]float64{
		{5, 30}, {7.5, 42}, {2.5, 70}, {7.5, 90},
		{24, 20}, {20, 50}, {26, 70}, {16, 80},
	}
	points := make([]repro.Item, len(coords))
	for i, c := range coords {
		points[i] = repro.Item{ID: i + 1, Point: repro.NewPoint(c[0], c[1])}
	}
	db := repro.NewDB(2, points)
	q := repro.NewPoint(8.5, 55)

	fmt.Printf("Product to sell: q = %v\n\n", q)

	// Who is interested right now?
	rsl := db.ReverseSkyline(points, q)
	fmt.Printf("Reverse skyline of q (interested customers): ")
	for _, c := range rsl {
		fmt.Printf("c%d ", c.ID)
	}
	fmt.Print("\n\n")

	// Why not customer 1?
	c1 := points[0]
	fmt.Printf("Why is c1 = %v not interested?\n", c1.Point)
	for _, p := range db.Explain(c1, q) {
		fmt.Printf("  because product p%d = %v suits c1 better than q\n", p.ID, p.Point)
	}
	fmt.Println()

	// Option 1 (Algorithm 1): persuade the customer to adjust preferences.
	mwp := db.MWP(c1, q, repro.Options{})
	fmt.Println("Option 1 — adjust the customer's preference (MWP):")
	for _, cand := range mwp.Candidates {
		fmt.Printf("  move c1 to %v (normalised cost %.4f)\n", cand.Point, cand.Cost)
	}
	fmt.Println()

	// Option 2 (Algorithm 2): adjust the product instead.
	mqp := db.MQP(c1, q, repro.Options{})
	fmt.Println("Option 2 — adjust the product (MQP), may lose other customers:")
	sr := db.SafeRegion(q, rsl)
	for _, cand := range mqp.Candidates {
		total := db.MQPTotalCost(q, cand.Point, rsl, sr, repro.Options{})
		fmt.Printf("  move q to %v (move cost %.4f; incl. winning back lost customers %.4f)\n",
			cand.Point, cand.Cost, total)
	}
	fmt.Println()

	// Option 3 (Algorithms 3+4): move q only inside its safe region.
	fmt.Println("Option 3 — move q only where no existing customer is lost (MWQ):")
	fmt.Println("  safe region of q:")
	for _, r := range sr {
		fmt.Printf("    %v\n", r)
	}
	mwq := db.MWQ(c1, q, sr, repro.Options{})
	if mwq.Case == 1 {
		fmt.Printf("  q can reach c1's region safely: q* = %v, zero customer movement\n", mwq.QStar)
	} else {
		fmt.Printf("  safe region cannot reach c1: q* = %v plus moving c1 to %v (cost %.4f)\n",
			mwq.QStar, mwq.CtStar, mwq.Cost)
	}

	// A customer whose region the safe region can reach: c7.
	c7 := points[6]
	res := db.MWQ(c7, q, sr, repro.Options{})
	fmt.Printf("\nSame question for c7 = %v:\n", c7.Point)
	fmt.Printf("  case C%d: q* = %v, customer movement cost %.4f\n", res.Case, res.QStar, res.Cost)
}
