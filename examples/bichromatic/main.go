// Bichromatic setting: the product catalogue and the customer preferences
// are different datasets (the general form of Definition 3). A laptop maker
// holds a survey of customer preference profiles and asks which respondents
// a planned model would attract, why the others are not attracted, and what
// minimal spec change wins a chosen segment back without losing anyone.
//
// Run with: go run ./examples/bichromatic
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Product catalogue: competitor laptops as (price $, weight g).
	// Customers prefer cheaper and lighter (smaller is better in both).
	var products []repro.Item
	for i := 0; i < 4000; i++ {
		price := 400 + rng.Float64()*2600
		// Lighter laptops cost more, with noise.
		weight := 2600 - price*0.55 + rng.NormFloat64()*220
		if weight < 800 {
			weight = 800 + rng.Float64()*100
		}
		products = append(products, repro.Item{ID: i, Point: repro.NewPoint(price, weight)})
	}
	// Survey: preference profiles, a separate ID space.
	var customers []repro.Item
	for i := 0; i < 1500; i++ {
		price := 500 + rng.Float64()*2400
		weight := 900 + rng.Float64()*1500
		customers = append(customers, repro.Item{ID: 100000 + i, Point: repro.NewPoint(price, weight)})
	}

	db := repro.NewDB(2, products)
	q := repro.NewPoint(1250, 1350) // the planned model
	fmt.Printf("Planned model: $%.0f, %.0f g\n", q[0], q[1])

	rsl := db.ReverseSkyline(customers, q)
	fmt.Printf("Survey respondents attracted: %d of %d\n\n", len(rsl), len(customers))

	// Rank the unattracted respondents by how close they are to switching.
	type miss struct {
		c    repro.Item
		cost float64
	}
	var misses []miss
	for _, c := range customers {
		if db.IsReverseSkyline(c, q) {
			continue
		}
		res := db.MWP(c, q, repro.Options{})
		misses = append(misses, miss{c: c, cost: res.Best().Cost})
		if len(misses) == 300 {
			break
		}
	}
	sort.Slice(misses, func(i, j int) bool { return misses[i].cost < misses[j].cost })
	fmt.Println("Closest non-customers (their preference shift to switch):")
	for _, m := range misses[:5] {
		fmt.Printf("  respondent %d ($%-6.0f %5.0f g)  cost %.5f\n",
			m.c.ID, m.c.Point[0], m.c.Point[1], m.cost)
	}

	// Which spec change wins the closest one without losing the attracted?
	lead := misses[0].c
	sr := db.SafeRegion(q, rsl)
	res := db.MWQ(lead, q, sr, repro.Options{})
	fmt.Printf("\nTo win respondent %d while keeping all %d attracted:\n", lead.ID, len(rsl))
	if res.Case == 1 {
		fmt.Printf("  respec the model to ($%.0f, %.0f g) — no customer movement needed\n",
			res.QStar[0], res.QStar[1])
	} else {
		fmt.Printf("  respec to ($%.0f, %.0f g) and market toward the profile ($%.0f, %.0f g); cost %.5f\n",
			res.QStar[0], res.QStar[1], res.CtStar[0], res.CtStar[1], res.Cost)
	}

	// Sanity: nothing attracted is lost (direct recomputation after the
	// ε-move into the safe region's interior — q* itself is the infimum on
	// the closed boundary).
	qn := sr.InteriorNudge(res.QStar, 1e-9)
	kept := db.ReverseSkyline(rsl, qn)
	fmt.Printf("  verification: %d of %d attracted respondents retained at q*\n", len(kept), len(rsl))
}
