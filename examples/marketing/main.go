// Targeted marketing: the use case the paper's §VI motivates. A seller wants
// an *extended* customer list — not just the reverse skyline, but the
// near-miss customers who could be won over cheaply. The approximate
// safe-region store (§VI.B.1) makes this fast enough to run over many
// why-not candidates interactively.
//
// Run with: go run ./examples/marketing
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro"
)

type prospect struct {
	customer repro.Item
	cost     float64
	viaSafe  bool // reachable with a safe product move alone
}

func main() {
	market, err := repro.GenerateDataset("CarDB", 15000, 2, 11)
	if err != nil {
		panic(err)
	}
	db := repro.NewDB(2, market)
	q := repro.NewPoint(11500, 48000)
	fmt.Printf("Campaign product: ($%.0f, %.0f mi)\n", q[0], q[1])

	rsl := db.ReverseSkyline(market, q)
	fmt.Printf("Organic audience (reverse skyline): %d customers\n", len(rsl))

	// Offline: precompute approximate dynamic skylines for the audience so
	// the safe region assembles in milliseconds per question.
	t0 := time.Now()
	store := db.BuildApproxStore(rsl, 10)
	fmt.Printf("Precomputed approx store for the audience in %s\n\n", time.Since(t0).Round(time.Millisecond))

	// Score a sample of non-audience customers by how cheaply they could be
	// added without losing the organic audience.
	rng := rand.New(rand.NewSource(4))
	var prospects []prospect
	tried := map[int]bool{}
	t0 = time.Now()
	for len(prospects) < 40 {
		c := market[rng.Intn(len(market))]
		if tried[c.ID] || db.IsReverseSkyline(c, q) {
			continue
		}
		tried[c.ID] = true
		res := db.MWQApprox(c, q, rsl, store, repro.Options{})
		prospects = append(prospects, prospect{
			customer: c,
			cost:     res.Cost,
			viaSafe:  res.Case == 1,
		})
	}
	elapsed := time.Since(t0)

	sort.Slice(prospects, func(i, j int) bool { return prospects[i].cost < prospects[j].cost })
	fmt.Printf("Scored %d why-not prospects in %s (%.1fms each)\n\n",
		len(prospects), elapsed.Round(time.Millisecond),
		float64(elapsed.Milliseconds())/float64(len(prospects)))

	fmt.Println("Top 10 extension targets (cheapest first):")
	fmt.Printf("%-10s %-24s %-12s %s\n", "customer", "profile", "cost", "how")
	for _, p := range prospects[:10] {
		how := "needs preference shift"
		if p.viaSafe {
			how = "safe product tweak only"
		}
		fmt.Printf("%-10d ($%-7.0f %8.0f mi)   %-12.5f %s\n",
			p.customer.ID, p.customer.Point[0], p.customer.Point[1], p.cost, how)
	}

	free := 0
	for _, p := range prospects {
		if p.viaSafe {
			free++
		}
	}
	fmt.Printf("\n%d of %d prospects are reachable with a safe product tweak alone\n", free, len(prospects))
	fmt.Println("(every answer preserves the entire organic audience)")
}
