// Safe product tuning: the safe region (Algorithm 3) as a standalone tool.
// A product manager wants to know how much pricing freedom a product has
// before any existing customer defects — and how that freedom shrinks as the
// customer base grows (the effect behind the paper's Fig. 14).
//
// Run with: go run ./examples/safetuning
package main

import (
	"fmt"

	"repro"
)

func main() {
	market, err := repro.GenerateDataset("UN", 12000, 2, 21)
	if err != nil {
		panic(err)
	}
	db := repro.NewDB(2, market)

	// Probe queries with growing reverse skylines.
	fmt.Println("How pricing freedom shrinks as the customer base grows:")
	fmt.Printf("%-28s %-10s %-14s %s\n", "product position", "|RSL|", "safe area", "price slack at current mileage")
	shown := map[int]bool{}
	for i := 0; i < len(market) && len(shown) < 8; i += 37 {
		q := market[i].Point.Clone()
		q[0] += 3 // nudge off the data point
		rsl := db.ReverseSkyline(market, q)
		if len(rsl) == 0 || len(rsl) > 12 || shown[len(rsl)] {
			continue
		}
		shown[len(rsl)] = true
		sr := db.SafeRegion(q, rsl)
		lo, hi := priceSlack(sr, q)
		fmt.Printf("(%8.1f, %8.1f)          %-10d %-14.1f [%.1f, %.1f]\n",
			q[0], q[1], len(rsl), sr.Area(), lo, hi)
	}

	// Zoom into one product: enumerate the safe rectangles and verify the
	// guarantee by direct recomputation at a few safe positions.
	q := market[37].Point.Clone()
	q[0] += 2
	rsl := db.ReverseSkyline(market, q)
	sr := db.SafeRegion(q, rsl)
	fmt.Printf("\nProduct at %v with %d customers; safe region has %d rectangles:\n",
		q, len(rsl), len(sr))
	for i, r := range sr {
		if i == 6 {
			fmt.Printf("  ... and %d more\n", len(sr)-6)
			break
		}
		fmt.Printf("  %v\n", r)
	}

	verified := 0
	for _, r := range sr {
		if r.Area() == 0 {
			continue
		}
		probe := r.Center()
		after := db.ReverseSkyline(market, probe)
		kept := map[int]bool{}
		for _, c := range after {
			kept[c.ID] = true
		}
		ok := true
		for _, c := range rsl {
			if !kept[c.ID] {
				ok = false
			}
		}
		if !ok {
			fmt.Printf("  VIOLATION at %v\n", probe)
		} else {
			verified++
		}
		if verified >= 5 {
			break
		}
	}
	fmt.Printf("verified %d safe positions by full reverse-skyline recomputation: no customer lost\n", verified)
}

// priceSlack reports the price interval reachable from q inside the safe
// region without changing the second attribute.
func priceSlack(sr repro.Region, q repro.Point) (lo, hi float64) {
	lo, hi = q[0], q[0]
	for _, r := range sr {
		if q[1] >= r.Lo[1] && q[1] <= r.Hi[1] {
			if r.Lo[0] < lo {
				lo = r.Lo[0]
			}
			if r.Hi[0] > hi {
				hi = r.Hi[0]
			}
		}
	}
	return lo, hi
}
