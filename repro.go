// Package repro is a Go implementation of "On Answering Why-not Questions in
// Reverse Skyline Queries" (Islam, Zhou, Liu — ICDE 2013).
//
// Given a product catalogue P, a query product q, and customer preferences C,
// the reverse skyline RSL(q) is the set of customers whose dynamic skyline
// contains q — the customers for whom q is interesting. A why-not question
// asks why a particular customer c_t is missing from RSL(q), and what minimal
// change would fix that. This package answers it four ways:
//
//   - Explain: the culprit products that keep c_t away (deleting them admits
//     c_t — Lemma 1 of the paper);
//   - MWP (Algorithm 1): minimally move the customer preference c_t;
//   - MQP (Algorithm 2): minimally move the product q, possibly losing other
//     customers;
//   - MWQ (Algorithm 4): move q only within its safe region — the area where
//     no existing customer is lost (Algorithm 3) — and move c_t only if the
//     safe region cannot reach it; an approximate precomputed variant trades
//     answer quality for orders-of-magnitude faster safe regions (§VI.B.1).
//
// # Quickstart
//
//	products := []repro.Item{
//		{ID: 1, Point: repro.NewPoint(5, 30)},   // price K$, mileage Kmi
//		{ID: 2, Point: repro.NewPoint(7.5, 42)},
//		// ...
//	}
//	db := repro.NewDB(2, products)               // R*-tree indexed
//	q := repro.NewPoint(8.5, 55)                 // the car we want to sell
//	rsl := db.ReverseSkyline(products, q)        // who is interested now
//	res := db.MWP(products[0], q, repro.Options{})
//	fmt.Println(res.Best().Point)                // minimal customer move
//
// All heavy lifting lives in internal packages (R*-tree, skyline algorithms,
// rectangle-region algebra); this package is the stable surface examples and
// downstream users build on.
package repro

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cancel"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/obs/flight"
	"repro/internal/region"
	"repro/internal/rskyline"
	"repro/internal/rtree"
	"repro/internal/wal"
	"repro/internal/whynot"
)

// Point is a d-dimensional point.
type Point = geom.Point

// Rect is a closed axis-aligned rectangle.
type Rect = geom.Rect

// Item is an identified point stored in the database.
type Item = rtree.Item

// Options tunes the why-not algorithms (sort dimension, per-dimension cost
// weights). The zero value reproduces the paper's setup.
type Options = whynot.Options

// Candidate is a proposed location with its normalised movement cost.
type Candidate = whynot.Candidate

// MWPResult is the outcome of modifying the why-not point (Algorithm 1).
type MWPResult = whynot.MWPResult

// MQPResult is the outcome of modifying the query point (Algorithm 2).
type MQPResult = whynot.MQPResult

// MWQResult is the outcome of modifying both points under the safe region
// (Algorithm 4).
type MWQResult = whynot.MWQResult

// Region is a union of rectangles (safe regions, anti-dominance regions).
type Region = region.Set

// ApproxStore holds precomputed approximate dynamic skylines (§VI.B.1).
type ApproxStore = whynot.ApproxStore

// Dataset is a named point collection with CSV round-tripping.
type Dataset = dataset.Dataset

// NewPoint builds a Point from coordinates.
func NewPoint(coords ...float64) Point { return geom.NewPoint(coords...) }

// QueryTrace records the timed phases (spans) and annotated instants
// (events) of one query: which ladder rungs ran, how long the safe-region
// construction took, why a degradation happened. Obtain one with StartTrace,
// run the query with the returned context, then read Spans/Events/Format.
type QueryTrace = obs.Trace

// CacheStatsDetail is the accounting snapshot of one memoisation cache.
type CacheStatsDetail = exec.CacheStats

// ExecMetrics is the worker-pool instrumentation handle carried by contexts.
type ExecMetrics = obs.ExecMetrics

// ExplainPlan is the structured plan-tree profile of one query: which phases
// ran, how many candidates entered and survived each one, which pruning rule
// did the work, per-level R-tree page accesses, and estimated vs actual cost
// per phase. Obtain one with StartExplain; render it with its String (timed)
// or StableString (deterministic) methods.
type ExplainPlan = explain.Plan

// ExplainNode is one profiled phase of an ExplainPlan.
type ExplainNode = explain.Node

// FingerprintClass is the aggregated latency/cost/prune-ratio profile of one
// workload class in the query-fingerprint regression store.
type FingerprintClass = explain.ClassSnapshot

// DB is a product database indexed by an R*-tree, answering reverse-skyline
// queries and why-not questions over it.
type DB struct {
	engine *whynot.Engine
	// workers is the configured parallelism: 0 means GOMAXPROCS, 1 means
	// fully sequential execution (the default).
	workers int
	// reg and pool are non-nil only when DBOptions.Observability is set; every
	// obs type is nil-safe, so the disabled state needs no branches below.
	reg      *obs.Registry
	pool     *obs.ExecMetrics
	queries  *obs.LabeledCounter
	queryDur *obs.Histogram
	// flight is non-nil only with DBOptions.FlightSize > 0: the per-query
	// ledger recording one flight.QueryRecord per DB entry point.
	flight *flight.Ledger
	// explainModel and fingerprints back the EXPLAIN surface. Both are always
	// on — a query that never calls StartExplain pays only the nil context
	// checks in the instrumented layers.
	explainModel *explain.Model
	fingerprints *explain.Store
	// Durable-mode state (OpenDurable): the write-ahead log, the live item
	// set it checkpoints from, and the mutation lock that keeps WAL order
	// identical to index-apply order. All nil/zero on an in-memory DB.
	wal      *wal.Log
	mutMu    sync.Mutex
	items    map[int]Item
	recovery wal.Recovery
}

// DBOptions tunes execution of a DB beyond the paper's single-threaded
// reference configuration. The zero value preserves that reference behaviour
// exactly: sequential execution, no caching.
type DBOptions struct {
	// Parallelism is the worker count for the parallelisable per-customer
	// loops (reverse skylines, safe-region construction, batch why-not
	// answering, approximate-store builds). 0 or 1 runs sequentially — the
	// paper's reference behaviour; n > 1 uses n workers; negative means
	// GOMAXPROCS.
	Parallelism int
	// CacheSize bounds the memoisation caches for per-customer dynamic
	// skylines and anti-dominance regions (entries each). 0 disables
	// caching. Cached entries are invalidated by Insert and Delete.
	CacheSize int
	// Observability turns on the metrics registry and per-query tracing for
	// this DB: Metrics() serves Prometheus/JSON renderings of the paper's
	// cost counters (node accesses, dominance tests, ...), worker-pool
	// utilisation flows into every parallel query, and StartTrace records
	// per-query phase spans. Disabled (the default), every instrumentation
	// hook is a nil no-op on the query path.
	Observability bool
	// Durability, when non-nil, configures write-ahead logging for this DB.
	// Only OpenDurable reads it; NewDBWithOptions ignores it (an in-memory DB
	// has no log).
	Durability *DurabilityOptions
	// FlightSize, when positive, turns on the per-query flight recorder: a
	// bounded ring of flight.QueryRecords (one per query entering this DB)
	// readable via FlightRecorder(). Records carry the same schema the
	// serving layer's ledger and `cmd/whynot -stats` use. With Observability
	// also on, the ledger's meta-metrics join the registry.
	FlightSize int
}

// NewDB bulk-loads products into an R*-tree (the paper's 1536-byte page
// configuration) and prepares the why-not engine. Products and customers are
// treated monochromatically: a customer whose ID matches a product record is
// not blocked by its own record.
func NewDB(dims int, products []Item) *DB {
	return NewDBWithOptions(dims, products, DBOptions{})
}

// NewDBWithOptions is NewDB with explicit parallelism and caching knobs.
func NewDBWithOptions(dims int, products []Item, opts DBOptions) *DB {
	rdb := rskyline.NewDB(dims, products, rtree.Config{})
	engine := whynot.NewEngine(rdb, true)
	if opts.CacheSize > 0 {
		rdb.EnableDSLCache(opts.CacheSize)
		engine.EnableAntiDDRCache(opts.CacheSize)
	}
	workers := opts.Parallelism
	switch {
	case workers < 0:
		workers = 0 // internal layers read 0 as GOMAXPROCS
	case workers == 0:
		workers = 1 // zero value: the paper's sequential reference behaviour
	}
	db := &DB{
		engine:       engine,
		workers:      workers,
		explainModel: explain.NewModel(),
		fingerprints: explain.NewStore(0),
	}
	if opts.Observability {
		db.initObservability(rdb)
	}
	if opts.FlightSize > 0 {
		db.flight = flight.New(flight.Config{
			Size:     opts.FlightSize,
			Latency:  db.queryDur,
			Epoch:    time.Now().Add(-time.Duration(obs.Now())),
			Registry: db.reg,
		})
	}
	return db
}

// initObservability builds the registry and registers every read-through
// counter: the process-global cost counters, this DB's R-tree I/O counters,
// the cache accounting, the worker-pool metrics and the per-query ladder.
func (db *DB) initObservability(rdb *rskyline.DB) {
	r := obs.NewRegistry()
	obs.RegisterCost(r)
	obs.RegisterTraceHealth(r)
	obs.RegisterRuntime(r)
	r.GaugeFunc("fingerprint_drift",
		"Workload classes whose recent latency p95 drifted past their frozen baseline",
		func() float64 { return float64(db.fingerprints.Drifting()) })
	tree := rdb.Tree() // the tree pointer is stable across Insert/Delete
	r.CounterFunc("rtree_node_accesses_total",
		"R-tree nodes visited (the paper's I/O cost metric)",
		func() uint64 { return uint64(tree.Accesses()) })
	r.CounterFunc("rtree_leaf_scans_total",
		"R-tree leaf nodes among the visited (data-page reads)",
		func() uint64 { return uint64(tree.LeafScans()) })
	for _, c := range []struct {
		prefix string
		stats  func() exec.CacheStats
	}{
		{"dsl_cache", rdb.DSLCacheStats},
		{"antiddr_cache", db.engine.AntiDDRCacheStats},
	} {
		stats := c.stats
		r.CounterFunc(c.prefix+"_hits_total", "cache hits (including stale-on-arrival)",
			func() uint64 { return stats().Hits })
		r.CounterFunc(c.prefix+"_misses_total", "cache misses",
			func() uint64 { return stats().Misses })
		r.CounterFunc(c.prefix+"_stale_total", "stale-on-arrival hits (generation-invalidated)",
			func() uint64 { return stats().Stale })
		r.CounterFunc(c.prefix+"_evictions_total", "LRU evictions",
			func() uint64 { return stats().Evictions })
		r.GaugeFunc(c.prefix+"_entries", "current cache occupancy",
			func() float64 { return float64(stats().Len) })
	}
	db.reg = r
	db.pool = obs.NewExecMetrics(r)
	db.queries = r.LabeledCounter("queries_total", "queries served, by operation", "op")
	db.queryDur = r.Histogram("query_duration_seconds", "end-to-end query latency", nil)
}

// Metrics returns this DB's metrics registry (nil unless the DB was built
// with DBOptions.Observability). Serve it with obs endpoints via its Handler,
// or render it directly with WritePrometheus / WriteJSON.
func (db *DB) Metrics() *obs.Registry { return db.reg }

// PoolMetrics returns the worker-pool instrumentation handle (nil when
// observability is off). Attach it to foreign contexts with
// WithExecMetrics when driving the engine directly.
func (db *DB) PoolMetrics() *ExecMetrics { return db.pool }

// WithExecMetrics attaches worker-pool instrumentation to a context.
func WithExecMetrics(ctx context.Context, m *ExecMetrics) context.Context {
	return obs.WithExecMetrics(ctx, m)
}

// StartTrace begins a per-query trace named op and returns a derived context
// carrying it: pass that context to any XxxContext method and the engine
// layers record their phase spans and events into the trace. When
// observability is disabled both returns are pass-throughs (nil trace: every
// trace method is a no-op), so call sites need no branches.
func (db *DB) StartTrace(ctx context.Context, op string) (context.Context, *QueryTrace) {
	if db.reg == nil {
		return ctx, nil
	}
	t := obs.NewTrace(op)
	return obs.WithTrace(ctx, t), t
}

// TraceFromContext returns the trace carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *QueryTrace { return obs.TraceFrom(ctx) }

// StartExplain opens a plan-tree profile for one query: run any XxxContext
// method with the returned context and the instrumented layers (window
// queries, MWP candidate generation, safe-region folds, MWQ corner
// enumeration) record plan nodes with candidate counts, pruning rules,
// R-tree accesses and estimated-vs-actual cost. The finish func closes the
// plan — pass the degradation rung that answered ("exact", "approx", ...; ""
// when no ladder is involved) — feeds the query-fingerprint regression
// store, and returns the plan for rendering or inspection.
//
// Available regardless of DBOptions.Observability: the per-node cost model
// and fingerprint store are always on, and a query that never calls
// StartExplain pays only a nil context check per instrumentation hook.
func (db *DB) StartExplain(ctx context.Context, op string) (context.Context, func(rung string) *ExplainPlan) {
	b := explain.NewBuilder(op, db.Dims(), db.explainModel, db.engine.DB.Tree())
	ctx = explain.With(ctx, b)
	fctx := ctx
	return ctx, func(rung string) *ExplainPlan {
		plan := b.Finish(rung)
		if db.fingerprints.Observe(plan) {
			// Drift rides the query trace (and with it any flight record):
			// the workload class this query belongs to has regressed.
			obs.TraceFrom(fctx).Eventf("fingerprint_drift", "%s", plan.Fingerprint)
		}
		return plan
	}
}

// Fingerprints returns the per-workload-class aggregates of the
// query-fingerprint regression store, busiest class first. Classes form from
// queries profiled via StartExplain (including the serving layer's
// explain=1 requests when this DB backs a server snapshot).
func (db *DB) Fingerprints() []FingerprintClass { return db.fingerprints.Snapshot() }

// FingerprintDrift reports how many workload classes currently trip the
// p95 drift detector — the value behind the fingerprint_drift gauge.
func (db *DB) FingerprintDrift() int { return db.fingerprints.Drifting() }

// MWQExactExplain is MWQExactContext with a plan profile: it computes the
// safe region, answers the why-not question, and returns the structured
// EXPLAIN plan alongside the result.
func (db *DB) MWQExactExplain(ctx context.Context, ct Item, q Point, rsl []Item, opt Options) (MWQResult, *ExplainPlan, error) {
	ctx, finish := db.StartExplain(ctx, "mwq")
	res, err := db.MWQExactContext(ctx, ct, q, rsl, opt)
	return res, finish("exact"), err
}

// MWPExplain is MWPContext with a plan profile.
func (db *DB) MWPExplain(ctx context.Context, ct Item, q Point, opt Options) (MWPResult, *ExplainPlan, error) {
	ctx, finish := db.StartExplain(ctx, "mwp")
	res, err := db.MWPContext(ctx, ct, q, opt)
	return res, finish(""), err
}

// obsCtx instruments a context entering this DB: worker-pool metrics ride it
// into every exec.ForEach fan-out below. The per-op counter and latency
// histogram are recorded by the returned finish func (nil-safe when off),
// and with the flight recorder on each entry gets its own QueryRecord whose
// trace rides the context (unless the caller already supplied one).
func (db *DB) obsCtx(ctx context.Context, op string) (context.Context, func()) {
	if db.reg == nil && db.flight == nil {
		return ctx, func() {}
	}
	db.queries.With(op).Inc()
	start := obs.Now()
	if db.pool != nil {
		ctx = obs.WithExecMetrics(ctx, db.pool)
	}
	act := db.flight.Begin(op, "db", "", db.workers)
	if act != nil && obs.TraceFrom(ctx) == nil {
		ctx = obs.WithTrace(ctx, act.Trace())
	}
	fctx := ctx
	return ctx, func() {
		db.queryDur.ObserveSince(start)
		// The context's terminal state classifies the outcome: a dead
		// context at completion means the query returned its ctx error.
		act.Finish(flight.ClassifyErr(fctx.Err()), "")
	}
}

// FlightRecorder returns the per-DB query ledger, nil unless
// DBOptions.FlightSize > 0.
func (db *DB) FlightRecorder() *flight.Ledger { return db.flight }

// Cost is a point-in-time snapshot of the paper's cost metrics: the
// process-global algorithm counters plus this DB's R-tree I/O counters.
// Subtract two snapshots to attribute cost to one query or workload.
type Cost struct {
	obs.CostSnapshot
	NodeAccesses uint64 `json:"node_accesses"`
	LeafScans    uint64 `json:"leaf_scans"`
}

// Cost reads the current cost counters. Available regardless of the
// Observability option — the counters are always on (their overhead is a few
// batched atomic adds per query).
func (db *DB) Cost() Cost {
	tree := db.engine.DB.Tree()
	return Cost{
		CostSnapshot: obs.Cost(),
		NodeAccesses: uint64(tree.Accesses()),
		LeafScans:    uint64(tree.LeafScans()),
	}
}

// Sub returns the per-field difference c − o.
func (c Cost) Sub(o Cost) Cost {
	return Cost{
		CostSnapshot: c.CostSnapshot.Sub(o.CostSnapshot),
		NodeAccesses: c.NodeAccesses - o.NodeAccesses,
		LeafScans:    c.LeafScans - o.LeafScans,
	}
}

// Workers returns the resolved parallelism in the internal convention:
// 0 = GOMAXPROCS, 1 = sequential, n > 1 = n worker goroutines.
func (db *DB) Workers() int { return db.workers }

// Insert adds a product to the index and invalidates every derived cache
// (cached dynamic skylines and anti-dominance regions are stamped with a
// mutation generation and can never be served after this call). On a durable
// DB (OpenDurable) it panics: bypassing the WAL would silently fork the
// on-disk and in-memory states — use InsertDurable.
func (db *DB) Insert(it Item) {
	if db.wal != nil {
		panic("repro: Insert on a durable DB bypasses the WAL; use InsertDurable")
	}
	db.engine.DB.Insert(it)
	db.engine.InvalidateCaches()
}

// Delete removes the product equal to it (ID and position), reporting whether
// it was present. A successful delete invalidates every derived cache. On a
// durable DB it panics — use DeleteDurable.
func (db *DB) Delete(it Item) bool {
	if db.wal != nil {
		panic("repro: Delete on a durable DB bypasses the WAL; use DeleteDurable")
	}
	ok := db.engine.DB.Delete(it)
	if ok {
		db.engine.InvalidateCaches()
	}
	return ok
}

// InvalidateCaches retires every memoised structure of this DB without
// touching the index: the mutation generation is bumped (so generation-stamped
// cache entries held anywhere — including by in-flight queries that grabbed
// this DB before the call — are rejected as stale-on-arrival from now on) and
// the per-customer caches are purged to release their memory. Hot-swap
// serving layers call it on the outgoing snapshot after an atomic dataset
// swap; queries already running against the old snapshot stay correct, they
// just stop reusing its caches.
func (db *DB) InvalidateCaches() {
	db.engine.DB.Invalidate()
	db.engine.InvalidateCaches()
}

// Len returns the number of products.
func (db *DB) Len() int { return db.engine.DB.Len() }

// Dims returns the dimensionality.
func (db *DB) Dims() int { return db.engine.DB.Dims() }

// DynamicSkyline returns DSL(c): the products not dynamically dominated with
// respect to the preference point c (Definition 2).
func (db *DB) DynamicSkyline(c Point) []Item {
	return db.engine.DB.DynamicSkyline(c)
}

// ReverseSkyline returns RSL(q) over the given customers: those whose dynamic
// skyline contains q (Definition 3). With Parallelism configured the
// per-customer verification runs on the worker pool; results are identical.
func (db *DB) ReverseSkyline(customers []Item, q Point) []Item {
	ctx, done := db.obsCtx(context.Background(), "rsl")
	defer done()
	if db.workers != 1 {
		out, _ := db.engine.DB.ReverseSkylineFilteredParallel(ctx, customers, q, db.workers)
		return out
	}
	return db.engine.DB.ReverseSkylineFiltered(customers, q)
}

// IsReverseSkyline reports whether customer c belongs to RSL(q).
func (db *DB) IsReverseSkyline(c Item, q Point) bool {
	return db.engine.DB.IsReverseSkyline(c, q)
}

// Explain returns the culprit products whose presence keeps c_t out of
// RSL(q); empty means c_t is already a reverse-skyline point.
func (db *DB) Explain(ct Item, q Point) []Item {
	return db.engine.Explain(ct, q)
}

// MWP modifies the why-not point: candidate minimal moves of c_t that put q
// into its dynamic skyline (Algorithm 1).
func (db *DB) MWP(ct Item, q Point, opt Options) MWPResult {
	return db.engine.MWP(ct, q, opt)
}

// MQP modifies the query point: candidate minimal moves of q that put c_t
// into RSL(q*) (Algorithm 2). Existing customers may be lost; use
// MQPTotalCost to charge their restoration.
func (db *DB) MQP(ct Item, q Point, opt Options) MQPResult {
	return db.engine.MQP(ct, q, opt)
}

// MQPTotalCost is the §VI.A experimental cost of a refined query point:
// distance from the safe region plus the MWP cost of winning back every lost
// customer.
func (db *DB) MQPTotalCost(q, qStar Point, rsl []Item, sr Region, opt Options) float64 {
	return db.engine.MQPTotalCost(q, qStar, rsl, sr, opt)
}

// SafeRegion computes the exact safe region of q (Algorithm 3): the locus of
// query positions that keep every customer of rsl in the reverse skyline.
// With Parallelism configured the per-customer anti-dominance regions are
// built on the worker pool; results are identical.
func (db *DB) SafeRegion(q Point, rsl []Item) Region {
	ctx, done := db.obsCtx(context.Background(), "saferegion")
	defer done()
	if db.workers != 1 {
		sr, _ := db.engine.SafeRegionParallel(ctx, q, rsl, db.workers)
		return sr
	}
	return db.engine.SafeRegion(q, rsl)
}

// AntiDominanceRegion returns the anti-DDR of a customer as rectangles
// (Fig. 10): q lies inside it iff the customer is in RSL(q).
func (db *DB) AntiDominanceRegion(c Item) Region {
	return db.engine.AntiDDROf(c)
}

// MWQ answers the why-not question with both-point modification under a
// precomputed safe region (Algorithm 4).
func (db *DB) MWQ(ct Item, q Point, sr Region, opt Options) MWQResult {
	return db.engine.MWQ(ct, q, sr, opt)
}

// MWQExact computes the safe region and answers the why-not question. With
// Parallelism configured the safe-region construction runs on the worker
// pool; results are identical.
func (db *DB) MWQExact(ct Item, q Point, rsl []Item, opt Options) MWQResult {
	ctx, done := db.obsCtx(context.Background(), "mwq")
	defer done()
	if db.workers != 1 {
		res, _ := db.engine.MWQExactParallelCtx(ctx, ct, q, rsl, opt, db.workers)
		return res
	}
	return db.engine.MWQExact(ct, q, rsl, opt)
}

// MWQBatch answers one why-not question per customer against the same query
// point, computing the safe region once (§VI.B's reuse property). Results
// align positionally with cts. With Parallelism configured both the
// safe-region construction and the per-question loop run on the worker pool.
func (db *DB) MWQBatch(cts []Item, q Point, rsl []Item, opt Options) []MWQResult {
	ctx, done := db.obsCtx(context.Background(), "mwq-batch")
	defer done()
	if db.workers != 1 {
		sr, err := db.engine.SafeRegionParallel(ctx, q, rsl, db.workers)
		if err != nil {
			return nil
		}
		return db.engine.MWQBatchParallel(cts, q, sr, opt, db.workers)
	}
	return db.engine.MWQBatch(cts, q, rsl, opt)
}

// MWQBatchParallel runs a batch of why-not questions against a shared safe
// region on worker goroutines (0 = GOMAXPROCS).
func (db *DB) MWQBatchParallel(cts []Item, q Point, sr Region, opt Options, workers int) []MWQResult {
	return db.engine.MWQBatchParallel(cts, q, sr, opt, workers)
}

// TruncateSafeRegion clips a safe region to a feature-limit box (§V.B):
// still loses no customer, but respects business constraints on how far the
// product may move.
func TruncateSafeRegion(sr Region, limits Rect) Region {
	return whynot.TruncateSafeRegion(sr, limits)
}

// ExpandSafeRegion relaxes movement to a whole feature box (§V.B), accepting
// possible customer loss; quantify it per position with LostCustomers.
func ExpandSafeRegion(limits Rect) Region {
	return whynot.ExpandSafeRegion(limits)
}

// LostCustomers returns the members of rsl that would leave the reverse
// skyline if q moved to qStar.
func (db *DB) LostCustomers(qStar Point, rsl []Item) []Item {
	return db.engine.LostCustomers(qStar, rsl)
}

// BuildApproxStore precomputes k-sampled dynamic skylines for the given
// customers (the offline step of §VI.B.1). With Parallelism configured the
// per-customer precomputation runs on the worker pool.
func (db *DB) BuildApproxStore(customers []Item, k int) *ApproxStore {
	if db.workers != 1 {
		return db.engine.BuildApproxStoreParallel(customers, k, 0, db.workers)
	}
	return db.engine.BuildApproxStore(customers, k, 0)
}

// BuildApproxStoreParallel is BuildApproxStore fanned out over worker
// goroutines (0 = GOMAXPROCS); the index is only read, so results are
// identical.
func (db *DB) BuildApproxStoreParallel(customers []Item, k, workers int) *ApproxStore {
	return db.engine.BuildApproxStoreParallel(customers, k, 0, workers)
}

// LoadApproxStore reads a store previously written with ApproxStore.Save.
func LoadApproxStore(r io.Reader) (*ApproxStore, error) {
	return whynot.LoadApproxStore(r)
}

// ReverseSkylineBBRS computes RSL(q) in the monochromatic setting (customer
// preferences are the product records themselves) with the index-based BBRS
// pipeline of Dellis & Seeger. With Parallelism configured the per-candidate
// verification runs on the worker pool; results are identical.
func (db *DB) ReverseSkylineBBRS(q Point) []Item {
	ctx, done := db.obsCtx(context.Background(), "rsl-bbrs")
	defer done()
	if db.workers != 1 {
		out, _ := db.engine.DB.ReverseSkylineBBRSParallel(ctx, q, db.workers)
		return out
	}
	return db.engine.DB.ReverseSkylineBBRS(q)
}

// MWQApprox answers the why-not question using the approximate safe region
// assembled from the store: much faster, never worse than MWP.
func (db *DB) MWQApprox(ct Item, q Point, rsl []Item, store *ApproxStore, opt Options) MWQResult {
	return db.engine.MWQApprox(ct, q, rsl, store, opt)
}

// ValidateWhyNotMove verifies an MWP candidate with a real window query
// after an ε-nudge toward q (candidates are infima on the valid region's
// boundary).
func (db *DB) ValidateWhyNotMove(ct Item, q Point, cand Point, eps float64) bool {
	return db.engine.ValidateWhyNotMove(ct, q, cand, eps)
}

// ValidateQueryMove verifies an MQP candidate likewise.
func (db *DB) ValidateQueryMove(ct Item, cand Point, eps float64) bool {
	return db.engine.ValidateQueryMove(ct, cand, eps)
}

// Engine exposes the underlying why-not engine for advanced use (custom
// normalisers, direct window queries).
func (db *DB) Engine() *whynot.Engine { return db.engine }

// CacheStats is the accounting of both memoisation caches.
type CacheStats struct {
	DSL     CacheStatsDetail `json:"dsl"`
	AntiDDR CacheStatsDetail `json:"anti_ddr"`
}

// CacheStats reports hits, misses, stale-on-arrival hits, evictions and
// occupancy of the dynamic-skyline and anti-dominance-region caches (all
// zeros when CacheSize is 0).
func (db *DB) CacheStats() CacheStats {
	return CacheStats{
		DSL:     db.engine.DB.DSLCacheStats(),
		AntiDDR: db.engine.AntiDDRCacheStats(),
	}
}

// --- Context-aware API -----------------------------------------------------
//
// Every XxxContext method is the corresponding method with cooperative
// deadline/cancellation support: pass a context carrying a deadline (or one
// that may be cancelled) and the query returns early with a wrapped ctx.Err()
// instead of running to completion. A context that is already cancelled at the
// call boundary returns immediately with zero algorithmic work — no index
// node is touched. Errors unwrap to context.Canceled or
// context.DeadlineExceeded via errors.Is.

// wrapCtxErr stamps query-stack errors with the public package and operation
// name so a caller several layers up can tell which query timed out.
func wrapCtxErr(op string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("repro: %s: %w", op, err)
}

// begin is the shared call-boundary guard: an already-expired context is
// rejected before any work, and an active one is converted to a checker for
// the internal layers.
func begin(ctx context.Context, op string) (*cancel.Checker, error) {
	if ctx == nil {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapCtxErr(op, err)
	}
	return cancel.FromContext(ctx), nil
}

// DynamicSkylineContext is DynamicSkyline with deadline/cancellation support.
func (db *DB) DynamicSkylineContext(ctx context.Context, c Point) ([]Item, error) {
	const op = "dynamic skyline"
	ctx, done := db.obsCtx(ctx, "dsl")
	defer done()
	chk, err := begin(ctx, op)
	if err != nil {
		return nil, err
	}
	out, err := db.engine.DB.DynamicSkylineChecked(chk, c)
	return out, wrapCtxErr(op, err)
}

// ReverseSkylineContext is ReverseSkyline with deadline/cancellation support.
func (db *DB) ReverseSkylineContext(ctx context.Context, customers []Item, q Point) ([]Item, error) {
	const op = "reverse skyline"
	ctx, done := db.obsCtx(ctx, "rsl")
	defer done()
	chk, err := begin(ctx, op)
	if err != nil {
		return nil, err
	}
	if db.workers != 1 {
		out, err := db.engine.DB.ReverseSkylineFilteredParallel(ctx, customers, q, db.workers)
		return out, wrapCtxErr(op, err)
	}
	out, err := db.engine.DB.ReverseSkylineFilteredChecked(chk, customers, q)
	return out, wrapCtxErr(op, err)
}

// IsReverseSkylineContext is IsReverseSkyline with deadline/cancellation
// support.
func (db *DB) IsReverseSkylineContext(ctx context.Context, c Item, q Point) (bool, error) {
	const op = "reverse skyline membership"
	chk, err := begin(ctx, op)
	if err != nil {
		return false, err
	}
	ok, err := db.engine.DB.IsReverseSkylineChecked(chk, c, q)
	return ok, wrapCtxErr(op, err)
}

// ReverseSkylineBBRSContext is ReverseSkylineBBRS with deadline/cancellation
// support.
func (db *DB) ReverseSkylineBBRSContext(ctx context.Context, q Point) ([]Item, error) {
	const op = "reverse skyline (BBRS)"
	ctx, done := db.obsCtx(ctx, "rsl-bbrs")
	defer done()
	chk, err := begin(ctx, op)
	if err != nil {
		return nil, err
	}
	if db.workers != 1 {
		out, err := db.engine.DB.ReverseSkylineBBRSParallel(ctx, q, db.workers)
		return out, wrapCtxErr(op, err)
	}
	out, err := db.engine.DB.ReverseSkylineBBRSChecked(chk, q)
	return out, wrapCtxErr(op, err)
}

// ExplainContext is Explain with deadline/cancellation support.
func (db *DB) ExplainContext(ctx context.Context, ct Item, q Point) ([]Item, error) {
	ctx, done := db.obsCtx(ctx, "explain")
	defer done()
	out, err := db.engine.ExplainCtx(ctx, ct, q)
	return out, wrapCtxErr("explain", err)
}

// MWPContext is MWP with deadline/cancellation support.
func (db *DB) MWPContext(ctx context.Context, ct Item, q Point, opt Options) (MWPResult, error) {
	ctx, done := db.obsCtx(ctx, "mwp")
	defer done()
	res, err := db.engine.MWPCtx(ctx, ct, q, opt)
	return res, wrapCtxErr("MWP", err)
}

// MQPContext is MQP with deadline/cancellation support.
func (db *DB) MQPContext(ctx context.Context, ct Item, q Point, opt Options) (MQPResult, error) {
	ctx, done := db.obsCtx(ctx, "mqp")
	defer done()
	res, err := db.engine.MQPCtx(ctx, ct, q, opt)
	return res, wrapCtxErr("MQP", err)
}

// MQPTotalCostContext is MQPTotalCost with deadline/cancellation support.
func (db *DB) MQPTotalCostContext(ctx context.Context, q, qStar Point, rsl []Item, sr Region, opt Options) (float64, error) {
	cost, err := db.engine.MQPTotalCostCtx(ctx, q, qStar, rsl, sr, opt)
	return cost, wrapCtxErr("MQP total cost", err)
}

// SafeRegionContext is SafeRegion with deadline/cancellation support. The
// exact construction is the step that grows exponentially with |RSL(q)| in
// the worst case, so this is the method that most needs a deadline.
func (db *DB) SafeRegionContext(ctx context.Context, q Point, rsl []Item) (Region, error) {
	ctx, done := db.obsCtx(ctx, "saferegion")
	defer done()
	if db.workers != 1 {
		sr, err := db.engine.SafeRegionParallel(ctx, q, rsl, db.workers)
		return sr, wrapCtxErr("safe region", err)
	}
	sr, err := db.engine.SafeRegionCtx(ctx, q, rsl)
	return sr, wrapCtxErr("safe region", err)
}

// ApproxSafeRegionContext assembles the approximate safe region from a
// precomputed store with deadline/cancellation support.
func (db *DB) ApproxSafeRegionContext(ctx context.Context, q Point, rsl []Item, store *ApproxStore) (Region, error) {
	ctx, done := db.obsCtx(ctx, "approx-saferegion")
	defer done()
	sr, err := db.engine.ApproxSafeRegionCtx(ctx, q, rsl, store)
	return sr, wrapCtxErr("approximate safe region", err)
}

// AntiDominanceRegionContext is AntiDominanceRegion with
// deadline/cancellation support.
func (db *DB) AntiDominanceRegionContext(ctx context.Context, c Item) (Region, error) {
	set, err := db.engine.AntiDDROfCtx(ctx, c)
	return set, wrapCtxErr("anti-dominance region", err)
}

// MWQContext is MWQ with deadline/cancellation support.
func (db *DB) MWQContext(ctx context.Context, ct Item, q Point, sr Region, opt Options) (MWQResult, error) {
	ctx, done := db.obsCtx(ctx, "mwq")
	defer done()
	res, err := db.engine.MWQCtx(ctx, ct, q, sr, opt)
	return res, wrapCtxErr("MWQ", err)
}

// MWQExactContext is MWQExact with deadline/cancellation support.
func (db *DB) MWQExactContext(ctx context.Context, ct Item, q Point, rsl []Item, opt Options) (MWQResult, error) {
	ctx, done := db.obsCtx(ctx, "mwq")
	defer done()
	if db.workers != 1 {
		res, err := db.engine.MWQExactParallelCtx(ctx, ct, q, rsl, opt, db.workers)
		return res, wrapCtxErr("exact MWQ", err)
	}
	res, err := db.engine.MWQExactCtx(ctx, ct, q, rsl, opt)
	return res, wrapCtxErr("exact MWQ", err)
}

// MWQApproxContext is MWQApprox with deadline/cancellation support.
func (db *DB) MWQApproxContext(ctx context.Context, ct Item, q Point, rsl []Item, store *ApproxStore, opt Options) (MWQResult, error) {
	ctx, done := db.obsCtx(ctx, "approx-mwq")
	defer done()
	res, err := db.engine.MWQApproxCtx(ctx, ct, q, rsl, store, opt)
	return res, wrapCtxErr("approximate MWQ", err)
}

// MWQBatchContext is MWQBatch with deadline/cancellation support.
func (db *DB) MWQBatchContext(ctx context.Context, cts []Item, q Point, rsl []Item, opt Options) ([]MWQResult, error) {
	ctx, done := db.obsCtx(ctx, "mwq-batch")
	defer done()
	out, err := db.engine.MWQBatchCtx(ctx, cts, q, rsl, opt)
	return out, wrapCtxErr("MWQ batch", err)
}

// MWQBatchParallelContext is MWQBatchParallel with deadline/cancellation
// support; a panic in any worker is re-raised on the calling goroutine.
func (db *DB) MWQBatchParallelContext(ctx context.Context, cts []Item, q Point, sr Region, opt Options, workers int) ([]MWQResult, error) {
	ctx, done := db.obsCtx(ctx, "mwq-batch")
	defer done()
	out, err := db.engine.MWQBatchParallelCtx(ctx, cts, q, sr, opt, workers)
	return out, wrapCtxErr("parallel MWQ batch", err)
}

// LostCustomersContext is LostCustomers with deadline/cancellation support.
func (db *DB) LostCustomersContext(ctx context.Context, qStar Point, rsl []Item) ([]Item, error) {
	out, err := db.engine.LostCustomersCtx(ctx, qStar, rsl)
	return out, wrapCtxErr("lost customers", err)
}

// BuildApproxStoreContext is BuildApproxStore with deadline/cancellation
// support.
func (db *DB) BuildApproxStoreContext(ctx context.Context, customers []Item, k int) (*ApproxStore, error) {
	ctx, done := db.obsCtx(ctx, "buildstore")
	defer done()
	store, err := db.engine.BuildApproxStoreCtx(ctx, customers, k, 0)
	return store, wrapCtxErr("approx store build", err)
}

// BuildApproxStoreParallelContext is BuildApproxStoreParallel with
// deadline/cancellation support.
func (db *DB) BuildApproxStoreParallelContext(ctx context.Context, customers []Item, k, workers int) (*ApproxStore, error) {
	ctx, done := db.obsCtx(ctx, "buildstore")
	defer done()
	store, err := db.engine.BuildApproxStoreParallelCtx(ctx, customers, k, 0, workers)
	return store, wrapCtxErr("parallel approx store build", err)
}

// ValidateWhyNotMoveContext is ValidateWhyNotMove with deadline/cancellation
// support.
func (db *DB) ValidateWhyNotMoveContext(ctx context.Context, ct Item, q Point, cand Point, eps float64) (bool, error) {
	ok, err := db.engine.ValidateWhyNotMoveCtx(ctx, ct, q, cand, eps)
	return ok, wrapCtxErr("why-not move validation", err)
}

// ValidateQueryMoveContext is ValidateQueryMove with deadline/cancellation
// support.
func (db *DB) ValidateQueryMoveContext(ctx context.Context, ct Item, cand Point, eps float64) (bool, error) {
	ok, err := db.engine.ValidateQueryMoveCtx(ctx, ct, cand, eps)
	return ok, wrapCtxErr("query move validation", err)
}

// GenerateDataset produces one of the paper's experiment datasets: "UN"
// (uniform), "CO" (correlated), "AC" (anti-correlated) in dims dimensions,
// or "CarDB" (the simulated 2-d used-car market).
func GenerateDataset(kind string, n, dims int, seed int64) ([]Item, error) {
	k, err := ParseKind(kind)
	if err != nil {
		return nil, err
	}
	return datagen.Generate(k, n, dims, seed), nil
}

// ParseKind maps the paper's dataset labels onto generator kinds.
func ParseKind(kind string) (datagen.Kind, error) {
	switch kind {
	case "UN", "un", "uniform":
		return datagen.Uniform, nil
	case "CO", "co", "correlated":
		return datagen.Correlated, nil
	case "AC", "ac", "anticorrelated", "anti-correlated":
		return datagen.AntiCorrelated, nil
	case "CarDB", "cardb", "car":
		return datagen.CarDB, nil
	default:
		return 0, &UnknownKindError{Kind: kind}
	}
}

// UnknownKindError reports an unrecognised dataset label.
type UnknownKindError struct{ Kind string }

func (e *UnknownKindError) Error() string {
	return "unknown dataset kind " + e.Kind + " (want UN, CO, AC or CarDB)"
}
