package whynot

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rskyline"
	"repro/internal/rtree"
)

// fuzzEngine is shared across fuzz iterations (read-only use).
var fuzzEngine = NewEngine(rskyline.NewDB(2, randProducts(250, 424242), rtree.Config{}), true)

// FuzzMWPMQP drives Algorithms 1 and 2 with arbitrary query and why-not
// coordinates: no panics, no invalid candidates, costs non-negative.
// FuzzLoadApproxStore feeds arbitrary bytes to the binary store decoder: it
// must either fail with a descriptive error or produce a store that survives
// a save/load round trip — never panic, never allocate unboundedly.
func FuzzLoadApproxStore(f *testing.F) {
	// Seed with a real store plus truncations and mutations of it.
	products := randProducts(40, 77)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	store := e.BuildApproxStore(products[:10], 3, 0)
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(storeMagic))
	f.Add([]byte("not a store"))
	f.Add([]byte{})
	huge := append([]byte{}, valid...)
	for i := 10; i < 14 && i < len(huge); i++ {
		huge[i] = 0xff // inflate the customer count
	}
	f.Add(huge)
	// A legacy v1 file is the v2 body without its CRC trailer and with the
	// version field patched down; the decoder must still accept it.
	v1 := append([]byte{}, valid[:len(valid)-4]...)
	v1[4], v1[5] = storeVersionV1, 0
	f.Add(v1)
	// A mid-body bit flip must be caught by the trailer even where every
	// field stays individually plausible.
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	// A v2 file with a corrupt trailer itself.
	badTrailer := append([]byte{}, valid...)
	badTrailer[len(badTrailer)-1] ^= 0xff
	f.Add(badTrailer)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadApproxStore(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := s.Save(&out); err != nil {
			t.Fatalf("decoded store failed to re-encode: %v", err)
		}
		back, err := LoadApproxStore(&out)
		if err != nil {
			t.Fatalf("re-encoded store failed to decode: %v", err)
		}
		if back.Len() != s.Len() || back.K != s.K || back.SortDim != s.SortDim {
			t.Fatalf("round trip changed store: %d/%d/%d vs %d/%d/%d",
				back.Len(), back.K, back.SortDim, s.Len(), s.K, s.SortDim)
		}
	})
}

func FuzzMWPMQP(f *testing.F) {
	f.Add(50.0, 50.0, 10.0, 90.0)
	f.Add(0.0, 0.0, 100.0, 100.0)
	f.Add(-1e6, 1e6, 3.0, 3.0)
	f.Add(12.5, 12.5, 12.5, 12.5)
	f.Fuzz(func(t *testing.T, qx, qy, cx, cy float64) {
		for _, v := range []float64{qx, qy, cx, cy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return
			}
		}
		e := fuzzEngine
		q := geom.NewPoint(qx, qy)
		ct := Item{ID: 999999, Point: geom.NewPoint(cx, cy)} // bichromatic: no exclusion hit
		mwp := e.MWP(ct, q, Options{})
		if len(mwp.Candidates) == 0 {
			t.Fatal("MWP returned no candidates")
		}
		for _, cand := range mwp.Candidates {
			if cand.Cost < 0 || math.IsNaN(cand.Cost) {
				t.Fatalf("MWP cost %v", cand.Cost)
			}
			if !mwp.AlreadyMember && !e.ValidateWhyNotMove(ct, q, cand.Point, 1e-7) {
				t.Fatalf("invalid MWP candidate %v (ct=%v q=%v)", cand.Point, ct.Point, q)
			}
		}
		mqp := e.MQP(ct, q, Options{})
		if len(mqp.Candidates) == 0 {
			t.Fatal("MQP returned no candidates")
		}
		for _, cand := range mqp.Candidates {
			if cand.Cost < 0 || math.IsNaN(cand.Cost) {
				t.Fatalf("MQP cost %v", cand.Cost)
			}
			if !mqp.AlreadyMember && !e.ValidateQueryMove(ct, cand.Point, 1e-7) {
				t.Fatalf("invalid MQP candidate %v (ct=%v q=%v)", cand.Point, ct.Point, q)
			}
		}
	})
}
