package whynot

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rskyline"
	"repro/internal/rtree"
)

// fuzzEngine is shared across fuzz iterations (read-only use).
var fuzzEngine = NewEngine(rskyline.NewDB(2, randProducts(250, 424242), rtree.Config{}), true)

// FuzzMWPMQP drives Algorithms 1 and 2 with arbitrary query and why-not
// coordinates: no panics, no invalid candidates, costs non-negative.
func FuzzMWPMQP(f *testing.F) {
	f.Add(50.0, 50.0, 10.0, 90.0)
	f.Add(0.0, 0.0, 100.0, 100.0)
	f.Add(-1e6, 1e6, 3.0, 3.0)
	f.Add(12.5, 12.5, 12.5, 12.5)
	f.Fuzz(func(t *testing.T, qx, qy, cx, cy float64) {
		for _, v := range []float64{qx, qy, cx, cy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return
			}
		}
		e := fuzzEngine
		q := geom.NewPoint(qx, qy)
		ct := Item{ID: 999999, Point: geom.NewPoint(cx, cy)} // bichromatic: no exclusion hit
		mwp := e.MWP(ct, q, Options{})
		if len(mwp.Candidates) == 0 {
			t.Fatal("MWP returned no candidates")
		}
		for _, cand := range mwp.Candidates {
			if cand.Cost < 0 || math.IsNaN(cand.Cost) {
				t.Fatalf("MWP cost %v", cand.Cost)
			}
			if !mwp.AlreadyMember && !e.ValidateWhyNotMove(ct, q, cand.Point, 1e-7) {
				t.Fatalf("invalid MWP candidate %v (ct=%v q=%v)", cand.Point, ct.Point, q)
			}
		}
		mqp := e.MQP(ct, q, Options{})
		if len(mqp.Candidates) == 0 {
			t.Fatal("MQP returned no candidates")
		}
		for _, cand := range mqp.Candidates {
			if cand.Cost < 0 || math.IsNaN(cand.Cost) {
				t.Fatalf("MQP cost %v", cand.Cost)
			}
			if !mqp.AlreadyMember && !e.ValidateQueryMove(ct, cand.Point, 1e-7) {
				t.Fatalf("invalid MQP candidate %v (ct=%v q=%v)", cand.Point, ct.Point, q)
			}
		}
	})
}
