package whynot

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/rskyline"
	"repro/internal/rtree"
)

// Metamorphic properties of the why-not algorithms. Unlike the golden tests,
// nothing here pins concrete coordinates: each test states a relation the
// paper proves between two answers and checks it on seeded random workloads.

// propertyCases yields seeded (q, rsl, ct) tuples over e's products where ct
// is a genuine why-not customer and the RSL is small enough for exact safe
// regions, mirroring the sampling idiom of TestMWQSoundnessRandom.
func propertyCases(t *testing.T, e *Engine, products []Item, seed int64, fn func(q geom.Point, rsl []Item, ct Item)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed + 350))
	tested := 0
	for trial := 0; trial < 60 && tested < 6; trial++ {
		q := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
		rsl := e.DB.ReverseSkyline(products, q)
		if len(rsl) == 0 || len(rsl) > 12 {
			continue
		}
		ct := products[rng.Intn(len(products))]
		if !e.DB.WindowExists(ct.Point, q, ct.ID) {
			continue // already a member
		}
		tested++
		fn(q, rsl, ct)
	}
	if tested == 0 {
		t.Fatalf("seed %d: no why-not cases sampled", seed)
	}
}

func propertyEngine(seed int64) (*Engine, []Item) {
	products := randProducts(200, seed+300)
	return NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true), products
}

// TestPropertyMWQNeverCostlierThanMWP: MWP (move only the customer) is a
// feasible solution of the MWQ optimisation with q* = q, so the MWQ optimum
// can never cost more (§V.C; in case C1 the cost is outright zero).
func TestPropertyMWQNeverCostlierThanMWP(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		e, products := propertyEngine(seed)
		propertyCases(t, e, products, seed, func(q geom.Point, rsl []Item, ct Item) {
			mwq := e.MWQExact(ct, q, rsl, Options{})
			mwp := e.MWP(ct, q, Options{})
			if mwq.Case == CaseOverlap && mwq.Cost != 0 {
				t.Fatalf("seed %d: C1 cost %v, want 0", seed, mwq.Cost)
			}
			if mwq.Cost > mwp.Best().Cost+1e-9 {
				t.Fatalf("seed %d: cost(MWQ)=%v > cost(MWP)=%v (case %v)",
					seed, mwq.Cost, mwp.Best().Cost, mwq.Case)
			}
		})
	}
}

// TestPropertyApproxMWQAgainstExact checks §VI.B.2's guarantees for the
// approximate pipeline against the exact one on the same questions:
//
//   - the approximate safe region is a subset of the exact one, so every
//     approximate q* is feasible for the exact optimiser;
//   - reachability only shrinks: an approximate C1 implies an exact C1, and
//     there both costs are the optimum zero;
//   - whenever the exact answer attains the true optimum (case C1, cost 0)
//     the approximate cost is ≥ the exact cost — in the C2/C2 subcase both
//     sides are corner heuristics (Algorithm 4 steps 10–13) over different
//     rectangle decompositions, so the pointwise inequality is not a theorem
//     and is not asserted;
//   - both answers validate with real window queries after the ε-nudge.
func TestPropertyApproxMWQAgainstExact(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		e, products := propertyEngine(seed)
		store := e.BuildApproxStore(products, 6, 0)
		rng := rand.New(rand.NewSource(seed + 375))
		propertyCases(t, e, products, seed, func(q geom.Point, rsl []Item, ct Item) {
			exact := e.MWQExact(ct, q, rsl, Options{})
			approx := e.MWQApprox(ct, q, rsl, store, Options{})

			// Region subset, probed at corners and random interior samples of
			// every positive approximate rectangle.
			for _, r := range positiveRects(approx.SafeRegion) {
				for _, p := range r.Corners() {
					if !exact.SafeRegion.Contains(p) {
						t.Fatalf("seed %d: approx SR corner %v outside exact SR", seed, p)
					}
				}
				p := make(geom.Point, len(r.Lo))
				for j := range p {
					p[j] = r.Lo[j] + rng.Float64()*(r.Hi[j]-r.Lo[j])
				}
				if !exact.SafeRegion.Contains(p) {
					t.Fatalf("seed %d: approx SR sample %v outside exact SR", seed, p)
				}
			}

			if approx.Case == CaseOverlap && exact.Case != CaseOverlap {
				t.Fatalf("seed %d: approx reached the anti-DDR (C1) but exact did not (C%d)",
					seed, exact.Case)
			}
			if exact.Case == CaseOverlap && approx.Cost < exact.Cost-1e-9 {
				t.Fatalf("seed %d: approx cost %v below exact optimum %v", seed, approx.Cost, exact.Cost)
			}

			for _, res := range []struct {
				name string
				r    MWQResult
			}{{"exact", exact}, {"approx", approx}} {
				switch res.r.Case {
				case CaseOverlap:
					// q* admits ct without moving it: an MQP-style move.
					qn := res.r.Overlap.InteriorNudge(res.r.QStar, 1e-9)
					if !e.ValidateQueryMove(ct, qn, 1e-9) {
						t.Fatalf("seed %d: %s C1 q*=%v does not admit ct", seed, res.name, res.r.QStar)
					}
				case CaseDisjoint:
					// ct* admits ct against the moved query: an MWP-style move.
					if !e.ValidateWhyNotMove(ct, res.r.QStar, res.r.CtStar, 1e-7) {
						t.Fatalf("seed %d: %s C2 ct*=%v invalid against q*=%v",
							seed, res.name, res.r.CtStar, res.r.QStar)
					}
				}
			}
		})
	}
}

// TestPropertyRSLMonotoneUnderSafeMove: moving q anywhere inside SR(q) loses
// no customer (Lemma 2), so RSL(q*) ⊇ RSL(q) — for the MWQ answer itself and
// for arbitrary positions sampled from the safe region's positive-volume
// rectangles. The region is closed and zero-volume intersection slivers have
// no achievable interior (moving there genuinely loses customers — see the
// case-C2 corner filter), so samples come from positive rectangles only and
// are nudged into the interior before probing, per the boundary-closure
// convention.
func TestPropertyRSLMonotoneUnderSafeMove(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		e, products := propertyEngine(seed)
		rng := rand.New(rand.NewSource(seed + 400))
		propertyCases(t, e, products, seed, func(q geom.Point, rsl []Item, ct Item) {
			res := e.MWQExact(ct, q, rsl, Options{})
			probes := []geom.Point{res.SafeRegion.InteriorNudge(res.QStar, 1e-9)}
			if res.Case == CaseOverlap {
				probes[0] = res.Overlap.InteriorNudge(res.QStar, 1e-9)
			}
			for _, r := range positiveRects(res.SafeRegion) {
				p := make(geom.Point, len(r.Lo))
				for j := range p {
					p[j] = r.Lo[j] + rng.Float64()*(r.Hi[j]-r.Lo[j])
				}
				probes = append(probes, res.SafeRegion.InteriorNudge(p, 1e-9))
			}
			for _, qStar := range probes {
				after := idSetOf(e.DB.ReverseSkyline(products, qStar))
				for _, c := range rsl {
					if !after[c.ID] {
						t.Fatalf("seed %d: customer %d ∈ RSL(q) lost at q*=%v ∈ SR(q)",
							seed, c.ID, qStar)
					}
				}
			}
		})
	}
}

func idSetOf(items []Item) map[int]bool {
	m := make(map[int]bool, len(items))
	for _, it := range items {
		m[it.ID] = true
	}
	return m
}
