package whynot

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/region"
	"repro/internal/rskyline"
	"repro/internal/rtree"
)

// TestConcurrentSafeRegionDuringMutation races cached safe-region
// construction (anti-DDR cache plus DSL cache, parallel and sequential
// paths) against Insert/Delete churn on the underlying index. Run under
// -race this witnesses the lock discipline; the generation quiescence check
// witnesses that no stale cached region is ever served.
func TestConcurrentSafeRegionDuringMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	products := randProducts(150, 500)
	db := rskyline.NewDB(2, products, rtree.Config{})
	db.EnableDSLCache(64)
	e := NewEngine(db, true)
	e.EnableAntiDDRCache(64)

	// A query with a small reverse skyline, found deterministically.
	var q geom.Point
	var rsl []Item
	for trial := 0; trial < 50; trial++ {
		cand := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
		if r := db.ReverseSkyline(products, cand); len(r) >= 2 && len(r) <= 8 {
			q, rsl = cand, r
			break
		}
	}
	if rsl == nil {
		t.Fatal("no suitable query sampled")
	}

	var mutator sync.WaitGroup
	stop := make(chan struct{})
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			it := Item{ID: 9700, Point: geom.NewPoint(rng.Float64()*100, rng.Float64()*100)}
			if round%2 == 0 {
				db.Insert(it)
			} else {
				db.Delete(it)
				e.InvalidateCaches()
			}
		}
	}()

	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; i < 40; i++ {
				g1 := db.Generation()
				var got region.Set
				var err error
				if i%2 == 0 {
					got = e.SafeRegion(q, rsl)
				} else {
					got, err = e.SafeRegionParallel(context.Background(), q, rsl, 3)
					if err != nil {
						t.Errorf("reader %d: %v", r, err)
						return
					}
				}
				// Quiescence witness: with no overlapping mutation, the cached
				// answer must match an engine without the anti-DDR cache (the
				// shared DSL cache is generation-validated and witnessed
				// separately in the rskyline concurrency suite).
				fresh := NewEngine(db, true).SafeRegion(q, rsl)
				if db.Generation() != g1 {
					continue
				}
				if !region.Equivalent(got, fresh) {
					t.Errorf("reader %d: cached safe region differs from fresh at generation %d", r, g1)
					return
				}
			}
		}(r)
	}

	readers.Wait()
	close(stop)
	mutator.Wait()

	// Post-quiescence: the caches warmed under churn must now agree with a
	// cache-free engine, and the caches must have actually been exercised.
	got := e.SafeRegion(q, rsl)
	fresh := NewEngine(db, true).SafeRegion(q, rsl)
	if !region.Equivalent(got, fresh) {
		t.Fatal("post-quiescence: cached safe region differs from fresh construction")
	}
	st := e.AntiDDRCacheStats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("anti-DDR cache was never exercised")
	}
}
