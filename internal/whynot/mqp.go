package whynot

import (
	"context"
	"sort"

	"repro/internal/cancel"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/region"
)

// MQPResult is the outcome of Algorithm 2.
type MQPResult struct {
	// Frontier is F = Λ ∩ DSL(c_t): the members of the window-query result
	// minimal under dynamic dominance w.r.t. c_t, extracted by an
	// index-level branch-and-bound without materialising Λ or DSL(c_t).
	Frontier []Item
	// Candidates are the proposed q* locations on the dynamic-skyline
	// frontier of c_t, sorted by ascending α-cost from q.
	Candidates []Candidate
	// AlreadyMember is true when c_t ∈ RSL(q) holds without any move.
	AlreadyMember bool
}

// Best returns the cheapest candidate.
func (r MQPResult) Best() Candidate { return r.Candidates[0] }

// MQP implements Algorithm 2 (Modify Query Point): candidate locations q* of
// minimal movement such that the why-not point c_t enters RSL(q*). q* is
// moved onto the dynamic-skyline frontier of c_t. The merging of Eqns.
// (5)–(6) is performed in the space transformed around c_t and candidates are
// mapped back to the original space on q's side of c_t, which reproduces the
// paper's example exactly and remains correct when products surround c_t.
func (e *Engine) MQP(ct Item, q geom.Point, opt Options) MQPResult {
	res, _ := e.mqp(nil, ct, q, opt)
	return res
}

// MQPCtx is MQP with deadline/cancellation support.
func (e *Engine) MQPCtx(ctx context.Context, ct Item, q geom.Point, opt Options) (MQPResult, error) {
	chk, err := entry(ctx)
	if err != nil {
		return MQPResult{}, err
	}
	_, endPhase := obs.StartPhase(ctx, "mqp")
	defer endPhase()
	return e.mqp(chk, ct, q, opt)
}

func (e *Engine) mqp(chk *cancel.Checker, ct Item, q geom.Point, opt Options) (MQPResult, error) {
	frontier, err := e.DB.WindowFrontierChecked(chk, ct.Point, q, ct.Point, e.exclude(ct))
	if err != nil {
		return MQPResult{}, err
	}
	if len(frontier) == 0 {
		return MQPResult{
			AlreadyMember: true,
			Candidates:    []Candidate{{Point: q.Clone(), Cost: 0}},
		}, nil
	}

	i := opt.SortDim
	tq := q.Transform(ct.Point)

	// Transformed frontier points, sorted by the chosen dimension. They are
	// exactly the window-local part of DSL(c_t)'s staircase.
	trs := make([]geom.Point, len(frontier))
	for k, f := range frontier {
		trs[k] = f.Point.Transform(ct.Point)
	}
	trs = minimalCanonical(trs)
	sort.Slice(trs, func(a, b int) bool { return trs[a][i] < trs[b][i] })

	// Candidate transformed locations: first entry projected onto q's
	// transformed coordinates except dimension i (Eqn. (6), z_1), the
	// coordinate-wise maxima of successive pairs (Eqn. (5)), and the last
	// entry projected except in dimensions ≠ i (Eqn. (6), z_|M|).
	var canon []geom.Point
	first := tq.Clone()
	first[i] = trs[0][i]
	canon = append(canon, first)
	for k := 0; k+1 < len(trs); k++ {
		canon = append(canon, trs[k].Max(trs[k+1]))
	}
	last := trs[len(trs)-1].Clone()
	last[i] = tq[i]
	canon = append(canon, last)

	// Closure-validity filter: a transformed candidate z survives an
	// ε-contraction toward c_t iff for every frontier point s there is a
	// dimension with z_j ≤ s_j that either is strict or can become strict
	// under contraction (z_j > 0). A frontier point lying exactly on c_t's
	// coordinate in a dimension (s_j = 0) can never be escaped there.
	valid := canon[:0]
	for _, z := range canon {
		if transValid(z, trs) {
			valid = append(valid, z)
		}
	}
	if len(valid) == 0 {
		// Always-valid fallback: placing q* on c_t itself maps to the
		// transformed origin, which nothing strictly dominates.
		valid = append(valid, make(geom.Point, len(tq)))
	}

	cands := make([]Candidate, 0, len(valid))
	for _, m := range valid {
		p := geom.UnTransform(ct.Point, m, q)
		cands = append(cands, Candidate{Point: p, Cost: e.costQ(q, p, opt)})
	}
	obs.AddCandidateEvaluations(len(cands))
	sortCandidates(cands)
	return MQPResult{Frontier: frontier, Candidates: dedupCandidates(cands)}, nil
}

// transValid reports whether transformed candidate z lies in the closure of
// the non-dominated region of the transformed frontier points with an
// ε-contraction escape: some dimension must have z_j ≤ s_j with z_j > 0 or
// z_j < s_j.
func transValid(z geom.Point, frontier []geom.Point) bool {
	for _, s := range frontier {
		ok := false
		for j := range z {
			if z[j] <= s[j] && (z[j] > 0 || z[j] < s[j]) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// minimalCanonical keeps the antichain of minimal points (none weakly
// dominated by another from below), deduplicating equal points.
func minimalCanonical(pts []geom.Point) []geom.Point {
	var out []geom.Point
	for a, pa := range pts {
		covered := false
		for b, pb := range pts {
			if a == b {
				continue
			}
			if pb.WeaklyDominates(pa) && !pb.Equal(pa) {
				covered = true
				break
			}
			if pb.Equal(pa) && b < a {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, pa)
		}
	}
	return out
}

// ValidateQueryMove reports whether moving the query point to cand admits
// c_t into RSL(cand) after an ε-contraction toward c_t in the transformed
// space (candidates lie on the closed dynamic-skyline boundary of c_t).
func (e *Engine) ValidateQueryMove(ct Item, cand geom.Point, eps float64) bool {
	nudged := nudgeToward(cand, ct.Point, eps)
	return !e.DB.WindowExists(ct.Point, nudged, e.exclude(ct))
}

// ValidateQueryMoveCtx is ValidateQueryMove with deadline/cancellation
// support.
func (e *Engine) ValidateQueryMoveCtx(ctx context.Context, ct Item, cand geom.Point, eps float64) (bool, error) {
	chk, err := entry(ctx)
	if err != nil {
		return false, err
	}
	nudged := nudgeToward(cand, ct.Point, eps)
	found, err := e.DB.WindowExistsChecked(chk, ct.Point, nudged, e.exclude(ct))
	if err != nil {
		return false, err
	}
	return !found, nil
}

// MQPTotalCost computes the experimental cost of a refined query point q*
// from §VI.A: α·|q' − q*| where q' is the point of the safe region sr
// closest to q*, plus, for every original reverse-skyline customer lost by
// the move, the β-cost of winning that customer back via MWP against q*.
// rsl must be RSL(q) over the customers of interest. A nil sr charges the
// full distance from q (the safe region degenerates to {q}).
func (e *Engine) MQPTotalCost(q, qStar geom.Point, rsl []Item, sr region.Set, opt Options) float64 {
	total, _ := e.mqpTotalCost(nil, q, qStar, rsl, sr, opt)
	return total
}

// MQPTotalCostCtx is MQPTotalCost with deadline/cancellation support (the
// cost charges one MWP per lost customer, so it can be as expensive as |RSL|
// why-not questions).
func (e *Engine) MQPTotalCostCtx(ctx context.Context, q, qStar geom.Point, rsl []Item, sr region.Set, opt Options) (float64, error) {
	chk, err := entry(ctx)
	if err != nil {
		return 0, err
	}
	return e.mqpTotalCost(chk, q, qStar, rsl, sr, opt)
}

func (e *Engine) mqpTotalCost(chk *cancel.Checker, q, qStar geom.Point, rsl []Item, sr region.Set, opt Options) (float64, error) {
	anchor := q
	if len(sr) > 0 {
		if p, _, ok := sr.NearestPoint(qStar, opt.WeightsQ); ok {
			anchor = p
		}
	}
	total := e.costQ(anchor, qStar, opt)
	for _, c := range rsl {
		if err := chk.Point(cancel.SiteCustomer); err != nil {
			return 0, err
		}
		lost, err := e.DB.WindowExistsChecked(chk, c.Point, qStar, e.exclude(c))
		if err != nil {
			return 0, err
		}
		if !lost {
			continue // still a reverse-skyline point of q*
		}
		res, err := e.mwp(chk, nil, c, qStar, opt)
		if err != nil {
			return 0, err
		}
		total += res.Best().Cost
	}
	return total, nil
}
