package whynot

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/rskyline"
	"repro/internal/rtree"
)

// rand3D builds a small 3-d product set: the safe-region machinery switches
// from the 2-d staircase to the generic grid-corner construction there.
func rand3D(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: i, Point: geom.NewPoint(
			rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)}
	}
	return items
}

// Anti-DDR membership in 3-d: q is inside a customer's anti-DDR iff the
// customer is in RSL(q).
func TestAntiDDR3DMatchesMembership(t *testing.T) {
	items := rand3D(120, 42)
	e := NewEngine(rskyline.NewDB(3, items, rtree.Config{}), true)
	rng := rand.New(rand.NewSource(43))
	checked := 0
	for trial := 0; trial < 30; trial++ {
		q := geom.NewPoint(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		c := items[rng.Intn(len(items))]
		add := e.AntiDDROf(c)
		inRSL := e.DB.IsReverseSkyline(c, q)
		if inRSL != add.Contains(q) {
			t.Fatalf("trial %d: membership %v but anti-DDR contains %v (c=%v q=%v)",
				trial, inRSL, add.Contains(q), c.Point, q)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("vacuous")
	}
}

// 3-d safe region: interior probes preserve the reverse skyline.
func TestSafeRegion3DPreservesRSL(t *testing.T) {
	items := rand3D(120, 44)
	e := NewEngine(rskyline.NewDB(3, items, rtree.Config{}), true)
	rng := rand.New(rand.NewSource(45))
	tested := 0
	for trial := 0; trial < 40 && tested < 3; trial++ {
		q := geom.NewPoint(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		rsl := e.DB.ReverseSkyline(items, q)
		if len(rsl) < 1 || len(rsl) > 5 {
			continue
		}
		tested++
		sr := e.SafeRegion(q, rsl)
		if !sr.Contains(q) {
			t.Fatal("3-d safe region must contain q")
		}
		for _, r := range sr {
			if r.Area() == 0 {
				continue
			}
			p := r.Center()
			for _, c := range rsl {
				if e.DB.WindowExists(c.Point, p, c.ID) {
					t.Fatalf("3-d safe region loses customer %d at %v", c.ID, p)
				}
			}
		}
	}
	if tested == 0 {
		t.Skip("no suitable 3-d queries sampled")
	}
}

// Full 3-d MWQ: the answer must admit the why-not point and keep the RSL.
func TestMWQ3DSoundness(t *testing.T) {
	items := rand3D(120, 46)
	e := NewEngine(rskyline.NewDB(3, items, rtree.Config{}), true)
	rng := rand.New(rand.NewSource(47))
	tested := 0
	for trial := 0; trial < 60 && tested < 3; trial++ {
		q := geom.NewPoint(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		rsl := e.DB.ReverseSkyline(items, q)
		if len(rsl) < 1 || len(rsl) > 4 {
			continue
		}
		ct := items[rng.Intn(len(items))]
		if !e.DB.WindowExists(ct.Point, q, ct.ID) {
			continue
		}
		tested++
		res := e.MWQExact(ct, q, rsl, Options{})
		qn := res.SafeRegion.InteriorNudge(res.QStar, 1e-9)
		if res.Case == CaseOverlap {
			qn = res.Overlap.InteriorNudge(res.QStar, 1e-9)
			if e.DB.WindowExists(ct.Point, qn, ct.ID) {
				t.Fatalf("3-d C1 answer does not admit ct")
			}
		} else if !e.ValidateWhyNotMove(ct, res.QStar, res.CtStar, 1e-7) {
			t.Fatalf("3-d C2 answer invalid: ct*=%v q*=%v", res.CtStar, res.QStar)
		}
		for _, c := range rsl {
			if e.DB.WindowExists(c.Point, qn, c.ID) {
				t.Fatalf("3-d MWQ loses customer %d", c.ID)
			}
		}
		mwp := e.MWP(ct, q, Options{})
		if res.Cost > mwp.Best().Cost+1e-9 {
			t.Fatalf("3-d MWQ cost %v > MWP %v", res.Cost, mwp.Best().Cost)
		}
	}
	if tested == 0 {
		t.Skip("no suitable 3-d cases sampled")
	}
}
