package whynot

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rskyline"
	"repro/internal/rtree"
)

func TestApproxStoreSaveLoadRoundTrip(t *testing.T) {
	products := randProducts(300, 2024)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	store := e.BuildApproxStore(products[:50], 7, 0)
	if store.Len() != 50 {
		t.Fatalf("store Len = %d", store.Len())
	}

	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadApproxStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != 7 || back.SortDim != 0 || back.Len() != 50 {
		t.Fatalf("round trip lost metadata: %+v", back)
	}
	for _, c := range products[:50] {
		want, _ := store.Corners(c.ID)
		got, ok := back.Corners(c.ID)
		if !ok || !reflect.DeepEqual(want, got) {
			t.Fatalf("corners for %d differ after round trip", c.ID)
		}
	}

	// The loaded store produces identical safe regions.
	q := products[7].Point.Clone()
	q[0] += 0.5
	rsl := e.DB.ReverseSkyline(products, q)
	if len(rsl) > 0 {
		a := e.ApproxSafeRegion(q, rsl, store)
		b := e.ApproxSafeRegion(q, rsl, back)
		if len(a) != len(b) {
			t.Fatalf("safe regions differ: %d vs %d rects", len(a), len(b))
		}
	}
}

func TestLoadApproxStoreErrors(t *testing.T) {
	if _, err := LoadApproxStore(strings.NewReader("not gob")); err == nil {
		t.Fatal("garbage input must fail")
	}
	if _, err := LoadApproxStore(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must fail")
	}
}

func TestBuildApproxStoreParallelMatchesSerial(t *testing.T) {
	products := randProducts(400, 2025)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	serial := e.BuildApproxStore(products[:120], 5, 0)
	for _, workers := range []int{0, 1, 4} {
		parallel := e.BuildApproxStoreParallel(products[:120], 5, 0, workers)
		if parallel.Len() != serial.Len() {
			t.Fatalf("workers=%d: Len %d vs %d", workers, parallel.Len(), serial.Len())
		}
		for _, c := range products[:120] {
			want, _ := serial.Corners(c.ID)
			got, ok := parallel.Corners(c.ID)
			if !ok || !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d: corners differ for customer %d", workers, c.ID)
			}
		}
	}
	// Empty customer list is fine.
	if got := e.BuildApproxStoreParallel(nil, 5, 0, 4); got.Len() != 0 {
		t.Fatal("empty build must yield an empty store")
	}
}
