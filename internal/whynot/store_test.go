package whynot

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rskyline"
	"repro/internal/rtree"
)

func TestApproxStoreSaveLoadRoundTrip(t *testing.T) {
	products := randProducts(300, 2024)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	store := e.BuildApproxStore(products[:50], 7, 0)
	if store.Len() != 50 {
		t.Fatalf("store Len = %d", store.Len())
	}

	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadApproxStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != 7 || back.SortDim != 0 || back.Len() != 50 {
		t.Fatalf("round trip lost metadata: %+v", back)
	}
	for _, c := range products[:50] {
		want, _ := store.Corners(c.ID)
		got, ok := back.Corners(c.ID)
		if !ok || !reflect.DeepEqual(want, got) {
			t.Fatalf("corners for %d differ after round trip", c.ID)
		}
	}

	// The loaded store produces identical safe regions.
	q := products[7].Point.Clone()
	q[0] += 0.5
	rsl := e.DB.ReverseSkyline(products, q)
	if len(rsl) > 0 {
		a := e.ApproxSafeRegion(q, rsl, store)
		b := e.ApproxSafeRegion(q, rsl, back)
		if len(a) != len(b) {
			t.Fatalf("safe regions differ: %d vs %d rects", len(a), len(b))
		}
	}
}

func TestLoadApproxStoreErrors(t *testing.T) {
	if _, err := LoadApproxStore(strings.NewReader("not gob")); err == nil {
		t.Fatal("garbage input must fail")
	}
	if _, err := LoadApproxStore(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must fail")
	}
}

func TestBuildApproxStoreParallelMatchesSerial(t *testing.T) {
	products := randProducts(400, 2025)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	serial := e.BuildApproxStore(products[:120], 5, 0)
	for _, workers := range []int{0, 1, 4} {
		parallel := e.BuildApproxStoreParallel(products[:120], 5, 0, workers)
		if parallel.Len() != serial.Len() {
			t.Fatalf("workers=%d: Len %d vs %d", workers, parallel.Len(), serial.Len())
		}
		for _, c := range products[:120] {
			want, _ := serial.Corners(c.ID)
			got, ok := parallel.Corners(c.ID)
			if !ok || !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d: corners differ for customer %d", workers, c.ID)
			}
		}
	}
	// Empty customer list is fine.
	if got := e.BuildApproxStoreParallel(nil, 5, 0, 4); got.Len() != 0 {
		t.Fatal("empty build must yield an empty store")
	}
}

// TestApproxStoreChecksum: every single-byte corruption of a v2 store must be
// rejected — that is the whole point of the CRC trailer. Field validation
// alone cannot catch a bit flip inside a plausible coordinate.
func TestApproxStoreChecksum(t *testing.T) {
	products := randProducts(60, 99)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	store := e.BuildApproxStore(products[:12], 3, 0)
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	for i := range valid {
		mutated := append([]byte{}, valid...)
		mutated[i] ^= 0x01
		if _, err := LoadApproxStore(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("byte %d flipped, load still succeeded", i)
		}
	}
	// Truncating the trailer is also corruption.
	if _, err := LoadApproxStore(bytes.NewReader(valid[:len(valid)-2])); err == nil {
		t.Fatal("truncated trailer accepted")
	}
}

// TestApproxStoreV1Compat: a legacy v1 file — no trailer, version field 1 —
// still loads, and re-saving upgrades it to checksummed v2.
func TestApproxStoreV1Compat(t *testing.T) {
	products := randProducts(60, 100)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	store := e.BuildApproxStore(products[:12], 3, 0)
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v2 := buf.Bytes()

	// Reconstruct the v1 encoding: strip the CRC trailer, patch the version.
	v1 := append([]byte{}, v2[:len(v2)-4]...)
	v1[4], v1[5] = storeVersionV1, 0

	back, err := LoadApproxStore(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 store rejected: %v", err)
	}
	if back.Len() != store.Len() || back.K != store.K || back.SortDim != store.SortDim {
		t.Fatalf("v1 load lost data: %d/%d/%d", back.Len(), back.K, back.SortDim)
	}
	// Re-saving emits v2 bytes, trailer included.
	var up bytes.Buffer
	if err := back.Save(&up); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(up.Bytes(), v2) {
		t.Fatal("re-saved v1 store does not match the v2 encoding")
	}
	// A v1 file with trailing garbage still fails.
	if _, err := LoadApproxStore(bytes.NewReader(append(v1, 0))); err == nil {
		t.Fatal("v1 store with trailing data accepted")
	}
}
