package whynot

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/region"
	"repro/internal/rskyline"
	"repro/internal/rtree"
)

func TestTruncateSafeRegion(t *testing.T) {
	e := fig1Engine()
	customers := fig1()
	rsl := e.DB.ReverseSkyline(customers, paperQ)
	sr := e.SafeRegion(paperQ, rsl)

	// Limit the price to [8, 12]: the truncated region must be inside both
	// the limits and the original safe region.
	limits := geom.NewRect(geom.NewPoint(8, 0), geom.NewPoint(12, 200))
	trunc := TruncateSafeRegion(sr, limits)
	if trunc.IsEmpty() {
		t.Fatal("truncated region should be non-empty (q is inside the limits)")
	}
	for _, r := range trunc {
		if !limits.ContainsRect(r) {
			t.Fatalf("truncated rect %v escapes the limits", r)
		}
	}
	inter := trunc.IntersectSet(sr)
	if diff := inter.Area() - trunc.Area(); diff > 1e-9 || diff < -1e-9 {
		t.Fatal("truncated region must be a subset of the safe region")
	}
	// Probing an interior point of the truncated region still keeps all
	// customers (the guarantee survives truncation).
	for _, r := range trunc {
		if r.Area() == 0 {
			continue
		}
		p := r.Center()
		for _, c := range rsl {
			if e.DB.WindowExists(c.Point, p, c.ID) {
				t.Fatalf("customer %d lost inside the truncated region at %v", c.ID, p)
			}
		}
	}
	// Limits excluding the whole safe region truncate to empty.
	far := geom.NewRect(geom.NewPoint(100, 100), geom.NewPoint(120, 120))
	if got := TruncateSafeRegion(sr, far); !got.IsEmpty() {
		t.Fatalf("disjoint limits must empty the region, got %v", got)
	}
}

func TestExpandSafeRegionAndLostCustomers(t *testing.T) {
	e := fig1Engine()
	customers := fig1()
	rsl := e.DB.ReverseSkyline(customers, paperQ)

	limits := geom.NewRect(geom.NewPoint(2.5, 20), geom.NewPoint(26, 90))
	exp := ExpandSafeRegion(limits)
	if len(exp) != 1 || !exp[0].ContainsRect(limits) {
		t.Fatalf("expanded region = %v", exp)
	}
	// Moving far away loses customers, and LostCustomers reports them.
	lost := e.LostCustomers(geom.NewPoint(26, 20), rsl)
	if len(lost) == 0 {
		t.Fatal("a drastic move should lose at least one customer")
	}
	// Staying put loses nobody.
	if got := e.LostCustomers(paperQ, rsl); len(got) != 0 {
		t.Fatalf("staying at q lost %v", got)
	}
	// Consistency: every reported-lost customer really fails the window
	// test, and every kept customer passes it.
	lostSet := map[int]bool{}
	for _, c := range lost {
		lostSet[c.ID] = true
	}
	for _, c := range rsl {
		fails := e.DB.WindowExists(c.Point, geom.NewPoint(26, 20), c.ID)
		if fails != lostSet[c.ID] {
			t.Fatalf("LostCustomers inconsistent for %d", c.ID)
		}
	}
}

// The approx store must also work when queried for customers it has not
// precomputed (exact fallback path).
func TestApproxSafeRegionFallback(t *testing.T) {
	products := randProducts(400, 777)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	// Store covers only the first 10 customers.
	store := e.BuildApproxStore(products[:10], 5, 0)
	rng := rand.New(rand.NewSource(778))
	for trial := 0; trial < 30; trial++ {
		q := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
		rsl := e.DB.ReverseSkyline(products, q)
		if len(rsl) == 0 || len(rsl) > 8 {
			continue
		}
		approx := e.ApproxSafeRegion(q, rsl, store)
		if !approx.Contains(q) {
			t.Fatal("approx safe region with fallback must contain q")
		}
		// Still a subset of the exact safe region.
		exact := e.SafeRegion(q, rsl)
		inter := approx.IntersectSet(exact)
		if diff := inter.Area() - approx.Area(); diff > 1e-6*(1+approx.Area()) || diff < -1e-6*(1+approx.Area()) {
			t.Fatal("fallback approx region not a subset of the exact one")
		}
		return
	}
	t.Skip("no suitable query sampled")
}

func TestSafeRegionNoCustomers(t *testing.T) {
	e := fig1Engine()
	sr := e.SafeRegion(paperQ, nil)
	if !sr.Contains(paperQ) {
		t.Fatal("empty-RSL safe region must contain q")
	}
	// With nobody to lose, the whole data extent is reachable.
	u, _ := e.DB.Universe()
	if !sr.Contains(u.Lo) || !sr.Contains(u.Hi) {
		t.Fatal("empty-RSL safe region must span the universe")
	}
	// Approx variant behaves identically.
	store := e.BuildApproxStore(nil, 5, 0)
	if got := e.ApproxSafeRegion(paperQ, nil, store); !got.Contains(u.Hi) {
		t.Fatal("approx empty-RSL safe region must span the universe")
	}
}

// DSL with exclusion must equal the brute-force DSL over P minus the record.
func TestDynamicSkylineExcludingMatchesBrute(t *testing.T) {
	products := randProducts(300, 888)
	db := rskyline.NewDB(2, products, rtree.Config{})
	rng := rand.New(rand.NewSource(889))
	for trial := 0; trial < 20; trial++ {
		c := products[rng.Intn(len(products))]
		got := map[int]bool{}
		for _, it := range db.DynamicSkylineExcluding(c.Point, c.ID) {
			got[it.ID] = true
		}
		want := map[int]bool{}
		for i, a := range products {
			if a.ID == c.ID {
				continue
			}
			dominated := false
			for j, b := range products {
				if i == j || b.ID == c.ID {
					continue
				}
				if geom.DynDominates(c.Point, b.Point, a.Point) {
					dominated = true
					break
				}
			}
			if !dominated {
				want[a.ID] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d skyline points, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing %d", trial, id)
			}
		}
	}
}

// Region-level sanity for safe regions on random data: exactness by probing.
func TestSafeRegionExactnessRandom(t *testing.T) {
	products := randProducts(250, 999)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	rng := rand.New(rand.NewSource(1001))
	tested := 0
	for trial := 0; trial < 40 && tested < 4; trial++ {
		q := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
		rsl := e.DB.ReverseSkyline(products, q)
		if len(rsl) < 2 || len(rsl) > 8 {
			continue
		}
		tested++
		sr := e.SafeRegion(q, rsl)
		for probe := 0; probe < 300; probe++ {
			p := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
			safe := true
			for _, c := range rsl {
				if e.DB.WindowExists(c.Point, p, c.ID) {
					safe = false
					break
				}
			}
			if safe != sr.Contains(p) {
				// Random probes hit the closed boundary with probability
				// zero; any mismatch is a real error.
				t.Fatalf("trial %d: probe %v safe=%v inRegion=%v", trial, p, safe, sr.Contains(p))
			}
		}
	}
	if tested == 0 {
		t.Skip("no suitable queries sampled")
	}
}

func TestOptionsWeightsChangeBestCandidate(t *testing.T) {
	e := fig1Engine()
	c1 := Item{ID: 1, Point: geom.NewPoint(5, 30)}
	// Equal weights prefer the mileage move or price move depending on the
	// normalised spans; forcing all weight onto one dimension must flip the
	// preference between the two paper candidates (5,48.5) and (8,30).
	priceOnly := e.MWP(c1, paperQ, Options{WeightsC: []float64{1, 0}})
	if !priceOnly.Best().Point.ApproxEqual(geom.NewPoint(5, 48.5), 1e-9) {
		t.Fatalf("price-weighted best = %v, want the mileage move (5, 48.5)", priceOnly.Best().Point)
	}
	mileageOnly := e.MWP(c1, paperQ, Options{WeightsC: []float64{0, 1}})
	if !mileageOnly.Best().Point.ApproxEqual(geom.NewPoint(8, 30), 1e-9) {
		t.Fatalf("mileage-weighted best = %v, want the price move (8, 30)", mileageOnly.Best().Point)
	}
}

func TestSortDimOptionStillValid(t *testing.T) {
	products := randProducts(300, 1234)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	rng := rand.New(rand.NewSource(1235))
	tested := 0
	for trial := 0; trial < 50 && tested < 10; trial++ {
		q := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
		ct := products[rng.Intn(len(products))]
		res := e.MWP(ct, q, Options{SortDim: 1})
		if res.AlreadyMember {
			continue
		}
		tested++
		for _, cand := range res.Candidates {
			if !e.ValidateWhyNotMove(ct, q, cand.Point, 1e-7) {
				t.Fatalf("SortDim=1 candidate %v invalid", cand.Point)
			}
		}
		// Both sort dimensions must reach the same optimum cost (the
		// candidate set is the same staircase enumerated differently).
		alt := e.MWP(ct, q, Options{SortDim: 0})
		if d := res.Best().Cost - alt.Best().Cost; d > 1e-9 || d < -1e-9 {
			t.Fatalf("sort-dim changed the optimum: %v vs %v", res.Best().Cost, alt.Best().Cost)
		}
	}
	if tested == 0 {
		t.Fatal("no cases sampled")
	}
}

func TestRegionEquivalenceHelperOnSafeRegions(t *testing.T) {
	// The same safe region computed twice must be equivalent.
	e := fig1Engine()
	rsl := e.DB.ReverseSkyline(fig1(), paperQ)
	a := e.SafeRegion(paperQ, rsl)
	b := e.SafeRegion(paperQ, rsl)
	if !region.Equivalent(a, b) {
		t.Fatal("safe region computation must be deterministic")
	}
}

func TestEngineReverseSkylinePassthrough(t *testing.T) {
	// Monochromatic engine: same result as the DB path.
	e := fig1Engine()
	mono := e.ReverseSkyline(fig1(), paperQ)
	if len(mono) != 5 {
		t.Fatalf("mono RSL = %d", len(mono))
	}
	// Bichromatic engine: customers with IDs outside the product space.
	products := randProducts(200, 60)
	eb := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), false)
	customers := randProducts(50, 61)
	for i := range customers {
		customers[i].ID += 50000
	}
	q := geom.NewPoint(50, 50)
	got := eb.ReverseSkyline(customers, q)
	for _, c := range got {
		if eb.DB.WindowExists(c.Point, q, rskyline.NoExclude) {
			t.Fatalf("bichromatic member %d fails the window test", c.ID)
		}
	}
}
