package whynot

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"repro/internal/cancel"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/region"
	"repro/internal/skyline"
)

// Binary wire format of an ApproxStore (all integers little-endian):
//
//	magic "RSKA" | u16 version | i32 K | i32 SortDim | u32 customer count
//	per customer: i64 id | u32 corner count
//	per corner:   u16 dims | dims × f64 coordinates
//	trailer (v2): u32 CRC32C over every preceding byte
//
// The format is length-prefixed but every length is validated against what
// the reader can actually deliver: decoding allocates proportionally to the
// bytes read, never to a length claimed by the header, so hostile input
// cannot trigger unbounded allocation or a panic. The v2 trailer catches
// what per-field validation cannot: a bit flip inside an otherwise plausible
// coordinate. Version-1 files (no trailer) still load, with a one-time
// deprecation warning — re-save to upgrade.
const (
	storeMagic     = "RSKA"
	storeVersion   = 2
	storeVersionV1 = 1
	// maxStoreDims caps point dimensionality; real datasets are ≤ ~10-d and
	// anything near the cap indicates corruption.
	maxStoreDims = 1 << 10
)

// storeCRCTable is the Castagnoli polynomial, matching the WAL's framing.
var storeCRCTable = crc32.MakeTable(crc32.Castagnoli)

// storeV1Warn fires the v1 deprecation warning at most once per process.
var storeV1Warn sync.Once

// Save writes the store in a self-contained binary format (§VI.B.1 keeps the
// approximate skylines "stored (off-line)"; this is that offline artifact).
// Customers are written in ascending ID order so the output is deterministic.
func (s *ApproxStore) Save(w io.Writer) error {
	ids := make([]int, 0, len(s.corners))
	for id := range s.corners {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	bw := bufio.NewWriter(w)
	crc := crc32.New(storeCRCTable)
	var scratch [8]byte
	// Every byte up to the trailer goes through the CRC; hash.Hash.Write
	// never errors.
	put := func(b []byte) error {
		if _, err := bw.Write(b); err != nil {
			return err
		}
		crc.Write(b)
		return nil
	}
	if err := put([]byte(storeMagic)); err != nil {
		return err
	}
	putU16 := func(v uint16) error {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		return put(scratch[:2])
	}
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		return put(scratch[:4])
	}
	putU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		return put(scratch[:8])
	}
	if err := putU16(storeVersion); err != nil {
		return err
	}
	if err := putU32(uint32(int32(s.K))); err != nil {
		return err
	}
	if err := putU32(uint32(int32(s.SortDim))); err != nil {
		return err
	}
	if err := putU32(uint32(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		if err := putU64(uint64(int64(id))); err != nil {
			return err
		}
		corners := s.corners[id]
		if err := putU32(uint32(len(corners))); err != nil {
			return err
		}
		for _, c := range corners {
			if len(c) > maxStoreDims {
				return fmt.Errorf("whynot: approx store: customer %d has %d-d corner (max %d)", id, len(c), maxStoreDims)
			}
			if err := putU16(uint16(len(c))); err != nil {
				return err
			}
			for _, x := range c {
				if err := putU64(math.Float64bits(x)); err != nil {
					return err
				}
			}
		}
	}
	// Trailer: CRC32C over everything above, written outside the hash.
	binary.LittleEndian.PutUint32(scratch[:4], crc.Sum32())
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadApproxStore reads a store written by Save. It rejects malformed input
// with a descriptive error instead of panicking: bad magic or version,
// truncated sections, duplicate customer IDs, oversized or inconsistent
// dimensionality, and non-finite coordinates are all reported explicitly.
func LoadApproxStore(r io.Reader) (*ApproxStore, error) {
	br := bufio.NewReader(r)
	crc := crc32.New(storeCRCTable)
	var scratch [8]byte
	// readN feeds the running CRC; the v2 trailer itself is read raw below,
	// after the body, so the sum covers exactly what Save hashed.
	readN := func(n int, what string) error {
		if _, err := io.ReadFull(br, scratch[:n]); err != nil {
			return fmt.Errorf("whynot: approx store: truncated %s: %w", what, err)
		}
		crc.Write(scratch[:n])
		return nil
	}
	readU16 := func(what string) (uint16, error) {
		if err := readN(2, what); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(scratch[:2]), nil
	}
	readU32 := func(what string) (uint32, error) {
		if err := readN(4, what); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	readU64 := func(what string) (uint64, error) {
		if err := readN(8, what); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}

	if err := readN(4, "magic"); err != nil {
		return nil, err
	}
	if string(scratch[:4]) != storeMagic {
		return nil, fmt.Errorf("whynot: approx store: bad magic %q (not an approx store)", scratch[:4])
	}
	version, err := readU16("version")
	if err != nil {
		return nil, err
	}
	if version != storeVersion && version != storeVersionV1 {
		return nil, fmt.Errorf("whynot: approx store: unsupported version %d (want %d or %d)", version, storeVersion, storeVersionV1)
	}
	k, err := readU32("K")
	if err != nil {
		return nil, err
	}
	sortDim, err := readU32("sort dimension")
	if err != nil {
		return nil, err
	}
	count, err := readU32("customer count")
	if err != nil {
		return nil, err
	}

	// Capacity hints are capped: allocation must track bytes actually read,
	// not lengths a hostile header claims.
	s := &ApproxStore{
		K:       int(int32(k)),
		SortDim: int(int32(sortDim)),
		corners: make(map[int][]geom.Point, min(int(count), 1<<12)),
	}
	dims := -1 // dimensionality once observed; -1 until the first corner
	for i := uint32(0); i < count; i++ {
		rawID, err := readU64(fmt.Sprintf("customer %d id", i))
		if err != nil {
			return nil, err
		}
		id := int(int64(rawID))
		if _, dup := s.corners[id]; dup {
			return nil, fmt.Errorf("whynot: approx store: duplicate customer id %d", id)
		}
		ncorners, err := readU32(fmt.Sprintf("customer %d corner count", id))
		if err != nil {
			return nil, err
		}
		cs := make([]geom.Point, 0, min(int(ncorners), 1<<12))
		for j := uint32(0); j < ncorners; j++ {
			d, err := readU16(fmt.Sprintf("customer %d corner %d dims", id, j))
			if err != nil {
				return nil, err
			}
			if int(d) > maxStoreDims {
				return nil, fmt.Errorf("whynot: approx store: customer %d corner %d claims %d dims (max %d)", id, j, d, maxStoreDims)
			}
			if dims == -1 {
				dims = int(d)
			} else if int(d) != dims {
				return nil, fmt.Errorf("whynot: approx store: customer %d corner %d has %d dims, want %d", id, j, d, dims)
			}
			p := make(geom.Point, d)
			for m := range p {
				bits, err := readU64(fmt.Sprintf("customer %d corner %d coordinate %d", id, j, m))
				if err != nil {
					return nil, err
				}
				x := math.Float64frombits(bits)
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return nil, fmt.Errorf("whynot: approx store: customer %d corner %d has non-finite coordinate %d", id, j, m)
				}
				p[m] = x
			}
			cs = append(cs, p)
		}
		s.corners[id] = cs
	}
	switch version {
	case storeVersionV1:
		storeV1Warn.Do(func() {
			fmt.Fprintln(os.Stderr, "whynot: approx store: deprecated v1 format (no checksum); re-save (e.g. buildstore -save-store) to upgrade")
		})
	default:
		// The sum must be captured before the trailer read touches scratch.
		want := crc.Sum32()
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return nil, fmt.Errorf("whynot: approx store: truncated checksum trailer: %w", err)
		}
		if got := binary.LittleEndian.Uint32(scratch[:4]); got != want {
			return nil, fmt.Errorf("whynot: approx store: checksum mismatch: trailer %08x, computed %08x (corrupt or torn file)", got, want)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("whynot: approx store: trailing data after %d customers", count)
	}
	return s, nil
}

// Len returns the number of customers with precomputed corners.
func (s *ApproxStore) Len() int { return len(s.corners) }

// BuildApproxStoreParallel is BuildApproxStore fanned out over workers
// goroutines (0 means GOMAXPROCS). Each customer's dynamic skyline is an
// independent read-only index traversal, so this is safe and scales
// linearly — the offline precomputation is the only heavyweight step of the
// approximate pipeline.
func (e *Engine) BuildApproxStoreParallel(customers []Item, k, sortDim, workers int) *ApproxStore {
	store, _ := e.buildApproxStoreParallel(nil, customers, k, sortDim, workers)
	return store
}

// BuildApproxStoreParallelCtx is BuildApproxStoreParallel with
// deadline/cancellation support. Each worker polls the context through its
// own checker (checkers are per-goroutine); the first error wins.
func (e *Engine) BuildApproxStoreParallelCtx(ctx context.Context, customers []Item, k, sortDim, workers int) (*ApproxStore, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return e.buildApproxStoreParallel(ctx, customers, k, sortDim, workers)
}

func (e *Engine) buildApproxStoreParallel(ctx context.Context, customers []Item, k, sortDim, workers int) (*ApproxStore, error) {
	universe, ok := e.DB.Universe()
	store := &ApproxStore{K: k, SortDim: sortDim, corners: make(map[int][]geom.Point, len(customers))}
	if !ok || len(customers) == 0 {
		return store, nil
	}
	// Per-index result slots: each worker writes only its own index, so the
	// map is assembled without locking once the pool drains.
	corners := make([][]geom.Point, len(customers))
	err := exec.ForEach(ctx, len(customers), workers, cancel.SiteStoreBuild, func(chk *cancel.Checker, i int) error {
		c := customers[i]
		dsl, err := e.DB.DynamicSkylineExcludingChecked(chk, c.Point, e.exclude(c))
		if err != nil {
			return err
		}
		sampled := skyline.ApproxDynamic(dsl, c.Point, k, sortDim)
		u := universe.TransformMinMax(c.Point).Hi
		corners[i] = region.ApproxAntiDDRCorners(c.Point, points(sampled), u, sortDim)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range customers {
		store.corners[c.ID] = corners[i]
	}
	return store, nil
}
