package whynot

import (
	"encoding/gob"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/geom"
	"repro/internal/region"
	"repro/internal/skyline"
)

// storeDTO is the gob wire format of an ApproxStore.
type storeDTO struct {
	K       int
	SortDim int
	IDs     []int
	Corners [][][]float64
}

// Save writes the store in a self-contained binary format (§VI.B.1 keeps the
// approximate skylines "stored (off-line)"; this is that offline artifact).
func (s *ApproxStore) Save(w io.Writer) error {
	dto := storeDTO{K: s.K, SortDim: s.SortDim}
	for id, corners := range s.corners {
		dto.IDs = append(dto.IDs, id)
		cs := make([][]float64, len(corners))
		for i, c := range corners {
			cs[i] = c
		}
		dto.Corners = append(dto.Corners, cs)
	}
	return gob.NewEncoder(w).Encode(dto)
}

// LoadApproxStore reads a store written by Save.
func LoadApproxStore(r io.Reader) (*ApproxStore, error) {
	var dto storeDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("whynot: decode approx store: %w", err)
	}
	if len(dto.IDs) != len(dto.Corners) {
		return nil, fmt.Errorf("whynot: corrupt approx store: %d ids, %d corner sets",
			len(dto.IDs), len(dto.Corners))
	}
	s := &ApproxStore{K: dto.K, SortDim: dto.SortDim, corners: make(map[int][]geom.Point, len(dto.IDs))}
	for i, id := range dto.IDs {
		cs := make([]geom.Point, len(dto.Corners[i]))
		for j, c := range dto.Corners[i] {
			cs[j] = geom.Point(c)
		}
		s.corners[id] = cs
	}
	return s, nil
}

// Len returns the number of customers with precomputed corners.
func (s *ApproxStore) Len() int { return len(s.corners) }

// BuildApproxStoreParallel is BuildApproxStore fanned out over workers
// goroutines (0 means GOMAXPROCS). Each customer's dynamic skyline is an
// independent read-only index traversal, so this is safe and scales
// linearly — the offline precomputation is the only heavyweight step of the
// approximate pipeline.
func (e *Engine) BuildApproxStoreParallel(customers []Item, k, sortDim, workers int) *ApproxStore {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	universe, ok := e.DB.Universe()
	store := &ApproxStore{K: k, SortDim: sortDim, corners: make(map[int][]geom.Point, len(customers))}
	if !ok || len(customers) == 0 {
		return store
	}
	type result struct {
		id      int
		corners []geom.Point
	}
	jobs := make(chan Item)
	results := make(chan result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				dsl := e.DB.DynamicSkylineExcluding(c.Point, e.exclude(c))
				sampled := skyline.ApproxDynamic(dsl, c.Point, k, sortDim)
				u := universe.TransformMinMax(c.Point).Hi
				results <- result{
					id:      c.ID,
					corners: region.ApproxAntiDDRCorners(c.Point, points(sampled), u, sortDim),
				}
			}
		}()
	}
	go func() {
		for _, c := range customers {
			jobs <- c
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	for r := range results {
		store.corners[r.id] = r.corners
	}
	return store
}
