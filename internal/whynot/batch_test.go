package whynot

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/rskyline"
	"repro/internal/rtree"
)

func TestMWQBatchMatchesSingles(t *testing.T) {
	products := randProducts(300, 3030)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	rng := rand.New(rand.NewSource(3031))
	var q geom.Point
	var rsl []Item
	for trial := 0; trial < 40; trial++ {
		q = geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
		rsl = e.DB.ReverseSkyline(products, q)
		if len(rsl) >= 1 && len(rsl) <= 8 {
			break
		}
		rsl = nil
	}
	if rsl == nil {
		t.Skip("no suitable query sampled")
	}
	var cts []Item
	for _, c := range products {
		if e.DB.WindowExists(c.Point, q, c.ID) {
			cts = append(cts, c)
		}
		if len(cts) == 12 {
			break
		}
	}
	sr := e.SafeRegion(q, rsl)
	batch := e.MWQBatch(cts, q, rsl, Options{})
	parallel := e.MWQBatchParallel(cts, q, sr, Options{}, 4)
	if len(batch) != len(cts) || len(parallel) != len(cts) {
		t.Fatalf("batch sizes: %d / %d for %d customers", len(batch), len(parallel), len(cts))
	}
	for i, ct := range cts {
		single := e.MWQ(ct, q, sr, Options{})
		if batch[i].Cost != single.Cost || batch[i].Case != single.Case {
			t.Fatalf("batch[%d] diverges from single: %v/%v vs %v/%v",
				i, batch[i].Cost, batch[i].Case, single.Cost, single.Case)
		}
		if parallel[i].Cost != single.Cost || parallel[i].Case != single.Case {
			t.Fatalf("parallel[%d] diverges from single", i)
		}
		if !parallel[i].QStar.Equal(single.QStar) || !parallel[i].CtStar.Equal(single.CtStar) {
			t.Fatalf("parallel[%d] chose different points", i)
		}
	}
	// Empty batch is fine.
	if got := e.MWQBatchParallel(nil, q, sr, Options{}, 0); len(got) != 0 {
		t.Fatal("empty batch should yield empty results")
	}
}
