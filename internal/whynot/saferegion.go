package whynot

import (
	"context"

	"repro/internal/cancel"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/region"
	"repro/internal/rskyline"
	"repro/internal/skyline"
)

// SafeRegion implements Algorithm 3: the exact safe region of q is the
// intersection of the anti-dominance regions of every reverse-skyline point
// (Lemma 2), each represented as a union of rectangles built from the
// customer's dynamic skyline (Fig. 10). rsl must be RSL(q) over the customers
// of interest; an empty rsl yields the whole product universe, since q then
// has no customers to lose. By construction q itself always lies in the
// result.
func (e *Engine) SafeRegion(q geom.Point, rsl []Item) region.Set {
	sr, _ := e.safeRegion(nil, q, rsl)
	return sr
}

// SafeRegionCtx is SafeRegion with deadline/cancellation support: the
// checkpoint fires once per reverse-skyline member (each contributes one DSL
// computation plus one rectangle-set intersection, the part that can grow
// exponentially with |RSL(q)|).
func (e *Engine) SafeRegionCtx(ctx context.Context, q geom.Point, rsl []Item) (region.Set, error) {
	chk, err := entry(ctx)
	if err != nil {
		return nil, err
	}
	_, endPhase := obs.StartPhase(ctx, "saferegion.exact")
	defer endPhase()
	sp := explain.From(ctx).Start("saferegion.exact", explain.RuleSafeRegion)
	sp.SetIn(len(rsl))
	sr, err := e.safeRegion(chk, q, rsl)
	if err == nil {
		sp.SetOut(len(sr))
	}
	sp.End()
	return sr, err
}

func (e *Engine) safeRegion(chk *cancel.Checker, q geom.Point, rsl []Item) (region.Set, error) {
	universe, ok := e.DB.Universe()
	if !ok {
		return region.Set{geom.PointRect(q)}, nil
	}
	var sr region.Set
	started := false
	poll := pollAt(chk, cancel.SiteSafeRegion)
	for _, c := range rsl {
		if err := chk.Point(cancel.SiteSafeRegion); err != nil {
			return nil, err
		}
		add, err := e.antiDDRCached(chk, c, universe, poll)
		if err != nil {
			return nil, err
		}
		if !started {
			// Copy: add may be a shared cached set and the fold (and
			// ensureContainsQ below) append to sr.
			sr, started = append(region.Set{}, add...), true
		} else {
			sr, err = sr.IntersectSetChecked(add, poll)
			if err != nil {
				return nil, err
			}
		}
	}
	if !started {
		// No reverse-skyline points: every position is safe within the
		// universe (extended symmetrically around q like any anti-DDR).
		u := universe.TransformMinMax(q).Hi
		return region.Set{{Lo: q.Sub(u), Hi: q.Add(u)}}, nil
	}
	return ensureContainsQ(sr, q), nil
}

// SafeRegionParallel is SafeRegionCtx with the per-customer anti-DDR
// construction — DSL computation plus staircase assembly, the bulk of
// Algorithm 3 — fanned out over workers goroutines (0 = GOMAXPROCS). The
// rectangle-set intersection fold stays sequential: it is an ordered
// reduction whose cost is dwarfed by the per-customer work. workers <= 1
// falls back to the sequential construction, so results are always identical.
func (e *Engine) SafeRegionParallel(ctx context.Context, q geom.Point, rsl []Item, workers int) (region.Set, error) {
	if exec.Resolve(workers, len(rsl)) <= 1 {
		return e.SafeRegionCtx(ctx, q, rsl)
	}
	chk, err := entry(ctx)
	if err != nil {
		return nil, err
	}
	_, endPhase := obs.StartPhase(ctx, "saferegion.parallel")
	defer endPhase()
	universe, ok := e.DB.Universe()
	if !ok {
		return region.Set{geom.PointRect(q)}, nil
	}
	adds := make([]region.Set, len(rsl))
	err = exec.ForEach(ctx, len(rsl), workers, cancel.SiteSafeRegion, func(chk *cancel.Checker, i int) error {
		add, err := e.antiDDRCached(chk, rsl[i], universe, pollAt(chk, cancel.SiteSafeRegion))
		adds[i] = add
		return err
	})
	if err != nil {
		return nil, err
	}
	poll := pollAt(chk, cancel.SiteSafeRegion)
	var sr region.Set
	started := false
	for _, add := range adds {
		if !started {
			sr, started = append(region.Set{}, add...), true
			continue
		}
		sr, err = sr.IntersectSetChecked(add, poll)
		if err != nil {
			return nil, err
		}
	}
	if !started {
		u := universe.TransformMinMax(q).Hi
		return region.Set{{Lo: q.Sub(u), Hi: q.Add(u)}}, nil
	}
	return ensureContainsQ(sr, q), nil
}

// antiDDRCached computes the anti-dominance region of customer c against the
// current universe, through the engine's anti-DDR cache when one is enabled.
// A hit must match the customer's position and the current database
// generation; anything else recomputes and refreshes the entry. The returned
// set may be shared — callers must not modify it in place.
func (e *Engine) antiDDRCached(chk *cancel.Checker, c Item, universe geom.Rect, poll func() error) (region.Set, error) {
	if e.addr == nil {
		return e.antiDDRCompute(chk, c, universe, poll)
	}
	gen := e.DB.Generation()
	if ent, ok := e.addr.Get(c.ID); ok {
		if ent.gen == gen && ent.point.Equal(c.Point) {
			return ent.set, nil
		}
		// The entry was found but fails validation: a hit that cannot be
		// served. Reclassify it so hit rates stay honest.
		e.addr.MarkStale()
		obs.AddCacheStale(1)
	}
	set, err := e.antiDDRCompute(chk, c, universe, poll)
	if err != nil {
		return nil, err
	}
	// Stamped with the pre-computation generation: a mutation racing with the
	// traversal leaves the entry stale-on-arrival and it is never served.
	e.addr.Put(c.ID, addrEntry{point: c.Point.Clone(), gen: gen, set: set})
	return set, nil
}

// antiDDRCompute is the uncached per-customer unit of Algorithm 3: DSL(c)
// (through the database's DSL cache when enabled) followed by the Fig. 10
// staircase construction.
func (e *Engine) antiDDRCompute(chk *cancel.Checker, c Item, universe geom.Rect, poll func() error) (region.Set, error) {
	dsl, err := e.DB.DynamicSkylineOfChecked(chk, c, e.exclude(c))
	if err != nil {
		return nil, err
	}
	return region.AntiDDRChecked(c.Point, points(dsl), universe, poll)
}

// pollAt adapts a checker to the poll-callback form the region package's
// combinatorial loops accept (rectangle-set intersection and grid staircase
// construction can dwarf any per-customer checkpoint). A nil checker yields a
// nil poll so the legacy paths keep region's zero-overhead loops.
func pollAt(chk *cancel.Checker, site string) func() error {
	if chk == nil {
		return nil
	}
	return func() error { return chk.Point(site) }
}

// ensureContainsQ guarantees the trivially safe position q itself is part of
// the region (it always is for the exact construction; the approximate
// construction can miss it, in which case the safe region degrades to {q}
// and MWQ degrades to MWP, matching §VI.B.2's "no worse than MWP" bound).
func ensureContainsQ(sr region.Set, q geom.Point) region.Set {
	if sr.Contains(q) {
		return sr
	}
	return append(sr, geom.PointRect(q))
}

func points(items []Item) []geom.Point {
	out := make([]geom.Point, len(items))
	for i, it := range items {
		out[i] = it.Point
	}
	return out
}

// ApproxStore holds the pre-computed k-sampled dynamic skylines of §VI.B.1,
// the offline structure that turns safe-region construction from minutes
// into seconds (Fig. 17) at the price of a smaller (but always safe)
// region.
type ApproxStore struct {
	K       int
	SortDim int
	// corners maps a customer ID to the transformed corner points of its
	// approximate anti-DDR.
	corners map[int][]geom.Point
}

// BuildApproxStore pre-computes approximate anti-DDR corners for every given
// customer: the full DSL is computed once per customer, k-sampled, and the
// resulting corners stored (first and last sorted points always retained, no
// successive-pair merging — Fig. 16).
func (e *Engine) BuildApproxStore(customers []Item, k, sortDim int) *ApproxStore {
	store, _ := e.buildApproxStore(nil, customers, k, sortDim)
	return store
}

// BuildApproxStoreCtx is BuildApproxStore with deadline/cancellation support
// (the offline precomputation is linear in customers but each step is a full
// DSL computation).
func (e *Engine) BuildApproxStoreCtx(ctx context.Context, customers []Item, k, sortDim int) (*ApproxStore, error) {
	chk, err := entry(ctx)
	if err != nil {
		return nil, err
	}
	return e.buildApproxStore(chk, customers, k, sortDim)
}

func (e *Engine) buildApproxStore(chk *cancel.Checker, customers []Item, k, sortDim int) (*ApproxStore, error) {
	universe, ok := e.DB.Universe()
	if !ok {
		return &ApproxStore{K: k, SortDim: sortDim, corners: map[int][]geom.Point{}}, nil
	}
	store := &ApproxStore{K: k, SortDim: sortDim, corners: make(map[int][]geom.Point, len(customers))}
	for _, c := range customers {
		if err := chk.Point(cancel.SiteStoreBuild); err != nil {
			return nil, err
		}
		dsl, err := e.DB.DynamicSkylineExcludingChecked(chk, c.Point, e.exclude(c))
		if err != nil {
			return nil, err
		}
		sampled := skyline.ApproxDynamic(dsl, c.Point, k, sortDim)
		u := universe.TransformMinMax(c.Point).Hi
		store.corners[c.ID] = region.ApproxAntiDDRCorners(c.Point, points(sampled), u, sortDim)
	}
	return store, nil
}

// Corners returns the stored transformed corners for a customer ID; ok is
// false when the customer was not pre-computed.
func (s *ApproxStore) Corners(id int) ([]geom.Point, bool) {
	c, ok := s.corners[id]
	return c, ok
}

// ApproxSafeRegion assembles the approximate safe region from pre-computed
// corners. Customers missing from the store fall back to an exact anti-DDR
// computation, keeping the result correct (always a subset of the exact safe
// region, so no existing customer can be lost).
func (e *Engine) ApproxSafeRegion(q geom.Point, rsl []Item, store *ApproxStore) region.Set {
	sr, _ := e.approxSafeRegion(nil, q, rsl, store)
	return sr
}

// ApproxSafeRegionCtx is ApproxSafeRegion with deadline/cancellation support.
// Its checkpoints use a distinct site from the exact construction so fault
// injection can slow one rung of the degradation ladder without the other.
func (e *Engine) ApproxSafeRegionCtx(ctx context.Context, q geom.Point, rsl []Item, store *ApproxStore) (region.Set, error) {
	chk, err := entry(ctx)
	if err != nil {
		return nil, err
	}
	_, endPhase := obs.StartPhase(ctx, "saferegion.approx")
	defer endPhase()
	return e.approxSafeRegion(chk, q, rsl, store)
}

func (e *Engine) approxSafeRegion(chk *cancel.Checker, q geom.Point, rsl []Item, store *ApproxStore) (region.Set, error) {
	universe, ok := e.DB.Universe()
	if !ok {
		return region.Set{geom.PointRect(q)}, nil
	}
	var sr region.Set
	started := false
	poll := pollAt(chk, cancel.SiteApproxSafeRegion)
	for _, c := range rsl {
		if err := chk.Point(cancel.SiteApproxSafeRegion); err != nil {
			return nil, err
		}
		var add region.Set
		if corners, found := store.Corners(c.ID); found {
			add = region.AntiDDRFromCorners(c.Point, corners)
		} else {
			var err error
			add, err = e.antiDDRCached(chk, c, universe, poll)
			if err != nil {
				return nil, err
			}
		}
		if !started {
			sr, started = append(region.Set{}, add...), true
		} else {
			var err error
			sr, err = sr.IntersectSetChecked(add, poll)
			if err != nil {
				return nil, err
			}
		}
	}
	if !started {
		u := universe.TransformMinMax(q).Hi
		return region.Set{{Lo: q.Sub(u), Hi: q.Add(u)}}, nil
	}
	return ensureContainsQ(sr, q), nil
}

// TruncateSafeRegion implements the §V.B flexibility note: clip the safe
// region to a feature-limit box (e.g. "the price can only move within
// [8K, 12K]"). Truncation preserves the no-customer-lost guarantee; the
// region only gets smaller. If q itself falls outside the limits the result
// can be empty — callers should treat that as "the limits forbid every safe
// position".
func TruncateSafeRegion(sr region.Set, limits geom.Rect) region.Set {
	return sr.IntersectRect(limits)
}

// ExpandSafeRegion implements the other direction of the §V.B note: relax
// the safe region to the whole feature box, accepting that customers may be
// lost. It returns the expanded region together with the customers of rsl
// that would be lost at a given position (use LostCustomers per candidate
// position to quantify the side effect).
func ExpandSafeRegion(limits geom.Rect) region.Set {
	return region.Set{limits.Clone()}
}

// LostCustomers returns the members of rsl that would leave the reverse
// skyline if the query point moved to qStar — the side-effect measure for
// truncated/expanded safe regions and for raw MQP answers.
func (e *Engine) LostCustomers(qStar geom.Point, rsl []Item) []Item {
	lost, _ := e.lostCustomers(nil, qStar, rsl)
	return lost
}

// LostCustomersCtx is LostCustomers with deadline/cancellation support (one
// window-existence probe per reverse-skyline member).
func (e *Engine) LostCustomersCtx(ctx context.Context, qStar geom.Point, rsl []Item) ([]Item, error) {
	chk, err := entry(ctx)
	if err != nil {
		return nil, err
	}
	return e.lostCustomers(chk, qStar, rsl)
}

func (e *Engine) lostCustomers(chk *cancel.Checker, qStar geom.Point, rsl []Item) ([]Item, error) {
	var lost []Item
	for _, c := range rsl {
		if err := chk.Point(cancel.SiteCustomer); err != nil {
			return nil, err
		}
		gone, err := e.DB.WindowExistsChecked(chk, c.Point, qStar, e.exclude(c))
		if err != nil {
			return nil, err
		}
		if gone {
			lost = append(lost, c)
		}
	}
	return lost, nil
}

// AntiDDROf returns the anti-dominance region of an arbitrary point as a
// rectangle set (used by Algorithm 4 for the why-not point and exposed for
// callers that want to inspect it).
func (e *Engine) AntiDDROf(c Item) region.Set {
	set, _ := e.antiDDROf(nil, c)
	return set
}

// AntiDDROfCtx is AntiDDROf with deadline/cancellation support.
func (e *Engine) AntiDDROfCtx(ctx context.Context, c Item) (region.Set, error) {
	chk, err := entry(ctx)
	if err != nil {
		return nil, err
	}
	return e.antiDDROf(chk, c)
}

func (e *Engine) antiDDROf(chk *cancel.Checker, c Item) (region.Set, error) {
	universe, ok := e.DB.Universe()
	if !ok {
		return region.Set{geom.PointRect(c.Point)}, nil
	}
	return e.antiDDRCompute(chk, c, universe, pollAt(chk, cancel.SiteAntiDDR))
}

// ReverseSkyline recomputes RSL(q) over the given customers (convenience
// passthrough used by the harness and examples).
func (e *Engine) ReverseSkyline(customers []Item, q geom.Point) []Item {
	out, _ := e.reverseSkyline(nil, customers, q)
	return out
}

// ReverseSkylineCtx is ReverseSkyline with deadline/cancellation support.
func (e *Engine) ReverseSkylineCtx(ctx context.Context, customers []Item, q geom.Point) ([]Item, error) {
	chk, err := entry(ctx)
	if err != nil {
		return nil, err
	}
	return e.reverseSkyline(chk, customers, q)
}

func (e *Engine) reverseSkyline(chk *cancel.Checker, customers []Item, q geom.Point) ([]Item, error) {
	if e.Mono {
		return e.DB.ReverseSkylineChecked(chk, customers, q)
	}
	out := make([]Item, 0)
	for _, c := range customers {
		if err := chk.Point(cancel.SiteCustomer); err != nil {
			return nil, err
		}
		member, err := e.DB.WindowExistsChecked(chk, c.Point, q, rskyline.NoExclude)
		if err != nil {
			return nil, err
		}
		if !member {
			out = append(out, c)
		}
	}
	return out, nil
}
