package whynot

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/region"
	"repro/internal/rskyline"
	"repro/internal/rtree"
)

// fig1 returns the paper's running-example dataset (Fig. 1a).
func fig1() []Item {
	coords := [][2]float64{
		{5, 30}, {7.5, 42}, {2.5, 70}, {7.5, 90},
		{24, 20}, {20, 50}, {26, 70}, {16, 80},
	}
	items := make([]Item, len(coords))
	for i, c := range coords {
		items[i] = Item{ID: i + 1, Point: geom.NewPoint(c[0], c[1])}
	}
	return items
}

var paperQ = geom.NewPoint(8.5, 55)

func fig1Engine() *Engine {
	return NewEngine(rskyline.NewDB(2, fig1(), rtree.Config{}), true)
}

func hasPoint(cands []Candidate, p geom.Point) bool {
	for _, c := range cands {
		if c.Point.ApproxEqual(p, 1e-9) {
			return true
		}
	}
	return false
}

// Paper §IV example: MWP for c1 = (5, 30) yields c1* ∈ {(5, 48.5), (8, 30)}.
func TestMWPPaperExample(t *testing.T) {
	e := fig1Engine()
	c1 := Item{ID: 1, Point: geom.NewPoint(5, 30)}
	res := e.MWP(c1, paperQ, Options{})
	if res.AlreadyMember {
		t.Fatal("c1 must be a why-not point")
	}
	if lambda := e.Explain(c1, paperQ); len(lambda) != 1 || lambda[0].ID != 2 {
		t.Fatalf("Λ = %v, want [p2]", lambda)
	}
	if len(res.Frontier) != 1 || res.Frontier[0].ID != 2 {
		t.Fatalf("F = %v, want [p2]", res.Frontier)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %v, want 2", res.Candidates)
	}
	for _, want := range []geom.Point{geom.NewPoint(5, 48.5), geom.NewPoint(8, 30)} {
		if !hasPoint(res.Candidates, want) {
			t.Fatalf("missing paper candidate %v in %v", want, res.Candidates)
		}
	}
	// Both candidates must actually admit c1 after the ε-nudge.
	for _, c := range res.Candidates {
		if !e.ValidateWhyNotMove(c1, paperQ, c.Point, 1e-9) {
			t.Fatalf("candidate %v does not admit c1", c.Point)
		}
	}
}

// Paper §V.A example: MQP for c1 yields q* ∈ {(8.5, 42), (7.5, 55)}.
func TestMQPPaperExample(t *testing.T) {
	e := fig1Engine()
	c1 := Item{ID: 1, Point: geom.NewPoint(5, 30)}
	res := e.MQP(c1, paperQ, Options{})
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %v, want 2", res.Candidates)
	}
	for _, want := range []geom.Point{geom.NewPoint(8.5, 42), geom.NewPoint(7.5, 55)} {
		if !hasPoint(res.Candidates, want) {
			t.Fatalf("missing paper candidate %v in %v", want, res.Candidates)
		}
	}
	// Paper: "the car dealer has to decrease the price of q at least 1K",
	// i.e. (7.5, 55) costs less than (8.5, 42) under equal weights.
	if !res.Best().Point.ApproxEqual(geom.NewPoint(7.5, 55), 1e-9) {
		t.Fatalf("best MQP candidate = %v, want (7.5, 55)", res.Best().Point)
	}
	for _, c := range res.Candidates {
		if !e.ValidateQueryMove(c1, c.Point, 1e-9) {
			t.Fatalf("candidate %v does not admit c1", c.Point)
		}
	}
}

// Paper §V.B example: SR(q) over the Fig. 1 data. The paper prints the two
// rectangles {(7.5,50),(10,58)} and {(7.5,50),(12.5,54)}, but its own
// follow-up example contradicts the first: the overlap of SR(q) with
// anti-DDR(c7) is stated as {(7.5,60),(10,70)}, which is disjoint from a
// rectangle capped at mileage 58 and requires the cap to be 70. Direct
// window-query probing (next test) confirms every point of
// {(7.5,50),(10,70)} preserves RSL(q), so "58" is a typo for "70".
func TestSafeRegionPaperExample(t *testing.T) {
	e := fig1Engine()
	customers := fig1()
	rsl := e.DB.ReverseSkyline(customers, paperQ)
	if len(rsl) != 5 {
		t.Fatalf("|RSL(q)| = %d, want 5", len(rsl))
	}
	sr := e.SafeRegion(paperQ, rsl)
	want := region.Set{
		geom.NewRect(geom.NewPoint(7.5, 50), geom.NewPoint(10, 70)),
		geom.NewRect(geom.NewPoint(7.5, 50), geom.NewPoint(12.5, 54)),
	}
	if !region.Equivalent(sr, want) {
		t.Fatalf("SR(q) = %v (area %v), want %v (area %v)", sr, sr.Area(), want, want.Area())
	}
	if !sr.Contains(paperQ) {
		t.Fatal("q must lie inside its own safe region")
	}
	// The paper's printed (conservative) region is a subset of the exact one.
	paperSR := region.Set{
		geom.NewRect(geom.NewPoint(7.5, 50), geom.NewPoint(10, 58)),
		geom.NewRect(geom.NewPoint(7.5, 50), geom.NewPoint(12.5, 54)),
	}
	inter := paperSR.IntersectSet(sr)
	if math.Abs(inter.Area()-paperSR.Area()) > 1e-9 {
		t.Fatalf("paper's printed SR must be contained in the exact SR")
	}
}

// Safe-region soundness (Definition 7): every interior point of SR(q)
// preserves RSL(q), and points just outside it lose at least one customer.
func TestSafeRegionPreservesRSLPaperData(t *testing.T) {
	e := fig1Engine()
	customers := fig1()
	rsl := e.DB.ReverseSkyline(customers, paperQ)
	sr := e.SafeRegion(paperQ, rsl)
	// Probe interior grid points of every safe-region rectangle (the closed
	// boundary may weakly lose a customer by construction, so stay inside).
	for _, r := range sr {
		for fx := 0.01; fx < 1.0; fx += 0.246 {
			for fy := 0.01; fy < 1.0; fy += 0.246 {
				qs := geom.NewPoint(
					r.Lo[0]+fx*(r.Hi[0]-r.Lo[0]),
					r.Lo[1]+fy*(r.Hi[1]-r.Lo[1]),
				)
				for _, c := range rsl {
					if e.DB.WindowExists(c.Point, qs, c.ID) {
						t.Fatalf("moving q to %v loses customer %d", qs, c.ID)
					}
				}
			}
		}
	}
	// Exactness: probe a surrounding grid; any safe point (off the region's
	// boundary) must be inside the computed region.
	for x := 2.05; x < 28; x += 0.493 {
		for y := 18.05; y < 92; y += 0.493 {
			qs := geom.NewPoint(x, y)
			safe := true
			for _, c := range rsl {
				if e.DB.WindowExists(c.Point, qs, c.ID) {
					safe = false
					break
				}
			}
			if safe && !sr.Contains(qs) {
				t.Fatalf("safe point %v outside computed SR(q)", qs)
			}
			if !safe && sr.Contains(qs) {
				t.Fatalf("unsafe point %v inside computed SR(q)", qs)
			}
		}
	}
}

// Paper §V.B example: MWQ for why-not c7 is case C1 with the overlap region
// {(7.5,60),(10,70)} and q* = (8.5, 60).
func TestMWQPaperExampleC7(t *testing.T) {
	e := fig1Engine()
	customers := fig1()
	rsl := e.DB.ReverseSkyline(customers, paperQ)
	c7 := Item{ID: 7, Point: geom.NewPoint(26, 70)}
	res := e.MWQExact(c7, paperQ, rsl, Options{})
	if res.Case != CaseOverlap {
		t.Fatalf("case = %v, want C1 (overlap)", res.Case)
	}
	wantOverlap := region.Set{geom.NewRect(geom.NewPoint(7.5, 60), geom.NewPoint(10, 70))}
	if !region.Equivalent(res.Overlap, wantOverlap) {
		t.Fatalf("overlap = %v, want %v", res.Overlap, wantOverlap)
	}
	if !res.QStar.ApproxEqual(geom.NewPoint(8.5, 60), 1e-9) {
		t.Fatalf("q* = %v, want (8.5, 60)", res.QStar)
	}
	if res.Cost != 0 {
		t.Fatalf("C1 cost = %v, want 0", res.Cost)
	}
	// q* is the infimum on the closed overlap boundary; verify after an
	// ε-move into the overlap interior: it admits c7 and keeps all of RSL(q).
	qn := res.Overlap.InteriorNudge(res.QStar, 1e-9)
	if e.DB.WindowExists(c7.Point, qn, 7) {
		t.Fatal("q* does not admit c7")
	}
	for _, c := range rsl {
		if e.DB.WindowExists(c.Point, qn, c.ID) {
			t.Fatalf("q* loses existing customer %d", c.ID)
		}
	}
}

// Paper §V.B example: MWQ for why-not c1 is case C2 with best q* = (7.5, 50).
// The paper prints the induced why-not move as "c1*(50K, 46)", a garbled
// rendering of the candidate (5K, 46K), which our Algorithm 1 run against
// q* = (7.5, 50) produces alongside (7.5K, 30K).
func TestMWQPaperExampleC1(t *testing.T) {
	e := fig1Engine()
	customers := fig1()
	rsl := e.DB.ReverseSkyline(customers, paperQ)
	c1 := Item{ID: 1, Point: geom.NewPoint(5, 30)}
	res := e.MWQExact(c1, paperQ, rsl, Options{})
	if res.Case != CaseDisjoint {
		t.Fatalf("case = %v, want C2 (disjoint)", res.Case)
	}
	// The paper's chosen corner (7.5, 50) must be among the evaluated q*
	// candidates; against it, Algorithm 1 yields the paper's why-not move
	// (5, 46) ("c1*(50K, 46)" in the paper is a garbled (5K, 46K)).
	if !hasPoint(res.QCandidates, geom.NewPoint(7.5, 50)) {
		t.Fatalf("paper corner (7.5, 50) missing from q* candidates %v", res.QCandidates)
	}
	paperMove := e.MWP(c1, geom.NewPoint(7.5, 50), Options{})
	if !hasPoint(paperMove.Candidates, geom.NewPoint(5, 46)) {
		t.Fatalf("missing paper candidate (5, 46) in %v", paperMove.Candidates)
	}
	// The literal Algorithm 1 run against that corner would also emit
	// (7.5, 30), but the corner and the culprit p2 share price 7.5, making
	// that dimension degenerate: no ε-move can ever admit c1 there, so the
	// validity filter drops it.
	if hasPoint(paperMove.Candidates, geom.NewPoint(7.5, 30)) {
		t.Fatalf("unrescuable candidate (7.5, 30) must be filtered: %v", paperMove.Candidates)
	}
	// Our MWQ additionally evaluates staying at q, which here beats the
	// paper's corner: the induced move (8, 30) costs less than (5, 46).
	if res.Cost > paperMove.Best().Cost+1e-12 {
		t.Fatalf("MWQ cost %v worse than the paper's corner option %v", res.Cost, paperMove.Best().Cost)
	}
	// The chosen q* stays in the safe region (zero query cost) and the
	// why-not move must be valid against it.
	if !res.SafeRegion.Contains(res.QStar) {
		t.Fatal("q* must stay inside the safe region")
	}
	if !e.ValidateWhyNotMove(c1, res.QStar, res.CtStar, 1e-9) {
		t.Fatalf("c1* = %v does not admit c1 against q* = %v", res.CtStar, res.QStar)
	}
	qn := res.SafeRegion.InteriorNudge(res.QStar, 1e-9)
	for _, c := range rsl {
		if e.DB.WindowExists(c.Point, qn, c.ID) {
			t.Fatalf("q* loses existing customer %d", c.ID)
		}
	}
	// MWQ never costs more than MWP (the paper's headline comparison).
	mwp := e.MWP(c1, paperQ, Options{})
	if res.Cost > mwp.Best().Cost+1e-12 {
		t.Fatalf("MWQ cost %v exceeds MWP cost %v", res.Cost, mwp.Best().Cost)
	}
}

func TestAlreadyMemberShortCircuits(t *testing.T) {
	e := fig1Engine()
	c2 := Item{ID: 2, Point: geom.NewPoint(7.5, 42)}
	if got := e.Explain(c2, paperQ); len(got) != 0 {
		t.Fatalf("Explain for a member = %v, want empty", got)
	}
	mwp := e.MWP(c2, paperQ, Options{})
	if !mwp.AlreadyMember || mwp.Best().Cost != 0 || !mwp.Best().Point.Equal(c2.Point) {
		t.Fatalf("MWP for member = %+v", mwp)
	}
	mqp := e.MQP(c2, paperQ, Options{})
	if !mqp.AlreadyMember || mqp.Best().Cost != 0 {
		t.Fatalf("MQP for member = %+v", mqp)
	}
	rsl := e.DB.ReverseSkyline(fig1(), paperQ)
	mwq := e.MWQExact(c2, paperQ, rsl, Options{})
	if !mwq.AlreadyMember || mwq.Cost != 0 {
		t.Fatalf("MWQ for member = %+v", mwq)
	}
}

func randProducts(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: i, Point: geom.NewPoint(rng.Float64()*100, rng.Float64()*100)}
	}
	return items
}

// Property: every MWP candidate admits the why-not point, on random data and
// arbitrary q / c_t orientations.
func TestMWPValidityRandom(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		products := randProducts(300, seed)
		e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
		rng := rand.New(rand.NewSource(seed + 50))
		tested := 0
		for trial := 0; trial < 60 && tested < 15; trial++ {
			q := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
			ct := products[rng.Intn(len(products))]
			res := e.MWP(ct, q, Options{})
			if res.AlreadyMember {
				continue
			}
			tested++
			for _, cand := range res.Candidates {
				if !e.ValidateWhyNotMove(ct, q, cand.Point, 1e-7) {
					t.Fatalf("seed %d: invalid MWP candidate %v for ct=%v q=%v",
						seed, cand.Point, ct.Point, q)
				}
			}
			// The cheapest candidate never costs more than moving c_t all
			// the way onto q (a trivially valid move).
			trivial := e.costC(ct.Point, q, Options{})
			if res.Best().Cost > trivial+1e-12 {
				t.Fatalf("seed %d: MWP best cost %v exceeds trivial move %v",
					seed, res.Best().Cost, trivial)
			}
		}
		if tested == 0 {
			t.Fatalf("seed %d: no why-not cases sampled", seed)
		}
	}
}

// Property: every MQP candidate admits the why-not point.
func TestMQPValidityRandom(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		products := randProducts(300, seed+100)
		e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
		rng := rand.New(rand.NewSource(seed + 150))
		tested := 0
		for trial := 0; trial < 60 && tested < 15; trial++ {
			q := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
			ct := products[rng.Intn(len(products))]
			res := e.MQP(ct, q, Options{})
			if res.AlreadyMember {
				continue
			}
			tested++
			for _, cand := range res.Candidates {
				if !e.ValidateQueryMove(ct, cand.Point, 1e-7) {
					t.Fatalf("seed %d: invalid MQP candidate %v for ct=%v q=%v",
						seed, cand.Point, ct.Point, q)
				}
			}
		}
		if tested == 0 {
			t.Fatalf("seed %d: no why-not cases sampled", seed)
		}
	}
}

// Property: the safe region preserves RSL on random data, and MWQ's q* both
// admits the why-not point (after moving c_t in case C2) and keeps RSL.
func TestMWQSoundnessRandom(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		products := randProducts(200, seed+200)
		e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
		rng := rand.New(rand.NewSource(seed + 250))
		tested := 0
		for trial := 0; trial < 40 && tested < 6; trial++ {
			q := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
			rsl := e.DB.ReverseSkyline(products, q)
			if len(rsl) == 0 || len(rsl) > 12 {
				continue
			}
			ct := products[rng.Intn(len(products))]
			if !e.DB.WindowExists(ct.Point, q, ct.ID) {
				continue // already a member
			}
			tested++
			res := e.MWQExact(ct, q, rsl, Options{})
			// q* is an infimum on the closed safe-region boundary; after an
			// ε-move into the region interior it must preserve every
			// existing reverse-skyline customer.
			qn := res.SafeRegion.InteriorNudge(res.QStar, 1e-9)
			if res.Case == CaseOverlap {
				qn = res.Overlap.InteriorNudge(res.QStar, 1e-9)
			}
			for _, c := range rsl {
				if e.DB.WindowExists(c.Point, qn, c.ID) {
					t.Fatalf("seed %d: MWQ q*=%v loses customer %d (case %v)",
						seed, res.QStar, c.ID, res.Case)
				}
			}
			switch res.Case {
			case CaseOverlap:
				if res.Cost != 0 {
					t.Fatalf("seed %d: C1 with non-zero cost %v", seed, res.Cost)
				}
				if e.DB.WindowExists(ct.Point, qn, ct.ID) {
					t.Fatalf("seed %d: C1 q*=%v does not admit ct=%v", seed, res.QStar, ct.Point)
				}
			case CaseDisjoint:
				if !e.ValidateWhyNotMove(ct, res.QStar, res.CtStar, 1e-7) {
					t.Fatalf("seed %d: C2 ct*=%v invalid against q*=%v", seed, res.CtStar, res.QStar)
				}
				// MWQ ≤ MWP.
				mwp := e.MWP(ct, q, Options{})
				if res.Cost > mwp.Best().Cost+1e-9 {
					t.Fatalf("seed %d: MWQ cost %v > MWP cost %v", seed, res.Cost, mwp.Best().Cost)
				}
			}
		}
		if tested == 0 {
			t.Fatalf("seed %d: no MWQ cases sampled", seed)
		}
	}
}

// The approximate safe region is always a subset of the exact one (by
// measure), so Approx-MWQ can never lose an existing customer.
func TestApproxSafeRegionSubset(t *testing.T) {
	products := randProducts(400, 999)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	store := e.BuildApproxStore(products, 5, 0)
	rng := rand.New(rand.NewSource(1000))
	tested := 0
	for trial := 0; trial < 40 && tested < 8; trial++ {
		q := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
		rsl := e.DB.ReverseSkyline(products, q)
		if len(rsl) == 0 || len(rsl) > 10 {
			continue
		}
		tested++
		exact := e.SafeRegion(q, rsl)
		approx := e.ApproxSafeRegion(q, rsl, store)
		inter := approx.IntersectSet(exact)
		if math.Abs(inter.Area()-approx.Area()) > 1e-6*(1+approx.Area()) {
			t.Fatalf("approx SR (area %v) not a subset of exact SR (overlap %v)",
				approx.Area(), inter.Area())
		}
		if !approx.Contains(q) {
			t.Fatal("q must stay inside the approximate safe region")
		}
	}
	if tested == 0 {
		t.Fatal("no safe regions sampled")
	}
}

// Approx-MWQ quality bound from §VI.B.2: never worse than MWP.
func TestApproxMWQNeverWorseThanMWP(t *testing.T) {
	products := randProducts(300, 555)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	store := e.BuildApproxStore(products, 5, 0)
	rng := rand.New(rand.NewSource(556))
	tested := 0
	for trial := 0; trial < 60 && tested < 8; trial++ {
		q := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
		rsl := e.DB.ReverseSkyline(products, q)
		if len(rsl) == 0 || len(rsl) > 10 {
			continue
		}
		ct := products[rng.Intn(len(products))]
		if !e.DB.WindowExists(ct.Point, q, ct.ID) {
			continue
		}
		tested++
		approx := e.MWQApprox(ct, q, rsl, store, Options{})
		mwp := e.MWP(ct, q, Options{})
		if approx.Cost > mwp.Best().Cost+1e-9 {
			t.Fatalf("Approx-MWQ cost %v worse than MWP %v", approx.Cost, mwp.Best().Cost)
		}
	}
	if tested == 0 {
		t.Fatal("no cases sampled")
	}
}

func TestMQPTotalCost(t *testing.T) {
	e := fig1Engine()
	customers := fig1()
	rsl := e.DB.ReverseSkyline(customers, paperQ)
	sr := e.SafeRegion(paperQ, rsl)
	// Moving q inside its safe region costs nothing.
	inside := geom.NewPoint(8.5, 55)
	if got := e.MQPTotalCost(paperQ, inside, rsl, sr, Options{}); got != 0 {
		t.Fatalf("cost of staying = %v, want 0", got)
	}
	// A drastic move away loses customers and costs more than the plain
	// α-distance from the safe region.
	far := geom.NewPoint(26, 20)
	cost := e.MQPTotalCost(paperQ, far, rsl, sr, Options{})
	pNear, _, _ := sr.NearestPoint(far, nil)
	base := e.costQ(pNear, far, Options{})
	if cost < base {
		t.Fatalf("total cost %v below α-term %v", cost, base)
	}
	// Nil safe region charges from q itself.
	costNil := e.MQPTotalCost(paperQ, far, rsl, nil, Options{})
	if costNil < e.costQ(paperQ, far, Options{}) {
		t.Fatalf("nil-SR cost %v below |q−q*|", costNil)
	}
}

func TestMWPHigherDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	items := make([]Item, 200)
	for i := range items {
		items[i] = Item{ID: i, Point: geom.NewPoint(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)}
	}
	e := NewEngine(rskyline.NewDB(3, items, rtree.Config{}), true)
	tested := 0
	for trial := 0; trial < 60 && tested < 10; trial++ {
		q := geom.NewPoint(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		ct := items[rng.Intn(len(items))]
		res := e.MWP(ct, q, Options{})
		if res.AlreadyMember {
			continue
		}
		tested++
		for _, cand := range res.Candidates {
			if !e.ValidateWhyNotMove(ct, q, cand.Point, 1e-7) {
				t.Fatalf("3-d MWP candidate %v invalid (ct=%v q=%v)", cand.Point, ct.Point, q)
			}
		}
	}
	if tested == 0 {
		t.Fatal("no 3-d why-not cases sampled")
	}
}
