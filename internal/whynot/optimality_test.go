package whynot

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/rskyline"
	"repro/internal/rtree"
)

// Differential oracle: exhaustive grid search over candidate positions. The
// algorithms' best answers must not be beaten (beyond grid resolution) by
// any grid point that validates with real window queries — i.e., the paper's
// "minimum change" claim holds for the candidate enumeration.

func TestMWPOptimalityAgainstGridSearch(t *testing.T) {
	products := randProducts(150, 5150)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	rng := rand.New(rand.NewSource(5151))
	tested := 0
	for trial := 0; trial < 80 && tested < 6; trial++ {
		q := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
		ct := products[rng.Intn(len(products))]
		res := e.MWP(ct, q, Options{})
		if res.AlreadyMember {
			continue
		}
		tested++
		best := res.Best().Cost

		// Grid-search the box spanned by c_t and q (plus slack) for the
		// cheapest strictly valid position.
		gridBest := math.Inf(1)
		lo := ct.Point.Min(q)
		hi := ct.Point.Max(q)
		const steps = 60
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				p := geom.NewPoint(
					lo[0]+(hi[0]-lo[0])*float64(i)/steps,
					lo[1]+(hi[1]-lo[1])*float64(j)/steps,
				)
				if e.DB.WindowExists(p, q, ct.ID) {
					continue // not strictly valid
				}
				if c := e.costC(ct.Point, p, Options{}); c < gridBest {
					gridBest = c
				}
			}
		}
		// Grid positions are strictly valid, so gridBest ≥ the infimum; the
		// algorithm's boundary answer must be at most gridBest (+ float fuzz).
		if best > gridBest+1e-9 {
			t.Fatalf("MWP best %v beaten by grid point with cost %v (ct=%v q=%v)",
				best, gridBest, ct.Point, q)
		}
	}
	if tested == 0 {
		t.Fatal("no why-not cases sampled")
	}
}

func TestMQPOptimalityAgainstGridSearch(t *testing.T) {
	products := randProducts(150, 5160)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	rng := rand.New(rand.NewSource(5161))
	tested := 0
	for trial := 0; trial < 80 && tested < 6; trial++ {
		q := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
		ct := products[rng.Intn(len(products))]
		res := e.MQP(ct, q, Options{})
		if res.AlreadyMember {
			continue
		}
		tested++
		best := res.Best().Cost

		gridBest := math.Inf(1)
		lo := ct.Point.Min(q)
		hi := ct.Point.Max(q)
		const steps = 60
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				p := geom.NewPoint(
					lo[0]+(hi[0]-lo[0])*float64(i)/steps,
					lo[1]+(hi[1]-lo[1])*float64(j)/steps,
				)
				if e.DB.WindowExists(ct.Point, p, ct.ID) {
					continue // p does not admit c_t as query point
				}
				if c := e.costQ(q, p, Options{}); c < gridBest {
					gridBest = c
				}
			}
		}
		if best > gridBest+1e-9 {
			t.Fatalf("MQP best %v beaten by grid point with cost %v (ct=%v q=%v)",
				best, gridBest, ct.Point, q)
		}
	}
	if tested == 0 {
		t.Fatal("no why-not cases sampled")
	}
}

// Weighted variant: optimality must hold under non-uniform dimension weights
// as well (the β vector of Eqn. (9)).
func TestMWPOptimalityWeighted(t *testing.T) {
	products := randProducts(120, 5170)
	e := NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	rng := rand.New(rand.NewSource(5171))
	opt := Options{WeightsC: []float64{0.8, 0.2}}
	tested := 0
	for trial := 0; trial < 80 && tested < 5; trial++ {
		q := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
		ct := products[rng.Intn(len(products))]
		res := e.MWP(ct, q, opt)
		if res.AlreadyMember {
			continue
		}
		tested++
		best := res.Best().Cost
		gridBest := math.Inf(1)
		lo := ct.Point.Min(q)
		hi := ct.Point.Max(q)
		const steps = 50
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				p := geom.NewPoint(
					lo[0]+(hi[0]-lo[0])*float64(i)/steps,
					lo[1]+(hi[1]-lo[1])*float64(j)/steps,
				)
				if e.DB.WindowExists(p, q, ct.ID) {
					continue
				}
				if c := e.costC(ct.Point, p, opt); c < gridBest {
					gridBest = c
				}
			}
		}
		if best > gridBest+1e-9 {
			t.Fatalf("weighted MWP best %v beaten by grid %v", best, gridBest)
		}
	}
	if tested == 0 {
		t.Fatal("no cases sampled")
	}
}
