package whynot

import (
	"context"
	"math"
	"sort"

	"repro/internal/cancel"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/region"
)

// MWQCase distinguishes the two situations of Table I.
type MWQCase int

const (
	// CaseOverlap (C1): the why-not point's anti-DDR overlaps the safe
	// region, so moving only the query point suffices and the Eqn. (11)
	// cost is zero.
	CaseOverlap MWQCase = 1
	// CaseDisjoint (C2): the safe region and the anti-DDR are disjoint;
	// both the query point (within its safe region) and the why-not point
	// must move.
	CaseDisjoint MWQCase = 2
)

// MWQResult is the outcome of Algorithm 4.
type MWQResult struct {
	Case MWQCase
	// SafeRegion is the (exact or approximate) safe region used.
	SafeRegion region.Set
	// AntiDDR is the why-not point's anti-dominance region.
	AntiDDR region.Set
	// Overlap is SR(q) ∩ anti-DDR(c_t); non-empty exactly in case C1.
	Overlap region.Set
	// QStar is the chosen new query-point location. In case C1 it is the
	// point of the overlap region nearest to q; in case C2 it is the
	// safe-region corner whose induced why-not move is cheapest.
	QStar geom.Point
	// QCandidates are the evaluated q* options, cheapest first (by distance
	// from q in C1, by induced why-not cost in C2).
	QCandidates []Candidate
	// CtStar is the chosen new why-not-point location; equal to c_t with
	// zero cost in case C1.
	CtStar geom.Point
	// CtCandidates are the why-not-point options of the winning q* in case
	// C2 (single zero-cost entry in case C1), cheapest first.
	CtCandidates []Candidate
	// Cost is the Eqn. (11) objective: the normalised β-weighted movement
	// of the why-not point (query-point moves inside the safe region are
	// free per Eqn. (10)).
	Cost float64
	// AlreadyMember is true when c_t ∈ RSL(q) without any move.
	AlreadyMember bool
}

// MWQ implements Algorithm 4 (Modify Query and Why-not Point) given a
// precomputed safe region (exact from SafeRegion or approximate from
// ApproxSafeRegion; the paper reuses one safe region across many why-not
// questions on the same query).
func (e *Engine) MWQ(ct Item, q geom.Point, sr region.Set, opt Options) MWQResult {
	res, _ := e.mwq(nil, nil, nil, ct, q, sr, opt)
	return res
}

// MWQCtx is MWQ with deadline/cancellation support: checkpoints cover the
// membership probe, the anti-DDR construction, and every corner evaluation of
// the case-C2 loop (each of which runs a full checked MWP).
func (e *Engine) MWQCtx(ctx context.Context, ct Item, q geom.Point, sr region.Set, opt Options) (MWQResult, error) {
	chk, err := entry(ctx)
	if err != nil {
		return MWQResult{}, err
	}
	return e.mwq(chk, obs.TraceFrom(ctx), explain.From(ctx), ct, q, sr, opt)
}

// mwq runs Algorithm 4. tr and eb are threaded explicitly (this layer has no
// context): tr records the span timeline, eb the plan tree. Per-corner MWP
// calls deliberately run without eb — a plan tree that grew one subtree per
// corner would make the plan shape (and so the query fingerprint) depend on
// the corner count instead of the pipeline structure; the corners node
// aggregates them.
func (e *Engine) mwq(chk *cancel.Checker, tr *obs.Trace, eb *explain.Builder, ct Item, q geom.Point, sr region.Set, opt Options) (MWQResult, error) {
	defer tr.StartSpan("mwq")()
	spM := eb.Start("mwq", explain.RuleNone)
	defer spM.End()
	member, err := e.DB.WindowExistsChecked(chk, ct.Point, q, e.exclude(ct))
	if err != nil {
		return MWQResult{}, err
	}
	if !member {
		tr.Event("mwq.case", "already a reverse-skyline member")
		return MWQResult{
			AlreadyMember: true,
			SafeRegion:    sr,
			QStar:         q.Clone(),
			CtStar:        ct.Point.Clone(),
			QCandidates:   []Candidate{{Point: q.Clone(), Cost: 0}},
			CtCandidates:  []Candidate{{Point: ct.Point.Clone(), Cost: 0}},
		}, nil
	}
	spO := eb.Start("mwq.overlap", explain.RuleSafeRegion)
	spO.SetIn(len(sr))
	antiDDR, err := e.antiDDROf(chk, ct)
	if err != nil {
		spO.End()
		return MWQResult{}, err
	}
	// Only an overlap with non-empty interior counts as case C1: candidates
	// are infima of open regions, so a measure-zero (degenerate) overlap has
	// no strictly valid point arbitrarily close and must be handled as C2.
	overlap := positiveRects(sr.IntersectSet(antiDDR))
	spO.SetOut(len(overlap))
	spO.End()
	if !overlap.IsEmpty() {
		// Case C1 (steps 1–6): move q to the nearest point of each overlap
		// rectangle; the why-not point stays put and the cost is zero.
		tr.Eventf("mwq.case", "C1 overlap: %d rects", len(overlap))
		cands := make([]Candidate, 0, len(overlap))
		for _, r := range overlap {
			p := r.NearestPoint(q)
			cands = append(cands, Candidate{Point: p, Cost: e.costQ(q, p, opt)})
		}
		obs.AddCandidateEvaluations(len(cands))
		sortCandidates(cands)
		cands = dedupCandidates(cands)
		return MWQResult{
			Case:         CaseOverlap,
			SafeRegion:   sr,
			AntiDDR:      antiDDR,
			Overlap:      overlap,
			QStar:        cands[0].Point,
			QCandidates:  cands,
			CtStar:       ct.Point.Clone(),
			CtCandidates: []Candidate{{Point: ct.Point.Clone(), Cost: 0}},
			Cost:         0,
		}, nil
	}

	// Case C2 (steps 7–20): q may move only inside its safe region, so the
	// candidate q* positions are the safe-region rectangle corners closest
	// to c_t (non-dominated in the space transformed around c_t); for each,
	// Algorithm 1 moves the why-not point against that q*, and the cheapest
	// combination wins. Corners of degenerate (zero-volume) safe-region
	// rectangles are skipped — they have no achievable interior, so moving
	// there genuinely loses customers. q itself is always evaluated too —
	// staying put is trivially safe and guarantees the paper's
	// cost(MWQ) ≤ cost(MWP) property even when every corner is worse.
	corners := append(positiveRects(sr).Corners(), q.Clone())
	tr.Eventf("mwq.case", "C2 disjoint: %d safe-region corners", len(corners))
	obs.AddSafeRegionVertices(len(corners))
	spC := eb.Start("mwq.corners", explain.RuleMidpoint)
	spC.SetIn(len(corners))
	defer spC.End()
	type scored struct {
		pt geom.Point
		tr geom.Point
	}
	ts := make([]scored, len(corners))
	for i, c := range corners {
		ts[i] = scored{pt: c, tr: c.Transform(ct.Point)}
	}
	// Keep corners whose transformed image is not dominated (Algorithm 4
	// steps 11–13).
	var qCands []scored
	dt := 0
	for a, sa := range ts {
		dominated := false
		for b, sb := range ts {
			if a == b {
				continue
			}
			dt++
			if sb.tr.Dominates(sa.tr) {
				dominated = true
				break
			}
		}
		// The original q is kept even when dominated: dominance in the
		// transformed space does not order the induced MWP costs, and q is
		// the reference that bounds MWQ by MWP.
		if !dominated || sa.pt.Equal(q) {
			qCands = append(qCands, sa)
		}
	}
	obs.AddDominanceTests(dt)
	obs.AddPruned(len(ts) - len(qCands))

	endCorners := tr.StartSpan("mwq.corners")
	bestCost := math.Inf(1)
	var bestQ geom.Point
	var bestCt []Candidate
	var qEvaluated []Candidate
	for _, qc := range qCands {
		if err := chk.Point(cancel.SiteMWQCorner); err != nil {
			endCorners()
			return MWQResult{}, err
		}
		res, err := e.mwp(chk, nil, ct, qc.pt, opt)
		if err != nil {
			endCorners()
			return MWQResult{}, err
		}
		cost := res.Best().Cost
		qEvaluated = append(qEvaluated, Candidate{Point: qc.pt, Cost: cost})
		if cost < bestCost {
			bestCost = cost
			bestQ = qc.pt
			bestCt = res.Candidates
		}
	}
	endCorners()
	obs.AddCandidateEvaluations(len(qEvaluated))
	spC.SetOut(len(qEvaluated))
	sort.SliceStable(qEvaluated, func(a, b int) bool { return qEvaluated[a].Cost < qEvaluated[b].Cost })
	return MWQResult{
		Case:         CaseDisjoint,
		SafeRegion:   sr,
		AntiDDR:      antiDDR,
		Overlap:      overlap,
		QStar:        bestQ,
		QCandidates:  qEvaluated,
		CtStar:       bestCt[0].Point,
		CtCandidates: bestCt,
		Cost:         bestCost,
	}, nil
}

// positiveRects keeps only rectangles with strictly positive volume.
func positiveRects(s region.Set) region.Set {
	var out region.Set
	for _, r := range s {
		if r.Area() > 0 {
			out = append(out, r)
		}
	}
	return out
}

// MWQExact computes the exact safe region and runs Algorithm 4. rsl must be
// RSL(q) over the customers of interest.
func (e *Engine) MWQExact(ct Item, q geom.Point, rsl []Item, opt Options) MWQResult {
	return e.MWQ(ct, q, e.SafeRegion(q, rsl), opt)
}

// MWQExactCtx is MWQExact with deadline/cancellation support; the safe-region
// construction — the step that is exponential in |RSL(q)| in the worst case —
// is fully checkpointed.
func (e *Engine) MWQExactCtx(ctx context.Context, ct Item, q geom.Point, rsl []Item, opt Options) (MWQResult, error) {
	chk, err := entry(ctx)
	if err != nil {
		return MWQResult{}, err
	}
	tr := obs.TraceFrom(ctx)
	eb := explain.From(ctx)
	endSR := tr.StartSpan("saferegion.exact")
	spSR := eb.Start("saferegion.exact", explain.RuleSafeRegion)
	spSR.SetIn(len(rsl))
	sr, err := e.safeRegion(chk, q, rsl)
	if err == nil {
		spSR.SetOut(len(sr))
	}
	spSR.End()
	endSR()
	if err != nil {
		return MWQResult{}, err
	}
	return e.mwq(chk, tr, eb, ct, q, sr, opt)
}

// MWQExactParallelCtx is MWQExactCtx with the safe-region construction fanned
// out over workers goroutines (0 = GOMAXPROCS); Algorithm 4 itself runs on
// the calling goroutine. Results are identical to MWQExactCtx.
func (e *Engine) MWQExactParallelCtx(ctx context.Context, ct Item, q geom.Point, rsl []Item, opt Options, workers int) (MWQResult, error) {
	sr, err := e.SafeRegionParallel(ctx, q, rsl, workers)
	if err != nil {
		return MWQResult{}, err
	}
	return e.MWQCtx(ctx, ct, q, sr, opt)
}

// MWQApprox runs Algorithm 4 on the approximate safe region assembled from
// the pre-computed store (§VI.B.1).
func (e *Engine) MWQApprox(ct Item, q geom.Point, rsl []Item, store *ApproxStore, opt Options) MWQResult {
	return e.MWQ(ct, q, e.ApproxSafeRegion(q, rsl, store), opt)
}

// MWQApproxCtx is MWQApprox with deadline/cancellation support — the fast
// rung of the engine's degradation ladder.
func (e *Engine) MWQApproxCtx(ctx context.Context, ct Item, q geom.Point, rsl []Item, store *ApproxStore, opt Options) (MWQResult, error) {
	chk, err := entry(ctx)
	if err != nil {
		return MWQResult{}, err
	}
	tr := obs.TraceFrom(ctx)
	eb := explain.From(ctx)
	endSR := tr.StartSpan("saferegion.approx")
	spSR := eb.Start("saferegion.approx", explain.RuleSafeRegion)
	spSR.SetIn(len(rsl))
	sr, err := e.approxSafeRegion(chk, q, rsl, store)
	if err == nil {
		spSR.SetOut(len(sr))
	}
	spSR.End()
	endSR()
	if err != nil {
		return MWQResult{}, err
	}
	return e.mwq(chk, tr, eb, ct, q, sr, opt)
}
