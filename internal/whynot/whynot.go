// Package whynot implements the paper's contribution: answering why-not
// questions in reverse skyline queries.
//
// Given a product database P (package rskyline), a query product q and a
// why-not customer c_t ∉ RSL(q), the package provides:
//
//   - Explain — aspect (1) of §III: the culprit products Λ returned by the
//     window query, whose deletion would admit c_t (Lemma 1);
//   - MWP (Algorithm 1) — move the why-not point: minimal modifications
//     c_t → c_t* such that q ∈ DSL(c_t*);
//   - MQP (Algorithm 2) — move the query point: minimal modifications
//     q → q* such that c_t ∈ RSL(q*), possibly losing existing customers;
//   - SafeRegion (Algorithm 3, Lemma 2/3) — the exact region where q may
//     move without losing any existing reverse-skyline customer, plus the
//     approximate variant of §VI.B.1;
//   - MWQ (Algorithm 4) — move q inside its safe region and, only when
//     unavoidable (case C2 of Table I), also move c_t, minimising the cost
//     of Eqn. (11).
//
// Candidate semantics: as in the paper's worked examples, candidates lie on
// the closure of the valid region; they are infima of the movement cost and
// become strictly valid after an arbitrarily small further move. Validation
// helpers apply that ε-move before re-checking membership with real window
// queries.
package whynot

import (
	"context"
	"math"
	"sort"

	"repro/internal/cancel"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/region"
	"repro/internal/rskyline"
	"repro/internal/rtree"
)

// Item aliases the R-tree item type.
type Item = rtree.Item

// Options tunes the algorithms. The zero value reproduces the paper's
// experimental setup: sort dimension 0, equal weights summing to one.
type Options struct {
	// SortDim is the dimension used to sort the candidate list M.
	SortDim int
	// WeightsC is the β vector of Eqn. (9) weighting why-not-point movement
	// per dimension. Nil means equal weights 1/d.
	WeightsC []float64
	// WeightsQ is the α vector weighting query-point movement. Nil means
	// equal weights 1/d.
	WeightsQ []float64
}

// Candidate is one proposed new location together with its normalised
// weighted L1 cost from the original location (Eqn. (11) after min–max
// normalisation).
type Candidate struct {
	Point geom.Point
	Cost  float64
}

// Engine binds a product database with the normaliser used for costs.
// Mono selects the monochromatic convention under which a customer's own
// product record (matched by ID) is invisible to its window queries.
type Engine struct {
	DB   *rskyline.DB
	Norm *geom.Normalizer
	Mono bool

	// addr memoises per-customer anti-dominance regions (the per-c_l unit of
	// Algorithm 3). Nil — the default — disables caching. Entries carry the
	// database generation observed before computing and are ignored when the
	// database has mutated since, so Insert/Delete invalidate implicitly even
	// if a stale entry survives a purge race.
	addr *exec.Cache[int, addrEntry]
}

// addrEntry is one cached anti-DDR: the customer position it was computed
// for, the database generation it is valid against, and the rectangle set.
// The set is shared between queries and must be treated as immutable.
type addrEntry struct {
	point geom.Point
	gen   uint64
	set   region.Set
}

// EnableAntiDDRCache turns on memoisation of per-customer anti-dominance
// regions, bounded to capacity entries (capacity <= 0 disables caching).
// Safe-region construction for repeated query points over a stable customer
// set then skips both the DSL computation and the staircase construction for
// cached customers.
func (e *Engine) EnableAntiDDRCache(capacity int) {
	e.addr = exec.NewCache[int, addrEntry](capacity)
}

// AntiDDRCacheStats reports the cumulative accounting of the anti-DDR cache
// (all-zero when caching is disabled).
func (e *Engine) AntiDDRCacheStats() exec.CacheStats {
	return e.addr.Stats()
}

// InvalidateCaches eagerly drops every cached per-customer structure held by
// the engine. Correctness never depends on calling it — entries are
// generation-validated against the database and go stale automatically on
// Insert/Delete — but an explicit purge releases their memory immediately
// instead of waiting for LRU eviction.
func (e *Engine) InvalidateCaches() {
	e.addr.Purge()
}

// NewEngine builds an engine over db. The cost normaliser is fitted to the
// product universe.
func NewEngine(db *rskyline.DB, mono bool) *Engine {
	u, ok := db.Universe()
	if !ok {
		u = geom.NewRect(make(geom.Point, db.Dims()), make(geom.Point, db.Dims()))
	}
	return &Engine{DB: db, Norm: geom.NewNormalizerFromRect(u), Mono: mono}
}

func (e *Engine) exclude(ct Item) int {
	if e.Mono {
		return ct.ID
	}
	return rskyline.NoExclude
}

// entry guards a context-aware entry point: it rejects an already-cancelled
// context before any algorithmic work happens and hands back the per-query
// checker used by every checkpoint below.
func entry(ctx context.Context) (*cancel.Checker, error) {
	if ctx == nil {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return cancel.FromContext(ctx), nil
}

// Explain answers aspect (1) of §III: it returns the products Λ that keep
// c_t out of RSL(q). An empty result means c_t is already a reverse-skyline
// point of q. By Lemma 1, deleting Λ from P admits c_t.
func (e *Engine) Explain(ct Item, q geom.Point) []Item {
	return e.DB.WindowQuery(ct.Point, q, e.exclude(ct))
}

// ExplainCtx is Explain with deadline/cancellation support.
func (e *Engine) ExplainCtx(ctx context.Context, ct Item, q geom.Point) ([]Item, error) {
	chk, err := entry(ctx)
	if err != nil {
		return nil, err
	}
	_, endPhase := obs.StartPhase(ctx, "explain")
	defer endPhase()
	sp := explain.From(ctx).Start("explain.window", explain.RuleDSLWindow)
	out, err := e.DB.WindowQueryChecked(chk, ct.Point, q, e.exclude(ct))
	if err == nil {
		sp.SetOut(len(out))
	}
	sp.End()
	return out, err
}

// costC returns the normalised β-weighted movement cost of the why-not point.
func (e *Engine) costC(from, to geom.Point, opt Options) float64 {
	return e.Norm.NormalizedL1(from, to, opt.WeightsC)
}

// costQ returns the normalised α-weighted movement cost of the query point.
func (e *Engine) costQ(from, to geom.Point, opt Options) float64 {
	return e.Norm.NormalizedL1(from, to, opt.WeightsQ)
}

// MWPResult is the outcome of Algorithm 1.
type MWPResult struct {
	// Frontier is F: the members of the window-query result Λ minimal under
	// dynamic dominance w.r.t. q, whose midpoints bound the valid area. (The
	// full Λ is never materialised — use Explain for aspect (1); the
	// frontier is extracted by an index-level branch-and-bound.)
	Frontier []Item
	// Candidates are the proposed c_t* locations, sorted by ascending cost.
	Candidates []Candidate
	// AlreadyMember is true when c_t ∈ RSL(q); then the single zero-cost
	// candidate is c_t itself.
	AlreadyMember bool
}

// Best returns the cheapest candidate. It panics on an empty result, which
// cannot happen for results produced by MWP.
func (r MWPResult) Best() Candidate { return r.Candidates[0] }

// MWP implements Algorithm 1 (Modify Why-Not Point): it computes candidate
// locations c_t* of minimal movement such that q enters the dynamic skyline
// of c_t*. The construction works in the orientation-canonical frame (each
// dimension flipped so that q lies above c_t), which reproduces the paper's
// formulas exactly for their configuration and stays correct for arbitrary
// relative positions.
func (e *Engine) MWP(ct Item, q geom.Point, opt Options) MWPResult {
	res, _ := e.mwp(nil, nil, ct, q, opt)
	return res
}

// MWPCtx is MWP with deadline/cancellation support: the frontier extraction
// (the only index-touching, potentially expensive step) carries checkpoints.
func (e *Engine) MWPCtx(ctx context.Context, ct Item, q geom.Point, opt Options) (MWPResult, error) {
	chk, err := entry(ctx)
	if err != nil {
		return MWPResult{}, err
	}
	_, endPhase := obs.StartPhase(ctx, "mwp")
	defer endPhase()
	eb := explain.From(ctx)
	sp := eb.Start("mwp", explain.RuleNone)
	defer sp.End()
	return e.mwp(chk, eb, ct, q, opt)
}

// mwp runs Algorithm 1. eb, when non-nil, receives the per-phase plan nodes
// (threaded explicitly like chk — this layer has no context).
func (e *Engine) mwp(chk *cancel.Checker, eb *explain.Builder, ct Item, q geom.Point, opt Options) (MWPResult, error) {
	spF := eb.Start("mwp.frontier", explain.RuleDSLWindow)
	frontier, err := e.DB.WindowFrontierChecked(chk, ct.Point, q, q, e.exclude(ct))
	if err != nil {
		spF.End()
		return MWPResult{}, err
	}
	spF.SetOut(len(frontier))
	spF.End()
	if len(frontier) == 0 {
		return MWPResult{
			AlreadyMember: true,
			Candidates:    []Candidate{{Point: ct.Point.Clone(), Cost: 0}},
		}, nil
	}
	spC := eb.Start("mwp.candidates", explain.RuleMidpoint)
	spC.SetIn(len(frontier))
	defer spC.End()

	d := len(q)
	i := opt.SortDim
	// Canonical frame: flip dimensions so that q ≥ c_t everywhere.
	dir := directions(ct.Point, q)
	cc := flip(ct.Point, dir)
	qc := flip(q, dir)

	// Midpoints between each frontier point and q (Eqn. (1) generalised to
	// both sides: u = (e + q)/2). Dimensions in which the frontier point
	// coincides with q are degenerate: no position can make q strictly
	// closer there, so they never count toward validity.
	mids := make([]geom.Point, len(frontier))
	degen := make([][]bool, len(frontier))
	for k, f := range frontier {
		fc := flip(f.Point, dir)
		m := make(geom.Point, d)
		dg := make([]bool, d)
		for j := 0; j < d; j++ {
			m[j] = (fc[j] + qc[j]) / 2
			dg[j] = fc[j] == qc[j]
		}
		mids[k] = m
		degen[k] = dg
	}
	// Keep only maximal midpoints in the canonical frame (midpoints of
	// frontier points form an antichain when the frontier does, but guard
	// against ties), then sort by the chosen dimension.
	keep := maximalIndices(mids)
	sort.Slice(keep, func(a, b int) bool { return mids[keep[a]][i] < mids[keep[b]][i] })
	binding := make([]constraint, len(keep))
	for k, idx := range keep {
		binding[k] = constraint{mid: mids[idx], degen: degen[idx]}
	}

	// Build the candidate list: projection of the first entry onto c_t in
	// dimension i, coordinate-wise minima of successive pairs (Eqn. (2)),
	// projection of the last entry onto c_t in the remaining dimensions
	// (Eqn. (3)).
	var canon []geom.Point
	first := binding[0].mid.Clone()
	first[i] = cc[i]
	canon = append(canon, first)
	for k := 0; k+1 < len(binding); k++ {
		canon = append(canon, binding[k].mid.Min(binding[k+1].mid))
	}
	last := binding[len(binding)-1].mid.Clone()
	for j := 0; j < d; j++ {
		if j != i {
			last[j] = cc[j]
		}
	}
	canon = append(canon, last)

	// Closure-validity filter: a canonical candidate x neutralises a
	// frontier midpoint u iff some non-degenerate dimension has x_j ≥ u_j
	// (an ε-move toward q then makes q strictly closer there). Degenerate
	// dimensions never help, and in higher dimensions the paper's
	// construction can emit invalid combinations; both are dropped here.
	valid := canon[:0]
	for _, x := range canon {
		if canonValid(x, binding) {
			valid = append(valid, x)
		}
	}
	if len(valid) == 0 {
		// Always-valid fallback: moving c_t onto q itself puts q at
		// transformed distance zero, where nothing strictly dominates it.
		valid = append(valid, qc)
	}

	cands := make([]Candidate, 0, len(valid))
	for _, m := range valid {
		p := flip(m, dir)
		cands = append(cands, Candidate{Point: p, Cost: e.costC(ct.Point, p, opt)})
	}
	obs.AddCandidateEvaluations(len(cands))
	sortCandidates(cands)
	deduped := dedupCandidates(cands)
	spC.SetOut(len(deduped))
	return MWPResult{Frontier: frontier, Candidates: deduped}, nil
}

// constraint is one binding frontier midpoint with its per-dimension
// degeneracy mask (true where the frontier point coincides with q).
type constraint struct {
	mid   geom.Point
	degen []bool
}

// canonValid reports whether canonical candidate x lies in the closure of
// the valid region bounded by the given constraints: for every midpoint
// there must be a non-degenerate dimension with x_j ≥ u_j.
func canonValid(x geom.Point, binding []constraint) bool {
	for _, c := range binding {
		ok := false
		for j := range x {
			if !c.degen[j] && x[j] >= c.mid[j] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// maximalIndices returns the indices of the points not weakly dominated from
// above by another point, deduplicating equal points.
func maximalIndices(pts []geom.Point) []int {
	var out []int
	for a, pa := range pts {
		covered := false
		for b, pb := range pts {
			if a == b {
				continue
			}
			if pa.WeaklyDominates(pb) && !pb.Equal(pa) {
				covered = true
				break
			}
			if pb.Equal(pa) && b < a {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, a)
		}
	}
	return out
}

// directions returns per-dimension +1/−1 so that flipping makes q ≥ c.
func directions(c, q geom.Point) []float64 {
	dir := make([]float64, len(c))
	for j := range c {
		if q[j] >= c[j] {
			dir[j] = 1
		} else {
			dir[j] = -1
		}
	}
	return dir
}

func flip(p geom.Point, dir []float64) geom.Point {
	out := make(geom.Point, len(p))
	for j := range p {
		out[j] = p[j] * dir[j]
	}
	return out
}

func sortCandidates(cands []Candidate) {
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].Cost < cands[b].Cost })
}

func dedupCandidates(cands []Candidate) []Candidate {
	var out []Candidate
	for _, c := range cands {
		dup := false
		for _, kept := range out {
			if kept.Point.Equal(c.Point) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// ValidateWhyNotMove reports whether moving the why-not point to cand admits
// it into RSL(q) after an ε-nudge toward q (candidates lie on the closure of
// the valid region; see the package comment).
func (e *Engine) ValidateWhyNotMove(ct Item, q geom.Point, cand geom.Point, eps float64) bool {
	nudged := nudgeToward(cand, q, eps)
	return !e.DB.WindowExists(nudged, q, e.exclude(ct))
}

// ValidateWhyNotMoveCtx is ValidateWhyNotMove with deadline/cancellation
// support.
func (e *Engine) ValidateWhyNotMoveCtx(ctx context.Context, ct Item, q geom.Point, cand geom.Point, eps float64) (bool, error) {
	chk, err := entry(ctx)
	if err != nil {
		return false, err
	}
	nudged := nudgeToward(cand, q, eps)
	found, err := e.DB.WindowExistsChecked(chk, nudged, q, e.exclude(ct))
	if err != nil {
		return false, err
	}
	return !found, nil
}

// nudgeToward moves p a relative distance eps toward target.
func nudgeToward(p, target geom.Point, eps float64) geom.Point {
	out := make(geom.Point, len(p))
	for j := range p {
		out[j] = p[j] + eps*(target[j]-p[j])
	}
	return out
}

// minCost returns the smallest candidate cost, or +Inf on empty input.
func minCost(cands []Candidate) float64 {
	best := math.Inf(1)
	for _, c := range cands {
		if c.Cost < best {
			best = c.Cost
		}
	}
	return best
}
