package whynot

import (
	"runtime"
	"sync"

	"repro/internal/geom"
	"repro/internal/region"
)

// MWQBatch answers one why-not question per customer against the same query
// point, computing the safe region once — the reuse the paper highlights in
// §VI.B ("we do not need to recompute it to answer another why-not question
// for the same query point"). Results are positionally aligned with cts.
func (e *Engine) MWQBatch(cts []Item, q geom.Point, rsl []Item, opt Options) []MWQResult {
	sr := e.SafeRegion(q, rsl)
	return e.MWQBatchWithRegion(cts, q, sr, opt)
}

// MWQBatchWithRegion runs Algorithm 4 for every customer against a shared
// precomputed safe region.
func (e *Engine) MWQBatchWithRegion(cts []Item, q geom.Point, sr region.Set, opt Options) []MWQResult {
	out := make([]MWQResult, len(cts))
	for i, ct := range cts {
		out[i] = e.MWQ(ct, q, sr, opt)
	}
	return out
}

// MWQBatchParallel fans MWQBatchWithRegion out over workers goroutines
// (0 = GOMAXPROCS). Each question only reads the index and the shared safe
// region, so results are identical to the serial batch.
func (e *Engine) MWQBatchParallel(cts []Item, q geom.Point, sr region.Set, opt Options, workers int) []MWQResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]MWQResult, len(cts))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = e.MWQ(cts[i], q, sr, opt)
			}
		}()
	}
	for i := range cts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
