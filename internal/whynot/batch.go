package whynot

import (
	"context"

	"repro/internal/cancel"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/region"
)

// MWQBatch answers one why-not question per customer against the same query
// point, computing the safe region once — the reuse the paper highlights in
// §VI.B ("we do not need to recompute it to answer another why-not question
// for the same query point"). Results are positionally aligned with cts.
func (e *Engine) MWQBatch(cts []Item, q geom.Point, rsl []Item, opt Options) []MWQResult {
	sr := e.SafeRegion(q, rsl)
	return e.MWQBatchWithRegion(cts, q, sr, opt)
}

// MWQBatchCtx is MWQBatch with deadline/cancellation support.
func (e *Engine) MWQBatchCtx(ctx context.Context, cts []Item, q geom.Point, rsl []Item, opt Options) ([]MWQResult, error) {
	chk, err := entry(ctx)
	if err != nil {
		return nil, err
	}
	tr := obs.TraceFrom(ctx)
	endSR := tr.StartSpan("saferegion.exact")
	sr, err := e.safeRegion(chk, q, rsl)
	endSR()
	if err != nil {
		return nil, err
	}
	return e.mwqBatchWithRegion(chk, tr, cts, q, sr, opt)
}

// MWQBatchWithRegion runs Algorithm 4 for every customer against a shared
// precomputed safe region.
func (e *Engine) MWQBatchWithRegion(cts []Item, q geom.Point, sr region.Set, opt Options) []MWQResult {
	out, _ := e.mwqBatchWithRegion(nil, nil, cts, q, sr, opt)
	return out
}

// MWQBatchWithRegionCtx is MWQBatchWithRegion with deadline/cancellation
// support: the checkpoint fires once per why-not question on top of the
// checkpoints inside each question.
func (e *Engine) MWQBatchWithRegionCtx(ctx context.Context, cts []Item, q geom.Point, sr region.Set, opt Options) ([]MWQResult, error) {
	chk, err := entry(ctx)
	if err != nil {
		return nil, err
	}
	return e.mwqBatchWithRegion(chk, obs.TraceFrom(ctx), cts, q, sr, opt)
}

func (e *Engine) mwqBatchWithRegion(chk *cancel.Checker, tr *obs.Trace, cts []Item, q geom.Point, sr region.Set, opt Options) ([]MWQResult, error) {
	out := make([]MWQResult, len(cts))
	for i, ct := range cts {
		if err := chk.Point(cancel.SiteBatchItem); err != nil {
			return nil, err
		}
		res, err := e.mwq(chk, tr, nil, ct, q, sr, opt)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// MWQBatchParallel fans MWQBatchWithRegion out over workers goroutines
// (0 = GOMAXPROCS). Each question only reads the index and the shared safe
// region, so results are identical to the serial batch.
func (e *Engine) MWQBatchParallel(cts []Item, q geom.Point, sr region.Set, opt Options, workers int) []MWQResult {
	out, _ := e.mwqBatchParallel(nil, cts, q, sr, opt, workers)
	return out
}

// MWQBatchParallelCtx is MWQBatchParallel with deadline/cancellation support.
// Each worker polls the context through its own checker (checkers are
// per-goroutine); the first error wins and the batch returns nil. A panic in
// any worker is re-raised on the calling goroutine once all workers have
// drained, so recovery middleware above the batch still sees it.
func (e *Engine) MWQBatchParallelCtx(ctx context.Context, cts []Item, q geom.Point, sr region.Set, opt Options, workers int) ([]MWQResult, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return e.mwqBatchParallel(ctx, cts, q, sr, opt, workers)
}

func (e *Engine) mwqBatchParallel(ctx context.Context, cts []Item, q geom.Point, sr region.Set, opt Options, workers int) ([]MWQResult, error) {
	out := make([]MWQResult, len(cts))
	// The trace is shared across workers: span/event recording is lock-free
	// and safe for concurrent writers.
	tr := obs.TraceFrom(ctx)
	err := exec.ForEach(ctx, len(cts), workers, cancel.SiteBatchItem, func(chk *cancel.Checker, i int) error {
		res, err := e.mwq(chk, tr, nil, cts[i], q, sr, opt)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
