package whynot

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cancel"
	"repro/internal/geom"
	"repro/internal/region"
)

// MWQBatch answers one why-not question per customer against the same query
// point, computing the safe region once — the reuse the paper highlights in
// §VI.B ("we do not need to recompute it to answer another why-not question
// for the same query point"). Results are positionally aligned with cts.
func (e *Engine) MWQBatch(cts []Item, q geom.Point, rsl []Item, opt Options) []MWQResult {
	sr := e.SafeRegion(q, rsl)
	return e.MWQBatchWithRegion(cts, q, sr, opt)
}

// MWQBatchCtx is MWQBatch with deadline/cancellation support.
func (e *Engine) MWQBatchCtx(ctx context.Context, cts []Item, q geom.Point, rsl []Item, opt Options) ([]MWQResult, error) {
	chk, err := entry(ctx)
	if err != nil {
		return nil, err
	}
	sr, err := e.safeRegion(chk, q, rsl)
	if err != nil {
		return nil, err
	}
	return e.mwqBatchWithRegion(chk, cts, q, sr, opt)
}

// MWQBatchWithRegion runs Algorithm 4 for every customer against a shared
// precomputed safe region.
func (e *Engine) MWQBatchWithRegion(cts []Item, q geom.Point, sr region.Set, opt Options) []MWQResult {
	out, _ := e.mwqBatchWithRegion(nil, cts, q, sr, opt)
	return out
}

// MWQBatchWithRegionCtx is MWQBatchWithRegion with deadline/cancellation
// support: the checkpoint fires once per why-not question on top of the
// checkpoints inside each question.
func (e *Engine) MWQBatchWithRegionCtx(ctx context.Context, cts []Item, q geom.Point, sr region.Set, opt Options) ([]MWQResult, error) {
	chk, err := entry(ctx)
	if err != nil {
		return nil, err
	}
	return e.mwqBatchWithRegion(chk, cts, q, sr, opt)
}

func (e *Engine) mwqBatchWithRegion(chk *cancel.Checker, cts []Item, q geom.Point, sr region.Set, opt Options) ([]MWQResult, error) {
	out := make([]MWQResult, len(cts))
	for i, ct := range cts {
		if err := chk.Point(cancel.SiteBatchItem); err != nil {
			return nil, err
		}
		res, err := e.mwq(chk, ct, q, sr, opt)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// MWQBatchParallel fans MWQBatchWithRegion out over workers goroutines
// (0 = GOMAXPROCS). Each question only reads the index and the shared safe
// region, so results are identical to the serial batch.
func (e *Engine) MWQBatchParallel(cts []Item, q geom.Point, sr region.Set, opt Options, workers int) []MWQResult {
	out, _ := e.mwqBatchParallel(nil, cts, q, sr, opt, workers)
	return out
}

// MWQBatchParallelCtx is MWQBatchParallel with deadline/cancellation support.
// Each worker polls the context through its own checker (checkers are
// per-goroutine); the first error wins and the batch returns nil. A panic in
// any worker is re-raised on the calling goroutine once all workers have
// drained, so recovery middleware above the batch still sees it.
func (e *Engine) MWQBatchParallelCtx(ctx context.Context, cts []Item, q geom.Point, sr region.Set, opt Options, workers int) ([]MWQResult, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return e.mwqBatchParallel(ctx, cts, q, sr, opt, workers)
}

func (e *Engine) mwqBatchParallel(ctx context.Context, cts []Item, q geom.Point, sr region.Set, opt Options, workers int) ([]MWQResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]MWQResult, len(cts))
	var wg sync.WaitGroup
	jobs := make(chan int)
	var mu sync.Mutex
	var firstErr error
	var firstPanic any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine needs its own checker: Checker is deliberately
			// not concurrency-safe (no atomics on the hot path).
			chk := cancel.FromContext(ctx)
			for i := range jobs {
				mu.Lock()
				stop := firstErr != nil || firstPanic != nil
				mu.Unlock()
				if stop {
					continue // drain remaining jobs without working
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if firstPanic == nil {
								firstPanic = r
							}
							mu.Unlock()
						}
					}()
					if err := chk.Point(cancel.SiteBatchItem); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					res, err := e.mwq(chk, cts[i], q, sr, opt)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					out[i] = res
				}()
			}
		}()
	}
	for i := range cts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstPanic != nil {
		panic(fmt.Sprintf("whynot: MWQ batch worker panicked: %v", firstPanic))
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
