package region

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// qs generates a small random rectangle set in [0,20]².
type qs struct{ Rects [][4]float64 }

func (qs) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(6)
	rects := make([][4]float64, n)
	for i := range rects {
		x, y := r.Float64()*16, r.Float64()*16
		rects[i] = [4]float64{x, y, x + r.Float64()*4, y + r.Float64()*4}
	}
	return reflect.ValueOf(qs{Rects: rects})
}

func (s qs) set() Set {
	out := make(Set, len(s.Rects))
	for i, r := range s.Rects {
		out[i] = geom.NewRect(geom.NewPoint(r[0], r[1]), geom.NewPoint(r[2], r[3]))
	}
	return out
}

var quickCfg = &quick.Config{MaxCount: 200}

// Area is monotone: the union never shrinks when a rect is added, and is
// bounded by the sum of parts.
func TestQuickAreaMonotoneSubadditive(t *testing.T) {
	f := func(a qs) bool {
		s := a.set()
		var sum float64
		prev := 0.0
		for i := range s {
			part := s[:i+1].Area()
			if part+1e-9 < prev {
				return false
			}
			prev = part
			sum += s[i].Area()
		}
		return s.Area() <= sum+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Prune preserves both membership and measure.
func TestQuickPrunePreservesRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(a qs) bool {
		s := a.set()
		p := s.Prune()
		if absf(s.Area()-p.Area()) > 1e-9 {
			return false
		}
		for i := 0; i < 50; i++ {
			pt := geom.NewPoint(rng.Float64()*20, rng.Float64()*20)
			if s.Contains(pt) != p.Contains(pt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Intersection membership is the conjunction of memberships (up to the
// closed boundary, which random probes miss almost surely).
func TestQuickIntersectMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(a, b qs) bool {
		sa, sb := a.set(), b.set()
		inter := sa.IntersectSet(sb)
		if inter.Area() > sa.Area()+1e-9 || inter.Area() > sb.Area()+1e-9 {
			return false
		}
		for i := 0; i < 50; i++ {
			pt := geom.NewPoint(rng.Float64()*20, rng.Float64()*20)
			if inter.Contains(pt) != (sa.Contains(pt) && sb.Contains(pt)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Overlaps agrees with a non-empty pairwise intersection.
func TestQuickOverlapsAgrees(t *testing.T) {
	f := func(a, b qs) bool {
		sa, sb := a.set(), b.set()
		return sa.Overlaps(sb) == (len(sa.IntersectSet(sb)) > 0)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// The nearest point of a set is inside the set and no member rect offers a
// closer one.
func TestQuickNearestPointOptimal(t *testing.T) {
	f := func(a qs, px, py float64) bool {
		s := a.set()
		p := geom.NewPoint(mod20(px), mod20(py))
		n, d, ok := s.NearestPoint(p, nil)
		if !ok {
			return len(s) == 0
		}
		if !s.Contains(n) {
			return false
		}
		for _, r := range s {
			if r.NearestPoint(p).L1(p) < d-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Staircase corners: every corner is itself inside the closed complement and
// no corner dominates another.
func TestQuickStaircaseCornersAntichain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(a qs) bool {
		// Reuse the rect generator as a point generator.
		var sky []geom.Point
		for _, r := range a.Rects {
			sky = append(sky, geom.NewPoint(r[0]+0.1, r[1]+0.1))
		}
		u := geom.NewPoint(25, 25)
		corners := StaircaseCorners2D(sky, u)
		for i, ci := range corners {
			for j, cj := range corners {
				if i != j && ci.WeaklyDominates(cj) {
					return false // ci ≤ cj: ci is redundant
				}
			}
			// Closed-complement membership: ∀s ∃dim corner ≤ s.
			for _, s := range sky {
				if !(ci[0] <= s[0] || ci[1] <= s[1]) {
					return false
				}
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func mod20(v float64) float64 {
	if v != v || v > 1e18 || v < -1e18 {
		return 0
	}
	m := v - float64(int64(v/20))*20
	if m < 0 {
		m += 20
	}
	return m
}
