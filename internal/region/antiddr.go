package region

import (
	"sort"

	"repro/internal/geom"
)

// StaircaseCorners2D computes the maximal corners of the downward-closed
// complement of the dominance boxes of tr (transformed dynamic-skyline
// points) within the transformed universe [0, u], using the paper's
// Fig. 10 construction: sort by dimension 0, extend the first point to the
// universe in dimension 1 and the last to the universe in dimension 0, and
// take the coordinate-wise maximum of each successive pair. Dominated
// (redundant) corners are pruned. tr may contain non-skyline points; they are
// filtered first. An empty tr yields the single corner u (the whole
// universe).
func StaircaseCorners2D(tr []geom.Point, u geom.Point) []geom.Point {
	sky := minimalPoints(tr)
	if len(sky) == 0 {
		return []geom.Point{u.Clone()}
	}
	sort.Slice(sky, func(i, j int) bool {
		if sky[i][0] != sky[j][0] {
			return sky[i][0] < sky[j][0]
		}
		return sky[i][1] < sky[j][1]
	})
	corners := make([]geom.Point, 0, len(sky)+1)
	corners = append(corners, geom.NewPoint(sky[0][0], u[1]))
	for i := 0; i+1 < len(sky); i++ {
		corners = append(corners, sky[i].Max(sky[i+1]))
	}
	corners = append(corners, geom.NewPoint(u[0], sky[len(sky)-1][1]))
	out, _ := maximalPoints(corners, nil)
	return out
}

// StaircaseCornersGrid computes the same maximal corners for any
// dimensionality by enumerating the candidate grid spanned by the skyline
// coordinates and the universe bound: every maximal corner has each
// coordinate equal to some skyline point's coordinate or to the universe.
// A candidate m is in the (closed) complement iff every skyline point s has
// some dimension with m_i ≤ s_i. Exponential in d; intended for low
// dimensions and as the test oracle for the 2-d fast path.
func StaircaseCornersGrid(tr []geom.Point, u geom.Point) []geom.Point {
	out, _ := staircaseCornersGrid(tr, u, nil)
	return out
}

// staircaseCornersGrid is StaircaseCornersGrid with a cooperative
// cancellation poll: the candidate grid is exponential in d, so the odometer
// enumeration and the maximal-corner filter poll between iterations.
func staircaseCornersGrid(tr []geom.Point, u geom.Point, poll func() error) ([]geom.Point, error) {
	sky := minimalPoints(tr)
	if len(sky) == 0 {
		return []geom.Point{u.Clone()}, nil
	}
	d := len(u)
	axes := make([][]float64, d)
	for i := 0; i < d; i++ {
		vals := map[float64]bool{u[i]: true}
		for _, s := range sky {
			vals[s[i]] = true
		}
		for v := range vals {
			axes[i] = append(axes[i], v)
		}
		sort.Float64s(axes[i])
	}
	var valid []geom.Point
	idx := make([]int, d)
	for {
		if err := pollErr(poll); err != nil {
			return nil, err
		}
		m := make(geom.Point, d)
		for i := range idx {
			m[i] = axes[i][idx[i]]
		}
		ok := true
		for _, s := range sky {
			blocked := true
			for i := range m {
				if m[i] <= s[i] {
					blocked = false
					break
				}
			}
			if blocked {
				ok = false
				break
			}
		}
		if ok {
			valid = append(valid, m)
		}
		// Advance the odometer.
		i := 0
		for ; i < d; i++ {
			idx[i]++
			if idx[i] < len(axes[i]) {
				break
			}
			idx[i] = 0
		}
		if i == d {
			break
		}
	}
	return maximalPoints(valid, poll)
}

// minimalPoints filters pts to those not strictly dominated by another
// (the skyline under min-preference), deduplicating equal points.
func minimalPoints(pts []geom.Point) []geom.Point {
	var out []geom.Point
	for _, p := range pts {
		dominated := false
		for _, q := range pts {
			if q.Dominates(p) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		dup := false
		for _, kept := range out {
			if kept.Equal(p) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

// maximalPoints filters pts to those not weakly dominated from above by
// another point (m is dropped when some other m' ≥ m componentwise),
// deduplicating equal points. The quadratic scan polls for cancellation when
// poll is non-nil (grid enumeration can feed it millions of candidates).
func maximalPoints(pts []geom.Point, poll func() error) ([]geom.Point, error) {
	var out []geom.Point
	for i, p := range pts {
		if err := pollErr(poll); err != nil {
			return nil, err
		}
		covered := false
		for j, q := range pts {
			if err := pollErr(poll); err != nil {
				return nil, err
			}
			if i == j {
				continue
			}
			if p.WeaklyDominates(q) && !q.Equal(p) { // q ≥ p, q ≠ p
				covered = true
				break
			}
			if q.Equal(p) && j < i { // duplicate: keep first occurrence
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, p)
		}
	}
	return out, nil
}

// AntiDDR builds the anti-dominance region of centre c as a union of
// original-space rectangles [c − m, c + m], one per staircase corner m of the
// transformed complement of the dominance boxes of dsl (the dynamic skyline
// of c, given in original coordinates). universe is the bounding rectangle of
// the product set; the transformed universe bound is the farthest
// per-dimension absolute distance from c to it, matching the paper's
// "maximum value appearing in the i-th dimension" extension. Rectangles are
// symmetric around c and may extend beyond the data range, exactly as in the
// paper's worked example for c7.
func AntiDDR(c geom.Point, dsl []geom.Point, universe geom.Rect) Set {
	out, _ := AntiDDRChecked(c, dsl, universe, nil)
	return out
}

// AntiDDRChecked is AntiDDR with a cooperative-cancellation poll threaded
// into the grid staircase construction (exponential in d) and the final
// prune. A nil poll restores the unpolled loops.
func AntiDDRChecked(c geom.Point, dsl []geom.Point, universe geom.Rect, poll func() error) (Set, error) {
	u := universe.TransformMinMax(c).Hi
	tr := make([]geom.Point, len(dsl))
	for i, p := range dsl {
		tr[i] = p.Transform(c)
	}
	var corners []geom.Point
	if len(c) == 2 {
		corners = StaircaseCorners2D(tr, u)
	} else {
		var err error
		corners, err = staircaseCornersGrid(tr, u, poll)
		if err != nil {
			return nil, err
		}
	}
	out := make(Set, 0, len(corners))
	for _, m := range corners {
		out = append(out, geom.Rect{Lo: c.Sub(m), Hi: c.Add(m)})
	}
	return out.prune(poll)
}

// AntiDDRFromCorners builds the original-space anti-DDR rectangles from
// precomputed transformed corners (used by the approximate safe region,
// where corners come from sampled skyline points without pair merging).
func AntiDDRFromCorners(c geom.Point, corners []geom.Point) Set {
	out := make(Set, 0, len(corners))
	for _, m := range corners {
		out = append(out, geom.Rect{Lo: c.Sub(m), Hi: c.Add(m)})
	}
	return out.Prune()
}

// ApproxAntiDDRCorners derives the transformed corners of the approximate
// anti-DDR of §VI.B.1 from the k-sampled dynamic skyline: each sampled point
// is kept as a corner verbatim (no successive-pair merging), and the first
// and last points of the sorted sequence are extended to the universe bound
// in their free dimension so that the extreme rectangles survive (Fig. 16).
// The result underestimates the true anti-DDR, never overestimates it.
func ApproxAntiDDRCorners(c geom.Point, sampled []geom.Point, u geom.Point, sortDim int) []geom.Point {
	if len(sampled) == 0 {
		return []geom.Point{u.Clone()}
	}
	tr := make([]geom.Point, len(sampled))
	for i, p := range sampled {
		tr[i] = p.Transform(c)
	}
	sort.Slice(tr, func(i, j int) bool { return tr[i][sortDim] < tr[j][sortDim] })
	corners := make([]geom.Point, 0, len(tr)+2)
	// Extend the sequence extremes to the universe (2-d semantics from the
	// paper; in higher dimensions only the sort dimension and its complement
	// via the last point's free dimensions are extended).
	first := tr[0].Clone()
	for i := range first {
		if i != sortDim {
			first[i] = u[i]
		}
	}
	first[sortDim] = tr[0][sortDim]
	corners = append(corners, first)
	corners = append(corners, tr...)
	last := tr[len(tr)-1].Clone()
	last[sortDim] = u[sortDim]
	corners = append(corners, last)
	out, _ := maximalPoints(corners, nil)
	return out
}
