package region

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func rect(x1, y1, x2, y2 float64) geom.Rect {
	return geom.NewRect(geom.NewPoint(x1, y1), geom.NewPoint(x2, y2))
}

func TestSetContains(t *testing.T) {
	s := Set{rect(0, 0, 2, 2), rect(5, 5, 7, 7)}
	if !s.Contains(geom.NewPoint(1, 1)) || !s.Contains(geom.NewPoint(6, 6)) {
		t.Error("points in member rects must be contained")
	}
	if s.Contains(geom.NewPoint(3, 3)) {
		t.Error("gap point must not be contained")
	}
	if Set(nil).Contains(geom.NewPoint(0, 0)) {
		t.Error("empty set contains nothing")
	}
}

func TestPrune(t *testing.T) {
	s := Set{rect(0, 0, 10, 10), rect(1, 1, 5, 5), rect(20, 20, 30, 30), rect(0, 0, 10, 10)}
	p := s.Prune()
	if len(p) != 2 {
		t.Fatalf("Prune kept %d rects, want 2: %v", len(p), p)
	}
	if !Equivalent(s, p) {
		t.Fatal("pruning must preserve the region")
	}
}

func TestIntersectSet(t *testing.T) {
	a := Set{rect(0, 0, 4, 4), rect(6, 0, 10, 4)}
	b := Set{rect(2, 2, 8, 8)}
	got := a.IntersectSet(b)
	want := Set{rect(2, 2, 4, 4), rect(6, 2, 8, 4)}
	if !Equivalent(got, want) {
		t.Fatalf("IntersectSet = %v, want %v", got, want)
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps must agree with non-empty intersection")
	}
	far := Set{rect(100, 100, 101, 101)}
	if len(a.IntersectSet(far)) != 0 || a.Overlaps(far) {
		t.Error("disjoint sets must not intersect")
	}
}

func TestAreaBasics(t *testing.T) {
	cases := []struct {
		s    Set
		want float64
	}{
		{nil, 0},
		{Set{rect(0, 0, 2, 3)}, 6},
		{Set{rect(0, 0, 2, 2), rect(4, 4, 6, 6)}, 8},  // disjoint
		{Set{rect(0, 0, 4, 4), rect(2, 2, 6, 6)}, 28}, // overlap 4
		{Set{rect(0, 0, 4, 4), rect(1, 1, 2, 2)}, 16}, // contained
		{Set{rect(0, 0, 4, 4), rect(4, 0, 8, 4)}, 32}, // touching
		{Set{rect(0, 0, 4, 4), rect(0, 0, 4, 4)}, 16}, // duplicate
		{Set{rect(0, 0, 0, 5), rect(3, 3, 3, 9)}, 0},  // degenerate
	}
	for i, c := range cases {
		if got := c.s.Area(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: Area = %v, want %v", i, got, c.want)
		}
	}
}

func TestArea3D(t *testing.T) {
	a := geom.NewRect(geom.NewPoint(0, 0, 0), geom.NewPoint(2, 2, 2))
	b := geom.NewRect(geom.NewPoint(1, 1, 1), geom.NewPoint(3, 3, 3))
	s := Set{a, b}
	if got := s.Area(); math.Abs(got-15) > 1e-12 { // 8+8-1
		t.Fatalf("3-d union volume = %v, want 15", got)
	}
}

// Property: union area vs Monte Carlo estimate on random rect sets.
func TestAreaMonteCarloAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		var s Set
		for i := 0; i < 8; i++ {
			x, y := rng.Float64()*8, rng.Float64()*8
			s = append(s, rect(x, y, x+rng.Float64()*4, y+rng.Float64()*4))
		}
		exact := s.Area()
		const n = 200000
		hits := 0
		for i := 0; i < n; i++ {
			p := geom.NewPoint(rng.Float64()*12, rng.Float64()*12)
			if s.Contains(p) {
				hits++
			}
		}
		mc := float64(hits) / n * 144
		if math.Abs(mc-exact) > 0.05*144 {
			t.Fatalf("trial %d: exact %v vs MC %v", trial, exact, mc)
		}
	}
}

func TestNearestPoint(t *testing.T) {
	s := Set{rect(0, 0, 2, 2), rect(10, 10, 12, 12)}
	p, d, ok := s.NearestPoint(geom.NewPoint(3, 1), nil)
	if !ok || !p.Equal(geom.NewPoint(2, 1)) || d != 1 {
		t.Fatalf("NearestPoint = %v d=%v ok=%v", p, d, ok)
	}
	// Inside a rect: distance zero, point itself.
	p, d, _ = s.NearestPoint(geom.NewPoint(11, 11), nil)
	if !p.Equal(geom.NewPoint(11, 11)) || d != 0 {
		t.Fatalf("inside NearestPoint = %v d=%v", p, d)
	}
	if _, _, ok := Set(nil).NearestPoint(geom.NewPoint(0, 0), nil); ok {
		t.Fatal("empty set has no nearest point")
	}
	// Weighted: heavy x-weight flips the winner.
	s2 := Set{rect(4, 0, 5, 1), rect(0, 4, 1, 5)}
	q := geom.NewPoint(0, 0)
	p, _, _ = s2.NearestPoint(q, []float64{10, 1})
	if !p.Equal(geom.NewPoint(0, 4)) {
		t.Fatalf("weighted NearestPoint = %v, want (0, 4)", p)
	}
}

func TestCorners(t *testing.T) {
	s := Set{rect(0, 0, 1, 1), rect(1, 1, 2, 2)}
	cs := s.Corners()
	if len(cs) != 7 { // 4 + 4 − shared (1,1)
		t.Fatalf("Corners returned %d points, want 7: %v", len(cs), cs)
	}
}

func TestStaircase2DSimple(t *testing.T) {
	// Two skyline points a=(1,5), b=(3,2), universe (10,10).
	tr := []geom.Point{geom.NewPoint(1, 5), geom.NewPoint(3, 2)}
	u := geom.NewPoint(10, 10)
	corners := StaircaseCorners2D(tr, u)
	want := map[string]bool{"(1, 10)": true, "(3, 5)": true, "(10, 2)": true}
	if len(corners) != 3 {
		t.Fatalf("corners = %v, want 3", corners)
	}
	for _, c := range corners {
		if !want[c.String()] {
			t.Fatalf("unexpected corner %v", c)
		}
	}
}

func TestStaircaseEmptySkyline(t *testing.T) {
	u := geom.NewPoint(7, 9)
	for _, corners := range [][]geom.Point{
		StaircaseCorners2D(nil, u),
		StaircaseCornersGrid(nil, u),
	} {
		if len(corners) != 1 || !corners[0].Equal(u) {
			t.Fatalf("empty skyline corners = %v, want [%v]", corners, u)
		}
	}
}

func TestStaircaseFiltersDominated(t *testing.T) {
	// (2,2) is dominated by (1,1); only (1,1) shapes the staircase.
	tr := []geom.Point{geom.NewPoint(1, 1), geom.NewPoint(2, 2)}
	u := geom.NewPoint(5, 5)
	corners := StaircaseCorners2D(tr, u)
	if len(corners) != 2 {
		t.Fatalf("corners = %v, want 2", corners)
	}
}

func TestStaircase2DMatchesGridRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		tr := make([]geom.Point, n)
		for i := range tr {
			tr[i] = geom.NewPoint(rng.Float64()*10, rng.Float64()*10)
		}
		u := geom.NewPoint(12, 12)
		fast := cornersToSet(StaircaseCorners2D(tr, u))
		grid := cornersToSet(StaircaseCornersGrid(tr, u))
		if !Equivalent(fast, grid) {
			t.Fatalf("trial %d: 2-d staircase %v != grid %v (points %v)", trial, fast, grid, tr)
		}
	}
}

func cornersToSet(corners []geom.Point) Set {
	var s Set
	origin := make(geom.Point, len(corners[0]))
	for _, m := range corners {
		s = append(s, geom.NewRect(origin, m))
	}
	return s
}

// Property: the staircase region contains exactly the points of the universe
// not strictly dominated by any skyline point (up to the closed boundary).
func TestStaircaseMembershipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		tr := make([]geom.Point, n)
		for i := range tr {
			tr[i] = geom.NewPoint(1+rng.Float64()*8, 1+rng.Float64()*8)
		}
		u := geom.NewPoint(10, 10)
		s := cornersToSet(StaircaseCorners2D(tr, u))
		for probe := 0; probe < 200; probe++ {
			p := geom.NewPoint(rng.Float64()*10, rng.Float64()*10)
			dominated := false
			weaklyDominated := false
			for _, sk := range tr {
				if sk.Dominates(p) {
					dominated = true
				}
				if sk.WeaklyDominates(p) {
					weaklyDominated = true
				}
			}
			in := s.Contains(p)
			if !weaklyDominated && !in {
				t.Fatalf("trial %d: undominated point %v outside staircase", trial, p)
			}
			if dominated && in {
				// Allowed only on the measure-zero closed boundary: the point
				// must sit on a corner boundary.
				onBoundary := false
				for _, r := range s {
					if r.Contains(p) && !r.ContainsStrict(p) {
						onBoundary = true
						break
					}
				}
				if !onBoundary {
					t.Fatalf("trial %d: dominated interior point %v inside staircase", trial, p)
				}
			}
		}
	}
}

func TestStaircaseGrid3D(t *testing.T) {
	tr := []geom.Point{
		geom.NewPoint(1, 5, 5),
		geom.NewPoint(5, 1, 5),
		geom.NewPoint(5, 5, 1),
	}
	u := geom.NewPoint(10, 10, 10)
	corners := StaircaseCornersGrid(tr, u)
	s := cornersToSet(corners)
	rng := rand.New(rand.NewSource(29))
	for probe := 0; probe < 500; probe++ {
		p := geom.NewPoint(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		dominated := false
		for _, sk := range tr {
			if sk.Dominates(p) {
				dominated = true
				break
			}
		}
		if dominated == s.Contains(p) {
			// Tolerate closed-boundary coincidences only.
			weak := false
			for _, sk := range tr {
				if sk.WeaklyDominates(p) && !sk.Equal(p) {
					weak = true
				}
			}
			if dominated && s.Contains(p) && !weak {
				t.Fatalf("3-d staircase misclassifies %v", p)
			}
			if !dominated && !s.Contains(p) {
				t.Fatalf("3-d staircase misses undominated %v", p)
			}
		}
	}
}

// Paper §V.B worked example: the anti-DDR of c7 = (26, 70) over the Fig. 1
// products (excluding c7's own record) is the region covered by the four
// rectangles r1..r4 listed in the paper.
func TestAntiDDRPaperC7(t *testing.T) {
	c7 := geom.NewPoint(26, 70)
	products := []geom.Point{
		geom.NewPoint(5, 30), geom.NewPoint(7.5, 42), geom.NewPoint(2.5, 70),
		geom.NewPoint(7.5, 90), geom.NewPoint(24, 20), geom.NewPoint(20, 50),
		geom.NewPoint(16, 80),
	}
	// DSL(c7) computed over those products: {p3, p5, p6, p8} (transformed
	// staircase (23.5,0),(2,50),(6,20),(10,10)).
	dsl := []geom.Point{
		geom.NewPoint(2.5, 70), geom.NewPoint(24, 20),
		geom.NewPoint(20, 50), geom.NewPoint(16, 80),
	}
	universe := geom.MBR(append(products, geom.NewPoint(26, 70)))
	got := AntiDDR(c7, dsl, universe)
	want := Set{
		rect(2.5, 60, 49.5, 80),
		rect(16, 50, 36, 90),
		rect(20, 20, 32, 120),
		rect(24, 50, 28, 90),
	}
	if !Equivalent(got, want) {
		t.Fatalf("anti-DDR(c7) = %v (area %v), want %v (area %v)",
			got, got.Area(), want, want.Area())
	}
	// q = (8.5, 55) must lie outside anti-DDR(c7): c7 is a why-not point.
	if got.Contains(geom.NewPoint(8.5, 55)) {
		t.Fatal("q must not be inside anti-DDR(c7)")
	}
	// And c7 itself is always inside its own anti-DDR.
	if !got.Contains(c7) {
		t.Fatal("c7 must be inside its own anti-DDR")
	}
}

// Membership property for AntiDDR against the raw definition: a point x is in
// the anti-DDR of c iff no DSL point dynamically dominates x w.r.t. c
// (closed-boundary tolerance).
func TestAntiDDRMembershipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		var products []geom.Point
		for i := 0; i < 60; i++ {
			products = append(products, geom.NewPoint(rng.Float64()*100, rng.Float64()*100))
		}
		c := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
		universe := geom.MBR(products)
		// Brute-force dynamic skyline of c.
		var dsl []geom.Point
		for i, p := range products {
			dominated := false
			for j, o := range products {
				if i != j && geom.DynDominates(c, o, p) {
					dominated = true
					break
				}
			}
			if !dominated {
				dsl = append(dsl, p)
			}
		}
		add := AntiDDR(c, dsl, universe)
		for probe := 0; probe < 200; probe++ {
			x := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
			if !universe.Contains(x) {
				continue
			}
			dominated := false
			for _, s := range dsl {
				if geom.DynDominates(c, s, x) {
					dominated = true
					break
				}
			}
			in := add.Contains(x)
			if !dominated && !in {
				t.Fatalf("trial %d: undominated %v outside anti-DDR of %v", trial, x, c)
			}
			// dominated ∧ in can only happen on the closed boundary, which
			// random probes hit with probability zero; treat as failure.
			if dominated && in {
				t.Fatalf("trial %d: dominated %v inside anti-DDR of %v", trial, x, c)
			}
		}
	}
}

func TestApproxAntiDDRIsSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		var dsl []geom.Point
		for i := 0; i < 12; i++ {
			dsl = append(dsl, geom.NewPoint(rng.Float64()*50, rng.Float64()*50))
		}
		c := geom.NewPoint(50, 50)
		universe := rect(0, 0, 100, 100)
		exact := AntiDDR(c, dsl, universe)
		// Sample 4 of the DSL points plus forced extremes, like §VI.B.1.
		u := universe.TransformMinMax(c).Hi
		sampled := samplePoints(dsl, c, 4)
		corners := ApproxAntiDDRCorners(c, sampled, u, 0)
		approx := AntiDDRFromCorners(c, corners)
		// Subset check: approx ∩ exact must equal approx (by measure).
		inter := approx.IntersectSet(exact)
		if math.Abs(inter.Area()-approx.Area()) > 1e-6*(1+approx.Area()) {
			t.Fatalf("trial %d: approx anti-DDR not a subset (approx %v, inter %v)",
				trial, approx.Area(), inter.Area())
		}
	}
}

// samplePoints mimics the k-sampling: sort the transformed skyline of dsl by
// dim 0, keep every ⌈n/k⌉-th plus the last.
func samplePoints(dsl []geom.Point, c geom.Point, k int) []geom.Point {
	sky := minimalPoints(transformAll(dsl, c))
	// Back-map: sampling operates on original points; reuse order of sky.
	// For the test it is enough to pick original points whose transforms are
	// in sky, in sorted order.
	var origs []geom.Point
	for _, s := range sky {
		for _, p := range dsl {
			if p.Transform(c).Equal(s) {
				origs = append(origs, p)
				break
			}
		}
	}
	step := (len(origs) + k - 1) / k
	if step < 1 {
		step = 1
	}
	var out []geom.Point
	for i := 0; i < len(origs); i += step {
		out = append(out, origs[i])
	}
	out = append(out, origs[len(origs)-1])
	return out
}

func transformAll(pts []geom.Point, c geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = p.Transform(c)
	}
	return out
}

func TestEquivalent(t *testing.T) {
	a := Set{rect(0, 0, 4, 4)}
	b := Set{rect(0, 0, 2, 4), rect(2, 0, 4, 4)} // same region, split
	if !Equivalent(a, b) {
		t.Error("split representation must be equivalent")
	}
	c := Set{rect(0, 0, 4, 4.0001)}
	if Equivalent(a, c) {
		t.Error("different regions must not be equivalent")
	}
	// Equal area, different place.
	d := Set{rect(10, 10, 14, 14)}
	if Equivalent(a, d) {
		t.Error("same-area disjoint regions must not be equivalent")
	}
}

func TestIsEmptyAndIntersectRect(t *testing.T) {
	if !(Set{}).IsEmpty() || (Set{rect(0, 0, 1, 1)}).IsEmpty() {
		t.Fatal("IsEmpty basics")
	}
	s := Set{rect(0, 0, 4, 4), rect(6, 6, 9, 9)}
	got := s.IntersectRect(rect(3, 3, 7, 7))
	want := Set{rect(3, 3, 4, 4), rect(6, 6, 7, 7)}
	if !Equivalent(got, want) {
		t.Fatalf("IntersectRect = %v", got)
	}
}

func TestInteriorNudge(t *testing.T) {
	s := Set{rect(0, 0, 10, 10), rect(20, 20, 21, 21)}
	// A corner point moves strictly inside the containing rect.
	p := geom.NewPoint(0, 0)
	n := s.InteriorNudge(p, 0.1)
	if !s[0].ContainsStrict(n) {
		t.Fatalf("nudged point %v not strictly inside", n)
	}
	// The larger containing rect wins when several contain p.
	overlap := Set{rect(0, 0, 2, 2), rect(0, 0, 10, 10)}
	n2 := overlap.InteriorNudge(geom.NewPoint(0, 0), 0.5)
	if !n2.ApproxEqual(geom.NewPoint(2.5, 2.5), 1e-9) {
		t.Fatalf("nudge toward larger rect centre = %v", n2)
	}
	// Degenerate-only containment returns the point unchanged.
	line := Set{geom.NewRect(geom.NewPoint(5, 0), geom.NewPoint(5, 9))}
	if got := line.InteriorNudge(geom.NewPoint(5, 3), 0.1); !got.Equal(geom.NewPoint(5, 3)) {
		t.Fatalf("degenerate nudge = %v", got)
	}
	// Points outside every rect come back unchanged.
	if got := s.InteriorNudge(geom.NewPoint(99, 99), 0.1); !got.Equal(geom.NewPoint(99, 99)) {
		t.Fatalf("outside nudge = %v", got)
	}
}
