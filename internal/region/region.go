// Package region implements the rectangle-set algebra behind the paper's
// safe-region machinery (Section V): the anti-dominance region (anti-DDR) of
// a customer represented as a union of rectangles (Fig. 10), intersections of
// such unions (Algorithm 3 and the overlap test of Algorithm 4), point
// membership, nearest points, and the exact union volume used for the
// safe-region-area experiment (Fig. 14).
//
// Anti-DDR geometry: in the space transformed around a customer c (absolute
// per-dimension distances to c), the anti-dominance region is the
// downward-closed complement of the dominance boxes of DSL(c). Any bounded
// downward-closed region is a finite union of origin-anchored boxes [0, m];
// each such box maps back to the original space as the rectangle
// [c − m, c + m]. The maximal corners m form the staircase of Fig. 10.
package region

import (
	"sort"

	"repro/internal/geom"
)

// Set is a union of closed axis-aligned rectangles. The zero value is the
// empty region.
type Set []geom.Rect

// IsEmpty reports whether the set contains no rectangle.
func (s Set) IsEmpty() bool { return len(s) == 0 }

// Contains reports whether p lies in the union.
func (s Set) Contains(p geom.Point) bool {
	for _, r := range s {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for i, r := range s {
		out[i] = r.Clone()
	}
	return out
}

// Prune removes rectangles fully contained in another rectangle of the set.
// The represented region is unchanged.
func (s Set) Prune() Set {
	out, _ := s.prune(nil)
	return out
}

func (s Set) prune(poll func() error) (Set, error) {
	// Larger rectangles first so that containment checks hit early.
	sorted := s.Clone()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Area() > sorted[j].Area() })
	var out Set
	for _, r := range sorted {
		if err := pollErr(poll); err != nil {
			return nil, err
		}
		contained := false
		for _, kept := range out {
			if err := pollErr(poll); err != nil {
				return nil, err
			}
			if kept.ContainsRect(r) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, r)
		}
	}
	return out, nil
}

// IntersectSet intersects two rectangle unions pairwise (the "+ and ·"
// formula of Section V.B), pruning contained results.
func (s Set) IntersectSet(o Set) Set {
	out, _ := s.intersectSet(o, nil)
	return out
}

// IntersectSetChecked is IntersectSet with a cooperative-cancellation poll.
// The pairwise product and the containment prune are where safe-region
// construction grows combinatorially with |RSL(q)| — a single call can dwarf
// any per-customer checkpoint — so both loops poll between iterations. A nil
// poll is valid and restores the unpolled loops.
func (s Set) IntersectSetChecked(o Set, poll func() error) (Set, error) {
	return s.intersectSet(o, poll)
}

func (s Set) intersectSet(o Set, poll func() error) (Set, error) {
	var out Set
	for _, a := range s {
		for _, b := range o {
			if err := pollErr(poll); err != nil {
				return nil, err
			}
			if r, ok := a.Intersect(b); ok {
				out = append(out, r)
			}
		}
	}
	return out.prune(poll)
}

// pollErr invokes a cancellation poll, treating nil as "never cancelled".
func pollErr(poll func() error) error {
	if poll == nil {
		return nil
	}
	return poll()
}

// IntersectRect clips the set against a single rectangle.
func (s Set) IntersectRect(r geom.Rect) Set {
	return s.IntersectSet(Set{r})
}

// Overlaps reports whether the two unions share at least one point.
func (s Set) Overlaps(o Set) bool {
	for _, a := range s {
		for _, b := range o {
			if a.Intersects(b) {
				return true
			}
		}
	}
	return false
}

// NearestPoint returns the point of the union nearest to p under weighted L1
// distance (nil weights mean equal), together with that distance. ok is false
// on an empty set. This implements the nearest_point step of Algorithm 4.
func (s Set) NearestPoint(p geom.Point, w []float64) (geom.Point, float64, bool) {
	if len(s) == 0 {
		return nil, 0, false
	}
	var best geom.Point
	bestD := 0.0
	for i, r := range s {
		n := r.NearestPoint(p)
		d := n.WeightedL1(p, weightsOrEqual(w, len(p)))
		if i == 0 || d < bestD {
			best, bestD = n, d
		}
	}
	return best, bestD, true
}

func weightsOrEqual(w []float64, d int) []float64 {
	if w != nil {
		return w
	}
	eq := make([]float64, d)
	for i := range eq {
		eq[i] = 1
	}
	return eq
}

// InteriorNudge moves p a relative distance eps toward the centre of a
// rectangle of the set containing p, yielding a strictly interior point when
// p lies on the closed boundary of a non-degenerate rectangle. Points of the
// set not contained in any rectangle (which callers should not pass) are
// returned unchanged, as are points of degenerate rectangles.
func (s Set) InteriorNudge(p geom.Point, eps float64) geom.Point {
	var best geom.Rect
	found := false
	for _, r := range s {
		if r.Contains(p) && (!found || r.Area() > best.Area()) {
			best, found = r, true
		}
	}
	if !found || best.Area() == 0 {
		return p.Clone()
	}
	c := best.Center()
	out := make(geom.Point, len(p))
	for i := range p {
		out[i] = p[i] + eps*(c[i]-p[i])
	}
	return out
}

// Corners returns the deduplicated corner points of all rectangles in the
// set (Algorithm 4, step 10).
func (s Set) Corners() []geom.Point {
	seen := map[string]bool{}
	var out []geom.Point
	for _, r := range s {
		for _, c := range r.Corners() {
			key := c.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// Area returns the exact d-dimensional volume of the union, computed by
// recursive coordinate compression: slice along dimension 0 at every
// rectangle boundary, recurse on the rectangles covering each slab.
func (s Set) Area() float64 {
	if len(s) == 0 {
		return 0
	}
	return unionVolume(s, 0)
}

func unionVolume(rects Set, dim int) float64 {
	d := rects[0].Dims()
	if dim == d-1 {
		// Base case: 1-d interval union length.
		type iv struct{ lo, hi float64 }
		ivs := make([]iv, 0, len(rects))
		for _, r := range rects {
			if r.Lo[dim] < r.Hi[dim] {
				ivs = append(ivs, iv{r.Lo[dim], r.Hi[dim]})
			}
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
		var total, end float64
		first := true
		for _, v := range ivs {
			if first || v.lo > end {
				total += v.hi - v.lo
				end = v.hi
				first = false
			} else if v.hi > end {
				total += v.hi - end
				end = v.hi
			}
		}
		return total
	}
	// Compress coordinates along dim.
	cutSet := map[float64]bool{}
	for _, r := range rects {
		cutSet[r.Lo[dim]] = true
		cutSet[r.Hi[dim]] = true
	}
	cuts := make([]float64, 0, len(cutSet))
	for v := range cutSet {
		cuts = append(cuts, v)
	}
	sort.Float64s(cuts)
	var total float64
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if hi <= lo {
			continue
		}
		var slab Set
		for _, r := range rects {
			if r.Lo[dim] <= lo && r.Hi[dim] >= hi {
				slab = append(slab, r)
			}
		}
		if len(slab) > 0 {
			total += (hi - lo) * unionVolume(slab, dim+1)
		}
	}
	return total
}

// Equivalent reports whether two sets cover regions of equal measure with an
// equal-measure intersection, i.e. they differ at most on a null set. This is
// the right notion for comparing alternative anti-DDR representations, whose
// rectangle lists may differ while describing the same region.
func Equivalent(a, b Set) bool {
	const eps = 1e-9
	aa, ab := a.Area(), b.Area()
	if diff := aa - ab; diff > eps || diff < -eps {
		return false
	}
	ai := a.IntersectSet(b).Area()
	return abs(ai-aa) <= eps*(1+abs(aa))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
