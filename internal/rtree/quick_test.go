package rtree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// ops is a random sequence of insert/delete operations plus query probes.
type ops struct {
	Coords [][2]float64
	Dels   []byte // delete item i%len after inserting when Dels[i] odd
}

func (ops) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 5 + r.Intn(120)
	o := ops{Coords: make([][2]float64, n), Dels: make([]byte, n)}
	for i := range o.Coords {
		o.Coords[i] = [2]float64{r.Float64() * 100, r.Float64() * 100}
		o.Dels[i] = byte(r.Intn(4))
	}
	return reflect.ValueOf(o)
}

// The tree agrees with a naive map through any insert/delete interleaving.
func TestQuickTreeMatchesNaive(t *testing.T) {
	f := func(o ops) bool {
		tr := New(2, Config{MaxEntries: 6, MinEntries: 2})
		live := map[int]Item{}
		for i, c := range o.Coords {
			it := Item{ID: i, Point: geom.NewPoint(c[0], c[1])}
			tr.Insert(it)
			live[i] = it
			if o.Dels[i]%2 == 1 && len(live) > 1 {
				// Delete some earlier item.
				for id, victim := range live {
					if !tr.Delete(victim) {
						return false
					}
					delete(live, id)
					break
				}
			}
		}
		if tr.Len() != len(live) {
			return false
		}
		if err := tr.checkInvariants(); err != nil {
			return false
		}
		// Full-range query returns exactly the live set.
		got := map[int]bool{}
		tr.All(func(it Item) bool { got[it.ID] = true; return true })
		if len(got) != len(live) {
			return false
		}
		for id := range live {
			if !got[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Range queries agree with brute force for random windows.
func TestQuickRangeAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(o ops) bool {
		items := make([]Item, len(o.Coords))
		for i, c := range o.Coords {
			items[i] = Item{ID: i, Point: geom.NewPoint(c[0], c[1])}
		}
		tr := BulkLoad(2, items, Config{MaxEntries: 8})
		for probe := 0; probe < 5; probe++ {
			a := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
			b := geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
			q := geom.NewRect(a, b)
			want := map[int]bool{}
			for _, it := range items {
				if q.Contains(it.Point) {
					want[it.ID] = true
				}
			}
			got := tr.RangeQuery(q)
			if len(got) != len(want) {
				return false
			}
			for _, it := range got {
				if !want[it.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Best-first emission order is monotone in the key for arbitrary data.
func TestQuickBestFirstMonotone(t *testing.T) {
	f := func(o ops) bool {
		items := make([]Item, len(o.Coords))
		for i, c := range o.Coords {
			items[i] = Item{ID: i, Point: geom.NewPoint(c[0], c[1])}
		}
		tr := BulkLoad(2, items, Config{MaxEntries: 5})
		origin := geom.NewPoint(50, 50)
		prev := -1.0
		count := 0
		ok := true
		tr.BestFirst(
			func(p geom.Point) float64 { return origin.L1(p) },
			func(r geom.Rect) float64 { return r.MinDistL1(origin) },
			nil,
			func(_ Item, key float64) bool {
				if key < prev-1e-12 {
					ok = false
					return false
				}
				prev = key
				count++
				return true
			},
		)
		return ok && count == len(items)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
