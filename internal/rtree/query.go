package rtree

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/cancel"
	"repro/internal/geom"
)

// Search invokes fn for every item whose point lies in the closed query
// rectangle. Traversal stops early if fn returns false.
func (t *Tree) Search(query geom.Rect, fn func(Item) bool) {
	t.search(t.root, query, fn, nil)
}

// SearchChecked is Search with cooperative cancellation: the checker is
// consulted once per visited node and the traversal aborts as soon as it
// reports cancellation, which is then returned. A nil checker degrades to
// plain Search.
func (t *Tree) SearchChecked(chk *cancel.Checker, query geom.Rect, fn func(Item) bool) error {
	if err := chk.Err(); err != nil {
		return err
	}
	t.search(t.root, query, fn, chk)
	return chk.Err()
}

func (t *Tree) search(n *node, query geom.Rect, fn func(Item) bool, chk *cancel.Checker) bool {
	if chk.Point(cancel.SiteRTreeNode) != nil {
		return false
	}
	t.recordAccess(n.level)
	for _, e := range n.entries {
		if !query.Intersects(e.rect) {
			continue
		}
		if n.leaf {
			if !fn(e.item) {
				return false
			}
		} else if !t.search(e.child, query, fn, chk) {
			return false
		}
	}
	return true
}

// RangeQuery collects all items inside the closed query rectangle.
func (t *Tree) RangeQuery(query geom.Rect) []Item {
	var out []Item
	t.Search(query, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// Exists reports whether any item inside the closed query rectangle satisfies
// pred, short-circuiting the traversal at the first hit. A nil pred matches
// every item. This is the existence-only window query used to verify reverse
// skyline membership.
func (t *Tree) Exists(query geom.Rect, pred func(Item) bool) bool {
	found, _ := t.ExistsChecked(nil, query, pred)
	return found
}

// ExistsChecked is Exists with cooperative cancellation. When the traversal
// is cancelled before a witness is found, found is false and the context's
// error is returned.
func (t *Tree) ExistsChecked(chk *cancel.Checker, query geom.Rect, pred func(Item) bool) (bool, error) {
	found := false
	err := t.SearchChecked(chk, query, func(it Item) bool {
		if pred == nil || pred(it) {
			found = true
			return false
		}
		return true
	})
	return found, err
}

// Count returns the number of items inside the closed query rectangle.
func (t *Tree) Count(query geom.Rect) int {
	n := 0
	t.Search(query, func(Item) bool { n++; return true })
	return n
}

// All invokes fn for every stored item.
func (t *Tree) All(fn func(Item) bool) {
	if t.size == 0 {
		return
	}
	t.search(t.root, t.root.mbr(), fn, nil)
}

// Items returns all stored items.
func (t *Tree) Items() []Item {
	out := make([]Item, 0, t.size)
	t.All(func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// ---- best-first (branch-and-bound) traversal -------------------------------

// pqEntry is a heap element: either an internal node or a concrete item.
type pqEntry struct {
	key  float64
	node *node
	item Item
	leaf bool
}

type pq []pqEntry

func (h pq) Len() int            { return len(h) }
func (h pq) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h pq) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x interface{}) { *h = append(*h, x.(pqEntry)) }
func (h *pq) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BestFirst yields items in non-decreasing order of key, where itemKey scores
// a point and rectKey must lower-bound itemKey over every point inside the
// rectangle. prune, when non-nil, is consulted before expanding a node or
// emitting an item; returning true skips the subtree/item (the BBS dominance
// pruning hook). Iteration stops when fn returns false.
func (t *Tree) BestFirst(
	itemKey func(geom.Point) float64,
	rectKey func(geom.Rect) float64,
	prune func(rect geom.Rect) bool,
	fn func(Item, float64) bool,
) {
	t.bestFirst(nil, itemKey, rectKey, prune, fn)
}

// BestFirstChecked is BestFirst with cooperative cancellation: the checker is
// consulted once per heap pop (node or item expansion) and the traversal
// aborts, returning the context's error, as soon as it fires.
func (t *Tree) BestFirstChecked(
	chk *cancel.Checker,
	itemKey func(geom.Point) float64,
	rectKey func(geom.Rect) float64,
	prune func(rect geom.Rect) bool,
	fn func(Item, float64) bool,
) error {
	if err := chk.Err(); err != nil {
		return err
	}
	t.bestFirst(chk, itemKey, rectKey, prune, fn)
	return chk.Err()
}

func (t *Tree) bestFirst(
	chk *cancel.Checker,
	itemKey func(geom.Point) float64,
	rectKey func(geom.Rect) float64,
	prune func(rect geom.Rect) bool,
	fn func(Item, float64) bool,
) {
	if t.size == 0 {
		return
	}
	h := &pq{}
	heap.Push(h, pqEntry{key: rectKey(t.root.mbr()), node: t.root})
	for h.Len() > 0 {
		if chk.Point(cancel.SiteRTreeNode) != nil {
			return
		}
		e := heap.Pop(h).(pqEntry)
		if e.node != nil {
			t.recordAccess(e.node.level)
		}
		if e.leaf {
			if prune != nil && prune(geom.PointRect(e.item.Point)) {
				t.pruned.Add(1)
				continue
			}
			if !fn(e.item, e.key) {
				return
			}
			continue
		}
		if prune != nil && prune(e.node.mbr()) {
			t.pruned.Add(1)
			continue
		}
		prunedHere := int64(0)
		for _, ne := range e.node.entries {
			if e.node.leaf {
				if prune != nil && prune(ne.rect) {
					prunedHere++
					continue
				}
				heap.Push(h, pqEntry{key: itemKey(ne.item.Point), item: ne.item, leaf: true})
			} else {
				if prune != nil && prune(ne.rect) {
					prunedHere++
					continue
				}
				heap.Push(h, pqEntry{key: rectKey(ne.rect), node: ne.child})
			}
		}
		if prunedHere > 0 {
			t.pruned.Add(prunedHere)
		}
	}
}

// GuidedSearch is a depth-first traversal restricted to subtrees
// intersecting query, visiting children in ascending order(rect) and
// consulting prune before each descent (prune sees the child MBR; returning
// true skips it). Unlike BestFirst it keeps no global heap — the ordering is
// only per-node — which makes it the cheap engine for window-local
// branch-and-bound where any collected witness prunes soundly regardless of
// global visit order. Traversal stops when fn returns false.
func (t *Tree) GuidedSearch(
	query geom.Rect,
	order func(geom.Rect) float64,
	prune func(geom.Rect) bool,
	fn func(Item) bool,
) {
	if t.size == 0 {
		return
	}
	t.guidedSearch(t.root, query, order, prune, fn, nil)
}

// GuidedSearchChecked is GuidedSearch with cooperative cancellation at
// node-visit granularity.
func (t *Tree) GuidedSearchChecked(
	chk *cancel.Checker,
	query geom.Rect,
	order func(geom.Rect) float64,
	prune func(geom.Rect) bool,
	fn func(Item) bool,
) error {
	if err := chk.Err(); err != nil {
		return err
	}
	if t.size > 0 {
		t.guidedSearch(t.root, query, order, prune, fn, chk)
	}
	return chk.Err()
}

func (t *Tree) guidedSearch(
	n *node,
	query geom.Rect,
	order func(geom.Rect) float64,
	prune func(geom.Rect) bool,
	fn func(Item) bool,
	chk *cancel.Checker,
) bool {
	if chk.Point(cancel.SiteRTreeNode) != nil {
		return false
	}
	t.recordAccess(n.level)
	if n.leaf {
		for _, e := range n.entries {
			if !query.Intersects(e.rect) {
				continue
			}
			if !fn(e.item) {
				return false
			}
		}
		return true
	}
	type childRef struct {
		key float64
		idx int
	}
	refs := make([]childRef, 0, len(n.entries))
	for i, e := range n.entries {
		if !query.Intersects(e.rect) {
			continue
		}
		refs = append(refs, childRef{key: order(e.rect), idx: i})
	}
	sort.Slice(refs, func(a, b int) bool { return refs[a].key < refs[b].key })
	prunedHere := int64(0)
	for _, r := range refs {
		e := n.entries[r.idx]
		if prune != nil && prune(e.rect) {
			prunedHere++
			continue
		}
		if !t.guidedSearch(e.child, query, order, prune, fn, chk) {
			if prunedHere > 0 {
				t.pruned.Add(prunedHere)
			}
			return false
		}
	}
	if prunedHere > 0 {
		t.pruned.Add(prunedHere)
	}
	return true
}

// NearestNeighbors returns the k items nearest to p by Euclidean distance,
// nearest first. Fewer than k items are returned when the tree is smaller.
func (t *Tree) NearestNeighbors(k int, p geom.Point) []Item {
	out := make([]Item, 0, k)
	t.BestFirst(
		func(x geom.Point) float64 { return p.L2(x) },
		func(r geom.Rect) float64 { return r.MinDistL2(p) },
		nil,
		func(it Item, _ float64) bool {
			out = append(out, it)
			return len(out) < k
		},
	)
	return out
}

// NearestNeighbor returns the single nearest item; ok is false when empty.
func (t *Tree) NearestNeighbor(p geom.Point) (Item, bool) {
	nn := t.NearestNeighbors(1, p)
	if len(nn) == 0 {
		return Item{}, false
	}
	return nn[0], true
}

// MinKeyItem returns the stored item minimising itemKey, using rectKey as the
// lower bound for pruning; ok is false when the tree is empty.
func (t *Tree) MinKeyItem(itemKey func(geom.Point) float64, rectKey func(geom.Rect) float64) (Item, bool) {
	var best Item
	bestKey := math.Inf(1)
	found := false
	t.BestFirst(itemKey, rectKey, nil, func(it Item, key float64) bool {
		best, bestKey, found = it, key, true
		_ = bestKey
		return false
	})
	return best, found
}
