package rtree

// Stats summarises the tree's structure: useful for validating the
// page-size-derived fanout against the paper's setup and for diagnosing
// degradation after heavy churn.
type Stats struct {
	Items         int
	Height        int
	Nodes         int
	LeafNodes     int
	InternalNodes int
	MaxEntries    int
	MinEntries    int
	// AvgLeafFill is the mean leaf occupancy relative to MaxEntries.
	AvgLeafFill float64
	// AvgInternalFill is the mean internal-node occupancy.
	AvgInternalFill float64
	// OverlapArea is the summed pairwise overlap of sibling MBRs across all
	// internal nodes — the quantity the R* split minimises.
	OverlapArea float64
}

// Stats walks the tree and returns structural statistics.
func (t *Tree) Stats() Stats {
	s := Stats{
		Items:      t.size,
		Height:     t.height,
		MaxEntries: t.cfg.MaxEntries,
		MinEntries: t.cfg.MinEntries,
	}
	if t.size == 0 {
		return s
	}
	var leafSlots, leafUsed, intSlots, intUsed int
	var walk func(n *node)
	walk = func(n *node) {
		s.Nodes++
		if n.leaf {
			s.LeafNodes++
			leafSlots += t.cfg.MaxEntries
			leafUsed += len(n.entries)
			return
		}
		s.InternalNodes++
		intSlots += t.cfg.MaxEntries
		intUsed += len(n.entries)
		for i := range n.entries {
			for j := i + 1; j < len(n.entries); j++ {
				s.OverlapArea += n.entries[i].rect.OverlapArea(n.entries[j].rect)
			}
		}
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	if leafSlots > 0 {
		s.AvgLeafFill = float64(leafUsed) / float64(leafSlots)
	}
	if intSlots > 0 {
		s.AvgInternalFill = float64(intUsed) / float64(intSlots)
	}
	return s
}
