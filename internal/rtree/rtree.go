// Package rtree implements an in-memory R*-tree (Beckmann, Kriegel, Schneider,
// Seeger, SIGMOD 1990) over d-dimensional points, the index structure the
// paper uses for every dataset ("Each dataset is indexed by an R-tree, where
// the page size is set to 1536 bytes", §VI).
//
// The tree supports insertion with R* choose-subtree, forced reinsertion and
// topological split, deletion with condensing, sort-tile-recursive bulk
// loading, window (range) queries, early-exit existence queries, k-nearest
// neighbour search and a best-first branch-and-bound iterator used by the BBS
// skyline algorithm.
package rtree

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/geom"
)

// Item is a point payload stored in the tree. ID is caller-assigned and is
// reported back by queries; the tree itself never interprets it.
type Item struct {
	ID    int
	Point geom.Point
}

// Config controls the tree shape.
type Config struct {
	// MaxEntries is the node fanout M. Zero means "derive from PageSize".
	MaxEntries int
	// MinEntries is the minimum fill m (R* recommends 40% of M). Zero means
	// derive as max(2, 40% of MaxEntries).
	MinEntries int
	// PageSize, in bytes, is used to derive MaxEntries when it is zero:
	// an entry is modelled as 2·d float64 rectangle bounds plus an 8-byte
	// pointer/ID, matching the paper's 1536-byte page setup.
	PageSize int
	// Dims is the dimensionality; required when deriving fanout from
	// PageSize.
	Dims int
	// ReinsertFraction is the share of entries force-reinserted on first
	// overflow per level (R* uses 30%). Zero means 0.30.
	ReinsertFraction float64
}

// DefaultPageSize mirrors the paper's experimental setup.
const DefaultPageSize = 1536

// fanout derives M from a page size for d dimensions.
func fanout(pageSize, dims int) int {
	entry := 2*dims*8 + 8
	m := pageSize / entry
	if m < 4 {
		m = 4
	}
	return m
}

func (c Config) withDefaults(dims int) Config {
	if c.Dims == 0 {
		c.Dims = dims
	}
	if c.PageSize == 0 {
		c.PageSize = DefaultPageSize
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = fanout(c.PageSize, c.Dims)
	}
	if c.MinEntries == 0 {
		c.MinEntries = c.MaxEntries * 2 / 5
		if c.MinEntries < 2 {
			c.MinEntries = 2
		}
	}
	if c.ReinsertFraction == 0 {
		c.ReinsertFraction = 0.30
	}
	return c
}

// entry is a slot in a node: either a child node (internal) or an item (leaf).
type entry struct {
	rect  geom.Rect
	child *node // nil at leaves
	item  Item  // valid at leaves
}

type node struct {
	leaf    bool
	level   int // 0 at leaves
	entries []entry
}

func (n *node) mbr() geom.Rect {
	r := n.entries[0].rect.Clone()
	for _, e := range n.entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// Tree is an R*-tree over point items. It is not safe for concurrent
// mutation; concurrent read-only queries are safe.
type Tree struct {
	cfg       Config
	root      *node
	size      int
	height    int
	accesses  atomic.Int64
	leafScans atomic.Int64
	// levelAccesses splits the access count by node level (index 0 = leaves);
	// levels beyond the tracked window fold into the top slot. pruned counts
	// subtree/entry prunes taken by a traversal's prune hook — page reads the
	// branch-and-bound avoided.
	levelAccesses [maxTrackedLevels]atomic.Int64
	pruned        atomic.Int64
}

// New returns an empty tree for dims-dimensional points.
func New(dims int, cfg Config) *Tree {
	cfg = cfg.withDefaults(dims)
	return &Tree{
		cfg:    cfg,
		root:   &node{leaf: true},
		height: 1,
	}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf root).
func (t *Tree) Height() int { return t.height }

// Config returns the effective configuration.
func (t *Tree) Config() Config { return t.cfg }

// Bounds returns the MBR of all stored items; ok is false when empty.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return t.root.mbr(), true
}

// Insert adds an item to the tree.
func (t *Tree) Insert(it Item) {
	e := entry{rect: geom.PointRect(it.Point), item: it}
	reinserted := make(map[int]bool) // levels that already did forced reinsert
	t.insertEntry(e, 0, reinserted)
	t.size++
}

func (t *Tree) insertEntry(e entry, level int, reinserted map[int]bool) {
	leafPath := t.choosePath(e.rect, level)
	n := leafPath[len(leafPath)-1]
	n.entries = append(n.entries, e)
	t.adjustPath(leafPath, e.rect)
	if len(n.entries) > t.cfg.MaxEntries {
		t.overflowTreatment(leafPath, reinserted)
	}
}

// choosePath descends from the root to the node at the given level using the
// R* choose-subtree criterion and returns the root-to-node path.
func (t *Tree) choosePath(r geom.Rect, level int) []*node {
	path := []*node{t.root}
	n := t.root
	for n.level > level {
		best := t.chooseSubtree(n, r)
		n = n.entries[best].child
		path = append(path, n)
	}
	return path
}

// chooseSubtree picks the child index of n best suited to receive rect r.
// For children pointing at leaves R* minimises overlap enlargement; otherwise
// it minimises area enlargement, with area as the tie-breaker.
func (t *Tree) chooseSubtree(n *node, r geom.Rect) int {
	if n.level == 1 {
		// Children are leaves: minimum overlap enlargement.
		best, bestOverlapInc, bestAreaInc, bestArea := -1, math.Inf(1), math.Inf(1), math.Inf(1)
		for i, e := range n.entries {
			enlarged := e.rect.Union(r)
			var before, after float64
			for j, f := range n.entries {
				if j == i {
					continue
				}
				before += e.rect.OverlapArea(f.rect)
				after += enlarged.OverlapArea(f.rect)
			}
			overlapInc := after - before
			areaInc := enlarged.Area() - e.rect.Area()
			area := e.rect.Area()
			if overlapInc < bestOverlapInc ||
				(overlapInc == bestOverlapInc && areaInc < bestAreaInc) ||
				(overlapInc == bestOverlapInc && areaInc == bestAreaInc && area < bestArea) {
				best, bestOverlapInc, bestAreaInc, bestArea = i, overlapInc, areaInc, area
			}
		}
		return best
	}
	// Internal: minimum area enlargement, tie-break on area.
	best, bestAreaInc, bestArea := -1, math.Inf(1), math.Inf(1)
	for i, e := range n.entries {
		areaInc := e.rect.Union(r).Area() - e.rect.Area()
		area := e.rect.Area()
		if areaInc < bestAreaInc || (areaInc == bestAreaInc && area < bestArea) {
			best, bestAreaInc, bestArea = i, areaInc, area
		}
	}
	return best
}

// adjustPath enlarges the parent entries along the path to cover r.
func (t *Tree) adjustPath(path []*node, r geom.Rect) {
	for i := len(path) - 2; i >= 0; i-- {
		parent, child := path[i], path[i+1]
		for j := range parent.entries {
			if parent.entries[j].child == child {
				parent.entries[j].rect = parent.entries[j].rect.Union(r)
				break
			}
		}
	}
}

// refreshPath recomputes exact MBRs bottom-up along the path (used after
// removals, where Union-based adjustment is insufficient).
func refreshPath(path []*node) {
	for i := len(path) - 2; i >= 0; i-- {
		parent, child := path[i], path[i+1]
		for j := range parent.entries {
			if parent.entries[j].child == child {
				parent.entries[j].rect = child.mbr()
				break
			}
		}
	}
}

// overflowTreatment handles an overfull node at the end of path: forced
// reinsert on the first overflow at that level, split otherwise.
func (t *Tree) overflowTreatment(path []*node, reinserted map[int]bool) {
	n := path[len(path)-1]
	if len(path) > 1 && !reinserted[n.level] {
		reinserted[n.level] = true
		t.reinsert(path, reinserted)
		return
	}
	t.splitAt(path)
}

// reinsert removes the ReinsertFraction of entries of the overfull node whose
// centres are farthest from the node MBR centre and reinserts them (far-first,
// matching the "far reinsert" variant).
func (t *Tree) reinsert(path []*node, reinserted map[int]bool) {
	n := path[len(path)-1]
	center := n.mbr().Center()
	type distEntry struct {
		d float64
		e entry
	}
	des := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		des[i] = distEntry{d: e.rect.Center().L2(center), e: e}
	}
	sort.Slice(des, func(i, j int) bool { return des[i].d > des[j].d })
	k := int(t.cfg.ReinsertFraction * float64(len(des)))
	if k < 1 {
		k = 1
	}
	removed := make([]entry, k)
	for i := 0; i < k; i++ {
		removed[i] = des[i].e
	}
	n.entries = n.entries[:0]
	for _, de := range des[k:] {
		n.entries = append(n.entries, de.e)
	}
	refreshPath(path)
	for _, e := range removed {
		t.insertEntry(e, n.level, reinserted)
	}
}

// splitAt splits the overfull node at the end of path, propagating upward.
func (t *Tree) splitAt(path []*node) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.entries) <= t.cfg.MaxEntries {
			return
		}
		left, right := t.rstarSplit(n)
		if i == 0 {
			// Grow a new root.
			newRoot := &node{
				leaf:  false,
				level: n.level + 1,
				entries: []entry{
					{rect: left.mbr(), child: left},
					{rect: right.mbr(), child: right},
				},
			}
			t.root = newRoot
			t.height++
			return
		}
		parent := path[i-1]
		for j := range parent.entries {
			if parent.entries[j].child == n {
				parent.entries[j] = entry{rect: left.mbr(), child: left}
				break
			}
		}
		parent.entries = append(parent.entries, entry{rect: right.mbr(), child: right})
		// Continue loop: parent may now overflow.
	}
}

// rstarSplit performs the R* topological split of n into two nodes.
func (t *Tree) rstarSplit(n *node) (*node, *node) {
	m := t.cfg.MinEntries
	M := len(n.entries)
	dims := n.entries[0].rect.Dims()

	// ChooseSplitAxis: for every axis, sort by lo then by hi and sum margins
	// of all legal distributions; pick the axis with minimal margin sum.
	bestAxis, bestMargin := -1, math.Inf(1)
	var bestSorted []entry
	for axis := 0; axis < dims; axis++ {
		for _, byHi := range []bool{false, true} {
			es := append([]entry(nil), n.entries...)
			a, hi := axis, byHi
			sort.Slice(es, func(i, j int) bool {
				if hi {
					if es[i].rect.Hi[a] != es[j].rect.Hi[a] {
						return es[i].rect.Hi[a] < es[j].rect.Hi[a]
					}
					return es[i].rect.Lo[a] < es[j].rect.Lo[a]
				}
				if es[i].rect.Lo[a] != es[j].rect.Lo[a] {
					return es[i].rect.Lo[a] < es[j].rect.Lo[a]
				}
				return es[i].rect.Hi[a] < es[j].rect.Hi[a]
			})
			var marginSum float64
			for k := m; k <= M-m; k++ {
				marginSum += mbrOf(es[:k]).Margin() + mbrOf(es[k:]).Margin()
			}
			if marginSum < bestMargin {
				bestMargin, bestAxis = marginSum, axis
				bestSorted = es
			}
		}
	}
	_ = bestAxis

	// ChooseSplitIndex: minimal overlap, tie-break minimal total area.
	bestK, bestOverlap, bestArea := -1, math.Inf(1), math.Inf(1)
	for k := m; k <= M-m; k++ {
		l := mbrOf(bestSorted[:k])
		r := mbrOf(bestSorted[k:])
		ov := l.OverlapArea(r)
		ar := l.Area() + r.Area()
		if ov < bestOverlap || (ov == bestOverlap && ar < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, ar
		}
	}

	left := &node{leaf: n.leaf, level: n.level, entries: append([]entry(nil), bestSorted[:bestK]...)}
	right := &node{leaf: n.leaf, level: n.level, entries: append([]entry(nil), bestSorted[bestK:]...)}
	return left, right
}

func mbrOf(es []entry) geom.Rect {
	r := es[0].rect.Clone()
	for _, e := range es[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// Delete removes the first stored item with the given ID and an equal point.
// It reports whether an item was removed.
func (t *Tree) Delete(it Item) bool {
	path, idx := t.findLeaf(t.root, nil, it)
	if path == nil {
		return false
	}
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(path)
	// Shrink root: a non-leaf root with a single child is replaced by it.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	if t.size == 0 {
		t.root = &node{leaf: true}
		t.height = 1
	}
	return true
}

func (t *Tree) findLeaf(n *node, path []*node, it Item) ([]*node, int) {
	path = append(path, n)
	if n.leaf {
		for i, e := range n.entries {
			if e.item.ID == it.ID && e.item.Point.Equal(it.Point) {
				return path, i
			}
		}
		return nil, -1
	}
	target := geom.PointRect(it.Point)
	for _, e := range n.entries {
		if e.rect.ContainsRect(target) {
			if p, i := t.findLeaf(e.child, path, it); p != nil {
				return p, i
			}
		}
	}
	return nil, -1
}

// condense removes underfull nodes along the path and reinserts their
// orphaned entries at the appropriate levels.
func (t *Tree) condense(path []*node) {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan
	for i := len(path) - 1; i >= 1; i-- {
		n, parent := path[i], path[i-1]
		if len(n.entries) < t.cfg.MinEntries {
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e: e, level: n.level})
			}
		}
	}
	refreshPathFull(path)
	for _, o := range orphans {
		if t.root.level < o.level {
			// Cannot happen in practice (root shrinks only after condense),
			// but guard by reinserting items individually.
			o.level = t.root.level
		}
		t.insertEntry(o.e, o.level, map[int]bool{})
	}
}

// refreshPathFull recomputes MBRs along the path, skipping detached nodes.
func refreshPathFull(path []*node) {
	for i := len(path) - 2; i >= 0; i-- {
		parent := path[i]
		for j := range parent.entries {
			if parent.entries[j].child != nil && len(parent.entries[j].child.entries) > 0 {
				parent.entries[j].rect = parent.entries[j].child.mbr()
			}
		}
	}
}

// BulkLoad builds a tree from items using sort-tile-recursive packing, which
// produces near-optimal space utilisation and is how the experiment datasets
// are indexed.
func BulkLoad(dims int, items []Item, cfg Config) *Tree {
	cfg = cfg.withDefaults(dims)
	t := &Tree{cfg: cfg}
	if len(items) == 0 {
		t.root = &node{leaf: true}
		t.height = 1
		return t
	}
	leaves := strPack(items, cfg.MaxEntries, dims)
	level := 0
	nodes := leaves
	for len(nodes) > 1 {
		level++
		nodes = packNodes(nodes, cfg.MaxEntries, dims, level)
	}
	t.root = nodes[0]
	t.size = len(items)
	t.height = t.root.level + 1
	return t
}

// strPack tiles items into leaf nodes of capacity M using STR.
func strPack(items []Item, M, dims int) []*node {
	entries := make([]entry, len(items))
	for i, it := range items {
		entries[i] = entry{rect: geom.PointRect(it.Point), item: it}
	}
	groups := strTile(entries, M, dims, 0, func(e entry, d int) float64 { return e.rect.Center()[d] })
	leaves := make([]*node, len(groups))
	for i, g := range groups {
		leaves[i] = &node{leaf: true, level: 0, entries: g}
	}
	return leaves
}

func packNodes(children []*node, M, dims, level int) []*node {
	entries := make([]entry, len(children))
	for i, c := range children {
		entries[i] = entry{rect: c.mbr(), child: c}
	}
	groups := strTile(entries, M, dims, 0, func(e entry, d int) float64 { return e.rect.Center()[d] })
	out := make([]*node, len(groups))
	for i, g := range groups {
		out[i] = &node{leaf: false, level: level, entries: g}
	}
	return out
}

// strTile recursively sorts by successive dimensions and slices into tiles.
// Every returned group owns its backing array: groups become node entry
// slices, and a node must be able to append within its own capacity without
// clobbering a sibling. (Returning the aliased sub-slice here once let the
// first post-bulk-load insert overwrite the first entry of the next leaf.)
func strTile(es []entry, M, dims, dim int, key func(entry, int) float64) [][]entry {
	if len(es) <= M {
		return [][]entry{append([]entry(nil), es...)}
	}
	sort.Slice(es, func(i, j int) bool { return key(es[i], dim) < key(es[j], dim) })
	if dim == dims-1 {
		var out [][]entry
		for i := 0; i < len(es); i += M {
			j := i + M
			if j > len(es) {
				j = len(es)
			}
			out = append(out, append([]entry(nil), es[i:j]...))
		}
		return out
	}
	// Number of vertical slabs: ceil((n/M)^(1/(dims-dim))) tiles per axis.
	nLeaves := (len(es) + M - 1) / M
	slabs := int(math.Ceil(math.Pow(float64(nLeaves), 1.0/float64(dims-dim))))
	perSlab := (len(es) + slabs - 1) / slabs
	// Round slab size up to a multiple of M so leaves stay full.
	if rem := perSlab % M; rem != 0 {
		perSlab += M - rem
	}
	var out [][]entry
	for i := 0; i < len(es); i += perSlab {
		j := i + perSlab
		if j > len(es) {
			j = len(es)
		}
		out = append(out, strTile(es[i:j], M, dims, dim+1, key)...)
	}
	return out
}

// checkInvariants validates structural invariants; used by tests.
func (t *Tree) checkInvariants() error {
	if t.size == 0 {
		return nil
	}
	count := 0
	var walk func(n *node, isRoot bool) error
	walk = func(n *node, isRoot bool) error {
		if len(n.entries) > t.cfg.MaxEntries {
			return fmt.Errorf("node overflow: %d > %d", len(n.entries), t.cfg.MaxEntries)
		}
		if !isRoot && len(n.entries) < t.cfg.MinEntries {
			return fmt.Errorf("node underflow at level %d: %d < %d", n.level, len(n.entries), t.cfg.MinEntries)
		}
		if n.leaf {
			if n.level != 0 {
				return fmt.Errorf("leaf at level %d", n.level)
			}
			count += len(n.entries)
			return nil
		}
		for _, e := range n.entries {
			if e.child.level != n.level-1 {
				return fmt.Errorf("child level %d under parent level %d", e.child.level, n.level)
			}
			if !e.rect.ContainsRect(e.child.mbr()) {
				return fmt.Errorf("entry rect %v does not cover child MBR %v", e.rect, e.child.mbr())
			}
			if err := walk(e.child, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size mismatch: counted %d, recorded %d", count, t.size)
	}
	return nil
}
