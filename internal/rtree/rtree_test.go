package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randItems(n, dims int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = rng.Float64() * 1000
		}
		items[i] = Item{ID: i, Point: p}
	}
	return items
}

// bruteRange is the oracle for range queries.
func bruteRange(items []Item, q geom.Rect) []int {
	var ids []int
	for _, it := range items {
		if q.Contains(it.Point) {
			ids = append(ids, it.ID)
		}
	}
	sort.Ints(ids)
	return ids
}

func idsOf(items []Item) []int {
	ids := make([]int, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Ints(ids)
	return ids
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFanoutFromPageSize(t *testing.T) {
	// Paper setup: 1536-byte pages, 2-d entries = 2*2*8+8 = 40 bytes → M=38.
	cfg := Config{}.withDefaults(2)
	if cfg.MaxEntries != 38 {
		t.Errorf("2-d fanout = %d, want 38", cfg.MaxEntries)
	}
	if cfg.MinEntries != 15 {
		t.Errorf("2-d min entries = %d, want 15", cfg.MinEntries)
	}
}

func TestInsertAndRangeQuery(t *testing.T) {
	items := randItems(2000, 2, 1)
	tr := New(2, Config{})
	for _, it := range items {
		tr.Insert(it)
	}
	if tr.Len() != len(items) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(items))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		a := geom.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
		b := geom.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
		q := geom.NewRect(a, b)
		got := idsOf(tr.RangeQuery(q))
		want := bruteRange(items, q)
		if !equalIDs(got, want) {
			t.Fatalf("range query %v: got %d ids, want %d", q, len(got), len(want))
		}
	}
}

func TestSmallTreeStaysLeaf(t *testing.T) {
	tr := New(2, Config{})
	for i := 0; i < 5; i++ {
		tr.Insert(Item{ID: i, Point: geom.NewPoint(float64(i), float64(i))})
	}
	if tr.Height() != 1 {
		t.Errorf("5 items should fit in root leaf, height = %d", tr.Height())
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(2, Config{})
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("empty tree basics")
	}
	if _, ok := tr.Bounds(); ok {
		t.Error("empty tree has no bounds")
	}
	if got := tr.RangeQuery(geom.NewRect(geom.NewPoint(0, 0), geom.NewPoint(1, 1))); len(got) != 0 {
		t.Error("range query on empty tree should be empty")
	}
	if _, ok := tr.NearestNeighbor(geom.NewPoint(0, 0)); ok {
		t.Error("NN on empty tree")
	}
	tr.All(func(Item) bool { t.Error("All on empty tree yielded an item"); return false })
}

func TestBulkLoadMatchesBrute(t *testing.T) {
	for _, n := range []int{1, 37, 38, 39, 500, 3000} {
		items := randItems(n, 2, int64(n))
		tr := BulkLoad(2, items, Config{})
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.checkInvariants(); err != nil {
			// Bulk loading may produce slightly underfull rightmost nodes;
			// only size and coverage errors are fatal.
			t.Logf("n=%d: %v", n, err)
		}
		rng := rand.New(rand.NewSource(int64(n) + 7))
		for i := 0; i < 20; i++ {
			a := geom.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
			b := geom.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
			q := geom.NewRect(a, b)
			if !equalIDs(idsOf(tr.RangeQuery(q)), bruteRange(items, q)) {
				t.Fatalf("n=%d: bulk-loaded range query mismatch", n)
			}
		}
	}
}

func TestBulkLoad3D(t *testing.T) {
	items := randItems(4000, 3, 9)
	tr := BulkLoad(3, items, Config{})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20; i++ {
		a := geom.NewPoint(rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*1000)
		b := geom.NewPoint(rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*1000)
		q := geom.NewRect(a, b)
		if !equalIDs(idsOf(tr.RangeQuery(q)), bruteRange(items, q)) {
			t.Fatal("3-d bulk-loaded range query mismatch")
		}
	}
}

func TestDelete(t *testing.T) {
	items := randItems(1500, 2, 4)
	tr := New(2, Config{})
	for _, it := range items {
		tr.Insert(it)
	}
	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(len(items))
	deleted := map[int]bool{}
	for _, idx := range perm[:700] {
		if !tr.Delete(items[idx]) {
			t.Fatalf("Delete(%d) failed", items[idx].ID)
		}
		deleted[items[idx].ID] = true
	}
	if tr.Len() != 800 {
		t.Fatalf("Len after deletes = %d, want 800", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("invariants after delete: %v", err)
	}
	var remaining []Item
	for _, it := range items {
		if !deleted[it.ID] {
			remaining = append(remaining, it)
		}
	}
	for i := 0; i < 30; i++ {
		a := geom.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
		b := geom.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
		q := geom.NewRect(a, b)
		if !equalIDs(idsOf(tr.RangeQuery(q)), bruteRange(remaining, q)) {
			t.Fatal("range query mismatch after deletes")
		}
	}
	// Delete everything.
	for _, it := range remaining {
		if !tr.Delete(it) {
			t.Fatalf("final Delete(%d) failed", it.ID)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("tree not empty after deleting all: len=%d height=%d", tr.Len(), tr.Height())
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New(2, Config{})
	tr.Insert(Item{ID: 1, Point: geom.NewPoint(1, 1)})
	if tr.Delete(Item{ID: 2, Point: geom.NewPoint(1, 1)}) {
		t.Error("deleting a missing ID must fail")
	}
	if tr.Delete(Item{ID: 1, Point: geom.NewPoint(2, 2)}) {
		t.Error("deleting with a wrong point must fail")
	}
	if tr.Len() != 1 {
		t.Error("failed deletes must not change size")
	}
}

func TestExistsShortCircuits(t *testing.T) {
	items := randItems(1000, 2, 6)
	tr := BulkLoad(2, items, Config{})
	all := geom.NewRect(geom.NewPoint(0, 0), geom.NewPoint(1000, 1000))
	if !tr.Exists(all, nil) {
		t.Fatal("Exists over full range must be true")
	}
	visited := 0
	tr.Exists(all, func(Item) bool { visited++; return true })
	if visited != 1 {
		t.Errorf("Exists visited %d items, want 1 (short circuit)", visited)
	}
	empty := geom.NewRect(geom.NewPoint(-10, -10), geom.NewPoint(-5, -5))
	if tr.Exists(empty, nil) {
		t.Fatal("Exists over empty range must be false")
	}
	// Predicate filter: only even IDs in a thin stripe.
	if got := tr.Exists(all, func(it Item) bool { return false }); got {
		t.Fatal("unsatisfiable predicate must yield false")
	}
}

func TestCount(t *testing.T) {
	items := randItems(500, 2, 12)
	tr := BulkLoad(2, items, Config{})
	q := geom.NewRect(geom.NewPoint(100, 100), geom.NewPoint(600, 600))
	if got, want := tr.Count(q), len(bruteRange(items, q)); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestNearestNeighbors(t *testing.T) {
	items := randItems(2000, 2, 8)
	tr := BulkLoad(2, items, Config{})
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		p := geom.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
		k := 1 + rng.Intn(10)
		got := tr.NearestNeighbors(k, p)
		if len(got) != k {
			t.Fatalf("kNN returned %d items, want %d", len(got), k)
		}
		// Oracle: sort all by distance.
		byDist := append([]Item(nil), items...)
		sort.Slice(byDist, func(i, j int) bool { return p.L2(byDist[i].Point) < p.L2(byDist[j].Point) })
		for i := range got {
			if p.L2(got[i].Point) != p.L2(byDist[i].Point) {
				t.Fatalf("kNN order mismatch at %d: %v vs %v", i, got[i].Point, byDist[i].Point)
			}
		}
	}
}

func TestBestFirstOrdering(t *testing.T) {
	items := randItems(1000, 2, 13)
	tr := BulkLoad(2, items, Config{})
	origin := geom.NewPoint(0, 0)
	prev := -1.0
	n := 0
	tr.BestFirst(
		func(p geom.Point) float64 { return origin.L1(p) },
		func(r geom.Rect) float64 { return r.MinDistL1(origin) },
		nil,
		func(it Item, key float64) bool {
			if key < prev {
				t.Fatalf("best-first keys not monotone: %v after %v", key, prev)
			}
			prev = key
			n++
			return true
		},
	)
	if n != len(items) {
		t.Fatalf("best-first visited %d items, want %d", n, len(items))
	}
}

func TestBestFirstPrune(t *testing.T) {
	items := randItems(1000, 2, 14)
	tr := BulkLoad(2, items, Config{})
	origin := geom.NewPoint(0, 0)
	// Prune everything with min L1 distance > 500: only close items emitted.
	var got []Item
	tr.BestFirst(
		func(p geom.Point) float64 { return origin.L1(p) },
		func(r geom.Rect) float64 { return r.MinDistL1(origin) },
		func(r geom.Rect) bool { return r.MinDistL1(origin) > 500 },
		func(it Item, _ float64) bool { got = append(got, it); return true },
	)
	for _, it := range got {
		if origin.L1(it.Point) > 500 {
			t.Fatalf("pruned item leaked: %v", it.Point)
		}
	}
	want := 0
	for _, it := range items {
		if origin.L1(it.Point) <= 500 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("prune emitted %d, want %d", len(got), want)
	}
}

func TestMinKeyItem(t *testing.T) {
	items := randItems(500, 2, 15)
	tr := BulkLoad(2, items, Config{})
	target := geom.NewPoint(500, 500)
	it, ok := tr.MinKeyItem(
		func(p geom.Point) float64 { return target.L1(p) },
		func(r geom.Rect) float64 { return r.MinDistL1(target) },
	)
	if !ok {
		t.Fatal("MinKeyItem on non-empty tree")
	}
	best := items[0]
	for _, cand := range items {
		if target.L1(cand.Point) < target.L1(best.Point) {
			best = cand
		}
	}
	if target.L1(it.Point) != target.L1(best.Point) {
		t.Fatalf("MinKeyItem = %v, want %v", it.Point, best.Point)
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := New(2, Config{})
	p := geom.NewPoint(5, 5)
	for i := 0; i < 100; i++ {
		tr.Insert(Item{ID: i, Point: p})
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("invariants with duplicates: %v", err)
	}
	got := tr.RangeQuery(geom.PointRect(p))
	if len(got) != 100 {
		t.Fatalf("duplicate query returned %d, want 100", len(got))
	}
	for i := 0; i < 100; i++ {
		if !tr.Delete(Item{ID: i, Point: p}) {
			t.Fatalf("delete duplicate %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatal("all duplicates should be gone")
	}
}

func TestInsertDeleteInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	tr := New(2, Config{})
	live := map[int]Item{}
	nextID := 0
	for step := 0; step < 5000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			it := Item{ID: nextID, Point: geom.NewPoint(rng.Float64()*100, rng.Float64()*100)}
			nextID++
			tr.Insert(it)
			live[it.ID] = it
		} else {
			// Delete a random live item.
			for _, it := range live {
				if !tr.Delete(it) {
					t.Fatalf("interleaved delete failed for %v", it)
				}
				delete(live, it.ID)
				break
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
	all := tr.Items()
	if len(all) != len(live) {
		t.Fatalf("Items() returned %d, want %d", len(all), len(live))
	}
	for _, it := range all {
		if want, ok := live[it.ID]; !ok || !want.Point.Equal(it.Point) {
			t.Fatalf("unexpected item %v", it)
		}
	}
}

func TestCustomFanout(t *testing.T) {
	tr := New(2, Config{MaxEntries: 4, MinEntries: 2})
	items := randItems(300, 2, 17)
	for _, it := range items {
		tr.Insert(it)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("invariants with tiny fanout: %v", err)
	}
	if tr.Height() < 3 {
		t.Errorf("300 items at fanout 4 should build a deep tree, height = %d", tr.Height())
	}
	q := geom.NewRect(geom.NewPoint(0, 0), geom.NewPoint(1000, 1000))
	if got := len(tr.RangeQuery(q)); got != 300 {
		t.Fatalf("full range = %d, want 300", got)
	}
}

func TestStats(t *testing.T) {
	empty := New(2, Config{})
	es := empty.Stats()
	if es.Items != 0 || es.Nodes != 0 || es.Height != 1 {
		t.Fatalf("empty stats = %+v", es)
	}
	items := randItems(5000, 2, 19)
	tr := BulkLoad(2, items, Config{})
	s := tr.Stats()
	if s.Items != 5000 {
		t.Fatalf("Items = %d", s.Items)
	}
	if s.Height != tr.Height() || s.Nodes != s.LeafNodes+s.InternalNodes {
		t.Fatalf("inconsistent stats: %+v", s)
	}
	// STR bulk loading packs leaves nearly full.
	if s.AvgLeafFill < 0.85 {
		t.Errorf("bulk-loaded leaf fill = %.2f, want ≥ 0.85", s.AvgLeafFill)
	}
	if s.MaxEntries != 38 || s.MinEntries != 15 {
		t.Errorf("paper fanout not reflected: %+v", s)
	}
	// Insert-built trees satisfy at least the R* minimum fill.
	tr2 := New(2, Config{})
	for _, it := range items {
		tr2.Insert(it)
	}
	s2 := tr2.Stats()
	minFill := float64(s2.MinEntries) / float64(s2.MaxEntries)
	if s2.AvgLeafFill < minFill {
		t.Errorf("insert-built leaf fill %.2f below minimum %.2f", s2.AvgLeafFill, minFill)
	}
	// R* splits should keep sibling overlap modest compared to total area.
	if s2.OverlapArea < 0 {
		t.Error("negative overlap area")
	}
}

func TestAccessCounting(t *testing.T) {
	items := randItems(5000, 2, 23)
	tr := BulkLoad(2, items, Config{})
	if tr.Accesses() != 0 {
		t.Fatal("fresh tree should have zero accesses")
	}
	// A tiny range query touches far fewer nodes than a full scan.
	tr.ResetAccesses()
	tr.RangeQuery(geom.NewRect(geom.NewPoint(0, 0), geom.NewPoint(10, 10)))
	small := tr.Accesses()
	tr.ResetAccesses()
	tr.RangeQuery(geom.NewRect(geom.NewPoint(0, 0), geom.NewPoint(1000, 1000)))
	full := tr.Accesses()
	if small <= 0 || full <= small {
		t.Fatalf("access counts implausible: small=%d full=%d", small, full)
	}
	if full != tr.Stats().Nodes {
		t.Fatalf("full scan should touch every node: %d vs %d", full, tr.Stats().Nodes)
	}
	// Best-first with early exit touches a fraction of the tree.
	tr.ResetAccesses()
	tr.NearestNeighbor(geom.NewPoint(500, 500))
	if nn := tr.Accesses(); nn <= 0 || nn >= full {
		t.Fatalf("NN accesses = %d, want between 1 and %d", nn, full)
	}
	tr.ResetAccesses()
	if tr.Accesses() != 0 {
		t.Fatal("reset failed")
	}
}

func TestGuidedSearch(t *testing.T) {
	items := randItems(3000, 2, 29)
	tr := BulkLoad(2, items, Config{})
	origin := geom.NewPoint(0, 0)
	window := geom.NewRect(geom.NewPoint(100, 100), geom.NewPoint(400, 400))
	// Without pruning, GuidedSearch must enumerate exactly the window.
	var got []int
	tr.GuidedSearch(window,
		func(r geom.Rect) float64 { return r.MinDistL1(origin) },
		nil,
		func(it Item) bool { got = append(got, it.ID); return true })
	want := bruteRange(items, window)
	if !equalIDs(idsOf(itemsByID(items, got)), want) {
		t.Fatalf("guided search found %d, want %d", len(got), len(want))
	}
	// Ordering heuristic: the very first emitted item comes from the child
	// subtree nearest the origin, so it cannot be the globally farthest.
	if len(got) > 1 {
		first := pointByID(items, got[0])
		worst := 0.0
		for _, id := range want {
			if d := origin.L1(pointByID(items, id)); d > worst {
				worst = d
			}
		}
		if origin.L1(first) == worst {
			t.Error("guided order ignored the order function")
		}
	}
	// Early exit stops the traversal.
	n := 0
	tr.GuidedSearch(window,
		func(r geom.Rect) float64 { return r.MinDistL1(origin) },
		nil,
		func(Item) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early exit visited %d items", n)
	}
	// Prune-everything yields nothing.
	tr.GuidedSearch(window,
		func(r geom.Rect) float64 { return 0 },
		func(geom.Rect) bool { return true },
		func(Item) bool { t.Fatal("pruned traversal yielded an item"); return false })
	// Empty tree no-op.
	empty := New(2, Config{})
	empty.GuidedSearch(window, func(geom.Rect) float64 { return 0 }, nil,
		func(Item) bool { t.Fatal("empty tree yielded an item"); return false })
}

func itemsByID(items []Item, ids []int) []Item {
	m := map[int]Item{}
	for _, it := range items {
		m[it.ID] = it
	}
	out := make([]Item, 0, len(ids))
	for _, id := range ids {
		out = append(out, m[id])
	}
	return out
}

func pointByID(items []Item, id int) geom.Point {
	for _, it := range items {
		if it.ID == id {
			return it.Point
		}
	}
	return nil
}

func TestConfigAndBoundsAccessors(t *testing.T) {
	tr := BulkLoad(2, randItems(100, 2, 31), Config{})
	if tr.Config().MaxEntries != 38 {
		t.Fatalf("Config = %+v", tr.Config())
	}
	if _, ok := tr.Bounds(); !ok {
		t.Fatal("non-empty tree must have bounds")
	}
}

// TestBulkLoadThenInsertNoAliasing is the regression test for the STR slice
// aliasing bug: strTile's small-group base case used to return sub-slices of
// one shared backing array, so the first leaf kept spare capacity overlapping
// its sibling and the first post-bulk-load Insert silently overwrote the
// sibling's first entry — one item vanished from queries and the inserted
// item was reported twice. Found by the internal/sim model-based harness.
func TestBulkLoadThenInsertNoAliasing(t *testing.T) {
	for _, dims := range []int{2, 3, 4} {
		for _, n := range []int{30, 32, 48, 100, 333} {
			items := randItems(n, dims, int64(7*n+dims))
			tr := BulkLoad(dims, items, Config{})
			for k, extra := range randItems(8, dims, int64(n)) {
				extra.ID = 1_000_000 + k
				tr.Insert(extra)
				items = append(items, extra)
			}
			seen := make(map[int]int, len(items))
			tr.All(func(it Item) bool {
				seen[it.ID]++
				return true
			})
			for _, it := range items {
				if seen[it.ID] != 1 {
					t.Fatalf("dims=%d n=%d: item %d stored %d times after bulk+insert",
						dims, n, it.ID, seen[it.ID])
				}
				got := tr.RangeQuery(geom.PointRect(it.Point))
				found := false
				for _, g := range got {
					found = found || g.ID == it.ID
				}
				if !found {
					t.Fatalf("dims=%d n=%d: item %d invisible to window query", dims, n, it.ID)
				}
			}
		}
	}
}
