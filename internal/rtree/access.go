package rtree

// Node-access accounting: in a disk-resident R-tree every visited node is a
// page read, so "nodes accessed" is the standard I/O cost metric of the
// skyline literature (BBS is I/O-optimal in it). The counter covers Search,
// Exists, BestFirst and the operations built on them. It is atomic, so
// concurrent read-only queries stay race-free; per-query attribution is
// meaningful only for single-threaded measurements.

// maxTrackedLevels bounds the per-level access breakdown. An R*-tree with
// fanout ≥ 8 holds >10^14 items at 16 levels, so the fold-into-top-slot case
// is theoretical.
const maxTrackedLevels = 16

// recordAccess counts one node visit at the given level (0 = leaf). All
// traversal engines funnel through it so the aggregate, leaf and per-level
// counters cannot drift apart.
func (t *Tree) recordAccess(level int) {
	t.accesses.Add(1)
	if level == 0 {
		t.leafScans.Add(1)
	}
	if level >= maxTrackedLevels {
		level = maxTrackedLevels - 1
	}
	t.levelAccesses[level].Add(1)
}

// Accesses returns the number of nodes visited since the last reset.
func (t *Tree) Accesses() int { return int(t.accesses.Load()) }

// LeafScans returns how many of the visited nodes were leaves — the fraction
// of the I/O that read data pages rather than directory pages. A traversal
// with a high leaf share is doing little pruning.
func (t *Tree) LeafScans() int { return int(t.leafScans.Load()) }

// LevelAccesses returns the node-access counts split by tree level, index 0 =
// leaves, trimmed to the tree's height. The profile distinguishes a traversal
// that prunes high (directory-heavy) from one that descends everywhere
// (leaf-heavy).
func (t *Tree) LevelAccesses() []int64 {
	n := t.height
	if n > maxTrackedLevels {
		n = maxTrackedLevels
	}
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = t.levelAccesses[i].Load()
	}
	return out
}

// Pruned returns how many subtrees or entries were skipped by a traversal
// prune hook since the last reset — each one a page read (or candidate test)
// the branch-and-bound avoided.
func (t *Tree) Pruned() int { return int(t.pruned.Load()) }

// ResetAccesses zeroes the node-access, leaf-scan, per-level and prune
// counters.
func (t *Tree) ResetAccesses() {
	t.accesses.Store(0)
	t.leafScans.Store(0)
	for i := range t.levelAccesses {
		t.levelAccesses[i].Store(0)
	}
	t.pruned.Store(0)
}
