package rtree

// Node-access accounting: in a disk-resident R-tree every visited node is a
// page read, so "nodes accessed" is the standard I/O cost metric of the
// skyline literature (BBS is I/O-optimal in it). The counter covers Search,
// Exists, BestFirst and the operations built on them. It is atomic, so
// concurrent read-only queries stay race-free; per-query attribution is
// meaningful only for single-threaded measurements.

// Accesses returns the number of nodes visited since the last reset.
func (t *Tree) Accesses() int { return int(t.accesses.Load()) }

// LeafScans returns how many of the visited nodes were leaves — the fraction
// of the I/O that read data pages rather than directory pages. A traversal
// with a high leaf share is doing little pruning.
func (t *Tree) LeafScans() int { return int(t.leafScans.Load()) }

// ResetAccesses zeroes the node-access and leaf-scan counters.
func (t *Tree) ResetAccesses() {
	t.accesses.Store(0)
	t.leafScans.Store(0)
}
