package exec

import (
	"fmt"
	"sync"

	"repro/internal/cancel"
)

// pool collects the shared failure state of one ForEach fan-out.
type pool struct {
	wg         sync.WaitGroup
	mu         sync.Mutex
	firstErr   error
	firstPanic any
	panicked   bool
}

func (p *pool) stopped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.firstErr != nil || p.panicked
}

func (p *pool) fail(err error) {
	p.mu.Lock()
	if p.firstErr == nil {
		p.firstErr = err
	}
	p.mu.Unlock()
}

// run executes one job under panic capture.
func (p *pool) run(chk *cancel.Checker, i int, site string, fn func(chk *cancel.Checker, i int) error) {
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			if !p.panicked {
				p.panicked = true
				p.firstPanic = r
			}
			p.mu.Unlock()
		}
	}()
	if err := chk.Point(site); err != nil {
		p.fail(err)
		return
	}
	if err := fn(chk, i); err != nil {
		p.fail(err)
	}
}

// finish reports the pool outcome after wg.Wait: re-raise the first panic on
// the caller, otherwise return the first error.
func (p *pool) finish() error {
	if p.panicked {
		panic(fmt.Sprintf("exec: worker panicked: %v", p.firstPanic))
	}
	return p.firstErr
}
