package exec

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cancel"
)

func TestForEachRunsEveryJob(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		n := 100
		out := make([]int, n)
		err := ForEach(context.Background(), n, workers, "test.site", func(_ *cancel.Checker, i int) error {
			out[i] = i + 1
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: job %d not run (got %d)", workers, i, v)
			}
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	called := false
	if err := ForEach(context.Background(), 0, 4, "s", func(_ *cancel.Checker, _ int) error {
		called = true
		return nil
	}); err != nil || called {
		t.Fatalf("err=%v called=%v, want nil/false", err, called)
	}
}

func TestForEachFirstErrorWinsAndStops(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEach(context.Background(), 1000, workers, "s", func(_ *cancel.Checker, i int) error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		// After the failure, remaining jobs drain without running. With
		// workers in flight some overshoot is expected, but nowhere near all.
		if workers > 1 && ran.Load() == 1000 {
			t.Fatalf("workers=%d: pool did not stop after first error", workers)
		}
	}
}

func TestForEachPanicReRaisedOnCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not re-raised", workers)
				}
				if !strings.Contains(r.(string), "kaboom") {
					t.Fatalf("workers=%d: recovered %v, want wrapped kaboom", workers, r)
				}
			}()
			_ = ForEach(context.Background(), 50, workers, "s", func(_ *cancel.Checker, i int) error {
				if i == 7 {
					panic("kaboom")
				}
				return nil
			})
		}()
	}
}

func TestForEachObservesContextCancellation(t *testing.T) {
	ctx, cancelCtx := context.WithCancel(context.Background())
	ctx = cancel.WithStride(ctx, 1)
	cancelCtx()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEach(ctx, 100, workers, "s", func(_ *cancel.Checker, _ int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d jobs ran after cancellation", workers, ran.Load())
		}
	}
}

// countingHook counts checkpoint visits per site; safe for concurrent use as
// the cancel.Hook contract requires.
type countingHook struct{ n atomic.Uint64 }

func (h *countingHook) Visit(string, uint64) { h.n.Add(1) }

func TestForEachFiresCheckpointPerJob(t *testing.T) {
	h := &countingHook{}
	ctx := cancel.WithHook(context.Background(), h)
	if err := ForEach(ctx, 64, 4, "s", func(*cancel.Checker, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := h.n.Load(); got < 64 {
		t.Fatalf("hook saw %d visits, want >= 64 (one per job)", got)
	}
}

func TestForEachCheckedForwardsContext(t *testing.T) {
	ctx, cancelCtx := context.WithCancel(cancel.WithStride(context.Background(), 1))
	cancelCtx()
	chk := cancel.FromContext(ctx)
	err := ForEachChecked(chk, 10, 4, "s", func(*cancel.Checker, int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled through the forked checkers", err)
	}
	// A nil checker forwards a nil context: runs everything, returns nil.
	if err := ForEachChecked(nil, 10, 4, "s", func(*cancel.Checker, int) error { return nil }); err != nil {
		t.Fatalf("nil checker: %v", err)
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(4, 100); got != 4 {
		t.Fatalf("Resolve(4,100) = %d", got)
	}
	if got := Resolve(8, 3); got != 3 {
		t.Fatalf("Resolve(8,3) = %d, want capped at n", got)
	}
	if got := Resolve(0, 1000); got < 1 {
		t.Fatalf("Resolve(0,·) = %d, want >= 1", got)
	}
}

func TestCacheBasicsAndLRU(t *testing.T) {
	c := NewCache[int, string](2)
	if _, ok := c.Get(1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(1, "a")
	c.Put(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	c.Put(3, "c") // evicts 2: 1 was touched more recently
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU entry 2 not evicted")
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("recently used entry evicted: %q,%v", v, ok)
	}
	c.Put(1, "a2") // update keeps size
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if v, _ := c.Get(1); v != "a2" {
		t.Fatalf("update lost: %q", v)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats = %+v, want nonzero hits and misses", st)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (Put(3) evicted 2)", st.Evictions)
	}
	if st.Len != 2 || st.Capacity != 2 {
		t.Fatalf("len/cap = %d/%d, want 2/2", st.Len, st.Capacity)
	}
	if hr := st.HitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate = %v, want in (0,1)", hr)
	}
	c.MarkStale()
	if s2 := c.Stats(); s2.Stale != 1 {
		t.Fatalf("stale = %d, want 1", s2.Stale)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
	if s3 := c.Stats(); s3.Hits != st.Hits || s3.Misses != st.Misses {
		// counters survive Purge
		t.Fatalf("stats after purge: %+v, want hits/misses preserved from %+v", s3, st)
	}
}

func TestCacheStatsZeroLookups(t *testing.T) {
	// The hit rate must be 0, not NaN, before any lookup — on the nil cache
	// and on a fresh one alike.
	var nilCache *Cache[int, int]
	if hr := nilCache.Stats().HitRate(); hr != 0 {
		t.Fatalf("nil cache hit rate = %v, want 0", hr)
	}
	fresh := NewCache[int, int](4)
	if hr := fresh.Stats().HitRate(); hr != 0 {
		t.Fatalf("fresh cache hit rate = %v, want 0", hr)
	}
	nilCache.MarkStale() // must not panic
}

func TestCacheNilIsAlwaysMiss(t *testing.T) {
	var c *Cache[int, int]
	c.Put(1, 1)
	if _, ok := c.Get(1); ok {
		t.Fatal("nil cache hit")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
	if NewCache[int, int](0) != nil {
		t.Fatal("capacity 0 must return the nil always-miss cache")
	}
}

// TestCacheConcurrentReadersAndPurge is the -race witness for the cache: many
// readers, writers and purgers at once must be data-race free.
func TestCacheConcurrentReadersAndPurge(t *testing.T) {
	c := NewCache[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (g*31 + i) % 97
				switch i % 4 {
				case 0:
					c.Put(k, i)
				case 3:
					if i%256 == 3 {
						c.Purge()
					}
				default:
					if v, ok := c.Get(k); ok && v < 0 {
						t.Error("corrupt value")
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
