// Package exec is the shared parallel-execution substrate of the query
// engine: a context-aware worker pool for the per-customer loops that
// dominate reverse-skyline and why-not workloads, plus a concurrency-safe
// memoisation cache (cache.go) for the per-customer structures those loops
// recompute.
//
// Every fan-out in the repository — reverse-skyline verification, safe-region
// anti-DDR construction, batch why-not answering, approximate-store
// precomputation — goes through ForEach, so the cancellation, first-error and
// panic-propagation semantics are identical everywhere:
//
//   - each worker goroutine builds its own cancel.Checker from the shared
//     context (Checkers are deliberately single-goroutine), so deadlines and
//     fault-injection hooks keep working inside parallel sections;
//   - the first error wins and stops further work; remaining jobs drain
//     without running;
//   - a panic in any worker is re-raised on the calling goroutine after all
//     workers have exited, so recovery middleware above the pool still sees
//     it and no goroutine leaks;
//   - workers <= 1 runs inline on the calling goroutine with sequential
//     semantics, so the parallel entry points degrade to exactly the
//     single-threaded behaviour when parallelism is disabled.
package exec

import (
	"context"
	"runtime"
	"runtime/pprof"

	"repro/internal/cancel"
	"repro/internal/obs"
)

// Resolve maps a workers knob onto an actual worker count for n jobs:
// 0 or negative means GOMAXPROCS, and the count never exceeds n (spawning
// more goroutines than jobs only costs scheduling).
func Resolve(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(chk, i) for every i in [0, n), fanned out over the given
// number of worker goroutines (0 = GOMAXPROCS, capped at n). Before each job
// the per-worker checker fires a checkpoint at site, so deadlines and
// fault-injection rules behave as in the sequential loops. The first error
// returned by any fn stops the pool and is returned; a panic in any fn is
// re-raised on the calling goroutine once every worker has drained.
//
// fn must be safe to call concurrently for distinct i; writes to shared
// output should go to per-index slots (out[i] = ...), which needs no locking.
func ForEach(ctx context.Context, n, workers int, site string, fn func(chk *cancel.Checker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		// The context-free public API funnels here with a nil context;
		// pprof.Do (unlike the cancel/obs lookups) requires a real one.
		ctx = context.Background()
	}
	m := obs.ExecFrom(ctx)
	workers = Resolve(workers, n)
	if workers == 1 {
		chk := cancel.FromContext(ctx)
		if m != nil {
			m.InlineRuns.Inc()
			m.Jobs.Add(uint64(n))
			// Checkpoint counting must survive early error returns.
			before := chk.Visits()
			defer func() { m.Checkpoints.Add(chk.Visits() - before) }()
		}
		for i := 0; i < n; i++ {
			if err := chk.Point(site); err != nil {
				return err
			}
			if err := fn(chk, i); err != nil {
				return err
			}
		}
		return nil
	}

	// enq holds per-job enqueue timestamps when metrics are on. The sender
	// writes enq[i] before jobs <- i and the worker reads it after receiving
	// i, so the channel gives the happens-before edge.
	var enq []int64
	if m != nil {
		m.Fanouts.Inc()
		m.Jobs.Add(uint64(n))
		m.WorkersSpawned.Add(uint64(workers))
		enq = make([]int64, n)
	}
	var pool pool
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		pool.wg.Add(1)
		go func() {
			defer pool.wg.Done()
			// pprof goroutine labels do not cross `go`: re-apply the parent's
			// label set (op/rung from the engine ladder) plus this fan-out's
			// site as the phase, so worker CPU shows up attributed in profiles
			// rather than as anonymous pool goroutines.
			pprof.Do(ctx, pprof.Labels("phase", site), func(ctx context.Context) {
				// One checker per goroutine: Checker has no atomics on its hot
				// path and must not be shared.
				chk := cancel.FromContext(ctx)
				if m != nil {
					before := chk.Visits()
					defer func() { m.Checkpoints.Add(chk.Visits() - before) }()
				}
				for i := range jobs {
					if pool.stopped() {
						continue // drain remaining jobs without working
					}
					if m == nil {
						pool.run(chk, i, site, fn)
						continue
					}
					start := obs.Now()
					m.QueueWait.Observe(obs.SecondsSince(enq[i]))
					pool.run(chk, i, site, fn)
					m.JobDuration.ObserveSince(start)
				}
			})
		}()
	}
	for i := 0; i < n; i++ {
		if m != nil {
			enq[i] = obs.Now()
		}
		jobs <- i
	}
	close(jobs)
	pool.wg.Wait()
	return pool.finish()
}

// ForEachChecked is ForEach for call sites that hold a *cancel.Checker
// rather than a context (the internal checked paths). The workers are built
// from the checker's underlying context, so hooks and deadlines carry over.
func ForEachChecked(chk *cancel.Checker, n, workers int, site string, fn func(chk *cancel.Checker, i int) error) error {
	return ForEach(chk.Context(), n, workers, site, fn)
}
