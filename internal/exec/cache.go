package exec

import (
	"container/list"
	"sync"
)

// Cache is a concurrency-safe, bounded, LRU-evicting memoisation cache.
//
// It is the substrate for the per-customer caches of the query engine
// (dynamic skylines in internal/rskyline, anti-dominance regions in
// internal/whynot): influence-style workloads evaluate reverse skylines for
// many candidate query points over a fixed customer set, and the dominant
// per-customer DSL cost is identical across those queries.
//
// A nil *Cache is valid and behaves as an always-miss cache (Get misses, Put
// is a no-op), so call sites need no "is caching enabled" branches. Values
// are returned as stored: callers must treat cached values as immutable.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	m        map[K]*list.Element
	hits     uint64
	misses   uint64
}

type cacheEntry[K comparable, V any] struct {
	key K
	val V
}

// NewCache builds a cache bounded to capacity entries. capacity <= 0 returns
// nil — the always-miss cache — so a zero CacheSize knob disables caching
// without any further plumbing.
func NewCache[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		return nil
	}
	return &Cache[K, V]{
		capacity: capacity,
		ll:       list.New(),
		m:        make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry[K, V]).val, true
}

// Put stores v under k, evicting the least recently used entry when full.
func (c *Cache[K, V]) Put(k K, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*cacheEntry[K, V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.m, oldest.Value.(*cacheEntry[K, V]).key)
		}
	}
	c.m[k] = c.ll.PushFront(&cacheEntry[K, V]{key: k, val: v})
}

// Purge drops every entry (the explicit invalidation hook for mutations:
// any product Insert/Delete can change every cached per-customer structure).
// Hit/miss counters survive a purge.
func (c *Cache[K, V]) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.m)
}

// Len returns the current number of entries.
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit and miss counts (test and ops visibility).
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
