package exec

import (
	"container/list"
	"sync"
)

// Cache is a concurrency-safe, bounded, LRU-evicting memoisation cache.
//
// It is the substrate for the per-customer caches of the query engine
// (dynamic skylines in internal/rskyline, anti-dominance regions in
// internal/whynot): influence-style workloads evaluate reverse skylines for
// many candidate query points over a fixed customer set, and the dominant
// per-customer DSL cost is identical across those queries.
//
// A nil *Cache is valid and behaves as an always-miss cache (Get misses, Put
// is a no-op), so call sites need no "is caching enabled" branches. Values
// are returned as stored: callers must treat cached values as immutable.
type Cache[K comparable, V any] struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	m         map[K]*list.Element
	hits      uint64
	misses    uint64
	stale     uint64
	evictions uint64
}

type cacheEntry[K comparable, V any] struct {
	key K
	val V
}

// NewCache builds a cache bounded to capacity entries. capacity <= 0 returns
// nil — the always-miss cache — so a zero CacheSize knob disables caching
// without any further plumbing.
func NewCache[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		return nil
	}
	return &Cache[K, V]{
		capacity: capacity,
		ll:       list.New(),
		m:        make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry[K, V]).val, true
}

// Put stores v under k, evicting the least recently used entry when full.
func (c *Cache[K, V]) Put(k K, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*cacheEntry[K, V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.m, oldest.Value.(*cacheEntry[K, V]).key)
			c.evictions++
		}
	}
	c.m[k] = c.ll.PushFront(&cacheEntry[K, V]{key: k, val: v})
}

// Purge drops every entry (the explicit invalidation hook for mutations:
// any product Insert/Delete can change every cached per-customer structure).
// Hit/miss counters survive a purge.
func (c *Cache[K, V]) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.m)
}

// Len returns the current number of entries.
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// MarkStale records one stale-on-arrival hit: the caller found an entry via
// Get but its own validation (generation stamp, key payload equality)
// rejected it, forcing a recompute. The cache cannot detect this itself —
// validation is the caller's domain knowledge — so callers report it here to
// keep all cache accounting in one place.
func (c *Cache[K, V]) MarkStale() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stale++
	c.mu.Unlock()
}

// CacheStats is a point-in-time snapshot of one cache's accounting.
//
// Stale counts Get hits whose entries the caller subsequently rejected as
// generation-invalidated (see MarkStale); those lookups are also included in
// Hits, so effective hits = Hits - Stale.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Stale     uint64 `json:"stale_on_arrival"`
	Evictions uint64 `json:"evictions"`
	Len       int    `json:"len"`
	Capacity  int    `json:"capacity"`
}

// HitRate returns effective hits (excluding stale-on-arrival) over total
// lookups, or 0 when no lookups have happened — never NaN.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits-s.Stale) / float64(total)
}

// Stats returns the cumulative cache accounting (test and ops visibility).
func (c *Cache[K, V]) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Stale:     c.stale,
		Evictions: c.evictions,
		Len:       c.ll.Len(),
		Capacity:  c.capacity,
	}
}
