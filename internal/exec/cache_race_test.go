package exec

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// genValue mimics how the engine's memoisation layers stamp cached values
// with the dataset generation they were computed against: a reader that finds
// an entry from an older generation must reject it (MarkStale) and recompute,
// exactly the hot-swap invalidation protocol the server's reload path relies
// on.
type genValue struct {
	gen uint64
	n   int
}

// TestCacheConcurrentGenerationBump hammers one small cache from readers
// (Get → validate gen → MarkStale+Put on mismatch), writers (Put, forcing
// LRU evictions), and a generation bumper (bump + Purge), the way a live
// reload interleaves with in-flight queries. Run under -race this is the
// regression test for the cache's locking discipline; the final sweep
// asserts no entry from a retired generation survives a bump.
func TestCacheConcurrentGenerationBump(t *testing.T) {
	const (
		capacity = 32
		keys     = 128 // 4x capacity: evictions on every writer pass
		readers  = 4
		writers  = 2
		bumps    = 50
	)
	c := NewCache[int, genValue](capacity)
	var gen atomic.Uint64

	const iters = 20000
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				k := (n * (worker + 1)) % keys
				g := gen.Load()
				if v, ok := c.Get(k); ok && v.gen != g {
					// Stale-on-arrival: the generation moved under us.
					c.MarkStale()
					c.Put(k, genValue{gen: g, n: n})
				} else if !ok {
					c.Put(k, genValue{gen: g, n: n})
				}
			}
		}(i)
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				c.Put((n*7+worker)%keys, genValue{gen: gen.Load(), n: n})
			}
		}(i)
	}

	// The bumper plays the reload path concurrently with the query workload:
	// advance the generation first, then purge — the same order DB.Invalidate
	// uses, so a concurrent reader can never re-populate the cache with a
	// value stamped by the old generation after the purge completes.
	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
bumping:
	for b := 0; b < bumps; b++ {
		gen.Add(1)
		c.Purge()
		select {
		case <-workersDone:
			break bumping
		case <-time.After(time.Millisecond):
		}
	}
	<-workersDone

	// Quiesced: one final bump+purge must leave nothing from older
	// generations behind, and the accounting must be coherent.
	final := gen.Add(1)
	c.Purge()
	if got := c.Len(); got != 0 {
		t.Fatalf("Len after purge = %d, want 0", got)
	}

	// Deterministically exercise the stale-on-arrival protocol itself (the
	// concurrent phase may or may not catch a value mid-bump): an entry
	// stamped before a bump that survives until the next read must be
	// rejected and recomputed.
	c.Put(1, genValue{gen: final, n: 0})
	stale := gen.Add(1)
	if v, ok := c.Get(1); !ok {
		t.Fatal("entry vanished without a purge")
	} else if v.gen != stale {
		c.MarkStale()
		c.Put(1, genValue{gen: stale, n: 1})
	} else {
		t.Fatalf("entry gen = %d, expected the pre-bump stamp %d", v.gen, final)
	}
	if v, ok := c.Get(1); !ok || v.gen != stale {
		t.Fatalf("recompute after stale hit = %+v %v, want gen %d", v, ok, stale)
	}

	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("workload produced no cache traffic: %+v", st)
	}
	if st.Stale == 0 {
		t.Fatalf("stale-on-arrival hit was not recorded: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("key space 4x capacity produced no evictions: %+v", st)
	}
	if got := c.Len(); got > capacity {
		t.Fatalf("Len = %d exceeds capacity %d", got, capacity)
	}
}
