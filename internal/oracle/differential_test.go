package oracle_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/oracle"
	"repro/internal/region"
	"repro/internal/rskyline"
	"repro/internal/rtree"
	"repro/internal/whynot"
)

// The differential suite runs every optimised query path — branch-and-bound
// traversals, the BBRS pipeline, the parallel variants and the memoised
// caches — against the package's brute-force oracles on seeded UN/CO/AC
// datasets in 2, 3 and 4 dimensions.

var kinds = []struct {
	name string
	kind datagen.Kind
}{
	{"UN", datagen.Uniform},
	{"CO", datagen.Correlated},
	{"AC", datagen.AntiCorrelated},
}

var dims = []int{2, 3, 4}

// fixture is one seeded bichromatic configuration: products indexed in a DB,
// customers with a disjoint ID range, and a deterministic RNG for queries.
type fixture struct {
	products  []oracle.Item
	customers []oracle.Item
	db        *rskyline.DB
	rng       *rand.Rand
}

func newFixture(kind datagen.Kind, d, nProducts, nCustomers int, seed int64) fixture {
	products := datagen.Generate(kind, nProducts, d, seed)
	customers := datagen.Generate(kind, nCustomers, d, seed+1)
	for i := range customers {
		customers[i].ID += 10_000 // disjoint from product IDs
	}
	return fixture{
		products:  products,
		customers: customers,
		db:        rskyline.NewDB(d, products, rtree.Config{}),
		rng:       rand.New(rand.NewSource(seed + 2)),
	}
}

// queryPoint draws a continuous position inside the product universe;
// continuous draws avoid the measure-zero boundary ties the closed-set
// constructions resolve differently from the strict-dominance oracles.
func (f fixture) queryPoint() geom.Point {
	u, _ := f.db.Universe()
	p := make(geom.Point, len(u.Lo))
	for j := range p {
		p[j] = u.Lo[j] + f.rng.Float64()*(u.Hi[j]-u.Lo[j])
	}
	return p
}

func idSet(items []oracle.Item) map[int]bool {
	m := make(map[int]bool, len(items))
	for _, it := range items {
		m[it.ID] = true
	}
	return m
}

func sameIDs(t *testing.T, label string, got, want []oracle.Item) {
	t.Helper()
	g, w := idSet(got), idSet(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d members, oracle says %d (got %v, want %v)", label, len(g), len(w), g, w)
	}
	for id := range w {
		if !g[id] {
			t.Fatalf("%s: oracle member %d missing from result", label, id)
		}
	}
}

func forEachConfig(t *testing.T, fn func(t *testing.T, f fixture)) {
	forEachConfigMaxDim(t, 4, fn)
}

func forEachConfigMaxDim(t *testing.T, maxDim int, fn func(t *testing.T, f fixture)) {
	for _, k := range kinds {
		for _, d := range dims {
			if d > maxDim {
				continue
			}
			if d == 4 && testing.Short() {
				// The d=4 configs dominate the suite's runtime (2^d orthant
				// fan-out in every pass) while the algorithms branch on
				// dimension nowhere beyond loops; -short keeps d ≤ 3.
				continue
			}
			k, d := k, d
			t.Run(fmt.Sprintf("%s/d=%d", k.name, d), func(t *testing.T) {
				t.Parallel()
				fn(t, newFixture(k.kind, d, 60, 30, int64(1000*d)+int64(k.kind)))
			})
		}
	}
}

func TestDynamicSkylineAgreesWithOracle(t *testing.T) {
	forEachConfig(t, func(t *testing.T, f fixture) {
		for i := 0; i < 8; i++ {
			c := f.customers[f.rng.Intn(len(f.customers))]
			got := f.db.DynamicSkylineExcluding(c.Point, oracle.NoExclude)
			want := oracle.DynamicSkyline(f.products, c.Point, oracle.NoExclude)
			sameIDs(t, "DSL (BBS)", got, want)

			// With the monochromatic exclusion of an arbitrary product record.
			ex := f.products[f.rng.Intn(len(f.products))].ID
			got = f.db.DynamicSkylineExcluding(c.Point, ex)
			want = oracle.DynamicSkyline(f.products, c.Point, ex)
			sameIDs(t, "DSL excluding", got, want)
		}
	})
}

func TestDynamicSkylineCachedAgreesWithOracle(t *testing.T) {
	forEachConfig(t, func(t *testing.T, f fixture) {
		f.db.EnableDSLCache(64)
		// Two passes: the second is served from the cache and must agree too.
		for pass := 0; pass < 2; pass++ {
			for _, c := range f.customers[:10] {
				got, err := f.db.DynamicSkylineOfChecked(nil, c, oracle.NoExclude)
				if err != nil {
					t.Fatal(err)
				}
				sameIDs(t, fmt.Sprintf("cached DSL pass %d", pass),
					got, oracle.DynamicSkyline(f.products, c.Point, oracle.NoExclude))
			}
		}
		if f.db.DSLCacheStats().Hits == 0 {
			t.Fatal("second pass did not hit the DSL cache")
		}
	})
}

func TestReverseSkylinePathsAgreeWithOracle(t *testing.T) {
	forEachConfig(t, func(t *testing.T, f fixture) {
		for i := 0; i < 4; i++ {
			q := f.queryPoint()
			want := oracle.ReverseSkyline(f.products, f.customers, q)

			sameIDs(t, "RSL direct", f.db.ReverseSkyline(f.customers, q), want)
			sameIDs(t, "RSL filtered", f.db.ReverseSkylineFiltered(f.customers, q), want)

			for _, workers := range []int{2, 4, 0} {
				got, err := f.db.ReverseSkylineParallel(context.Background(), f.customers, q, workers)
				if err != nil {
					t.Fatal(err)
				}
				sameIDs(t, fmt.Sprintf("RSL parallel w=%d", workers), got, want)

				got, err = f.db.ReverseSkylineFilteredParallel(context.Background(), f.customers, q, workers)
				if err != nil {
					t.Fatal(err)
				}
				sameIDs(t, fmt.Sprintf("RSL filtered parallel w=%d", workers), got, want)
			}
		}
	})
}

// TestBBRSAgreesWithOracle exercises the monochromatic pipeline: the
// customers are the product records themselves, each invisible to its own
// window queries.
func TestBBRSAgreesWithOracle(t *testing.T) {
	forEachConfig(t, func(t *testing.T, f fixture) {
		for i := 0; i < 4; i++ {
			q := f.queryPoint()
			want := oracle.ReverseSkyline(f.products, f.products, q)
			sameIDs(t, "BBRS", f.db.ReverseSkylineBBRS(q), want)
			got, err := f.db.ReverseSkylineBBRSParallel(context.Background(), q, 4)
			if err != nil {
				t.Fatal(err)
			}
			sameIDs(t, "BBRS parallel", got, want)
		}
	})
}

// TestSafeRegionMembershipAgreesWithOracle compares constructed safe regions
// — sequential, parallel, and cached — against the semantic oracle (every
// RSL member retained) at sampled continuous positions, and checks the three
// constructions are equivalent as regions. Dimensions are capped at 3: the
// exact anti-DDR staircase is built from a d-dimensional corner grid whose
// cost explodes at d=4 (a single 4-d construction takes minutes), so no
// caller constructs exact safe regions there; 4-d coverage of the shared
// per-customer machinery comes from the DSL and reverse-skyline suites above.
func TestSafeRegionMembershipAgreesWithOracle(t *testing.T) {
	forEachConfigMaxDim(t, 3, func(t *testing.T, f fixture) {
		eng := whynot.NewEngine(f.db, false)
		cachedDB := rskyline.NewDB(f.db.Dims(), f.products, rtree.Config{})
		cachedDB.EnableDSLCache(64)
		cachedEng := whynot.NewEngine(cachedDB, false)
		cachedEng.EnableAntiDDRCache(64)

		// Exact safe regions grow combinatorially with |RSL| and with
		// dimensionality (each anti-DDR is a d-dimensional staircase of
		// rectangles), so the member cap shrinks as d grows. Capping keeps
		// the oracle comparison exact: SR over a subset is the intersection
		// over that subset.
		cap := map[int]int{2: 6, 3: 4}[f.db.Dims()]
		for i := 0; i < 2; i++ {
			q := f.queryPoint()
			rsl := oracle.ReverseSkyline(f.products, f.customers, q)
			if len(rsl) > cap {
				rsl = rsl[:cap]
			}

			seq := eng.SafeRegion(q, rsl)
			par, err := eng.SafeRegionParallel(context.Background(), q, rsl, 4)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the caches with a first construction, then use the cached
			// result, which must still agree.
			cachedEng.SafeRegion(q, rsl)
			cached := cachedEng.SafeRegion(q, rsl)

			if !region.Equivalent(seq, par) {
				t.Fatalf("parallel safe region differs from sequential (q=%v, |rsl|=%d)", q, len(rsl))
			}
			if !region.Equivalent(seq, cached) {
				t.Fatalf("cached safe region differs from sequential (q=%v, |rsl|=%d)", q, len(rsl))
			}

			for s := 0; s < 120; s++ {
				x := f.queryPoint()
				got := seq.Contains(x)
				want := oracle.SafeAt(f.products, rsl, x)
				if got != want {
					t.Fatalf("safe-region membership at %v: constructed=%v oracle=%v (q=%v)", x, got, want, q)
				}
			}
		}
		if cachedEng.AntiDDRCacheStats().Hits == 0 {
			t.Fatal("repeated construction did not hit the anti-DDR cache")
		}
	})
}
