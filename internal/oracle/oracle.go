// Package oracle provides brute-force reference implementations of the
// query primitives: O(n·m) nested loops straight from the paper's
// definitions, with no index, no pruning, no caching and no concurrency.
//
// They exist to be obviously correct, not fast. The differential tests in
// this package (and the property tests built on top elsewhere) run the
// optimised paths — branch-and-bound traversals, the BBRS pipeline, the
// worker-pool variants and the memoised caches — against these oracles on
// seeded datasets and assert exact agreement.
package oracle

import (
	"repro/internal/geom"
	"repro/internal/rtree"
)

// Item aliases the R-tree item type used across the repository.
type Item = rtree.Item

// NoExclude mirrors rskyline.NoExclude: exclude no record.
const NoExclude = -1

// DynamicSkyline returns DSL(c) over products by the Definition 2 nested
// loop: a product is a member iff no other product (the record excludeID
// aside) dynamically dominates it with respect to c. Output preserves the
// input order of products.
func DynamicSkyline(products []Item, c geom.Point, excludeID int) []Item {
	var out []Item
	for i, p := range products {
		if p.ID == excludeID {
			continue
		}
		dominated := false
		for j, o := range products {
			if i == j || o.ID == excludeID {
				continue
			}
			if geom.DynDominates(c, o.Point, p.Point) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// IsReverseSkyline reports whether customer c belongs to RSL(q) over
// products by the Definition 3 test: no product other than the customer's
// own record may dynamically dominate q with respect to c.
func IsReverseSkyline(products []Item, c Item, q geom.Point) bool {
	for _, p := range products {
		if p.ID == c.ID {
			continue
		}
		if geom.DynDominates(c.Point, p.Point, q) {
			return false
		}
	}
	return true
}

// ReverseSkyline returns RSL(q): the customers whose dynamic skyline
// contains q, in input order. It applies the monochromatic convention of the
// optimised paths (a customer's own product record, matched by ID, never
// blocks it); for bichromatic data the ID sets are disjoint and the
// convention is a no-op.
func ReverseSkyline(products, customers []Item, q geom.Point) []Item {
	var out []Item
	for _, c := range customers {
		if IsReverseSkyline(products, c, q) {
			out = append(out, c)
		}
	}
	return out
}

// SafeAt reports whether moving the query product to position x keeps every
// customer of rsl in the reverse skyline — the semantic definition of safe-
// region membership (Lemma 2): x ∈ SR(q) iff every c ∈ RSL(q) satisfies
// c ∈ RSL(x). The constructed safe region (Algorithm 3) is a closed set, so
// the two can disagree exactly on the region's boundary; differential tests
// sample continuous positions, which miss that measure-zero set almost
// surely.
func SafeAt(products, rsl []Item, x geom.Point) bool {
	for _, c := range rsl {
		if !IsReverseSkyline(products, c, x) {
			return false
		}
	}
	return true
}
