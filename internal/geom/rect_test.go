package geom

import (
	"math"
	"math/rand"
	"testing"
)

func rect(x1, y1, x2, y2 float64) Rect {
	return NewRect(NewPoint(x1, y1), NewPoint(x2, y2))
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(NewPoint(5, 1), NewPoint(2, 4))
	if !r.Lo.Equal(NewPoint(2, 1)) || !r.Hi.Equal(NewPoint(5, 4)) {
		t.Fatalf("NewRect did not normalise corners: %v", r)
	}
	if !r.IsValid() {
		t.Fatal("normalised rect must be valid")
	}
}

func TestRectContains(t *testing.T) {
	r := rect(0, 0, 10, 10)
	cases := []struct {
		p              Point
		closed, strict bool
	}{
		{NewPoint(5, 5), true, true},
		{NewPoint(0, 5), true, false},
		{NewPoint(10, 10), true, false},
		{NewPoint(-1, 5), false, false},
		{NewPoint(5, 11), false, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.closed {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.closed)
		}
		if got := r.ContainsStrict(c.p); got != c.strict {
			t.Errorf("ContainsStrict(%v) = %v, want %v", c.p, got, c.strict)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := rect(0, 0, 5, 5)
	b := rect(3, 3, 8, 8)
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("rects should intersect")
	}
	want := rect(3, 3, 5, 5)
	if !got.Lo.Equal(want.Lo) || !got.Hi.Equal(want.Hi) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	// Touching boundary: closed semantics → degenerate intersection.
	c := rect(5, 0, 9, 5)
	got, ok = a.Intersect(c)
	if !ok || got.Lo[0] != 5 || got.Hi[0] != 5 {
		t.Fatalf("touching rects should yield degenerate intersection, got %v ok=%v", got, ok)
	}
	// Disjoint.
	d := rect(6, 6, 7, 7)
	if _, ok := a.Intersect(d); ok {
		t.Fatal("disjoint rects must not intersect")
	}
	if a.Intersects(d) {
		t.Fatal("Intersects must agree with Intersect")
	}
}

func TestRectAreaMarginCenter(t *testing.T) {
	r := rect(1, 2, 4, 6)
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %v, want 12", got)
	}
	if got := r.Margin(); got != 7 {
		t.Errorf("Margin = %v, want 7", got)
	}
	if got := r.Center(); !got.Equal(NewPoint(2.5, 4)) {
		t.Errorf("Center = %v", got)
	}
}

func TestOverlapArea(t *testing.T) {
	a := rect(0, 0, 4, 4)
	b := rect(2, 2, 6, 6)
	if got := a.OverlapArea(b); got != 4 {
		t.Errorf("OverlapArea = %v, want 4", got)
	}
	if got := a.OverlapArea(rect(4, 0, 8, 4)); got != 0 {
		t.Errorf("touching rects have zero overlap area, got %v", got)
	}
}

func TestCorners(t *testing.T) {
	r := rect(0, 0, 1, 2)
	cs := r.Corners()
	if len(cs) != 4 {
		t.Fatalf("2-d rect has 4 corners, got %d", len(cs))
	}
	want := map[string]bool{"(0, 0)": true, "(1, 0)": true, "(0, 2)": true, "(1, 2)": true}
	for _, c := range cs {
		if !want[c.String()] {
			t.Errorf("unexpected corner %v", c)
		}
	}
	r3 := NewRect(NewPoint(0, 0, 0), NewPoint(1, 1, 1))
	if len(r3.Corners()) != 8 {
		t.Fatal("3-d rect has 8 corners")
	}
}

func TestNearestPointAndMinDist(t *testing.T) {
	r := rect(0, 0, 4, 4)
	cases := []struct {
		p, nearest Point
		l1         float64
	}{
		{NewPoint(2, 2), NewPoint(2, 2), 0},
		{NewPoint(-1, 2), NewPoint(0, 2), 1},
		{NewPoint(6, 7), NewPoint(4, 4), 5},
	}
	for _, c := range cases {
		if got := r.NearestPoint(c.p); !got.Equal(c.nearest) {
			t.Errorf("NearestPoint(%v) = %v, want %v", c.p, got, c.nearest)
		}
		if got := r.MinDistL1(c.p); got != c.l1 {
			t.Errorf("MinDistL1(%v) = %v, want %v", c.p, got, c.l1)
		}
	}
	if got := r.MinDistL2(NewPoint(7, 8)); math.Abs(got-5) > 1e-12 {
		t.Errorf("MinDistL2 = %v, want 5", got)
	}
}

func TestWindowRect(t *testing.T) {
	// Paper Fig. 4(b): window of c1=(5,30) w.r.t. q=(8.5,55).
	c := NewPoint(5, 30)
	q := NewPoint(8.5, 55)
	w := WindowRect(c, q)
	if !w.Lo.Equal(NewPoint(1.5, 5)) || !w.Hi.Equal(NewPoint(8.5, 55)) {
		t.Fatalf("WindowRect = %v, want [(1.5,5),(8.5,55)]", w)
	}
	if !w.Contains(NewPoint(7.5, 42)) {
		t.Error("p2 must be inside c1's window (paper Fig. 4b)")
	}
	if !w.Contains(q) {
		t.Error("q is always a corner of its own window")
	}
}

func TestTransformMinMax(t *testing.T) {
	c := NewPoint(5, 5)
	r := rect(6, 2, 8, 4) // entirely right of c in x, below in y
	tr := r.TransformMinMax(c)
	if !tr.Lo.Equal(NewPoint(1, 1)) || !tr.Hi.Equal(NewPoint(3, 3)) {
		t.Fatalf("TransformMinMax = %v", tr)
	}
	// Rect straddling c in x: min distance 0.
	r2 := rect(3, 2, 8, 4)
	tr2 := r2.TransformMinMax(c)
	if tr2.Lo[0] != 0 || tr2.Hi[0] != 3 {
		t.Fatalf("straddling TransformMinMax = %v", tr2)
	}
}

// Property: TransformMinMax bounds the transform of every contained point.
func TestTransformMinMaxBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		c := NewPoint(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		a := NewPoint(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		b := NewPoint(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		r := NewRect(a, b)
		bounds := r.TransformMinMax(c)
		// Sample random points inside r.
		for j := 0; j < 10; j++ {
			p := make(Point, 3)
			for k := range p {
				p[k] = r.Lo[k] + rng.Float64()*(r.Hi[k]-r.Lo[k])
			}
			tp := p.Transform(c)
			if !bounds.Contains(tp) {
				t.Fatalf("transform %v of %v escapes bounds %v (c=%v r=%v)", tp, p, bounds, c, r)
			}
		}
	}
}

func TestMBR(t *testing.T) {
	pts := []Point{NewPoint(1, 5), NewPoint(3, 2), NewPoint(2, 7)}
	r := MBR(pts)
	if !r.Lo.Equal(NewPoint(1, 2)) || !r.Hi.Equal(NewPoint(3, 7)) {
		t.Fatalf("MBR = %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MBR of empty set must panic")
		}
	}()
	MBR(nil)
}

func TestExpandAndUnion(t *testing.T) {
	r := PointRect(NewPoint(2, 2))
	r.Expand(NewPoint(0, 5))
	if !r.Lo.Equal(NewPoint(0, 2)) || !r.Hi.Equal(NewPoint(2, 5)) {
		t.Fatalf("Expand = %v", r)
	}
	u := rect(0, 0, 1, 1).Union(rect(2, 2, 3, 3))
	if !u.Lo.Equal(NewPoint(0, 0)) || !u.Hi.Equal(NewPoint(3, 3)) {
		t.Fatalf("Union = %v", u)
	}
}

func TestContainsRect(t *testing.T) {
	outer := rect(0, 0, 10, 10)
	if !outer.ContainsRect(rect(1, 1, 9, 9)) {
		t.Error("inner rect should be contained")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect contains itself")
	}
	if outer.ContainsRect(rect(5, 5, 11, 9)) {
		t.Error("overflowing rect must not be contained")
	}
}
