package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPointCopies(t *testing.T) {
	src := []float64{1, 2, 3}
	p := NewPoint(src...)
	src[0] = 99
	if p[0] != 1 {
		t.Fatalf("NewPoint must copy its input; got %v", p)
	}
}

func TestPointEqual(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{NewPoint(1, 2), NewPoint(1, 2), true},
		{NewPoint(1, 2), NewPoint(1, 3), false},
		{NewPoint(1, 2), NewPoint(1, 2, 3), false},
		{NewPoint(), NewPoint(), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestApproxEqual(t *testing.T) {
	a := NewPoint(1, 2)
	b := NewPoint(1.0001, 1.9999)
	if !a.ApproxEqual(b, 1e-3) {
		t.Error("points within eps should be approx equal")
	}
	if a.ApproxEqual(b, 1e-6) {
		t.Error("points beyond eps should not be approx equal")
	}
	if a.ApproxEqual(NewPoint(1), 1) {
		t.Error("dimension mismatch should not be approx equal")
	}
}

func TestDistances(t *testing.T) {
	a := NewPoint(0, 0)
	b := NewPoint(3, 4)
	if got := a.L1(b); got != 7 {
		t.Errorf("L1 = %v, want 7", got)
	}
	if got := a.L2(b); got != 5 {
		t.Errorf("L2 = %v, want 5", got)
	}
	if got := a.WeightedL1(b, []float64{2, 0.5}); got != 8 {
		t.Errorf("WeightedL1 = %v, want 8", got)
	}
}

func TestArithmetic(t *testing.T) {
	a := NewPoint(1, 2)
	b := NewPoint(3, -1)
	if got := a.Add(b); !got.Equal(NewPoint(4, 1)) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !got.Equal(NewPoint(-2, 3)) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); !got.Equal(NewPoint(2, 4)) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Min(b); !got.Equal(NewPoint(1, -1)) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); !got.Equal(NewPoint(3, 2)) {
		t.Errorf("Max = %v", got)
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b         Point
		dom, weakDom bool
	}{
		{NewPoint(1, 1), NewPoint(2, 2), true, true},
		{NewPoint(1, 2), NewPoint(2, 2), true, true},
		{NewPoint(2, 2), NewPoint(2, 2), false, true}, // equal: weak only
		{NewPoint(3, 1), NewPoint(2, 2), false, false},
		{NewPoint(2, 3), NewPoint(2, 2), false, false},
	}
	for _, c := range cases {
		if got := c.a.Dominates(c.b); got != c.dom {
			t.Errorf("%v Dominates %v = %v, want %v", c.a, c.b, got, c.dom)
		}
		if got := c.a.WeaklyDominates(c.b); got != c.weakDom {
			t.Errorf("%v WeaklyDominates %v = %v, want %v", c.a, c.b, got, c.weakDom)
		}
	}
}

func TestDominanceIrreflexiveAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := NewPoint(rng.Float64(), rng.Float64(), rng.Float64())
		b := NewPoint(rng.Float64(), rng.Float64(), rng.Float64())
		if a.Dominates(a) {
			t.Fatalf("dominance must be irreflexive: %v", a)
		}
		if a.Dominates(b) && b.Dominates(a) {
			t.Fatalf("dominance must be antisymmetric: %v %v", a, b)
		}
	}
}

func TestTransform(t *testing.T) {
	c := NewPoint(8.5, 55)
	p := NewPoint(7.5, 42)
	if got := p.Transform(c); !got.Equal(NewPoint(1, 13)) {
		t.Errorf("Transform = %v, want (1, 13)", got)
	}
}

// Paper Fig. 2(a): DSL(q) for q=(8.5,55) over pt1..pt8 minus pt2's role.
// p1=(5,30) must be dynamically dominated by p2=(7.5,42) w.r.t. q.
func TestDynDominatesPaperExample(t *testing.T) {
	q := NewPoint(8.5, 55)
	p1 := NewPoint(5, 30)
	p2 := NewPoint(7.5, 42)
	if !DynDominates(q, p2, p1) {
		t.Error("p2 should dynamically dominate p1 w.r.t. q (paper Fig. 2a)")
	}
	if DynDominates(q, p1, p2) {
		t.Error("p1 must not dynamically dominate p2 w.r.t. q")
	}
}

func TestDynDominatesTies(t *testing.T) {
	c := NewPoint(0, 0)
	a := NewPoint(1, 1)
	b := NewPoint(-1, 2) // |b| = (1,2)
	if !DynDominates(c, a, b) {
		t.Error("(1,1) should dyn-dominate (1,2) w.r.t. origin (tie in dim 0)")
	}
	mirror := NewPoint(-1, -1) // same transformed coords as a
	if DynDominates(c, a, mirror) || DynDominates(c, mirror, a) {
		t.Error("mirror-image points must not dominate each other")
	}
	if !DynWeaklyDominates(c, a, mirror) {
		t.Error("mirror-image points weakly dominate each other")
	}
}

func TestDynDominatesMatchesTransformedStaticDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		c := NewPoint(rng.Float64()*10, rng.Float64()*10)
		a := NewPoint(rng.Float64()*10, rng.Float64()*10)
		b := NewPoint(rng.Float64()*10, rng.Float64()*10)
		want := a.Transform(c).Dominates(b.Transform(c))
		if got := DynDominates(c, a, b); got != want {
			t.Fatalf("DynDominates(%v,%v,%v) = %v, want %v", c, a, b, got, want)
		}
	}
}

func TestUnTransform(t *testing.T) {
	c := NewPoint(5, 5)
	tr := NewPoint(2, 3)
	toward := NewPoint(10, 0)
	got := UnTransform(c, tr, toward)
	if !got.Equal(NewPoint(7, 2)) {
		t.Errorf("UnTransform = %v, want (7, 2)", got)
	}
	// Round trip: |c − UnTransform(c,t,·)| == t for any side choice.
	if !got.Transform(c).Equal(tr) {
		t.Errorf("round trip failed: %v", got.Transform(c))
	}
}

func TestUnTransformQuick(t *testing.T) {
	f := func(cx, cy, tx, ty, wx, wy float64) bool {
		c := NewPoint(norm(cx), norm(cy))
		tr := NewPoint(math.Abs(norm(tx)), math.Abs(norm(ty)))
		toward := NewPoint(norm(wx), norm(wy))
		x := UnTransform(c, tr, toward)
		return x.Transform(c).ApproxEqual(tr, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// norm maps arbitrary float64s (possibly NaN/Inf from quick) to a sane range.
func norm(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestPointString(t *testing.T) {
	if got := NewPoint(1.5, -2).String(); got != "(1.5, -2)" {
		t.Errorf("String = %q", got)
	}
}
