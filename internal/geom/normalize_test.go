package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestNormalizerRoundTrip(t *testing.T) {
	pts := []Point{NewPoint(0, 100), NewPoint(10, 200), NewPoint(5, 150)}
	n := NewNormalizer(pts)
	for _, p := range pts {
		q := n.Normalize(p)
		for i := range q {
			if q[i] < 0 || q[i] > 1 {
				t.Errorf("Normalize(%v) = %v escapes unit cube", p, q)
			}
		}
		back := n.Denormalize(q)
		if !back.ApproxEqual(p, 1e-9) {
			t.Errorf("round trip %v -> %v", p, back)
		}
	}
}

func TestNormalizerDegenerateDim(t *testing.T) {
	pts := []Point{NewPoint(3, 1), NewPoint(3, 2)}
	n := NewNormalizer(pts)
	q := n.Normalize(NewPoint(3, 1.5))
	if q[0] != 0 {
		t.Errorf("degenerate dim should normalise to 0, got %v", q[0])
	}
}

func TestNormalizedL1EqualWeights(t *testing.T) {
	n := NewNormalizerFromRect(rect(0, 0, 10, 20))
	a := NewPoint(0, 0)
	b := NewPoint(5, 10)
	// (5/10)/2 + (10/20)/2 = 0.5
	if got := n.NormalizedL1(a, b, nil); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("NormalizedL1 = %v, want 0.5", got)
	}
	// Explicit weights.
	if got := n.NormalizedL1(a, b, []float64{1, 0}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("weighted NormalizedL1 = %v, want 0.5", got)
	}
}

func TestNormalizerBounds(t *testing.T) {
	b := rect(1, 2, 5, 8)
	n := NewNormalizerFromRect(b)
	got := n.Bounds()
	if !got.Lo.Equal(b.Lo) || !got.Hi.Equal(b.Hi) {
		t.Fatalf("Bounds = %v, want %v", got, b)
	}
	if n.Dims() != 2 {
		t.Fatalf("Dims = %d", n.Dims())
	}
}

func TestNormalizerDimMismatchPanics(t *testing.T) {
	n := NewNormalizerFromRect(rect(0, 0, 1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	n.Normalize(NewPoint(1, 2, 3))
}

// Property: normalised L1 cost is translation/scale invariant.
func TestNormalizedL1ScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		a := NewPoint(rng.Float64()*10, rng.Float64()*10)
		b := NewPoint(rng.Float64()*10, rng.Float64()*10)
		n1 := NewNormalizerFromRect(rect(0, 0, 10, 10))
		c1 := n1.NormalizedL1(a, b, nil)
		scale, shift := 7.0, 3.0
		a2 := a.Scale(scale).Add(NewPoint(shift, shift))
		b2 := b.Scale(scale).Add(NewPoint(shift, shift))
		n2 := NewNormalizerFromRect(rect(shift, shift, 10*scale+shift, 10*scale+shift))
		c2 := n2.NormalizedL1(a2, b2, nil)
		if math.Abs(c1-c2) > 1e-9 {
			t.Fatalf("cost not scale invariant: %v vs %v", c1, c2)
		}
	}
}
