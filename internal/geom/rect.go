package geom

import (
	"fmt"
	"math"
)

// Rect is a closed axis-aligned hyper-rectangle [Lo, Hi]. A Rect is valid when
// Lo_i ≤ Hi_i in every dimension; degenerate rectangles (Lo_i == Hi_i) are
// valid and represent lower-dimensional slabs or points.
type Rect struct {
	Lo, Hi Point
}

// NewRect builds a Rect from two opposite corners, normalising the corner
// order per dimension.
func NewRect(a, b Point) Rect {
	lo := make(Point, len(a))
	hi := make(Point, len(a))
	for i := range a {
		lo[i] = math.Min(a[i], b[i])
		hi[i] = math.Max(a[i], b[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// PointRect returns the degenerate rectangle containing exactly p.
func PointRect(p Point) Rect {
	return Rect{Lo: p.Clone(), Hi: p.Clone()}
}

// Dims returns the dimensionality of r.
func (r Rect) Dims() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
}

// IsValid reports whether Lo ≤ Hi in every dimension.
func (r Rect) IsValid() bool {
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return len(r.Lo) > 0
}

// Contains reports whether p lies in the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	for i := range r.Lo {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsStrict reports whether p lies in the open interior of r.
func (r Rect) ContainsStrict(p Point) bool {
	for i := range r.Lo {
		if p[i] <= r.Lo[i] || p[i] >= r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s is entirely inside r (closed containment).
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point (closed
// rectangles, so touching boundaries intersect).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if r.Hi[i] < s.Lo[i] || s.Hi[i] < r.Lo[i] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of r and s and whether it is non-empty.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = math.Max(r.Lo[i], s.Lo[i])
		hi[i] = math.Min(r.Hi[i], s.Hi[i])
		if lo[i] > hi[i] {
			return Rect{}, false
		}
	}
	return Rect{Lo: lo, Hi: hi}, true
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{Lo: r.Lo.Min(s.Lo), Hi: r.Hi.Max(s.Hi)}
}

// Expand grows r to include p, in place, and returns r.
func (r *Rect) Expand(p Point) {
	for i := range r.Lo {
		if p[i] < r.Lo[i] {
			r.Lo[i] = p[i]
		}
		if p[i] > r.Hi[i] {
			r.Hi[i] = p[i]
		}
	}
}

// Area returns the d-dimensional volume of r. Degenerate rectangles have zero
// area.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// Margin returns the sum of edge lengths of r (the R*-tree margin metric).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// OverlapArea returns the volume of the intersection of r and s (zero when
// disjoint).
func (r Rect) OverlapArea(s Rect) float64 {
	a := 1.0
	for i := range r.Lo {
		lo := math.Max(r.Lo[i], s.Lo[i])
		hi := math.Min(r.Hi[i], s.Hi[i])
		if lo >= hi {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// Center returns the centre point of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for i := range r.Lo {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Corners enumerates the 2^d corner points of r. For degenerate dimensions
// duplicate corners are still produced; callers that need distinct corners
// should deduplicate.
func (r Rect) Corners() []Point {
	d := r.Dims()
	n := 1 << d
	out := make([]Point, 0, n)
	for mask := 0; mask < n; mask++ {
		c := make(Point, d)
		for i := 0; i < d; i++ {
			if mask&(1<<i) != 0 {
				c[i] = r.Hi[i]
			} else {
				c[i] = r.Lo[i]
			}
		}
		out = append(out, c)
	}
	return out
}

// NearestPoint returns the point of the closed rectangle r nearest to p
// (coordinate-wise clamping). If p is inside r, p itself is returned.
func (r Rect) NearestPoint(p Point) Point {
	n := make(Point, len(p))
	for i := range p {
		n[i] = math.Min(math.Max(p[i], r.Lo[i]), r.Hi[i])
	}
	return n
}

// MinDistL1 returns the minimum Manhattan distance from p to any point in r
// (zero if p is inside).
func (r Rect) MinDistL1(p Point) float64 {
	var s float64
	for i := range p {
		switch {
		case p[i] < r.Lo[i]:
			s += r.Lo[i] - p[i]
		case p[i] > r.Hi[i]:
			s += p[i] - r.Hi[i]
		}
	}
	return s
}

// MinDistL2 returns the minimum Euclidean distance from p to any point in r.
func (r Rect) MinDistL2(p Point) float64 {
	var s float64
	for i := range p {
		var d float64
		switch {
		case p[i] < r.Lo[i]:
			d = r.Lo[i] - p[i]
		case p[i] > r.Hi[i]:
			d = p[i] - r.Hi[i]
		}
		s += d * d
	}
	return math.Sqrt(s)
}

// TransformMinMax returns the rectangle of transformed coordinates |c−x| for
// x ∈ r: per dimension the minimum and maximum absolute distance from c to
// the interval [Lo_i, Hi_i]. It is used for branch-and-bound pruning in the
// transformed (dynamic) space.
func (r Rect) TransformMinMax(c Point) Rect {
	lo := make(Point, len(c))
	hi := make(Point, len(c))
	for i := range c {
		dLo := math.Abs(c[i] - r.Lo[i])
		dHi := math.Abs(c[i] - r.Hi[i])
		hi[i] = math.Max(dLo, dHi)
		if c[i] >= r.Lo[i] && c[i] <= r.Hi[i] {
			lo[i] = 0
		} else {
			lo[i] = math.Min(dLo, dHi)
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// String renders the rectangle as "[Lo, Hi]".
func (r Rect) String() string {
	return fmt.Sprintf("[%s, %s]", r.Lo, r.Hi)
}

// WindowRect returns the window-query rectangle centred at c with
// per-dimension half-extent |c_i − q_i| (Section II of the paper).
func WindowRect(c, q Point) Rect {
	lo := make(Point, len(c))
	hi := make(Point, len(c))
	for i := range c {
		w := math.Abs(c[i] - q[i])
		lo[i] = c[i] - w
		hi[i] = c[i] + w
	}
	return Rect{Lo: lo, Hi: hi}
}

// MBR returns the minimum bounding rectangle of the given points. It panics
// if pts is empty.
func MBR(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: MBR of empty point set")
	}
	r := PointRect(pts[0])
	for _, p := range pts[1:] {
		r.Expand(p)
	}
	return r
}
