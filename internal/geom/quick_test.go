package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// qp draws a bounded random point so quick-generated values stay finite.
type qp struct{ X, Y float64 }

func (qp) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(qp{X: r.Float64()*200 - 100, Y: r.Float64()*200 - 100})
}

func (p qp) point() Point { return NewPoint(p.X, p.Y) }

var quickCfg = &quick.Config{MaxCount: 500}

// Dominance is a strict partial order: irreflexive, asymmetric, transitive.
func TestQuickDominancePartialOrder(t *testing.T) {
	asym := func(a, b qp) bool {
		pa, pb := a.point(), b.point()
		return !(pa.Dominates(pb) && pb.Dominates(pa)) && !pa.Dominates(pa)
	}
	if err := quick.Check(asym, quickCfg); err != nil {
		t.Error(err)
	}
	trans := func(a, b, c qp) bool {
		pa, pb, pc := a.point(), b.point(), c.point()
		if pa.Dominates(pb) && pb.Dominates(pc) {
			return pa.Dominates(pc)
		}
		return true
	}
	if err := quick.Check(trans, quickCfg); err != nil {
		t.Error(err)
	}
}

// Dynamic dominance equals static dominance of the transforms.
func TestQuickDynEqualsTransformed(t *testing.T) {
	f := func(c, a, b qp) bool {
		pc, pa, pb := c.point(), a.point(), b.point()
		return DynDominates(pc, pa, pb) == pa.Transform(pc).Dominates(pb.Transform(pc))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// L1 is a metric: symmetry and triangle inequality.
func TestQuickL1Metric(t *testing.T) {
	f := func(a, b, c qp) bool {
		pa, pb, pc := a.point(), b.point(), c.point()
		if math.Abs(pa.L1(pb)-pb.L1(pa)) > 1e-9 {
			return false
		}
		return pa.L1(pc) <= pa.L1(pb)+pb.L1(pc)+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Rect intersection is commutative and contained in both operands.
func TestQuickRectIntersection(t *testing.T) {
	f := func(a1, a2, b1, b2 qp) bool {
		ra := NewRect(a1.point(), a2.point())
		rb := NewRect(b1.point(), b2.point())
		iab, okAB := ra.Intersect(rb)
		iba, okBA := rb.Intersect(ra)
		if okAB != okBA {
			return false
		}
		if !okAB {
			return !ra.Intersects(rb)
		}
		return iab.Lo.Equal(iba.Lo) && iab.Hi.Equal(iba.Hi) &&
			ra.ContainsRect(iab) && rb.ContainsRect(iab) && ra.Intersects(rb)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Union bounds both rects; area is superadditive vs the parts' overlap.
func TestQuickRectUnionArea(t *testing.T) {
	f := func(a1, a2, b1, b2 qp) bool {
		ra := NewRect(a1.point(), a2.point())
		rb := NewRect(b1.point(), b2.point())
		u := ra.Union(rb)
		if !u.ContainsRect(ra) || !u.ContainsRect(rb) {
			return false
		}
		return u.Area() >= ra.Area() && u.Area() >= rb.Area()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// The window rectangle always has q on its corner and c at its centre, and
// contains exactly the points within |c−q| per dimension.
func TestQuickWindowRect(t *testing.T) {
	f := func(c, q, x qp) bool {
		pc, pq, px := c.point(), q.point(), x.point()
		w := WindowRect(pc, pq)
		// q sits on a window corner up to floating-point rounding
		// (c − |c−q| need not be bitwise q), so allow a tiny tolerance.
		if w.MinDistL1(pq) > 1e-9 || !w.Contains(pc) {
			return false
		}
		inWindow := w.Contains(px)
		within := math.Abs(pc[0]-px[0]) <= math.Abs(pc[0]-pq[0]) &&
			math.Abs(pc[1]-px[1]) <= math.Abs(pc[1]-pq[1])
		if inWindow != within {
			// Disagreements are only legitimate within rounding distance of
			// the window boundary.
			slack := math.Abs(math.Abs(pc[0]-px[0])-math.Abs(pc[0]-pq[0])) +
				math.Abs(math.Abs(pc[1]-px[1])-math.Abs(pc[1]-pq[1]))
			return slack < 1e-9
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// NearestPoint minimises L2 among rectangle corners and the clamped point.
func TestQuickNearestPoint(t *testing.T) {
	f := func(a1, a2, p qp) bool {
		r := NewRect(a1.point(), a2.point())
		pp := p.point()
		n := r.NearestPoint(pp)
		if !r.Contains(n) {
			return false
		}
		for _, c := range r.Corners() {
			if pp.L2(c) < pp.L2(n)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Normalisation round-trips.
func TestQuickNormalizerRoundTrip(t *testing.T) {
	n := NewNormalizerFromRect(NewRect(NewPoint(-100, -100), NewPoint(100, 100)))
	f := func(p qp) bool {
		pp := p.point()
		return n.Denormalize(n.Normalize(pp)).ApproxEqual(pp, 1e-9)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// UnTransform picks the pre-image on toward's side, which is never farther
// from toward than any other pre-image.
func TestQuickUnTransformOptimality(t *testing.T) {
	f := func(c, tRaw, w qp) bool {
		pc, pw := c.point(), w.point()
		tr := NewPoint(math.Abs(tRaw.X), math.Abs(tRaw.Y))
		x := UnTransform(pc, tr, pw)
		if !x.Transform(pc).ApproxEqual(tr, 1e-9) {
			return false
		}
		// Compare against all four mirror images.
		for _, sx := range []float64{-1, 1} {
			for _, sy := range []float64{-1, 1} {
				alt := NewPoint(pc[0]+sx*tr[0], pc[1]+sy*tr[1])
				if pw.L1(alt) < pw.L1(x)-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
