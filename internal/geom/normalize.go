package geom

import "fmt"

// Normalizer rescales points into the unit hypercube with min–max
// normalisation, the preprocessing step the paper applies before computing
// solution costs ("we compute the cost of a solution by first normalizing the
// point using min-max normalization", §VI.A).
type Normalizer struct {
	lo, span Point // span_i = max_i − min_i, 1 when degenerate
}

// NewNormalizer derives normalisation bounds from the given points. It panics
// if pts is empty. Dimensions in which every point agrees get span 1 so that
// normalisation is the identity shift there.
func NewNormalizer(pts []Point) *Normalizer {
	mbr := MBR(pts)
	return NewNormalizerFromRect(mbr)
}

// NewNormalizerFromRect derives normalisation bounds from an explicit
// bounding rectangle.
func NewNormalizerFromRect(bounds Rect) *Normalizer {
	d := bounds.Dims()
	n := &Normalizer{lo: bounds.Lo.Clone(), span: make(Point, d)}
	for i := 0; i < d; i++ {
		s := bounds.Hi[i] - bounds.Lo[i]
		if s <= 0 {
			s = 1
		}
		n.span[i] = s
	}
	return n
}

// Dims returns the dimensionality the normaliser was built for.
func (n *Normalizer) Dims() int { return len(n.lo) }

// Bounds returns the rectangle the normaliser maps onto the unit cube.
func (n *Normalizer) Bounds() Rect {
	hi := n.lo.Add(n.span)
	return Rect{Lo: n.lo.Clone(), Hi: hi}
}

// Normalize maps p into [0,1]^d (values outside the fitted bounds map outside
// the unit cube, deliberately: why-not answers may move points beyond the
// observed data range).
func (n *Normalizer) Normalize(p Point) Point {
	if len(p) != len(n.lo) {
		panic(fmt.Sprintf("geom: normalise %d-dim point with %d-dim normaliser", len(p), len(n.lo)))
	}
	out := make(Point, len(p))
	for i := range p {
		out[i] = (p[i] - n.lo[i]) / n.span[i]
	}
	return out
}

// Denormalize is the inverse of Normalize.
func (n *Normalizer) Denormalize(p Point) Point {
	out := make(Point, len(p))
	for i := range p {
		out[i] = p[i]*n.span[i] + n.lo[i]
	}
	return out
}

// NormalizedL1 returns the weighted L1 distance between a and b after min–max
// normalisation: Σ_i w_i·|a_i − b_i|/span_i. This is exactly the solution
// cost of Eqn. (11) under the paper's experimental setup. w may be nil, in
// which case every dimension gets weight 1/d (equal weights summing to one,
// as in §VI.A).
func (n *Normalizer) NormalizedL1(a, b Point, w []float64) float64 {
	var s float64
	for i := range a {
		wi := 1.0 / float64(len(a))
		if w != nil {
			wi = w[i]
		}
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += wi * d / n.span[i]
	}
	return s
}
