// Package geom provides the d-dimensional geometric primitives used by the
// skyline, reverse-skyline and why-not algorithms: points, hyper-rectangles,
// static and dynamic dominance tests, the absolute-distance transform that
// re-centres the space around a query point, and distance/normalisation
// helpers.
//
// Throughout the package a smaller coordinate is preferred in every dimension
// (the convention of Definition 1 in the paper).
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a point in d-dimensional space. The zero value is an empty
// (0-dimensional) point. Points are treated as immutable by the algorithms in
// this module; helpers that derive a new point always allocate.
type Point []float64

// NewPoint returns a copy of coords as a Point.
func NewPoint(coords ...float64) Point {
	p := make(Point, len(coords))
	copy(p, coords)
	return p
}

// Dims returns the dimensionality of p.
func (p Point) Dims() int { return len(p) }

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether p and q differ by at most eps in every
// dimension.
func (p Point) ApproxEqual(q Point, eps float64) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if math.Abs(p[i]-q[i]) > eps {
			return false
		}
	}
	return true
}

// L1 returns the Manhattan distance between p and q.
func (p Point) L1(q Point) float64 {
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s
}

// L2 returns the Euclidean distance between p and q.
func (p Point) L2(q Point) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// WeightedL1 returns Σ_i w_i·|p_i − q_i|, the edit-distance cost of Eqn. (9)
// in the paper. w must have the same dimensionality as p and q.
func (p Point) WeightedL1(q Point, w []float64) float64 {
	var s float64
	for i := range p {
		s += w[i] * math.Abs(p[i]-q[i])
	}
	return s
}

// Add returns p + q.
func (p Point) Add(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Sub returns p − q.
func (p Point) Sub(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// Scale returns s·p.
func (p Point) Scale(s float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = s * p[i]
	}
	return r
}

// Min returns the coordinate-wise minimum of p and q.
func (p Point) Min(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = math.Min(p[i], q[i])
	}
	return r
}

// Max returns the coordinate-wise maximum of p and q.
func (p Point) Max(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = math.Max(p[i], q[i])
	}
	return r
}

// String renders the point as "(x1, x2, ...)".
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Dominates reports whether p statically dominates q (Definition 1): p is no
// worse in every dimension and strictly better in at least one. Smaller is
// better.
func (p Point) Dominates(q Point) bool {
	strict := false
	for i := range p {
		switch {
		case p[i] > q[i]:
			return false
		case p[i] < q[i]:
			strict = true
		}
	}
	return strict
}

// WeaklyDominates reports whether p is no worse than q in every dimension
// (ties allowed everywhere). Every point weakly dominates itself.
func (p Point) WeaklyDominates(q Point) bool {
	for i := range p {
		if p[i] > q[i] {
			return false
		}
	}
	return true
}

// Transform maps p into the space centred at origin c using the paper's
// mapping f_i(p_i) = |c_i − p_i| (Definition 2). The result is the
// per-dimension absolute distance vector from c to p.
func (p Point) Transform(c Point) Point {
	t := make(Point, len(p))
	for i := range p {
		t[i] = math.Abs(c[i] - p[i])
	}
	return t
}

// DynDominates reports whether a dynamically dominates b with respect to the
// centre point c (Definition 2): |c−a| dominates |c−b| in the transformed
// space.
func DynDominates(c, a, b Point) bool {
	strict := false
	for i := range c {
		da := math.Abs(c[i] - a[i])
		db := math.Abs(c[i] - b[i])
		switch {
		case da > db:
			return false
		case da < db:
			strict = true
		}
	}
	return strict
}

// DynWeaklyDominates reports whether |c−a| ≤ |c−b| in every dimension.
func DynWeaklyDominates(c, a, b Point) bool {
	for i := range c {
		if math.Abs(c[i]-a[i]) > math.Abs(c[i]-b[i]) {
			return false
		}
	}
	return true
}

// UnTransform maps a point t of the transformed space (absolute distances
// from c) back into the original space, choosing in each dimension the side
// of c on which toward lies. This is the minimal-distance pre-image of t with
// respect to toward: among the 2^d points x with |c−x| = t it returns the one
// closest to toward in every dimension independently.
func UnTransform(c, t, toward Point) Point {
	x := make(Point, len(c))
	for i := range c {
		if toward[i] >= c[i] {
			x[i] = c[i] + t[i]
		} else {
			x[i] = c[i] - t[i]
		}
	}
	return x
}
