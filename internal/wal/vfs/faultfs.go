package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// Op names one filesystem operation class a Rule can match. OpWrite covers
// File.Write on any handle the FS opened; OpSync covers File.Sync (files and
// directories alike); OpTruncate covers File.Truncate.
type Op string

// Operation classes.
const (
	OpOpen     Op = "open"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpTruncate Op = "truncate"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpRead     Op = "read"
	OpReadDir  Op = "readdir"
	OpMkdir    Op = "mkdir"
)

// Fault is the failure a matching rule injects.
type Fault int

// The five storage-fault kinds the robustness layer must absorb.
const (
	// FaultEIO fails the call with syscall.EIO and performs no work — the
	// classic dying-disk error.
	FaultEIO Fault = iota + 1
	// FaultENOSPC fails the call with syscall.ENOSPC. On a write, half the
	// buffer lands on disk first, the way a filling disk really behaves.
	FaultENOSPC
	// FaultShortWrite writes half the buffer and returns io.ErrShortWrite —
	// an interrupted write the kernel did not retry.
	FaultShortWrite
	// FaultSyncFail fails Sync with syscall.EIO while leaving written (but
	// possibly volatile) bytes in place — the fsyncgate failure mode.
	FaultSyncFail
	// FaultBitFlip flips one bit of the data returned by ReadFile — silent
	// media rot surfacing at read time.
	FaultBitFlip
)

func (f Fault) String() string {
	switch f {
	case FaultEIO:
		return "eio"
	case FaultENOSPC:
		return "enospc"
	case FaultShortWrite:
		return "short-write"
	case FaultSyncFail:
		return "sync-fail"
	case FaultBitFlip:
		return "bit-flip"
	default:
		return "fault(?)"
	}
}

// err maps the fault onto the errno a real filesystem would raise.
func (f Fault) err() error {
	switch f {
	case FaultENOSPC:
		return syscall.ENOSPC
	case FaultShortWrite:
		return io.ErrShortWrite
	default:
		return syscall.EIO
	}
}

// Rule describes one injected storage fault, in the style of
// faultinject.Rule: zero fields are wildcards, and OnCall pins the fault to
// the n-th matching call so a seeded schedule is deterministic.
type Rule struct {
	// Op restricts the rule to one operation class. Empty matches all.
	Op Op
	// Path, when non-empty, must be a substring of the target's base name
	// ("wal-" matches segments, "snap-" snapshots, ".tmp" checkpoint temps).
	// For renames the source name is matched.
	Path string
	// OnCall fires the rule on the n-th matching call, counted per rule
	// across the FaultFS's lifetime. Zero fires on every matching call.
	OnCall uint64
	// Count caps how many times the rule fires (0 = unlimited). A rule with
	// OnCall set fires at most once regardless.
	Count int
	// Fault is the injected failure kind.
	Fault Fault
	// BitOffset selects the byte whose lowest bit FaultBitFlip flips,
	// interpreted modulo the file length.
	BitOffset int64
}

// Injection records one fired fault, for harness reporting.
type Injection struct {
	Op    Op     `json:"op"`
	Path  string `json:"path"`
	Fault string `json:"fault"`
}

// FaultFS wraps an inner FS and injects Rule-driven faults. It is safe for
// concurrent use; disarmed (SetArmed(false)) every call is a passthrough
// plus one atomic load, so a soak harness can open and close fault windows
// on a live log.
type FaultFS struct {
	inner FS
	armed atomic.Bool

	mu       sync.Mutex
	rules    []Rule
	calls    []uint64 // per-rule matching-call counter
	fires    []int    // per-rule fire counter
	injected []Injection
}

// NewFaultFS builds a fault injector over inner (typically OS). The injector
// starts armed.
func NewFaultFS(inner FS, rules ...Rule) *FaultFS {
	f := &FaultFS{inner: inner, rules: rules, calls: make([]uint64, len(rules)), fires: make([]int, len(rules))}
	f.armed.Store(true)
	return f
}

// SetArmed opens (true) or closes (false) the fault window.
func (f *FaultFS) SetArmed(on bool) { f.armed.Store(on) }

// Armed reports whether faults currently fire.
func (f *FaultFS) Armed() bool { return f.armed.Load() }

// Injections returns every fault fired so far, in order.
func (f *FaultFS) Injections() []Injection {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Injection, len(f.injected))
	copy(out, f.injected)
	return out
}

// Fired reports how many faults have fired.
func (f *FaultFS) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.injected)
}

// match consults the rules for one operation and returns the fault to
// inject, if any. Matching-call counters advance only while armed, so a
// schedule's OnCall numbers count faultable calls inside the window.
func (f *FaultFS) match(op Op, path string) (Rule, bool) {
	if !f.armed.Load() {
		return Rule{}, false
	}
	base := filepath.Base(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, r := range f.rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(base, r.Path) {
			continue
		}
		f.calls[i]++
		if r.OnCall != 0 && f.calls[i] != r.OnCall {
			continue
		}
		if r.Count > 0 && f.fires[i] >= r.Count {
			continue
		}
		if r.OnCall != 0 && f.fires[i] >= 1 {
			continue
		}
		f.fires[i]++
		f.injected = append(f.injected, Injection{Op: op, Path: base, Fault: r.Fault.String()})
		return r, true
	}
	return Rule{}, false
}

func (f *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if r, hit := f.match(OpOpen, path); hit {
		return nil, r.Fault.err()
	}
	h, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: h, fs: f, path: path}, nil
}

func (f *FaultFS) Rename(oldPath, newPath string) error {
	if r, hit := f.match(OpRename, oldPath); hit {
		return r.Fault.err()
	}
	return f.inner.Rename(oldPath, newPath)
}

func (f *FaultFS) Remove(path string) error {
	if r, hit := f.match(OpRemove, path); hit {
		return r.Fault.err()
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	r, hit := f.match(OpRead, path)
	if hit && r.Fault != FaultBitFlip {
		return nil, r.Fault.err()
	}
	buf, err := f.inner.ReadFile(path)
	if err != nil {
		return buf, err
	}
	if hit && r.Fault == FaultBitFlip && len(buf) > 0 {
		off := r.BitOffset % int64(len(buf))
		if off < 0 {
			off += int64(len(buf))
		}
		buf[off] ^= 1
	}
	return buf, nil
}

func (f *FaultFS) ReadDir(path string) ([]fs.DirEntry, error) {
	if r, hit := f.match(OpReadDir, path); hit {
		return nil, r.Fault.err()
	}
	return f.inner.ReadDir(path)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if r, hit := f.match(OpMkdir, path); hit {
		return r.Fault.err()
	}
	return f.inner.MkdirAll(path, perm)
}

// faultFile routes the write-side handle operations back through the rules,
// carrying the path the handle was opened with.
type faultFile struct {
	File
	fs   *FaultFS
	path string
}

func (h *faultFile) Write(p []byte) (int, error) {
	r, hit := h.fs.match(OpWrite, h.path)
	if !hit {
		return h.File.Write(p)
	}
	switch r.Fault {
	case FaultENOSPC, FaultShortWrite:
		// Half the buffer reaches the file before the failure — the torn
		// write the recovery path must classify and repair.
		n, err := h.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, r.Fault.err()
	default:
		return 0, r.Fault.err()
	}
}

func (h *faultFile) Sync() error {
	if r, hit := h.fs.match(OpSync, h.path); hit {
		return r.Fault.err()
	}
	return h.File.Sync()
}

func (h *faultFile) Truncate(size int64) error {
	if r, hit := h.fs.match(OpTruncate, h.path); hit {
		return r.Fault.err()
	}
	return h.File.Truncate(size)
}
