// Package vfs is the filesystem seam of the durability subsystem. The WAL
// performs every open, write, fsync, rename, remove and read through the FS
// interface instead of the os package, so the storage-fault harness can slide
// a deterministic fault injector (FaultFS) between the log and the real disk
// and prove — rather than hope — that an EIO on fsync, an ENOSPC mid-rotation,
// a short write or silent bit rot degrades the service instead of corrupting
// it.
//
// Production code uses OS, a zero-cost passthrough to the os package. Tests
// and the fault harnesses wrap it in a FaultFS built from Rules, the same
// site-and-visit rule style internal/engine/faultinject uses for compute
// faults.
package vfs

import (
	"io/fs"
	"os"
)

// File is the subset of *os.File the WAL needs on an open handle. Every
// method can fail the way the real syscall can; the WAL treats any failure
// as a storage fault.
type File interface {
	// Write appends or overwrites bytes at the current offset. A short write
	// returns n < len(p) with a non-nil error, exactly like *os.File.
	Write(p []byte) (n int, err error)
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Close releases the handle.
	Close() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
	// Stat returns file metadata.
	Stat() (fs.FileInfo, error)
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface the WAL runs on. All paths are ordinary
// slash-joined OS paths; implementations must be safe for concurrent use.
type FS interface {
	// OpenFile opens path with os.OpenFile semantics (flags, permissions,
	// O_EXCL collisions). Directories may be opened read-only for fsync.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// Rename atomically renames old to new within the same directory.
	Rename(oldPath, newPath string) error
	// Remove deletes a file.
	Remove(path string) error
	// ReadFile reads a whole file.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists a directory in name order.
	ReadDir(path string) ([]fs.DirEntry, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
}

// OS is the production filesystem: a direct passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		// Return a typed nil-free interface value only on success: callers
		// compare the error, not the handle.
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldPath, newPath string) error         { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }
func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error)   { return os.ReadDir(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
