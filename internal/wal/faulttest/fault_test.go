package faulttest

import (
	"testing"
)

// TestFaultMatrix runs the full default fault matrix at smoke length: every
// fault kind at every write-path site, plus the rot-and-scrub phase and the
// final recovery check in each trial. `make race-core` runs this under -race;
// cmd/fsfault runs the same harness at soak length.
func TestFaultMatrix(t *testing.T) {
	res, err := Run(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.DegradedRecovered == 0 {
		t.Error("no degraded→recovered transition was exercised")
	}
	if res.CheckpointFaults == 0 {
		t.Error("no non-fatal checkpoint fault was exercised")
	}
	if res.RotFound != res.RotInjected {
		t.Errorf("scrubber found %d of %d injected rot sites", res.RotFound, res.RotInjected)
	}
	if res.ScrubQuarantined == 0 || res.ScrubSalvaged == 0 {
		t.Errorf("scrub exercised quarantined=%d salvaged=%d, want both > 0",
			res.ScrubQuarantined, res.ScrubSalvaged)
	}
	if res.FaultsFired == 0 {
		t.Error("no faults fired at all — the injector is not wired in")
	}
}

// TestSecondSeed guards against the matrix only passing on the default seed's
// particular stream shape.
func TestSecondSeed(t *testing.T) {
	res, err := Run(Options{Dir: t.TempDir(), Seed: 7, Mutations: 48})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}
