// Package faulttest is the storage-fault harness for the WAL: the proof that
// a misbehaving disk degrades the service instead of corrupting it.
//
// Where crashtest kills the process at durability boundaries, faulttest keeps
// the process alive and makes the filesystem lie: a vfs.FaultFS slides
// between the log and the disk and injects EIO, ENOSPC, short writes, fsync
// failures and read-time bit flips on a deterministic schedule. Each trial
// runs a seeded mutating workload against a durable DB alongside a map-model
// oracle, opens a fault window, and checks the storage-fault contract:
//
//   - a faulted mutation is refused with ErrReadOnly, never half-applied:
//     the model omits it, the DB omits it, and they agree forever after;
//   - while degraded, reverse-skyline probes answer identically to a fresh
//     oracle build — queries are never collateral damage;
//   - the degraded condition is sticky until ReopenWAL, which must succeed
//     once the window closes (the degraded→recovered transition);
//   - a faulted checkpoint is non-fatal and leaves no *.tmp behind;
//   - injected media rot in sealed segments and snapshots is found by one
//     Scrub pass (100% detection), quarantined — salvaging by checkpoint
//     when no snapshot covers the damage — and never degrades the log;
//   - a fresh recovery of the directory equals the model exactly.
//
// The same harness backs the short `go test` smoke (run under -race by
// `make race-core`) and the cmd/fsfault soak binary; only seeds and workload
// length differ.
package faulttest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/wal"
	"repro/internal/wal/crashtest"
	"repro/internal/wal/vfs"
)

// Class says what a trial's fault window is expected to break.
type Class int

// Trial classes.
const (
	// ClassMutate faults the mutation path (append write, fsync, rotation):
	// the log must degrade fail-stop and recover via Reopen.
	ClassMutate Class = iota + 1
	// ClassCheckpoint faults the snapshot path (temp write, rename): the
	// checkpoint must fail cleanly — no degradation, no *.tmp residue.
	ClassCheckpoint
)

// Trial is one fault-window experiment: the rule the window arms and the
// contract class it must satisfy. Every trial additionally runs the rot-and-
// scrub phase and the final recovery check.
type Trial struct {
	Name  string   `json:"name"`
	Class Class    `json:"-"`
	Rule  vfs.Rule `json:"-"`
}

// DefaultTrials is the fault matrix: every fault kind the vfs can inject, at
// every write-path call site the WAL exercises. Read-time bit flips are
// covered by the rot-and-scrub phase each trial runs.
func DefaultTrials() []Trial {
	return []Trial{
		{Name: "append-write-eio", Class: ClassMutate,
			Rule: vfs.Rule{Op: vfs.OpWrite, Path: "wal-", Fault: vfs.FaultEIO}},
		{Name: "append-write-enospc", Class: ClassMutate,
			Rule: vfs.Rule{Op: vfs.OpWrite, Path: "wal-", Fault: vfs.FaultENOSPC}},
		{Name: "append-write-short", Class: ClassMutate,
			Rule: vfs.Rule{Op: vfs.OpWrite, Path: "wal-", Fault: vfs.FaultShortWrite}},
		{Name: "fsync-fail", Class: ClassMutate,
			Rule: vfs.Rule{Op: vfs.OpSync, Path: "wal-", Fault: vfs.FaultSyncFail}},
		{Name: "rotate-open-eio", Class: ClassMutate,
			Rule: vfs.Rule{Op: vfs.OpOpen, Path: "wal-", Fault: vfs.FaultEIO}},
		{Name: "snapshot-write-eio", Class: ClassCheckpoint,
			Rule: vfs.Rule{Op: vfs.OpWrite, Path: ".tmp", Fault: vfs.FaultEIO}},
		{Name: "snapshot-write-enospc", Class: ClassCheckpoint,
			Rule: vfs.Rule{Op: vfs.OpWrite, Path: ".tmp", Fault: vfs.FaultENOSPC}},
		{Name: "snapshot-rename-eio", Class: ClassCheckpoint,
			Rule: vfs.Rule{Op: vfs.OpRename, Path: ".tmp", Fault: vfs.FaultEIO}},
	}
}

// Options sizes one harness run. The zero value is a small smoke; cmd/fsfault
// scales seeds and workload length up for soaking.
type Options struct {
	// Dir is the scratch root; every trial gets its own subdirectory.
	// Required.
	Dir string
	// Mutations is the workload length per trial. Default 60, minimum 30 (the
	// phase layout needs room for a fault window and a post-snapshot tail).
	Mutations int
	// Seed drives the deterministic mutation stream. Default 1.
	Seed int64
	// SegmentBytes forces frequent rotation so sealed segments exist for the
	// scrubber and the rotation site is reachable. Default 256.
	SegmentBytes int64
	// Trials is the fault matrix; empty runs DefaultTrials.
	Trials []Trial
}

func (o Options) withDefaults() Options {
	if o.Mutations < 30 {
		o.Mutations = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 256
	}
	if len(o.Trials) == 0 {
		o.Trials = DefaultTrials()
	}
	return o
}

// Result is the schema-versioned outcome of one harness run; cmd/fsfault
// appends it to BENCH_fsfault.json.
type Result struct {
	SchemaVersion int    `json:"schema_version"`
	Harness       string `json:"harness"`

	Trials       int `json:"trials"`
	FaultsFired  int `json:"faults_fired"`
	RotInjected  int `json:"rot_injected"`
	RotFound     int `json:"rot_found"`
	ReadOnlyErrs int `json:"read_only_refusals"`

	// DegradedRecovered counts full degraded→writable transitions proven by a
	// refused mutation followed by a successful ReopenWAL and re-applied
	// mutation.
	DegradedRecovered int `json:"degraded_recovered"`
	// CheckpointFaults counts checkpoint failures proven non-fatal (no
	// degradation, no temp residue, later checkpoint succeeds).
	CheckpointFaults int `json:"checkpoint_faults_nonfatal"`

	ScrubQuarantined int `json:"scrub_quarantined"`
	ScrubSalvaged    int `json:"scrub_salvaged"`

	Mutations  int   `json:"mutations_per_trial"`
	Seed       int64 `json:"seed"`
	DurationMS int64 `json:"duration_ms"`

	// Violations lists every broken storage-fault invariant; empty means the
	// contract held in every trial.
	Violations []string `json:"violations"`
}

// Run executes the trial matrix and aggregates the outcome. An error means
// the harness itself broke (unusable scratch dir); contract violations are
// reported in Result.Violations instead.
func Run(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("faulttest: Options.Dir is required")
	}
	start := time.Now()
	res := &Result{
		SchemaVersion: 1,
		Harness:       "wal-faulttest/v1",
		Trials:        len(opts.Trials),
		Mutations:     opts.Mutations,
		Seed:          opts.Seed,
	}
	for i, tr := range opts.Trials {
		if err := runTrial(opts, i, tr, res); err != nil {
			return nil, err
		}
	}
	res.DurationMS = time.Since(start).Milliseconds()
	return res, nil
}

const (
	probeDims    = 2
	probeIDBase  = 3_000_000
	reopenIDBase = 4_000_000
)

func probePoints() []repro.Point {
	return []repro.Point{
		repro.NewPoint(500, 500),
		repro.NewPoint(100, 900),
		repro.NewPoint(900, 100),
	}
}

// trialState carries one trial's live objects through its phases.
type trialState struct {
	opts    Options
	idx     int
	tr      Trial
	dir     string
	ffs     *vfs.FaultFS
	db      *repro.DB
	base    []repro.Item
	stream  []crashtest.Mutation
	applied int // stream prefix applied to both DB and model
	extra   []repro.Item
	res     *Result
}

func (s *trialState) violate(format string, args ...any) {
	s.res.Violations = append(s.res.Violations,
		fmt.Sprintf("[%s seed %d] ", s.tr.Name, s.opts.Seed)+fmt.Sprintf(format, args...))
}

// model is the oracle item set: the applied stream prefix over the base,
// plus the harness's own probe inserts.
func (s *trialState) model() []repro.Item {
	items := crashtest.Replay(s.base, s.stream[:s.applied])
	items = append(items, s.extra...)
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
	return items
}

// checkQueries compares the live DB's answers against a fresh oracle build of
// the model — the "queries are never collateral damage" invariant.
func (s *trialState) checkQueries(phase string) bool {
	oracle := repro.NewDBWithOptions(probeDims, s.model(), repro.DBOptions{})
	for _, q := range probePoints() {
		if !sameIDs(idsOf(s.db.ReverseSkylineBBRS(q)), idsOf(oracle.ReverseSkylineBBRS(q))) {
			s.violate("%s: RSL(%v) diverged from oracle", phase, q)
			return false
		}
		if !sameIDs(idsOf(s.db.DynamicSkyline(q)), idsOf(oracle.DynamicSkyline(q))) {
			s.violate("%s: DSL(%v) diverged from oracle", phase, q)
			return false
		}
	}
	return true
}

// apply runs one stream mutation against the DB and, on success, advances the
// model. The bool reports success; the error is the mutation's failure.
func (s *trialState) apply() (bool, error) {
	m := s.stream[s.applied]
	var err error
	if m.Op == crashtest.OpInsert {
		_, err = s.db.InsertDurable(m.Item)
	} else {
		_, err = s.db.DeleteDurable(m.Item)
	}
	if err != nil {
		return false, err
	}
	s.applied++
	return true, nil
}

func runTrial(opts Options, idx int, tr Trial, res *Result) error {
	root := filepath.Join(opts.Dir, fmt.Sprintf("t%03d-%s", idx, tr.Name))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("faulttest: scratch dir: %w", err)
	}
	walDir := filepath.Join(root, "wal")

	// The injector starts disarmed: the trial opens the window explicitly.
	ffs := vfs.NewFaultFS(vfs.OS, tr.Rule)
	ffs.SetArmed(false)

	base := crashtest.BaseItems(opts.Seed)
	db, _, err := repro.OpenDurable(probeDims, base, repro.DBOptions{
		Durability: &repro.DurabilityOptions{
			Dir:          walDir,
			Policy:       wal.SyncAlways,
			SegmentBytes: opts.SegmentBytes,
			FS:           ffs,
		},
	})
	if err != nil {
		return fmt.Errorf("faulttest: open %s: %w", tr.Name, err)
	}
	s := &trialState{
		opts: opts, idx: idx, tr: tr, dir: walDir, ffs: ffs, db: db,
		base: base, stream: crashtest.Stream(opts.Seed, opts.Mutations), res: res,
	}
	closed := false
	defer func() {
		if !closed {
			_ = db.Close()
		}
	}()

	// Phase A — healthy prefix: the first third of the stream, no faults.
	healthy := opts.Mutations / 3
	for s.applied < healthy {
		if _, err := s.apply(); err != nil {
			s.violate("healthy mutation %d failed: %v", s.applied+1, err)
			return nil
		}
	}
	if !s.checkQueries("healthy") {
		return nil
	}

	// Phase B — the fault window.
	switch tr.Class {
	case ClassMutate:
		if !s.mutateWindow() {
			return nil
		}
	case ClassCheckpoint:
		if !s.checkpointWindow() {
			return nil
		}
	}

	// Phase C — the rest of the stream, healthy again, ending with a real
	// snapshot and a post-snapshot tail of sealed segments for the scrubber.
	tail := 8
	for s.applied < len(s.stream)-tail {
		if _, err := s.apply(); err != nil {
			s.violate("post-window mutation %d failed: %v", s.applied+1, err)
			return nil
		}
	}
	if err := db.Checkpoint(); err != nil {
		s.violate("pre-rot checkpoint failed: %v", err)
		return nil
	}
	for s.applied < len(s.stream) {
		if _, err := s.apply(); err != nil {
			s.violate("post-snapshot mutation %d failed: %v", s.applied+1, err)
			return nil
		}
	}

	// Phase D — inject rot on disk and scrub it out.
	if !s.rotAndScrub() {
		return nil
	}

	// Phase E — the directory must recover to exactly the model with the
	// production filesystem, no injector in sight.
	if err := db.Close(); err != nil {
		s.violate("close: %v", err)
		return nil
	}
	closed = true
	db2, rec, err := repro.OpenDurable(probeDims, base, repro.DBOptions{
		Durability: &repro.DurabilityOptions{Dir: walDir, Policy: wal.SyncAlways},
	})
	if err != nil {
		s.violate("fresh recovery failed: %v", err)
		return nil
	}
	defer func() { _ = db2.Close() }()
	if rec.TornTail {
		s.violate("fresh recovery repaired a torn tail in a cleanly closed log")
	}
	if got, want := db2.DurableItems(), s.model(); !sameItems(got, want) {
		s.violate("recovered %d items != model %d items", len(got), len(want))
		return nil
	}
	oracle := repro.NewDBWithOptions(probeDims, s.model(), repro.DBOptions{})
	for _, q := range probePoints() {
		if !sameIDs(idsOf(db2.ReverseSkylineBBRS(q)), idsOf(oracle.ReverseSkylineBBRS(q))) {
			s.violate("recovered RSL(%v) diverged from oracle", q)
			return nil
		}
	}
	if _, err := db2.InsertDurable(repro.Item{ID: reopenIDBase + idx, Point: repro.NewPoint(2, 2)}); err != nil {
		s.violate("post-recovery append failed: %v", err)
	}
	res.FaultsFired += ffs.Fired()
	return nil
}

// mutateWindow arms the rule and drives mutations into it: the faulted
// mutation must be refused read-only, the condition must be sticky, queries
// must keep answering, and Reopen must clear it once the window closes.
func (s *trialState) mutateWindow() bool {
	s.ffs.SetArmed(true)
	faulted := false
	for s.applied < len(s.stream)*2/3 {
		ok, err := s.apply()
		if ok {
			continue
		}
		if !errors.Is(err, repro.ErrReadOnly) {
			s.violate("faulted mutation returned %v, want ErrReadOnly", err)
			return false
		}
		s.res.ReadOnlyErrs++
		faulted = true
		break
	}
	if !faulted {
		s.violate("fault window closed without firing (%d faultable calls seen)", s.ffs.Fired())
		return false
	}
	if s.db.StorageFailed() == nil {
		s.violate("mutation refused read-only but StorageFailed() is nil")
		return false
	}
	// Sticky: the next attempt must be refused before touching the disk.
	if _, err := s.apply(); !errors.Is(err, repro.ErrReadOnly) {
		s.violate("degraded log accepted a mutation (err=%v)", err)
		return false
	}
	s.res.ReadOnlyErrs++
	// Queries serve the intact in-memory state throughout.
	if !s.checkQueries("degraded") {
		return false
	}
	// Window closes; the probe path must bring the log back.
	s.ffs.SetArmed(false)
	if err := s.db.ReopenWAL(); err != nil {
		s.violate("ReopenWAL after window closed: %v", err)
		return false
	}
	if s.db.StorageFailed() != nil {
		s.violate("StorageFailed() still set after successful Reopen")
		return false
	}
	// The refused mutation is re-applied — nothing acked was lost, nothing
	// refused leaked in.
	if _, err := s.apply(); err != nil {
		s.violate("re-applying refused mutation after recovery: %v", err)
		return false
	}
	s.res.DegradedRecovered++
	return s.checkQueries("recovered")
}

// checkpointWindow arms the rule and checkpoints into it: the failure must be
// non-fatal — mutations keep flowing, no *.tmp residue, and the next
// checkpoint succeeds once the window closes.
func (s *trialState) checkpointWindow() bool {
	s.ffs.SetArmed(true)
	err := s.db.Checkpoint()
	s.ffs.SetArmed(false)
	if err == nil {
		s.violate("checkpoint succeeded inside the fault window")
		return false
	}
	if s.db.StorageFailed() != nil {
		s.violate("failed checkpoint degraded the log: %v", s.db.StorageFailed())
		return false
	}
	if errors.Is(err, repro.ErrReadOnly) {
		s.violate("failed checkpoint reported read-only: %v", err)
		return false
	}
	tmps, globErr := filepath.Glob(filepath.Join(s.dir, "*.tmp"))
	if globErr == nil && len(tmps) > 0 {
		s.violate("failed checkpoint left temp files behind: %v", tmps)
		return false
	}
	// Mutations are unaffected by a failed checkpoint.
	if _, err := s.apply(); err != nil {
		s.violate("mutation after failed checkpoint: %v", err)
		return false
	}
	// And the retry lands once the fault clears.
	if err := s.db.Checkpoint(); err != nil {
		s.violate("checkpoint retry after window closed: %v", err)
		return false
	}
	s.res.CheckpointFaults++
	return true
}

// rotAndScrub flips one bit in a sealed segment and in the oldest snapshot,
// then requires a single Scrub pass to find every rotten file, quarantine it
// (salvaging by checkpoint where needed) and leave the log writable.
func (s *trialState) rotAndScrub() bool {
	segs, snaps, err := walFiles(s.dir)
	if err != nil {
		s.violate("listing wal dir: %v", err)
		return false
	}
	if len(segs) < 2 {
		s.violate("phase layout bug: no sealed segment to rot (have %d)", len(segs))
		return false
	}
	if len(snaps) == 0 {
		s.violate("phase layout bug: no snapshot to rot")
		return false
	}
	// segs is name-sorted and the sequence numbers are zero-padded hex, so
	// the last entry is the active segment; everything before it is sealed.
	rotted := []string{segs[0], snaps[0]}
	for _, name := range rotted {
		if err := flipBit(filepath.Join(s.dir, name)); err != nil {
			s.violate("injecting rot into %s: %v", name, err)
			return false
		}
	}
	s.res.RotInjected += len(rotted)

	rep, err := s.db.ScrubWAL(repro.ScrubConfig{})
	if err != nil {
		s.violate("scrub failed: %v (report %+v)", err, rep)
		return false
	}
	s.res.RotFound += rep.Corruptions
	s.res.ScrubQuarantined += rep.Quarantined
	s.res.ScrubSalvaged += rep.Salvaged
	if rep.Corruptions != len(rotted) {
		s.violate("scrub found %d corruptions, injected %d", rep.Corruptions, len(rotted))
		return false
	}
	if rep.Quarantined != len(rotted) {
		s.violate("scrub quarantined %d files, want %d", rep.Quarantined, len(rotted))
		return false
	}
	if rep.Degraded || s.db.StorageFailed() != nil {
		s.violate("scrub degraded the log despite salvage: %+v", rep)
		return false
	}
	// The rotten files must be out of the recovery namespace.
	for _, name := range rotted {
		if _, err := os.Stat(filepath.Join(s.dir, name)); err == nil {
			s.violate("rotten file %s still in place after quarantine", name)
			return false
		}
	}
	// The log is writable and correct after the scrub.
	probe := repro.Item{ID: probeIDBase + s.idx, Point: repro.NewPoint(3, 3)}
	if _, err := s.db.InsertDurable(probe); err != nil {
		s.violate("mutation after scrub: %v", err)
		return false
	}
	s.extra = append(s.extra, probe)
	return s.checkQueries("post-scrub")
}

// walFiles lists segment and snapshot file names in dir, name-sorted.
func walFiles(dir string) (segs, snaps []string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			segs = append(segs, name)
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			snaps = append(snaps, name)
		}
	}
	sort.Strings(segs)
	sort.Strings(snaps)
	return segs, snaps, nil
}

// flipBit flips the low bit of the middle byte of a file — one bit of silent
// media rot, exactly what the CRCs exist to catch.
func flipBit(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(buf) == 0 {
		return fmt.Errorf("%s is empty", path)
	}
	buf[len(buf)/2] ^= 1
	return os.WriteFile(path, buf, 0o644)
}

func idsOf(items []repro.Item) []int {
	ids := make([]int, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Ints(ids)
	return ids
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameItems(a, b []repro.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Point.Equal(b[i].Point) {
			return false
		}
	}
	return true
}
