// Package wal is the durability subsystem: a write-ahead log for
// Insert/Delete mutations plus checksummed snapshot persistence, so the
// derived state the query engine rebuilds from the item set (R-tree index,
// approximate store, memoisation caches) survives a process crash.
//
// On disk a log directory holds numbered segment files (`wal-<firstseq>.log`)
// of CRC32C-framed, length-prefixed mutation records, and snapshot files
// (`snap-<seq>.snap`) each carrying a full item set with a CRC32C trailer.
// Appends go to the active (newest) segment and rotate at a size threshold;
// the fsync policy decides when acknowledged appends are durable (always /
// interval / never). Checkpoint writes a new snapshot via the
// temp-write → fsync → rename → dir-fsync dance and then compacts: segments
// wholly covered by the oldest *retained* snapshot are deleted, so even if
// the newest snapshot is later found corrupt, an older snapshot plus the
// retained tail still reconstructs the exact state.
//
// Recovery (Open) loads the newest snapshot that validates, replays the WAL
// tail above its sequence number, tolerates a torn or truncated final record
// by truncating it away (the crash interrupted an unacknowledged write), and
// hard-fails on mid-log corruption — a bad record with valid data after it —
// with a segment/record/offset diagnostic, because silently dropping
// acknowledged mutations is worse than refusing to start.
//
// Every write and fsync boundary passes through an optional Hook
// (cancel.Hook, the same interface internal/engine/faultinject implements),
// which is how the crashtest harness SIGKILLs a child process at exact
// durability boundaries. All filesystem access goes through Options.FS
// (package vfs), which is how the storage-fault harness injects EIO, ENOSPC,
// short writes, fsync failures and bit rot at those same boundaries.
//
// Failures are fail-safe rather than fail-stop: the first write or fsync
// error parks the log in a degraded state with a typed StorageError — appends
// and checkpoints refuse, already-recovered state keeps serving reads — and
// Reopen re-arms the log once the disk recovers, truncating any torn frame
// past the last acknowledged byte and verifying the acknowledged prefix
// still decodes. Limping along after a lost write is how acknowledged data
// quietly disappears; so is refusing to ever come back from a full disk.
// Scrub walks sealed segments and snapshots for latent rot before recovery
// needs them, quarantining damage a newer snapshot covers.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cancel"
	"repro/internal/obs"
	"repro/internal/rtree"
	"repro/internal/wal/vfs"
)

// castagnoli is the CRC32C table shared by record frames and snapshots
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy decides when an Append is made durable with fsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs before Append returns: an acknowledged mutation is
	// durable. The safest and the default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when at least Options.Interval has passed since the
	// last fsync: a crash loses at most one interval of acknowledged
	// mutations.
	SyncInterval
	// SyncNever leaves fsync to the OS page cache (and Close/Checkpoint): a
	// crash may lose any unsynced acknowledged mutation. For bulk loads and
	// tests only.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the CLI spellings onto policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// Hook sites: the durability boundaries the crashtest harness kills at. Each
// fires at most once per operation, in the documented position, so a
// fault-injection rule pinned to (site, visit) is a deterministic crash point.
const (
	// SiteAppend fires after a record frame is encoded, before its write
	// syscall: a kill here loses the record entirely (never acknowledged).
	SiteAppend = "wal.append"
	// SiteWrite fires after the frame's write returned, before the fsync
	// decision: a kill here may leave a torn or unsynced record.
	SiteWrite = "wal.write"
	// SiteSync fires after a successful fsync: a kill here loses nothing that
	// was acknowledged.
	SiteSync = "wal.sync"
	// SiteRotate fires after a new segment file is created and made durable.
	SiteRotate = "wal.rotate"
	// SiteSnapshotWrite fires after a checkpoint's temp snapshot is written
	// and fsynced, before the rename: a kill here leaves a stray .tmp that
	// recovery ignores.
	SiteSnapshotWrite = "wal.snapshot.write"
	// SiteSnapshotRename fires after the snapshot rename and directory fsync,
	// before compaction deletes anything.
	SiteSnapshotRename = "wal.snapshot.rename"
	// SiteReopen fires after a degraded log is successfully re-armed, before
	// Reopen returns: a kill here must leave a log that recovers cleanly.
	SiteReopen = "wal.reopen"
	// SiteScrubQuarantine fires before a damaged file is renamed out of the
	// log's namespace: a kill here leaves the damage in place for the next
	// scrub or recovery salvage to find again.
	SiteScrubQuarantine = "wal.scrub.quarantine"
)

// Default tuning. SegmentBytes is deliberately small-ish: rotation is cheap
// and small segments bound both compaction granularity and torn-tail loss.
const (
	DefaultSegmentBytes  = 4 << 20
	DefaultSyncInterval  = 50 * time.Millisecond
	DefaultKeepSnapshots = 2
)

// Options configures a log directory. The zero value of every field gets the
// documented default; Dir is required.
type Options struct {
	// Dir is the log directory, created if missing. One directory belongs to
	// one dataset lineage: recovery refuses logs that do not replay cleanly.
	Dir string
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the SyncInterval flush period (default 50ms).
	Interval time.Duration
	// SegmentBytes rotates the active segment when it would exceed this size
	// (default 4 MiB).
	SegmentBytes int64
	// KeepSnapshots is how many newest snapshots survive compaction (default
	// 2; the extra one is the fallback if the newest turns out corrupt).
	KeepSnapshots int
	// Hook, when non-nil, is visited at every durability boundary (Site*
	// constants) — the crash-injection entry point.
	Hook cancel.Hook
	// Metrics, when non-nil, receives fsync latency, append/byte counters and
	// recovery duration.
	Metrics *Metrics
	// FS is the filesystem the log runs on (default vfs.OS, the passthrough
	// to the os package) — the storage-fault-injection entry point.
	FS vfs.FS
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = vfs.OS
	}
	if o.Interval <= 0 {
		o.Interval = DefaultSyncInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = DefaultKeepSnapshots
	}
	return o
}

// Stats is a point-in-time description of a live log.
type Stats struct {
	Dir      string `json:"dir"`
	Policy   string `json:"policy"`
	LastSeq  uint64 `json:"last_seq"`
	Segments int    `json:"segments"`
	// ActiveBytes is the size of the active segment.
	ActiveBytes int64 `json:"active_bytes"`
	// AppendedBytes counts frame bytes written since Open.
	AppendedBytes int64 `json:"appended_bytes"`
}

// Log is an open write-ahead log. All methods are safe for concurrent use;
// appends are serialised internally, but callers that must keep WAL order
// identical to apply order (every real user) serialise append+apply
// themselves.
type Log struct {
	opts Options

	mu         sync.Mutex
	f          vfs.File // active segment
	activeName string   // file name of the active segment
	size       int64    // bytes in the active segment
	segments   int      // segment files on disk, active included
	seq        uint64   // last assigned sequence number
	appended   int64    // frame bytes written since Open
	lastSync   int64    // obs.Now() of the last fsync
	dirty      bool     // unsynced appended bytes exist
	closed     bool
	hookN      uint64 // monotone hook-visit counter
	buf        []byte // frame scratch, reused across appends

	// Degraded-mode state. failed is the sticky storage fault (nil while
	// healthy); committed/committedSeq track the acknowledged prefix of the
	// active segment so Reopen knows exactly where to cut; corruptPath and
	// corruptNeed carry the salvage target of a corruption-kind failure.
	failed       *StorageError
	committed    int64  // acknowledged bytes in the active segment
	committedSeq uint64 // last acknowledged sequence number
	corruptPath  string
	corruptNeed  uint64
}

// markCommitted records that every byte and sequence number currently in the
// active segment has been acknowledged to a caller. Under SyncAlways that
// point is the successful fsync; under the weaker policies it is the
// successful write (the caller accepts the durability lag). Reopen truncates
// back to exactly this point. Called with l.mu held.
func (l *Log) markCommitted() {
	l.committed = l.size
	l.committedSeq = l.seq
}

// visit consults the crash-injection hook at one durability boundary. Called
// with l.mu held; the hook may never return (SIGKILL).
func (l *Log) visit(site string) {
	if l.opts.Hook != nil {
		l.hookN++
		l.opts.Hook.Visit(site, l.hookN)
	}
}

func (l *Log) guard() error {
	if l.failed != nil {
		return l.failed
	}
	if l.closed {
		return errors.New("wal: log is closed")
	}
	return nil
}

// activePath returns the path of the active segment. Called with l.mu held.
func (l *Log) activePath() string {
	return filepath.Join(l.opts.Dir, l.activeName)
}

// LastSeq returns the sequence number of the last appended record (0 before
// any append, including the recovered history).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Stats returns current log statistics.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Dir:           l.opts.Dir,
		Policy:        l.opts.Policy.String(),
		LastSeq:       l.seq,
		Segments:      l.segments,
		ActiveBytes:   l.size,
		AppendedBytes: l.appended,
	}
}

// Append commits one mutation record to the log and returns its sequence
// number. Under SyncAlways a nil error means the record is durable; under
// the weaker policies it means the record is written (durability follows at
// the next fsync). Appends after a write/fsync failure return the sticky
// failure.
func (l *Log) Append(op Op, it rtree.Item) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.guard(); err != nil {
		return 0, err
	}
	seq := l.seq + 1
	frame, err := appendFrame(l.buf[:0], Record{Seq: seq, Op: op, Item: it})
	if err != nil {
		return 0, err
	}
	l.buf = frame[:0]
	if l.size > 0 && l.size+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(seq); err != nil {
			return 0, err
		}
	}
	l.visit(SiteAppend)
	n, err := l.f.Write(frame)
	l.size += int64(n)
	l.appended += int64(n)
	if err != nil {
		// The frame may be torn on disk past the acknowledged prefix; Reopen
		// truncates it away before re-arming.
		return 0, l.failStorage(StorageSiteAppend, l.activePath(), err)
	}
	l.dirty = true
	l.seq = seq
	if m := l.opts.Metrics; m != nil {
		m.Appends.Inc()
		m.AppendedBytes.Add(uint64(len(frame)))
		m.LastSeq.Set(float64(seq))
	}
	l.visit(SiteWrite)
	switch l.opts.Policy {
	case SyncAlways:
		// Acknowledgement requires durability: the record joins the committed
		// prefix only when the fsync lands (inside syncLocked). On failure the
		// caller gets an error and Reopen will cut the record back off.
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncInterval:
		l.markCommitted()
		if obs.Since(l.lastSync) >= l.opts.Interval {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	default:
		l.markCommitted()
	}
	return seq, nil
}

// Sync forces an fsync of the active segment, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.guard(); err != nil {
		return err
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := obs.Now()
	if err := l.f.Sync(); err != nil {
		return l.failStorage(StorageSiteSync, l.activePath(), err)
	}
	l.dirty = false
	l.lastSync = obs.Now()
	l.markCommitted()
	if m := l.opts.Metrics; m != nil {
		m.Fsyncs.Inc()
		m.FsyncDur.ObserveSince(start)
	}
	l.visit(SiteSync)
	return nil
}

// rotateLocked seals the active segment (fsync + close) and opens a fresh one
// whose name records the first sequence number it will hold.
func (l *Log) rotateLocked(nextSeq uint64) error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return l.failStorage(StorageSiteRotate, l.activePath(), err)
	}
	l.f = nil
	f, err := createSegment(l.opts.FS, l.opts.Dir, nextSeq)
	if err != nil {
		// The old segment is closed and fully synced; Reopen re-opens it for
		// append and retries the rotation on the next oversized append.
		return l.failStorage(StorageSiteRotate, filepath.Join(l.opts.Dir, segmentName(nextSeq)), err)
	}
	l.f = f
	l.activeName = segmentName(nextSeq)
	l.size = 0
	l.committed = 0
	l.segments++
	if m := l.opts.Metrics; m != nil {
		m.Rotations.Inc()
	}
	l.visit(SiteRotate)
	return nil
}

// Checkpoint persists a snapshot of the full item set as of appliedSeq (the
// caller's view of the last applied mutation — capture LastSeq under the same
// lock that serialises your appends) and compacts: segments wholly covered by
// the oldest retained snapshot are deleted, as are snapshots beyond
// KeepSnapshots. Appends are blocked for the duration; checkpoints are an
// admin-rate operation.
func (l *Log) Checkpoint(items []rtree.Item, appliedSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	// An IO-degraded log cannot checkpoint (the sync below must land). A
	// corruption-degraded log MUST be allowed to: a fresh snapshot covering
	// the rotten segment is exactly what makes it quarantinable — checkpoint
	// is the self-healing path, not a victim of the condition.
	if l.failed != nil && l.failed.Kind != KindCorruption {
		return l.failed
	}
	if appliedSeq > l.seq {
		return fmt.Errorf("wal: checkpoint at seq %d beyond last appended %d", appliedSeq, l.seq)
	}
	// The snapshot may only supersede records that are themselves durable:
	// compaction after the checkpoint deletes them.
	if err := l.syncLocked(); err != nil {
		return err
	}
	snapStart := obs.Now()
	if err := l.writeSnapshotLocked(items, appliedSeq); err != nil {
		if m := l.opts.Metrics; m != nil {
			m.CheckpointFailures.Inc()
		}
		return err
	}
	if m := l.opts.Metrics; m != nil {
		m.SnapshotWriteDur.ObserveSince(snapStart)
	}
	if err := l.compactLocked(); err != nil {
		return err
	}
	if m := l.opts.Metrics; m != nil {
		m.Snapshots.Inc()
	}
	return nil
}

// writeSnapshotLocked does the temp-write → fsync → rename → dir-fsync dance.
// Failures before the final dir-fsync are NOT fail-stop and leave no temp
// file behind: the log itself is intact, the previous snapshot still stands,
// and the next checkpoint simply retries.
func (l *Log) writeSnapshotLocked(items []rtree.Item, appliedSeq uint64) error {
	fsys := l.opts.FS
	final := filepath.Join(l.opts.Dir, snapshotName(appliedSeq))
	tmp := final + ".tmp"
	if err := writeSnapshotFile(fsys, tmp, items, appliedSeq); err != nil {
		removeQuiet(fsys, tmp)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	l.visit(SiteSnapshotWrite)
	if err := fsys.Rename(tmp, final); err != nil {
		removeQuiet(fsys, tmp)
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := syncDir(fsys, l.opts.Dir); err != nil {
		// The rename may not be durable; the snapshot cannot be trusted to
		// supersede anything, and the directory itself is misbehaving.
		return l.failStorage(StorageSiteCheckpoint, final, err)
	}
	l.visit(SiteSnapshotRename)
	return nil
}

// removeQuiet is the best-effort cleanup of a temp file on a path that is
// already reporting an error; the original error carries the diagnosis.
func removeQuiet(fsys vfs.FS, path string) {
	_ = fsys.Remove(path)
}

// compactLocked deletes segments wholly covered by the oldest retained
// snapshot and snapshots beyond the retention count. Never touches the
// active segment.
func (l *Log) compactLocked() error {
	fsys := l.opts.FS
	snaps, err := listSnapshots(fsys, l.opts.Dir)
	if err != nil {
		return err
	}
	if len(snaps) == 0 {
		return nil
	}
	// snaps ascending; retain the newest KeepSnapshots.
	retainFrom := 0
	if len(snaps) > l.opts.KeepSnapshots {
		retainFrom = len(snaps) - l.opts.KeepSnapshots
	}
	for _, s := range snaps[:retainFrom] {
		if err := fsys.Remove(filepath.Join(l.opts.Dir, s.name)); err != nil {
			// Non-fatal: an undeleted old snapshot wastes disk, nothing more.
			// The next checkpoint retries.
			return fmt.Errorf("wal: compact snapshot: %w", err)
		}
	}
	// Delete segments whose every record is ≤ the oldest retained snapshot's
	// seq: segment i is covered iff segment i+1 starts at or below seq+1.
	bound := snaps[retainFrom].seq
	segs, err := listSegments(fsys, l.opts.Dir)
	if err != nil {
		return err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].firstSeq <= bound+1 {
			if err := fsys.Remove(filepath.Join(l.opts.Dir, segs[i].name)); err != nil {
				return fmt.Errorf("wal: compact segment: %w", err)
			}
			removed++
		} else {
			break
		}
	}
	if removed > 0 {
		l.segments -= removed
		if err := syncDir(fsys, l.opts.Dir); err != nil {
			return l.failStorage(StorageSiteCompact, l.opts.Dir, err)
		}
		if m := l.opts.Metrics; m != nil {
			m.CompactedSegments.Add(uint64(removed))
		}
	}
	return nil
}

// Close flushes and closes the log. Safe to call once; the log is unusable
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if l.failed != nil {
		// Best-effort close of the degraded handle; the sticky error stands.
		closeQuiet(l.f)
		l.closed = true
		return l.failed
	}
	err := l.syncLocked()
	if l.f != nil {
		if cerr := l.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	l.closed = true
	return err
}

// ---- directory layout helpers ----

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

func snapshotName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix)
}

type dirEntry struct {
	name     string
	firstSeq uint64 // segments
	seq      uint64 // snapshots
}

func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	v, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func listSegments(fsys vfs.FS, dir string) ([]dirEntry, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []dirEntry
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeqName(e.Name(), segPrefix, segSuffix); ok {
			out = append(out, dirEntry{name: e.Name(), firstSeq: seq})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].firstSeq < out[j].firstSeq })
	return out, nil
}

func listSnapshots(fsys vfs.FS, dir string) ([]dirEntry, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []dirEntry
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeqName(e.Name(), snapPrefix, snapSuffix); ok {
			out = append(out, dirEntry{name: e.Name(), seq: seq})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// createSegment creates a fresh segment file (exclusive — a name collision
// means sequence accounting is broken) and makes its directory entry durable.
func createSegment(fsys vfs.FS, dir string, firstSeq uint64) (vfs.File, error) {
	path := filepath.Join(dir, segmentName(firstSeq))
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syncDir(fsys, dir); err != nil {
		if cerr := f.Close(); cerr != nil {
			return nil, errors.Join(err, cerr)
		}
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(fsys vfs.FS, dir string) error {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
