package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ErrKind classifies a StorageError for the recovery machinery: IO faults
// are re-armable by Reopen once the device recovers; corruption means bytes
// the log needs are provably damaged and only a salvage (covering snapshot +
// quarantine) or an operator reload can clear the condition.
type ErrKind int

// StorageError kinds.
const (
	// KindIO is a transient-or-not device fault: EIO, ENOSPC, a short write,
	// a failed fsync. The data the log acknowledged is intact; the append
	// path is parked until Reopen re-arms it.
	KindIO ErrKind = iota + 1
	// KindCorruption means validated data is damaged (scrub-detected rot,
	// or acknowledged bytes that vanished during a reopen probe).
	KindCorruption
)

func (k ErrKind) String() string {
	switch k {
	case KindIO:
		return "io"
	case KindCorruption:
		return "corruption"
	default:
		return fmt.Sprintf("ErrKind(%d)", int(k))
	}
}

// Storage-error sites: which part of the log hit the fault. These label the
// wal_storage_errors_total metric and the degraded-mode status surface.
const (
	StorageSiteAppend     = "append"
	StorageSiteSync       = "sync"
	StorageSiteRotate     = "rotate"
	StorageSiteCheckpoint = "checkpoint"
	StorageSiteCompact    = "compact"
	StorageSiteScrub      = "scrub"
	StorageSiteReopen     = "reopen"
)

// StorageError is the typed failure that flips a Log into its degraded
// (read-only) state: appends and checkpoints refuse with this sticky error
// until Reopen clears it, while recovery state and reads stay available.
type StorageError struct {
	// Site is the StorageSite* label of the failing operation.
	Site string
	// Path is the file involved, when known.
	Path string
	// Kind separates re-armable IO faults from data corruption.
	Kind ErrKind
	// Err is the underlying cause.
	Err error
}

func (e *StorageError) Error() string {
	return fmt.Sprintf("wal: storage failed (%s, %s): %v", e.Site, e.Kind, e.Err)
}

func (e *StorageError) Unwrap() error { return e.Err }

// Failed returns the sticky storage failure, or nil while the log is
// healthy. A non-nil result means the log is degraded: appends and
// checkpoints are refused (corruption-kind failures still allow Checkpoint,
// which is the salvage path) until Reopen succeeds.
func (l *Log) Failed() *StorageError {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// failStorage parks the log in its degraded state with a typed error. The
// first failure sticks; later ones only count. Called with l.mu held.
func (l *Log) failStorage(site, path string, err error) error {
	if m := l.opts.Metrics; m != nil {
		m.StorageErrors.With(site).Inc()
	}
	if l.failed == nil {
		l.failed = &StorageError{Site: site, Path: path, Kind: KindIO, Err: err}
	}
	return l.failed
}

// failCorrupt parks the log with a corruption-kind error. coveredNeed is the
// snapshot sequence a future checkpoint must reach for the damaged segment
// to become quarantinable; Reopen uses it to retry the salvage.
func (l *Log) failCorrupt(site, path string, coveredNeed uint64, err error) error {
	if m := l.opts.Metrics; m != nil {
		m.StorageErrors.With(site).Inc()
	}
	if l.failed == nil {
		l.failed = &StorageError{Site: site, Path: path, Kind: KindCorruption, Err: err}
		l.corruptPath = path
		l.corruptNeed = coveredNeed
	}
	return l.failed
}

// Reopen attempts to clear a degraded log. For IO-kind failures it re-arms
// the append path: the active segment is truncated back to the last
// acknowledged byte (a failed append may have left a torn frame behind), the
// truncation is fsynced, the surviving frames are re-read and verified
// against the acknowledged sequence number (a device that dropped dirty
// pages is detected here, not papered over), stray segments from a failed
// rotation are removed, and a fresh append handle is opened. For
// corruption-kind failures it retries the salvage: if a valid snapshot now
// covers the damaged file, the file is quarantined and the log is clean
// again. On success the sticky error is cleared and appends resume; on
// failure the log stays degraded and the error says why.
func (l *Log) Reopen() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.failed == nil {
		return nil
	}
	if l.failed.Kind == KindCorruption {
		return l.reopenCorruptLocked()
	}
	if err := l.rearmLocked(); err != nil {
		return err
	}
	l.failed = nil
	l.dirty = false
	l.seq = l.committedSeq
	l.size = l.committed
	if m := l.opts.Metrics; m != nil {
		m.Reopens.Inc()
	}
	l.visit(SiteReopen)
	return nil
}

// rearmLocked does the IO-kind repair work of Reopen; the caller clears the
// sticky state only when it returns nil.
func (l *Log) rearmLocked() error {
	fsys := l.opts.FS
	closeQuiet(l.f)
	l.f = nil
	path := filepath.Join(l.opts.Dir, l.activeName)

	// Repair: cut the active segment back to the acknowledged prefix and
	// make the cut durable. A failed rotation may have left the (sealed,
	// full) previous segment as the active one — the same steps apply, the
	// truncation is then a no-op.
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		closeQuiet(f)
		return fmt.Errorf("wal: reopen stat %s: %w", path, err)
	}
	if st.Size() < l.committed {
		closeQuiet(f)
		l.failed = &StorageError{Site: StorageSiteReopen, Path: path, Kind: KindCorruption,
			Err: fmt.Errorf("active segment shrank to %d bytes, %d acknowledged", st.Size(), l.committed)}
		return l.failed
	}
	if err := f.Truncate(l.committed); err != nil {
		closeQuiet(f)
		return fmt.Errorf("wal: reopen truncate %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		closeQuiet(f)
		return fmt.Errorf("wal: reopen fsync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: reopen close %s: %w", path, err)
	}

	// Verify: the bytes that acknowledged mutations must still decode to
	// exactly the acknowledged sequence. A device that dropped dirty pages
	// without shrinking the file is caught here and reported as corruption —
	// silently resuming would lose acknowledged writes.
	if l.committed > 0 {
		buf, err := fsys.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: reopen verify %s: %w", path, err)
		}
		var last uint64
		for off := int64(0); off < int64(len(buf)); {
			r, next, ferr := decodeFrame(buf, off)
			if ferr != nil {
				l.failed = &StorageError{Site: StorageSiteReopen, Path: path, Kind: KindCorruption,
					Err: fmt.Errorf("acknowledged frame at offset %d no longer decodes: %s", off, ferr.reason)}
				return l.failed
			}
			last = r.Seq
			off = next
		}
		if last != l.committedSeq {
			l.failed = &StorageError{Site: StorageSiteReopen, Path: path, Kind: KindCorruption,
				Err: fmt.Errorf("active segment replays to seq %d, %d acknowledged", last, l.committedSeq)}
			return l.failed
		}
	}

	// A rotation that failed between creating the next segment and making it
	// durable leaves a stray file; its name's first sequence is above every
	// acknowledged record, so it can hold nothing worth keeping — and the
	// next rotation's O_EXCL create would trip over it.
	segs, err := listSegments(fsys, l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: reopen list: %w", err)
	}
	for _, s := range segs {
		if s.firstSeq > l.committedSeq && s.name != l.activeName {
			if err := fsys.Remove(filepath.Join(l.opts.Dir, s.name)); err != nil {
				return fmt.Errorf("wal: reopen removing stray %s: %w", s.name, err)
			}
		}
	}

	af, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen append handle %s: %w", path, err)
	}
	if err := syncDir(fsys, l.opts.Dir); err != nil {
		closeQuiet(af)
		return fmt.Errorf("wal: reopen dir fsync: %w", err)
	}
	l.f = af
	return nil
}

// reopenCorruptLocked retries the salvage of a corruption-kind failure: when
// a valid snapshot now covers every record the damaged file could hold (a
// checkpoint ran since — the self-healing path), the file is quarantined and
// the log is clean. The append path was never damaged in this mode, so no
// re-arming is needed.
func (l *Log) reopenCorruptLocked() error {
	if l.corruptPath == "" {
		return l.failed
	}
	fsys := l.opts.FS
	snaps, err := listSnapshots(fsys, l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: reopen: %w", err)
	}
	covered := false
	for i := len(snaps) - 1; i >= 0; i-- {
		if snaps[i].seq < l.corruptNeed {
			break
		}
		if _, _, err := readSnapshotFile(fsys, filepath.Join(l.opts.Dir, snaps[i].name)); err == nil {
			covered = true
			break
		}
	}
	if !covered {
		return l.failed
	}
	if err := l.quarantineLocked(l.corruptPath, strings.HasSuffix(l.corruptPath, segSuffix)); err != nil {
		return fmt.Errorf("wal: reopen quarantine: %w", err)
	}
	l.failed = nil
	l.corruptPath = ""
	l.corruptNeed = 0
	if m := l.opts.Metrics; m != nil {
		m.Reopens.Inc()
	}
	l.visit(SiteReopen)
	return nil
}

// quarantineLocked renames a damaged file out of the log's namespace
// (recovery and compaction ignore the .quarantined suffix, forensics keep
// the bytes) and makes the rename durable. A file compacted away in the
// meantime counts as handled — that also removed the damage.
func (l *Log) quarantineLocked(path string, segment bool) error {
	l.visit(SiteScrubQuarantine)
	renamed, err := quarantineFile(l.opts.FS, l.opts.Dir, path)
	if err != nil {
		return err
	}
	// Only an actual rename removes a live segment from the count; a file
	// compaction already deleted was already deducted there.
	if renamed && segment && l.segments > 0 {
		l.segments--
	}
	if m := l.opts.Metrics; m != nil {
		m.ScrubQuarantines.Inc()
	}
	return nil
}

// quarantineSuffix marks files pulled out of the recovery path. The suffix
// breaks the segment/snapshot name pattern, so every directory listing
// ignores them.
const quarantineSuffix = ".quarantined"

// closeQuiet is the deliberate discard of a close error on a handle that is
// already failed or being replaced — the sticky StorageError carries the
// real diagnosis. Named so the vet-wal lint (no unchecked Close in this
// package) stays meaningful everywhere else.
func closeQuiet(f interface{ Close() error }) {
	if f != nil {
		_ = f.Close() // vet-wal:allow — the sole blessed discard site
	}
}
