package wal

import (
	"bytes"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// FuzzDecodeFrame drives the record-framing decoder with arbitrary bytes at
// arbitrary offsets: it must never panic or over-read, and whenever it does
// accept a frame, re-encoding the decoded record must reproduce the exact
// frame bytes it consumed (the CRC makes acceptance of a non-canonical
// encoding a framing bug, not a fuzz artifact).
func FuzzDecodeFrame(f *testing.F) {
	valid, err := appendFrame(nil, Record{Seq: 7, Op: OpInsert,
		Item: rtree.Item{ID: 42, Point: geom.Point{1.5, -2.25}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid, 0)
	f.Add(append(valid, valid...), len(valid))
	f.Add([]byte{}, 0)
	f.Add(make([]byte, frameHeaderLen), 0)
	f.Add(valid[:len(valid)-3], 0) // torn tail
	corrupt := append([]byte(nil), valid...)
	corrupt[frameHeaderLen] ^= 0xff
	f.Add(corrupt, 0) // CRC mismatch

	f.Fuzz(func(t *testing.T, buf []byte, off int) {
		if off < 0 || off > len(buf) {
			return
		}
		rec, next, ferr := decodeFrame(buf, int64(off))
		if ferr != nil {
			if ferr.Error() == "" {
				t.Fatal("frame error with empty reason")
			}
			return
		}
		if next <= int64(off) || next > int64(len(buf)) {
			t.Fatalf("decoded frame spans [%d, %d) outside buffer of %d bytes", off, next, len(buf))
		}
		reenc, err := appendFrame(nil, rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, buf[off:next]) {
			t.Fatalf("re-encoded frame differs from accepted bytes\n got %x\nwant %x", reenc, buf[off:next])
		}
	})
}
