package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rtree"
	"repro/internal/wal/vfs"
)

// writeLog appends n sequential insert records and returns the directory and
// the single segment's path.
func writeLog(t *testing.T, n int) (dir, seg string) {
	t.Helper()
	dir = t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
	for i := 1; i <= n; i++ {
		if _, err := l.Append(OpInsert, item(i, float64(i), float64(i)+0.5)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments = %d, want 1", len(segs))
	}
	return dir, filepath.Join(dir, segs[0].name)
}

// TestTornTailTruncatedAtEveryBoundary cuts the final record at every possible
// byte boundary — mid-header, mid-payload, exactly one byte short — and
// asserts recovery repairs it, keeping every earlier record.
func TestTornTailTruncatedAtEveryBoundary(t *testing.T) {
	dir, seg := writeLog(t, 3)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(full) / 3
	lastStart := 2 * frameLen
	for cut := lastStart + 1; cut < len(full); cut++ {
		if err := os.WriteFile(seg, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		if !rec.TornTail {
			t.Fatalf("cut at %d: TornTail not reported", cut)
		}
		if rec.TruncatedBytes != int64(cut-lastStart) {
			t.Fatalf("cut at %d: TruncatedBytes = %d, want %d", cut, rec.TruncatedBytes, cut-lastStart)
		}
		if rec.LastSeq != 2 || len(rec.Tail) != 2 {
			t.Fatalf("cut at %d: LastSeq=%d tail=%d, want 2/2", cut, rec.LastSeq, len(rec.Tail))
		}
		// The repair must be durable-in-place: appends continue from seq 2.
		if seq, err := l.Append(OpInsert, item(99, 9, 9)); err != nil || seq != 3 {
			t.Fatalf("cut at %d: append after repair = %d, %v", cut, seq, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

// TestTornTailZeroFill models a filesystem that recovered the inode size but
// not the data: the final record's bytes are zeroed rather than missing.
func TestTornTailZeroFill(t *testing.T) {
	dir, seg := writeLog(t, 3)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(full) / 3
	for i := 2 * frameLen; i < len(full); i++ {
		full[i] = 0
	}
	if err := os.WriteFile(seg, full, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if !rec.TornTail || rec.LastSeq != 2 {
		t.Fatalf("rec = %+v, want torn tail with LastSeq 2", rec)
	}
}

// TestTornFinalPayload flips a byte inside the final record's payload: a CRC
// mismatch on the very last record with nothing after it is indistinguishable
// from a torn write and must be truncated, not fatal.
func TestTornFinalPayload(t *testing.T) {
	dir, seg := writeLog(t, 3)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	full[len(full)-1] ^= 0xff
	if err := os.WriteFile(seg, full, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if !rec.TornTail || rec.LastSeq != 2 || len(rec.Tail) != 2 {
		t.Fatalf("rec = %+v, want torn-tail repair keeping 2 records", rec)
	}
}

// TestMidLogCorruptionIsFatal flips one byte in the SECOND of four records:
// valid data follows the damage, so this is corruption, not a torn tail, and
// recovery must refuse with the exact record index and offset.
func TestMidLogCorruptionIsFatal(t *testing.T) {
	dir, seg := writeLog(t, 4)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(full) / 4
	full[frameLen+frameHeaderLen+3] ^= 0x01 // one bit, inside record 1's payload
	if err := os.WriteFile(seg, full, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want *CorruptionError", err)
	}
	if ce.Record != 1 || ce.Offset != int64(frameLen) {
		t.Fatalf("CorruptionError record=%d offset=%d, want 1/%d", ce.Record, ce.Offset, frameLen)
	}
	if !strings.Contains(ce.Reason, "checksum mismatch") {
		t.Fatalf("Reason = %q, want checksum mismatch", ce.Reason)
	}
	if ce.Path != seg {
		t.Fatalf("Path = %q, want %q", ce.Path, seg)
	}
}

// TestCorruptionInNonFinalSegmentIsFatal damages the tail of a non-final
// segment: torn-tail tolerance applies only to the last segment.
func TestCorruptionInNonFinalSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 100})
	for i := 1; i <= 6; i++ {
		if _, err := l.Append(OpInsert, item(i, float64(i), float64(i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("segments = %d, want ≥ 2", len(segs))
	}
	first := filepath.Join(dir, segs[0].name)
	buf, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, buf[:len(buf)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want *CorruptionError for non-final torn segment", err)
	}
}

// TestSequenceGapIsFatal deletes a middle segment: the seq numbers jump, which
// means acknowledged mutations are missing.
func TestSequenceGapIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 100})
	for i := 1; i <= 6; i++ {
		if _, err := l.Append(OpInsert, item(i, float64(i), float64(i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("segments = %d, want ≥ 3", len(segs))
	}
	if err := os.Remove(filepath.Join(dir, segs[1].name)); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir})
	var ce *CorruptionError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "sequence gap") {
		t.Fatalf("Open = %v, want sequence-gap CorruptionError", err)
	}
}

// TestCorruptNewestSnapshotFallsBack damages the newest snapshot and asserts
// recovery uses the older one plus the longer WAL tail — the reason compaction
// retains KeepSnapshots generations of both.
func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 100, KeepSnapshots: 2})
	var live []int
	for i := 1; i <= 10; i++ {
		if _, err := l.Append(OpInsert, item(i, float64(i), float64(i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
		live = append(live, i)
		if i == 5 || i == 10 {
			var snap []rtree.Item
			for _, id := range live {
				snap = append(snap, item(id, float64(id), float64(id)))
			}
			if err := l.Checkpoint(snap, l.LastSeq()); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snaps, err := listSnapshots(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	newest := filepath.Join(dir, snaps[1].name)
	buf, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(newest, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if rec.CorruptSnapshots != 1 {
		t.Fatalf("CorruptSnapshots = %d, want 1", rec.CorruptSnapshots)
	}
	if !rec.HaveSnapshot || rec.SnapshotSeq != 5 {
		t.Fatalf("fell back to snapshot seq %d (have=%v), want 5", rec.SnapshotSeq, rec.HaveSnapshot)
	}
	got, err := ApplyTail(rec.Items, rec.Tail)
	if err != nil {
		t.Fatalf("ApplyTail: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("recovered %d items, want 10", len(got))
	}
	for i, it := range got {
		if it.ID != i+1 {
			t.Fatalf("item %d has ID %d, want %d", i, it.ID, i+1)
		}
	}
}

// TestHoleBetweenSnapshotAndTailIsFatal builds a snapshot at seq 5 but a log
// whose first surviving record is seq 7: acknowledged seq 6 is gone.
func TestHoleBetweenSnapshotAndTailIsFatal(t *testing.T) {
	dir := t.TempDir()
	if err := writeSnapshotFile(vfs.OS, filepath.Join(dir, snapshotName(5)), []rtree.Item{item(1, 1, 1)}, 5); err != nil {
		t.Fatal(err)
	}
	frame, err := appendFrame(nil, Record{Seq: 7, Op: OpInsert, Item: item(2, 2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(7)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir})
	var ce *CorruptionError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "missing") {
		t.Fatalf("Open = %v, want missing-mutations CorruptionError", err)
	}
}

// TestWholeSegmentTornToNothing truncates the only segment to zero bytes —
// recovery should treat it as empty, not corrupt.
func TestWholeSegmentTornToNothing(t *testing.T) {
	dir, seg := writeLog(t, 2)
	if err := os.Truncate(seg, 0); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if rec.LastSeq != 0 || len(rec.Tail) != 0 {
		t.Fatalf("rec = %+v, want empty", rec)
	}
}
