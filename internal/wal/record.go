package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Op is a mutation kind.
type Op uint8

const (
	// OpInsert adds an item to the dataset.
	OpInsert Op = 1
	// OpDelete removes an item (matched by ID and position).
	OpDelete Op = 2
)

func (op Op) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Record is one logged mutation.
type Record struct {
	// Seq is the record's log sequence number: 1-based, contiguous,
	// strictly increasing across segments.
	Seq  uint64
	Op   Op
	Item rtree.Item
}

// Record frame (all integers little-endian):
//
//	u32 payload length | u32 crc32c(payload) | payload
//
// Payload:
//
//	u64 seq | u8 op | i64 item id | u16 dims | dims × f64 coordinates
//
// The CRC covers the payload only; a corrupted length field manifests as an
// implausible length or a CRC mismatch on whatever bytes it delimits, both of
// which recovery classifies (torn tail vs mid-log corruption) by position.
const (
	frameHeaderLen = 8
	// minPayloadLen is a record with zero dimensions.
	minPayloadLen = 8 + 1 + 8 + 2
	// maxPayloadLen bounds dims at 4096 — far beyond any real dataset;
	// anything larger is corruption, not data.
	maxPayloadLen = minPayloadLen + 8*4096
)

// appendFrame encodes rec as a frame appended to dst (which may have spare
// capacity from a previous call).
func appendFrame(dst []byte, rec Record) ([]byte, error) {
	dims := rec.Item.Point.Dims()
	if dims > 4096 {
		return nil, fmt.Errorf("wal: record has %d dims (max 4096)", dims)
	}
	if rec.Op != OpInsert && rec.Op != OpDelete {
		return nil, fmt.Errorf("wal: unknown op %d", rec.Op)
	}
	payloadLen := minPayloadLen + 8*dims
	start := len(dst)
	dst = append(dst, make([]byte, frameHeaderLen+payloadLen)...)
	payload := dst[start+frameHeaderLen:]
	binary.LittleEndian.PutUint64(payload[0:], rec.Seq)
	payload[8] = byte(rec.Op)
	binary.LittleEndian.PutUint64(payload[9:], uint64(int64(rec.Item.ID)))
	binary.LittleEndian.PutUint16(payload[17:], uint16(dims))
	for i := 0; i < dims; i++ {
		binary.LittleEndian.PutUint64(payload[19+8*i:], math.Float64bits(rec.Item.Point[i]))
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst, nil
}

// frameError classifies a frame decode failure for recovery's torn-tail
// versus mid-log-corruption decision.
type frameError struct {
	reason string
	// torn reports that the failure is consistent with an interrupted final
	// write (truncated header, frame extending past EOF). CRC mismatches and
	// implausible lengths inside the data are NOT torn by themselves; the
	// caller decides using position (was this the final record?).
	torn bool
}

func (e *frameError) Error() string { return e.reason }

// decodeFrame decodes one frame starting at buf[off]. It returns the record
// and the offset just past the frame, or a *frameError.
func decodeFrame(buf []byte, off int64) (Record, int64, *frameError) {
	rest := buf[off:]
	if len(rest) < frameHeaderLen {
		return Record{}, 0, &frameError{reason: fmt.Sprintf("truncated frame header (%d of %d bytes)", len(rest), frameHeaderLen), torn: true}
	}
	payloadLen := int(binary.LittleEndian.Uint32(rest[0:]))
	wantCRC := binary.LittleEndian.Uint32(rest[4:])
	if payloadLen < minPayloadLen || payloadLen > maxPayloadLen {
		// An implausible length is corruption of the header itself — unless
		// the "length" is part of a torn, partially written tail, which the
		// caller detects via the all-zero / extends-to-EOF heuristics.
		return Record{}, 0, &frameError{reason: fmt.Sprintf("implausible payload length %d (want %d..%d)", payloadLen, minPayloadLen, maxPayloadLen)}
	}
	if len(rest) < frameHeaderLen+payloadLen {
		return Record{}, 0, &frameError{reason: fmt.Sprintf("frame extends past end of segment (%d payload bytes declared, %d available)", payloadLen, len(rest)-frameHeaderLen), torn: true}
	}
	payload := rest[frameHeaderLen : frameHeaderLen+payloadLen]
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return Record{}, 0, &frameError{reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", wantCRC, got)}
	}
	rec := Record{
		Seq: binary.LittleEndian.Uint64(payload[0:]),
		Op:  Op(payload[8]),
	}
	rec.Item.ID = int(int64(binary.LittleEndian.Uint64(payload[9:])))
	dims := int(binary.LittleEndian.Uint16(payload[17:]))
	if payloadLen != minPayloadLen+8*dims {
		return Record{}, 0, &frameError{reason: fmt.Sprintf("payload length %d inconsistent with %d dims", payloadLen, dims)}
	}
	if rec.Op != OpInsert && rec.Op != OpDelete {
		return Record{}, 0, &frameError{reason: fmt.Sprintf("unknown op %d", payload[8])}
	}
	p := make(geom.Point, dims)
	for i := range p {
		x := math.Float64frombits(binary.LittleEndian.Uint64(payload[19+8*i:]))
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Record{}, 0, &frameError{reason: fmt.Sprintf("non-finite coordinate %d", i)}
		}
		p[i] = x
	}
	rec.Item.Point = p
	return rec, off + int64(frameHeaderLen+payloadLen), nil
}

// allZero reports whether every byte of b is zero — the signature of a
// preallocated-but-unwritten or torn-to-zeros tail.
func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}
