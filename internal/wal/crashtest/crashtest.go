// Package crashtest is the kill-injection harness for the WAL: the proof
// that "acknowledged" means "survives a crash".
//
// A trial re-executes the current binary as a child process that runs a
// deterministic mutating workload (durable inserts and deletes with periodic
// checkpoints) against a fresh WAL directory, with a fault-injection hook
// installed at the log's write/fsync/rotate/snapshot boundaries. At the
// configured site and visit number the hook SIGKILLs the child — no deferred
// cleanup, no flush, exactly what a crash looks like to the filesystem. The
// parent then recovers the directory with the ordinary recovery path and
// checks the durability contract:
//
//   - recovery succeeds (kill-induced damage is never "corruption"),
//   - every mutation the child acknowledged before dying is present,
//   - the recovered item set equals an oracle replay of the first LastSeq
//     mutations of the deterministic stream,
//   - the recovered DB answers reverse-skyline probes identically to a fresh
//     DB built from the oracle state,
//   - the recovered log accepts new appends.
//
// The same harness backs the short `go test` smoke (run under -race by
// `make race-core`) and the cmd/crash soak binary; only the trial matrix
// differs. Both binaries must route their main through IsChild/ChildMain so
// the re-exec lands in the workload instead of the test driver.
package crashtest

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/engine/faultinject"
	"repro/internal/wal"
	"repro/internal/wal/vfs"
)

// Child-process configuration travels by environment: the child is this same
// binary re-executed, recognised by childEnv before any flag parsing.
const (
	childEnv        = "WAL_CRASHTEST_CHILD"
	envDir          = "WAL_CRASHTEST_DIR"
	envAcks         = "WAL_CRASHTEST_ACKS"
	envSeed         = "WAL_CRASHTEST_SEED"
	envMutations    = "WAL_CRASHTEST_MUTATIONS"
	envSite         = "WAL_CRASHTEST_SITE"
	envVisit        = "WAL_CRASHTEST_VISIT"
	envSegmentBytes = "WAL_CRASHTEST_SEGMENT_BYTES"
	envCkptEvery    = "WAL_CRASHTEST_CKPT_EVERY"
	envMode         = "WAL_CRASHTEST_MODE"
)

// Composed modes: the child drives the log into a storage-fault scenario
// (via the vfs fault injector) before the kill fires, so the crash lands in
// the middle of the degraded-mode machinery instead of the happy path. The
// recovery invariants are exactly the same four as the plain kill matrix.
const (
	// ModeDegraded crashes while the log is parked read-only by an injected
	// write fault: the kill hits a process whose last mutation was refused.
	ModeDegraded = "degraded"
	// ModeReopen crashes inside the reopen probe, right as a degraded log is
	// re-armed — after the repair work, before the caller sees success.
	ModeReopen = "reopen"
	// ModeQuarantine crashes inside the scrubber's quarantine of a rotten
	// sealed segment, after the salvage checkpoint made the rot coverable.
	ModeQuarantine = "quarantine"
)

// Sites is the full kill-site matrix: every boundary the log passes a
// mutation through on its way to disk.
var Sites = []string{
	wal.SiteAppend,
	wal.SiteWrite,
	wal.SiteSync,
	wal.SiteRotate,
	wal.SiteSnapshotWrite,
	wal.SiteSnapshotRename,
}

// Trial kills the child at the n-th visit of one site. A visit number the
// workload never reaches yields a clean exit, which the harness counts but
// does not fail on — the recovery checks run either way.
type Trial struct {
	Site  string `json:"site"`
	Visit uint64 `json:"visit"`
	// Mode, when non-empty, composes the kill with storage-fault injection:
	// the child runs the Mode* scenario and dies inside it (at Site/Visit for
	// hook-placed kills, or by its own hand for ModeDegraded).
	Mode string `json:"mode,omitempty"`
}

// Options sizes one harness run. The zero value is a small smoke; cmd/crash
// scales the matrix up for soaking.
type Options struct {
	// Dir is the scratch root; every trial gets its own subdirectory.
	// Required.
	Dir string
	// Mutations is the workload length per trial. Default 40.
	Mutations int
	// Seed drives the deterministic mutation stream. Default 1.
	Seed int64
	// SegmentBytes forces frequent rotation so SiteRotate is reachable.
	// Default 512.
	SegmentBytes int64
	// CheckpointEvery checkpoints the child every n mutations so the
	// snapshot sites are reachable. Default 10.
	CheckpointEvery int
	// Trials is the kill matrix; empty runs DefaultTrials(2).
	Trials []Trial
}

func (o Options) withDefaults() Options {
	if o.Mutations <= 0 {
		o.Mutations = 40
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 512
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 10
	}
	if len(o.Trials) == 0 {
		o.Trials = DefaultTrials(2)
	}
	return o
}

// DefaultTrials builds the site × visit matrix: every kill site at visit
// numbers 1..visits.
func DefaultTrials(visits uint64) []Trial {
	var ts []Trial
	for _, site := range Sites {
		for v := uint64(1); v <= visits; v++ {
			ts = append(ts, Trial{Site: site, Visit: v})
		}
	}
	return ts
}

// ComposedTrials builds the storage-fault composition matrix: one trial per
// Mode*, each killing inside the scenario's own machinery.
func ComposedTrials() []Trial {
	return []Trial{
		{Mode: ModeDegraded},
		{Mode: ModeReopen, Site: wal.SiteReopen, Visit: 1},
		{Mode: ModeQuarantine, Site: wal.SiteScrubQuarantine, Visit: 1},
	}
}

// Result is the schema-versioned outcome of one harness run; cmd/crash
// appends it to BENCH_crash.json.
type Result struct {
	SchemaVersion int    `json:"schema_version"`
	Harness       string `json:"harness"`

	Trials     int `json:"trials"`
	Kills      int `json:"kills"`
	CleanExits int `json:"clean_exits"`

	AckedTotal     int64 `json:"acked_total"`
	RecoveredTotal int64 `json:"recovered_records_total"`
	TornTails      int64 `json:"torn_tails"`
	TruncatedBytes int64 `json:"truncated_bytes"`
	Snapshots      int64 `json:"snapshots_recovered_from"`

	Mutations  int   `json:"mutations_per_trial"`
	Seed       int64 `json:"seed"`
	DurationMS int64 `json:"duration_ms"`

	// Violations lists every broken durability invariant; empty means the
	// contract held at every kill point.
	Violations []string `json:"violations"`
}

// Run executes the trial matrix and aggregates the outcome. An error means
// the harness itself broke (exec failure, unusable scratch dir) — durability
// violations are reported in Result.Violations instead.
func Run(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("crashtest: Options.Dir is required")
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("crashtest: locating own binary: %w", err)
	}
	start := time.Now()
	res := &Result{
		SchemaVersion: 1,
		Harness:       "wal-crashtest/v1",
		Trials:        len(opts.Trials),
		Mutations:     opts.Mutations,
		Seed:          opts.Seed,
	}
	for i, tr := range opts.Trials {
		if err := runTrial(exe, opts, i, tr, res); err != nil {
			return nil, err
		}
	}
	res.DurationMS = time.Since(start).Milliseconds()
	return res, nil
}

func runTrial(exe string, opts Options, idx int, tr Trial, res *Result) error {
	label := strings.ReplaceAll(tr.Site, ".", "_")
	if tr.Mode != "" {
		label = "mode_" + tr.Mode
	}
	root := filepath.Join(opts.Dir, fmt.Sprintf("t%03d-%s-v%d", idx, label, tr.Visit))
	walDir := filepath.Join(root, "wal")
	acksPath := filepath.Join(root, "acks")
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("crashtest: scratch dir: %w", err)
	}

	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		childEnv+"=1",
		envDir+"="+walDir,
		envAcks+"="+acksPath,
		envSeed+"="+strconv.FormatInt(opts.Seed, 10),
		envMutations+"="+strconv.Itoa(opts.Mutations),
		envSite+"="+tr.Site,
		envVisit+"="+strconv.FormatUint(tr.Visit, 10),
		envSegmentBytes+"="+strconv.FormatInt(opts.SegmentBytes, 10),
		envCkptEvery+"="+strconv.Itoa(opts.CheckpointEvery),
		envMode+"="+tr.Mode,
	)
	var childErr strings.Builder
	cmd.Stderr = &childErr
	err := cmd.Run()
	switch {
	case err == nil:
		// The kill site was never reached at that visit number; the workload
		// ran to completion. Recovery below must still be clean.
		res.CleanExits++
	case wasKilled(err):
		res.Kills++
	default:
		// The child failed on its own — a workload bug, not a crash. That is
		// a harness-level failure worth surfacing loudly.
		return fmt.Errorf("crashtest: child %s/v%d failed: %v\n%s", label, tr.Visit, err, childErr.String())
	}

	acked, err := readAcks(acksPath)
	if err != nil {
		return err
	}
	res.AckedTotal += int64(len(acked))

	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations,
			fmt.Sprintf("[%s visit %d] ", label, tr.Visit)+fmt.Sprintf(format, args...))
	}

	// Recover with the production path — no hook, no special cases. A crash
	// must never look like corruption.
	base := BaseItems(opts.Seed)
	db, rec, err := repro.OpenDurable(probeDims, base, repro.DBOptions{
		Durability: &repro.DurabilityOptions{Dir: walDir, Policy: wal.SyncAlways},
	})
	if err != nil {
		violate("recovery failed: %v", err)
		return nil
	}
	defer func() {
		if cerr := db.Close(); cerr != nil {
			violate("closing recovered log: %v", cerr)
		}
	}()
	res.RecoveredTotal += int64(len(rec.Tail))
	if rec.TornTail {
		res.TornTails++
		res.TruncatedBytes += rec.TruncatedBytes
	}
	if rec.HaveSnapshot {
		res.Snapshots++
	}

	// Invariant 1: nothing acknowledged is lost. Acks are written strictly
	// after the WAL append returns, so LastSeq must cover every acked seq.
	var maxAck uint64
	for _, seq := range acked {
		if seq > maxAck {
			maxAck = seq
		}
	}
	if rec.LastSeq < maxAck {
		violate("acknowledged seq %d lost: recovery stops at %d", maxAck, rec.LastSeq)
		return nil
	}

	// Invariant 2: the recovered state is exactly an oracle replay of the
	// first LastSeq mutations of the deterministic stream — no ghosts, no
	// partial applications.
	stream := Stream(opts.Seed, opts.Mutations)
	if rec.LastSeq > uint64(len(stream)) {
		violate("recovered seq %d exceeds the %d-mutation stream", rec.LastSeq, len(stream))
		return nil
	}
	want := Replay(base, stream[:rec.LastSeq])
	got := db.DurableItems()
	if !sameItems(got, want) {
		violate("recovered %d items != oracle %d items at seq %d", len(got), len(want), rec.LastSeq)
		return nil
	}

	// Invariant 3: the recovered index answers like a fresh build of the
	// oracle state — recovery feeds the same query machinery, not a lookalike.
	oracle := repro.NewDBWithOptions(probeDims, want, repro.DBOptions{})
	for _, q := range probePoints() {
		a := idsOf(db.ReverseSkylineBBRS(q))
		b := idsOf(oracle.ReverseSkylineBBRS(q))
		if !sameIDs(a, b) {
			violate("RSL(%v) mismatch: recovered %v, oracle %v", q, a, b)
			return nil
		}
		if !sameIDs(idsOf(db.DynamicSkyline(q)), idsOf(oracle.DynamicSkyline(q))) {
			violate("DSL(%v) mismatch after recovery", q)
			return nil
		}
	}

	// Invariant 4: the log is live again — recovery hands back a writable
	// log, not a read-only autopsy.
	if _, err := db.InsertDurable(repro.Item{ID: reopenProbeID + idx, Point: repro.NewPoint(1, 1)}); err != nil {
		violate("post-recovery append failed: %v", err)
	}
	return nil
}

// wasKilled reports whether the child died from our injected SIGKILL.
func wasKilled(err error) bool {
	var xerr *exec.ExitError
	if !errors.As(err, &xerr) {
		return false
	}
	// -1 exit code means "terminated by signal"; the only signal the harness
	// sends is KILL, and the workload installs no handlers.
	return xerr.ExitCode() == -1
}

func readAcks(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil // killed before the first ack
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var acks []uint64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		seq, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			// A torn final ack line (the kill raced the write) is not
			// evidence of an acknowledged mutation; ignore it.
			continue
		}
		acks = append(acks, seq)
	}
	return acks, sc.Err()
}

// ---------------------------------------------------------------------------
// Deterministic workload, shared verbatim by child and oracle.

const (
	probeDims     = 2
	baseItemCount = 50
	insertIDBase  = 1_000_000
	reopenProbeID = 2_000_000
)

// Op is a workload mutation kind.
type Op int

// Workload mutation kinds.
const (
	OpInsert Op = iota + 1
	OpDelete
)

// Mutation is one step of the deterministic stream.
type Mutation struct {
	Op   Op
	Item repro.Item
}

// BaseItems is the trial's base dataset lineage: the items the WAL directory
// is opened over before any mutation.
func BaseItems(seed int64) []repro.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]repro.Item, baseItemCount)
	for i := range items {
		items[i] = repro.Item{
			ID:    i + 1,
			Point: repro.NewPoint(rng.Float64()*1000, rng.Float64()*1000),
		}
	}
	return items
}

// Stream generates the deterministic mutation sequence for a seed: ~65%
// inserts of fresh IDs, else deletes of a random live item (never below five
// live items, so probe queries always have a dataset). Child and parent call
// this with the same arguments and get the same stream — that is what makes
// the oracle replay exact.
func Stream(seed int64, count int) []Mutation {
	rng := rand.New(rand.NewSource(seed + 1)) // distinct from BaseItems' stream
	live := BaseItems(seed)
	muts := make([]Mutation, 0, count)
	for i := 0; i < count; i++ {
		if rng.Float64() < 0.65 || len(live) <= 5 {
			it := repro.Item{
				ID:    insertIDBase + i,
				Point: repro.NewPoint(rng.Float64()*1000, rng.Float64()*1000),
			}
			muts = append(muts, Mutation{Op: OpInsert, Item: it})
			live = append(live, it)
		} else {
			j := rng.Intn(len(live))
			muts = append(muts, Mutation{Op: OpDelete, Item: live[j]})
			live = append(live[:j], live[j+1:]...)
		}
	}
	return muts
}

// Replay applies a stream prefix to a base item set, returning the oracle
// state sorted by ID.
func Replay(base []repro.Item, muts []Mutation) []repro.Item {
	byID := make(map[int]repro.Item, len(base))
	for _, it := range base {
		byID[it.ID] = it
	}
	for _, m := range muts {
		if m.Op == OpInsert {
			byID[m.Item.ID] = m.Item
		} else {
			delete(byID, m.Item.ID)
		}
	}
	items := make([]repro.Item, 0, len(byID))
	for _, it := range byID {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
	return items
}

func probePoints() []repro.Point {
	return []repro.Point{
		repro.NewPoint(500, 500),
		repro.NewPoint(100, 900),
		repro.NewPoint(900, 100),
	}
}

func idsOf(items []repro.Item) []int {
	ids := make([]int, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Ints(ids)
	return ids
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameItems(a, b []repro.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Point.Equal(b[i].Point) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Child process.

// IsChild reports whether this process is a crashtest re-exec. Binaries that
// embed the harness must check it first thing in main (or TestMain) and call
// ChildMain.
func IsChild() bool { return os.Getenv(childEnv) == "1" }

// ChildMain runs the mutating workload and never returns: it either exits,
// or dies mid-write from its own injected SIGKILL.
func ChildMain() {
	if err := childRun(); err != nil {
		fmt.Fprintln(os.Stderr, "crashtest child:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func childRun() error {
	seed, err := strconv.ParseInt(os.Getenv(envSeed), 10, 64)
	if err != nil {
		return fmt.Errorf("bad %s: %v", envSeed, err)
	}
	mutations, err := strconv.Atoi(os.Getenv(envMutations))
	if err != nil {
		return fmt.Errorf("bad %s: %v", envMutations, err)
	}
	visit, err := strconv.ParseUint(os.Getenv(envVisit), 10, 64)
	if err != nil {
		return fmt.Errorf("bad %s: %v", envVisit, err)
	}
	segBytes, err := strconv.ParseInt(os.Getenv(envSegmentBytes), 10, 64)
	if err != nil {
		return fmt.Errorf("bad %s: %v", envSegmentBytes, err)
	}
	ckptEvery, err := strconv.Atoi(os.Getenv(envCkptEvery))
	if err != nil {
		return fmt.Errorf("bad %s: %v", envCkptEvery, err)
	}
	dir, acksPath, site := os.Getenv(envDir), os.Getenv(envAcks), os.Getenv(envSite)

	if mode := os.Getenv(envMode); mode != "" {
		return childComposed(mode, dir, acksPath, site, visit, seed, mutations, segBytes)
	}

	// The kill is immediate and unconditional: SIGKILL cannot be caught, so
	// nothing below the hook — not the WAL, not the acks file — gets a chance
	// to clean up. The empty select parks the hook's goroutine for the
	// microseconds signal delivery takes, so no post-kill code runs either.
	killer := faultinject.New(faultinject.Rule{
		Site:    site,
		OnVisit: visit,
		Do:      selfKill,
	})

	db, _, err := repro.OpenDurable(probeDims, BaseItems(seed), repro.DBOptions{
		Durability: &repro.DurabilityOptions{
			Dir:          dir,
			Policy:       wal.SyncAlways,
			SegmentBytes: segBytes,
			Hook:         killer,
		},
	})
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	acks, err := os.OpenFile(acksPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("acks file: %w", err)
	}

	for i, m := range Stream(seed, mutations) {
		var seq uint64
		if m.Op == OpInsert {
			seq, err = db.InsertDurable(m.Item)
		} else {
			seq, err = db.DeleteDurable(m.Item)
		}
		if err != nil {
			return fmt.Errorf("mutation %d: %w", i+1, err)
		}
		// The ack line is the parent's evidence that the client saw a
		// success. SIGKILL kills the process, not the kernel: a completed
		// write() survives in the page cache, so no fsync is needed here.
		if _, err := fmt.Fprintf(acks, "%d\n", seq); err != nil {
			return fmt.Errorf("ack %d: %w", seq, err)
		}
		if (i+1)%ckptEvery == 0 {
			if err := db.Checkpoint(); err != nil {
				return fmt.Errorf("checkpoint after %d: %w", i+1, err)
			}
		}
	}
	if err := acks.Close(); err != nil {
		return err
	}
	return db.Close()
}

// selfKill delivers the injected crash: SIGKILL to our own pid, then park
// the calling goroutine so no post-kill code runs in the microseconds signal
// delivery takes. Nothing — not the WAL, not the acks file — gets a chance
// to clean up, exactly what a crash looks like to the filesystem.
func selfKill() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		_ = p.Kill()
	}
	select {}
}

// childComposed drives one storage-fault composition scenario and dies
// inside it. Every path out of this function other than the kill is an
// error: a composed child that survives its scenario means the composition
// no longer reaches the machinery it exists to crash.
func childComposed(mode, dir, acksPath, site string, visit uint64, seed int64, mutations int, segBytes int64) error {
	wopts := repro.DurabilityOptions{Dir: dir, Policy: wal.SyncAlways, SegmentBytes: segBytes}
	if site != "" {
		wopts.Hook = faultinject.New(faultinject.Rule{Site: site, OnVisit: visit, Do: selfKill})
	}
	// An unlimited write fault on segment files; armed only inside the
	// scenario's fault window.
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Rule{Op: vfs.OpWrite, Path: "wal-", Fault: vfs.FaultEIO})
	ffs.SetArmed(false)
	wopts.FS = ffs

	db, _, err := repro.OpenDurable(probeDims, BaseItems(seed), repro.DBOptions{Durability: &wopts})
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	acks, err := os.OpenFile(acksPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("acks file: %w", err)
	}

	stream := Stream(seed, mutations)
	apply := func(m Mutation) (uint64, error) {
		if m.Op == OpInsert {
			return db.InsertDurable(m.Item)
		}
		return db.DeleteDurable(m.Item)
	}
	// Healthy prefix: acknowledged mutations the recovery invariants will
	// demand back. ModeQuarantine applies the whole stream (the crash comes
	// from rot, not a write fault) with a mid-stream checkpoint so sealed,
	// snapshot-uncovered segments exist to rot; the fault-window modes stop
	// at two thirds and fail the next mutation.
	healthy := len(stream) * 2 / 3
	if mode == ModeQuarantine {
		healthy = len(stream)
	}
	for i, m := range stream[:healthy] {
		seq, err := apply(m)
		if err != nil {
			return fmt.Errorf("healthy mutation %d: %w", i+1, err)
		}
		if _, err := fmt.Fprintf(acks, "%d\n", seq); err != nil {
			return fmt.Errorf("ack %d: %w", seq, err)
		}
		if mode == ModeQuarantine && i+1 == len(stream)/2 {
			if err := db.Checkpoint(); err != nil {
				return fmt.Errorf("mid-stream checkpoint: %w", err)
			}
		}
	}

	switch mode {
	case ModeDegraded, ModeReopen:
		ffs.SetArmed(true)
		if _, err := apply(stream[healthy]); !errors.Is(err, repro.ErrReadOnly) {
			return fmt.Errorf("faulted mutation: got %v, want ErrReadOnly", err)
		}
		if mode == ModeDegraded {
			selfKill()
		}
		// ModeReopen: the disk "recovers", and the reopen probe's success
		// visit carries the kill — the crash lands after the repair work,
		// before any caller observes a writable log.
		ffs.SetArmed(false)
		if err := db.ReopenWAL(); err != nil {
			return fmt.Errorf("reopen: %w", err)
		}
		return errors.New("survived the reopen kill site")
	case ModeQuarantine:
		// Rot the first sealed segment the mid-stream checkpoint does not
		// cover, then scrub: the salvage checkpoint covers it, and the
		// quarantine rename carries the kill.
		if err := rotFirstSealedSegment(dir); err != nil {
			return err
		}
		if _, err := db.ScrubWAL(repro.ScrubConfig{}); err != nil {
			return fmt.Errorf("scrub: %w", err)
		}
		return errors.New("survived the quarantine kill site")
	default:
		return fmt.Errorf("unknown composed mode %q", mode)
	}
}

// rotFirstSealedSegment flips one bit in the middle of the oldest sealed
// (non-active) segment file.
func rotFirstSealedSegment(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var segs []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	if len(segs) < 2 {
		return fmt.Errorf("no sealed segment to rot (have %v)", segs)
	}
	path := filepath.Join(dir, segs[0])
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(buf) == 0 {
		return fmt.Errorf("sealed segment %s is empty", segs[0])
	}
	buf[len(buf)/2] ^= 1
	return os.WriteFile(path, buf, 0o644)
}
