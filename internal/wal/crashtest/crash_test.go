package crashtest

import (
	"os"
	"testing"
)

// TestMain routes the re-exec'd child into the workload before the test
// framework parses anything: the child is this very test binary.
func TestMain(m *testing.M) {
	if IsChild() {
		ChildMain() // os.Exits
	}
	os.Exit(m.Run())
}

// TestCrashRecoverySmoke runs the kill matrix short: every site at the first
// two visits. make race-core runs this under -race; cmd/crash soaks the same
// harness at depth.
func TestCrashRecoverySmoke(t *testing.T) {
	res, err := Run(Options{
		Dir:       t.TempDir(),
		Mutations: 30,
		Seed:      42,
	})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("durability violation: %s", v)
	}
	if res.Kills == 0 {
		t.Fatalf("no trial killed the child; the injection hook is not firing (clean exits: %d)", res.CleanExits)
	}
	if res.Kills+res.CleanExits != res.Trials {
		t.Fatalf("trials=%d but kills=%d clean=%d", res.Trials, res.Kills, res.CleanExits)
	}
	t.Logf("trials=%d kills=%d clean=%d acked=%d recovered=%d torn=%d truncated=%dB snapshots=%d",
		res.Trials, res.Kills, res.CleanExits, res.AckedTotal, res.RecoveredTotal,
		res.TornTails, res.TruncatedBytes, res.Snapshots)
}

// TestComposedStorageFaultCrashes runs the kill × storage-fault composition:
// the child crashes while degraded read-only, inside the reopen probe, and
// inside a scrubber quarantine. The same four recovery invariants must hold —
// a crash in the fault machinery is still just a crash.
func TestComposedStorageFaultCrashes(t *testing.T) {
	res, err := Run(Options{
		Dir:       t.TempDir(),
		Mutations: 30,
		Seed:      42,
		Trials:    ComposedTrials(),
	})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("durability violation: %s", v)
	}
	if res.Kills != res.Trials {
		t.Fatalf("kills=%d trials=%d: a composed child survived its scenario (clean exits: %d)",
			res.Kills, res.Trials, res.CleanExits)
	}
}

// TestStreamIsDeterministic pins the property every invariant rests on: the
// child and the oracle must derive identical mutation streams.
func TestStreamIsDeterministic(t *testing.T) {
	a, b := Stream(7, 100), Stream(7, 100)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Op != b[i].Op || a[i].Item.ID != b[i].Item.ID || !a[i].Item.Point.Equal(b[i].Item.Point) {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if c := Stream(8, 100); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i].Item.ID != a[i].Item.ID || c[i].Op != a[i].Op {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical streams")
		}
	}
}

// TestReplayMatchesLiveApplication replays a full stream and checks it
// against a step-by-step application, including that deletes always target
// live items (the stream must never generate an invalid mutation).
func TestReplayMatchesLiveApplication(t *testing.T) {
	base := BaseItems(3)
	stream := Stream(3, 200)
	byID := make(map[int]struct{}, len(base))
	for _, it := range base {
		byID[it.ID] = struct{}{}
	}
	for i, m := range stream {
		if m.Op == OpInsert {
			if _, dup := byID[m.Item.ID]; dup {
				t.Fatalf("mutation %d inserts duplicate ID %d", i, m.Item.ID)
			}
			byID[m.Item.ID] = struct{}{}
		} else {
			if _, ok := byID[m.Item.ID]; !ok {
				t.Fatalf("mutation %d deletes absent ID %d", i, m.Item.ID)
			}
			delete(byID, m.Item.ID)
		}
	}
	want := Replay(base, stream)
	if len(want) != len(byID) {
		t.Fatalf("Replay yields %d items, live application %d", len(want), len(byID))
	}
	for _, it := range want {
		if _, ok := byID[it.ID]; !ok {
			t.Fatalf("Replay kept ID %d the live application dropped", it.ID)
		}
	}
}
