package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rtree"
	"repro/internal/wal/vfs"
)

// fillSegments appends n records to force rotation under a small segment cap
// and returns the items appended, for checkpointing.
func fillSegments(t *testing.T, l *Log, n int) []rtree.Item {
	t.Helper()
	items := make([]rtree.Item, 0, n)
	for i := 1; i <= n; i++ {
		it := item(i, float64(i), float64(-i))
		if _, err := l.Append(OpInsert, it); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		items = append(items, it)
	}
	return items
}

// corruptFirstSealed flips a bit in the middle of the oldest on-disk segment
// (always sealed once rotation has happened) and returns its path.
func corruptFirstSealed(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need a sealed segment, have %d total", len(segs))
	}
	path := filepath.Join(dir, segs[0].name)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 1
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScrubCleanLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 100})
	defer l.Close()
	items := fillSegments(t, l, 7)
	if err := l.Checkpoint(items, l.LastSeq()); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	rep, err := l.Scrub(ScrubConfig{})
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if rep.Corruptions != 0 || rep.Quarantined != 0 || rep.Degraded {
		t.Fatalf("clean log scrub = %+v, want no findings", rep)
	}
	if rep.Snapshots == 0 {
		t.Fatalf("scrub verified no snapshots: %+v", rep)
	}
}

func TestScrubSalvagesUncoveredSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 100})
	defer l.Close()
	items := fillSegments(t, l, 7) // no checkpoint: nothing covers the rot
	corrupted := corruptFirstSealed(t, dir)

	rep, err := l.Scrub(ScrubConfig{
		Checkpoint: func() error { return l.Checkpoint(items, l.LastSeq()) },
	})
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if rep.Corruptions != 1 || rep.Salvaged != 1 || rep.Quarantined != 1 || rep.Degraded {
		t.Fatalf("scrub = %+v, want 1 corruption salvaged and quarantined", rep)
	}
	if l.Failed() != nil {
		t.Fatalf("salvaged scrub left the log degraded: %v", l.Failed())
	}
	if _, err := os.Stat(corrupted); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt segment still in the recovery namespace (stat err %v)", err)
	}
	// The log is still writable and the directory still recovers.
	if _, err := l.Append(OpInsert, item(100, 1, 1)); err != nil {
		t.Fatalf("Append after scrub: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	if !rec.HaveSnapshot {
		t.Fatalf("recovery after salvage found no snapshot: %+v", rec)
	}
}

func TestScrubDegradesWithoutSalvageAndReopenClears(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 100})
	defer l.Close()
	items := fillSegments(t, l, 7)
	corruptFirstSealed(t, dir)

	rep, err := l.Scrub(ScrubConfig{}) // no salvage callback
	if err == nil || !rep.Degraded {
		t.Fatalf("scrub of uncovered rot with no salvage: err=%v rep=%+v, want degraded", err, rep)
	}
	se := l.Failed()
	if se == nil || se.Kind != KindCorruption {
		t.Fatalf("Failed() = %v, want corruption-kind", se)
	}
	if _, err := l.Append(OpInsert, item(101, 2, 2)); err == nil {
		t.Fatal("degraded log accepted an append")
	}
	// Reopen without a covering snapshot must refuse — the damage is real.
	if err := l.Reopen(); err == nil {
		t.Fatal("Reopen cleared a corruption nothing covers")
	}
	// Checkpoint is the heal path and must be allowed while corrupt-degraded;
	// after it, Reopen quarantines the damage and clears the condition.
	if err := l.Checkpoint(items, l.LastSeq()); err != nil {
		t.Fatalf("salvage checkpoint refused: %v", err)
	}
	if err := l.Reopen(); err != nil {
		t.Fatalf("Reopen after salvage checkpoint: %v", err)
	}
	if l.Failed() != nil {
		t.Fatalf("Failed() still set after reopen: %v", l.Failed())
	}
	if _, err := l.Append(OpInsert, item(102, 3, 3)); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
}

func TestScrubQuarantinesCoveredSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 100, KeepSnapshots: 2})
	defer l.Close()
	items := fillSegments(t, l, 4)
	if err := l.Checkpoint(items[:2], 2); err != nil {
		t.Fatalf("Checkpoint 1: %v", err)
	}
	if err := l.Checkpoint(items, l.LastSeq()); err != nil {
		t.Fatalf("Checkpoint 2: %v", err)
	}
	snaps, err := listSnapshots(vfs.OS, dir)
	if err != nil || len(snaps) != 2 {
		t.Fatalf("want 2 snapshots on disk, have %d (err %v)", len(snaps), err)
	}
	// Rot the older snapshot: the newer valid one covers it, so the scrubber
	// must quarantine directly, no salvage checkpoint needed.
	old := filepath.Join(dir, snaps[0].name)
	buf, err := os.ReadFile(old)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 1
	if err := os.WriteFile(old, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := l.Scrub(ScrubConfig{})
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if rep.Corruptions != 1 || rep.Quarantined != 1 || rep.Salvaged != 0 || rep.Degraded {
		t.Fatalf("scrub = %+v, want 1 covered quarantine, no salvage", rep)
	}
	if _, err := os.Stat(old + quarantineSuffix); err != nil {
		t.Fatalf("quarantined snapshot not found: %v", err)
	}
}

func TestCheckpointFaultLeavesNoTemp(t *testing.T) {
	for _, fault := range []vfs.Fault{vfs.FaultEIO, vfs.FaultENOSPC} {
		for _, op := range []vfs.Op{vfs.OpWrite, vfs.OpRename} {
			t.Run(fault.String()+"-"+string(op), func(t *testing.T) {
				dir := t.TempDir()
				ffs := vfs.NewFaultFS(vfs.OS, vfs.Rule{Op: op, Path: ".tmp", Fault: fault})
				ffs.SetArmed(false)
				l, _ := mustOpen(t, Options{Dir: dir, FS: ffs})
				defer l.Close()
				items := fillSegments(t, l, 3)

				ffs.SetArmed(true)
				err := l.Checkpoint(items, l.LastSeq())
				ffs.SetArmed(false)
				if err == nil {
					t.Fatal("checkpoint succeeded inside the fault window")
				}
				if l.Failed() != nil {
					t.Fatalf("failed checkpoint degraded the log: %v", l.Failed())
				}
				tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
				if len(tmps) > 0 {
					t.Fatalf("failed checkpoint left temp files: %v", tmps)
				}
				// Mutations unaffected, retry lands.
				if _, err := l.Append(OpInsert, item(50, 5, 5)); err != nil {
					t.Fatalf("Append after failed checkpoint: %v", err)
				}
				if err := l.Checkpoint(items, l.LastSeq()); err != nil {
					t.Fatalf("checkpoint retry: %v", err)
				}
			})
		}
	}
}

func TestAppendFaultDegradesAndReopenRearms(t *testing.T) {
	for _, fault := range []vfs.Fault{vfs.FaultEIO, vfs.FaultENOSPC, vfs.FaultShortWrite} {
		t.Run(fault.String(), func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(vfs.OS, vfs.Rule{Op: vfs.OpWrite, Path: "wal-", Fault: fault})
			ffs.SetArmed(false)
			l, _ := mustOpen(t, Options{Dir: dir, FS: ffs}) // SyncAlways default
			defer l.Close()

			if _, err := l.Append(OpInsert, item(1, 1, 1)); err != nil {
				t.Fatalf("healthy append: %v", err)
			}
			ffs.SetArmed(true)
			if _, err := l.Append(OpInsert, item(2, 2, 2)); err == nil {
				t.Fatal("faulted append succeeded")
			}
			se := l.Failed()
			if se == nil || se.Kind != KindIO {
				t.Fatalf("Failed() = %v, want io-kind", se)
			}
			// Sticky until reopened, even with the window closed.
			ffs.SetArmed(false)
			if _, err := l.Append(OpInsert, item(3, 3, 3)); err == nil {
				t.Fatal("degraded log accepted an append without Reopen")
			}
			if err := l.Reopen(); err != nil {
				t.Fatalf("Reopen: %v", err)
			}
			seq, err := l.Append(OpInsert, item(4, 4, 4))
			if err != nil {
				t.Fatalf("append after Reopen: %v", err)
			}
			if seq != 2 {
				t.Fatalf("post-reopen seq = %d, want 2 (no gap for the refused append)", seq)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// The torn half-frame must be gone: recovery replays exactly the
			// two acknowledged records with no torn-tail repair.
			_, rec := mustOpen(t, Options{Dir: dir})
			if rec.LastSeq != 2 || len(rec.Tail) != 2 || rec.TornTail {
				t.Fatalf("recovery = LastSeq %d, %d records, torn=%v; want 2/2/false",
					rec.LastSeq, len(rec.Tail), rec.TornTail)
			}
		})
	}
}

func TestSyncFaultDoesNotAcknowledge(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Rule{Op: vfs.OpSync, Path: "wal-", Fault: vfs.FaultSyncFail})
	ffs.SetArmed(false)
	l, _ := mustOpen(t, Options{Dir: dir, FS: ffs}) // SyncAlways
	defer l.Close()
	if _, err := l.Append(OpInsert, item(1, 1, 1)); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	ffs.SetArmed(true)
	if _, err := l.Append(OpInsert, item(2, 2, 2)); err == nil {
		t.Fatal("append with failed fsync was acknowledged")
	}
	ffs.SetArmed(false)
	if err := l.Reopen(); err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	// The written-but-unsynced frame was truncated: the refused mutation
	// leaves no durable trace, and the next append reuses its sequence.
	seq, err := l.Append(OpInsert, item(3, 3, 3))
	if err != nil {
		t.Fatalf("append after Reopen: %v", err)
	}
	if seq != 2 {
		t.Fatalf("post-reopen seq = %d, want 2", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	if rec.LastSeq != 2 || len(rec.Tail) != 2 {
		t.Fatalf("recovery = LastSeq %d, %d records; want 2/2", rec.LastSeq, len(rec.Tail))
	}
	if rec.Tail[1].Item.ID != 3 {
		t.Fatalf("seq 2 recovered as item %d, want the re-applied item 3", rec.Tail[1].Item.ID)
	}
}

func TestRotateFaultDegradesAndReopenRemovesStray(t *testing.T) {
	// The WAL dir is named "wal" so the rule's path filter catches its
	// directory fsync: the rotation then dies AFTER the O_EXCL segment
	// create, leaving a stray file Reopen must remove — the retried
	// rotation's O_EXCL create would otherwise collide forever.
	dir := filepath.Join(t.TempDir(), "wal")
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Rule{Op: vfs.OpSync, Path: "wal", OnCall: 1, Fault: vfs.FaultSyncFail})
	ffs.SetArmed(false)
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 100, FS: ffs})
	defer l.Close()
	// Two records fit under the cap; the third rotates. Under SyncAlways the
	// segment is clean at rotation time, so the first armed sync in rotation
	// is createSegment's directory fsync.
	for i := 1; i <= 2; i++ {
		if _, err := l.Append(OpInsert, item(i, float64(i), float64(i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	ffs.SetArmed(true)
	if _, err := l.Append(OpInsert, item(3, 3, 3)); err == nil {
		t.Fatal("append through a failed rotation succeeded")
	}
	ffs.SetArmed(false)
	if l.Failed() == nil {
		t.Fatal("failed rotation did not degrade the log")
	}
	stray := filepath.Join(dir, segmentName(3))
	if _, err := os.Stat(stray); err != nil {
		t.Fatalf("expected stray segment from the failed rotation: %v", err)
	}
	if err := l.Reopen(); err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Reopen left the stray segment behind (stat err %v)", err)
	}
	// The retried append re-creates the same segment name with O_EXCL — it
	// only succeeds because the stray is gone.
	if _, err := l.Append(OpInsert, item(3, 3, 3)); err != nil {
		t.Fatalf("append after Reopen: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	if rec.LastSeq != 3 || len(rec.Tail) != 3 {
		t.Fatalf("recovery = LastSeq %d, %d records; want 3/3", rec.LastSeq, len(rec.Tail))
	}
}

func TestRecoverySalvagesCoveredSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 100})
	items := fillSegments(t, l, 6)
	segs, err := listSegments(vfs.OS, dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("need ≥ 3 segments, have %d (err %v)", len(segs), err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A snapshot at the last sequence covers every sealed segment. Written
	// directly (not via Checkpoint) so compaction does not delete the
	// segments first — this models a crash after snapshot fsync, before
	// compaction.
	if err := writeSnapshotFile(vfs.OS, filepath.Join(dir, snapshotName(6)), items, 6); err != nil {
		t.Fatal(err)
	}
	// Rot a sealed middle segment.
	mid := filepath.Join(dir, segs[1].name)
	buf, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 1
	if err := os.WriteFile(mid, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if rec.QuarantinedSegments != 1 {
		t.Fatalf("recovery quarantined %d segments, want 1 (rec %+v)", rec.QuarantinedSegments, rec)
	}
	if !rec.HaveSnapshot || rec.SnapshotSeq != 6 {
		t.Fatalf("recovery did not anchor on the covering snapshot: %+v", rec)
	}
	if _, err := os.Stat(mid + quarantineSuffix); err != nil {
		t.Fatalf("quarantined segment not preserved for forensics: %v", err)
	}
	// Recovery state is the snapshot (covers all 6) — nothing lost.
	if len(rec.Items) != 6 {
		t.Fatalf("recovered %d items, want 6", len(rec.Items))
	}
	if _, err := l2.Append(OpInsert, item(50, 5, 5)); err != nil {
		t.Fatalf("append after salvaging recovery: %v", err)
	}
}

func TestQuarantinedFilesIgnoredByListings(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 100})
	fillSegments(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	before := len(segs)
	path := filepath.Join(dir, segs[0].name)
	if renamed, err := quarantineFile(vfs.OS, dir, path); err != nil || !renamed {
		t.Fatalf("quarantineFile = (%v, %v), want renamed", renamed, err)
	}
	segs, err = listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != before-1 {
		t.Fatalf("listing still sees %d segments after quarantine, want %d", len(segs), before-1)
	}
	for _, s := range segs {
		if strings.HasSuffix(s.name, quarantineSuffix) {
			t.Fatalf("listing returned a quarantined file: %s", s.name)
		}
	}
	// Idempotent on a vanished file.
	if renamed, err := quarantineFile(vfs.OS, dir, path); err != nil || renamed {
		t.Fatalf("second quarantine = (%v, %v), want no-op", renamed, err)
	}
}
