package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rtree"
	"repro/internal/wal/vfs"
)

func item(id int, coords ...float64) rtree.Item {
	return rtree.Item{ID: id, Point: geom.Point(coords)}
}

func mustOpen(t *testing.T, opts Options) (*Log, Recovery) {
	t.Helper()
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	return l, rec
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
	if rec.LastSeq != 0 || rec.HaveSnapshot || len(rec.Tail) != 0 {
		t.Fatalf("fresh dir recovery = %+v, want empty", rec)
	}
	want := []Record{
		{Seq: 1, Op: OpInsert, Item: item(7, 1.5, -2.25)},
		{Seq: 2, Op: OpInsert, Item: item(9, 0, 3)},
		{Seq: 3, Op: OpDelete, Item: item(7, 1.5, -2.25)},
	}
	for _, r := range want {
		seq, err := l.Append(r.Op, r.Item)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != r.Seq {
			t.Fatalf("Append seq = %d, want %d", seq, r.Seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if rec2.LastSeq != 3 {
		t.Fatalf("recovered LastSeq = %d, want 3", rec2.LastSeq)
	}
	if len(rec2.Tail) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Tail), len(want))
	}
	for i, r := range rec2.Tail {
		w := want[i]
		if r.Seq != w.Seq || r.Op != w.Op || r.Item.ID != w.Item.ID || !r.Item.Point.Equal(w.Item.Point) {
			t.Fatalf("record %d = %+v, want %+v", i, r, w)
		}
	}
	// Appends continue from the recovered sequence.
	seq, err := l2.Append(OpInsert, item(11, 4, 5))
	if err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if seq != 4 {
		t.Fatalf("post-recovery seq = %d, want 4", seq)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Each 2-d frame is 8+35 = 43 bytes; a 100-byte cap rotates every 2 records.
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 100})
	for i := 1; i <= 7; i++ {
		if _, err := l.Append(OpInsert, item(i, float64(i), float64(-i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("Segments = %d, want ≥ 3 after rotation", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != st.Segments {
		t.Fatalf("on-disk segments = %d, stats say %d", len(segs), st.Segments)
	}

	_, rec := mustOpen(t, Options{Dir: dir})
	if rec.LastSeq != 7 || len(rec.Tail) != 7 {
		t.Fatalf("recovery across segments: LastSeq=%d tail=%d, want 7/7", rec.LastSeq, len(rec.Tail))
	}
	for i, r := range rec.Tail {
		if r.Seq != uint64(i+1) || r.Item.ID != i+1 {
			t.Fatalf("record %d = %+v, want seq/id %d", i, r, i+1)
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			reg := obs.NewRegistry()
			l, _ := mustOpen(t, Options{Dir: t.TempDir(), Policy: policy, Metrics: NewMetrics(reg)})
			for i := 1; i <= 5; i++ {
				if _, err := l.Append(OpInsert, item(i, float64(i))); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			fsyncs := reg.JSONValue()["wal_fsyncs_total"].(uint64)
			switch policy {
			case SyncAlways:
				if fsyncs != 5 {
					t.Fatalf("SyncAlways fsyncs = %d, want 5", fsyncs)
				}
			case SyncNever:
				if fsyncs != 0 {
					t.Fatalf("SyncNever fsyncs = %d, want 0 before Close", fsyncs)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"": SyncAlways, "always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy(sometimes) accepted")
	}
}

func TestCheckpointAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 100, KeepSnapshots: 2})
	live := map[int]rtree.Item{}
	for i := 1; i <= 20; i++ {
		it := item(i, float64(i), float64(2*i))
		if _, err := l.Append(OpInsert, it); err != nil {
			t.Fatalf("Append: %v", err)
		}
		live[it.ID] = it
		if i%5 == 0 {
			if err := l.Checkpoint(sortedItems(live), l.LastSeq()); err != nil {
				t.Fatalf("Checkpoint at %d: %v", i, err)
			}
		}
	}
	snaps, err := listSnapshots(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("retained snapshots = %d, want 2", len(snaps))
	}
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	// The oldest retained snapshot covers seq 15; segments wholly below that
	// are gone. 20 records × 43B at 100B/segment ≈ 10 segments uncompacted.
	if len(segs) >= 8 {
		t.Fatalf("segments after compaction = %d, want far fewer than the ~10 written", len(segs))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec := mustOpen(t, Options{Dir: dir})
	if !rec.HaveSnapshot || rec.SnapshotSeq != 20 {
		t.Fatalf("recovery snapshot seq = %d (have=%v), want 20", rec.SnapshotSeq, rec.HaveSnapshot)
	}
	got, err := ApplyTail(rec.Items, rec.Tail)
	if err != nil {
		t.Fatalf("ApplyTail: %v", err)
	}
	if len(got) != 20 {
		t.Fatalf("recovered %d items, want 20", len(got))
	}
	for i, it := range got {
		if it.ID != i+1 || !it.Point.Equal(live[it.ID].Point) {
			t.Fatalf("item %d = %+v, want %+v", i, it, live[it.ID])
		}
	}
}

// TestSnapshotWriteDurationObserved pins the checkpoint-latency metric: every
// Checkpoint must land one observation in wal_snapshot_write_seconds — the
// window a checkpoint blocks appends for, which operators watch next to the
// fsync histogram.
func TestSnapshotWriteDurationObserved(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	l, _ := mustOpen(t, Options{Dir: t.TempDir(), Policy: SyncNever, Metrics: m})
	defer l.Close()
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(OpInsert, item(i, float64(i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := m.SnapshotWriteDur.Count(); got != 0 {
		t.Fatalf("snapshot-write observations before any checkpoint = %d, want 0", got)
	}
	if err := l.Checkpoint([]rtree.Item{item(1, 1)}, l.LastSeq()); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := m.SnapshotWriteDur.Count(); got != 1 {
		t.Fatalf("snapshot-write observations after one checkpoint = %d, want 1", got)
	}
	if _, ok := reg.JSONValue()["wal_snapshot_write_seconds"]; !ok {
		t.Fatal("wal_snapshot_write_seconds missing from the registry rendering")
	}
}

func TestCheckpointBeyondLastSeqRejected(t *testing.T) {
	l, _ := mustOpen(t, Options{Dir: t.TempDir(), Policy: SyncNever})
	defer l.Close()
	if err := l.Checkpoint(nil, 5); err == nil {
		t.Fatal("Checkpoint beyond last appended seq accepted")
	}
}

func TestApplyTailRejectsMismatchedLog(t *testing.T) {
	base := []rtree.Item{item(1, 0, 0)}
	if _, err := ApplyTail(base, []Record{{Seq: 1, Op: OpInsert, Item: item(1, 9, 9)}}); err == nil {
		t.Fatal("insert of present ID accepted")
	}
	if _, err := ApplyTail(base, []Record{{Seq: 1, Op: OpDelete, Item: item(2, 0, 0)}}); err == nil {
		t.Fatal("delete of absent ID accepted")
	}
	got, err := ApplyTail(base, []Record{
		{Seq: 1, Op: OpInsert, Item: item(2, 1, 1)},
		{Seq: 2, Op: OpDelete, Item: item(1, 0, 0)},
	})
	if err != nil {
		t.Fatalf("valid tail rejected: %v", err)
	}
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("ApplyTail = %+v, want only item 2", got)
	}
}

func TestCloseIsIdempotentAndFinal(t *testing.T) {
	l, _ := mustOpen(t, Options{Dir: t.TempDir(), Policy: SyncNever})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(OpInsert, item(1, 1)); err == nil {
		t.Fatal("Append after Close accepted")
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir accepted")
	}
}

func TestStrayTempRemovedOnOpen(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, snapshotName(3)+".tmp")
	if err := os.WriteFile(tmp, []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := mustOpen(t, Options{Dir: dir})
	defer l.Close()
	if rec.HaveSnapshot {
		t.Fatal("stray .tmp treated as a snapshot")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stray .tmp still present: %v", err)
	}
}
