package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// ScrubConfig tunes one integrity-scrub pass.
type ScrubConfig struct {
	// BytesPerSec rate-limits how fast the scrubber reads, so a pass over a
	// large log does not starve foreground IO. Zero means unlimited.
	BytesPerSec int64
	// Checkpoint, when non-nil, is the salvage escalation: if the scrubber
	// finds corruption that no existing valid snapshot covers, it calls
	// Checkpoint to persist a fresh full snapshot (from the live in-memory
	// state, which is still correct) and then quarantines the damage. The
	// callback must capture and checkpoint the owning database — it is
	// invoked WITHOUT the log lock held, exactly like an admin checkpoint.
	Checkpoint func() error
}

// ScrubReport summarises one scrub pass.
type ScrubReport struct {
	// Segments is the number of sealed segments fully re-verified.
	Segments int `json:"segments"`
	// Frames is the number of record frames whose CRCs were re-checked.
	Frames int `json:"frames"`
	// Snapshots is the number of snapshot files re-verified.
	Snapshots int `json:"snapshots"`
	// Corruptions counts damaged files found this pass.
	Corruptions int `json:"corruptions"`
	// Quarantined counts damaged files renamed aside this pass.
	Quarantined int `json:"quarantined"`
	// Salvaged counts fresh checkpoints taken to cover damage before
	// quarantining it.
	Salvaged int `json:"salvaged"`
	// Degraded reports that the pass found damage it could not salvage and
	// parked the log (Failed is now non-nil).
	Degraded bool `json:"degraded"`
	// Duration is the wall-clock pass time.
	Duration time.Duration `json:"duration_ns"`
}

// Scrub re-verifies every sealed segment frame and every snapshot checksum
// on disk — finding latent rot while there is still time to act, instead of
// during the recovery that needed the bytes. Damage covered by a newer valid
// snapshot is quarantined on the spot (salvage-by-snapshot: the snapshot
// supersedes every record the file could hold, nothing acknowledged is
// lost). Uncovered damage triggers the Checkpoint salvage callback when one
// is configured; otherwise the log degrades with a corruption-kind
// StorageError so mutations stop before the damage can spread into
// acknowledged history. The active segment is left to the append path and
// Reopen — scrubbing a file that is being written would only race it.
//
// Reads happen outside the log lock; appends, checkpoints and compaction
// proceed concurrently. A file that vanishes mid-pass was compacted away and
// is skipped.
func (l *Log) Scrub(cfg ScrubConfig) (ScrubReport, error) {
	start := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ScrubReport{}, errors.New("wal: log is closed")
	}
	fsys, dir, active := l.opts.FS, l.opts.Dir, l.activeName
	l.mu.Unlock()

	var rep ScrubReport
	lim := byteLimiter{perSec: cfg.BytesPerSec, start: start}

	segs, err := listSegments(fsys, dir)
	if err != nil {
		return rep, fmt.Errorf("wal: scrub: %w", err)
	}
	snaps, err := listSnapshots(fsys, dir)
	if err != nil {
		return rep, fmt.Errorf("wal: scrub: %w", err)
	}

	// Snapshots first: segment-coverage decisions below need to know the
	// newest seq a VALID snapshot reaches.
	var maxValidSnap uint64
	haveValidSnap := false
	type corruptFile struct {
		path string
		need uint64 // snapshot seq required to cover the damage
		seg  bool
		err  error
	}
	var corrupt []corruptFile
	for _, s := range snaps {
		path := filepath.Join(dir, s.name)
		buf, err := fsys.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // compacted mid-pass
			}
			return rep, fmt.Errorf("wal: scrub read %s: %w", s.name, err)
		}
		lim.take(len(buf))
		rep.Snapshots++
		if m := l.opts.Metrics; m != nil {
			m.ScrubSnapshots.Inc()
		}
		if _, _, perr := parseSnapshot(buf, path); perr != nil {
			rep.Corruptions++
			if m := l.opts.Metrics; m != nil {
				m.ScrubCorruptions.Inc()
			}
			// A snapshot that fails its checksum was never trustworthy;
			// recovery already skips it. It is covered by any VALID snapshot
			// at or above its own seq — without one, the log may have
			// compacted segments on its word, so salvage before quarantining.
			corrupt = append(corrupt, corruptFile{path: path, need: s.seq, seg: false, err: perr})
			continue
		}
		if s.seq > maxValidSnap || !haveValidSnap {
			maxValidSnap = s.seq
			haveValidSnap = true
		}
	}

	// Sealed segments: every frame must decode — a sealed segment was rotated
	// away after a full fsync, so torn-tail tolerance does not apply.
	for i, seg := range segs {
		if seg.name == active {
			continue
		}
		path := filepath.Join(dir, seg.name)
		buf, err := fsys.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // compacted mid-pass
			}
			return rep, fmt.Errorf("wal: scrub read %s: %w", seg.name, err)
		}
		lim.take(len(buf))
		rep.Segments++
		frames, derr := countFrames(buf, path)
		rep.Frames += frames
		if m := l.opts.Metrics; m != nil {
			m.ScrubSegments.Inc()
			m.ScrubFrames.Add(uint64(frames))
		}
		if derr == nil {
			continue
		}
		rep.Corruptions++
		if m := l.opts.Metrics; m != nil {
			m.ScrubCorruptions.Inc()
		}
		// The last seq this segment could hold is one below the next
		// segment's first; a snapshot at or past that covers it entirely.
		need := uint64(0)
		if i+1 < len(segs) {
			need = segs[i+1].firstSeq - 1
		}
		corrupt = append(corrupt, corruptFile{path: path, need: need, seg: true, err: derr})
	}

	// Dispose of the damage: quarantine what a valid snapshot covers,
	// salvage-then-quarantine what the callback can cover, degrade on the
	// rest.
	for _, c := range corrupt {
		if !(haveValidSnap && maxValidSnap >= c.need) {
			if cfg.Checkpoint == nil {
				l.mu.Lock()
				err := l.failCorrupt(StorageSiteScrub, c.path, c.need, c.err)
				l.mu.Unlock()
				rep.Degraded = true
				rep.Duration = time.Since(start)
				return rep, err
			}
			if err := cfg.Checkpoint(); err != nil {
				l.mu.Lock()
				ferr := l.failCorrupt(StorageSiteScrub, c.path, c.need, errors.Join(c.err, err))
				l.mu.Unlock()
				rep.Degraded = true
				rep.Duration = time.Since(start)
				return rep, ferr
			}
			rep.Salvaged++
			// The checkpoint persisted the full live state at the log's
			// current seq, which is ≥ anything a sealed segment holds.
			haveValidSnap = true
			if c.need > maxValidSnap {
				maxValidSnap = c.need
			}
		}
		l.mu.Lock()
		qerr := l.quarantineLocked(c.path, c.seg)
		l.mu.Unlock()
		if qerr != nil {
			rep.Duration = time.Since(start)
			return rep, fmt.Errorf("wal: scrub quarantine %s: %w", c.path, qerr)
		}
		rep.Quarantined++
	}
	rep.Duration = time.Since(start)
	return rep, nil
}

// countFrames strictly decodes every frame in a sealed segment, returning
// how many verified before the first damage (and the damage, if any).
func countFrames(buf []byte, path string) (int, error) {
	var off int64
	n := 0
	for off < int64(len(buf)) {
		_, next, ferr := decodeFrame(buf, off)
		if ferr != nil {
			return n, &CorruptionError{Path: path, Record: n, Offset: off, Reason: ferr.reason}
		}
		n++
		off = next
	}
	return n, nil
}

// byteLimiter paces cumulative reads to perSec bytes per second from start.
type byteLimiter struct {
	perSec int64
	start  time.Time
	spent  int64
}

func (b *byteLimiter) take(n int) {
	if b.perSec <= 0 {
		return
	}
	b.spent += int64(n)
	need := time.Duration(float64(b.spent) / float64(b.perSec) * float64(time.Second))
	if elapsed := time.Since(b.start); need > elapsed {
		time.Sleep(need - elapsed)
	}
}
