package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/wal/vfs"
)

// Snapshot file format (all integers little-endian):
//
//	magic "RSWS" | u16 version | u64 appliedSeq | u16 dims | u64 count |
//	per item: i64 id | dims × f64 coordinates |
//	u32 crc32c over every preceding byte (magic included)
//
// A snapshot is the full item set as of appliedSeq. The trailer makes
// verification all-or-nothing: recovery either gets the exact persisted set
// or rejects the file and falls back to an older snapshot plus a longer WAL
// tail.
const (
	snapshotMagic   = "RSWS"
	snapshotVersion = 1
	// snapshotHeaderLen is magic + version + appliedSeq + dims + count.
	snapshotHeaderLen = 4 + 2 + 8 + 2 + 8
	snapshotMaxDims   = 4096
)

// writeSnapshotFile writes and fsyncs the snapshot at path (the caller
// renames it into place).
func writeSnapshotFile(fsys vfs.FS, path string, items []rtree.Item, appliedSeq uint64) (err error) {
	dims := 0
	if len(items) > 0 {
		dims = items[0].Point.Dims()
	}
	if dims > snapshotMaxDims {
		return fmt.Errorf("snapshot has %d dims (max %d)", dims, snapshotMaxDims)
	}
	buf := make([]byte, 0, snapshotHeaderLen+len(items)*(8+8*dims)+4)
	buf = append(buf, snapshotMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, snapshotVersion)
	buf = binary.LittleEndian.AppendUint64(buf, appliedSeq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(dims))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(items)))
	for _, it := range items {
		if it.Point.Dims() != dims {
			return fmt.Errorf("snapshot item %d has %d dims, want %d", it.ID, it.Point.Dims(), dims)
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(it.ID)))
		for _, x := range it.Point {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if _, err := f.Write(buf); err != nil {
		return err
	}
	return f.Sync()
}

// readSnapshotFile reads and verifies a snapshot file, returning its item set
// and applied sequence number.
func readSnapshotFile(fsys vfs.FS, path string) ([]rtree.Item, uint64, error) {
	buf, err := fsys.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return parseSnapshot(buf, path)
}

// parseSnapshot verifies and decodes snapshot bytes (path is for error
// messages only).
func parseSnapshot(buf []byte, path string) ([]rtree.Item, uint64, error) {
	if len(buf) < snapshotHeaderLen+4 {
		return nil, 0, fmt.Errorf("snapshot %s: truncated (%d bytes)", path, len(buf))
	}
	body, trailer := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.Checksum(body, castagnoli); got != trailer {
		return nil, 0, fmt.Errorf("snapshot %s: checksum mismatch (stored %08x, computed %08x)", path, trailer, got)
	}
	if string(body[:4]) != snapshotMagic {
		return nil, 0, fmt.Errorf("snapshot %s: bad magic %q", path, body[:4])
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != snapshotVersion {
		return nil, 0, fmt.Errorf("snapshot %s: unsupported version %d (want %d)", path, v, snapshotVersion)
	}
	appliedSeq := binary.LittleEndian.Uint64(body[6:])
	dims := int(binary.LittleEndian.Uint16(body[14:]))
	count := binary.LittleEndian.Uint64(body[16:])
	if dims > snapshotMaxDims {
		return nil, 0, fmt.Errorf("snapshot %s: %d dims (max %d)", path, dims, snapshotMaxDims)
	}
	itemLen := 8 + 8*dims
	want := snapshotHeaderLen + int(count)*itemLen
	if count > uint64(len(body)) || len(body) != want {
		return nil, 0, fmt.Errorf("snapshot %s: %d items × %d dims does not match %d body bytes", path, count, dims, len(body))
	}
	items := make([]rtree.Item, 0, count)
	off := snapshotHeaderLen
	for i := uint64(0); i < count; i++ {
		var it rtree.Item
		it.ID = int(int64(binary.LittleEndian.Uint64(body[off:])))
		p := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			x := math.Float64frombits(binary.LittleEndian.Uint64(body[off+8+8*d:]))
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, 0, fmt.Errorf("snapshot %s: item %d has non-finite coordinate %d", path, it.ID, d)
			}
			p[d] = x
		}
		it.Point = p
		items = append(items, it)
		off += itemLen
	}
	return items, appliedSeq, nil
}

// ApplyTail replays a recovered WAL tail over a base item set, returning the
// resulting set sorted by ID. It enforces the invariants the append path
// guarantees (insert of a fresh ID, delete of a present item): a violation
// means the log does not belong to this base dataset, which is an operator
// error worth refusing loudly.
func ApplyTail(base []rtree.Item, tail []Record) ([]rtree.Item, error) {
	m := make(map[int]rtree.Item, len(base)+len(tail))
	for _, it := range base {
		if _, dup := m[it.ID]; dup {
			return nil, fmt.Errorf("wal: base dataset has duplicate id %d", it.ID)
		}
		m[it.ID] = it
	}
	for _, r := range tail {
		switch r.Op {
		case OpInsert:
			if _, dup := m[r.Item.ID]; dup {
				return nil, fmt.Errorf("wal: replay seq %d: insert of already-present id %d (log does not match this base dataset)", r.Seq, r.Item.ID)
			}
			m[r.Item.ID] = r.Item
		case OpDelete:
			if _, ok := m[r.Item.ID]; !ok {
				return nil, fmt.Errorf("wal: replay seq %d: delete of absent id %d (log does not match this base dataset)", r.Seq, r.Item.ID)
			}
			delete(m, r.Item.ID)
		default:
			return nil, fmt.Errorf("wal: replay seq %d: unknown op %d", r.Seq, r.Op)
		}
	}
	return sortedItems(m), nil
}

// sortedItems flattens an ID-keyed item map deterministically (ascending ID).
func sortedItems(m map[int]rtree.Item) []rtree.Item {
	out := make([]rtree.Item, 0, len(m))
	for _, it := range m {
		out = append(out, it)
	}
	sortItemsByID(out)
	return out
}

func sortItemsByID(items []rtree.Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
}
