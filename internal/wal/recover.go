package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rtree"
	"repro/internal/wal/vfs"
)

// CorruptionError reports unrecoverable mid-log corruption: a bad record with
// valid data after it, or structural damage recovery must not paper over.
// The offset and record index pinpoint the damage for forensics.
type CorruptionError struct {
	// Path is the corrupt segment file.
	Path string
	// Record is the 0-based index of the bad record within the segment (its
	// "line number").
	Record int
	// Offset is the byte offset of the bad frame within the segment.
	Offset int64
	// Reason describes what failed (checksum mismatch, implausible length,
	// sequence gap, ...).
	Reason string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("wal: %s: corrupt record %d at offset %d: %s", e.Path, e.Record, e.Offset, e.Reason)
}

// Recovery describes what Open reconstructed from the log directory.
type Recovery struct {
	// HaveSnapshot reports whether a valid snapshot was loaded; Items and
	// SnapshotSeq are meaningful only then.
	HaveSnapshot bool
	// Items is the newest valid snapshot's item set (nil without one — the
	// caller supplies the base dataset).
	Items []rtree.Item
	// SnapshotSeq is the applied sequence number of the loaded snapshot.
	SnapshotSeq uint64
	// CorruptSnapshots counts newer snapshot files that failed verification
	// and were skipped in favour of an older one.
	CorruptSnapshots int
	// Tail is every valid record with Seq > SnapshotSeq, in order. Apply it
	// over the snapshot (or base) item set — see ApplyTail.
	Tail []Record
	// LastSeq is the highest sequence number the log has ever acknowledged
	// that survived recovery (snapshot seq included).
	LastSeq uint64
	// TornTail reports that a torn/truncated final record was found and
	// truncated away.
	TornTail bool
	// TruncatedBytes is how many trailing bytes the torn-tail repair removed.
	TruncatedBytes int64
	// QuarantinedSegments counts corrupt sealed segments that were renamed
	// aside because the loaded snapshot covers every record they could hold
	// (salvage-by-snapshot): no acknowledged data was lost, the damaged bytes
	// are kept for forensics.
	QuarantinedSegments int
	// Segments is the number of segment files after recovery.
	Segments int
	// Duration is the wall-clock recovery time.
	Duration time.Duration
}

// Open recovers a log directory (created if missing) and returns a Log ready
// for appends plus the recovered state. A torn or truncated final record —
// the signature of a crash mid-write — is truncated away and recovery
// continues; corruption anywhere else fails with a *CorruptionError rather
// than silently dropping acknowledged mutations.
func Open(opts Options) (*Log, Recovery, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, Recovery{}, errors.New("wal: Options.Dir is required")
	}
	start := obs.Now()
	fsys := opts.FS
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, Recovery{}, err
	}
	var rec Recovery

	// Stray temp files are checkpoints that died before their rename: never
	// valid state, always safe to discard.
	if err := removeStrayTemps(fsys, opts.Dir); err != nil {
		return nil, Recovery{}, err
	}

	// Newest snapshot that verifies wins; corrupt ones are skipped (counted),
	// falling back to older snapshots and finally to the caller's base set.
	snaps, err := listSnapshots(fsys, opts.Dir)
	if err != nil {
		return nil, Recovery{}, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		items, seq, err := readSnapshotFile(fsys, filepath.Join(opts.Dir, snaps[i].name))
		if err != nil {
			rec.CorruptSnapshots++
			continue
		}
		rec.HaveSnapshot = true
		rec.Items = items
		rec.SnapshotSeq = seq
		break
	}

	segs, err := listSegments(fsys, opts.Dir)
	if err != nil {
		return nil, Recovery{}, err
	}
	rec.Segments = len(segs)
	lastSeq := rec.SnapshotSeq
	expect := uint64(0) // next expected seq; 0 until the first record is seen
	for i, seg := range segs {
		path := filepath.Join(opts.Dir, seg.name)
		final := i == len(segs)-1
		records, truncateAt, size, err := replaySegment(fsys, path, final)
		if err != nil {
			// Salvage-by-snapshot: a corrupt sealed segment whose every record
			// the loaded snapshot already covers (the NEXT segment starts at or
			// below snapshotSeq+1, so this one holds nothing newer) lost no
			// acknowledged data — quarantine it and keep recovering. Anything
			// else is real, unrecoverable corruption.
			var cerr *CorruptionError
			covered := errors.As(err, &cerr) && rec.HaveSnapshot && !final &&
				segs[i+1].firstSeq <= rec.SnapshotSeq+1
			if !covered {
				return nil, Recovery{}, err
			}
			if _, qerr := quarantineFile(fsys, opts.Dir, path); qerr != nil {
				return nil, Recovery{}, fmt.Errorf("wal: quarantining %s: %w", path, qerr)
			}
			rec.QuarantinedSegments++
			rec.Segments--
			if opts.Metrics != nil {
				opts.Metrics.RecoveryQuarantines.Inc()
			}
			// Re-anchor sequence continuity: the damaged segment's records are
			// gone, the snapshot stands in for them. The tail-hole check below
			// still refuses if anything above the snapshot went missing.
			expect = 0
			continue
		}
		if truncateAt >= 0 {
			if err := truncateAndSync(fsys, path, truncateAt); err != nil {
				return nil, Recovery{}, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
			rec.TornTail = true
			rec.TruncatedBytes = size - truncateAt
			if opts.Metrics != nil {
				opts.Metrics.TornTailTruncations.Inc()
			}
		}
		for _, r := range records {
			if expect != 0 && r.Seq != expect {
				return nil, Recovery{}, &CorruptionError{Path: path, Reason: fmt.Sprintf("sequence gap: got seq %d, want %d", r.Seq, expect)}
			}
			expect = r.Seq + 1
			if r.Seq > lastSeq {
				lastSeq = r.Seq
			}
			if r.Seq > rec.SnapshotSeq {
				rec.Tail = append(rec.Tail, r)
			}
		}
	}
	// Records below the snapshot may have been compacted away, but the first
	// surviving record must not be above the snapshot's successor — a hole
	// between snapshot and tail means lost acknowledged mutations.
	if len(rec.Tail) > 0 && rec.Tail[0].Seq > rec.SnapshotSeq+1 {
		return nil, Recovery{}, &CorruptionError{
			Path:   opts.Dir,
			Reason: fmt.Sprintf("log starts at seq %d but newest snapshot covers only up to %d: acknowledged mutations are missing", rec.Tail[0].Seq, rec.SnapshotSeq),
		}
	}
	rec.LastSeq = lastSeq

	// Position the log for appends: reopen the last segment, or create the
	// first one. Everything recovery validated counts as acknowledged, so the
	// committed marks start at the reopened position.
	l := &Log{opts: opts, seq: lastSeq, segments: rec.Segments}
	if len(segs) == 0 {
		f, err := createSegment(fsys, opts.Dir, lastSeq+1)
		if err != nil {
			return nil, Recovery{}, err
		}
		l.f = f
		l.activeName = segmentName(lastSeq + 1)
		l.segments = 1
	} else {
		path := filepath.Join(opts.Dir, segs[len(segs)-1].name)
		f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, Recovery{}, err
		}
		st, err := f.Stat()
		if err != nil {
			if cerr := f.Close(); cerr != nil {
				return nil, Recovery{}, errors.Join(err, cerr)
			}
			return nil, Recovery{}, err
		}
		l.f = f
		l.activeName = segs[len(segs)-1].name
		l.size = st.Size()
	}
	l.markCommitted()
	l.lastSync = obs.Now()
	rec.Duration = obs.Since(start)
	if m := opts.Metrics; m != nil {
		m.RecoveryDur.Set(rec.Duration.Seconds())
		m.LastSeq.Set(float64(lastSeq))
		m.RecoveredRecords.Add(uint64(len(rec.Tail)))
	}
	return l, rec, nil
}

// replaySegment reads every frame of one segment. For the final segment a
// torn tail is tolerated: the returned truncateAt (≥ 0) says where to cut.
// For non-final segments — and for damage that valid later data proves is not
// a torn tail — it returns a *CorruptionError.
func replaySegment(fsys vfs.FS, path string, final bool) (records []Record, truncateAt int64, size int64, err error) {
	buf, err := fsys.ReadFile(path)
	if err != nil {
		return nil, -1, 0, err
	}
	size = int64(len(buf))
	var off int64
	for idx := 0; off < size; idx++ {
		r, next, ferr := decodeFrame(buf, off)
		if ferr == nil {
			records = append(records, r)
			off = next
			continue
		}
		// Classification. A failure is a torn tail — truncate and continue —
		// only in the final segment AND only when nothing after the damage
		// could be valid data: the frame itself claims bytes past EOF, the
		// header is truncated, or everything from the damage to EOF is one
		// unfinished write. A CRC-bad record in the middle of a segment with
		// intact records after it is real corruption.
		if final && (ferr.torn || tornAtEOF(buf, off)) {
			return records, off, size, nil
		}
		return nil, -1, size, &CorruptionError{Path: path, Record: idx, Offset: off, Reason: ferr.reason}
	}
	return records, -1, size, nil
}

// tornAtEOF reports whether the damage starting at off is consistent with an
// interrupted final write: the bad frame's claimed extent reaches EOF (the
// payload was never fully written), or the remaining bytes are all zero
// (filesystem recovered the inode size but not the data).
func tornAtEOF(buf []byte, off int64) bool {
	rest := buf[off:]
	if allZero(rest) {
		return true
	}
	if len(rest) >= frameHeaderLen {
		payloadLen := int(uint32(rest[0]) | uint32(rest[1])<<8 | uint32(rest[2])<<16 | uint32(rest[3])<<24)
		if payloadLen >= minPayloadLen && payloadLen <= maxPayloadLen && frameHeaderLen+payloadLen == len(rest) {
			// The bad record is exactly the final one: its payload was cut or
			// scrambled by the crash and nothing follows it.
			return true
		}
	}
	return false
}

// truncateAndSync cuts the file at off and fsyncs the new size before any
// fresh appends land beyond the cut point. Without the fsync, a second crash
// could resurrect the discarded torn bytes *after* newly written valid
// records — which the next recovery would rightly classify as mid-log
// corruption and refuse to boot.
func truncateAndSync(fsys vfs.FS, path string, off int64) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(off); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// removeStrayTemps deletes "*.tmp" leftovers from checkpoints that crashed
// before their rename.
func removeStrayTemps(fsys vfs.FS, dir string) error {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			if err := fsys.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// quarantineFile renames a damaged file out of the log's namespace (the
// suffix breaks the name pattern every directory listing matches) and makes
// the rename durable. A file that already vanished counts as handled but is
// reported as renamed=false so callers keep their segment accounting honest.
func quarantineFile(fsys vfs.FS, dir, path string) (renamed bool, err error) {
	if err := fsys.Rename(path, path+quarantineSuffix); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	return true, syncDir(fsys, dir)
}
