package wal

import "repro/internal/obs"

// Metrics is the WAL's observability surface. Every field follows the obs
// nil-safety contract, so a zero Metrics (or a nil Options.Metrics) costs
// nothing at the call sites.
type Metrics struct {
	// Appends counts acknowledged Append calls.
	Appends *obs.Counter
	// AppendedBytes counts frame bytes written.
	AppendedBytes *obs.Counter
	// Fsyncs counts fsync syscalls on the active segment.
	Fsyncs *obs.Counter
	// FsyncDur is the fsync latency distribution in seconds.
	FsyncDur *obs.Histogram
	// Rotations counts segment rotations.
	Rotations *obs.Counter
	// Snapshots counts completed checkpoints.
	Snapshots *obs.Counter
	// SnapshotWriteDur is the snapshot write+rename+dir-fsync latency
	// distribution in seconds — the window a checkpoint blocks appends for.
	SnapshotWriteDur *obs.Histogram
	// CompactedSegments counts segment files deleted by compaction.
	CompactedSegments *obs.Counter
	// TornTailTruncations counts torn-tail repairs performed by recovery.
	TornTailTruncations *obs.Counter
	// RecoveredRecords counts tail records replayed by recovery.
	RecoveredRecords *obs.Counter
	// RecoveryDur is the last recovery's wall-clock duration in seconds.
	RecoveryDur *obs.Gauge
	// LastSeq is the last acknowledged sequence number.
	LastSeq *obs.Gauge
	// StorageErrors counts storage faults by site (append, sync, rotate,
	// checkpoint, compact, scrub, reopen). The first in a degraded window is
	// the one that parked the log.
	StorageErrors *obs.LabeledCounter
	// Reopens counts successful Reopen re-arms (degraded → recovered).
	Reopens *obs.Counter
	// CheckpointFailures counts checkpoints that failed non-fatally (snapshot
	// write or rename error) and will be retried.
	CheckpointFailures *obs.Counter
	// ScrubSegments counts sealed segments fully re-verified by Scrub.
	ScrubSegments *obs.Counter
	// ScrubFrames counts record frames re-verified by Scrub.
	ScrubFrames *obs.Counter
	// ScrubCorruptions counts corrupt files Scrub detected.
	ScrubCorruptions *obs.Counter
	// ScrubQuarantines counts damaged files renamed aside by Scrub or Reopen.
	ScrubQuarantines *obs.Counter
	// ScrubSnapshots counts snapshot files re-verified by Scrub.
	ScrubSnapshots *obs.Counter
	// RecoveryQuarantines counts corrupt covered segments quarantined by Open.
	RecoveryQuarantines *obs.Counter
}

// NewMetrics registers the WAL metric set on reg (nil reg → all-nil metrics,
// which every call site tolerates).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Appends:             reg.Counter("wal_appends_total", "Acknowledged WAL record appends."),
		AppendedBytes:       reg.Counter("wal_bytes_total", "WAL frame bytes written."),
		Fsyncs:              reg.Counter("wal_fsyncs_total", "WAL fsync syscalls."),
		FsyncDur:            reg.Histogram("wal_fsync_seconds", "WAL fsync latency in seconds.", nil),
		Rotations:           reg.Counter("wal_rotations_total", "WAL segment rotations."),
		Snapshots:           reg.Counter("wal_snapshots_total", "WAL checkpoints completed."),
		SnapshotWriteDur:    reg.Histogram("wal_snapshot_write_seconds", "WAL snapshot write latency in seconds.", nil),
		CompactedSegments:   reg.Counter("wal_compacted_segments_total", "WAL segment files deleted by compaction."),
		TornTailTruncations: reg.Counter("wal_torn_tail_truncations_total", "Torn-tail repairs performed during recovery."),
		RecoveredRecords:    reg.Counter("wal_recovered_records_total", "WAL tail records replayed during recovery."),
		RecoveryDur:         reg.Gauge("wal_recovery_seconds", "Duration of the last WAL recovery in seconds."),
		LastSeq:             reg.Gauge("wal_last_seq", "Last acknowledged WAL sequence number."),
		StorageErrors:       reg.LabeledCounter("wal_storage_errors_total", "WAL storage faults by site.", "site"),
		Reopens:             reg.Counter("wal_reopens_total", "Successful WAL reopen re-arms (degraded to recovered)."),
		CheckpointFailures:  reg.Counter("wal_checkpoint_failures_total", "Non-fatal checkpoint failures (retried on the next checkpoint)."),
		ScrubSegments:       reg.Counter("wal_scrub_segments_total", "Sealed WAL segments re-verified by the scrubber."),
		ScrubFrames:         reg.Counter("wal_scrub_frames_total", "WAL record frames re-verified by the scrubber."),
		ScrubCorruptions:    reg.Counter("wal_scrub_corruptions_total", "Corrupt files detected by the scrubber."),
		ScrubQuarantines:    reg.Counter("wal_scrub_quarantined_total", "Damaged WAL files renamed aside (quarantined)."),
		ScrubSnapshots:      reg.Counter("wal_scrub_snapshots_total", "Snapshot files re-verified by the scrubber."),
		RecoveryQuarantines: reg.Counter("wal_recovery_quarantined_total", "Corrupt covered segments quarantined during recovery."),
	}
}
