package obs

import "sync/atomic"

// Process-global cost counters: the paper's efficiency metrics (§VII measures
// R-tree node accesses, dominance tests and per-phase runtimes; node accesses
// live on each tree, the rest here). They are always on — the algorithm
// layers batch counts locally and flush one atomic add per operation, so the
// sequential golden path pays a handful of uncontended atomics per query —
// and process-global by design: a registry reads them through CounterFunc,
// and per-query attribution is done by snapshot deltas (Cost before/after),
// which is exact for single-threaded measurement and an aggregate under
// concurrency. Multiple DBs in one process share them.
var (
	costDominanceTests  atomic.Uint64
	costDSLComputations atomic.Uint64
	costWindowQueries   atomic.Uint64
	costSafeRegionVerts atomic.Uint64
	costCandidateEvals  atomic.Uint64
	costCacheStaleOnArr atomic.Uint64
	costDegradations    atomic.Uint64
	costCancellations   atomic.Uint64
	costPrunedEntries   atomic.Uint64
)

// AddDominanceTests records n point-point dominance evaluations (DynDominates
// and transformed-space Dominates calls on concrete points; point-rectangle
// prune tests are deliberately excluded so the count matches the paper's
// "dominance tests" and a brute-force oracle can reproduce it).
func AddDominanceTests(n int) {
	if n > 0 {
		costDominanceTests.Add(uint64(n))
	}
}

// AddDSLComputations records n full dynamic-skyline computations (cache hits
// do not count — the gap between window queries issued and DSLs computed is
// the cache's earning).
func AddDSLComputations(n int) {
	if n > 0 {
		costDSLComputations.Add(uint64(n))
	}
}

// AddWindowQueries records n window queries (full, existence or frontier).
func AddWindowQueries(n int) {
	if n > 0 {
		costWindowQueries.Add(uint64(n))
	}
}

// AddSafeRegionVertices records n safe-region rectangle corners enumerated
// (Algorithm 4's candidate q* source).
func AddSafeRegionVertices(n int) {
	if n > 0 {
		costSafeRegionVerts.Add(uint64(n))
	}
}

// AddCandidateEvaluations records n candidate evaluations (each case-C2
// corner evaluation runs a full MWP).
func AddCandidateEvaluations(n int) {
	if n > 0 {
		costCandidateEvals.Add(uint64(n))
	}
}

// AddCacheStale records n stale-on-arrival cache hits (entry found but
// generation-invalidated, so it was recomputed).
func AddCacheStale(n int) {
	if n > 0 {
		costCacheStaleOnArr.Add(uint64(n))
	}
}

// AddDegradations records n degradation events (a ladder rung failed and a
// cheaper rung was attempted).
func AddDegradations(n int) {
	if n > 0 {
		costDegradations.Add(uint64(n))
	}
}

// AddCancellations records n queries aborted by deadline or cancellation.
func AddCancellations(n int) {
	if n > 0 {
		costCancellations.Add(uint64(n))
	}
}

// AddPruned records n candidates discarded by an algorithm-level pruning rule
// (global dominance, a transformed-box frontier prune, a skyline discard)
// before any exact verification ran on them. R-tree subtree prunes are counted
// per tree (rtree.Tree.Pruned) because they stand for avoided page reads, not
// avoided candidates; this counter is the numerator of the per-phase prune
// ratios the explain plan reports.
func AddPruned(n int) {
	if n > 0 {
		costPrunedEntries.Add(uint64(n))
	}
}

// CostSnapshot is a point-in-time copy of the process-global cost counters.
// Node accesses are per-tree (rtree.Tree.Accesses) and are merged in by the
// repro layer's snapshot.
type CostSnapshot struct {
	DominanceTests       uint64 `json:"dominance_tests"`
	DSLComputations      uint64 `json:"dsl_computations"`
	WindowQueries        uint64 `json:"window_queries"`
	SafeRegionVertices   uint64 `json:"saferegion_vertices"`
	CandidateEvaluations uint64 `json:"candidate_evaluations"`
	CacheStale           uint64 `json:"cache_stale_on_arrival"`
	Degradations         uint64 `json:"degradations"`
	Cancellations        uint64 `json:"cancellations"`
	PrunedEntries        uint64 `json:"pruned_entries"`
}

// Cost reads the current global cost counters.
func Cost() CostSnapshot {
	return CostSnapshot{
		DominanceTests:       costDominanceTests.Load(),
		DSLComputations:      costDSLComputations.Load(),
		WindowQueries:        costWindowQueries.Load(),
		SafeRegionVertices:   costSafeRegionVerts.Load(),
		CandidateEvaluations: costCandidateEvals.Load(),
		CacheStale:           costCacheStaleOnArr.Load(),
		Degradations:         costDegradations.Load(),
		Cancellations:        costCancellations.Load(),
		PrunedEntries:        costPrunedEntries.Load(),
	}
}

// Sub returns the per-field difference s − o (the delta of one measured
// query or workload, with o the snapshot taken before it).
func (s CostSnapshot) Sub(o CostSnapshot) CostSnapshot {
	return CostSnapshot{
		DominanceTests:       s.DominanceTests - o.DominanceTests,
		DSLComputations:      s.DSLComputations - o.DSLComputations,
		WindowQueries:        s.WindowQueries - o.WindowQueries,
		SafeRegionVertices:   s.SafeRegionVertices - o.SafeRegionVertices,
		CandidateEvaluations: s.CandidateEvaluations - o.CandidateEvaluations,
		CacheStale:           s.CacheStale - o.CacheStale,
		Degradations:         s.Degradations - o.Degradations,
		Cancellations:        s.Cancellations - o.Cancellations,
		PrunedEntries:        s.PrunedEntries - o.PrunedEntries,
	}
}

// RegisterCost exposes the global cost counters on a registry as read-through
// counters.
func RegisterCost(r *Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("dominance_tests_total",
		"point-point dominance evaluations (the paper's dominance-test cost metric)",
		costDominanceTests.Load)
	r.CounterFunc("dsl_computations_total",
		"full dynamic-skyline computations (cache hits excluded)",
		costDSLComputations.Load)
	r.CounterFunc("window_queries_total",
		"window queries issued (full, existence and frontier)",
		costWindowQueries.Load)
	r.CounterFunc("saferegion_vertices_total",
		"safe-region rectangle corners enumerated by Algorithm 4",
		costSafeRegionVerts.Load)
	r.CounterFunc("candidate_evaluations_total",
		"candidate evaluations (case-C2 corners, each a full MWP)",
		costCandidateEvals.Load)
	r.CounterFunc("cache_stale_on_arrival_total",
		"cache hits invalidated by a racing mutation (generation mismatch)",
		costCacheStaleOnArr.Load)
	r.CounterFunc("degradation_events_total",
		"ladder degradations (a rung failed, a cheaper rung was attempted)",
		costDegradations.Load)
	r.CounterFunc("query_cancellations_total",
		"queries aborted by deadline or cancellation",
		costCancellations.Load)
	r.CounterFunc("pruned_entries_total",
		"candidates discarded by algorithm-level pruning rules before exact verification",
		costPrunedEntries.Load)
}
