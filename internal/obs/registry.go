package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// metricKind discriminates the registry entry variants.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindLabeled
	kindLabeledGauge
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindLabeled, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

type metric struct {
	name, help   string
	kind         metricKind
	counter      *Counter
	gauge        *Gauge
	hist         *Histogram
	labeled      *LabeledCounter
	labeledGauge *LabeledGauge
	counterFn    func() uint64
	gaugeFn      func() float64
}

// Registry holds named metrics and renders them as Prometheus text exposition
// format or JSON. Registration happens at setup time under a mutex; reads of
// the registered metrics themselves are lock-free. A nil Registry is valid:
// every factory returns a nil metric (whose operations are no-ops) and every
// render produces empty output, so a DB without observability costs nothing.
type Registry struct {
	mu     sync.Mutex
	order  []*metric
	byName map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register adds m under its name, returning the existing entry when the name
// is already taken by the same kind (idempotent re-registration) and
// panicking on a kind clash — names are chosen at development time, so a
// clash is a programming error worth failing loudly on.
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[m.name]; ok {
		if old.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", m.name, m.kind, old.kind))
		}
		return old
	}
	r.byName[m.name] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(&metric{name: name, help: help, kind: kindCounter, counter: &Counter{}}).counter
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(&metric{name: name, help: help, kind: kindGauge, gauge: &Gauge{}}).gauge
}

// Histogram registers (or returns the existing) histogram under name with the
// given bucket upper bounds (nil = DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets()
	}
	return r.register(&metric{name: name, help: help, kind: kindHistogram, hist: NewHistogram(bounds)}).hist
}

// LabeledCounter registers (or returns the existing) counter family under
// name, keyed by the given label.
func (r *Registry) LabeledCounter(name, help, label string) *LabeledCounter {
	if r == nil {
		return nil
	}
	return r.register(&metric{name: name, help: help, kind: kindLabeled, labeled: NewLabeledCounter(label)}).labeled
}

// LabeledGauge registers (or returns the existing) gauge family under name,
// keyed by the given label.
func (r *Registry) LabeledGauge(name, help, label string) *LabeledGauge {
	if r == nil {
		return nil
	}
	return r.register(&metric{name: name, help: help, kind: kindLabeledGauge, labeledGauge: NewLabeledGauge(label)}).labeledGauge
}

// CounterFunc registers a read-through counter whose value comes from fn at
// render time — the bridge for counters that live elsewhere (the R-tree's
// node-access atomics, cache hit counts, the process-global cost counters).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, kind: kindCounterFunc, counterFn: fn})
}

// GaugeFunc registers a read-through gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, gaugeFn: fn})
}

// snapshot copies the metric list so rendering runs without the lock.
func (r *Registry) snapshot() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.order...)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every metric in Prometheus text exposition format
// (version 0.0.4), the format `-metrics-addr` serves on /metrics.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.snapshot() {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind.promType()); err != nil {
			return err
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case kindCounterFunc:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counterFn())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.gauge.Value()))
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.gaugeFn()))
		case kindLabeled:
			vals := m.labeled.Values()
			keys := make([]string, 0, len(vals))
			for k := range vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if _, err = fmt.Fprintf(w, "%s{%s=%q} %d\n", m.name, m.labeled.label, k, vals[k]); err != nil {
					return err
				}
			}
		case kindLabeledGauge:
			vals := m.labeledGauge.Values()
			keys := make([]string, 0, len(vals))
			for k := range vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if _, err = fmt.Fprintf(w, "%s{%s=%q} %s\n", m.name, m.labeledGauge.label, k, formatFloat(vals[k])); err != nil {
					return err
				}
			}
		case kindHistogram:
			s := m.hist.Snapshot()
			var cum uint64
			for i, b := range s.Bounds {
				cum += s.Buckets[i]
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, s.Count); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", m.name, formatFloat(s.Sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", m.name, s.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// JSONValue returns every metric as a name → value map: counters and gauges
// as numbers, labeled counters as maps, histograms as snapshots (count, sum,
// p50/p95/p99, buckets).
func (r *Registry) JSONValue() map[string]any {
	out := make(map[string]any)
	for _, m := range r.snapshot() {
		switch m.kind {
		case kindCounter:
			out[m.name] = m.counter.Value()
		case kindCounterFunc:
			out[m.name] = m.counterFn()
		case kindGauge:
			out[m.name] = m.gauge.Value()
		case kindGaugeFunc:
			out[m.name] = m.gaugeFn()
		case kindLabeled:
			out[m.name] = m.labeled.Values()
		case kindLabeledGauge:
			out[m.name] = m.labeledGauge.Values()
		case kindHistogram:
			out[m.name] = m.hist.Snapshot()
		}
	}
	return out
}

// WriteJSON renders the JSONValue map, indented, sorted by name (the Go JSON
// encoder sorts map keys).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.JSONValue())
}

// Handler serves the Prometheus text rendering (Content-Type text/plain with
// the exposition-format version parameter).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the JSON rendering.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}
