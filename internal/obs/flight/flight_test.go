package flight

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock pins obs.Now for a test and returns an advance function.
func fakeClock(t *testing.T, start time.Duration) func(d time.Duration) {
	t.Helper()
	now := int64(start)
	restore := obs.SetClockForTest(func() int64 { return now })
	t.Cleanup(restore)
	return func(d time.Duration) { now += int64(d) }
}

func finishOne(l *Ledger, outcome string) QueryRecord {
	a := l.Begin("op", "test", "", 0)
	rec, _ := a.Finish(outcome, "")
	return rec
}

func TestRingWraparoundAndRecentOrder(t *testing.T) {
	l := New(Config{Size: 4, HeadSampleEvery: 1 << 20})
	for i := 0; i < 6; i++ {
		finishOne(l, OutcomeOK)
	}
	got := l.Recent(0)
	if len(got) != 4 {
		t.Fatalf("Recent(0) returned %d records, want ring size 4", len(got))
	}
	for i, wantID := range []uint64{6, 5, 4, 3} {
		if got[i].ID != wantID {
			t.Errorf("Recent[%d].ID = %d, want %d (newest first)", i, got[i].ID, wantID)
		}
	}
	if got := l.Recent(2); len(got) != 2 || got[0].ID != 6 {
		t.Errorf("Recent(2) = %d records starting at ID %d, want 2 starting at 6", len(got), got[0].ID)
	}
	tot := l.Totals()
	if tot.Started != 6 || tot.Finished != 6 || tot.Evicted != 2 || tot.InFlight != 0 {
		t.Errorf("totals = %+v, want started=finished=6, evicted=2, inflight=0", tot)
	}
}

// TestSamplerRetainsBadOutcomes is the tail sampler's contract: every shed,
// errored, deadline or unavailable record — and every degraded or breaker-
// touched one — keeps its trace, no matter how the head sampler is tuned.
func TestSamplerRetainsBadOutcomes(t *testing.T) {
	l := New(Config{HeadSampleEvery: 1 << 20}) // head sampling effectively off
	cases := []struct {
		outcome string
		reason  string
	}{
		{OutcomeError, SampleError},
		{OutcomeDeadline, SampleError},
		{OutcomeUnavailable, SampleError},
		{OutcomeShed, SampleShed},
	}
	for _, tc := range cases {
		rec := finishOne(l, tc.outcome)
		if !rec.Sampled || rec.SampleReason != tc.reason {
			t.Errorf("outcome %q: sampled=%v reason=%q, want sampled with reason %q",
				tc.outcome, rec.Sampled, rec.SampleReason, tc.reason)
		}
	}

	// Degraded-but-successful answers are kept too.
	a := l.Begin("mwq", "test", "", 0)
	a.SetRung("mwp", true)
	if rec, _ := a.Finish(OutcomeOK, ""); !rec.Sampled || rec.SampleReason != SampleDegraded {
		t.Errorf("degraded ok record: sampled=%v reason=%q, want degraded", rec.Sampled, rec.SampleReason)
	}

	// A breaker veto shows up as a "gate" trace event.
	a = l.Begin("mwq", "test", "", 0)
	a.Trace().Event("gate", "exact rung skipped: breaker open")
	if rec, _ := a.Finish(OutcomeOK, ""); !rec.Sampled || rec.SampleReason != SampleBreaker {
		t.Errorf("breaker record: sampled=%v reason=%q, want breaker", rec.Sampled, rec.SampleReason)
	}

	// Healthy fast records with head sampling off are NOT kept, and
	// cancellations are the client's choice, not a bad outcome.
	if rec := finishOne(l, OutcomeOK); rec.Sampled {
		t.Errorf("healthy record sampled (reason %q), want unsampled", rec.SampleReason)
	}
	if rec := finishOne(l, OutcomeCanceled); rec.Sampled {
		t.Errorf("canceled record sampled (reason %q), want unsampled", rec.SampleReason)
	}
}

func TestHeadSamplingDeterministic(t *testing.T) {
	l := New(Config{HeadSampleEvery: 3})
	var sampledIDs []uint64
	for i := 0; i < 7; i++ {
		if rec := finishOne(l, OutcomeOK); rec.Sampled {
			if rec.SampleReason != SampleHead {
				t.Errorf("record %d: reason %q, want head", rec.ID, rec.SampleReason)
			}
			sampledIDs = append(sampledIDs, rec.ID)
		}
	}
	if len(sampledIDs) != 2 || sampledIDs[0] != 3 || sampledIDs[1] != 6 {
		t.Errorf("head-sampled IDs = %v, want [3 6] (every 3rd by record ID)", sampledIDs)
	}
}

func TestSlowSampling(t *testing.T) {
	advance := fakeClock(t, time.Hour)
	l := New(Config{HeadSampleEvery: 1 << 20}) // MinSlow defaults to 250ms

	a := l.Begin("op", "test", "", 0)
	advance(400 * time.Millisecond)
	if rec, _ := a.Finish(OutcomeOK, ""); !rec.Sampled || rec.SampleReason != SampleSlow {
		t.Errorf("400ms record: sampled=%v reason=%q, want slow (MinSlow floor 250ms)", rec.Sampled, rec.SampleReason)
	}
	a = l.Begin("op", "test", "", 0)
	advance(100 * time.Millisecond)
	if rec, _ := a.Finish(OutcomeOK, ""); rec.Sampled {
		t.Errorf("100ms record sampled (reason %q), want unsampled below the floor", rec.SampleReason)
	}
}

// TestSlowThresholdTracksP99 checks the p99-relative rule: once the latency
// histogram warms up, "slow" means slow relative to live traffic, not the
// absolute floor.
func TestSlowThresholdTracksP99(t *testing.T) {
	advance := fakeClock(t, time.Hour)
	reg := obs.NewRegistry()
	hist := reg.Histogram("req_seconds", "test", nil)
	for i := 0; i < 200; i++ {
		hist.Observe(1.8) // p99 lands in a bucket ≥ 1.8s
	}
	l := New(Config{Latency: hist, WarmCount: 100, HeadSampleEvery: 1 << 20})

	// 400ms is past the absolute floor but well under the live p99: healthy.
	a := l.Begin("op", "test", "", 0)
	advance(400 * time.Millisecond)
	if rec, _ := a.Finish(OutcomeOK, ""); rec.Sampled {
		t.Errorf("400ms record sampled (reason %q) though live p99 is ~2s", rec.SampleReason)
	}
	a = l.Begin("op", "test", "", 0)
	advance(5 * time.Second)
	if rec, _ := a.Finish(OutcomeOK, ""); !rec.Sampled || rec.SampleReason != SampleSlow {
		t.Errorf("5s record: sampled=%v reason=%q, want slow", rec.Sampled, rec.SampleReason)
	}
}

func TestFinishIdempotent(t *testing.T) {
	l := New(Config{})
	a := l.Begin("op", "test", "", 0)
	if _, done := a.Finish(OutcomeOK, ""); !done {
		t.Fatal("first Finish reported not-done")
	}
	if _, done := a.Finish(OutcomeError, "late"); done {
		t.Fatal("second Finish closed the record again")
	}
	tot := l.Totals()
	if tot.Finished != 1 || tot.ByOutcome[OutcomeError] != 0 {
		t.Errorf("totals after double Finish = %+v, want exactly one ok record", tot)
	}
}

func TestNilSafety(t *testing.T) {
	var l *Ledger
	a := l.Begin("op", "test", "params", 3)
	if a != nil {
		t.Fatal("nil ledger returned a non-nil Active")
	}
	// Every method on the nil Active must be a no-op, not a panic.
	a.SetAdmission("admitted")
	a.SetQueueWait(time.Millisecond)
	a.SetRung("exact", false)
	a.SetWALSeq(1)
	a.SetSnapshotSeq(1)
	a.SetCache(1, 2)
	if _, done := a.Finish(OutcomeOK, ""); done {
		t.Fatal("nil Active Finish reported done")
	}
	if a.Trace() != nil {
		t.Fatal("nil Active returned a trace")
	}
	if l.Recent(0) != nil || l.InFlight() != nil || l.StatusValue() != nil {
		t.Fatal("nil ledger returned non-nil views")
	}
	if tot := l.Totals(); tot.Started != 0 {
		t.Fatal("nil ledger has totals")
	}
}

func TestRungAttemptsAndDegradeReasonsFromTrace(t *testing.T) {
	l := New(Config{HeadSampleEvery: 1 << 20})
	a := l.Begin("mwq", "test", "q=1,2 c=3", 2)
	tr := a.Trace()
	end := tr.StartSpan("rung.exact")
	end()
	tr.Eventf("degrade", "exact rung failed (%s), falling through", "panic: boom")
	end = tr.StartSpan("rung.mwp")
	end()
	a.SetRung("mwp", true)
	rec, _ := a.Finish(OutcomeOK, "")

	if len(rec.Attempts) != 2 || rec.Attempts[0].Rung != "exact" || rec.Attempts[1].Rung != "mwp" {
		t.Errorf("attempts = %+v, want [exact mwp] from the rung.* spans", rec.Attempts)
	}
	if len(rec.DegradeReasons) != 1 || !strings.Contains(rec.DegradeReasons[0], "panic: boom") {
		t.Errorf("degrade reasons = %v, want the degrade event detail", rec.DegradeReasons)
	}
	if !rec.Sampled || rec.SampleReason != SampleDegraded {
		t.Errorf("sampled=%v reason=%q, want degraded", rec.Sampled, rec.SampleReason)
	}
	if len(rec.Trace) == 0 || len(rec.Events) == 0 {
		t.Error("sampled record did not retain its span/event dump")
	}
	if rec.ParamsDigest == "" || rec.ParamsDigest != Digest("q=1,2 c=3") {
		t.Errorf("params digest %q does not match Digest of the raw params", rec.ParamsDigest)
	}
}

func TestInFlightInspector(t *testing.T) {
	l := New(Config{})
	a := l.Begin("whynot", "http", "q=1", 4)
	defer a.Finish(OutcomeOK, "")

	infos := l.InFlight()
	if len(infos) != 1 {
		t.Fatalf("InFlight returned %d entries, want 1", len(infos))
	}
	if infos[0].Op != "whynot" || infos[0].Workers != 4 || infos[0].Phase != "-" {
		t.Errorf("in-flight entry = %+v, want op=whynot workers=4 phase=- before any span completes", infos[0])
	}
	end := a.Trace().StartSpan("membership")
	end()
	if infos = l.InFlight(); infos[0].Phase != "membership" {
		t.Errorf("phase = %q after the membership span completed, want membership", infos[0].Phase)
	}
	if tot := l.Totals(); tot.InFlight != 1 {
		t.Errorf("totals in-flight = %d, want 1", tot.InFlight)
	}
}

func TestEpochStampsWallTime(t *testing.T) {
	epoch := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	l := New(Config{Epoch: epoch})
	rec := finishOne(l, OutcomeOK)
	if rec.TS == "" {
		t.Fatal("record has no ts despite Config.Epoch")
	}
	ts, err := time.Parse(time.RFC3339Nano, rec.TS)
	if err != nil {
		t.Fatalf("ts %q is not RFC3339: %v", rec.TS, err)
	}
	if ts.Before(epoch) {
		t.Errorf("ts %v is before the epoch %v", ts, epoch)
	}
}

func TestSlowlogWriteAndRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.jsonl")
	sl, err := OpenSlowLog(path, 600)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()

	l := New(Config{Slowlog: sl, HeadSampleEvery: 1}) // sample (and log) everything
	for i := 0; i < 12; i++ {
		finishOne(l, OutcomeOK)
	}
	if tot := l.Totals(); tot.LogErrors != 0 {
		t.Fatalf("%d slowlog write errors", tot.LogErrors)
	}

	checkLines := func(p string) int {
		buf, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		lines := strings.Split(strings.TrimSpace(string(buf)), "\n")
		for _, line := range lines {
			var rec QueryRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("%s: bad JSON line %q: %v", p, line, err)
			}
			if rec.Schema != SchemaVersion {
				t.Fatalf("%s: line with schema %d, want %d", p, rec.Schema, SchemaVersion)
			}
		}
		return len(lines)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("no rotated file after exceeding maxBytes: %v", err)
	}
	if n := checkLines(path) + checkLines(path+".1"); n == 0 || n > 12 {
		t.Errorf("slowlog holds %d lines across both files, want >0 and ≤12", n)
	}

	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sl.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := sl.Write(&QueryRecord{}); err == nil {
		t.Error("Write after Close succeeded")
	}
}

func TestSLOWindowMath(t *testing.T) {
	advance := fakeClock(t, 2*time.Hour)
	tr := NewSLOTracker([]Objective{
		{Op: "whynot", Latency: 100 * time.Millisecond, Target: 0.99},
	}, nil)

	for i := 0; i < 9; i++ {
		tr.Observe("whynot", 10*time.Millisecond, false)
	}
	tr.Observe("whynot", 10*time.Millisecond, true)   // failed outcome
	tr.Observe("rskyline", 10*time.Millisecond, true) // different op: ignored
	tr.Observe("whynot", 500*time.Millisecond, false) // slow: bad via Latency

	st := tr.Status()
	if len(st) != 1 {
		t.Fatalf("Status returned %d objectives, want 1", len(st))
	}
	w := st[0].Window5m
	if w.Good != 9 || w.Bad != 2 {
		t.Fatalf("5m window = %d good / %d bad, want 9/2", w.Good, w.Bad)
	}
	// Burn rate = badFraction / (1 − target) = (2/11) / 0.01.
	want := (2.0 / 11.0) / 0.01
	if diff := w.BurnRate - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("5m burn rate = %g, want %g", w.BurnRate, want)
	}

	// Six minutes later the 5m window has rotated clean; the 1h window still
	// remembers the bad minute.
	advance(6 * time.Minute)
	st = tr.Status()
	if w := st[0].Window5m; w.Good != 0 || w.Bad != 0 || w.BurnRate != 0 {
		t.Errorf("5m window after 6 minutes = %+v, want empty", w)
	}
	if w := st[0].Window1h; w.Good != 9 || w.Bad != 2 {
		t.Errorf("1h window after 6 minutes = %d good / %d bad, want 9/2", w.Good, w.Bad)
	}

	// Two hours later even the long window has rotated out.
	advance(2 * time.Hour)
	if w := tr.Status()[0].Window1h; w.Good != 0 || w.Bad != 0 {
		t.Errorf("1h window after 2 more hours = %+v, want empty", w)
	}
}

func TestSLOTrackerNil(t *testing.T) {
	if tr := NewSLOTracker(nil, nil); tr != nil {
		t.Fatal("tracker without objectives should be nil")
	}
	var tr *SLOTracker
	tr.Observe("whynot", time.Second, true) // must not panic
	if tr.Status() != nil {
		t.Fatal("nil tracker returned status")
	}
}

func TestParseObjectives(t *testing.T) {
	got, err := ParseObjectives("whynot:250ms:99.9, *:1s:99%")
	if err != nil {
		t.Fatal(err)
	}
	want := []Objective{
		{Op: "whynot", Latency: 250 * time.Millisecond, Target: 0.999},
		{Op: "*", Latency: time.Second, Target: 0.99},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d objectives, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Latency != want[i].Latency ||
			got[i].Target < want[i].Target-1e-12 || got[i].Target > want[i].Target+1e-12 {
			t.Errorf("objective %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	if got, err := ParseObjectives("  "); err != nil || got != nil {
		t.Errorf("empty spec: got %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{
		"whynot:250ms",        // missing target
		"whynot:fast:99",      // bad duration
		":250ms:99",           // empty op
		"whynot:250ms:0",      // target at 0
		"whynot:250ms:100",    // target at 100
		"whynot:-1s:99",       // negative latency
		"whynot:250ms:ninety", // non-numeric target
	} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted invalid input", bad)
		}
	}
}

func TestClassifyErr(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, OutcomeOK},
		{context.DeadlineExceeded, OutcomeDeadline},
		{context.Canceled, OutcomeCanceled},
		{errors.New("boom"), OutcomeError},
	}
	for _, tc := range cases {
		if got := ClassifyErr(tc.err); got != tc.want {
			t.Errorf("ClassifyErr(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

func TestDigest(t *testing.T) {
	if Digest("") != "" {
		t.Error("empty params should digest to empty")
	}
	a, b := Digest("q=1,2 c=3"), Digest("q=1,2 c=3")
	if a != b || len(a) != 16 {
		t.Errorf("digest not stable 16-hex: %q vs %q", a, b)
	}
	if Digest("q=1,2 c=4") == a {
		t.Error("different params collided (FNV-1a should separate these)")
	}
}
