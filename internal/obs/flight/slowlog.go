package flight

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// DefaultSlowLogMaxBytes is the rotation threshold when none is given.
const DefaultSlowLogMaxBytes = 8 << 20

// SlowLog appends sampled QueryRecords as JSON lines (one record per line,
// each self-describing via schema_version). When the file would exceed
// maxBytes the current file is renamed to <path>.1 (replacing any previous
// rotation) and a fresh file is started — at most two files ever exist, so
// disk use is bounded without a log-management dependency.
type SlowLog struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64
}

// OpenSlowLog opens (appending) or creates the slow-query log at path.
// maxBytes ≤ 0 selects DefaultSlowLogMaxBytes.
func OpenSlowLog(path string, maxBytes int64) (*SlowLog, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultSlowLogMaxBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("flight: open slowlog: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("flight: stat slowlog: %w", err)
	}
	return &SlowLog{path: path, maxBytes: maxBytes, f: f, size: st.Size()}, nil
}

// Path returns the log file path.
func (s *SlowLog) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// Write appends one record as a JSON line, rotating first if the line would
// push the file past the size limit.
func (s *SlowLog) Write(rec *QueryRecord) error {
	if s == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("flight: marshal record: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("flight: slowlog closed")
	}
	if s.size > 0 && s.size+int64(len(line)) > s.maxBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := s.f.Write(line)
	s.size += int64(n)
	if err != nil {
		return fmt.Errorf("flight: slowlog write: %w", err)
	}
	return nil
}

func (s *SlowLog) rotateLocked() error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("flight: slowlog close for rotation: %w", err)
	}
	s.f = nil
	if err := os.Rename(s.path, s.path+".1"); err != nil {
		return fmt.Errorf("flight: slowlog rotate: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("flight: slowlog reopen: %w", err)
	}
	s.f, s.size = f, 0
	return nil
}

// Close flushes and closes the log. Idempotent; Writes after Close fail.
func (s *SlowLog) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	if err != nil {
		return fmt.Errorf("flight: slowlog close: %w", err)
	}
	return nil
}
