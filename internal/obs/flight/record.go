// Package flight is the always-on query flight recorder: a bounded,
// lock-cheap ledger that gives every request — HTTP handler, CLI command or
// embedded-DB call — one QueryRecord with the attribution the aggregate
// counters of internal/obs cannot provide: which rungs of the degradation
// ladder ran and why the ladder fell through, which paper cost counters this
// query paid (dominance tests, window queries, safe-region vertices, ...),
// how long it queued in admission, whether it hit the cache, and — when it
// mutated — which WAL sequence acknowledged it.
//
// The ledger is three structures:
//
//   - a fixed-size ring of finished QueryRecords (Recent), overwritten
//     oldest-first, so memory is bounded no matter the request rate;
//   - an in-flight table (InFlight) of currently-executing queries, with the
//     phase read live from the query's lock-free obs.Trace;
//   - a tail sampler that retains the full span/event dump of the trace only
//     for the records worth keeping: slow (relative to the live p99 of the
//     serving latency histogram), errored, shed, degraded, or breaker-
//     skipped, plus a deterministic 1-in-N head sample for baselines.
//
// Sampled records can additionally be appended to a SlowLog (schema-
// versioned JSON lines, rotated by size), and an SLOTracker turns per-op
// latency/error objectives into multi-window (5m/1h) burn-rate gauges.
//
// Everything is nil-safe in the internal/obs tradition: a nil *Ledger
// returns a nil *Active whose every method is a no-op, so disabled
// configurations pay only a nil check per call site. This package never
// reads the wall clock (`make vet-obs` enforces it): timestamps come from
// obs.Now, and Config.Epoch maps them back to wall time for log output.
package flight

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/obs"
)

// SchemaVersion stamps every QueryRecord (and therefore every slow-log
// line). Bump it when a field changes meaning, not when fields are added.
const SchemaVersion = 1

// Outcome values of a finished record. The server maps HTTP statuses onto
// these; ClassifyErr maps plain errors.
const (
	OutcomeOK          = "ok"
	OutcomeError       = "error"
	OutcomeShed        = "shed"
	OutcomeDeadline    = "deadline"
	OutcomeCanceled    = "canceled"
	OutcomeUnavailable = "unavailable"
	// OutcomeReadOnly marks a mutation refused because storage is degraded:
	// distinguishable from overload sheds in the ledger, and it counts
	// against the mutation SLO (the service failed to accept a write).
	OutcomeReadOnly = "readonly"
)

// Sample reasons, in decision priority order: the first matching reason is
// recorded. "head" marks the deterministic 1-in-N baseline sample.
const (
	SampleError    = "error"
	SampleShed     = "shed"
	SampleDegraded = "degraded"
	SampleBreaker  = "breaker"
	SampleSlow     = "slow"
	SampleHead     = "head"
)

// RungAttempt is one execution of a degradation-ladder rung, reconstructed
// from the query trace's "rung.<name>" spans.
type RungAttempt struct {
	Rung       string  `json:"rung"`
	DurationMS float64 `json:"duration_ms"`
}

// TraceSpan is one retained span of a tail-sampled trace.
type TraceSpan struct {
	Name       string  `json:"name"`
	StartNS    int64   `json:"start_ns"`
	DurationMS float64 `json:"duration_ms"`
}

// TraceEvent is one retained event of a tail-sampled trace.
type TraceEvent struct {
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	AtNS   int64  `json:"at_ns"`
}

// QueryRecord is the flight-recorder entry for one request. The same schema
// is produced by the HTTP server's ledger, the embedded DB's ledger and
// `cmd/whynot -stats`, so CLI and server debugging output are diffable.
//
// Params holds the raw request parameters (query point coordinates,
// customer IDs) and is redacted by default wherever records are rendered;
// ParamsDigest always survives, so identical queries can be correlated
// without exposing data points.
type QueryRecord struct {
	Schema       int    `json:"schema_version"`
	ID           uint64 `json:"id"`
	Source       string `json:"source"` // "http", "cli" or "db"
	Op           string `json:"op"`
	ParamsDigest string `json:"params_digest,omitempty"`
	Params       string `json:"params,omitempty"`
	TS           string `json:"ts,omitempty"` // wall time, only with Config.Epoch
	StartNS      int64  `json:"start_ns"`

	DurationMS  float64 `json:"duration_ms"`
	Outcome     string  `json:"outcome"`
	Error       string  `json:"error,omitempty"`
	Admission   string  `json:"admission"` // "admitted", "shed:<reason>", "none"
	QueueWaitMS float64 `json:"queue_wait_ms"`

	Rung           string        `json:"rung,omitempty"`
	Degraded       bool          `json:"degraded,omitempty"`
	DegradeReasons []string      `json:"degrade_reasons,omitempty"`
	Attempts       []RungAttempt `json:"rung_attempts,omitempty"`

	Cost        obs.CostSnapshot `json:"cost"`
	CacheHits   uint64           `json:"cache_hits"`
	CacheMisses uint64           `json:"cache_misses"`
	WALSeq      uint64           `json:"wal_seq,omitempty"`
	SnapshotSeq uint64           `json:"snapshot_seq,omitempty"`
	Workers     int              `json:"workers,omitempty"`

	Sampled      bool   `json:"trace_sampled"`
	SampleReason string `json:"sample_reason,omitempty"`
	// Truncated marks a record whose trace overflowed its span or event
	// budget: the retained dump is incomplete, and rung attempts or degrade
	// reasons reconstructed from it may be missing entries.
	Truncated bool         `json:"trace_truncated,omitempty"`
	Trace     []TraceSpan  `json:"trace,omitempty"`
	Events    []TraceEvent `json:"trace_events,omitempty"`
}

// Digest hashes a parameter string into a short stable token (FNV-1a 64,
// hex). It is what identifies "the same query" across records once the raw
// parameters are redacted.
func Digest(params string) string {
	if params == "" {
		return ""
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(params))
	return fmt.Sprintf("%016x", h.Sum64())
}

// ClassifyErr maps a plain query error onto an outcome value: nil is OK,
// context deadline/cancellation are their own outcomes, anything else is an
// error. Callers with richer information (HTTP status, shed decisions)
// should classify themselves and only fall back to this.
func ClassifyErr(err error) string {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, context.DeadlineExceeded):
		return OutcomeDeadline
	case errors.Is(err, context.Canceled):
		return OutcomeCanceled
	default:
		return OutcomeError
	}
}
