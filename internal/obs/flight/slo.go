package flight

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// SLO window geometry: 10-second buckets, 360 of them = a 1-hour long
// window; the newest 30 form the 5-minute short window. Two windows because
// a burn rate needs both a fast page signal (5m catches an acute outage) and
// a slow one (1h catches the steady leak the 5m window forgives).
const (
	sloBucketDur   = 10 * time.Second
	sloBucketCount = 360
	sloShortCount  = 30
)

// Objective is one per-op service level objective: Target fraction of "good"
// requests, where a request is bad if it failed (outcome error, deadline,
// unavailable or shed) or exceeded Latency. Op "*" matches every op.
type Objective struct {
	Op      string        `json:"op"`
	Latency time.Duration `json:"latency"`
	Target  float64       `json:"target"` // good-fraction objective in (0,1), e.g. 0.999
}

// ParseObjectives parses the CLI/-slo syntax: a comma-separated list of
// op:latency:target, where latency is a Go duration and target a percentage
// — "whynot:250ms:99.9,rskyline:100ms:99". Returns nil for the empty string.
func ParseObjectives(s string) ([]Objective, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Objective
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("flight: SLO %q: want op:latency:target%%", part)
		}
		op := strings.TrimSpace(fields[0])
		if op == "" {
			return nil, fmt.Errorf("flight: SLO %q: empty op", part)
		}
		lat, err := time.ParseDuration(strings.TrimSpace(fields[1]))
		if err != nil || lat <= 0 {
			return nil, fmt.Errorf("flight: SLO %q: bad latency %q", part, fields[1])
		}
		pct, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(fields[2]), "%"), 64)
		if err != nil || pct <= 0 || pct >= 100 {
			return nil, fmt.Errorf("flight: SLO %q: target must be a percentage in (0,100)", part)
		}
		out = append(out, Objective{Op: op, Latency: lat, Target: pct / 100})
	}
	return out, nil
}

// sloState is one objective's pair of rotating bucket arrays. cur is the
// absolute bucket number (obs.Now / sloBucketDur) the write cursor sits on;
// advancing zeroes the buckets it rotates through.
type sloState struct {
	obj  Objective
	good [sloBucketCount]uint64
	bad  [sloBucketCount]uint64
	cur  int64
}

func (st *sloState) advance(now int64) {
	b := now / int64(sloBucketDur)
	if b <= st.cur {
		return
	}
	if b-st.cur >= sloBucketCount {
		st.good = [sloBucketCount]uint64{}
		st.bad = [sloBucketCount]uint64{}
		st.cur = b
		return
	}
	for st.cur < b {
		st.cur++
		i := int(st.cur % sloBucketCount)
		st.good[i], st.bad[i] = 0, 0
	}
}

func (st *sloState) window(buckets int) (good, bad uint64) {
	for i := 0; i < buckets; i++ {
		idx := int((st.cur - int64(i)) % sloBucketCount)
		if idx < 0 {
			idx += sloBucketCount
		}
		good += st.good[idx]
		bad += st.bad[idx]
	}
	return good, bad
}

// burnRate is the classic SLO burn: the observed bad fraction divided by the
// error budget (1 − target). 1.0 means the budget is being spent exactly at
// the rate that exhausts it at the window's end; 0 means a clean window.
func (st *sloState) burnRate(buckets int) float64 {
	good, bad := st.window(buckets)
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - st.obj.Target)
}

// SLOTracker evaluates declared objectives over rotating 5m/1h windows and
// publishes the burn rates as labelled gauges. A nil tracker (no objectives
// declared) is valid and free.
type SLOTracker struct {
	mu     sync.Mutex
	states []*sloState
	g5m    *obs.LabeledGauge
	g1h    *obs.LabeledGauge
}

// NewSLOTracker builds a tracker for the given objectives, registering
// slo_burn_rate_5m / slo_burn_rate_1h gauges when reg is non-nil. Returns
// nil when no objectives are declared.
func NewSLOTracker(objs []Objective, reg *obs.Registry) *SLOTracker {
	if len(objs) == 0 {
		return nil
	}
	t := &SLOTracker{}
	cur := obs.Now() / int64(sloBucketDur)
	for _, o := range objs {
		t.states = append(t.states, &sloState{obj: o, cur: cur})
	}
	if reg != nil {
		t.g5m = reg.LabeledGauge("slo_burn_rate_5m", "SLO error-budget burn rate over the last 5 minutes (1.0 = spending exactly the budget).", "op")
		t.g1h = reg.LabeledGauge("slo_burn_rate_1h", "SLO error-budget burn rate over the last hour.", "op")
	} else {
		t.g5m = obs.NewLabeledGauge("op")
		t.g1h = obs.NewLabeledGauge("op")
	}
	return t
}

// Observe feeds one finished request into every objective matching op.
// failed should be true for outcomes that count against the SLO (the server
// maps error/deadline/unavailable/shed to failed and treats cancellation as
// the client's choice); a slow-but-successful request goes bad via Latency.
func (t *SLOTracker) Observe(op string, dur time.Duration, failed bool) {
	if t == nil {
		return
	}
	now := obs.Now()
	t.mu.Lock()
	for _, st := range t.states {
		if st.obj.Op != op && st.obj.Op != "*" {
			continue
		}
		st.advance(now)
		idx := int(st.cur % sloBucketCount)
		if failed || dur > st.obj.Latency {
			st.bad[idx]++
		} else {
			st.good[idx]++
		}
	}
	t.publishLocked()
	t.mu.Unlock()
}

func (t *SLOTracker) publishLocked() {
	for _, st := range t.states {
		t.g5m.With(st.obj.Op).Set(st.burnRate(sloShortCount))
		t.g1h.With(st.obj.Op).Set(st.burnRate(sloBucketCount))
	}
}

// WindowStatus is one window's tally for status output.
type WindowStatus struct {
	Good        uint64  `json:"good"`
	Bad         uint64  `json:"bad"`
	BadFraction float64 `json:"bad_fraction"`
	BurnRate    float64 `json:"burn_rate"`
}

// SLOStatus is one objective's current standing for /v1/admin/status.
type SLOStatus struct {
	Op        string       `json:"op"`
	LatencyMS float64      `json:"latency_ms"`
	Target    float64      `json:"target"`
	Window5m  WindowStatus `json:"window_5m"`
	Window1h  WindowStatus `json:"window_1h"`
}

// Status advances the windows to now and reports every objective.
func (t *SLOTracker) Status() []SLOStatus {
	if t == nil {
		return nil
	}
	now := obs.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SLOStatus, 0, len(t.states))
	for _, st := range t.states {
		st.advance(now)
		s := SLOStatus{
			Op:        st.obj.Op,
			LatencyMS: float64(st.obj.Latency) / 1e6,
			Target:    st.obj.Target,
		}
		s.Window5m = windowStatus(st, sloShortCount)
		s.Window1h = windowStatus(st, sloBucketCount)
		out = append(out, s)
	}
	t.publishLocked()
	return out
}

func windowStatus(st *sloState, buckets int) WindowStatus {
	good, bad := st.window(buckets)
	w := WindowStatus{Good: good, Bad: bad, BurnRate: st.burnRate(buckets)}
	if total := good + bad; total > 0 {
		w.BadFraction = float64(bad) / float64(total)
	}
	return w
}
