package flight

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config sizes and wires a Ledger. The zero value is usable: a 256-record
// ring, 1-in-64 head sampling, a 250ms absolute slow floor, no slow log, no
// registry, and no wall-clock anchor (records then carry only monotonic
// timestamps).
type Config struct {
	// Size is the ring capacity in records (default 256). Memory is bounded
	// by Size regardless of request rate; unsampled records are small, and
	// only sampled ones carry span dumps.
	Size int
	// HeadSampleEvery retains the trace of every Nth record (by record ID,
	// so the choice is deterministic and testable) as a healthy-query
	// baseline. Default 64; 1 retains everything.
	HeadSampleEvery int
	// SlowFactor scales the live p99 of Latency into the slow threshold
	// (default 1.0: anything at or past the current p99 is "slow").
	SlowFactor float64
	// MinSlow is the slow threshold while Latency has fewer than WarmCount
	// observations (or is absent), and the floor below which the p99-derived
	// threshold never drops. Default 250ms.
	MinSlow time.Duration
	// WarmCount is how many Latency observations are required before the
	// p99-relative threshold replaces MinSlow. Default 100.
	WarmCount uint64
	// Latency is the serving-latency histogram (seconds) the slow threshold
	// tracks — typically the server's request-duration histogram. Optional.
	Latency *obs.Histogram
	// Slowlog, when set, receives every sampled record as one JSON line.
	// The ledger counts write errors but never fails a request on them.
	Slowlog *SlowLog
	// Epoch is the wall-clock instant corresponding to obs.Now() == 0
	// (process start). When set, records carry an RFC3339 "ts". Callers
	// compute it once at startup as now minus the current obs.Now offset;
	// this package itself never reads the wall clock.
	Epoch time.Time
	// Registry, when set, registers the ledger's own meta-metrics
	// (flight_records_total, flight_sampled_total, ...) there.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Size <= 0 {
		c.Size = 256
	}
	if c.HeadSampleEvery <= 0 {
		c.HeadSampleEvery = 64
	}
	if c.SlowFactor <= 0 {
		c.SlowFactor = 1.0
	}
	if c.MinSlow <= 0 {
		c.MinSlow = 250 * time.Millisecond
	}
	if c.WarmCount == 0 {
		c.WarmCount = 100
	}
	return c
}

// Ledger is the flight recorder: a ring of finished QueryRecords, a table of
// in-flight queries, and the tail-sampling decision. All methods are safe for
// concurrent use; a nil *Ledger is valid and records nothing.
type Ledger struct {
	cfg    Config
	nextID atomic.Uint64

	mu       sync.Mutex
	ring     []QueryRecord
	next     int // ring write cursor
	count    int // records in the ring (≤ len(ring))
	inflight map[uint64]*Active

	started  *obs.Counter
	finished *obs.LabeledCounter // by outcome
	sampled  *obs.LabeledCounter // by reason
	evicted  *obs.Counter
	logErrs  *obs.Counter
}

// New builds a Ledger from cfg (zero value fine, see Config).
func New(cfg Config) *Ledger {
	cfg = cfg.withDefaults()
	l := &Ledger{
		cfg:      cfg,
		ring:     make([]QueryRecord, cfg.Size),
		inflight: make(map[uint64]*Active),
	}
	if r := cfg.Registry; r != nil {
		l.started = r.Counter("flight_started_total", "Queries that entered the flight recorder.")
		l.finished = r.LabeledCounter("flight_records_total", "Finished flight records by outcome.", "outcome")
		l.sampled = r.LabeledCounter("flight_sampled_total", "Tail-sampled flight records by reason.", "reason")
		l.evicted = r.Counter("flight_ring_evictions_total", "Flight records overwritten by ring wraparound.")
		l.logErrs = r.Counter("flight_slowlog_errors_total", "Slow-query log write failures (records are kept in the ring regardless).")
		r.GaugeFunc("flight_inflight", "Queries currently executing.", func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return float64(len(l.inflight))
		})
	} else {
		l.started = &obs.Counter{}
		l.finished = obs.NewLabeledCounter("outcome")
		l.sampled = obs.NewLabeledCounter("reason")
		l.evicted = &obs.Counter{}
		l.logErrs = &obs.Counter{}
	}
	return l
}

// Active is one in-flight query. The owning request goroutine fills it via
// the Set* methods and closes it with Finish; the inspector reads only the
// fields frozen at Begin plus the race-free trace, so no further
// synchronization is needed between them. A nil *Active (from a nil or
// disabled Ledger) is valid everywhere.
type Active struct {
	l          *Ledger
	trace      *obs.Trace
	costBefore obs.CostSnapshot
	rec        QueryRecord
	done       atomic.Bool
}

// Begin opens a record. params is the raw parameter string (redacted on
// render; its digest always survives); workers is the parallelism serving
// the query, frozen here so the inspector can read it without racing.
func (l *Ledger) Begin(op, source, params string, workers int) *Active {
	if l == nil {
		return nil
	}
	a := &Active{
		l:          l,
		trace:      obs.NewTrace(op),
		costBefore: obs.Cost(),
	}
	a.rec = QueryRecord{
		Schema:       SchemaVersion,
		ID:           l.nextID.Add(1),
		Source:       source,
		Op:           op,
		Params:       params,
		ParamsDigest: Digest(params),
		StartNS:      a.trace.Start,
		Workers:      workers,
		Admission:    "none",
	}
	l.started.Inc()
	l.mu.Lock()
	l.inflight[a.rec.ID] = a
	l.mu.Unlock()
	return a
}

// Trace returns the record's trace for context propagation (nil on a nil
// Active — still valid, obs treats nil traces as disabled).
func (a *Active) Trace() *obs.Trace {
	if a == nil {
		return nil
	}
	return a.trace
}

// SetAdmission records the admission verdict ("admitted", "shed:<reason>").
func (a *Active) SetAdmission(v string) {
	if a != nil {
		a.rec.Admission = v
	}
}

// SetQueueWait records time spent waiting for an admission slot.
func (a *Active) SetQueueWait(d time.Duration) {
	if a != nil {
		a.rec.QueueWaitMS = float64(d) / 1e6
	}
}

// SetRung records the rung that produced the answer and whether the ladder
// degraded to reach it.
func (a *Active) SetRung(rung string, degraded bool) {
	if a != nil {
		a.rec.Rung, a.rec.Degraded = rung, degraded
	}
}

// SetWALSeq records the WAL sequence that acknowledged a mutation.
func (a *Active) SetWALSeq(seq uint64) {
	if a != nil {
		a.rec.WALSeq = seq
	}
}

// SetSnapshotSeq records the serving snapshot the query ran against.
func (a *Active) SetSnapshotSeq(seq uint64) {
	if a != nil {
		a.rec.SnapshotSeq = seq
	}
}

// SetCache records cache hit/miss deltas attributed to this query.
func (a *Active) SetCache(hits, misses uint64) {
	if a != nil {
		a.rec.CacheHits, a.rec.CacheMisses = hits, misses
	}
}

// Finish closes the record: stamps duration, outcome and cost delta, derives
// the rung ladder and degradation reasons from the trace, decides sampling,
// and commits to the ring (and slow log if sampled). Idempotent — the second
// and later calls are no-ops, so a blanket deferred Finish is safe alongside
// early-exit paths. Returns the final record and whether this call closed it.
func (a *Active) Finish(outcome, errMsg string) (QueryRecord, bool) {
	if a == nil || a.done.Swap(true) {
		return QueryRecord{}, false
	}
	l := a.l
	rec := &a.rec
	durNS := obs.Now() - rec.StartNS
	rec.DurationMS = float64(durNS) / 1e6
	rec.Outcome = outcome
	rec.Error = errMsg
	rec.Cost = obs.Cost().Sub(a.costBefore)
	rec.Truncated = a.trace.Truncated()

	spans := a.trace.Spans()
	breaker := false
	for _, sp := range spans {
		if name, ok := strings.CutPrefix(sp.Name, "rung."); ok {
			rec.Attempts = append(rec.Attempts, RungAttempt{
				Rung:       name,
				DurationMS: float64(sp.End-sp.Start) / 1e6,
			})
		}
	}
	for _, ev := range a.trace.Events() {
		switch ev.Name {
		case "degrade":
			rec.DegradeReasons = append(rec.DegradeReasons, ev.Detail)
		case "gate":
			breaker = true
		}
	}
	if reason, ok := l.sampleReason(rec, breaker, durNS); ok {
		rec.Sampled, rec.SampleReason = true, reason
		rec.Trace = dumpSpans(spans)
		rec.Events = dumpEvents(a.trace.Events())
	}
	if !l.cfg.Epoch.IsZero() {
		rec.TS = l.cfg.Epoch.Add(time.Duration(rec.StartNS)).UTC().Format(time.RFC3339Nano)
	}

	l.finished.With(outcome).Inc()
	if rec.Sampled {
		l.sampled.With(rec.SampleReason).Inc()
	}
	l.mu.Lock()
	delete(l.inflight, rec.ID)
	if l.count == len(l.ring) {
		l.evicted.Inc()
	} else {
		l.count++
	}
	l.ring[l.next] = *rec
	l.next = (l.next + 1) % len(l.ring)
	l.mu.Unlock()

	// Slow-log I/O happens outside the ring lock; a write failure is counted
	// but never surfaces to the request.
	if rec.Sampled && l.cfg.Slowlog != nil {
		if err := l.cfg.Slowlog.Write(rec); err != nil {
			l.logErrs.Inc()
		}
	}
	return *rec, true
}

// sampleReason decides trace retention. Bad outcomes and degraded/breaker-
// touched queries are always kept; healthy ones are kept when slow relative
// to the live p99, or as the deterministic 1-in-N head sample.
func (l *Ledger) sampleReason(rec *QueryRecord, breaker bool, durNS int64) (string, bool) {
	switch rec.Outcome {
	case OutcomeOK, OutcomeCanceled:
		// Cancellation is the client hanging up, not the system misbehaving;
		// it falls through to the slow/head rules like a healthy record.
	case OutcomeShed:
		return SampleShed, true
	default:
		return SampleError, true
	}
	if rec.Degraded || len(rec.DegradeReasons) > 0 {
		return SampleDegraded, true
	}
	if breaker {
		return SampleBreaker, true
	}
	if time.Duration(durNS) >= l.slowThreshold() {
		return SampleSlow, true
	}
	if rec.ID%uint64(l.cfg.HeadSampleEvery) == 0 {
		return SampleHead, true
	}
	return "", false
}

// slowThreshold is SlowFactor × live p99 once the latency histogram has
// warmed up, floored at MinSlow (which also covers the cold start and the
// no-histogram configuration).
func (l *Ledger) slowThreshold() time.Duration {
	h := l.cfg.Latency
	if h.Count() < l.cfg.WarmCount {
		return l.cfg.MinSlow
	}
	d := time.Duration(l.cfg.SlowFactor * h.Quantile(0.99) * float64(time.Second))
	if d < l.cfg.MinSlow {
		d = l.cfg.MinSlow
	}
	return d
}

func dumpSpans(spans []obs.Span) []TraceSpan {
	if len(spans) == 0 {
		return nil
	}
	out := make([]TraceSpan, len(spans))
	for i, sp := range spans {
		out[i] = TraceSpan{
			Name:       sp.Name,
			StartNS:    sp.Start,
			DurationMS: float64(sp.End-sp.Start) / 1e6,
		}
	}
	return out
}

func dumpEvents(events []obs.Event) []TraceEvent {
	if len(events) == 0 {
		return nil
	}
	out := make([]TraceEvent, len(events))
	for i, ev := range events {
		out[i] = TraceEvent{Name: ev.Name, Detail: ev.Detail, AtNS: ev.At}
	}
	return out
}

// Recent returns finished records newest-first; max ≤ 0 returns everything
// in the ring. The returned slice is a copy — callers may redact in place.
func (l *Ledger) Recent(max int) []QueryRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.count
	if max > 0 && max < n {
		n = max
	}
	out := make([]QueryRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := (l.next - 1 - i + len(l.ring)*2) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out
}

// InFlightInfo is one currently-executing query as seen by the inspector.
// Phase is the latest *completed* span (spans publish at completion), so a
// query still in its first phase shows "-".
type InFlightInfo struct {
	ID           uint64  `json:"id"`
	Op           string  `json:"op"`
	Source       string  `json:"source"`
	ParamsDigest string  `json:"params_digest,omitempty"`
	StartNS      int64   `json:"start_ns"`
	AgeMS        float64 `json:"age_ms"`
	Phase        string  `json:"phase"`
	Workers      int     `json:"workers,omitempty"`
	Spans        int     `json:"spans"`
}

// InFlight returns the currently-executing queries, oldest first.
func (l *Ledger) InFlight() []InFlightInfo {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	acts := make([]*Active, 0, len(l.inflight))
	for _, a := range l.inflight {
		acts = append(acts, a)
	}
	l.mu.Unlock()

	now := obs.Now()
	out := make([]InFlightInfo, 0, len(acts))
	for _, a := range acts {
		info := InFlightInfo{
			ID:           a.rec.ID,
			Op:           a.rec.Op,
			Source:       a.rec.Source,
			ParamsDigest: a.rec.ParamsDigest,
			StartNS:      a.rec.StartNS,
			AgeMS:        float64(now-a.rec.StartNS) / 1e6,
			Phase:        "-",
			Workers:      a.rec.Workers,
		}
		spans := a.trace.Spans()
		info.Spans = len(spans)
		var latest int64 = -1
		for _, sp := range spans {
			if sp.End >= latest {
				latest, info.Phase = sp.End, sp.Name
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	return out
}

// Totals is the ledger's record accounting. Started == Finished once every
// begun request has closed its record (the invariant the chaos harness and
// the race test assert).
type Totals struct {
	Started   uint64            `json:"started"`
	Finished  uint64            `json:"finished"`
	InFlight  int               `json:"in_flight"`
	Evicted   uint64            `json:"ring_evictions"`
	Sampled   map[string]uint64 `json:"sampled_by_reason,omitempty"`
	ByOutcome map[string]uint64 `json:"by_outcome,omitempty"`
	LogErrors uint64            `json:"slowlog_errors"`
}

// Totals returns the current accounting counters.
func (l *Ledger) Totals() Totals {
	if l == nil {
		return Totals{}
	}
	l.mu.Lock()
	inflight := len(l.inflight)
	l.mu.Unlock()
	t := Totals{
		Started:   l.started.Value(),
		InFlight:  inflight,
		Evicted:   l.evicted.Value(),
		Sampled:   l.sampled.Values(),
		ByOutcome: l.finished.Values(),
		LogErrors: l.logErrs.Value(),
	}
	for _, n := range t.ByOutcome {
		t.Finished += n
	}
	return t
}

// StatusValue renders the ledger's configuration and accounting for
// /v1/admin/status.
func (l *Ledger) StatusValue() map[string]any {
	if l == nil {
		return nil
	}
	return map[string]any{
		"ring_size":         len(l.ring),
		"head_sample_every": l.cfg.HeadSampleEvery,
		"slow_threshold_ms": float64(l.slowThreshold()) / 1e6,
		"totals":            l.Totals(),
	}
}
