package flight_test

import (
	"context"
	"testing"

	"repro"
)

// paperExample is the paper's 8-point running example (Fig. 1a; price in K$,
// mileage in Kmi) — the README's worked query runs against it.
func paperExample() []repro.Item {
	coords := [][2]float64{
		{5, 30}, {7.5, 42}, {2.5, 70}, {7.5, 90},
		{24, 20}, {20, 50}, {26, 70}, {16, 80},
	}
	items := make([]repro.Item, len(coords))
	for i, c := range coords {
		items[i] = repro.Item{ID: i + 1, Point: repro.NewPoint(c[0], c[1])}
	}
	return items
}

// workedExampleQuery is one full request's work for the README's worked
// example (q = (8.5, 55), customer 1): the membership probe, the reverse
// skyline, and the exact MWQ answer — the same sequence the mwq command and
// the /v1/whynot handler run.
func workedExampleQuery(b *testing.B, db *repro.DB, items []repro.Item) {
	ctx := context.Background()
	q := repro.NewPoint(8.5, 55)
	ct := items[0]
	if _, err := db.IsReverseSkylineContext(ctx, ct, q); err != nil {
		b.Fatal(err)
	}
	rsl, err := db.ReverseSkylineContext(ctx, items, q)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.MWQExactContext(ctx, ct, q, rsl, repro.Options{}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFlightRecorderOverhead measures the per-query cost of the flight
// recorder on the worked-example query: the bare configuration against one
// with a ledger recording every DB call. Compare the two with benchstat; the
// recorder's budget is <5% on the p50 latency of this query.
func BenchmarkFlightRecorderOverhead(b *testing.B) {
	items := paperExample()
	b.Run("bare", func(b *testing.B) {
		db := repro.NewDBWithOptions(2, items, repro.DBOptions{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			workedExampleQuery(b, db, items)
		}
	})
	b.Run("recorded", func(b *testing.B) {
		db := repro.NewDBWithOptions(2, items, repro.DBOptions{FlightSize: 256})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			workedExampleQuery(b, db, items)
		}
		if tot := db.FlightRecorder().Totals(); tot.Finished == 0 {
			b.Fatal("recorded run produced no flight records")
		}
	})
}
