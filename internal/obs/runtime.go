package obs

import (
	"runtime"
	"sort"
	"sync"
)

// Go runtime telemetry: process-health gauges next to the query metrics, so a
// latency regression can be told apart from GC pressure or a goroutine leak
// without a second scrape target. Values are sampled on scrape through
// GaugeFunc read-throughs. ReadMemStats is a stop-the-world of microseconds at
// our heap sizes; the two mem-derived gauges share one snapshot behind a short
// TTL so a scrape (the registry renders gauges back-to-back) pays it once.

var runtimeSample struct {
	mu      sync.Mutex
	takenAt int64 // obs.Now of the snapshot, 0 = never
	ms      runtime.MemStats
}

// memStats returns a MemStats snapshot at most ~50ms old — fresh for every
// scrape, shared within one. Returned by value so concurrent scrapes cannot
// observe a refresh mid-read.
func memStats() runtime.MemStats {
	runtimeSample.mu.Lock()
	defer runtimeSample.mu.Unlock()
	if now := Now(); runtimeSample.takenAt == 0 || now-runtimeSample.takenAt > 50e6 {
		runtime.ReadMemStats(&runtimeSample.ms)
		runtimeSample.takenAt = now
	}
	return runtimeSample.ms
}

// gcPauseP99 computes the p99 of the runtime's 256-entry GC pause ring, in
// seconds. With fewer than 256 GCs the valid prefix is used.
func gcPauseP99(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, n)
	copy(pauses, ms.PauseNs[:n])
	sort.Slice(pauses, func(a, b int) bool { return pauses[a] < pauses[b] })
	idx := n * 99 / 100
	if idx >= n {
		idx = n - 1
	}
	return float64(pauses[idx]) / 1e9
}

// RegisterRuntime exposes Go runtime health gauges (heap bytes, GC pause p99,
// goroutine count) on a registry, sampled on scrape.
func RegisterRuntime(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("go_heap_bytes",
		"bytes of allocated heap objects (runtime.MemStats.HeapAlloc, sampled on scrape)",
		func() float64 { return float64(memStats().HeapAlloc) })
	r.GaugeFunc("go_gc_pause_p99",
		"p99 GC stop-the-world pause over the runtime's recent-pause ring, seconds",
		func() float64 {
			ms := memStats()
			return gcPauseP99(&ms)
		})
	r.GaugeFunc("go_goroutines",
		"live goroutines (runtime.NumGoroutine, sampled on scrape)",
		func() float64 { return float64(runtime.NumGoroutine()) })
}
