package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")() // must not panic
	tr.AddSpan("x", 0, 1)
	tr.Event("e", "d")
	tr.Eventf("e", "%d", 1)
	if tr.Spans() != nil || tr.Events() != nil {
		t.Fatal("nil trace must report nothing")
	}
	if ds, de := tr.Dropped(); ds != 0 || de != 0 {
		t.Fatal("nil trace must report no drops")
	}
	var sb strings.Builder
	tr.Format(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil trace must format to nothing")
	}
}

func TestTraceSpansAndEvents(t *testing.T) {
	var fake int64
	restore := SetClockForTest(func() int64 { fake += 100; return fake })
	defer restore()

	tr := NewTrace("mwq")
	done := tr.StartSpan("saferegion.exact")
	tr.Event("degraded", "rung exact: deadline")
	done()
	tr.AddSpan("mwq.corners", 50, 75)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Sorted by start: the explicit span starts at 50.
	if spans[0].Name != "mwq.corners" || spans[0].Duration() != 25*time.Nanosecond {
		t.Fatalf("span[0] = %+v", spans[0])
	}
	if spans[1].Name != "saferegion.exact" || spans[1].Duration() <= 0 {
		t.Fatalf("span[1] = %+v", spans[1])
	}
	evs := tr.EventsNamed("degraded")
	if len(evs) != 1 || evs[0].Detail != "rung exact: deadline" {
		t.Fatalf("events = %+v", evs)
	}
	if got := tr.SpansNamed("mwq.corners"); len(got) != 1 {
		t.Fatalf("SpansNamed = %+v", got)
	}

	var sb strings.Builder
	tr.Format(&sb)
	out := sb.String()
	for _, want := range []string{"trace mwq:", "saferegion.exact", "mwq.corners", "degraded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestTraceOverflowCountsDrops(t *testing.T) {
	tr := NewTrace("overflow")
	for i := 0; i < maxSpans+10; i++ {
		tr.AddSpan("s", int64(i), int64(i+1))
	}
	for i := 0; i < maxEvents+5; i++ {
		tr.Event("e", "")
	}
	if got := len(tr.Spans()); got != maxSpans {
		t.Fatalf("spans = %d, want clamped %d", got, maxSpans)
	}
	if got := len(tr.Events()); got != maxEvents {
		t.Fatalf("events = %d, want clamped %d", got, maxEvents)
	}
	ds, de := tr.Dropped()
	if ds != 10 || de != 5 {
		t.Fatalf("dropped = (%d, %d), want (10, 5)", ds, de)
	}
	var sb strings.Builder
	tr.Format(&sb)
	if !strings.Contains(sb.String(), "dropped 10 spans, 5 events") {
		t.Fatalf("Format must note drops:\n%.200s", sb.String())
	}
}

func TestTraceConcurrentRecording(t *testing.T) {
	tr := NewTrace("conc")
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.AddSpan("s", Now(), Now())
				tr.Event("e", "x")
			}
		}()
	}
	// Read while writers are active: must be race-free and never return
	// half-written slots.
	for i := 0; i < 100; i++ {
		for _, s := range tr.Spans() {
			if s.Name != "s" {
				t.Fatalf("torn span read: %+v", s)
			}
		}
	}
	wg.Wait()
	spans, events := tr.Spans(), tr.Events()
	ds, de := tr.Dropped()
	if uint64(len(spans))+ds != workers*50 {
		t.Fatalf("spans recorded+dropped = %d+%d, want %d", len(spans), ds, workers*50)
	}
	if uint64(len(events))+de != workers*50 {
		t.Fatalf("events recorded+dropped = %d+%d, want %d", len(events), de, workers*50)
	}
}

func TestTraceContextRoundtrip(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("plain context must carry no trace")
	}
	if TraceFrom(nil) != nil {
		t.Fatal("nil context must carry no trace")
	}
	tr := NewTrace("op")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace must round-trip through context")
	}
	// nil trace attaches nothing.
	if TraceFrom(WithTrace(context.Background(), nil)) != nil {
		t.Fatal("nil trace must not be attached")
	}
}

func TestExecMetricsContextRoundtrip(t *testing.T) {
	if ExecFrom(context.Background()) != nil || ExecFrom(nil) != nil {
		t.Fatal("plain/nil context must carry no exec metrics")
	}
	m := NewExecMetrics(nil)
	ctx := WithExecMetrics(context.Background(), m)
	if ExecFrom(ctx) != m {
		t.Fatal("exec metrics must round-trip through context")
	}
	// Registry-less metrics are all nil but usable.
	m.Fanouts.Inc()
	m.QueueWait.Observe(0.1)
}

func TestClockMonotonic(t *testing.T) {
	a := Now()
	b := Now()
	if b < a {
		t.Fatalf("clock went backwards: %d then %d", a, b)
	}
	if Since(a) < 0 || SecondsSince(a) < 0 {
		t.Fatal("Since must be non-negative")
	}
}
