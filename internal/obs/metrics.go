package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil Counter is
// valid: Inc/Add are no-ops and Value is zero, so call sites need no "is
// observability enabled" branches.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (callers batch loop counts and flush once per operation).
func (c *Counter) Add(n uint64) {
	if c == nil || n == 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 value (set-to-current semantics). Nil is valid.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a bounded-bucket histogram with lock-free observation: one
// atomic add into the bucket, one into the total count, one CAS loop into the
// sum. Bounds are upper bucket edges (cumulative "le" semantics on render);
// observations beyond the last bound land in an overflow bucket. Nil is valid.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last = overflow
	total   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// Unsorted input is sorted defensively; empty bounds yield a single overflow
// bucket (count/sum still work, quantiles degrade to zero).
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// DurationBuckets returns the default latency bounds in seconds: 1µs to 10s
// on a 1-2.5-5 grid, a good fit for everything from a single window query to
// a worst-case exact safe region.
func DurationBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (~22) and the loop is branch-
	// predictable; a binary search buys nothing at this size.
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since a Now timestamp.
func (h *Histogram) ObserveSince(start int64) {
	if h == nil {
		return
	}
	h.Observe(SecondsSince(start))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank, the standard
// histogram_quantile estimate. The overflow bucket reports the last bound
// (the estimate saturates there); an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	target := q * float64(total)
	// q*total for a rank that is mathematically an integer can land a hair
	// above it in floating point (0.07*100 = 7.000000000000001), pushing the
	// scan past the bucket that exactly holds the target rank — an
	// observation sitting on a bucket's upper edge then reports the next
	// bucket's bound. Snap near-integer targets back to the integer.
	if r := math.Round(target); r != target && math.Abs(target-r) <= 1e-9*math.Max(1, math.Abs(target)) {
		target = r
	}
	var cum uint64
	for i, b := range h.bounds {
		n := h.counts[i].Load()
		if float64(cum+n) >= target {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if n == 0 {
				return b
			}
			frac := (target - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(b-lo)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a consistent-enough point-in-time read of a histogram
// for JSON rendering (buckets are read sequentially; a concurrent observation
// may straddle the read, which is acceptable for monitoring output).
type HistogramSnapshot struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	P50     float64   `json:"p50"`
	P95     float64   `json:"p95"`
	P99     float64   `json:"p99"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
}

// Snapshot captures count, sum, the three headline quantiles and raw buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:  h.Count(),
		Sum:    h.Sum(),
		P50:    h.Quantile(0.50),
		P95:    h.Quantile(0.95),
		P99:    h.Quantile(0.99),
		Bounds: h.bounds,
	}
	s.Buckets = make([]uint64, len(h.counts))
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// LabeledCounter is a family of counters keyed by one label value (e.g.
// degradation events by reason, rung attempts by rung). Label values are
// expected to be low-cardinality; each new value allocates one Counter under
// a mutex, after which increments are lock-free via With. Nil is valid.
type LabeledCounter struct {
	label string
	mu    sync.Mutex
	m     map[string]*Counter
}

// NewLabeledCounter builds a counter family with the given label name.
func NewLabeledCounter(label string) *LabeledCounter {
	return &LabeledCounter{label: label, m: make(map[string]*Counter)}
}

// With returns the counter for a label value, creating it on first use.
// On a nil family it returns nil (whose methods are no-ops).
func (l *LabeledCounter) With(value string) *Counter {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.m[value]
	if !ok {
		c = &Counter{}
		l.m[value] = c
	}
	return c
}

// Values returns a copy of the current per-label counts.
func (l *LabeledCounter) Values() map[string]uint64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.m))
	for k, c := range l.m {
		out[k] = c.Value()
	}
	return out
}

// LabeledGauge is a family of gauges keyed by one label value (e.g. circuit
// breaker state by rung, queue depth by priority class). Same cardinality and
// concurrency contract as LabeledCounter. Nil is valid.
type LabeledGauge struct {
	label string
	mu    sync.Mutex
	m     map[string]*Gauge
}

// NewLabeledGauge builds a gauge family with the given label name.
func NewLabeledGauge(label string) *LabeledGauge {
	return &LabeledGauge{label: label, m: make(map[string]*Gauge)}
}

// With returns the gauge for a label value, creating it on first use.
// On a nil family it returns nil (whose methods are no-ops).
func (l *LabeledGauge) With(value string) *Gauge {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	g, ok := l.m[value]
	if !ok {
		g = &Gauge{}
		l.m[value] = g
	}
	return g
}

// Values returns a copy of the current per-label gauge values.
func (l *LabeledGauge) Values() map[string]float64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]float64, len(l.m))
	for k, g := range l.m {
		out[k] = g.Value()
	}
	return out
}
