package obs

import (
	"context"
	"runtime/pprof"
)

// StartPhase opens a named query phase twice over: as a span on the
// context's trace (nil-safe, like StartSpan) and as a pprof goroutine label
// ("phase"), so CPU profiles taken through the DebugMux segment by the same
// phase names the traces and the flight recorder use. The returned context
// carries the label for work handed to child goroutines (internal/exec
// workers re-apply it with pprof.Do); the returned func ends the span and
// restores the previous label set — call it on the same goroutine,
// typically deferred.
func StartPhase(ctx context.Context, name string) (context.Context, func()) {
	if ctx == nil {
		ctx = context.Background()
	}
	endSpan := TraceFrom(ctx).StartSpan(name)
	lctx := pprof.WithLabels(ctx, pprof.Labels("phase", name))
	pprof.SetGoroutineLabels(lctx)
	return lctx, func() {
		pprof.SetGoroutineLabels(ctx)
		endSpan()
	}
}
