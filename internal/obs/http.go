package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-wide expvar publication: expvar.Publish
// panics on duplicate names, and a process may build several debug muxes
// (tests do). The first registry published wins; later muxes still serve
// their own /metrics and /metrics.json.
var expvarOnce sync.Once

// DebugMux builds the debug listener's mux: Prometheus text on /metrics,
// the JSON rendering on /metrics.json, the standard expvar page on
// /debug/vars (with the registry published as "repro_metrics"), and the full
// net/http/pprof suite under /debug/pprof/. cmd/whynot serves it on
// -metrics-addr; anything else that wants a debug port can mount it too.
func DebugMux(r *Registry) *http.ServeMux {
	expvarOnce.Do(func() {
		expvar.Publish("repro_metrics", expvar.Func(func() any { return r.JSONValue() }))
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/metrics.json", r.JSONHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
