package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Trace capacities. Fixed-size arrays keep recording allocation-free and
// lock-free; overruns are counted, not grown — a per-query trace that needs
// more than this is telling you to look at the counters instead.
const (
	maxSpans  = 64
	maxEvents = 128
)

// traceSpansDropped / traceEventsDropped accumulate overflow across every
// trace in the process, so silent span loss is visible on /metrics even after
// the individual (per-query) traces are gone. Per-trace counts stay on the
// Trace (Dropped / Truncated) for flight-record attribution.
var (
	traceSpansDropped  atomic.Uint64
	traceEventsDropped atomic.Uint64
)

// TraceDropped returns the process-wide counts of spans and events lost to
// the fixed trace capacities.
func TraceDropped() (spans, events uint64) {
	return traceSpansDropped.Load(), traceEventsDropped.Load()
}

// RegisterTraceHealth exposes the process-wide trace overflow counters on a
// registry.
func RegisterTraceHealth(r *Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("trace_spans_dropped_total",
		"spans lost to the fixed per-trace capacity (trace marked truncated)",
		traceSpansDropped.Load)
	r.CounterFunc("trace_events_dropped_total",
		"events lost to the fixed per-trace capacity (trace marked truncated)",
		traceEventsDropped.Load)
}

// Span is one completed timed phase of a query (e.g. "saferegion.exact",
// "rung.approx"). Start/End are Now timestamps (nanoseconds since process
// start).
type Span struct {
	Name  string
	Start int64
	End   int64
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Event is one annotated instant (e.g. a degradation with its reason).
type Event struct {
	At     int64
	Name   string
	Detail string
}

// spanSlot / eventSlot publish their fields through the ready flag: writers
// fill the fields first and set ready last, readers check ready first — the
// atomic store/load pair gives the happens-before edge that makes concurrent
// recording and reading race-free.
type spanSlot struct {
	ready atomic.Bool
	span  Span
}

type eventSlot struct {
	ready atomic.Bool
	event Event
}

// Trace is a lock-free per-query span and event recorder. Reservation is one
// atomic add; recording writes a pre-allocated slot. A nil *Trace is valid
// and reduces every method to a nil check, so instrumented code paths need no
// "is tracing on" branches. Recording from multiple goroutines (parallel
// safe-region workers) is safe; so is reading while a query is in flight.
type Trace struct {
	// Op names the traced operation (e.g. "mwq").
	Op string
	// Start is the Now timestamp of NewTrace.
	Start int64

	nspans  atomic.Int32
	spans   [maxSpans]spanSlot
	nevents atomic.Int32
	events  [maxEvents]eventSlot

	droppedSpans  atomic.Uint64
	droppedEvents atomic.Uint64
}

// NewTrace starts a trace for one query.
func NewTrace(op string) *Trace {
	return &Trace{Op: op, Start: Now()}
}

// StartSpan begins a timed phase; the returned func records it on call
// (typically deferred). Spans are published at completion, so an in-flight
// phase is invisible to readers.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := Now()
	return func() { t.AddSpan(name, start, Now()) }
}

// AddSpan records a completed phase with explicit timestamps.
func (t *Trace) AddSpan(name string, start, end int64) {
	if t == nil {
		return
	}
	idx := t.nspans.Add(1) - 1
	if idx >= maxSpans {
		// The reservation counter stays inflated; readers clamp to capacity.
		t.droppedSpans.Add(1)
		traceSpansDropped.Add(1)
		return
	}
	t.spans[idx].span = Span{Name: name, Start: start, End: end}
	t.spans[idx].ready.Store(true)
}

// Event records an annotated instant.
func (t *Trace) Event(name, detail string) {
	if t == nil {
		return
	}
	idx := t.nevents.Add(1) - 1
	if idx >= maxEvents {
		t.droppedEvents.Add(1)
		traceEventsDropped.Add(1)
		return
	}
	t.events[idx].event = Event{At: Now(), Name: name, Detail: detail}
	t.events[idx].ready.Store(true)
}

// Eventf is Event with a formatted detail. The formatting cost is only paid
// on a live trace, never on the nil (disabled) one.
func (t *Trace) Eventf(name, format string, args ...any) {
	if t == nil {
		return
	}
	t.Event(name, fmt.Sprintf(format, args...))
}

// Spans returns the recorded spans in start order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	n := int(t.nspans.Load())
	if n > maxSpans {
		n = maxSpans
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		if t.spans[i].ready.Load() {
			out = append(out, t.spans[i].span)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// Events returns the recorded events in time order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	n := int(t.nevents.Load())
	if n > maxEvents {
		n = maxEvents
	}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		if t.events[i].ready.Load() {
			out = append(out, t.events[i].event)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out
}

// Dropped returns how many spans and events exceeded the fixed capacities.
func (t *Trace) Dropped() (spans, events uint64) {
	if t == nil {
		return 0, 0
	}
	return t.droppedSpans.Load(), t.droppedEvents.Load()
}

// Truncated reports whether this trace lost any spans or events to the fixed
// capacities; flight records carry the flag so a sampled slow query whose
// trace overflowed is not mistaken for a complete picture.
func (t *Trace) Truncated() bool {
	if t == nil {
		return false
	}
	return t.droppedSpans.Load() > 0 || t.droppedEvents.Load() > 0
}

// SpansNamed returns the recorded spans with the given name.
func (t *Trace) SpansNamed(name string) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// EventsNamed returns the recorded events with the given name.
func (t *Trace) EventsNamed(name string) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// Format writes a human-readable rendering: one line per span (offset from
// trace start, duration) and per event, merged in time order.
func (t *Trace) Format(w io.Writer) {
	if t == nil {
		return
	}
	fmt.Fprintf(w, "trace %s:\n", t.Op)
	type line struct {
		at   int64
		text string
	}
	var lines []line
	for _, s := range t.Spans() {
		lines = append(lines, line{at: s.Start, text: fmt.Sprintf(
			"  span  +%-12s %-24s %s", time.Duration(s.Start-t.Start).Round(time.Microsecond),
			s.Name, s.Duration().Round(time.Microsecond))})
	}
	for _, e := range t.Events() {
		text := fmt.Sprintf("  event +%-12s %-24s %s",
			time.Duration(e.At-t.Start).Round(time.Microsecond), e.Name, e.Detail)
		lines = append(lines, line{at: e.At, text: text})
	}
	sort.SliceStable(lines, func(a, b int) bool { return lines[a].at < lines[b].at })
	for _, l := range lines {
		fmt.Fprintln(w, l.text)
	}
	if ds, de := t.Dropped(); ds > 0 || de > 0 {
		fmt.Fprintf(w, "  (dropped %d spans, %d events over capacity)\n", ds, de)
	}
}

type traceKey struct{}

// WithTrace returns a context carrying the trace; the instrumented entry
// points pick it up with TraceFrom.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the trace carried by ctx, or nil (the no-op trace).
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
