package obs

import "context"

// ExecMetrics instruments the internal/exec worker pool: how often work fans
// out, how many jobs run inline vs on workers, how long jobs queue before a
// worker picks them up (the utilisation signal: growing queue wait with idle
// jobs means workers are the bottleneck), and how many cooperative
// cancellation checkpoints fired inside the pool. A nil *ExecMetrics is valid
// — the pool checks for nil once per fan-out, and all counter methods are
// nil-safe anyway.
type ExecMetrics struct {
	// Fanouts counts ForEach invocations that actually spawned workers.
	Fanouts *Counter
	// InlineRuns counts ForEach invocations that ran sequentially inline.
	InlineRuns *Counter
	// Jobs counts individual jobs executed (inline or on a worker).
	Jobs *Counter
	// WorkersSpawned counts worker goroutines started.
	WorkersSpawned *Counter
	// Checkpoints counts cancellation checkpoints fired inside pool workers
	// and inline loops (summed from each checker's visit count).
	Checkpoints *Counter
	// QueueWait observes seconds each job spent between enqueue and pickup.
	QueueWait *Histogram
	// JobDuration observes seconds each job spent executing.
	JobDuration *Histogram
}

// NewExecMetrics registers the worker-pool metrics on r (nil r yields a
// usable all-no-op ExecMetrics).
func NewExecMetrics(r *Registry) *ExecMetrics {
	return &ExecMetrics{
		Fanouts:        r.Counter("exec_fanouts_total", "parallel fan-outs through the worker pool"),
		InlineRuns:     r.Counter("exec_inline_runs_total", "ForEach invocations that ran sequentially inline"),
		Jobs:           r.Counter("exec_jobs_total", "jobs executed by ForEach (inline or pooled)"),
		WorkersSpawned: r.Counter("exec_workers_spawned_total", "worker goroutines started"),
		Checkpoints:    r.Counter("exec_checkpoints_total", "cancellation checkpoints fired inside ForEach"),
		QueueWait:      r.Histogram("exec_queue_wait_seconds", "job wait between enqueue and worker pickup", nil),
		JobDuration:    r.Histogram("exec_job_duration_seconds", "job execution time", nil),
	}
}

type execKey struct{}

// WithExecMetrics returns a context carrying m; exec.ForEach picks it up via
// ExecFrom on every invocation reached through that context.
func WithExecMetrics(ctx context.Context, m *ExecMetrics) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, execKey{}, m)
}

// ExecFrom extracts the pool metrics carried by ctx, or nil.
func ExecFrom(ctx context.Context) *ExecMetrics {
	if ctx == nil {
		return nil
	}
	m, _ := ctx.Value(execKey{}).(*ExecMetrics)
	return m
}
