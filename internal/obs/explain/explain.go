// Package explain builds per-query plan trees: a structured profile of which
// phases a why-not query ran, how many candidates entered and survived each
// one, which pruning rule did the work, how many R-tree pages each phase read
// per level, and what each phase cost against a calibrated estimate. It is
// the drill-down layer on top of the flat counters (internal/obs cost
// counters) and the span timeline (obs.Trace): those say *that* a query was
// slow, the plan says *which phase failed to prune*.
//
// The package follows the internal/obs design rules: a nil *Builder (explain
// disabled) reduces every hook to a nil check with zero allocations, carried
// through context like obs.Trace; timestamps come from obs.Now (the vet-obs
// lint bans raw time.Now here); per-node counter attribution uses snapshot
// deltas of the process-global cost counters and the per-tree access
// counters — exact for a serial query, an aggregate under concurrency (same
// contract as the flight recorder's cost deltas).
package explain

import (
	"context"
	"sync"

	"repro/internal/obs"
)

// TreeStats is the slice of the R-tree's access accounting a Builder
// snapshots around each plan node (implemented by *rtree.Tree). Defined here
// so the package depends only on internal/obs.
type TreeStats interface {
	Accesses() int
	LeafScans() int
	LevelAccesses() []int64
	Pruned() int
}

// Pruning rules a plan node can attribute its work to — the paper's four
// candidate-elimination mechanisms plus a catch-all.
const (
	// RuleGlobalDominance: a globally dominated customer can never include q
	// in its dynamic skyline, so it is discarded before any window query
	// (Lemma: global skyline filtering in the BBRS pipeline).
	RuleGlobalDominance = "global-dominance"
	// RuleDSLWindow: the dynamic-skyline window/frontier query — the
	// transformed-box dominance prune inside the guided R-tree descent.
	RuleDSLWindow = "dsl-window"
	// RuleMidpoint: midpoint/binding-constraint candidate generation in MWP
	// (Algorithm 1) — frontier points in, canonical candidates out.
	RuleMidpoint = "midpoint"
	// RuleSafeRegion: safe-region containment (Algorithm 3/4) — anti-DDR
	// intersection folding and corner enumeration.
	RuleSafeRegion = "safe-region"
	// RuleMindist: BBRS best-first mindist ordering with dominance pruning
	// of heap entries.
	RuleMindist = "bbrs-mindist"
	// RuleNone marks a structural node with no pruning of its own.
	RuleNone = ""
)

// Node is one profiled phase in a plan tree. Candidate counts are recorded
// explicitly by the instrumented layer (SetIn/SetOut); everything else is a
// snapshot delta taken between Start and End.
type Node struct {
	Name string `json:"name"`
	Rule string `json:"rule,omitempty"`
	// In/Out are candidates entering and surviving this phase; -1 = not
	// recorded (structural node).
	In  int `json:"in"`
	Out int `json:"out"`
	// ActualNS is the measured wall time, EstNS the cost-model estimate made
	// from the node's inputs (rule + In) before this node's own timing fed
	// back into calibration.
	ActualNS int64 `json:"actual_ns"`
	EstNS    int64 `json:"est_ns"`
	// Cost is the delta of the process-global cost counters across the node.
	Cost obs.CostSnapshot `json:"cost"`
	// NodeAccesses/LeafScans/LevelAccesses/TreePruned are deltas of the
	// R-tree access accounting (LevelAccesses index 0 = leaves).
	NodeAccesses  int     `json:"node_accesses"`
	LeafScans     int     `json:"leaf_scans"`
	LevelAccesses []int64 `json:"level_accesses,omitempty"`
	TreePruned    int     `json:"tree_pruned"`
	Children      []*Node `json:"children,omitempty"`
}

// PruneRatio returns the fraction of inbound candidates this phase
// eliminated, and false when candidate counts were not recorded.
func (n *Node) PruneRatio() (float64, bool) {
	if n == nil || n.In <= 0 || n.Out < 0 || n.Out > n.In {
		return 0, false
	}
	return float64(n.In-n.Out) / float64(n.In), true
}

// Walk visits the node and its descendants preorder.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Plan is a finished profile for one query.
type Plan struct {
	Op   string `json:"op"`
	Dims int    `json:"dims"`
	Rung string `json:"rung,omitempty"`
	// Shape is the preorder rendering of the tree's names and rules;
	// Fingerprint hashes (Op, Dims, Rung, Shape) — the workload-class key of
	// the fingerprint store.
	Shape       string `json:"shape"`
	Fingerprint string `json:"fingerprint"`
	TotalNS     int64  `json:"total_ns"`
	Root        *Node  `json:"root"`
}

// Span is an open plan node: End closes it and computes its deltas. A nil
// Span (from a nil Builder) no-ops everywhere.
type Span struct {
	b    *Builder
	n    *Node
	done bool

	startNS     int64
	startCost   obs.CostSnapshot
	startAcc    int
	startLeaf   int
	startPruned int
	startLevels []int64
}

// Builder assembles the plan tree for one query. Safe for concurrent Start/
// End from parallel phase workers (a mutex, not atomics — explain is a
// per-request opt-in, contention is bounded by the worker pool).
type Builder struct {
	op    string
	dims  int
	tree  TreeStats
	model *Model

	mu    sync.Mutex
	root  *Span
	stack []*Span // open nodes, innermost last
	plan  *Plan
}

// NewBuilder opens a plan for one query. model may be nil (estimates then
// stay zero); tree may be nil (no access attribution).
func NewBuilder(op string, dims int, model *Model, tree TreeStats) *Builder {
	b := &Builder{op: op, dims: dims, tree: tree, model: model}
	b.root = b.open(op, RuleNone)
	return b
}

// open creates a span with its start snapshots; callers append/push under mu
// (NewBuilder runs before the builder is shared, so no lock there).
func (b *Builder) open(name, rule string) *Span {
	sp := &Span{
		b:         b,
		n:         &Node{Name: name, Rule: rule, In: -1, Out: -1},
		startNS:   obs.Now(),
		startCost: obs.Cost(),
	}
	if b.tree != nil {
		sp.startAcc = b.tree.Accesses()
		sp.startLeaf = b.tree.LeafScans()
		sp.startPruned = b.tree.Pruned()
		sp.startLevels = b.tree.LevelAccesses()
	}
	return sp
}

// Start opens a child plan node under the innermost open node. Returns nil on
// a nil Builder — every Span method tolerates that, so call sites need no
// enabled-check.
func (b *Builder) Start(name, rule string) *Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.plan != nil { // finished: late spans from stragglers are dropped
		return nil
	}
	sp := b.open(name, rule)
	parent := b.root
	if len(b.stack) > 0 {
		parent = b.stack[len(b.stack)-1]
	}
	parent.n.Children = append(parent.n.Children, sp.n)
	b.stack = append(b.stack, sp)
	return sp
}

// SetIn records the candidates entering the phase.
func (sp *Span) SetIn(n int) {
	if sp == nil {
		return
	}
	sp.n.In = n
}

// SetOut records the candidates surviving the phase.
func (sp *Span) SetOut(n int) {
	if sp == nil {
		return
	}
	sp.n.Out = n
}

// End closes the span: actual time, counter deltas, cost estimate, and model
// calibration. Idempotent; typically deferred.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.b.mu.Lock()
	defer sp.b.mu.Unlock()
	sp.endLocked()
}

// endLocked closes the span under the builder lock and unlinks it from the
// open stack (wherever it sits — parallel workers may end out of order).
func (sp *Span) endLocked() {
	if sp.done {
		return
	}
	sp.done = true
	b := sp.b
	n := sp.n
	n.ActualNS = obs.Now() - sp.startNS
	n.Cost = obs.Cost().Sub(sp.startCost)
	if b.tree != nil {
		n.NodeAccesses = b.tree.Accesses() - sp.startAcc
		n.LeafScans = b.tree.LeafScans() - sp.startLeaf
		n.TreePruned = b.tree.Pruned() - sp.startPruned
		levels := b.tree.LevelAccesses()
		for i, v := range levels {
			var prev int64
			if i < len(sp.startLevels) {
				prev = sp.startLevels[i]
			}
			if d := v - prev; d != 0 {
				if n.LevelAccesses == nil {
					n.LevelAccesses = make([]int64, len(levels))
				}
				n.LevelAccesses[i] = d
			}
		}
	}
	units := estUnits(n)
	n.EstNS = b.model.Estimate(n.Rule, units)
	b.model.Observe(n.Rule, units, n.ActualNS)
	for i := len(b.stack) - 1; i >= 0; i-- {
		if b.stack[i] == sp {
			b.stack = append(b.stack[:i], b.stack[i+1:]...)
			break
		}
	}
}

// estUnits maps a node to the cost model's work units: the inbound candidate
// count, the paper's cost driver for every phase (window queries per
// surviving customer, one MWP per corner, one dominance test per global-
// skyline pair). Structural nodes without counts charge one unit.
func estUnits(n *Node) int64 {
	if n.In > 0 {
		return int64(n.In)
	}
	return 1
}

// Finish closes any still-open spans and the root, derives the fingerprint,
// and returns the immutable plan. Idempotent: later calls return the same
// plan; rung from the first call wins. Nil-safe.
func (b *Builder) Finish(rung string) *Plan {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.plan != nil {
		return b.plan
	}
	for len(b.stack) > 0 {
		b.stack[len(b.stack)-1].endLocked()
	}
	b.root.endLocked()
	shape := shapeOf(b.root.n)
	b.plan = &Plan{
		Op:          b.op,
		Dims:        b.dims,
		Rung:        rung,
		Shape:       shape,
		Fingerprint: fingerprintOf(b.op, b.dims, rung, shape),
		TotalNS:     b.root.n.ActualNS,
		Root:        b.root.n,
	}
	return b.plan
}

type ctxKey struct{}

// With returns a context carrying the builder; instrumented layers pick it up
// with From. Mirrors obs.WithTrace.
func With(ctx context.Context, b *Builder) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, b)
}

// From extracts the builder carried by ctx, or nil (explain disabled). The
// nil path allocates nothing — the disabled-overhead budget test pins that.
func From(ctx context.Context) *Builder {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(ctxKey{}).(*Builder)
	return b
}
