package explain

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// RenderOptions controls the tree rendering. Timings=false drops every
// machine-dependent field (actual/estimated ns) so golden tests can pin the
// deterministic plan: phases, rules, candidate counts, prune ratios, node
// accesses.
type RenderOptions struct {
	Timings bool
}

// Render writes the plan as an indented tree, one node per line.
func (p *Plan) Render(w io.Writer, opts RenderOptions) {
	if p == nil {
		return
	}
	fmt.Fprintf(w, "plan %s dims=%d", p.Op, p.Dims)
	if p.Rung != "" {
		fmt.Fprintf(w, " rung=%s", p.Rung)
	}
	fmt.Fprintf(w, " fp=%s", p.Fingerprint)
	if opts.Timings {
		fmt.Fprintf(w, " total=%s", fmtNS(p.TotalNS))
	}
	fmt.Fprintln(w)
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(w, "%s%s", strings.Repeat("  ", depth+1), n.Name)
		if n.Rule != "" {
			fmt.Fprintf(w, " rule=%s", n.Rule)
		}
		if n.In >= 0 {
			fmt.Fprintf(w, " in=%d", n.In)
		}
		if n.Out >= 0 {
			fmt.Fprintf(w, " out=%d", n.Out)
		}
		if r, ok := n.PruneRatio(); ok {
			fmt.Fprintf(w, " prune=%.1f%%", r*100)
		}
		if n.NodeAccesses > 0 {
			fmt.Fprintf(w, " acc=%d", n.NodeAccesses)
			if n.LeafScans > 0 {
				fmt.Fprintf(w, " leaf=%d", n.LeafScans)
			}
			if len(n.LevelAccesses) > 0 {
				fmt.Fprintf(w, " levels=%s", fmtLevels(n.LevelAccesses))
			}
		}
		if n.TreePruned > 0 {
			fmt.Fprintf(w, " rtree_pruned=%d", n.TreePruned)
		}
		if c := n.Cost; c.DominanceTests > 0 || c.WindowQueries > 0 || c.PrunedEntries > 0 || c.CandidateEvaluations > 0 {
			fmt.Fprintf(w, " dt=%d wq=%d cand=%d pruned=%d",
				c.DominanceTests, c.WindowQueries, c.CandidateEvaluations, c.PrunedEntries)
		}
		if opts.Timings {
			fmt.Fprintf(w, " est=%s act=%s", fmtNS(n.EstNS), fmtNS(n.ActualNS))
			if n.EstNS > 0 {
				fmt.Fprintf(w, " (%+.0f%%)", 100*float64(n.ActualNS-n.EstNS)/float64(n.EstNS))
			}
		}
		fmt.Fprintln(w)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if p.Root != nil {
		// The root line repeats the op but carries the whole-query
		// aggregates (its deltas span the full plan window).
		walk(p.Root, 0)
	}
}

// String renders with timings (the interactive CLI form).
func (p *Plan) String() string {
	var sb strings.Builder
	p.Render(&sb, RenderOptions{Timings: true})
	return sb.String()
}

// StableString renders without timings — byte-stable across runs on one
// dataset, the form golden tests pin.
func (p *Plan) StableString() string {
	var sb strings.Builder
	p.Render(&sb, RenderOptions{})
	return sb.String()
}

func fmtLevels(levels []int64) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, v := range levels {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "L%d:%d", i, v)
	}
	sb.WriteByte(']')
	return sb.String()
}

func fmtNS(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
