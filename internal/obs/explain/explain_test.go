package explain

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

type fakeTree struct {
	acc, leaf, pruned int
	levels            []int64
}

func (f *fakeTree) Accesses() int          { return f.acc }
func (f *fakeTree) LeafScans() int         { return f.leaf }
func (f *fakeTree) LevelAccesses() []int64 { return append([]int64(nil), f.levels...) }
func (f *fakeTree) Pruned() int            { return f.pruned }

func TestBuilderTreeAndDeltas(t *testing.T) {
	ft := &fakeTree{levels: []int64{0, 0}}
	b := NewBuilder("mwq", 2, NewModel(), ft)
	ctx := With(context.Background(), b)
	if From(ctx) != b {
		t.Fatal("From did not round-trip the builder")
	}

	sp := From(ctx).Start("saferegion", RuleSafeRegion)
	sp.SetIn(10)
	obs.AddDominanceTests(7)
	ft.acc, ft.leaf, ft.pruned = 5, 3, 2
	ft.levels = []int64{3, 2}
	sp.SetOut(4)
	sp.End()

	child := b.Start("corners", RuleMidpoint)
	child.SetIn(8)
	child.SetOut(2)
	child.End()

	plan := b.Finish("exact")
	if plan == nil || plan.Root == nil {
		t.Fatal("nil plan")
	}
	if got := b.Finish("other"); got != plan {
		t.Fatal("Finish not idempotent")
	}
	if plan.Rung != "exact" {
		t.Fatalf("rung = %q", plan.Rung)
	}
	if len(plan.Root.Children) != 2 {
		t.Fatalf("children = %d, want 2 (second Start after first End attaches to root)", len(plan.Root.Children))
	}
	sr := plan.Root.Children[0]
	if sr.Name != "saferegion" || sr.Rule != RuleSafeRegion {
		t.Fatalf("node 0 = %s[%s]", sr.Name, sr.Rule)
	}
	if sr.Cost.DominanceTests != 7 {
		t.Fatalf("dominance delta = %d, want 7", sr.Cost.DominanceTests)
	}
	if sr.NodeAccesses != 5 || sr.LeafScans != 3 || sr.TreePruned != 2 {
		t.Fatalf("tree deltas = %d/%d/%d", sr.NodeAccesses, sr.LeafScans, sr.TreePruned)
	}
	if len(sr.LevelAccesses) != 2 || sr.LevelAccesses[0] != 3 || sr.LevelAccesses[1] != 2 {
		t.Fatalf("level deltas = %v", sr.LevelAccesses)
	}
	if r, ok := sr.PruneRatio(); !ok || r != 0.6 {
		t.Fatalf("prune ratio = %v/%v", r, ok)
	}
	if plan.Shape != "mwq(saferegion[safe-region],corners[midpoint])" {
		t.Fatalf("shape = %q", plan.Shape)
	}
	if len(plan.Fingerprint) != 16 {
		t.Fatalf("fingerprint = %q", plan.Fingerprint)
	}
	// Same inputs → same fingerprint; different rung → different.
	if fingerprintOf("mwq", 2, "exact", plan.Shape) != plan.Fingerprint {
		t.Fatal("fingerprint not deterministic")
	}
	if fingerprintOf("mwq", 2, "approx", plan.Shape) == plan.Fingerprint {
		t.Fatal("fingerprint ignores rung")
	}

	out := plan.StableString()
	for _, want := range []string{"plan mwq dims=2 rung=exact", "prune=60.0%", "acc=5 leaf=3", "rule=midpoint in=8 out=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "est=") {
		t.Fatalf("stable render leaks timings:\n%s", out)
	}
	if !strings.Contains(plan.String(), "est=") {
		t.Fatal("timed render missing estimates")
	}
}

func TestDisabledPathIsNilAndAllocFree(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != nil || From(nil) != nil {
		t.Fatal("From on plain ctx must be nil")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		b := From(ctx)
		sp := b.Start("phase", RuleDSLWindow)
		sp.SetIn(3)
		sp.SetOut(1)
		sp.End()
		_ = b.Finish("exact")
	})
	if allocs != 0 {
		t.Fatalf("disabled explain hook path allocates: %v allocs/op", allocs)
	}
}

func TestModelCalibration(t *testing.T) {
	m := NewModel()
	before := m.Estimate(RuleDSLWindow, 10)
	// Feed consistently cheaper observations; the EWMA must pull the
	// estimate down.
	for i := 0; i < 100; i++ {
		m.Observe(RuleDSLWindow, 10, 1000) // 100 ns/unit
	}
	after := m.Estimate(RuleDSLWindow, 10)
	if after >= before {
		t.Fatalf("calibration did not converge down: before=%d after=%d", before, after)
	}
	if after < 900 || after > 3000 {
		t.Fatalf("calibrated estimate out of range: %d", after)
	}
	var nilModel *Model
	if nilModel.Estimate(RuleDSLWindow, 10) != 0 {
		t.Fatal("nil model must estimate 0")
	}
	nilModel.Observe(RuleDSLWindow, 1, 1) // must not panic
}

func TestStoreDriftDetection(t *testing.T) {
	s := NewStore(4)
	mkPlan := func(ns int64) *Plan {
		b := NewBuilder("mwq", 2, nil, nil)
		sp := b.Start("saferegion", RuleSafeRegion)
		sp.SetIn(4)
		sp.SetOut(2)
		sp.End()
		p := b.Finish("exact")
		p.TotalNS = ns
		return p
	}
	// Baseline: 1ms-ish latencies.
	for i := 0; i < baselineN; i++ {
		if s.Observe(mkPlan(1e6)) {
			t.Fatal("drift during baseline")
		}
	}
	// Regression: 5ms. Needs driftMinRecent fresh samples before tripping.
	tripped := false
	for i := 0; i < ringSize; i++ {
		if s.Observe(mkPlan(5e6)) {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("5x latency regression did not trip drift")
	}
	if s.Drifting() != 1 {
		t.Fatalf("Drifting() = %d, want 1", s.Drifting())
	}
	// Recovery: back to baseline clears the latch.
	for i := 0; i < ringSize; i++ {
		s.Observe(mkPlan(1e6))
	}
	if s.Drifting() != 0 {
		t.Fatalf("Drifting() after recovery = %d, want 0", s.Drifting())
	}
	snaps := s.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("classes = %d, want 1", len(snaps))
	}
	if snaps[0].Count != baselineN+2*ringSize {
		t.Fatalf("count = %d", snaps[0].Count)
	}
	if snaps[0].PruneRatioP50 != 0.5 {
		t.Fatalf("prune ratio p50 = %v", snaps[0].PruneRatioP50)
	}
}

func TestStoreBounded(t *testing.T) {
	s := NewStore(2)
	for i := 0; i < 5; i++ {
		b := NewBuilder("op", i, nil, nil) // dims varies → distinct fingerprints
		s.Observe(b.Finish("exact"))
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (bounded)", s.Len())
	}
	if s.Overflow() != 3 {
		t.Fatalf("Overflow = %d, want 3", s.Overflow())
	}
}

func TestBuilderConcurrentSpans(t *testing.T) {
	b := NewBuilder("mwq", 2, NewModel(), nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := b.Start("worker", RuleDSLWindow)
				sp.SetIn(1)
				sp.SetOut(1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	plan := b.Finish("exact")
	total := 0
	plan.Root.Walk(func(*Node) { total++ })
	if total != 1+8*50 {
		t.Fatalf("nodes = %d, want %d", total, 1+8*50)
	}
}
