package explain

import (
	"math"
	"sync/atomic"
)

// The cost model prices a plan node as units × ns-per-unit(rule), where units
// is the inbound candidate count (estUnits). The per-rule constants are
// seeded from the paper's I/O-cost reasoning — §VII charges each phase by its
// dominant operation — and then refreshed by an EWMA of observed per-node
// timings, so the estimate tracks this machine and dataset instead of the
// seed. A node whose actual cost runs far from its estimate is the anomaly
// the explain output highlights: either the workload shape changed (the
// candidate count stopped predicting the work) or a pruning rule stopped
// firing.

// Rule indices into the model's calibration table.
const (
	ruleIdxDefault = iota
	ruleIdxGlobalDominance
	ruleIdxDSLWindow
	ruleIdxMidpoint
	ruleIdxSafeRegion
	ruleIdxMindist
	numRules
)

func ruleIndex(rule string) int {
	switch rule {
	case RuleGlobalDominance:
		return ruleIdxGlobalDominance
	case RuleDSLWindow:
		return ruleIdxDSLWindow
	case RuleMidpoint:
		return ruleIdxMidpoint
	case RuleSafeRegion:
		return ruleIdxSafeRegion
	case RuleMindist:
		return ruleIdxMindist
	default:
		return ruleIdxDefault
	}
}

// seedNSPerUnit is the uncalibrated price of one work unit per rule,
// following the paper's per-phase cost accounting:
//
//   - global dominance: one transformed dominance test per candidate pair —
//     a handful of float compares;
//   - DSL window/frontier: a guided R-tree descent per probe, O(height) page
//     reads each, plus the transformed-box dominance tests at every node;
//   - midpoint generation: per frontier point, binding-constraint solving
//     and canonical candidate dedup;
//   - safe region: per customer, a full dynamic skyline plus the anti-DDR
//     rectangle-set intersection fold (the Algorithm 3 dominant cost);
//   - BBRS mindist: one heap pop + mindist evaluation per node access.
var seedNSPerUnit = [numRules]float64{
	ruleIdxDefault:         500,
	ruleIdxGlobalDominance: 60,
	ruleIdxDSLWindow:       2500,
	ruleIdxMidpoint:        1200,
	ruleIdxSafeRegion:      4000,
	ruleIdxMindist:         300,
}

// ewmaWeight is the calibration smoothing factor: new = (1-w)·old + w·obs.
// 1/8 converges in a few dozen queries without letting one preempted
// goroutine rewrite the table.
const ewmaWeight = 1.0 / 8

// Model holds the calibrated ns-per-unit table. All methods are nil-safe
// (estimates collapse to zero) and safe for concurrent use: each entry is a
// float64 behind an atomic bit pattern, updated with a CAS loop.
type Model struct {
	nsPerUnit [numRules]atomic.Uint64
}

// NewModel returns a model at the paper-seeded constants.
func NewModel() *Model {
	m := &Model{}
	for i, v := range seedNSPerUnit {
		m.nsPerUnit[i].Store(math.Float64bits(v))
	}
	return m
}

// Estimate prices units of work under the given rule, in nanoseconds.
func (m *Model) Estimate(rule string, units int64) int64 {
	if m == nil || units <= 0 {
		return 0
	}
	ns := math.Float64frombits(m.nsPerUnit[ruleIndex(rule)].Load())
	return int64(ns * float64(units))
}

// Observe feeds a measured node back into calibration.
func (m *Model) Observe(rule string, units, actualNS int64) {
	if m == nil || units <= 0 || actualNS < 0 {
		return
	}
	perUnit := float64(actualNS) / float64(units)
	slot := &m.nsPerUnit[ruleIndex(rule)]
	for {
		old := slot.Load()
		next := (1-ewmaWeight)*math.Float64frombits(old) + ewmaWeight*perUnit
		if slot.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Calibration returns the current ns-per-unit table keyed by rule name (the
// default slot under "default") — surfaced for debugging and tests.
func (m *Model) Calibration() map[string]float64 {
	if m == nil {
		return nil
	}
	out := make(map[string]float64, numRules)
	for rule, idx := range map[string]int{
		"default":           ruleIdxDefault,
		RuleGlobalDominance: ruleIdxGlobalDominance,
		RuleDSLWindow:       ruleIdxDSLWindow,
		RuleMidpoint:        ruleIdxMidpoint,
		RuleSafeRegion:      ruleIdxSafeRegion,
		RuleMindist:         ruleIdxMindist,
	} {
		out[rule] = math.Float64frombits(m.nsPerUnit[idx].Load())
	}
	return out
}
