package explain

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
)

// Query fingerprints group queries into workload classes by what the planner
// did, not by their literal parameters: the hash covers op kind,
// dimensionality, degrade rung and the plan-tree shape (phase names + pruning
// rules, preorder). Two MWQ calls with different query points but the same
// plan shape share a fingerprint; an MWQ that degraded to the approx rung, or
// whose safe region collapsed to the corner-enumeration case, lands in a
// different class. Per-class percentiles then catch a regressing workload
// class that a global p99 would average away.

// shapeOf renders the tree's names and rules preorder:
// "mwq(saferegion[safe-region],corners[midpoint](...))".
func shapeOf(root *Node) string {
	var sb strings.Builder
	var walk func(n *Node)
	walk = func(n *Node) {
		sb.WriteString(n.Name)
		if n.Rule != "" {
			sb.WriteByte('[')
			sb.WriteString(n.Rule)
			sb.WriteByte(']')
		}
		if len(n.Children) > 0 {
			sb.WriteByte('(')
			for i, c := range n.Children {
				if i > 0 {
					sb.WriteByte(',')
				}
				walk(c)
			}
			sb.WriteByte(')')
		}
	}
	if root != nil {
		walk(root)
	}
	return sb.String()
}

// fingerprintOf hashes the workload-class key to 16 hex digits (FNV-1a 64,
// the same digest family the flight recorder uses for query parameters).
func fingerprintOf(op string, dims int, rung, shape string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%s|%s", op, dims, rung, shape)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Store aggregation bounds. ringSize recent samples give a usable p95;
// baselineN samples freeze the reference percentile the drift test compares
// against; a class begins drift-testing once the recent ring holds
// driftMinRecent fresh samples beyond the baseline.
const (
	ringSize       = 64
	baselineN      = 32
	driftMinRecent = 32
	// driftFactor trips the detector (recent p95 > factor × baseline p95);
	// clearFactor re-arms it lower so a class flapping around the threshold
	// does not strobe the gauge. driftMinDeltaNS absorbs microsecond-scale
	// noise on very fast classes.
	driftFactor     = 1.5
	clearFactor     = 1.25
	driftMinDeltaNS = 200e3
)

// class accumulates one fingerprint's samples.
type class struct {
	op    string
	dims  int
	rung  string
	shape string

	count uint64

	latRing   [ringSize]float64 // ns
	costRing  [ringSize]float64 // work units (dominance tests + node accesses)
	pruneRing [ringSize]float64 // whole-plan prune ratio
	ringN     int               // filled slots
	ringI     int               // next write

	baseline    []float64 // first baselineN latencies, then frozen
	baselineP95 float64   // valid once len(baseline) == baselineN
	sinceBase   int       // samples observed after the baseline froze
	drifting    bool
}

// ClassSnapshot is one fingerprint's aggregate, as served by
// /v1/debug/fingerprints.
type ClassSnapshot struct {
	Fingerprint string `json:"fingerprint"`
	Op          string `json:"op"`
	Dims        int    `json:"dims"`
	Rung        string `json:"rung,omitempty"`
	Shape       string `json:"shape"`
	Count       uint64 `json:"count"`

	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP95MS  float64 `json:"latency_p95_ms"`
	BaselineP95MS float64 `json:"baseline_p95_ms,omitempty"`
	CostP50       float64 `json:"cost_p50"`
	CostP95       float64 `json:"cost_p95"`
	PruneRatioP50 float64 `json:"prune_ratio_p50"`
	Drifting      bool    `json:"drifting"`
}

// Store is the bounded query-fingerprint aggregator. One per serving surface
// (the server keeps its own so it survives snapshot hot-swaps; an embedded DB
// keeps one for the CLI).
type Store struct {
	mu       sync.Mutex
	classes  map[string]*class
	max      int
	overflow uint64 // queries whose new class did not fit
}

// NewStore returns a store bounded to max classes (≤0 = 256). Eviction is
// rejection: once full, queries of unseen shapes count into Overflow instead
// of displacing established baselines — a regression store that recycles its
// baselines under churn cannot detect drift.
func NewStore(max int) *Store {
	if max <= 0 {
		max = 256
	}
	return &Store{classes: make(map[string]*class), max: max}
}

// Observe folds a finished plan into its class and reports whether this
// sample tripped (or re-confirmed) the class's drift detector. The caller
// surfaces a true return as a flight-recorder event and on the
// fingerprint_drift gauge.
func (s *Store) Observe(p *Plan) (drifting bool) {
	if s == nil || p == nil || p.Root == nil {
		return false
	}
	// The root's deltas already aggregate the whole query (children are
	// sub-intervals of the root's snapshot window), so the per-query cost
	// scalar reads the root once: dominance tests + node accesses, the two
	// axes §VII measures.
	cost := float64(p.Root.Cost.DominanceTests) + float64(p.Root.NodeAccesses)
	prune, _ := wholePlanPruneRatio(p.Root)

	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.classes[p.Fingerprint]
	if c == nil {
		if len(s.classes) >= s.max {
			s.overflow++
			return false
		}
		c = &class{op: p.Op, dims: p.Dims, rung: p.Rung, shape: p.Shape}
		s.classes[p.Fingerprint] = c
	}
	c.count++
	lat := float64(p.TotalNS)
	c.latRing[c.ringI] = lat
	c.costRing[c.ringI] = cost
	c.pruneRing[c.ringI] = prune
	c.ringI = (c.ringI + 1) % ringSize
	if c.ringN < ringSize {
		c.ringN++
	}
	if len(c.baseline) < baselineN {
		c.baseline = append(c.baseline, lat)
		if len(c.baseline) == baselineN {
			c.baselineP95 = percentile(append([]float64(nil), c.baseline...), 95)
		}
		return false
	}
	c.sinceBase++
	if c.sinceBase < driftMinRecent {
		return c.drifting
	}
	recent := percentile(ringCopy(&c.latRing, c.ringN), 95)
	switch {
	case !c.drifting && recent > c.baselineP95*driftFactor && recent-c.baselineP95 > driftMinDeltaNS:
		c.drifting = true
	case c.drifting && recent <= c.baselineP95*clearFactor:
		c.drifting = false
	}
	return c.drifting
}

// wholePlanPruneRatio aggregates candidates in/out over every node that
// recorded counts: total eliminated / total entering.
func wholePlanPruneRatio(root *Node) (float64, bool) {
	var in, cut int
	root.Walk(func(n *Node) {
		if _, ok := n.PruneRatio(); ok {
			in += n.In
			cut += n.In - n.Out
		}
	})
	if in == 0 {
		return 0, false
	}
	return float64(cut) / float64(in), true
}

// Drifting returns how many classes currently trip the drift detector — the
// fingerprint_drift gauge reads it on scrape.
func (s *Store) Drifting() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.classes {
		if c.drifting {
			n++
		}
	}
	return n
}

// Overflow returns how many observations were discarded because the class
// table was full.
func (s *Store) Overflow() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overflow
}

// Len returns the number of tracked classes.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.classes)
}

// Snapshot returns every class's aggregate, busiest first (count desc,
// fingerprint asc for determinism).
func (s *Store) Snapshot() []ClassSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ClassSnapshot, 0, len(s.classes))
	for fp, c := range s.classes {
		lat := ringCopy(&c.latRing, c.ringN)
		cost := ringCopy(&c.costRing, c.ringN)
		pr := ringCopy(&c.pruneRing, c.ringN)
		out = append(out, ClassSnapshot{
			Fingerprint:   fp,
			Op:            c.op,
			Dims:          c.dims,
			Rung:          c.rung,
			Shape:         c.shape,
			Count:         c.count,
			LatencyP50MS:  percentile(lat, 50) / 1e6,
			LatencyP95MS:  percentile(lat, 95) / 1e6,
			BaselineP95MS: c.baselineP95 / 1e6,
			CostP50:       percentile(cost, 50),
			CostP95:       percentile(cost, 95),
			PruneRatioP50: percentile(pr, 50),
			Drifting:      c.drifting,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Fingerprint < out[b].Fingerprint
	})
	return out
}

func ringCopy(ring *[ringSize]float64, n int) []float64 {
	out := make([]float64, n)
	copy(out, ring[:n])
	return out
}

// percentile sorts its (owned) input and reads the nearest-rank percentile.
func percentile(vals []float64, p int) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	idx := len(vals) * p / 100
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}
