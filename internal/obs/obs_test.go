package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(0)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read 0")
	}
	var l *LabeledCounter
	l.With("x").Inc()
	if l.Values() != nil {
		t.Fatal("nil labeled counter must have no values")
	}

	var r *Registry
	if r.Counter("a", "") != nil || r.Gauge("b", "") != nil ||
		r.Histogram("c", "", nil) != nil || r.LabeledCounter("d", "", "l") != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	r.CounterFunc("e", "", func() uint64 { return 1 })
	r.GaugeFunc("f", "", func() float64 { return 1 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry render: %q, %v", sb.String(), err)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("widgets_total", "widgets")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Idempotent re-registration returns the same counter.
	if r.Counter("widgets_total", "widgets") != c {
		t.Fatal("re-registration must return the existing counter")
	}
	g := r.Gauge("level", "level")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash must panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in the first bucket
	}
	if got := h.Quantile(0.5); got < 0 || got > 1 {
		t.Fatalf("p50 = %v, want within first bucket [0,1]", got)
	}
	h2 := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 50; i++ {
		h2.Observe(0.5)
	}
	for i := 0; i < 50; i++ {
		h2.Observe(3) // (2,4] bucket
	}
	p95 := h2.Quantile(0.95)
	if p95 < 2 || p95 > 4 {
		t.Fatalf("p95 = %v, want within (2,4]", p95)
	}
	if h2.Count() != 100 {
		t.Fatalf("count = %d, want 100", h2.Count())
	}
	if want := 50*0.5 + 50*3.0; h2.Sum() != want {
		t.Fatalf("sum = %v, want %v", h2.Sum(), want)
	}
	// Overflow saturates at the last bound.
	h3 := NewHistogram([]float64{1})
	h3.Observe(100)
	if got := h3.Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %v, want last bound 1", got)
	}
	// Empty histogram.
	if NewHistogram(DurationBuckets()).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

// TestHistogramQuantileBoundary pins the exact-rank case at a bucket's upper
// edge: with 7 of 100 observations in the first bucket, q=0.07 has its rank
// exactly at that bucket's boundary. The target 0.07×100 evaluates to
// 7.000000000000001 in IEEE754, which used to push the scan past the first
// bucket (7 >= 7.000000000000001 is false) and report ≈2.0 instead of 1.0.
func TestHistogramQuantileBoundary(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 7; i++ {
		h.Observe(1.0) // on the first bucket's upper edge (v <= 1)
	}
	for i := 0; i < 93; i++ {
		h.Observe(4.0)
	}
	if got := h.Quantile(0.07); got != 1.0 {
		t.Fatalf("Quantile(0.07) = %v, want exactly 1.0 (the first bucket's upper edge)", got)
	}
	// The neighbouring quantiles still land where they should.
	if got := h.Quantile(0.06); got < 0 || got > 1 {
		t.Fatalf("Quantile(0.06) = %v, want within the first bucket [0,1]", got)
	}
	if got := h.Quantile(0.5); got <= 2 || got > 4 {
		t.Fatalf("Quantile(0.5) = %v, want within (2,4]", got)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("node_accesses_total", "nodes visited").Add(7)
	r.Gauge("workers", "worker count").Set(4)
	r.Histogram("latency_seconds", "query latency", []float64{0.1, 1}).Observe(0.05)
	r.LabeledCounter("degradations_total", "degradations by reason", "reason").With("deadline").Add(3)
	r.CounterFunc("fn_total", "read-through", func() uint64 { return 11 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP node_accesses_total nodes visited",
		"# TYPE node_accesses_total counter",
		"node_accesses_total 7",
		"workers 4",
		"latency_seconds_bucket{le=\"0.1\"} 1",
		"latency_seconds_bucket{le=\"+Inf\"} 1",
		"latency_seconds_sum 0.05",
		"latency_seconds_count 1",
		"degradations_total{reason=\"deadline\"} 3",
		"fn_total 11",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.LabeledCounter("b_total", "", "k").With("v").Inc()
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)

	v := r.JSONValue()
	if v["a_total"] != uint64(2) {
		t.Fatalf("a_total = %v", v["a_total"])
	}
	if m := v["b_total"].(map[string]uint64); m["v"] != 1 {
		t.Fatalf("b_total = %v", m)
	}
	if s := v["h_seconds"].(HistogramSnapshot); s.Count != 1 || s.Sum != 0.5 {
		t.Fatalf("h_seconds = %+v", s)
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("mux_probe_total", "probe").Add(9)
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "mux_probe_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, "\"mux_probe_total\": 9") {
		t.Fatalf("/metrics.json missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "memstats") {
		t.Fatalf("/debug/vars not serving expvar:\n%.200s", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Fatalf("/debug/pprof/ not serving index:\n%.200s", out)
	}
}

func TestConcurrentMetricUpdatesAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	h := r.Histogram("conc_seconds", "", nil)
	l := r.LabeledCounter("conc_labeled_total", "", "k")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%10) / 1000)
				l.With("a").Inc()
			}
		}(w)
	}
	// Render concurrently with the writers.
	for i := 0; i < 10; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if l.Values()["a"] != workers*per {
		t.Fatalf("labeled = %d, want %d", l.Values()["a"], workers*per)
	}
}

func TestCostSnapshotDeltas(t *testing.T) {
	before := Cost()
	AddDominanceTests(3)
	AddDSLComputations(1)
	AddWindowQueries(2)
	AddSafeRegionVertices(4)
	AddCandidateEvaluations(5)
	AddCacheStale(1)
	AddDegradations(1)
	AddCancellations(1)
	// Negative/zero increments are ignored.
	AddDominanceTests(0)
	AddDominanceTests(-7)
	d := Cost().Sub(before)
	want := CostSnapshot{
		DominanceTests: 3, DSLComputations: 1, WindowQueries: 2,
		SafeRegionVertices: 4, CandidateEvaluations: 5, CacheStale: 1,
		Degradations: 1, Cancellations: 1,
	}
	if d != want {
		t.Fatalf("delta = %+v, want %+v", d, want)
	}
}

func TestRegisterCost(t *testing.T) {
	r := NewRegistry()
	RegisterCost(r)
	base := Cost()
	AddDominanceTests(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dominance_tests_total") {
		t.Fatalf("cost counters not registered:\n%s", sb.String())
	}
	if got := Cost().Sub(base).DominanceTests; got != 2 {
		t.Fatalf("dominance delta = %d, want 2", got)
	}
	RegisterCost(nil) // must not panic
}
