// Package obs is the zero-dependency observability core of the query engine:
// atomics-based counters, gauges and bounded histograms; a Registry rendering
// Prometheus text format and JSON; process-global cost counters mirroring the
// paper's efficiency metrics (R-tree node accesses, dominance tests, DSL
// computations — §VII reports exactly these); a lock-free per-query span
// recorder (Trace); and the debug HTTP mux serving /metrics, expvar and pprof.
//
// Design rules:
//
//   - nil receivers are valid everywhere and reduce every operation to a nil
//     check, so the sequential reference path with observability disabled is
//     unperturbed (the overhead guard in the root package enforces this);
//   - hot loops never call time.Now directly — they use Now from this package
//     (a monotonic nanosecond clock, mockable in tests), which `make vet-obs`
//     enforces repository-wide;
//   - counters on algorithm hot paths are batched: loops count into a local
//     int and flush once per operation with a single atomic add.
package obs

import (
	"sync/atomic"
	"time"
)

// procStart anchors the monotonic clock; all Now values are nanoseconds since
// process start. time.Since reads the monotonic reading of procStart, so the
// clock never jumps with wall-time adjustments.
var procStart = time.Now()

// clockHook, when non-nil, replaces the clock (tests only).
var clockHook atomic.Pointer[func() int64]

// Now returns monotonic nanoseconds since process start. It is the only
// permitted time source inside the hot-path packages (rtree, skyline,
// rskyline, whynot, exec, region, geom, cancel, engine); the vet-obs lint
// forbids direct time.Now there so timing stays centralised and mockable.
func Now() int64 {
	if fn := clockHook.Load(); fn != nil {
		return (*fn)()
	}
	return int64(time.Since(procStart))
}

// Since returns the duration elapsed since a Now timestamp.
func Since(start int64) time.Duration { return time.Duration(Now() - start) }

// SecondsSince returns the elapsed seconds since a Now timestamp (histogram
// observations use seconds, the Prometheus convention).
func SecondsSince(start int64) float64 { return float64(Now()-start) / 1e9 }

// SetClockForTest replaces the clock and returns a restore function. Install
// before any concurrent use; the swap itself is atomic but a mocked clock
// usually wants deterministic single-goroutine reads.
func SetClockForTest(fn func() int64) (restore func()) {
	clockHook.Store(&fn)
	return func() { clockHook.Store(nil) }
}
