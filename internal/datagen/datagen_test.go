package datagen

import (
	"math"
	"testing"
)

func TestGenerateSizesAndIDs(t *testing.T) {
	for _, kind := range []Kind{Uniform, Correlated, AntiCorrelated, CarDB} {
		items := Generate(kind, 500, 2, 1)
		if len(items) != 500 {
			t.Fatalf("%v: generated %d items, want 500", kind, len(items))
		}
		for i, it := range items {
			if it.ID != i {
				t.Fatalf("%v: item %d has ID %d", kind, i, it.ID)
			}
			if it.Point.Dims() != 2 {
				t.Fatalf("%v: wrong dims", kind)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, kind := range []Kind{Uniform, Correlated, AntiCorrelated, CarDB} {
		a := Generate(kind, 200, 2, 42)
		b := Generate(kind, 200, 2, 42)
		for i := range a {
			if !a[i].Point.Equal(b[i].Point) {
				t.Fatalf("%v: generation not deterministic at %d", kind, i)
			}
		}
		c := Generate(kind, 200, 2, 43)
		same := true
		for i := range a {
			if !a[i].Point.Equal(c[i].Point) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%v: different seeds produced identical data", kind)
		}
	}
}

func TestSyntheticRange(t *testing.T) {
	for _, kind := range []Kind{Uniform, Correlated, AntiCorrelated} {
		for _, dims := range []int{2, 3, 5} {
			items := Generate(kind, 300, dims, 7)
			for _, it := range items {
				for _, v := range it.Point {
					if v < 0 || v > 1000 {
						t.Fatalf("%v dims=%d: coordinate %v out of range", kind, dims, v)
					}
				}
			}
		}
	}
}

// pearson computes the sample correlation of the first two dimensions.
func pearson(items []Item) float64 {
	n := float64(len(items))
	var sx, sy, sxx, syy, sxy float64
	for _, it := range items {
		x, y := it.Point[0], it.Point[1]
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	return cov / math.Sqrt(vx*vy)
}

func TestDistributionShapes(t *testing.T) {
	un := pearson(Generate(Uniform, 5000, 2, 11))
	co := pearson(Generate(Correlated, 5000, 2, 11))
	ac := pearson(Generate(AntiCorrelated, 5000, 2, 11))
	if math.Abs(un) > 0.1 {
		t.Errorf("uniform correlation = %v, want ≈ 0", un)
	}
	if co < 0.8 {
		t.Errorf("correlated correlation = %v, want > 0.8", co)
	}
	if ac > -0.3 {
		t.Errorf("anti-correlated correlation = %v, want < -0.3", ac)
	}
}

func TestCarDBShape(t *testing.T) {
	items := Generate(CarDB, 5000, 2, 13)
	// Sparse: all (price, mileage) pairs distinct.
	seen := map[[2]float64]bool{}
	for _, it := range items {
		key := [2]float64{it.Point[0], it.Point[1]}
		if seen[key] {
			t.Fatalf("duplicate listing %v", it.Point)
		}
		seen[key] = true
		if it.Point[0] < 200 || it.Point[0] > 300000 {
			t.Fatalf("price %v out of plausible range", it.Point[0])
		}
		if it.Point[1] < 0 || it.Point[1] > 500000 {
			t.Fatalf("mileage %v out of plausible range", it.Point[1])
		}
	}
	// Mild negative price–mileage correlation, like a used-car market.
	if r := pearson(items); r > -0.05 {
		t.Errorf("CarDB price–mileage correlation = %v, want negative", r)
	}
	// Long-tailed prices: the mean exceeds the median noticeably.
	var prices []float64
	var sum float64
	for _, it := range items {
		prices = append(prices, it.Point[0])
		sum += it.Point[0]
	}
	mean := sum / float64(len(prices))
	med := median(prices)
	if mean < med {
		t.Errorf("CarDB prices not right-skewed: mean %v < median %v", mean, med)
	}
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ { // insertion sort is fine at test sizes
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	return s[len(s)/2]
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Uniform: "UN", Correlated: "CO", AntiCorrelated: "AC", CarDB: "CarDB", Kind(99): "unknown"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with unknown kind must panic")
		}
	}()
	Generate(Kind(99), 10, 2, 1)
}
