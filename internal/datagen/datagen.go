// Package datagen generates the experiment datasets of §VI: the three
// classic synthetic distributions of Börzsönyi et al. (uniform/independent,
// correlated, anti-correlated) and a simulated stand-in for the Yahoo! Autos
// CarDB used by the paper.
//
// The real CarDB (autos.yahoo.com crawl, 2012) is not available; CarDB here
// is a synthetic used-car market over the two numeric attributes the paper
// uses (price, mileage): a mixture of car segments with log-normal prices,
// mileage negatively correlated with price within each segment, heavy noise
// and a sparse, long-tailed spread. This preserves the properties the
// paper's experiments depend on — a sparse, mildly anti-correlated 2-d
// cloud — without the proprietary crawl.
//
// All generators are deterministic in their seed.
package datagen

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Item aliases the R-tree item type.
type Item = rtree.Item

// Kind selects a synthetic distribution.
type Kind int

const (
	// Uniform (UN): dimensions independent and uniform.
	Uniform Kind = iota
	// Correlated (CO): points concentrated around the main diagonal.
	Correlated
	// AntiCorrelated (AC): points concentrated around the anti-diagonal
	// hyperplane, so that good values in one dimension imply bad values in
	// the others.
	AntiCorrelated
	// CarDB: the simulated used-car market (2-d only: price, mileage).
	CarDB
)

// String names the distribution like the paper's tables (UN, CO, AC, CarDB).
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "UN"
	case Correlated:
		return "CO"
	case AntiCorrelated:
		return "AC"
	case CarDB:
		return "CarDB"
	default:
		return "unknown"
	}
}

// Generate produces n points of the given kind in dims dimensions (CarDB is
// always 2-d; dims is ignored for it). Coordinates lie in [0, 1000] for the
// synthetic kinds; CarDB uses its natural units (price in $, mileage in mi).
func Generate(kind Kind, n, dims int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case Uniform:
		return uniform(rng, n, dims)
	case Correlated:
		return correlated(rng, n, dims)
	case AntiCorrelated:
		return antiCorrelated(rng, n, dims)
	case CarDB:
		return carDB(rng, n)
	default:
		panic("datagen: unknown kind")
	}
}

const scale = 1000.0

func uniform(rng *rand.Rand, n, dims int) []Item {
	items := make([]Item, n)
	for i := range items {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = rng.Float64() * scale
		}
		items[i] = Item{ID: i, Point: p}
	}
	return items
}

// correlated draws a position on the diagonal and perturbs each dimension
// with a small normal term, clamping into range.
func correlated(rng *rand.Rand, n, dims int) []Item {
	items := make([]Item, n)
	for i := range items {
		v := rng.Float64()
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = clamp01(v+rng.NormFloat64()*0.05) * scale
		}
		items[i] = Item{ID: i, Point: p}
	}
	return items
}

// antiCorrelated draws points near the hyperplane Σx_i = dims/2: a plane
// position from a tight normal, then a random split across dimensions.
func antiCorrelated(rng *rand.Rand, n, dims int) []Item {
	items := make([]Item, n)
	for i := range items {
		// Plane offset around the centre.
		c := clamp01(0.5 + rng.NormFloat64()*0.1)
		// Random direction within the plane: start at the centre point and
		// repeatedly exchange mass between dimension pairs.
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = c
		}
		for step := 0; step < dims; step++ {
			a := rng.Intn(dims)
			b := rng.Intn(dims)
			if a == b {
				continue
			}
			// Transfer keeps the sum constant.
			t := (rng.Float64() - 0.5) * 0.7
			pa, pb := p[a]+t, p[b]-t
			if pa >= 0 && pa <= 1 && pb >= 0 && pb <= 1 {
				p[a], p[b] = pa, pb
			}
		}
		for d := range p {
			p[d] = clamp01(p[d]) * scale
		}
		items[i] = Item{ID: i, Point: p}
	}
	return items
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// segment describes one car-market segment of the CarDB simulation.
type segment struct {
	weight    float64 // mixture weight
	logPrice  float64 // mean of log price
	logSpread float64 // stddev of log price
	lifeMiles float64 // typical total mileage budget of the segment
}

var carSegments = []segment{
	{weight: 0.35, logPrice: math.Log(6500), logSpread: 0.55, lifeMiles: 160000},  // economy
	{weight: 0.40, logPrice: math.Log(14000), logSpread: 0.45, lifeMiles: 180000}, // midsize
	{weight: 0.18, logPrice: math.Log(32000), logSpread: 0.40, lifeMiles: 200000}, // luxury
	{weight: 0.07, logPrice: math.Log(70000), logSpread: 0.50, lifeMiles: 220000}, // exotic
}

// carDB simulates the sparse (price, mileage) cloud: within a segment,
// cheaper listings have proportionally more mileage (depreciation), with
// heavy multiplicative noise so the cloud spreads rather than collapsing
// onto a curve.
//
// Values are kept continuous (exact odometer readings, un-rounded prices):
// coordinate ties are what makes this dataset behave differently from the
// dense synthetic ones. An exact price tie between a customer and a product
// collapses the full-height band of the customer's anti-dominance region to
// zero width, which in turn suppresses the zero-cost MWQ answers the paper
// observes on the real CarDB at small reverse-skyline sizes (Table III rows
// 1–2). Continuous values reproduce that behaviour; rounding to a price grid
// demonstrably destroys it.
func carDB(rng *rand.Rand, n int) []Item {
	items := make([]Item, 0, n)
	seen := make(map[[2]float64]bool, n)
	for len(items) < n {
		seg := pickSegment(rng)
		price := math.Exp(seg.logPrice + rng.NormFloat64()*seg.logSpread)
		if price < 300 {
			price = 300 + rng.Float64()*200
		}
		if price > 250000 {
			price = 250000 - rng.Float64()*50000
		}
		// Age fraction drives both depreciation and mileage.
		age := math.Pow(rng.Float64(), 0.8) // skew toward newer listings
		mileage := age*seg.lifeMiles*(0.5+rng.Float64()) + rng.Float64()*8000
		// Depreciate the price by age with noise.
		price *= math.Pow(0.85, age*10) * (0.7 + 0.6*rng.Float64())
		if price < 250 {
			price = 250 + rng.Float64()*100
		}
		key := [2]float64{price, mileage}
		if seen[key] {
			continue // keep the cloud sparse: no duplicate listings
		}
		seen[key] = true
		items = append(items, Item{ID: len(items), Point: geom.NewPoint(price, mileage)})
	}
	return items
}

func pickSegment(rng *rand.Rand) segment {
	r := rng.Float64()
	acc := 0.0
	for _, s := range carSegments {
		acc += s.weight
		if r <= acc {
			return s
		}
	}
	return carSegments[len(carSegments)-1]
}
