// Package faultinject provides a deterministic fault-injection harness for
// the query stack. An Injector implements cancel.Hook: installed on a context
// with cancel.WithHook, it is consulted at every cooperative checkpoint the
// query algorithms pass through, identified by site name (cancel.Site*
// constants) and per-goroutine visit number. Rules can slow a site down,
// cancel the query, or panic — exactly the failures the engine's
// deadline/degradation/recovery machinery exists to absorb — without any
// wall-clock or randomness dependence, so failure tests are reproducible.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Rule describes one injected fault. The zero field values are wildcards: an
// empty Site matches every checkpoint and a zero OnVisit matches every visit.
// A matching rule applies its effects in order: sleep, callback, panic.
type Rule struct {
	// Site restricts the rule to one checkpoint site (a cancel.Site*
	// constant). Empty matches all sites.
	Site string
	// OnVisit fires the rule only on the n-th hit of the matching site,
	// counted by the injector across the whole run (deterministic for
	// serial queries; aggregated over goroutines for parallel ones). Zero
	// fires on every hit.
	OnVisit uint64
	// Delay suspends the query at the checkpoint, simulating a slow
	// computation or a stalled I/O dependency.
	Delay time.Duration
	// Do runs an arbitrary callback — typically a context.CancelFunc to
	// simulate an external abort.
	Do func()
	// Panic, when non-empty, panics with this message, simulating a bug in
	// the depths of the query algorithms.
	Panic string
}

// Injector is a set of fault rules plus per-site hit counters. It is safe
// for concurrent use by parallel query workers.
type Injector struct {
	rules []Rule

	mu     sync.Mutex
	visits map[string]uint64
}

// New builds an injector from rules. Rules are evaluated in order on every
// checkpoint hit.
func New(rules ...Rule) *Injector {
	return &Injector{rules: rules, visits: make(map[string]uint64)}
}

// Visit implements cancel.Hook. The checker's own count n spans every site
// it passes through, so rules match on the injector's per-site tally instead.
func (inj *Injector) Visit(site string, n uint64) {
	_ = n
	inj.mu.Lock()
	inj.visits[site]++
	count := inj.visits[site]
	inj.mu.Unlock()
	for _, r := range inj.rules {
		if r.Site != "" && r.Site != site {
			continue
		}
		if r.OnVisit != 0 && r.OnVisit != count {
			continue
		}
		if r.Delay > 0 {
			time.Sleep(r.Delay)
		}
		if r.Do != nil {
			r.Do()
		}
		if r.Panic != "" {
			panic(r.Panic)
		}
	}
}

// Visits reports how many times a site's checkpoint has been hit across all
// goroutines — useful for asserting that a query really did (or did not)
// reach a given stage.
func (inj *Injector) Visits(site string) uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.visits[site]
}

// Switch gates a hook behind an atomic on/off flag, so long-running harnesses
// (soak tests, the chaos driver) can open and close a fault window on a live
// system without re-plumbing contexts. It implements cancel.Hook itself;
// disabled, a visit is one atomic load.
type Switch struct {
	enabled atomic.Bool
	inner   interface{ Visit(site string, n uint64) }
}

// NewSwitch wraps inner (typically an *Injector); the switch starts disabled.
func NewSwitch(inner interface{ Visit(site string, n uint64) }) *Switch {
	return &Switch{inner: inner}
}

// Visit forwards to the wrapped hook only while the switch is enabled.
func (s *Switch) Visit(site string, n uint64) {
	if s.enabled.Load() {
		s.inner.Visit(site, n)
	}
}

// Set opens (true) or closes (false) the fault window.
func (s *Switch) Set(on bool) { s.enabled.Store(on) }

// Enabled reports whether faults currently pass through.
func (s *Switch) Enabled() bool { return s.enabled.Load() }
