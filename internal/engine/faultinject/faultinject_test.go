package faultinject

import (
	"testing"
	"time"
)

func TestRuleMatching(t *testing.T) {
	var fired []uint64
	inj := New(
		Rule{Site: "a", OnVisit: 2, Do: func() { fired = append(fired, 2) }},
		Rule{Site: "b", Do: func() { fired = append(fired, 0) }},
	)
	inj.Visit("a", 1)
	inj.Visit("b", 2) // wildcard OnVisit: fires
	inj.Visit("a", 3) // second "a" hit: fires the OnVisit=2 rule
	inj.Visit("a", 4)
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if inj.Visits("a") != 3 || inj.Visits("b") != 1 || inj.Visits("c") != 0 {
		t.Fatalf("visit tallies wrong: a=%d b=%d c=%d",
			inj.Visits("a"), inj.Visits("b"), inj.Visits("c"))
	}
}

func TestPanicRule(t *testing.T) {
	inj := New(Rule{Site: "x", Panic: "boom"})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v", r)
		}
	}()
	inj.Visit("x", 1)
	t.Fatal("panic rule did not fire")
}

func TestDelayRule(t *testing.T) {
	inj := New(Rule{Delay: 20 * time.Millisecond})
	start := time.Now()
	inj.Visit("any", 1)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay rule slept only %v", d)
	}
}
