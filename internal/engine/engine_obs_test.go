package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/cancel"
	"repro/internal/engine/faultinject"
	"repro/internal/obs"
)

// TestObservedDegradation pins the observable shape of one fault-injected
// ladder run: a slow exact rung under a tight per-rung deadline must produce
// exactly one exact-rung failure, one degradation with reason "deadline", a
// successful approximate rung — and the per-query trace must carry a span per
// attempted rung plus the degrade event. Run under -race this also proves the
// recording paths are data-race free against the pool workers.
func TestObservedDegradation(t *testing.T) {
	f := newFixture(t)
	const deadline = 50 * time.Millisecond
	inj := faultinject.New(faultinject.Rule{Site: cancel.SiteSafeRegion, Delay: 10 * time.Millisecond})

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	tr := obs.NewTrace("mwq-faulted")
	ctx := obs.WithTrace(cancel.WithHook(context.Background(), inj), tr)

	costBefore := obs.Cost()
	r := NewRunner(f.e, Config{Timeout: deadline, Degrade: true, Store: f.store, Metrics: m})
	ans, err := r.MWQ(ctx, f.ct, f.q, f.rsl)
	if err != nil {
		// The whole ladder can time out on a slow host; the counters must
		// then show a failure per attempted rung and no success.
		t.Skipf("ladder exhausted on this host: %v", err)
	}
	if !ans.Degraded || ans.Rung != RungApprox {
		t.Fatalf("expected a degraded approx answer, got rung=%v degraded=%v", ans.Rung, ans.Degraded)
	}

	if got := m.RungAttempts.With("exact").Value(); got != 1 {
		t.Errorf("exact attempts = %d, want 1", got)
	}
	if got := m.RungFailures.With("exact").Value(); got != 1 {
		t.Errorf("exact failures = %d, want 1", got)
	}
	if got := m.RungAttempts.With("approx").Value(); got != 1 {
		t.Errorf("approx attempts = %d, want 1", got)
	}
	if got := m.RungFailures.With("approx").Value(); got != 0 {
		t.Errorf("approx failures = %d, want 0", got)
	}
	if got := m.Degradations.With("deadline").Value(); got != 1 {
		t.Errorf("deadline degradations = %d, want 1", got)
	}
	if got := m.RungDuration.Count(); got != 2 {
		t.Errorf("rung duration observations = %d, want 2", got)
	}
	if d := obs.Cost().Sub(costBefore); d.Degradations != 1 {
		t.Errorf("global degradation delta = %d, want 1", d.Degradations)
	}

	exact := tr.SpansNamed("rung.exact")
	if len(exact) != 1 {
		t.Fatalf("rung.exact spans = %d, want 1", len(exact))
	}
	if exact[0].End <= exact[0].Start {
		t.Errorf("rung.exact span has no duration: %+v", exact[0])
	}
	if got := len(tr.SpansNamed("rung.approx")); got != 1 {
		t.Errorf("rung.approx spans = %d, want 1", got)
	}
	events := tr.EventsNamed("degrade")
	if len(events) != 1 {
		t.Fatalf("degrade events = %d, want 1", len(events))
	}
}

// TestObservedPanicReason: an injected panic in the exact rung must be
// recovered, classified as reason "panic", and still produce a degraded
// answer on a healthy fallback rung.
func TestObservedPanicReason(t *testing.T) {
	f := newFixture(t)
	inj := faultinject.New(faultinject.Rule{Site: cancel.SiteSafeRegion, OnVisit: 2, Panic: "injected: corrupt node"})
	m := NewMetrics(nil)
	ctx := cancel.WithHook(context.Background(), inj)
	r := NewRunner(f.e, Config{Degrade: true, Store: f.store, Metrics: m})
	ans, err := r.MWQ(ctx, f.ct, f.q, f.rsl)
	if err != nil {
		t.Fatalf("healthy fallback rung failed: %v", err)
	}
	if !ans.Degraded {
		t.Fatal("panicking exact rung answered undegraded")
	}
	if got := m.Degradations.With("panic").Value(); got != 1 {
		t.Errorf("panic degradations = %d, want 1", got)
	}
	if got := m.RungFailures.With("exact").Value(); got != 1 {
		t.Errorf("exact failures = %d, want 1", got)
	}
}

// TestRunnerNilMetrics: the zero Config records nothing and must not panic
// anywhere on the recording paths.
func TestRunnerNilMetrics(t *testing.T) {
	f := newFixture(t)
	r := NewRunner(f.e, Config{Timeout: 30 * time.Second, Degrade: true, Store: f.store})
	if _, err := r.MWQ(context.Background(), f.ct, f.q, f.rsl); err != nil {
		t.Fatal(err)
	}
}
