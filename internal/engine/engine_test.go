package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/cancel"
	"repro/internal/datagen"
	"repro/internal/engine/faultinject"
	"repro/internal/geom"
	"repro/internal/rskyline"
	"repro/internal/rtree"
	"repro/internal/whynot"
)

// fixture is a shared query workload: an anti-correlated catalogue, a query
// point with a non-trivial reverse skyline, a why-not customer outside it,
// and a prebuilt approximate store for the degraded rung.
type fixture struct {
	e     *whynot.Engine
	q     geom.Point
	ct    whynot.Item
	rsl   []whynot.Item
	store *whynot.ApproxStore
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	products := datagen.Generate(datagen.AntiCorrelated, 400, 2, 7)
	e := whynot.NewEngine(rskyline.NewDB(2, products, rtree.Config{}), true)
	q := products[13].Point.Clone()
	q[0] *= 1.02
	rsl := e.DB.ReverseSkylineFiltered(products, q)
	if len(rsl) < 3 {
		t.Fatalf("fixture too small: |RSL| = %d", len(rsl))
	}
	var ct whynot.Item
	found := false
	for _, p := range products {
		if !e.DB.IsReverseSkyline(p, q) {
			ct, found = p, true
			break
		}
	}
	if !found {
		t.Fatal("no why-not customer in fixture")
	}
	return &fixture{
		e:     e,
		q:     q,
		ct:    ct,
		rsl:   rsl,
		store: e.BuildApproxStore(rsl, 5, 0),
	}
}

// replayAnswer re-checks a ladder answer against the live index: the chosen
// moves must genuinely admit the why-not customer, and a pure query-point
// move (case C1) must not lose any original reverse-skyline customer.
func replayAnswer(t *testing.T, f *fixture, ans Answer) {
	t.Helper()
	const eps = 1e-7
	if ans.Result.AlreadyMember {
		t.Fatal("fixture customer unexpectedly already a member")
	}
	switch ans.Result.Case {
	case whynot.CaseOverlap:
		if !f.e.ValidateQueryMove(f.ct, ans.Result.QStar, eps) {
			t.Fatalf("C1 answer q*=%v does not admit the customer", ans.Result.QStar)
		}
		if lost := f.e.LostCustomers(ans.Result.QStar, f.rsl); len(lost) != 0 {
			t.Fatalf("C1 answer loses %d customers", len(lost))
		}
	case whynot.CaseDisjoint:
		if !f.e.ValidateWhyNotMove(f.ct, ans.Result.QStar, ans.Result.CtStar, eps) {
			t.Fatalf("C2 answer q*=%v ct*=%v is invalid", ans.Result.QStar, ans.Result.CtStar)
		}
	default:
		t.Fatalf("answer has no case: %+v", ans.Result)
	}
}

func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, g)
	}
}

// TestExactRungCleanRun: with no faults and a generous budget the ladder
// stays on the exact rung and matches the plain algorithm.
func TestExactRungCleanRun(t *testing.T) {
	f := newFixture(t)
	r := NewRunner(f.e, Config{Timeout: 30 * time.Second, Degrade: true, Store: f.store})
	ans, err := r.MWQ(context.Background(), f.ct, f.q, f.rsl)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Degraded || ans.Rung != RungExact {
		t.Fatalf("clean run degraded: rung=%v degraded=%v", ans.Rung, ans.Degraded)
	}
	want := f.e.MWQExact(f.ct, f.q, f.rsl, whynot.Options{})
	if ans.Result.Cost != want.Cost {
		t.Fatalf("runner cost %v != direct cost %v", ans.Result.Cost, want.Cost)
	}
	replayAnswer(t, f, ans)
}

// TestDegradeUnderDeadline is the headline robustness property: a why-not
// question whose exact safe region is artificially slow, run under a 50ms
// per-rung deadline, must return within about twice the deadline — either a
// deadline error or a degraded answer — leak no goroutines, and any degraded
// answer must replay as valid on the live index.
func TestDegradeUnderDeadline(t *testing.T) {
	f := newFixture(t)
	const deadline = 50 * time.Millisecond
	// Slowing only the exact safe-region site leaves the approximate rung at
	// full speed, so the ladder must land on it.
	inj := faultinject.New(faultinject.Rule{Site: cancel.SiteSafeRegion, Delay: 10 * time.Millisecond})
	ctx := cancel.WithHook(context.Background(), inj)

	r := NewRunner(f.e, Config{Timeout: deadline, Degrade: true, Store: f.store})
	before := runtime.NumGoroutine()
	start := time.Now()
	ans, err := r.MWQ(ctx, f.ct, f.q, f.rsl)
	elapsed := time.Since(start)
	settleGoroutines(t, before)

	if elapsed > 2*deadline+50*time.Millisecond {
		t.Fatalf("ladder took %v, want ≲ 2×%v", elapsed, deadline)
	}
	if err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("ladder error is not a deadline: %v", err)
		}
		return
	}
	if !ans.Degraded {
		t.Fatalf("slow exact rung answered undegraded (rung=%v)", ans.Rung)
	}
	if ans.Rung != RungApprox {
		t.Fatalf("expected the approximate rung, got %v", ans.Rung)
	}
	if inj.Visits(cancel.SiteApproxSafeRegion) == 0 {
		t.Fatal("approximate rung never ran")
	}
	replayAnswer(t, f, ans)
}

// TestDeadlineWithoutDegradation: same slow exact rung, but with Degrade off
// the caller gets the deadline error itself, wrapped as a QueryError.
func TestDeadlineWithoutDegradation(t *testing.T) {
	f := newFixture(t)
	inj := faultinject.New(faultinject.Rule{Site: cancel.SiteSafeRegion, Delay: 10 * time.Millisecond})
	ctx := cancel.WithHook(context.Background(), inj)
	r := NewRunner(f.e, Config{Timeout: 30 * time.Millisecond})
	_, err := r.MWQ(ctx, f.ct, f.q, f.rsl)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Op != "exact MWQ" {
		t.Fatalf("want QueryError for the exact rung, got %#v", err)
	}
}

// TestMWPFallback: without a store the ladder skips the approximate rung and
// degrades straight to MWP, whose answer moves only the why-not point.
func TestMWPFallback(t *testing.T) {
	f := newFixture(t)
	inj := faultinject.New(faultinject.Rule{Site: cancel.SiteSafeRegion, Delay: 10 * time.Millisecond})
	ctx := cancel.WithHook(context.Background(), inj)
	r := NewRunner(f.e, Config{Timeout: 50 * time.Millisecond, Degrade: true})
	ans, err := r.MWQ(ctx, f.ct, f.q, f.rsl)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Degraded || ans.Rung != RungMWP {
		t.Fatalf("want degraded MWP answer, got rung=%v degraded=%v", ans.Rung, ans.Degraded)
	}
	if !ans.Result.QStar.Equal(f.q) {
		t.Fatalf("MWP fallback moved the query point: %v", ans.Result.QStar)
	}
	replayAnswer(t, f, ans)
}

// TestPanicBecomesQueryError: an injected panic deep inside safe-region
// construction must surface as a structured *QueryError with the recovered
// value and a stack, not crash the caller.
func TestPanicBecomesQueryError(t *testing.T) {
	f := newFixture(t)
	inj := faultinject.New(faultinject.Rule{Site: cancel.SiteSafeRegion, OnVisit: 2, Panic: "injected: corrupt node"})
	ctx := cancel.WithHook(context.Background(), inj)
	r := NewRunner(f.e, Config{Timeout: time.Second})
	_, err := r.MWQ(ctx, f.ct, f.q, f.rsl)
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("want *QueryError, got %T: %v", err, err)
	}
	if qe.Panic != "injected: corrupt node" || len(qe.Stack) == 0 || qe.Op != "exact MWQ" {
		t.Fatalf("incomplete panic report: %+v", qe)
	}
}

// TestPanicThenDegrade: with Degrade on, even a panicking exact rung falls
// through to a healthy cheaper rung.
func TestPanicThenDegrade(t *testing.T) {
	f := newFixture(t)
	inj := faultinject.New(faultinject.Rule{Site: cancel.SiteSafeRegion, Panic: "injected"})
	ctx := cancel.WithHook(context.Background(), inj)
	r := NewRunner(f.e, Config{Timeout: time.Second, Degrade: true, Store: f.store})
	ans, err := r.MWQ(ctx, f.ct, f.q, f.rsl)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Degraded || ans.Rung != RungApprox {
		t.Fatalf("want approximate answer after panic, got rung=%v", ans.Rung)
	}
	replayAnswer(t, f, ans)
}

// TestCancelledParentStopsLadder: once the caller's own context is dead no
// further rung runs.
func TestCancelledParentStopsLadder(t *testing.T) {
	f := newFixture(t)
	inj := faultinject.New() // counts visits only
	ctx, cancelCtx := context.WithCancel(cancel.WithHook(context.Background(), inj))
	cancelCtx()
	r := NewRunner(f.e, Config{Timeout: time.Second, Degrade: true, Store: f.store})
	_, err := r.MWQ(ctx, f.ct, f.q, f.rsl)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if inj.Visits(cancel.SiteApproxSafeRegion) != 0 || inj.Visits(cancel.SiteMWQCorner) != 0 {
		t.Fatal("ladder kept running after parent cancellation")
	}
}

// TestInjectedCancellation: a hook-triggered context cancellation mid-query
// is observed at the very checkpoint that fired it.
func TestInjectedCancellation(t *testing.T) {
	f := newFixture(t)
	ctx, cancelCtx := context.WithCancel(context.Background())
	inj := faultinject.New(faultinject.Rule{Site: cancel.SiteSafeRegion, OnVisit: 1, Do: cancelCtx})
	_, err := f.e.SafeRegionCtx(cancel.WithHook(ctx, inj), f.q, f.rsl)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if got := inj.Visits(cancel.SiteSafeRegion); got != 1 {
		t.Fatalf("construction continued past the cancelling checkpoint: %d visits", got)
	}
}

// TestRunGenericGuard: Runner.Run applies budget and recovery to arbitrary
// query functions.
func TestRunGenericGuard(t *testing.T) {
	f := newFixture(t)
	r := NewRunner(f.e, Config{Timeout: time.Second})
	err := r.Run(context.Background(), "custom op", func(context.Context) error {
		panic("boom")
	})
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Panic != "boom" || qe.Op != "custom op" {
		t.Fatalf("generic guard missed the panic: %v", err)
	}
	if err := r.Run(context.Background(), "ok op", func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
