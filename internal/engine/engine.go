// Package engine wraps the why-not query algorithms with the operational
// machinery a long-running service needs: per-query deadlines, structured
// error reporting with panic recovery, and a graceful degradation ladder
// that trades answer optimality for bounded latency.
//
// The ladder for a why-not question (Runner.MWQ) has three rungs:
//
//  1. exact MWQ — Algorithm 4 on the exact safe region (Algorithm 3), whose
//     construction is worst-case exponential in |RSL(q)|;
//  2. approximate MWQ — Algorithm 4 on the §VI.B.1 precomputed approximate
//     safe region: a valid but possibly costlier answer, orders of magnitude
//     faster (requires a Config.Store);
//  3. MWP — Algorithm 1 alone: move only the why-not point. Always valid,
//     never cheaper than MWQ (the paper's cost(MWQ) ≤ cost(MWP) bound),
//     and by far the cheapest to compute.
//
// Each rung gets a fresh Config.Timeout budget derived from the caller's
// context, so one slow rung cannot starve its fallback; the caller's own
// deadline still bounds the whole ladder. Answers from rung 2 or 3 are
// tagged Degraded so callers can distinguish best-effort from optimal.
//
// Everything runs synchronously on the caller's goroutine — cooperative
// checkpoints (package cancel) make watchdog goroutines unnecessary, so a
// degraded or failed query leaks nothing.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/whynot"
)

// QueryError is the structured failure report of a guarded query: which
// operation failed, the underlying error, and — when the failure was a panic
// somewhere in the query algorithms — the recovered value and stack.
// errors.Is/As see through it via Unwrap, so context.DeadlineExceeded and
// context.Canceled remain detectable.
type QueryError struct {
	// Op names the failed operation (e.g. "exact MWQ").
	Op string
	// Err is the underlying cause. For recovered panics it is a synthetic
	// error carrying the panic message.
	Err error
	// Panic is the recovered panic value, nil for ordinary errors.
	Panic any
	// Stack is the goroutine stack captured at recovery time, nil for
	// ordinary errors.
	Stack []byte
}

func (e *QueryError) Error() string {
	if e.Panic != nil {
		return fmt.Sprintf("engine: %s: panic: %v", e.Op, e.Panic)
	}
	return fmt.Sprintf("engine: %s: %v", e.Op, e.Err)
}

func (e *QueryError) Unwrap() error { return e.Err }

// Rung identifies which level of the degradation ladder produced an answer.
type Rung int

const (
	// RungExact is Algorithm 4 over the exact safe region.
	RungExact Rung = iota
	// RungApprox is Algorithm 4 over the precomputed approximate safe
	// region.
	RungApprox
	// RungMWP is the Algorithm 1 fallback: only the why-not point moves.
	RungMWP
)

func (r Rung) String() string {
	switch r {
	case RungExact:
		return "exact"
	case RungApprox:
		return "approx"
	case RungMWP:
		return "mwp"
	}
	return fmt.Sprintf("rung(%d)", int(r))
}

// ErrRungSkipped is the cause recorded when a RungGate vetoes a rung without
// running it. It participates in the normal degradation flow: a skipped rung
// falls through to the next one exactly like a failed rung, and a ladder whose
// every rung was vetoed returns an error for which
// errors.Is(err, ErrRungSkipped) holds.
var ErrRungSkipped = errors.New("rung skipped by gate")

// RungGate lets a policy object (typically a circuit breaker, see
// internal/server) veto ladder rungs before they run and observe the outcome
// of the rungs that do run. Implementations must be safe for concurrent use:
// one gate is shared by every in-flight query of a service.
type RungGate interface {
	// Allow reports whether the rung may execute now. Returning false skips
	// the rung: the ladder records a degradation with reason "skipped" and
	// falls through to the next rung.
	Allow(r Rung) bool
	// Record observes the outcome of a rung that executed (err == nil means
	// success). It is not called for vetoed rungs, nor when the caller's own
	// context was already dead by the end of the rung — a caller that gave up
	// says nothing about the rung's health.
	Record(r Rung, err error)
}

// Metrics aggregates the Runner's operational counters. All fields are
// nil-safe: a nil *Metrics (the default) makes every recording a no-op, so
// instrumentation costs nothing when disabled.
type Metrics struct {
	// RungAttempts counts ladder rung executions by rung name
	// (exact/approx/mwp, plus the op string for Runner.Run calls).
	RungAttempts *obs.LabeledCounter
	// RungFailures counts rung executions that returned an error, by rung.
	RungFailures *obs.LabeledCounter
	// Degradations counts fall-throughs to a cheaper rung by failure reason
	// (deadline, canceled, panic, error).
	Degradations *obs.LabeledCounter
	// RungDuration observes wall-clock seconds per rung execution,
	// successful or not.
	RungDuration *obs.Histogram
}

// NewMetrics builds a Metrics bundle registered under reg (engine_* names).
// A nil registry returns a valid bundle whose recordings still work but are
// not exported anywhere.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return &Metrics{
			RungAttempts: obs.NewLabeledCounter("rung"),
			RungFailures: obs.NewLabeledCounter("rung"),
			Degradations: obs.NewLabeledCounter("reason"),
			RungDuration: obs.NewHistogram(obs.DurationBuckets()),
		}
	}
	return &Metrics{
		RungAttempts: reg.LabeledCounter("engine_rung_attempts_total",
			"Degradation-ladder rung executions by rung.", "rung"),
		RungFailures: reg.LabeledCounter("engine_rung_failures_total",
			"Rung executions that returned an error, by rung.", "rung"),
		Degradations: reg.LabeledCounter("engine_degradations_total",
			"Fall-throughs to a cheaper rung by failure reason.", "reason"),
		RungDuration: reg.Histogram("engine_rung_duration_seconds",
			"Wall-clock duration of each rung execution.", obs.DurationBuckets()),
	}
}

// rungAttempt records the start of one rung execution and returns a closure
// that records its outcome. Nil-safe on m.
func (m *Metrics) rungAttempt(rung string) func(err error) {
	if m == nil {
		return func(error) {}
	}
	m.RungAttempts.With(rung).Inc()
	start := obs.Now()
	return func(err error) {
		m.RungDuration.ObserveSince(start)
		if err != nil {
			m.RungFailures.With(rung).Inc()
		}
	}
}

// degradeReason classifies why a rung failed, for the degradation counters
// and trace events.
func degradeReason(err error) string {
	var qe *QueryError
	switch {
	case errors.As(err, &qe) && qe.Panic != nil:
		return "panic"
	case errors.Is(err, ErrRungSkipped):
		return "skipped"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}

// Config tunes a Runner.
type Config struct {
	// Timeout is the per-rung budget; each rung of the ladder gets a fresh
	// timeout derived from the caller's context. Zero means no per-rung
	// deadline (the caller's context still applies).
	Timeout time.Duration
	// Degrade enables the ladder: when the exact rung fails and the
	// caller's context still has budget, fall through to cheaper rungs
	// instead of returning the error.
	Degrade bool
	// Store enables the approximate rung; nil skips straight from exact to
	// MWP.
	Store *whynot.ApproxStore
	// Options are passed to the underlying algorithms.
	Options whynot.Options
	// Workers is the parallelism of the exact rung's safe-region
	// construction: 0 or 1 runs sequentially, n > 1 fans the per-customer
	// anti-dominance regions out over n goroutines (internal/exec). The
	// cooperative checkpoints keep firing inside the pool, so per-rung
	// timeouts and fault injection behave as in the sequential rung.
	Workers int
	// Metrics, when non-nil, receives per-rung attempt/failure/duration and
	// degradation recordings.
	Metrics *Metrics
	// Gate, when non-nil, is consulted before each ladder rung (Allow) and
	// after each executed rung (Record). A vetoed rung is skipped as if it had
	// failed with ErrRungSkipped, which lets a circuit breaker stop hammering
	// a rung the engine keeps failing while the cheaper rungs continue to
	// serve.
	Gate RungGate
}

// Runner executes queries under Config's deadline, recovery, and degradation
// policy.
type Runner struct {
	Engine *whynot.Engine
	Cfg    Config
}

// NewRunner builds a Runner over a why-not engine.
func NewRunner(e *whynot.Engine, cfg Config) *Runner {
	return &Runner{Engine: e, Cfg: cfg}
}

// Answer is a query result plus provenance: which rung produced it and
// whether it is a degraded (valid but possibly suboptimal) answer.
type Answer struct {
	Result whynot.MWQResult
	// Rung is the ladder level that produced Result.
	Rung Rung
	// Degraded is true when Result did not come from the exact rung.
	Degraded bool
}

// MWQ answers the why-not question for ct against q with rsl = RSL(q),
// walking the degradation ladder described in the package comment. The
// returned error (always a *QueryError, possibly joining one failure per
// attempted rung) unwraps to ctx's error when the budget ran out.
func (r *Runner) MWQ(ctx context.Context, ct whynot.Item, q geom.Point, rsl []whynot.Item) (Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tr := obs.TraceFrom(ctx)
	var errs []error

	var res whynot.MWQResult
	err := r.gatedRung(ctx, RungExact, "exact MWQ", func(rctx context.Context) error {
		var e error
		if r.Cfg.Workers > 1 {
			res, e = r.Engine.MWQExactParallelCtx(rctx, ct, q, rsl, r.Cfg.Options, r.Cfg.Workers)
		} else {
			res, e = r.Engine.MWQExactCtx(rctx, ct, q, rsl, r.Cfg.Options)
		}
		return e
	})
	if err == nil {
		return Answer{Result: res, Rung: RungExact}, nil
	}
	errs = append(errs, err)

	if !r.Cfg.Degrade || ctx.Err() != nil {
		return Answer{}, r.ladderExhausted(ctx, err)
	}
	r.degraded(tr, "exact", err)

	if r.Cfg.Store != nil {
		err = r.gatedRung(ctx, RungApprox, "approximate MWQ", func(rctx context.Context) error {
			var e error
			res, e = r.Engine.MWQApproxCtx(rctx, ct, q, rsl, r.Cfg.Store, r.Cfg.Options)
			return e
		})
		if err == nil {
			return Answer{Result: res, Rung: RungApprox, Degraded: true}, nil
		}
		errs = append(errs, err)
		if ctx.Err() != nil {
			return Answer{}, r.ladderExhausted(ctx, ladderError(errs))
		}
		r.degraded(tr, "approx", err)
	}

	var mres whynot.MWPResult
	err = r.gatedRung(ctx, RungMWP, "MWP fallback", func(rctx context.Context) error {
		var e error
		mres, e = r.Engine.MWPCtx(rctx, ct, q, r.Cfg.Options)
		return e
	})
	if err == nil {
		return Answer{Result: mwpAsMWQ(ct, q, mres), Rung: RungMWP, Degraded: true}, nil
	}
	errs = append(errs, err)
	return Answer{}, r.ladderExhausted(ctx, ladderError(errs))
}

// degraded records one fall-through to a cheaper rung: the process-wide
// degradation counter, the Runner's by-reason counter, and a trace event.
func (r *Runner) degraded(tr *obs.Trace, rung string, err error) {
	reason := degradeReason(err)
	obs.AddDegradations(1)
	if m := r.Cfg.Metrics; m != nil {
		m.Degradations.With(reason).Inc()
	}
	tr.Eventf("degrade", "%s rung failed (%s), falling through", rung, reason)
}

// ladderExhausted accounts for a query that returns no answer at all; a
// caller-cancelled context counts toward the cancellation counter.
func (r *Runner) ladderExhausted(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		obs.AddCancellations(1)
	}
	return err
}

// gatedRung is runRung behind the Config.Gate policy: a vetoed rung returns
// ErrRungSkipped without executing (the ladder treats it like any other rung
// failure), and executed rungs report their outcome back to the gate unless
// the caller's context died underneath them.
func (r *Runner) gatedRung(ctx context.Context, rung Rung, op string, fn func(context.Context) error) error {
	g := r.Cfg.Gate
	if g == nil {
		return r.runRung(ctx, op, rung.String(), fn)
	}
	if !g.Allow(rung) {
		obs.TraceFrom(ctx).Eventf("gate", "%s rung vetoed", rung)
		return &QueryError{Op: op, Err: ErrRungSkipped}
	}
	err := r.runRung(ctx, op, rung.String(), fn)
	if err == nil || ctx.Err() == nil {
		g.Record(rung, err)
	}
	return err
}

// Run executes an arbitrary query function under the Runner's per-attempt
// budget and panic recovery (no degradation — fn is opaque). The context
// passed to fn carries the derived deadline.
func (r *Runner) Run(ctx context.Context, op string, fn func(context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return r.runRung(ctx, op, op, fn)
}

// runRung gives fn a fresh timeout budget and converts any failure — error
// or panic — into a *QueryError. rung names the execution for metrics and
// the per-query trace span ("rung.<rung>").
func (r *Runner) runRung(ctx context.Context, op, rung string, fn func(context.Context) error) (err error) {
	done := r.Cfg.Metrics.rungAttempt(rung)
	endSpan := obs.TraceFrom(ctx).StartSpan("rung." + rung)
	rctx := ctx
	if r.Cfg.Timeout > 0 {
		var cancelBudget context.CancelFunc
		rctx, cancelBudget = context.WithTimeout(ctx, r.Cfg.Timeout)
		defer cancelBudget()
	}
	defer func() {
		if p := recover(); p != nil {
			err = &QueryError{
				Op:    op,
				Err:   fmt.Errorf("panic: %v", p),
				Panic: p,
				Stack: debug.Stack(),
			}
		}
		endSpan()
		done(err)
	}()
	// pprof.Do labels this goroutine (and, via the context, the exec workers
	// it fans out to) for the duration of the rung, so CPU profiles from the
	// DebugMux segment by operation and ladder rung.
	var e error
	pprof.Do(rctx, pprof.Labels("op", op, "rung", rung), func(lctx context.Context) {
		e = fn(lctx)
	})
	if e != nil {
		var qe *QueryError
		if errors.As(e, &qe) {
			return e
		}
		return &QueryError{Op: op, Err: e}
	}
	return nil
}

// ladderError bundles the per-rung failures of an exhausted ladder. A single
// failure is returned as-is; several are joined so errors.Is finds every
// cause.
func ladderError(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	return &QueryError{Op: "degradation ladder", Err: errors.Join(errs...)}
}

// mwpAsMWQ shapes an Algorithm 1 answer as an MWQResult so ladder callers
// get a uniform type: q stays put (its "safe region" degenerates to {q}, the
// always-safe position) and only the why-not point moves, which is exactly
// Table I's case C2 with the trivial safe region.
func mwpAsMWQ(ct whynot.Item, q geom.Point, res whynot.MWPResult) whynot.MWQResult {
	best := res.Best()
	return whynot.MWQResult{
		Case:          whynot.CaseDisjoint,
		QStar:         q.Clone(),
		QCandidates:   []whynot.Candidate{{Point: q.Clone(), Cost: best.Cost}},
		CtStar:        best.Point,
		CtCandidates:  res.Candidates,
		Cost:          best.Cost,
		AlreadyMember: res.AlreadyMember,
	}
}
