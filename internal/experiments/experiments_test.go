package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/datagen"
)

// smallSuite keeps test runtime reasonable while still exercising the full
// harness path: 4K points, RSL sizes up to 6.
func smallSuite(t *testing.T, kind datagen.Kind) *Suite {
	t.Helper()
	s := NewSuite(kind, 4000, []int{1, 2, 3, 4, 5, 6}, 17)
	if len(s.Cases) == 0 {
		t.Fatalf("no query cases found for %v", kind)
	}
	return s
}

func TestSuiteWorkload(t *testing.T) {
	s := smallSuite(t, datagen.Uniform)
	for _, qc := range s.Cases {
		if len(qc.RSL) < 1 || len(qc.RSL) > 6 {
			t.Fatalf("case with |RSL| = %d outside targets", len(qc.RSL))
		}
		for _, c := range qc.RSL {
			if c.ID == qc.WhyNot.ID {
				t.Fatal("why-not point inside RSL")
			}
		}
	}
}

func TestRunQualityShape(t *testing.T) {
	for _, kind := range []datagen.Kind{datagen.Uniform, datagen.CarDB} {
		s := smallSuite(t, kind)
		rows := s.RunQuality(nil)
		if len(rows) != len(s.Cases) {
			t.Fatalf("%v: %d rows for %d cases", kind, len(rows), len(s.Cases))
		}
		for _, r := range rows {
			if r.MWP < 0 || r.MQP < 0 || r.MWQ < 0 {
				t.Fatalf("%v: negative cost in %+v", kind, r)
			}
			if !math.IsNaN(r.ApproxMWQ) {
				t.Fatalf("%v: approx column should be NaN without a store", kind)
			}
		}
		if bad := ShapeChecks(rows); len(bad) != 0 {
			t.Fatalf("%v: shape violations: %v", kind, bad)
		}
	}
}

func TestRunQualityWithStore(t *testing.T) {
	s := smallSuite(t, datagen.Uniform)
	store := s.BuildStore(10, false)
	rows := s.RunQuality(store)
	for _, r := range rows {
		if math.IsNaN(r.ApproxMWQ) {
			t.Fatalf("approx column missing in %+v", r)
		}
		// §VI.B.2: the approximate result is never worse than MWP.
		if r.ApproxMWQ > r.MWP+1e-9 {
			t.Fatalf("Approx-MWQ %v worse than MWP %v", r.ApproxMWQ, r.MWP)
		}
	}
	if bad := ShapeChecks(rows); len(bad) != 0 {
		t.Fatalf("shape violations: %v", bad)
	}
}

func TestRunTiming(t *testing.T) {
	s := smallSuite(t, datagen.Uniform)
	store := s.BuildStore(10, false)
	rows := s.RunTiming(store)
	if len(rows) != len(s.Cases) {
		t.Fatalf("%d rows for %d cases", len(rows), len(s.Cases))
	}
	for _, r := range rows {
		if r.MWP <= 0 || r.MQP <= 0 || r.SR <= 0 || r.MWQ <= 0 || r.ApproxMWQ <= 0 {
			t.Fatalf("non-positive timing in %+v", r)
		}
		if r.MWQ < r.SR {
			t.Fatalf("MWQ time must include SR time: %+v", r)
		}
	}
}

func TestRunSafeRegionArea(t *testing.T) {
	s := smallSuite(t, datagen.Uniform)
	rows := s.RunSafeRegionArea()
	for _, r := range rows {
		if r.Area < 0 || r.Frac < 0 || r.Frac > 1.000001 {
			t.Fatalf("implausible area row %+v", r)
		}
	}
	// Fig. 14 trend: the average area for small RSL exceeds that for large
	// RSL (the safe region shrinks as more customers constrain it).
	lo, hi := avgAreaSplit(rows)
	if len(rows) >= 4 && lo < hi {
		t.Errorf("safe region did not shrink with |RSL|: small-RSL avg %v, large-RSL avg %v", lo, hi)
	}
}

func avgAreaSplit(rows []AreaRow) (smallRSL, largeRSL float64) {
	var loSum, hiSum float64
	var loN, hiN int
	for _, r := range rows {
		if r.RSLSize <= 3 {
			loSum += r.Frac
			loN++
		} else {
			hiSum += r.Frac
			hiN++
		}
	}
	if loN > 0 {
		smallRSL = loSum / float64(loN)
	}
	if hiN > 0 {
		largeRSL = hiSum / float64(hiN)
	}
	return
}

func TestShapeChecksCatchesViolations(t *testing.T) {
	rows := []QualityRow{
		{Query: 1, RSLSize: 2, MWP: 0.1, MQP: 0.5, MWQ: 0.2, ApproxMWQ: math.NaN()},
	}
	if bad := ShapeChecks(rows); len(bad) != 1 {
		t.Fatalf("expected 1 violation, got %v", bad)
	}
	rows[0].MWQ = 0.05
	rows[0].ApproxMWQ = 0.2
	if bad := ShapeChecks(rows); len(bad) != 1 || !strings.Contains(bad[0], "Approx") {
		t.Fatalf("expected approx violation, got %v", bad)
	}
}

func TestFormatters(t *testing.T) {
	s := smallSuite(t, datagen.Uniform)
	store := s.BuildStore(10, false)
	q := s.RunQuality(store)
	var sb strings.Builder
	FormatQuality(&sb, "Table test", q, 10)
	out := sb.String()
	if !strings.Contains(out, "Approx-MWQ k=10") || !strings.Contains(out, "|RSL(q1)|") {
		t.Fatalf("quality table malformed:\n%s", out)
	}
	sb.Reset()
	FormatTiming(&sb, "Fig test", s.RunTiming(store), false)
	if !strings.Contains(sb.String(), "MWQ") {
		t.Fatal("timing table malformed")
	}
	sb.Reset()
	FormatArea(&sb, "Fig 14 test", s.RunSafeRegionArea())
	if !strings.Contains(sb.String(), "fraction") {
		t.Fatal("area table malformed")
	}
}
