package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// FormatQuality renders quality rows in the layout of Tables III/IV; with
// approximate results present it matches Tables V/VI, labelling the last
// column with the sampling constant k.
func FormatQuality(w io.Writer, title string, rows []QualityRow, k int) {
	fmt.Fprintf(w, "%s\n", title)
	hasApprox := false
	for _, r := range rows {
		if !math.IsNaN(r.ApproxMWQ) {
			hasApprox = true
			break
		}
	}
	if hasApprox {
		fmt.Fprintf(w, "%-24s %-14s %-14s %-14s %-14s\n",
			"Queries", "MWP", "MQP", "MWQ", fmt.Sprintf("Approx-MWQ k=%d", k))
	} else {
		fmt.Fprintf(w, "%-24s %-14s %-14s %-14s\n", "Queries", "MWP", "MQP", "MWQ")
	}
	for _, r := range rows {
		label := fmt.Sprintf("q%d, |RSL(q%d)| = %d", r.Query, r.Query, r.RSLSize)
		if hasApprox {
			fmt.Fprintf(w, "%-24s %-14.9f %-14.9f %-14.9f %-14.9f\n",
				label, r.MWP, r.MQP, r.MWQ, r.ApproxMWQ)
		} else {
			fmt.Fprintf(w, "%-24s %-14.9f %-14.9f %-14.9f\n", label, r.MWP, r.MQP, r.MWQ)
		}
	}
	fmt.Fprintln(w)
}

// FormatTiming renders timing rows as the Fig. 15 / Fig. 17 series.
func FormatTiming(w io.Writer, title string, rows []TimingRow, withApprox bool) {
	fmt.Fprintf(w, "%s\n", title)
	if withApprox {
		fmt.Fprintf(w, "%-10s %-12s %-12s %-12s\n", "|RSL|", "MWP", "MQP", "Approx-MWQ")
	} else {
		fmt.Fprintf(w, "%-10s %-12s %-12s %-12s %-12s\n", "|RSL|", "MWP", "MQP", "SR", "MWQ")
	}
	for _, r := range rows {
		if withApprox {
			fmt.Fprintf(w, "%-10d %-12s %-12s %-12s\n",
				r.RSLSize, fmtDur(r.MWP), fmtDur(r.MQP), fmtDur(r.ApproxMWQ))
		} else {
			fmt.Fprintf(w, "%-10d %-12s %-12s %-12s %-12s\n",
				r.RSLSize, fmtDur(r.MWP), fmtDur(r.MQP), fmtDur(r.SR), fmtDur(r.MWQ))
		}
	}
	fmt.Fprintln(w)
}

// FormatArea renders the Fig. 14 series.
func FormatArea(w io.Writer, title string, rows []AreaRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s %-16s %-16s\n", "|RSL|", "SR area", "fraction of universe")
	sorted := append([]AreaRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RSLSize < sorted[j].RSLSize })
	for _, r := range sorted {
		fmt.Fprintf(w, "%-10d %-16.4f %-16.6f\n", r.RSLSize, r.Area, r.Frac)
	}
	fmt.Fprintln(w)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
