// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI):
//
//	Table III  — quality (solution cost) of MWP/MQP/MWQ on CarDB 50K/100K/200K
//	Table IV   — quality on synthetic UN/CO/AC 100K and 200K
//	Fig. 14    — reverse-skyline size vs safe-region area
//	Fig. 15    — execution time of MWP, MQP, SR and MWQ
//	Table V/VI — Approx-MWQ quality vs the exact methods
//	Fig. 17    — execution time of MWP, MQP and Approx-MWQ
//
// A Suite binds one dataset (used monochromatically as both products and
// customer preferences, as in the paper) with a query workload of reverse
// skyline sizes 1–15; the Run* methods produce rows shaped like the paper's
// tables, and the Format* helpers render them.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/rskyline"
	"repro/internal/rtree"
	"repro/internal/whynot"
)

// Item aliases the R-tree item type.
type Item = rtree.Item

// Suite is one dataset plus its query workload.
type Suite struct {
	Name   string
	Engine *whynot.Engine
	Items  []Item
	Cases  []dataset.QueryCase
}

// DefaultRSLTargets is the paper's workload: queries with 1–15 reverse
// skyline points.
var DefaultRSLTargets = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}

// NewSuite generates a dataset of the given kind and size, indexes it, and
// selects a query workload covering the requested reverse-skyline sizes.
func NewSuite(kind datagen.Kind, size int, targets []int, seed int64) *Suite {
	items := datagen.Generate(kind, size, 2, seed)
	return NewSuiteFromItems(fmt.Sprintf("%s-%dK", kind, size/1000), items, targets, seed+1)
}

// NewSuiteFromItems builds a suite over pre-generated items.
func NewSuiteFromItems(name string, items []Item, targets []int, seed int64) *Suite {
	db := rskyline.NewDB(2, items, rtree.Config{})
	rng := rand.New(rand.NewSource(seed))
	maxTrials := 150 * len(targets)
	cases := dataset.FindQueries(db, nil, targets, maxTrials, rng)
	return &Suite{
		Name:   name,
		Engine: whynot.NewEngine(db, true),
		Items:  items,
		Cases:  cases,
	}
}

// QualityRow is one line of Tables III–VI: the best solution cost of each
// method for one query.
type QualityRow struct {
	Query     int
	RSLSize   int
	MWP       float64
	MQP       float64
	MWQ       float64
	ApproxMWQ float64 // NaN unless an ApproxStore was supplied
}

// TimingRow is one line of Figs. 15/17: wall-clock time per method.
type TimingRow struct {
	RSLSize   int
	MWP       time.Duration
	MQP       time.Duration
	SR        time.Duration // safe-region construction alone
	MWQ       time.Duration // SR + Algorithm 4
	ApproxMWQ time.Duration // approximate SR assembly + Algorithm 4
}

// AreaRow is one point of Fig. 14: safe-region area (as a fraction of the
// data universe) per reverse-skyline size.
type AreaRow struct {
	RSLSize int
	Area    float64
	Frac    float64
}

// RunQuality produces the rows of Tables III/IV (and V/VI when store is
// non-nil). Costs follow §VI.A: min–max-normalised weighted L1 with equal
// weights; MQP additionally charges the restoration of lost customers.
func (s *Suite) RunQuality(store *whynot.ApproxStore) []QualityRow {
	opt := whynot.Options{}
	rows := make([]QualityRow, 0, len(s.Cases))
	for i, qc := range s.Cases {
		e := s.Engine
		sr := e.SafeRegion(qc.Q, qc.RSL)

		mwp := e.MWP(qc.WhyNot, qc.Q, opt).Best().Cost

		mqpRes := e.MQP(qc.WhyNot, qc.Q, opt)
		mqp := math.Inf(1)
		for _, cand := range mqpRes.Candidates {
			if c := e.MQPTotalCost(qc.Q, cand.Point, qc.RSL, sr, opt); c < mqp {
				mqp = c
			}
		}

		mwq := e.MWQ(qc.WhyNot, qc.Q, sr, opt).Cost

		approx := math.NaN()
		if store != nil {
			approx = e.MWQApprox(qc.WhyNot, qc.Q, qc.RSL, store, opt).Cost
		}
		rows = append(rows, QualityRow{
			Query: i + 1, RSLSize: len(qc.RSL),
			MWP: mwp, MQP: mqp, MWQ: mwq, ApproxMWQ: approx,
		})
	}
	return rows
}

// RunTiming produces the rows of Fig. 15 (and Fig. 17 when store is
// non-nil): per-method wall-clock times for each query of the workload.
func (s *Suite) RunTiming(store *whynot.ApproxStore) []TimingRow {
	opt := whynot.Options{}
	rows := make([]TimingRow, 0, len(s.Cases))
	for _, qc := range s.Cases {
		e := s.Engine
		var row TimingRow
		row.RSLSize = len(qc.RSL)

		t0 := time.Now()
		e.MWP(qc.WhyNot, qc.Q, opt)
		row.MWP = time.Since(t0)

		t0 = time.Now()
		e.MQP(qc.WhyNot, qc.Q, opt)
		row.MQP = time.Since(t0)

		t0 = time.Now()
		sr := e.SafeRegion(qc.Q, qc.RSL)
		row.SR = time.Since(t0)

		t0 = time.Now()
		e.MWQ(qc.WhyNot, qc.Q, sr, opt)
		row.MWQ = row.SR + time.Since(t0)

		if store != nil {
			t0 = time.Now()
			e.MWQApprox(qc.WhyNot, qc.Q, qc.RSL, store, opt)
			row.ApproxMWQ = time.Since(t0)
		}
		rows = append(rows, row)
	}
	return rows
}

// RunSafeRegionArea produces the Fig. 14 series: safe-region area per
// reverse-skyline size, both absolute and as a fraction of the data
// universe's area.
func (s *Suite) RunSafeRegionArea() []AreaRow {
	universe, ok := s.Engine.DB.Universe()
	uArea := 1.0
	if ok {
		uArea = universe.Area()
	}
	rows := make([]AreaRow, 0, len(s.Cases))
	for _, qc := range s.Cases {
		sr := s.Engine.SafeRegion(qc.Q, qc.RSL)
		// Clip to the universe so the fraction is comparable across queries
		// (anti-DDR rectangles extend symmetrically beyond the data range).
		a := sr.IntersectRect(universe).Area()
		rows = append(rows, AreaRow{RSLSize: len(qc.RSL), Area: a, Frac: a / uArea})
	}
	return rows
}

// BuildStore precomputes the approximate-DSL store of §VI.B.1 for the
// suite's customers that actually appear in some workload RSL, plus every
// customer (full offline precomputation) when full is true.
func (s *Suite) BuildStore(k int, full bool) *whynot.ApproxStore {
	if full {
		return s.Engine.BuildApproxStore(s.Items, k, 0)
	}
	seen := map[int]bool{}
	var needed []Item
	for _, qc := range s.Cases {
		for _, c := range qc.RSL {
			if !seen[c.ID] {
				seen[c.ID] = true
				needed = append(needed, c)
			}
		}
	}
	return s.Engine.BuildApproxStore(needed, k, 0)
}

// ShapeChecks evaluates the qualitative claims of §VI against quality rows,
// returning human-readable violations (empty means every claim held):
//
//  1. cost(MWQ) ≤ cost(MWP) for every query;
//  2. zero-cost MWQ answers appear only via safe-region overlap (case C1);
//  3. Approx-MWQ is never worse than MWP (when present).
func ShapeChecks(rows []QualityRow) []string {
	const eps = 1e-9
	var bad []string
	for _, r := range rows {
		if r.MWQ > r.MWP+eps {
			bad = append(bad, fmt.Sprintf("q%d (|RSL|=%d): MWQ %.9f > MWP %.9f",
				r.Query, r.RSLSize, r.MWQ, r.MWP))
		}
		if !math.IsNaN(r.ApproxMWQ) && r.ApproxMWQ > r.MWP+eps {
			bad = append(bad, fmt.Sprintf("q%d (|RSL|=%d): Approx-MWQ %.9f > MWP %.9f",
				r.Query, r.RSLSize, r.ApproxMWQ, r.MWP))
		}
	}
	return bad
}
