package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteQualityCSV exports quality rows as CSV for external plotting; the
// approx column is omitted when no row carries it.
func WriteQualityCSV(w io.Writer, rows []QualityRow) error {
	cw := csv.NewWriter(w)
	hasApprox := false
	for _, r := range rows {
		if !math.IsNaN(r.ApproxMWQ) {
			hasApprox = true
			break
		}
	}
	header := []string{"query", "rsl_size", "mwp", "mqp", "mwq"}
	if hasApprox {
		header = append(header, "approx_mwq")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.Query),
			strconv.Itoa(r.RSLSize),
			fmtF(r.MWP), fmtF(r.MQP), fmtF(r.MWQ),
		}
		if hasApprox {
			rec = append(rec, fmtF(r.ApproxMWQ))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTimingCSV exports timing rows (nanoseconds) as CSV.
func WriteTimingCSV(w io.Writer, rows []TimingRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rsl_size", "mwp_ns", "mqp_ns", "sr_ns", "mwq_ns", "approx_mwq_ns"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			strconv.Itoa(r.RSLSize),
			strconv.FormatInt(r.MWP.Nanoseconds(), 10),
			strconv.FormatInt(r.MQP.Nanoseconds(), 10),
			strconv.FormatInt(r.SR.Nanoseconds(), 10),
			strconv.FormatInt(r.MWQ.Nanoseconds(), 10),
			strconv.FormatInt(r.ApproxMWQ.Nanoseconds(), 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAreaCSV exports safe-region-area rows as CSV.
func WriteAreaCSV(w io.Writer, rows []AreaRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rsl_size", "area", "fraction"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			strconv.Itoa(r.RSLSize), fmtF(r.Area), fmtF(r.Frac),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return fmt.Sprintf("%.9f", v)
}

// Summary aggregates a quality table the way the paper's prose discusses it.
type Summary struct {
	Rows          int
	ZeroCostMWQ   int // case-C1 answers
	MWQBeatsMWP   int // strictly cheaper
	MWQEqualsMWP  int // identical (safe region collapsed)
	MeanMWP       float64
	MeanMQP       float64
	MeanMWQ       float64
	MeanApproxMWQ float64 // NaN when absent
}

// Summarize computes aggregate statistics over quality rows.
func Summarize(rows []QualityRow) Summary {
	const eps = 1e-12
	s := Summary{Rows: len(rows), MeanApproxMWQ: math.NaN()}
	if len(rows) == 0 {
		return s
	}
	var approxSum float64
	approxN := 0
	for _, r := range rows {
		if r.MWQ <= eps {
			s.ZeroCostMWQ++
		}
		switch {
		case r.MWQ < r.MWP-eps:
			s.MWQBeatsMWP++
		case math.Abs(r.MWQ-r.MWP) <= eps:
			s.MWQEqualsMWP++
		}
		s.MeanMWP += r.MWP
		s.MeanMQP += r.MQP
		s.MeanMWQ += r.MWQ
		if !math.IsNaN(r.ApproxMWQ) {
			approxSum += r.ApproxMWQ
			approxN++
		}
	}
	n := float64(len(rows))
	s.MeanMWP /= n
	s.MeanMQP /= n
	s.MeanMWQ /= n
	if approxN > 0 {
		s.MeanApproxMWQ = approxSum / float64(approxN)
	}
	return s
}
