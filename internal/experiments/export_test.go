package experiments

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"
	"time"
)

func sampleRows() []QualityRow {
	return []QualityRow{
		{Query: 1, RSLSize: 1, MWP: 0.5, MQP: 0.9, MWQ: 0, ApproxMWQ: math.NaN()},
		{Query: 2, RSLSize: 3, MWP: 0.2, MQP: 0.7, MWQ: 0.1, ApproxMWQ: math.NaN()},
		{Query: 3, RSLSize: 5, MWP: 0.3, MQP: 0.8, MWQ: 0.3, ApproxMWQ: math.NaN()},
	}
}

func TestWriteQualityCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteQualityCSV(&buf, sampleRows()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || len(recs[0]) != 5 {
		t.Fatalf("csv shape %dx%d", len(recs), len(recs[0]))
	}
	if recs[0][0] != "query" || recs[1][2] != "0.500000000" {
		t.Fatalf("csv content: %v", recs[:2])
	}
	// With approx values present the column appears.
	rows := sampleRows()
	rows[0].ApproxMWQ = 0.25
	buf.Reset()
	if err := WriteQualityCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "approx_mwq") {
		t.Fatal("approx column missing")
	}
	// NaN rows serialise as empty cells.
	if !strings.Contains(out, ",\n") && !strings.HasSuffix(strings.TrimSpace(out), ",") {
		lines := strings.Split(strings.TrimSpace(out), "\n")
		last := lines[len(lines)-1]
		if !strings.HasSuffix(last, ",") {
			t.Fatalf("NaN approx should be empty cell: %q", last)
		}
	}
}

func TestWriteTimingAndAreaCSV(t *testing.T) {
	var buf bytes.Buffer
	timing := []TimingRow{{RSLSize: 2, MWP: time.Millisecond, MQP: 2 * time.Millisecond, SR: time.Second, MWQ: time.Second + time.Millisecond}}
	if err := WriteTimingCSV(&buf, timing); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1000000000") {
		t.Fatalf("timing csv: %s", buf.String())
	}
	buf.Reset()
	if err := WriteAreaCSV(&buf, []AreaRow{{RSLSize: 4, Area: 12.5, Frac: 0.01}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "12.500000000") {
		t.Fatalf("area csv: %s", buf.String())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleRows())
	if s.Rows != 3 || s.ZeroCostMWQ != 1 || s.MWQBeatsMWP != 2 || s.MWQEqualsMWP != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.MeanMWP-(0.5+0.2+0.3)/3) > 1e-12 {
		t.Fatalf("mean MWP = %v", s.MeanMWP)
	}
	if !math.IsNaN(s.MeanApproxMWQ) {
		t.Fatal("approx mean should be NaN without approx data")
	}
	rows := sampleRows()
	rows[1].ApproxMWQ = 0.4
	s2 := Summarize(rows)
	if math.Abs(s2.MeanApproxMWQ-0.4) > 1e-12 {
		t.Fatalf("approx mean = %v", s2.MeanApproxMWQ)
	}
	if got := Summarize(nil); got.Rows != 0 {
		t.Fatal("empty summary")
	}
}
