// Package viz renders the paper's geometric constructions — data points,
// window queries, dynamic-skyline staircases, anti-dominance regions, safe
// regions and why-not movements — as standalone SVG files, regenerating the
// paper's illustrative figures from computed results rather than from hand
// drawing. A small line-chart helper covers the evaluation figures.
package viz

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/region"
)

// Style controls how an element is drawn. Zero-value fields fall back to
// sensible defaults at render time.
type Style struct {
	Fill        string
	Stroke      string
	StrokeWidth float64
	Dash        string // SVG dash array, e.g. "6,3"
	Opacity     float64
	Radius      float64 // point marker radius in pixels
}

func (s Style) orFill(def string) string {
	if s.Fill == "" {
		return def
	}
	return s.Fill
}

func (s Style) orStroke(def string) string {
	if s.Stroke == "" {
		return def
	}
	return s.Stroke
}

func (s Style) orWidth(def float64) float64 {
	if s.StrokeWidth == 0 {
		return def
	}
	return s.StrokeWidth
}

func (s Style) orOpacity() float64 {
	if s.Opacity == 0 {
		return 1
	}
	return s.Opacity
}

func (s Style) orRadius() float64 {
	if s.Radius == 0 {
		return 4
	}
	return s.Radius
}

// Canvas accumulates SVG elements in world coordinates (2-d only) and writes
// a self-contained SVG document. The world rectangle maps onto the drawing
// area with the y axis pointing up, like the paper's figures.
type Canvas struct {
	width, height int
	margin        float64
	world         geom.Rect
	title         string
	xLabel        string
	yLabel        string
	elems         []string
}

// NewCanvas creates a canvas mapping the world rectangle onto a width×height
// pixel SVG with labelled axes.
func NewCanvas(width, height int, world geom.Rect, title, xLabel, yLabel string) *Canvas {
	return &Canvas{
		width:  width,
		height: height,
		margin: 56,
		world:  world,
		title:  title,
		xLabel: xLabel,
		yLabel: yLabel,
	}
}

func (c *Canvas) sx(x float64) float64 {
	f := (x - c.world.Lo[0]) / (c.world.Hi[0] - c.world.Lo[0])
	return c.margin + f*(float64(c.width)-2*c.margin)
}

func (c *Canvas) sy(y float64) float64 {
	f := (y - c.world.Lo[1]) / (c.world.Hi[1] - c.world.Lo[1])
	return float64(c.height) - c.margin - f*(float64(c.height)-2*c.margin)
}

// Point draws a circular marker with an optional label beside it.
func (c *Canvas) Point(p geom.Point, label string, st Style) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="%s" stroke-width="1" opacity="%.2f"/>`,
		c.sx(p[0]), c.sy(p[1]), st.orRadius(), st.orFill("#1f77b4"), st.orStroke("#133f60"), st.orOpacity()))
	if label != "" {
		c.elems = append(c.elems, fmt.Sprintf(
			`<text x="%.1f" y="%.1f" font-size="11" fill="#222">%s</text>`,
			c.sx(p[0])+st.orRadius()+2, c.sy(p[1])-st.orRadius()-2, escape(label)))
	}
}

// Rect draws a world-coordinate rectangle (clipped to the canvas world).
func (c *Canvas) Rect(r geom.Rect, st Style) {
	clipped, ok := r.Intersect(c.world)
	if !ok {
		return
	}
	x, y := c.sx(clipped.Lo[0]), c.sy(clipped.Hi[1])
	w := c.sx(clipped.Hi[0]) - x
	h := c.sy(clipped.Lo[1]) - y
	dash := ""
	if st.Dash != "" {
		dash = fmt.Sprintf(` stroke-dasharray="%s"`, st.Dash)
	}
	c.elems = append(c.elems, fmt.Sprintf(
		`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="%s" stroke-width="%.1f" opacity="%.2f"%s/>`,
		x, y, math.Max(w, 0.5), math.Max(h, 0.5),
		st.orFill("none"), st.orStroke("#d62728"), st.orWidth(1.5), st.orOpacity(), dash))
}

// Region draws every rectangle of a region set with one shared style.
func (c *Canvas) Region(s region.Set, st Style) {
	for _, r := range s {
		c.Rect(r, st)
	}
}

// Line draws a segment between two world points.
func (c *Canvas) Line(a, b geom.Point, st Style) {
	dash := ""
	if st.Dash != "" {
		dash = fmt.Sprintf(` stroke-dasharray="%s"`, st.Dash)
	}
	c.elems = append(c.elems, fmt.Sprintf(
		`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f" opacity="%.2f"%s/>`,
		c.sx(a[0]), c.sy(a[1]), c.sx(b[0]), c.sy(b[1]),
		st.orStroke("#555"), st.orWidth(1), st.orOpacity(), dash))
}

// Arrow draws a movement arrow from a to b.
func (c *Canvas) Arrow(a, b geom.Point, st Style) {
	c.Line(a, b, st)
	// Arrow head: two short strokes at the tip.
	ax, ay := c.sx(a[0]), c.sy(a[1])
	bx, by := c.sx(b[0]), c.sy(b[1])
	ang := math.Atan2(by-ay, bx-ax)
	const headLen = 8.0
	for _, da := range []float64{math.Pi - 0.45, math.Pi + 0.45} {
		hx := bx + headLen*math.Cos(ang+da)
		hy := by + headLen*math.Sin(ang+da)
		c.elems = append(c.elems, fmt.Sprintf(
			`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`,
			bx, by, hx, hy, st.orStroke("#555"), st.orWidth(1)))
	}
}

// Text places a free label at a world position.
func (c *Canvas) Text(p geom.Point, text string, size int) {
	if size == 0 {
		size = 12
	}
	c.elems = append(c.elems, fmt.Sprintf(
		`<text x="%.1f" y="%.1f" font-size="%d" fill="#222">%s</text>`,
		c.sx(p[0]), c.sy(p[1]), size, escape(text)))
}

// Render writes the SVG document.
func (c *Canvas) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", c.width, c.height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333" stroke-width="1.2"/>`+"\n",
		c.margin, float64(c.height)-c.margin, float64(c.width)-c.margin, float64(c.height)-c.margin)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333" stroke-width="1.2"/>`+"\n",
		c.margin, float64(c.height)-c.margin, c.margin, c.margin)
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := float64(i) / 4
		x := c.world.Lo[0] + fx*(c.world.Hi[0]-c.world.Lo[0])
		y := c.world.Lo[1] + fx*(c.world.Hi[1]-c.world.Lo[1])
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="#333" text-anchor="middle">%s</text>`+"\n",
			c.sx(x), float64(c.height)-c.margin+14, fmtTick(x))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="#333" text-anchor="end">%s</text>`+"\n",
			c.margin-6, c.sy(y)+3, fmtTick(y))
	}
	// Labels and title.
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="13" fill="#111" text-anchor="middle" font-weight="bold">%s</text>`+"\n",
		float64(c.width)/2, 20.0, escape(c.title))
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="#333" text-anchor="middle">%s</text>`+"\n",
		float64(c.width)/2, float64(c.height)-8, escape(c.xLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-size="11" fill="#333" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(c.height)/2, float64(c.height)/2, escape(c.yLabel))
	for _, e := range c.elems {
		b.WriteString(e)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func fmtTick(v float64) string {
	if math.Abs(v) >= 10000 {
		return fmt.Sprintf("%.0fK", v/1000)
	}
	return fmt.Sprintf("%.3g", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// Series is one polyline of a chart.
type Series struct {
	Name  string
	X, Y  []float64
	Color string
}

// LineChart renders a simple multi-series line chart (used for the Fig. 14,
// 15 and 17 evaluation plots). When logY is set, Y values are plotted on a
// log10 scale (zeroes clamp to the smallest positive value).
func LineChart(w io.Writer, width, height int, title, xLabel, yLabel string, series []Series, logY bool) error {
	// Determine bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			y := s.Y[i]
			if logY && y <= 0 {
				continue
			}
			if logY {
				y = math.Log10(y)
			}
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if minX >= maxX {
		maxX = minX + 1
	}
	if minY >= maxY {
		maxY = minY + 1
	}
	world := geom.NewRect(geom.NewPoint(minX, minY), geom.NewPoint(maxX, maxY))
	c := NewCanvas(width, height, world, title, xLabel, yLabel)
	palette := []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"}
	for si, s := range series {
		color := s.Color
		if color == "" {
			color = palette[si%len(palette)]
		}
		type pt struct{ x, y float64 }
		pts := make([]pt, 0, len(s.X))
		for i := range s.X {
			y := s.Y[i]
			if logY {
				if y <= 0 {
					y = minY
				} else {
					y = math.Log10(y)
				}
			}
			pts = append(pts, pt{s.X[i], y})
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
		for i := 1; i < len(pts); i++ {
			c.Line(geom.NewPoint(pts[i-1].x, pts[i-1].y), geom.NewPoint(pts[i].x, pts[i].y),
				Style{Stroke: color, StrokeWidth: 1.8})
		}
		for _, p := range pts {
			c.Point(geom.NewPoint(p.x, p.y), "", Style{Fill: color, Radius: 3})
		}
		// Legend entry.
		lx := world.Lo[0] + 0.03*(world.Hi[0]-world.Lo[0])
		ly := world.Hi[1] - (0.05+0.06*float64(si))*(world.Hi[1]-world.Lo[1])
		c.Point(geom.NewPoint(lx, ly), s.Name, Style{Fill: color, Radius: 4})
	}
	return c.Render(w)
}
