package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/region"
)

func testCanvas() *Canvas {
	world := geom.NewRect(geom.NewPoint(0, 0), geom.NewPoint(10, 10))
	return NewCanvas(400, 300, world, "T & title", "x", "y")
}

func render(t *testing.T, c *Canvas) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCanvasBasicsRender(t *testing.T) {
	c := testCanvas()
	c.Point(geom.NewPoint(5, 5), "p<1>", Style{})
	c.Rect(geom.NewRect(geom.NewPoint(1, 1), geom.NewPoint(3, 3)), Style{Dash: "4,2"})
	c.Line(geom.NewPoint(0, 0), geom.NewPoint(10, 10), Style{})
	c.Arrow(geom.NewPoint(2, 2), geom.NewPoint(8, 8), Style{})
	c.Text(geom.NewPoint(5, 9), "note", 0)
	out := render(t, c)
	for _, want := range []string{"<svg", "</svg>", "<circle", "<rect", "<line", "stroke-dasharray", "T &amp; title", "p&lt;1&gt;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestCanvasClipsOutOfWorldRects(t *testing.T) {
	c := testCanvas()
	// Entirely outside: no rect element beyond the background.
	c.Rect(geom.NewRect(geom.NewPoint(20, 20), geom.NewPoint(30, 30)), Style{})
	out := render(t, c)
	if n := strings.Count(out, "<rect"); n != 1 { // just the background
		t.Errorf("out-of-world rect leaked: %d rects", n)
	}
	// Partially outside: clipped to world bounds (coordinates within canvas).
	c2 := testCanvas()
	c2.Rect(geom.NewRect(geom.NewPoint(5, 5), geom.NewPoint(30, 30)), Style{})
	out2 := render(t, c2)
	if n := strings.Count(out2, "<rect"); n != 2 {
		t.Errorf("clipped rect missing: %d rects", n)
	}
}

func TestRegionRendering(t *testing.T) {
	c := testCanvas()
	s := region.Set{
		geom.NewRect(geom.NewPoint(1, 1), geom.NewPoint(2, 2)),
		geom.NewRect(geom.NewPoint(4, 4), geom.NewPoint(6, 6)),
	}
	c.Region(s, Style{Fill: "#abc"})
	out := render(t, c)
	if n := strings.Count(out, `fill="#abc"`); n != 2 {
		t.Errorf("region rects = %d, want 2", n)
	}
}

func TestLineChart(t *testing.T) {
	var buf bytes.Buffer
	series := []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{10, 20, 15}},
		{Name: "b", X: []float64{1, 2, 3}, Y: []float64{5, 0, 25}},
	}
	if err := LineChart(&buf, 400, 300, "chart", "x", "y", series, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<svg") || strings.Count(out, "<line") < 6 {
		t.Fatalf("chart output malformed")
	}
	// Log scale with zero values must not error (zeroes clamp).
	buf.Reset()
	if err := LineChart(&buf, 400, 300, "log", "x", "y", series, true); err != nil {
		t.Fatal(err)
	}
	// Degenerate single-point series.
	buf.Reset()
	if err := LineChart(&buf, 400, 300, "one", "x", "y",
		[]Series{{Name: "p", X: []float64{1}, Y: []float64{1}}}, false); err != nil {
		t.Fatal(err)
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		5:      "5",
		123:    "123",
		50000:  "50K",
		250000: "250K",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}
