// Package dataset provides the dataset container used by the experiment
// harness and the CLI tools: labelled point collections with CSV
// round-tripping, summary statistics, and the query-workload selection of
// §VI ("for each experiment we run queries with 1–15 reverse skyline
// points... queries follow the distribution of the particular tested
// dataset").
package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"

	"repro/internal/geom"
	"repro/internal/rskyline"
	"repro/internal/rtree"
)

// Item aliases the R-tree item type.
type Item = rtree.Item

// Dataset is a named collection of identified points.
type Dataset struct {
	Name    string
	Dims    int
	Items   []Item
	Columns []string // optional attribute names, len == Dims when set
}

// New builds a dataset, validating dimensional consistency.
func New(name string, dims int, items []Item) (*Dataset, error) {
	for _, it := range items {
		if it.Point.Dims() != dims {
			return nil, fmt.Errorf("dataset %s: item %d has %d dims, want %d",
				name, it.ID, it.Point.Dims(), dims)
		}
	}
	return &Dataset{Name: name, Dims: dims, Items: items}, nil
}

// Len returns the number of items.
func (d *Dataset) Len() int { return len(d.Items) }

// Bounds returns the MBR of the dataset; ok is false when empty.
func (d *Dataset) Bounds() (geom.Rect, bool) {
	if len(d.Items) == 0 {
		return geom.Rect{}, false
	}
	r := geom.PointRect(d.Items[0].Point)
	for _, it := range d.Items[1:] {
		r.Expand(it.Point)
	}
	return r, true
}

// Stats summarises one dimension.
type Stats struct {
	Min, Max, Mean float64
}

// ColumnStats computes min/max/mean per dimension.
func (d *Dataset) ColumnStats() []Stats {
	out := make([]Stats, d.Dims)
	for i := range out {
		out[i].Min = +1e308
		out[i].Max = -1e308
	}
	for _, it := range d.Items {
		for i, v := range it.Point {
			if v < out[i].Min {
				out[i].Min = v
			}
			if v > out[i].Max {
				out[i].Max = v
			}
			out[i].Mean += v
		}
	}
	if n := float64(len(d.Items)); n > 0 {
		for i := range out {
			out[i].Mean /= n
		}
	}
	return out
}

// WriteCSV emits "id,dim0,dim1,..." rows with an optional header from
// Columns.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(d.Columns) == d.Dims {
		header := append([]string{"id"}, d.Columns...)
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	row := make([]string, d.Dims+1)
	for _, it := range d.Items {
		row[0] = strconv.Itoa(it.ID)
		for i, v := range it.Point {
			row[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the dataset to a file.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := d.WriteCSV(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses "id,dim0,dim1,..." rows; a non-numeric first row is treated
// as a header and recorded as column names. The parser is strict — the
// dataset is the root input of every downstream index and query, so a
// corrupt file fails loudly here with the input line number instead of
// producing silent nonsense later:
//
//   - coordinates must be finite (NaN and ±Inf poison dominance comparisons
//     and the R-tree's rectangle arithmetic);
//   - IDs must be unique non-negative integers (negative collides with the
//     rskyline.NoExclude sentinel; duplicates break exclusion and store
//     lookups);
//   - every row's dimensionality must match the header (or the first data
//     row when there is no header).
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	first := true
	var columns []string
	var items []Item
	dims := -1
	seen := map[int]int{} // id -> input line of first occurrence
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset %s: %w", name, err)
		}
		line, _ := cr.FieldPos(0)
		if first {
			first = false
			if _, err := strconv.Atoi(row[0]); err != nil {
				if len(row) < 2 {
					return nil, fmt.Errorf("dataset %s: line %d: header needs id plus at least one column", name, line)
				}
				columns = append([]string(nil), row[1:]...)
				dims = len(columns)
				continue
			}
		}
		if len(row) < 2 {
			return nil, fmt.Errorf("dataset %s: line %d: need id plus at least one coordinate", name, line)
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("dataset %s: line %d: bad id %q: %v", name, line, row[0], err)
		}
		if id < 0 {
			return nil, fmt.Errorf("dataset %s: line %d: negative id %d (ids must be non-negative)", name, line, id)
		}
		if prev, dup := seen[id]; dup {
			return nil, fmt.Errorf("dataset %s: line %d: duplicate id %d (first used on line %d)", name, line, id, prev)
		}
		seen[id] = line
		if dims >= 0 && len(row)-1 != dims {
			return nil, fmt.Errorf("dataset %s: line %d: %d coordinates, want %d", name, line, len(row)-1, dims)
		}
		p := make(geom.Point, len(row)-1)
		for i, s := range row[1:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset %s: line %d column %d: %v", name, line, i+2, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("dataset %s: line %d column %d: non-finite coordinate %q", name, line, i+2, s)
			}
			p[i] = v
		}
		if dims == -1 {
			dims = len(p)
		}
		items = append(items, Item{ID: id, Point: p})
	}
	if len(items) == 0 && columns == nil {
		return &Dataset{Name: name}, nil
	}
	d, err := New(name, dims, items)
	if err != nil {
		return nil, err
	}
	d.Columns = columns
	return d, nil
}

// LoadCSV reads a dataset from a file.
func LoadCSV(name, path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, bufio.NewReader(f))
}

// QueryCase is one experiment query: a query point, its reverse skyline over
// the dataset, and a randomly drawn why-not customer.
type QueryCase struct {
	Q      geom.Point
	RSL    []Item
	WhyNot Item
}

// FindQueries selects, for each requested reverse-skyline size, a query
// point drawn from the dataset's distribution (a jittered data point) whose
// RSL over customers has exactly that size, plus a random why-not customer
// outside the RSL. Targets with no hit within maxTrials are skipped, mirroring
// the paper's tables where some sizes are absent. A nil customers slice
// selects the monochromatic setting — the customers are the product records
// themselves — which uses a much faster global-skyline candidate path.
func FindQueries(db *rskyline.DB, customers []Item, targets []int, maxTrials int, rng *rand.Rand) []QueryCase {
	mono := customers == nil
	if mono {
		customers = db.Tree().Items()
	}
	want := make(map[int]bool, len(targets))
	for _, t := range targets {
		want[t] = true
	}
	found := map[int]QueryCase{}
	bounds, ok := db.Universe()
	if !ok {
		return nil
	}
	for trial := 0; trial < maxTrials && len(found) < len(want); trial++ {
		base := customers[rng.Intn(len(customers))].Point
		q := make(geom.Point, len(base))
		for i := range q {
			span := bounds.Hi[i] - bounds.Lo[i]
			q[i] = base[i] + (rng.Float64()-0.5)*0.02*span
		}
		var rsl []Item
		if mono {
			rsl = db.ReverseSkylineMono(q)
		} else {
			rsl = db.ReverseSkylineFiltered(customers, q)
		}
		size := len(rsl)
		if !want[size] {
			continue
		}
		if _, done := found[size]; done {
			continue
		}
		wn, ok := pickWhyNot(customers, rsl, rng)
		if !ok {
			continue
		}
		found[size] = QueryCase{Q: q, RSL: rsl, WhyNot: wn}
	}
	sizes := make([]int, 0, len(found))
	for s := range found {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	out := make([]QueryCase, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, found[s])
	}
	return out
}

// pickWhyNot draws a customer outside the reverse skyline.
func pickWhyNot(customers, rsl []Item, rng *rand.Rand) (Item, bool) {
	inRSL := make(map[int]bool, len(rsl))
	for _, c := range rsl {
		inRSL[c.ID] = true
	}
	for attempts := 0; attempts < 200; attempts++ {
		c := customers[rng.Intn(len(customers))]
		if !inRSL[c.ID] {
			return c, true
		}
	}
	return Item{}, false
}
