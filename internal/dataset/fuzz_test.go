package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV parser never panics and that accepted input
// round-trips losslessly.
func FuzzReadCSV(f *testing.F) {
	f.Add("0,1,2\n1,3,4\n")
	f.Add("id,price,mileage\n0,1.5,2.5\n")
	f.Add("")
	f.Add("0\n")
	f.Add("x,y\n")
	f.Add("0,1e308,-1e308\n")
	f.Add("0,NaN,Inf\n")
	f.Fuzz(func(t *testing.T, in string) {
		d, err := ReadCSV("fuzz", strings.NewReader(in))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if d.Len() == 0 {
			return
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := ReadCSV("fuzz2", &buf)
		if err != nil {
			t.Fatalf("reparse of own output: %v\noutput: %q", err, buf.String())
		}
		if back.Len() != d.Len() {
			t.Fatalf("round trip changed size: %d -> %d", d.Len(), back.Len())
		}
		for i := range d.Items {
			a, b := d.Items[i], back.Items[i]
			if a.ID != b.ID || len(a.Point) != len(b.Point) {
				t.Fatalf("row %d changed", i)
			}
			for j := range a.Point {
				// NaN round-trips as NaN (never equal); compare bit-insensitively.
				if a.Point[j] != b.Point[j] && !(a.Point[j] != a.Point[j] && b.Point[j] != b.Point[j]) {
					t.Fatalf("row %d coord %d changed: %v -> %v", i, j, a.Point[j], b.Point[j])
				}
			}
		}
	})
}
