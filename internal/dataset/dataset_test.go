package dataset

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/rskyline"
	"repro/internal/rtree"
)

func sample(n int, seed int64) []Item {
	return datagen.Generate(datagen.Uniform, n, 2, seed)
}

func TestNewValidatesDims(t *testing.T) {
	items := []Item{{ID: 0, Point: geom.NewPoint(1, 2)}, {ID: 1, Point: geom.NewPoint(1, 2, 3)}}
	if _, err := New("bad", 2, items); err == nil {
		t.Fatal("mixed dimensionality must be rejected")
	}
	if _, err := New("ok", 2, items[:1]); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d, err := New("rt", 2, sample(100, 3))
	if err != nil {
		t.Fatal(err)
	}
	d.Columns = []string{"price", "mileage"}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.Dims != 2 {
		t.Fatalf("round trip: %d items %d dims", back.Len(), back.Dims)
	}
	if len(back.Columns) != 2 || back.Columns[0] != "price" {
		t.Fatalf("columns lost: %v", back.Columns)
	}
	for i := range d.Items {
		if back.Items[i].ID != d.Items[i].ID || !back.Items[i].Point.Equal(d.Items[i].Point) {
			t.Fatalf("item %d mismatch", i)
		}
	}
}

func TestCSVNoHeader(t *testing.T) {
	in := "0,1.5,2.5\n1,3,4\n"
	d, err := ReadCSV("nh", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || len(d.Columns) != 0 {
		t.Fatalf("parsed %d items, columns %v", d.Len(), d.Columns)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string // substring the error must carry
	}{
		{"0\n", "line 1"},                           // too few fields
		{"0,abc\n", "line 1"},                       // bad float
		{"x,1,2\ny,z,2\n", "line 2"},                // header then bad id
		{"0,1,2\n1,1\n", "line 2"},                  // inconsistent dims
		{"id,a,b\n0,1,2\n1,3,4,5\n", "want 2"},      // dims disagree with header
		{"0,NaN,2\n", "non-finite"},                 // NaN coordinate
		{"0,1,+Inf\n", "non-finite"},                // infinite coordinate
		{"0,1,-Inf\n", "non-finite"},                // negative infinity
		{"0,1,2\n1,3,4\n0,5,6\n", "duplicate id 0"}, // duplicate ID
		{"0,1,2\n1,3,4\n0,5,6\n", "line 1"},         // ...reported with first use
		{"-3,1,2\n", "negative id"},                 // sentinel-colliding ID
		{"id,a,b\n5,1,2\nid2,a2,b2\n", "line 3"},    // second header mid-file
	}
	for i, tc := range cases {
		_, err := ReadCSV("bad", strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("case %d: expected error for %q", i, tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: error %q does not mention %q", i, err, tc.want)
		}
	}
}

func TestCSVHeaderLineNumbers(t *testing.T) {
	// With a header the first bad data row is physical line 3.
	in := "id,a,b\n0,1,2\n1,oops,4\n"
	_, err := ReadCSV("bad", strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line-3 error, got %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	d, _ := New("f", 2, sample(50, 5))
	if err := d.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV("f", path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 50 {
		t.Fatalf("loaded %d items", back.Len())
	}
}

func TestBoundsAndStats(t *testing.T) {
	items := []Item{
		{ID: 0, Point: geom.NewPoint(0, 10)},
		{ID: 1, Point: geom.NewPoint(4, 20)},
		{ID: 2, Point: geom.NewPoint(2, 30)},
	}
	d, _ := New("s", 2, items)
	b, ok := d.Bounds()
	if !ok || !b.Lo.Equal(geom.NewPoint(0, 10)) || !b.Hi.Equal(geom.NewPoint(4, 30)) {
		t.Fatalf("Bounds = %v", b)
	}
	st := d.ColumnStats()
	if st[0].Min != 0 || st[0].Max != 4 || st[0].Mean != 2 {
		t.Fatalf("stats dim0 = %+v", st[0])
	}
	if st[1].Mean != 20 {
		t.Fatalf("stats dim1 = %+v", st[1])
	}
	empty, _ := New("e", 2, nil)
	if _, ok := empty.Bounds(); ok {
		t.Fatal("empty dataset has no bounds")
	}
}

func TestFindQueries(t *testing.T) {
	items := sample(3000, 7)
	db := rskyline.NewDB(2, items, rtree.Config{})
	rng := rand.New(rand.NewSource(8))
	targets := []int{1, 2, 3, 4, 5}
	cases := FindQueries(db, items, targets, 3000, rng)
	if len(cases) == 0 {
		t.Fatal("no query cases found")
	}
	seen := map[int]bool{}
	for _, qc := range cases {
		size := len(qc.RSL)
		if seen[size] {
			t.Fatalf("duplicate RSL size %d", size)
		}
		seen[size] = true
		wantIn := false
		for _, tgt := range targets {
			if size == tgt {
				wantIn = true
			}
		}
		if !wantIn {
			t.Fatalf("unexpected RSL size %d", size)
		}
		// The recorded RSL must be the actual reverse skyline.
		actual := db.ReverseSkyline(items, qc.Q)
		if len(actual) != size {
			t.Fatalf("stale RSL: recorded %d, actual %d", size, len(actual))
		}
		// The why-not point must be outside the RSL.
		for _, c := range qc.RSL {
			if c.ID == qc.WhyNot.ID {
				t.Fatalf("why-not point %d is in the RSL", c.ID)
			}
		}
	}
	if len(seen) < 3 {
		t.Fatalf("found only %d distinct sizes, want ≥ 3", len(seen))
	}
	// Results are sorted by RSL size.
	for i := 1; i < len(cases); i++ {
		if len(cases[i-1].RSL) > len(cases[i].RSL) {
			t.Fatal("query cases not sorted by RSL size")
		}
	}
}
