package skyline

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

func TestGlobalSkylineBBSMatchesScan(t *testing.T) {
	for _, dims := range []int{2, 3} {
		for seed := int64(0); seed < 6; seed++ {
			items := randItems(600, dims, seed+700)
			tr := rtree.BulkLoad(dims, items, rtree.Config{})
			rng := rand.New(rand.NewSource(seed + 800))
			for probe := 0; probe < 5; probe++ {
				q := make(geom.Point, dims)
				for d := range q {
					q[d] = rng.Float64() * 100
				}
				want := idSet(GlobalSkyline(items, q))
				got := idSet(GlobalSkylineBBS(tr, q))
				if len(got) != len(want) {
					t.Fatalf("dims=%d seed=%d: BBS=%d scan=%d", dims, seed, len(got), len(want))
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("dims=%d seed=%d: missing %d", dims, seed, id)
					}
				}
			}
		}
	}
}

func TestGlobalSkylineBBSQueryOnDataPoint(t *testing.T) {
	// q placed exactly on a data point: that point transforms to the origin
	// and is in every orthant's skyline; axis-straddling must stay sound.
	items := randItems(300, 2, 900)
	tr := rtree.BulkLoad(2, items, rtree.Config{})
	q := items[42].Point
	want := idSet(GlobalSkyline(items, q))
	got := idSet(GlobalSkylineBBS(tr, q))
	if len(got) != len(want) {
		t.Fatalf("BBS=%d scan=%d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("missing %d", id)
		}
	}
	if !got[42] {
		t.Fatal("the point at q itself must be a global skyline member")
	}
}

func TestGlobalSkylineBBSAxisTies(t *testing.T) {
	// Points sharing a coordinate with q exercise the zero-offset
	// compatibility rule.
	q := geom.NewPoint(5, 5)
	items := []Item{
		{ID: 1, Point: geom.NewPoint(5, 6)},
		{ID: 2, Point: geom.NewPoint(4, 7)},
		{ID: 3, Point: geom.NewPoint(6, 7)},
		{ID: 4, Point: geom.NewPoint(3, 5)},
		{ID: 5, Point: geom.NewPoint(5, 4)},
	}
	tr := rtree.BulkLoad(2, items, rtree.Config{})
	want := idSet(GlobalSkyline(items, q))
	got := idSet(GlobalSkylineBBS(tr, q))
	if len(got) != len(want) {
		t.Fatalf("BBS=%v scan=%v", got, want)
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("missing %d", id)
		}
	}
}

// BBS and GlobalSkylineBBS are access-efficient: they touch far fewer index
// nodes than a full traversal (the I/O-optimality story of Papadias et al.).
func TestBranchAndBoundAccessEfficiency(t *testing.T) {
	items := randItems(20000, 2, 950)
	tr := rtree.BulkLoad(2, items, rtree.Config{})
	total := tr.Stats().Nodes

	tr.ResetAccesses()
	BBS(tr)
	bbs := tr.Accesses()
	if bbs <= 0 || bbs > total/3 {
		t.Errorf("BBS touched %d of %d nodes; expected a small fraction", bbs, total)
	}

	q := geom.NewPoint(500, 500)
	tr.ResetAccesses()
	GlobalSkylineBBS(tr, q)
	gsb := tr.Accesses()
	if gsb <= 0 || gsb >= total {
		t.Errorf("GlobalSkylineBBS touched %d of %d nodes", gsb, total)
	}

	tr.ResetAccesses()
	DynamicBBS(tr, q)
	dsl := tr.Accesses()
	if dsl <= 0 || dsl > total/3 {
		t.Errorf("DynamicBBS touched %d of %d nodes; expected a small fraction", dsl, total)
	}
}
