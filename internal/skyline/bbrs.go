package skyline

import (
	"repro/internal/cancel"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rtree"
)

// GlobalSkylineBBS computes the global skyline with respect to q by
// branch-and-bound over the R*-tree, in the style of the BBRS algorithm of
// Dellis & Seeger (VLDB 2007): nodes are visited in ascending transformed
// mindist order and a subtree is pruned when it lies entirely inside one
// closed orthant around q and an already-found global-skyline point of that
// orthant dominates its transformed lower corner. Subtrees straddling an
// orthant boundary are never pruned (they are near q and cheap to expand).
//
// The result equals GlobalSkyline(tree.Items(), q) but touches only the part
// of the index that can contain global-skyline points.
func GlobalSkylineBBS(t *rtree.Tree, q geom.Point) []Item {
	out, _ := GlobalSkylineBBSChecked(nil, t, q)
	return out
}

// GlobalSkylineBBSChecked is GlobalSkylineBBS with cooperative cancellation:
// the checker fires on every node/item expansion of the branch-and-bound
// loop, and a cancelled traversal returns the context's error with a nil
// result.
func GlobalSkylineBBSChecked(chk *cancel.Checker, t *rtree.Tree, q geom.Point) ([]Item, error) {
	d := len(q)
	type skyPoint struct {
		tr    geom.Point
		canon int
	}
	var sky []skyPoint

	// orthantOf returns the orthant mask of rect around q and whether the
	// rect lies in a single closed orthant (zeros resolve to +).
	orthantOf := func(r geom.Rect) (int, bool) {
		mask := 0
		for i := 0; i < d; i++ {
			switch {
			case r.Lo[i] >= q[i]:
				mask |= 1 << i
			case r.Hi[i] <= q[i]:
				// negative side
			default:
				return 0, false // straddles q in dimension i
			}
		}
		return mask, true
	}

	// compatible reports whether a skyline point in canonical group sg can
	// dominate points whose canonical group is g: sg must match g except
	// where the skyline point sits exactly on q's axis (tr coordinate 0).
	compatible := func(s skyPoint, g int) bool {
		for i := 0; i < d; i++ {
			if s.tr[i] == 0 {
				continue // axis points dominate both sides
			}
			if (s.canon>>i)&1 != (g>>i)&1 {
				return false
			}
		}
		return true
	}

	prune := func(r geom.Rect) bool {
		g, single := orthantOf(r)
		if !single {
			return false
		}
		trR := r.TransformMinMax(q)
		for _, s := range sky {
			if compatible(s, g) && s.tr.WeaklyDominates(trR.Lo) && !trR.Contains(s.tr) {
				return true
			}
		}
		return false
	}

	canonOf := func(p geom.Point) int {
		mask := 0
		for i := 0; i < d; i++ {
			if p[i] >= q[i] {
				mask |= 1 << i
			}
		}
		return mask
	}

	var out []Item
	dt := 0
	err := t.BestFirstChecked(
		chk,
		func(p geom.Point) float64 { return coordSum(p.Transform(q)) },
		func(r geom.Rect) float64 { return coordSum(r.TransformMinMax(q).Lo) },
		prune,
		func(it Item, _ float64) bool {
			tr := it.Point.Transform(q)
			g := canonOf(it.Point)
			for _, s := range sky {
				if compatible(s, g) {
					dt++
					if s.tr.Dominates(tr) {
						return true
					}
				}
			}
			// A record exactly at q (all-zero transform) is a global-skyline
			// member but must not act as a dominator: it ties every window
			// distance in every dimension and blocks nobody (see
			// GlobalDominates).
			if !zeroPoint(tr) {
				sky = append(sky, skyPoint{tr: tr, canon: g})
			}
			out = append(out, it)
			return true
		},
	)
	obs.AddDominanceTests(dt)
	if err != nil {
		return nil, err
	}
	return out, nil
}
