package skyline

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// fig1Points is the running-example dataset of the paper (Fig. 1a), in
// (price K$, mileage Kmi).
func fig1Points() []Item {
	coords := [][2]float64{
		{5, 30},   // pt1
		{7.5, 42}, // pt2
		{2.5, 70}, // pt3
		{7.5, 90}, // pt4
		{24, 20},  // pt5
		{20, 50},  // pt6
		{26, 70},  // pt7
		{16, 80},  // pt8
	}
	items := make([]Item, len(coords))
	for i, c := range coords {
		items[i] = Item{ID: i + 1, Point: geom.NewPoint(c[0], c[1])}
	}
	return items
}

func idSet(items []Item) map[int]bool {
	s := make(map[int]bool, len(items))
	for _, it := range items {
		s[it.ID] = true
	}
	return s
}

func sameIDs(t *testing.T, got []Item, want ...int) {
	t.Helper()
	g := idSet(got)
	if len(g) != len(want) {
		t.Fatalf("got %d skyline points %v, want %d %v", len(g), keys(g), len(want), want)
	}
	for _, id := range want {
		if !g[id] {
			t.Fatalf("missing id %d in %v", id, keys(g))
		}
	}
}

func keys(m map[int]bool) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Paper Fig. 1(b): SK = {p1, p3, p5}.
func TestStaticSkylinePaperExample(t *testing.T) {
	items := fig1Points()
	for name, alg := range map[string]func([]Item) []Item{
		"BNL": BNL, "SFS": SFS, "DC": DC, "Of": Of,
	} {
		t.Run(name, func(t *testing.T) {
			sameIDs(t, alg(items), 1, 3, 5)
		})
	}
	tr := rtree.BulkLoad(2, items, rtree.Config{})
	sameIDs(t, BBS(tr), 1, 3, 5)
}

// Paper Fig. 2(a): DSL(q) = {p2, p6} for q=(8.5,55) over pt1..pt8 minus pt2?
// No — over all of pt1..pt8 treated as products: the paper states
// DSL(q) = {p2, p6}.
func TestDynamicSkylinePaperExampleQ(t *testing.T) {
	items := fig1Points()
	q := geom.NewPoint(8.5, 55)
	sameIDs(t, Dynamic(items, q), 2, 6)
	tr := rtree.BulkLoad(2, items, rtree.Config{})
	sameIDs(t, DynamicBBS(tr, q), 2, 6)
}

// Paper §I: the dynamic skyline of c2 = pt2 over {pt1, pt3..pt8} is
// {p1, p4, p6}.
func TestDynamicSkylinePaperExampleC2(t *testing.T) {
	var items []Item
	for _, it := range fig1Points() {
		if it.ID != 2 {
			items = append(items, it)
		}
	}
	c2 := geom.NewPoint(7.5, 42)
	sameIDs(t, Dynamic(items, c2), 1, 4, 6)
	// Adding q to the products puts q into DSL(c2) as well (paper: {p1,p4,p6,q}).
	q := Item{ID: 99, Point: geom.NewPoint(8.5, 55)}
	sameIDs(t, Dynamic(append(items, q), c2), 1, 4, 6, 99)
}

func randItems(n, dims int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = rng.Float64() * 100
		}
		items[i] = Item{ID: i, Point: p}
	}
	return items
}

// bruteSkyline is the oracle: O(n²) pairwise strict-dominance filter.
func bruteSkyline(items []Item) []Item {
	var out []Item
	for i, a := range items {
		dominated := false
		for j, b := range items {
			if i != j && b.Point.Dominates(a.Point) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

func TestAllAlgorithmsAgreeRandom(t *testing.T) {
	for _, dims := range []int{2, 3, 4} {
		for seed := int64(0); seed < 5; seed++ {
			items := randItems(400, dims, seed)
			want := idSet(bruteSkyline(items))
			tr := rtree.BulkLoad(dims, items, rtree.Config{})
			for name, got := range map[string]map[int]bool{
				"BNL": idSet(BNL(items)),
				"SFS": idSet(SFS(items)),
				"DC":  idSet(DC(items)),
				"BBS": idSet(BBS(tr)),
			} {
				if len(got) != len(want) {
					t.Fatalf("dims=%d seed=%d %s: %d points, want %d", dims, seed, name, len(got), len(want))
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("dims=%d seed=%d %s missing id %d", dims, seed, name, id)
					}
				}
			}
		}
	}
}

func bruteDynamicSkyline(items []Item, c geom.Point) []Item {
	var out []Item
	for i, a := range items {
		dominated := false
		for j, b := range items {
			if i != j && geom.DynDominates(c, b.Point, a.Point) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

func TestDynamicAgreesWithBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		dims := 2 + trial%3
		items := randItems(300, dims, int64(trial))
		c := make(geom.Point, dims)
		for d := range c {
			c[d] = rng.Float64() * 100
		}
		want := idSet(bruteDynamicSkyline(items, c))
		got := idSet(Dynamic(items, c))
		tr := rtree.BulkLoad(dims, items, rtree.Config{})
		gotBBS := idSet(DynamicBBS(tr, c))
		if len(got) != len(want) || len(gotBBS) != len(want) {
			t.Fatalf("trial %d: Dynamic=%d DynamicBBS=%d want=%d", trial, len(got), len(gotBBS), len(want))
		}
		for id := range want {
			if !got[id] || !gotBBS[id] {
				t.Fatalf("trial %d: missing id %d", trial, id)
			}
		}
	}
}

func TestSkylineWithDuplicates(t *testing.T) {
	items := []Item{
		{ID: 1, Point: geom.NewPoint(1, 1)},
		{ID: 2, Point: geom.NewPoint(1, 1)}, // duplicate of 1
		{ID: 3, Point: geom.NewPoint(2, 2)},
	}
	for name, alg := range map[string]func([]Item) []Item{"BNL": BNL, "SFS": SFS, "DC": DC} {
		got := alg(items)
		sameIDsNamed(t, name, got, 1, 2)
	}
	tr := rtree.BulkLoad(2, items, rtree.Config{})
	sameIDsNamed(t, "BBS", BBS(tr), 1, 2)
}

func sameIDsNamed(t *testing.T, name string, got []Item, want ...int) {
	t.Helper()
	g := idSet(got)
	if len(g) != len(want) {
		t.Fatalf("%s: got %v, want %v", name, keys(g), want)
	}
	for _, id := range want {
		if !g[id] {
			t.Fatalf("%s: missing %d", name, id)
		}
	}
}

func TestSkylineEmptyAndSingle(t *testing.T) {
	if got := BNL(nil); len(got) != 0 {
		t.Error("BNL(nil) should be empty")
	}
	one := []Item{{ID: 7, Point: geom.NewPoint(3, 3)}}
	for name, alg := range map[string]func([]Item) []Item{"BNL": BNL, "SFS": SFS, "DC": DC} {
		if got := alg(one); len(got) != 1 || got[0].ID != 7 {
			t.Errorf("%s single item: %v", name, got)
		}
	}
}

func TestSkylineMutualNonDominance(t *testing.T) {
	// Property: no pair of returned skyline points dominates each other, and
	// every non-returned point is dominated by some returned point.
	items := randItems(500, 3, 77)
	sky := SFS(items)
	inSky := idSet(sky)
	for i, a := range sky {
		for j, b := range sky {
			if i != j && a.Point.Dominates(b.Point) {
				t.Fatalf("skyline points %d dominates %d", a.ID, b.ID)
			}
		}
	}
	for _, it := range items {
		if inSky[it.ID] {
			continue
		}
		covered := false
		for _, s := range sky {
			if s.Point.Dominates(it.Point) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("non-skyline point %d not dominated by any skyline point", it.ID)
		}
	}
}

func TestGlobalDominates(t *testing.T) {
	q := geom.NewPoint(0, 0)
	a := geom.NewPoint(1, 1)
	b := geom.NewPoint(2, 2)
	if !GlobalDominates(q, a, b) {
		t.Error("same-orthant transformed dominance should hold")
	}
	// Opposite orthants never globally dominate.
	c := geom.NewPoint(-2, -2)
	if GlobalDominates(q, a, c) {
		t.Error("opposite orthant must not globally dominate")
	}
	// Mirror point with same absolute coords: same closed orthant required.
	d := geom.NewPoint(-1, 2)
	e := geom.NewPoint(-2, 3)
	if !GlobalDominates(q, d, e) {
		t.Error("same (negative-x) orthant dominance should hold")
	}
}

// Soundness of global dominance as an RSL filter: if a globally dominates b
// w.r.t. q, then a dynamically dominates q w.r.t. b (so b ∉ RSL(q)).
func TestGlobalDominanceSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checked := 0
	for trial := 0; trial < 5000; trial++ {
		q := geom.NewPoint(rng.Float64()*10-5, rng.Float64()*10-5)
		a := geom.NewPoint(rng.Float64()*10-5, rng.Float64()*10-5)
		b := geom.NewPoint(rng.Float64()*10-5, rng.Float64()*10-5)
		if GlobalDominates(q, a, b) {
			checked++
			if !geom.DynDominates(b, a, q) {
				t.Fatalf("global dominance unsound: q=%v a=%v b=%v", q, a, b)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no global dominance pairs sampled; test vacuous")
	}
}

func TestGlobalSkylineSuperset(t *testing.T) {
	items := randItems(200, 2, 31)
	q := geom.NewPoint(50, 50)
	gs := idSet(GlobalSkyline(items, q))
	// Every dynamic skyline point must be in the global skyline.
	for _, it := range Dynamic(items, q) {
		if !gs[it.ID] {
			t.Fatalf("dynamic skyline point %d missing from global skyline", it.ID)
		}
	}
}

func TestApproxDynamic(t *testing.T) {
	items := randItems(2000, 2, 55)
	c := geom.NewPoint(50, 50)
	dsl := Dynamic(items, c)
	if len(dsl) < 6 {
		t.Skipf("need a larger DSL for this test, got %d", len(dsl))
	}
	k := 3
	approx := ApproxDynamic(dsl, c, k, 0)
	if len(approx) > k+1 {
		t.Fatalf("approx DSL has %d points, want ≤ %d", len(approx), k+1)
	}
	// Approx points are a subset of the DSL.
	full := idSet(dsl)
	for _, a := range approx {
		if !full[a.ID] {
			t.Fatalf("approx point %d not in full DSL", a.ID)
		}
	}
	// First and last of the sorted sequence are retained.
	sortedTr := make([]geom.Point, len(dsl))
	for i, it := range dsl {
		sortedTr[i] = it.Point.Transform(c)
	}
	minT, maxT := sortedTr[0][0], sortedTr[0][0]
	for _, tr := range sortedTr {
		if tr[0] < minT {
			minT = tr[0]
		}
		if tr[0] > maxT {
			maxT = tr[0]
		}
	}
	gotMin, gotMax := false, false
	for _, a := range approx {
		tr := a.Point.Transform(c)
		if tr[0] == minT {
			gotMin = true
		}
		if tr[0] == maxT {
			gotMax = true
		}
	}
	if !gotMin || !gotMax {
		t.Fatal("approx DSL must retain the first and last sorted points")
	}
}

func TestApproxDynamicSmallDSL(t *testing.T) {
	items := fig1Points()
	c := geom.NewPoint(8.5, 55)
	dsl := Dynamic(items, c) // 2 points
	approx := ApproxDynamic(dsl, c, 10, 0)
	if len(approx) != len(dsl) {
		t.Fatalf("small DSL should be returned whole: %d vs %d", len(approx), len(dsl))
	}
	if got := ApproxDynamic(dsl, c, 0, 0); len(got) == 0 {
		t.Fatal("k ≤ 0 must be tolerated")
	}
}

// naiveGlobalSkyline is the O(n²) oracle for the orthant-partitioned version.
func naiveGlobalSkyline(items []Item, q geom.Point) []Item {
	var sky []Item
	for i, cand := range items {
		dominated := false
		for j, other := range items {
			if i != j && GlobalDominates(q, other.Point, cand.Point) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, cand)
		}
	}
	return sky
}

func TestGlobalSkylineMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		dims := 2 + trial%2
		items := randItems(300, dims, int64(trial+400))
		q := make(geom.Point, dims)
		for d := range q {
			q[d] = rng.Float64() * 100
		}
		want := idSet(naiveGlobalSkyline(items, q))
		got := idSet(GlobalSkyline(items, q))
		if len(got) != len(want) {
			t.Fatalf("trial %d: fast=%d naive=%d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing %d", trial, id)
			}
		}
	}
}

func TestGlobalSkylineBoundaryPoints(t *testing.T) {
	// Points exactly on q's axes must act as dominators on both sides.
	q := geom.NewPoint(5, 5)
	items := []Item{
		{ID: 1, Point: geom.NewPoint(5, 6)}, // on the vertical axis, dist (0,1)
		{ID: 2, Point: geom.NewPoint(4, 7)}, // left orthant, dist (1,2): globally dominated by 1
		{ID: 3, Point: geom.NewPoint(6, 7)}, // right orthant, dist (1,2): globally dominated by 1
		{ID: 4, Point: geom.NewPoint(3, 5)}, // on the horizontal axis, dist (2,0)
	}
	want := idSet(naiveGlobalSkyline(items, q))
	got := idSet(GlobalSkyline(items, q))
	if len(got) != len(want) {
		t.Fatalf("fast=%v naive=%v", got, want)
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("missing %d (fast=%v naive=%v)", id, got, want)
		}
	}
	if got[2] || got[3] {
		t.Fatal("axis point must dominate both neighbouring orthants")
	}
}

// A record lying exactly at q is the one degenerate case of global
// dominance: its transformed distances are all zero, so it weakly dominates
// every point, yet it only ties window distances and blocks no customer.
// Before the fix it pruned every other candidate, collapsing RSL(q) to just
// itself; the sim harness caught this when a safe-region probe landed a
// query exactly on a surviving record.
func TestGlobalDominanceRecordAtQuery(t *testing.T) {
	q := geom.NewPoint(3, 4)
	atQ := geom.NewPoint(3, 4)
	other := geom.NewPoint(5, 9)
	if GlobalDominates(q, atQ, other) {
		t.Error("a record at q must not globally dominate: it ties every window distance")
	}
	if !GlobalDominates(q, other, geom.NewPoint(7, 11)) {
		t.Error("ordinary same-orthant dominance must still hold")
	}

	// RSL semantics: with a record at q present, every customer whose window
	// membership is unaffected must stay a candidate. Compare the global
	// skyline (scan and BBS) against the brute-force reverse skyline.
	items := randItems(200, 2, 77)
	items = append(items, Item{ID: 9999, Point: append(geom.Point(nil), q...)})
	inRSL := func(c Item) bool {
		for _, p := range items {
			if p.ID != c.ID && geom.DynDominates(c.Point, p.Point, q) {
				return false
			}
		}
		return true
	}
	gs := idSet(GlobalSkyline(items, q))
	bbs := idSet(GlobalSkylineBBS(rtree.BulkLoad(2, items, rtree.Config{}), q))
	members := 0
	for _, c := range items {
		if !inRSL(c) {
			continue
		}
		members++
		if !gs[c.ID] {
			t.Errorf("RSL member %d pruned from GlobalSkyline by the record at q", c.ID)
		}
		if !bbs[c.ID] {
			t.Errorf("RSL member %d pruned from GlobalSkylineBBS by the record at q", c.ID)
		}
		for _, p := range items {
			if p.ID != c.ID && GlobalDominates(q, p.Point, c.Point) {
				t.Errorf("GlobalDominates prunes RSL member %d via product %d", c.ID, p.ID)
			}
		}
	}
	if members < 2 {
		t.Fatalf("test vacuous: only %d RSL members (need the record at q plus others)", members)
	}
}
