// Package skyline implements the skyline machinery the paper builds on:
// static skylines (Definition 1) via block-nested-loops, sort-filter-skyline
// and divide & conquer; the branch-and-bound skyline (BBS) of Papadias et al.
// over an R*-tree; dynamic skylines (Definition 2) computed in the space
// transformed around a centre point; the orthant-aware global skyline used to
// prune reverse-skyline candidates; and the k-sampled approximate dynamic
// skyline of §VI.B.1.
//
// Dominance is strict throughout (≤ in every dimension, < in at least one),
// so duplicate points never dominate each other and are all retained.
package skyline

import (
	"sort"

	"repro/internal/cancel"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rtree"
)

// Item aliases the R-tree item type: an identified point.
type Item = rtree.Item

// Of computes the static skyline of items with the default algorithm (SFS).
func Of(items []Item) []Item { return SFS(items) }

// BNL computes the static skyline with the block-nested-loops algorithm of
// Börzsönyi et al. (ICDE 2001). O(n²) worst case; the baseline oracle in
// tests and benchmarks.
func BNL(items []Item) []Item {
	var window []Item
	dt := 0     // batched dominance-test count, one flush per call
	pruned := 0 // batched discard count, same flush discipline
	for _, cand := range items {
		dominated := false
		keep := window[:0]
		for _, w := range window {
			if dominated {
				keep = append(keep, w)
				continue
			}
			dt++
			if w.Point.Dominates(cand.Point) {
				dominated = true
				keep = append(keep, w)
				continue
			}
			dt++
			if !cand.Point.Dominates(w.Point) {
				keep = append(keep, w)
			} else {
				pruned++
			}
		}
		window = keep
		if !dominated {
			window = append(window, cand)
		} else {
			pruned++
		}
	}
	obs.AddDominanceTests(dt)
	obs.AddPruned(pruned)
	return window
}

// SFS computes the static skyline with sort-filter-skyline: items are sorted
// by a monotone score (coordinate sum) so that no item can dominate an
// earlier one, then filtered against the accumulating skyline.
func SFS(items []Item) []Item {
	sorted := append([]Item(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return coordSum(sorted[i].Point) < coordSum(sorted[j].Point)
	})
	var sky []Item
	dt := 0
	pruned := 0
	for _, cand := range sorted {
		dominated := false
		for _, s := range sky {
			dt++
			if s.Point.Dominates(cand.Point) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, cand)
		} else {
			pruned++
		}
	}
	obs.AddDominanceTests(dt)
	obs.AddPruned(pruned)
	return sky
}

func coordSum(p geom.Point) float64 {
	var s float64
	for _, v := range p {
		s += v
	}
	return s
}

// zeroPoint reports whether every coordinate of p is zero — in transformed
// space, whether the original record lies exactly at the centre.
func zeroPoint(p geom.Point) bool {
	for _, v := range p {
		if v != 0 {
			return false
		}
	}
	return true
}

// DC computes the static skyline by divide & conquer: partition by the median
// of dimension 0, recurse, then filter the high half against the low half.
func DC(items []Item) []Item {
	if len(items) <= 16 {
		return BNL(items)
	}
	vals := make([]float64, len(items))
	for i, it := range items {
		vals[i] = it.Point[0]
	}
	sort.Float64s(vals)
	median := vals[len(vals)/2]
	var lo, hi []Item
	for _, it := range items {
		if it.Point[0] <= median {
			lo = append(lo, it)
		} else {
			hi = append(hi, it)
		}
	}
	if len(lo) == 0 || len(hi) == 0 {
		// Degenerate split (many ties on dim 0): fall back.
		return BNL(items)
	}
	skyLo := DC(lo)
	skyHi := DC(hi)
	out := append([]Item(nil), skyLo...)
	dt := 0
	pruned := 0
	for _, h := range skyHi {
		dominated := false
		for _, l := range skyLo {
			dt++
			if l.Point.Dominates(h.Point) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, h)
		} else {
			pruned++
		}
	}
	obs.AddDominanceTests(dt)
	obs.AddPruned(pruned)
	return out
}

// BBS computes the static skyline with the branch-and-bound skyline algorithm
// over an R*-tree: best-first traversal by coordinate-sum mindist with
// dominance pruning. It accesses only the nodes that can contain skyline
// points.
func BBS(t *rtree.Tree) []Item {
	var sky []Item
	dt := 0 // point-point only; the rect prune below is not a dominance test
	pruned := 0
	dominatedRect := func(r geom.Rect) bool {
		for _, s := range sky {
			if s.Point.WeaklyDominates(r.Lo) && !r.Contains(s.Point) {
				return true
			}
		}
		return false
	}
	t.BestFirst(
		coordSum,
		func(r geom.Rect) float64 { return coordSum(r.Lo) },
		dominatedRect,
		func(it Item, _ float64) bool {
			for _, s := range sky {
				dt++
				if s.Point.Dominates(it.Point) {
					pruned++
					return true
				}
			}
			sky = append(sky, it)
			return true
		},
	)
	obs.AddDominanceTests(dt)
	obs.AddPruned(pruned)
	return sky
}

// Dynamic computes the dynamic skyline of items with respect to centre c
// (Definition 2) by transforming every point with f_i(p) = |c_i − p_i| and
// running SFS in the transformed space. Returned items keep their original
// coordinates. An item whose point equals c exactly maps to the origin of
// the transformed space and dominates everything else.
func Dynamic(items []Item, c geom.Point) []Item {
	type ti struct {
		orig Item
		tr   geom.Point
	}
	ts := make([]ti, len(items))
	for i, it := range items {
		ts[i] = ti{orig: it, tr: it.Point.Transform(c)}
	}
	sort.SliceStable(ts, func(i, j int) bool { return coordSum(ts[i].tr) < coordSum(ts[j].tr) })
	var sky []ti
	dt := 0
	pruned := 0
	for _, cand := range ts {
		dominated := false
		for _, s := range sky {
			dt++
			if s.tr.Dominates(cand.tr) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, cand)
		} else {
			pruned++
		}
	}
	obs.AddDominanceTests(dt)
	obs.AddPruned(pruned)
	out := make([]Item, len(sky))
	for i, s := range sky {
		out[i] = s.orig
	}
	return out
}

// DynamicBBS computes the dynamic skyline with respect to centre c by
// branch-and-bound over the R*-tree, pruning subtrees whose transformed
// bounding boxes are dominated by an already-found skyline point. This is
// the index-backed DSL computation the paper's safe-region construction
// relies on.
func DynamicBBS(t *rtree.Tree, c geom.Point) []Item {
	return DynamicBBSExcluding(t, c, noExclude)
}

// noExclude is an ID no real item carries, making the exclusion filter inert.
const noExclude = -1 << 62

// DynamicBBSChecked is DynamicBBS with cooperative cancellation.
func DynamicBBSChecked(chk *cancel.Checker, t *rtree.Tree, c geom.Point) ([]Item, error) {
	return DynamicBBSExcludingChecked(chk, t, c, noExclude)
}

// DynamicBBSExcluding is DynamicBBS with one record made invisible by ID —
// the monochromatic convention under which a customer's own product record
// does not shape its dynamic skyline. The excluded item neither appears in
// the result nor prunes other points.
func DynamicBBSExcluding(t *rtree.Tree, c geom.Point, excludeID int) []Item {
	out, _ := DynamicBBSExcludingChecked(nil, t, c, excludeID)
	return out
}

// DynamicBBSExcludingChecked is DynamicBBSExcluding with cooperative
// cancellation at node-expansion granularity; a cancelled traversal returns
// the context's error and a nil (not partial) skyline.
func DynamicBBSExcludingChecked(chk *cancel.Checker, t *rtree.Tree, c geom.Point, excludeID int) ([]Item, error) {
	type skyPoint struct {
		orig Item
		tr   geom.Point
	}
	var sky []skyPoint
	prune := func(r geom.Rect) bool {
		trR := r.TransformMinMax(c)
		for _, s := range sky {
			if s.tr.WeaklyDominates(trR.Lo) && !trR.Contains(s.tr) {
				return true
			}
		}
		return false
	}
	var out []Item
	dt := 0
	pruned := 0
	err := t.BestFirstChecked(
		chk,
		func(p geom.Point) float64 { return coordSum(p.Transform(c)) },
		func(r geom.Rect) float64 { return coordSum(r.TransformMinMax(c).Lo) },
		prune,
		func(it Item, _ float64) bool {
			if it.ID == excludeID {
				return true
			}
			tr := it.Point.Transform(c)
			for _, s := range sky {
				dt++
				if s.tr.Dominates(tr) {
					pruned++
					return true
				}
			}
			sky = append(sky, skyPoint{orig: it, tr: tr})
			out = append(out, it)
			return true
		},
	)
	obs.AddDominanceTests(dt)
	obs.AddPruned(pruned)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GlobalDominates reports whether a globally dominates b with respect to
// centre q: a and b lie in the same closed orthant around q and |q−a|
// dominates |q−b|. Global dominance is the sound pruning relation for
// reverse-skyline candidates (Dellis & Seeger, VLDB 2007): if a globally
// dominates b then a dynamically dominates q w.r.t. b, so b ∉ RSL(q).
//
// The one degenerate case is a record lying exactly at q: its transformed
// distances are all zero, so it weakly dominates everything, yet for any
// customer b it only ties |a_i−b_i| = |q_i−b_i| in every dimension — never a
// strict dynamic dominance — so it blocks nobody. (For a ≠ q in the same
// closed orthant the implication is exact: |a_i−q_i| ≤ |b_i−q_i| puts a_i
// between q_i and b_i, and the strict dimension forces a_i ≠ q_i there.)
func GlobalDominates(q, a, b geom.Point) bool {
	atQ := true
	for i := range q {
		if (a[i]-q[i])*(b[i]-q[i]) < 0 {
			return false // strictly opposite sides of q
		}
		if a[i] != q[i] {
			atQ = false
		}
	}
	if atQ {
		return false // a record at q ties every window distance
	}
	return geom.DynDominates(q, a, b)
}

// GlobalSkyline returns the items not globally dominated by any other item
// with respect to q. It is a superset of RSL(q) candidates.
//
// The computation partitions the data by orthant around q: dominators of a
// point must lie in the same closed orthant, with points on an orthant
// boundary (a coordinate equal to q's) acting as dominators on both sides.
// One transformed-space skyline pass per orthant gives O(2^d · n log n)
// instead of the naive O(n²).
func GlobalSkyline(items []Item, q geom.Point) []Item {
	d := len(q)
	groups := 1 << d
	byGroup := make([][]int32, groups)
	canonical := make([]int, len(items))
	// One backing array for every transformed point and a precomputed sort
	// key keep the allocator and the comparator out of the hot path.
	backing := make([]float64, len(items)*d)
	keys := make([]float64, len(items))
	for idx, it := range items {
		tr := backing[idx*d : (idx+1)*d : (idx+1)*d]
		var sum float64
		for i := 0; i < d; i++ {
			v := it.Point[i] - q[i]
			if v < 0 {
				v = -v
			}
			tr[i] = v
			sum += v
		}
		keys[idx] = sum
		// The canonical group takes zero offsets as positive; compatible
		// groups branch on every zero coordinate.
		canon := 0
		var zeros []int
		for i := 0; i < d; i++ {
			switch {
			case it.Point[i] > q[i]:
				canon |= 1 << i
			case it.Point[i] == q[i]:
				canon |= 1 << i
				zeros = append(zeros, i)
			}
		}
		canonical[idx] = canon
		if len(zeros) == 0 {
			byGroup[canon] = append(byGroup[canon], int32(idx))
			continue
		}
		// Enumerate all groups compatible with the point's sign pattern.
		masks := []int{canon}
		for _, z := range zeros {
			for _, m := range masks {
				masks = append(masks, m&^(1<<z))
			}
			masks = masks[:dedupInts(masks)]
		}
		for _, m := range masks {
			byGroup[m] = append(byGroup[m], int32(idx))
		}
	}
	survives := make([]bool, len(items))
	dt := 0
	pruned := 0 // canonical-group eliminations only: each item at most once
	for g := 0; g < groups; g++ {
		ms := byGroup[g]
		if len(ms) == 0 {
			continue
		}
		sort.Slice(ms, func(i, j int) bool { return keys[ms[i]] < keys[ms[j]] })
		var sky []geom.Point
		for _, idx := range ms {
			tr := geom.Point(backing[int(idx)*d : (int(idx)+1)*d])
			dominated := false
			for _, s := range sky {
				dt++
				if s.Dominates(tr) {
					dominated = true
					break
				}
			}
			if !dominated {
				// A record exactly at q (all-zero transform, key 0) is a
				// skyline member but dominates nothing: it ties every
				// customer's window distance in every dimension, so it must
				// not eliminate other candidates (see GlobalDominates).
				if keys[idx] != 0 {
					sky = append(sky, tr)
				}
				if canonical[idx] == g {
					survives[idx] = true
				}
			} else if canonical[idx] == g {
				pruned++
			}
		}
	}
	var out []Item
	for idx, ok := range survives {
		if ok {
			out = append(out, items[idx])
		}
	}
	obs.AddDominanceTests(dt)
	obs.AddPruned(pruned)
	return out
}

// dedupInts compacts duplicates in place and returns the new length.
func dedupInts(a []int) int {
	sort.Ints(a)
	n := 0
	for i, v := range a {
		if i == 0 || v != a[n-1] {
			a[n] = v
			n++
		}
	}
	return n
}

// ApproxDynamic returns the k-sampled approximation of a dynamic skyline
// (§VI.B.1 of the paper): the full DSL is sorted by sortDim in the space
// transformed around c, every ⌈|DSL|/k⌉-th point is kept, and the first and
// last points of the sorted sequence are always retained so that the derived
// anti-dominance region keeps its extreme rectangles (Fig. 16). If the DSL
// has at most k points it is returned in sorted order unchanged.
func ApproxDynamic(dsl []Item, c geom.Point, k, sortDim int) []Item {
	if k <= 0 {
		k = 1
	}
	sorted := append([]Item(nil), dsl...)
	sort.SliceStable(sorted, func(i, j int) bool {
		ti := sorted[i].Point.Transform(c)
		tj := sorted[j].Point.Transform(c)
		if ti[sortDim] != tj[sortDim] {
			return ti[sortDim] < tj[sortDim]
		}
		return coordSum(ti) < coordSum(tj)
	})
	if len(sorted) <= k {
		return sorted
	}
	step := (len(sorted) + k - 1) / k
	if step < 1 {
		step = 1
	}
	var out []Item
	for i := 0; i < len(sorted); i += step {
		out = append(out, sorted[i])
	}
	// Always keep the extremes of the sorted sequence.
	if out[len(out)-1].ID != sorted[len(sorted)-1].ID ||
		!out[len(out)-1].Point.Equal(sorted[len(sorted)-1].Point) {
		out = append(out, sorted[len(sorted)-1])
	}
	return out
}
