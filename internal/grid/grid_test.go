package grid

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/rskyline"
	"repro/internal/rtree"
)

func randItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: i, Point: geom.NewPoint(rng.Float64()*100, rng.Float64()*100)}
	}
	return items
}

func ids(items []Item) []int {
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	sort.Ints(out)
	return out
}

func TestGridMatchesBruteRange(t *testing.T) {
	items := randItems(2000, 1)
	g := New(2, items, 32)
	if g.Len() != 2000 {
		t.Fatalf("Len = %d", g.Len())
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a := geom.NewPoint(rng.Float64()*120-10, rng.Float64()*120-10)
		b := geom.NewPoint(rng.Float64()*120-10, rng.Float64()*120-10)
		q := geom.NewRect(a, b)
		var want []int
		for _, it := range items {
			if q.Contains(it.Point) {
				want = append(want, it.ID)
			}
		}
		sort.Ints(want)
		got := ids(g.RangeQuery(q))
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: id mismatch", trial)
			}
		}
	}
}

func TestGridEmptyAndDegenerate(t *testing.T) {
	g := New(2, nil, 16)
	if g.Len() != 0 {
		t.Fatal("empty grid")
	}
	if _, ok := g.Bounds(); ok {
		t.Fatal("empty grid has no bounds")
	}
	g.Search(geom.NewRect(geom.NewPoint(0, 0), geom.NewPoint(1, 1)), func(Item) bool {
		t.Fatal("search on empty grid yielded an item")
		return false
	})
	// All points identical: degenerate bounds, single cell.
	same := []Item{{ID: 1, Point: geom.NewPoint(5, 5)}, {ID: 2, Point: geom.NewPoint(5, 5)}}
	g2 := New(2, same, 8)
	if got := g2.RangeQuery(geom.PointRect(geom.NewPoint(5, 5))); len(got) != 2 {
		t.Fatalf("degenerate grid query = %d", len(got))
	}
	// Resolution below 1 is clamped.
	g3 := New(2, same, 0)
	if got := len(g3.RangeQuery(geom.PointRect(geom.NewPoint(5, 5)))); got != 2 {
		t.Fatalf("res-0 grid query = %d", got)
	}
}

func TestGridExistsShortCircuit(t *testing.T) {
	items := randItems(1000, 3)
	g := New(2, items, 16)
	all := geom.NewRect(geom.NewPoint(0, 0), geom.NewPoint(100, 100))
	visited := 0
	g.Exists(all, func(Item) bool { visited++; return true })
	if visited != 1 {
		t.Fatalf("Exists visited %d, want 1", visited)
	}
	if g.Exists(all, func(Item) bool { return false }) {
		t.Fatal("unsatisfiable predicate must be false")
	}
}

// The grid's window-existence test agrees with the R-tree's on random data,
// so reverse-skyline verification is index-independent.
func TestGridWindowExistsMatchesRTree(t *testing.T) {
	items := datagen.Generate(datagen.CarDB, 3000, 2, 5)
	g := New(2, items, 48)
	db := rskyline.NewDB(2, items, rtree.Config{})
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		c := items[rng.Intn(len(items))]
		q := items[rng.Intn(len(items))].Point.Clone()
		q[0] *= 1 + 0.1*(rng.Float64()-0.5)
		want := db.WindowExists(c.Point, q, c.ID)
		got := g.WindowExists(c.Point, q, c.ID)
		if got != want {
			t.Fatalf("trial %d: grid=%v rtree=%v (c=%v q=%v)", trial, got, want, c.Point, q)
		}
	}
}
