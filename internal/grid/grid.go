// Package grid implements a uniform-grid point index with the same window
// and existence query surface as the R*-tree. It serves as the baseline
// index in the ablation benchmarks: grids answer window queries well on
// uniform data but degrade on skewed distributions (like CarDB), which is
// exactly why the skyline literature — and the paper — builds on R-trees.
package grid

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Item aliases the R-tree item type.
type Item = rtree.Item

// Index is a fixed-resolution uniform grid over a bounding box. Points
// outside the box at construction time are clamped into the boundary cells.
type Index struct {
	bounds geom.Rect
	dims   int
	res    int // cells per dimension
	cells  map[int][]Item
	size   int
}

// New builds a grid over the items with the given per-dimension resolution
// (≥ 1). The bounding box is the MBR of the items.
func New(dims int, items []Item, resolution int) *Index {
	if resolution < 1 {
		resolution = 1
	}
	g := &Index{dims: dims, res: resolution, cells: make(map[int][]Item)}
	if len(items) == 0 {
		g.bounds = geom.NewRect(make(geom.Point, dims), make(geom.Point, dims))
		return g
	}
	pts := make([]geom.Point, len(items))
	for i, it := range items {
		pts[i] = it.Point
	}
	g.bounds = geom.MBR(pts)
	for _, it := range items {
		key := g.cellKey(g.coords(it.Point))
		g.cells[key] = append(g.cells[key], it)
	}
	g.size = len(items)
	return g
}

// Len returns the number of stored items.
func (g *Index) Len() int { return g.size }

// Bounds returns the grid extent; ok is false when empty.
func (g *Index) Bounds() (geom.Rect, bool) {
	if g.size == 0 {
		return geom.Rect{}, false
	}
	return g.bounds, true
}

// coords maps a point to per-dimension cell indices, clamped into range.
func (g *Index) coords(p geom.Point) []int {
	out := make([]int, g.dims)
	for i := 0; i < g.dims; i++ {
		span := g.bounds.Hi[i] - g.bounds.Lo[i]
		if span <= 0 {
			out[i] = 0
			continue
		}
		c := int(math.Floor((p[i] - g.bounds.Lo[i]) / span * float64(g.res)))
		if c < 0 {
			c = 0
		}
		if c >= g.res {
			c = g.res - 1
		}
		out[i] = c
	}
	return out
}

func (g *Index) cellKey(coords []int) int {
	key := 0
	for _, c := range coords {
		key = key*g.res + c
	}
	return key
}

// Search invokes fn for every item inside the closed query rectangle,
// stopping early if fn returns false.
func (g *Index) Search(query geom.Rect, fn func(Item) bool) {
	if g.size == 0 {
		return
	}
	lo := g.coords(query.Lo)
	hi := g.coords(query.Hi)
	// Iterate the covered cell block with an odometer.
	idx := append([]int(nil), lo...)
	for {
		for _, it := range g.cells[g.cellKey(idx)] {
			if query.Contains(it.Point) {
				if !fn(it) {
					return
				}
			}
		}
		// Advance.
		d := g.dims - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] <= hi[d] {
				break
			}
			idx[d] = lo[d]
		}
		if d < 0 {
			return
		}
	}
}

// RangeQuery collects all items in the closed rectangle.
func (g *Index) RangeQuery(query geom.Rect) []Item {
	var out []Item
	g.Search(query, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// Exists reports whether any item in the rectangle satisfies pred (nil
// matches everything), short-circuiting at the first hit.
func (g *Index) Exists(query geom.Rect, pred func(Item) bool) bool {
	found := false
	g.Search(query, func(it Item) bool {
		if pred == nil || pred(it) {
			found = true
			return false
		}
		return true
	})
	return found
}

// WindowExists is the reverse-skyline window-existence test on the grid: it
// reports whether any product inside window_query(c, q) dynamically
// dominates q with respect to c (excludeID invisible).
func (g *Index) WindowExists(c, q geom.Point, excludeID int) bool {
	return g.Exists(geom.WindowRect(c, q), func(it Item) bool {
		return it.ID != excludeID && geom.DynDominates(c, it.Point, q)
	})
}
