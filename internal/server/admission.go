package server

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// AdmissionConfig tunes the token-based admission controller. Zero fields get
// the documented defaults.
type AdmissionConfig struct {
	// MaxConcurrent is the number of execution tokens: queries running the
	// engine at once. Default: 2×GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds the wait queue of admitted-but-waiting requests; a
	// request arriving to a full queue is shed immediately. Default: 8×
	// MaxConcurrent.
	MaxQueue int
	// InitialEstimate seeds the service-time EWMA used for deadline-aware
	// shedding before any request has completed. Default: 25ms.
	InitialEstimate time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8 * c.MaxConcurrent
	}
	if c.InitialEstimate <= 0 {
		c.InitialEstimate = 25 * time.Millisecond
	}
	return c
}

// Shed reasons, used as metric labels and in shed responses.
const (
	ShedQueueFull = "queue_full"
	ShedDeadline  = "deadline"
	ShedCanceled  = "canceled"
	ShedDraining  = "draining"
)

// ErrShed reports a load-shedding decision: the request was refused without
// running any query work. RetryAfter is the controller's estimate of when
// capacity will be available — HTTP handlers surface it as a Retry-After
// header on the 429.
type ErrShed struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *ErrShed) Error() string {
	return fmt.Sprintf("request shed (%s), retry after %s", e.Reason, e.RetryAfter)
}

// RetryAfterSeconds renders RetryAfter for the HTTP header: whole seconds,
// rounded up, at least 1.
func (e *ErrShed) RetryAfterSeconds() int {
	s := int((e.RetryAfter + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// Admission is a token-based admission controller with a bounded wait queue
// and deadline-aware load shedding.
//
// Up to MaxConcurrent requests hold execution tokens at once; up to MaxQueue
// more wait for one. A request is shed — refused before any query work — when
// the queue is full, when the estimated queue wait already exceeds the
// request's own deadline (admitting it would burn a token on an answer the
// client will never see), or when its context dies while queued. The wait
// estimate is queue position × an EWMA of observed service times / token
// count, which also prices the Retry-After hint handed back to shed clients.
type Admission struct {
	cfg    AdmissionConfig
	tokens chan struct{}
	queued atomic.Int64
	// ewmaNanos is the exponential moving average of observed token-holding
	// times (α = 1/8, integer arithmetic).
	ewmaNanos atomic.Int64
	// jitter samples [0, 1) for Retry-After spreading; swapped for a
	// deterministic source in tests.
	jitter func() float64

	m *Metrics
}

// NewAdmission builds an admission controller. m may be nil (no metrics).
func NewAdmission(cfg AdmissionConfig, m *Metrics) *Admission {
	cfg = cfg.withDefaults()
	a := &Admission{cfg: cfg, tokens: make(chan struct{}, cfg.MaxConcurrent), m: m, jitter: rand.Float64}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		a.tokens <- struct{}{}
	}
	a.ewmaNanos.Store(int64(cfg.InitialEstimate))
	return a
}

// QueueDepth returns the number of requests currently waiting for a token.
func (a *Admission) QueueDepth() int { return int(a.queued.Load()) }

// InFlight returns the number of requests currently holding a token.
func (a *Admission) InFlight() int { return a.cfg.MaxConcurrent - len(a.tokens) }

// EstimatedWait is the controller's current estimate of how long a newly
// queued request would wait for a token.
func (a *Admission) EstimatedWait() time.Duration {
	return a.waitEstimate(a.queued.Load() + 1)
}

// ServiceEstimate is the current EWMA of token-holding times.
func (a *Admission) ServiceEstimate() time.Duration {
	return time.Duration(a.ewmaNanos.Load())
}

func (a *Admission) waitEstimate(position int64) time.Duration {
	perToken := a.ewmaNanos.Load()
	return time.Duration(position * perToken / int64(a.cfg.MaxConcurrent))
}

func (a *Admission) observeService(d time.Duration) {
	// ewma += (sample - ewma) / 8. A stale read under contention only makes
	// one update slightly off; the average still converges.
	old := a.ewmaNanos.Load()
	a.ewmaNanos.Store(old + (int64(d)-old)/8)
}

// Acquire admits one request: it returns a release closure once the request
// holds an execution token, or an *ErrShed when the request was refused. The
// closure must be called exactly once, when the request's query work is done;
// the observed holding time feeds the wait estimator.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	grant := func() func() {
		start := obs.Now()
		var released atomic.Bool
		return func() {
			if released.Swap(true) {
				return
			}
			a.observeService(obs.Since(start))
			a.tokens <- struct{}{}
		}
	}

	// Fast path: a token is free, no queueing at all.
	select {
	case <-a.tokens:
		return grant(), nil
	default:
	}

	// Bounded queue: refuse immediately rather than building an unbounded
	// backlog of doomed waiters.
	pos := a.queued.Add(1)
	defer a.queued.Add(-1)
	if pos > int64(a.cfg.MaxQueue) {
		return nil, a.shed(ShedQueueFull, a.waitEstimate(pos))
	}

	// Deadline-aware shedding: if the estimated wait alone would consume the
	// request's whole budget, shedding now is strictly better for everyone —
	// this client gets an honest Retry-After instead of a guaranteed timeout,
	// and the token goes to a request that can still make its deadline.
	est := a.waitEstimate(pos)
	if dl, ok := ctx.Deadline(); ok && est > time.Until(dl) {
		return nil, a.shed(ShedDeadline, est)
	}

	waitStart := obs.Now()
	select {
	case <-a.tokens:
		if a.m != nil {
			a.m.QueueWait.ObserveSince(waitStart)
		}
		return grant(), nil
	case <-ctx.Done():
		reason := ShedCanceled
		if ctx.Err() == context.DeadlineExceeded {
			reason = ShedDeadline
		}
		return nil, a.shed(reason, a.waitEstimate(a.queued.Load()))
	}
}

func (a *Admission) shed(reason string, retryAfter time.Duration) *ErrShed {
	// Round the wait estimate up to the 1-second floor first — a truncated
	// sub-second estimate must never surface as "Retry-After: 0", which tells
	// the client to hammer immediately — then spread it with up to +50%
	// jitter: a shed burst answered with identical Retry-After values comes
	// back as a synchronized retry storm exactly one period later.
	if retryAfter < time.Second {
		retryAfter = time.Second
	}
	retryAfter += time.Duration(a.jitter() * float64(retryAfter) / 2)
	if a.m != nil {
		a.m.Sheds.With(reason).Inc()
	}
	return &ErrShed{Reason: reason, RetryAfter: retryAfter}
}
