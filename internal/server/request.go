package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Request-size and parameter bounds. The decoder rejects anything outside
// them before a byte of query work happens, so a malformed or adversarial
// request costs parsing only.
const (
	// MaxBodyBytes bounds the request body read by every JSON endpoint.
	MaxBodyBytes = 1 << 20
	// MaxDims bounds the dimensionality of query points and generated
	// datasets (the algorithms are exponential in dimensionality; anything
	// past this is a typo or an attack, not a workload).
	MaxDims = 16
	// MaxGenerateN bounds the size of a generated dataset accepted by
	// /v1/admin/reload.
	MaxGenerateN = 2_000_000
	// MaxK bounds the approximate-store sampling constant.
	MaxK = 4096
	// MaxTimeoutMS bounds the per-request deadline a client may ask for.
	MaxTimeoutMS = 60_000
)

// BadRequestError marks request validation failures (HTTP 400) as opposed to
// execution failures.
type BadRequestError struct{ Msg string }

func (e *BadRequestError) Error() string { return e.Msg }

func badRequestf(format string, args ...any) error {
	return &BadRequestError{Msg: fmt.Sprintf(format, args...)}
}

// WhyNotRequest is the body of POST /v1/whynot: answer the why-not question
// for one customer against query point Q, walking the exact→approx→MWP
// degradation ladder.
type WhyNotRequest struct {
	// Q is the query point (product position), one coordinate per dimension.
	Q []float64 `json:"q"`
	// CustomerID names the why-not customer by dataset ID.
	CustomerID int `json:"customer_id"`
	// TimeoutMS optionally bounds this request's end-to-end deadline in
	// milliseconds; 0 uses the server default. Values above the server cap
	// are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace, when true, returns the per-query span/event trace in the
	// response.
	Trace bool `json:"trace,omitempty"`
}

// RSkylineRequest is the body of POST /v1/rskyline: compute RSL(Q) over the
// current dataset's customers.
type RSkylineRequest struct {
	Q         []float64 `json:"q"`
	TimeoutMS int64     `json:"timeout_ms,omitempty"`
}

// GenerateSpec describes a synthetic dataset (the paper's UN/CO/AC families
// plus CarDB) for /v1/admin/reload and server bootstrap.
type GenerateSpec struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
	Dims int    `json:"dims"`
	Seed int64  `json:"seed"`
}

// ReloadRequest is the body of POST /v1/admin/reload: replace the serving
// dataset with a freshly built immutable snapshot, atomically and with zero
// downtime. Exactly one of Path and Generate must be set.
type ReloadRequest struct {
	// Path loads a CSV dataset from the server's filesystem.
	Path string `json:"path,omitempty"`
	// Generate builds a synthetic dataset in-process.
	Generate *GenerateSpec `json:"generate,omitempty"`
	// BuildStore additionally precomputes the approximate safe-region store
	// (§VI.B.1) for the new snapshot, enabling the ladder's approx rung.
	BuildStore bool `json:"build_store,omitempty"`
	// K is the approximate-store sampling constant (default 10).
	K int `json:"k,omitempty"`
}

// InsertRequest is the body of POST /v1/admin/insert: durably add one item.
type InsertRequest struct {
	// ID is the new item's dataset ID; must not collide with a present item.
	ID int `json:"id"`
	// Point is the item's position, one coordinate per dimension.
	Point []float64 `json:"point"`
}

// DeleteRequest is the body of POST /v1/admin/delete: durably remove one item
// by ID. Point, when given, must match the stored position (stale-client
// protection); when omitted the ID alone decides.
type DeleteRequest struct {
	ID    int       `json:"id"`
	Point []float64 `json:"point,omitempty"`
}

// decodeStrict parses exactly one JSON value from r, rejecting unknown fields
// and trailing garbage. It is the shared front door of every POST endpoint
// (and the fuzz target's entry point).
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("invalid JSON body: %v", err)
	}
	// A second Decode must hit EOF: two JSON documents in one body is a
	// malformed request, not a batch.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return badRequestf("trailing data after JSON body")
	}
	return nil
}

// validatePoint checks a query point for serving: present, bounded
// dimensionality, and finite coordinates (NaN/Inf poison every dominance
// comparison downstream).
func validatePoint(q []float64) error {
	if len(q) == 0 {
		return badRequestf("missing query point q")
	}
	if len(q) > MaxDims {
		return badRequestf("q has %d dimensions, limit is %d", len(q), MaxDims)
	}
	for i, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return badRequestf("q[%d] is %v; coordinates must be finite", i, v)
		}
	}
	return nil
}

func validateTimeout(ms int64) error {
	if ms < 0 {
		return badRequestf("timeout_ms must be non-negative")
	}
	return nil
}

// DecodeWhyNotRequest parses and validates a /v1/whynot body.
func DecodeWhyNotRequest(r io.Reader) (WhyNotRequest, error) {
	var req WhyNotRequest
	if err := decodeStrict(r, &req); err != nil {
		return WhyNotRequest{}, err
	}
	if err := validatePoint(req.Q); err != nil {
		return WhyNotRequest{}, err
	}
	if req.CustomerID < 0 {
		return WhyNotRequest{}, badRequestf("customer_id must be non-negative")
	}
	if err := validateTimeout(req.TimeoutMS); err != nil {
		return WhyNotRequest{}, err
	}
	return req, nil
}

// DecodeRSkylineRequest parses and validates a /v1/rskyline body.
func DecodeRSkylineRequest(r io.Reader) (RSkylineRequest, error) {
	var req RSkylineRequest
	if err := decodeStrict(r, &req); err != nil {
		return RSkylineRequest{}, err
	}
	if err := validatePoint(req.Q); err != nil {
		return RSkylineRequest{}, err
	}
	if err := validateTimeout(req.TimeoutMS); err != nil {
		return RSkylineRequest{}, err
	}
	return req, nil
}

// DecodeInsertRequest parses and validates a /v1/admin/insert body.
func DecodeInsertRequest(r io.Reader) (InsertRequest, error) {
	var req InsertRequest
	if err := decodeStrict(r, &req); err != nil {
		return InsertRequest{}, err
	}
	if req.ID < 0 {
		return InsertRequest{}, badRequestf("id must be non-negative")
	}
	if err := validatePoint(req.Point); err != nil {
		return InsertRequest{}, err
	}
	return req, nil
}

// DecodeDeleteRequest parses and validates a /v1/admin/delete body.
func DecodeDeleteRequest(r io.Reader) (DeleteRequest, error) {
	var req DeleteRequest
	if err := decodeStrict(r, &req); err != nil {
		return DeleteRequest{}, err
	}
	if req.ID < 0 {
		return DeleteRequest{}, badRequestf("id must be non-negative")
	}
	if len(req.Point) > 0 {
		if err := validatePoint(req.Point); err != nil {
			return DeleteRequest{}, err
		}
	}
	return req, nil
}

// DecodeReloadRequest parses and validates a /v1/admin/reload body.
func DecodeReloadRequest(r io.Reader) (ReloadRequest, error) {
	var req ReloadRequest
	if err := decodeStrict(r, &req); err != nil {
		return ReloadRequest{}, err
	}
	switch {
	case req.Path == "" && req.Generate == nil:
		return ReloadRequest{}, badRequestf("reload needs path or generate")
	case req.Path != "" && req.Generate != nil:
		return ReloadRequest{}, badRequestf("reload takes path or generate, not both")
	}
	if g := req.Generate; g != nil {
		if g.N < 1 || g.N > MaxGenerateN {
			return ReloadRequest{}, badRequestf("generate.n must be in [1, %d]", MaxGenerateN)
		}
		if g.Dims < 1 || g.Dims > MaxDims {
			return ReloadRequest{}, badRequestf("generate.dims must be in [1, %d]", MaxDims)
		}
		if g.Kind == "" {
			return ReloadRequest{}, badRequestf("generate.kind is required")
		}
	}
	if req.K < 0 || req.K > MaxK {
		return ReloadRequest{}, badRequestf("k must be in [0, %d]", MaxK)
	}
	return req, nil
}
