package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cancel"
	"repro/internal/engine/faultinject"
	"repro/internal/obs/flight"
)

// waitFlightQuiesce polls until every begun record has finished (handlers
// close records in deferred functions that can run just after the response
// bytes are visible to the client).
func waitFlightQuiesce(t *testing.T, s *Server) flight.Totals {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		tot := s.FlightRecorder().Totals()
		if tot.Started == tot.Finished && tot.InFlight == 0 {
			return tot
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight ledger did not quiesce: %+v", tot)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFlightDegradedAttribution is the acceptance check for the recorder's
// attribution: a fault-injected degraded query must leave one record naming
// the rung that answered, the rungs that were attempted, why the ladder fell
// through, and must be tail-sampled with its trace attached.
func TestFlightDegradedAttribution(t *testing.T) {
	inj := faultinject.New(faultinject.Rule{Site: cancel.SiteSafeRegion, Panic: "injected exact-rung bug"})
	s := newTestServer(t, func(c *Config) { c.Hook = inj })
	db, items := testDB(t, testDatasetN)
	q, ct, _ := testQuery(t, db, items)

	w, body := do(t, s, "POST", "/v1/whynot",
		fmt.Sprintf(`{"q":[%g,%g],"customer_id":%d}`, q[0], q[1], ct.ID))
	if w.Code != 200 || body["degraded"] != true {
		t.Fatalf("faulted request = %d %v, want 200 degraded", w.Code, body)
	}
	waitFlightQuiesce(t, s)

	recent := s.FlightRecorder().Recent(1)
	if len(recent) != 1 {
		t.Fatalf("ledger holds %d records, want 1", len(recent))
	}
	rec := recent[0]
	if rec.Op != "whynot" || rec.Source != "http" {
		t.Errorf("record op/source = %s/%s, want whynot/http", rec.Op, rec.Source)
	}
	if rec.Outcome != flight.OutcomeOK {
		t.Errorf("outcome = %q, want ok (a degraded answer is still an answer)", rec.Outcome)
	}
	if !rec.Degraded || rec.Rung != "mwp" {
		t.Errorf("degraded=%v rung=%q, want degraded mwp", rec.Degraded, rec.Rung)
	}
	if rec.Admission != "admitted" {
		t.Errorf("admission = %q, want admitted", rec.Admission)
	}
	var attempted []string
	for _, a := range rec.Attempts {
		attempted = append(attempted, a.Rung)
	}
	if len(attempted) < 2 || attempted[0] != "exact" || attempted[len(attempted)-1] != "mwp" {
		t.Errorf("rung attempts = %v, want exact first and mwp last", attempted)
	}
	if len(rec.DegradeReasons) == 0 || !strings.Contains(strings.Join(rec.DegradeReasons, " "), "panic") {
		t.Errorf("degrade reasons = %v, want the injected panic", rec.DegradeReasons)
	}
	if !rec.Sampled || rec.SampleReason != flight.SampleDegraded {
		t.Errorf("sampled=%v reason=%q, want sampled as degraded", rec.Sampled, rec.SampleReason)
	}
	if len(rec.Trace) == 0 {
		t.Error("sampled degraded record has no trace spans")
	}
	if rec.Cost.DominanceTests == 0 {
		t.Errorf("cost delta = %+v, want non-zero dominance tests for an MWQ", rec.Cost)
	}
	if rec.SnapshotSeq == 0 {
		t.Error("record lacks the serving snapshot seq")
	}
	if rec.ParamsDigest == "" {
		t.Error("record lacks a params digest")
	}

	// The debug endpoint redacts raw parameters by default and returns them
	// only under ?raw=1.
	w, body = do(t, s, "GET", "/v1/debug/queries", "")
	if w.Code != 200 || body["redacted"] != true {
		t.Fatalf("debug queries = %d %v, want 200 redacted", w.Code, body)
	}
	first := body["recent"].([]any)[0].(map[string]any)
	if _, leaked := first["params"]; leaked {
		t.Error("default debug rendering leaked raw params")
	}
	if first["params_digest"] == "" {
		t.Error("redacted record lost its params digest")
	}
	if first["sample_reason"] != "degraded" {
		t.Errorf("debug record sample_reason = %v, want degraded", first["sample_reason"])
	}
	w, body = do(t, s, "GET", "/v1/debug/queries?raw=1", "")
	first = body["recent"].([]any)[0].(map[string]any)
	if w.Code != 200 || !strings.Contains(first["params"].(string), "customer=") {
		t.Errorf("?raw=1 record params = %v, want the raw parameter string", first["params"])
	}
}

// TestFlightInFlightInspector holds a query inside the exact rung via an
// injected stall and watches it through GET /v1/debug/queries while it runs.
func TestFlightInFlightInspector(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	inj := faultinject.New(faultinject.Rule{Site: cancel.SiteSafeRegion, Do: func() {
		once.Do(func() { <-release })
	}})
	s := newTestServer(t, func(c *Config) { c.Hook = inj })
	db, items := testDB(t, testDatasetN)
	q, ct, _ := testQuery(t, db, items)

	done := make(chan int, 1)
	go func() {
		w, _ := do(t, s, "POST", "/v1/whynot",
			fmt.Sprintf(`{"q":[%g,%g],"customer_id":%d}`, q[0], q[1], ct.ID))
		done <- w.Code
	}()

	// The query is parked at the safe-region checkpoint; the inspector must
	// show it in flight with its identity (but only the params digest).
	var seen map[string]any
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, body := do(t, s, "GET", "/v1/debug/queries", "")
		if inflight, ok := body["in_flight"].([]any); ok && len(inflight) == 1 {
			seen = inflight[0].(map[string]any)
			break
		}
		if time.Now().After(deadline) {
			close(release)
			t.Fatal("stalled query never appeared in the in-flight inspector")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if seen["op"] != "whynot" || seen["source"] != "http" {
		t.Errorf("in-flight entry = %v, want op whynot source http", seen)
	}
	if seen["params_digest"] == "" {
		t.Error("in-flight entry lacks the params digest")
	}
	if seen["age_ms"].(float64) < 0 {
		t.Errorf("in-flight age = %v, want ≥ 0", seen["age_ms"])
	}

	// The text rendering serves the same view for humans.
	req := httptest.NewRequest("GET", "/v1/debug/queries?format=text", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != 200 || !strings.Contains(w.Body.String(), "whynot") {
		t.Errorf("text inspector = %d %q, want the in-flight query listed", w.Code, w.Body.String())
	}

	close(release)
	if code := <-done; code != 200 {
		t.Fatalf("stalled query finished with %d, want 200", code)
	}
	waitFlightQuiesce(t, s)
	if got := len(s.FlightRecorder().InFlight()); got != 0 {
		t.Fatalf("%d queries still in flight after completion", got)
	}
}

// TestFlightStatusAndMetricsSurfaces: the ledger and SLO tracker publish into
// /v1/admin/status and /metrics; disabling the recorder turns the debug
// endpoint into a 404 while SLO tracking stays alive.
func TestFlightStatusAndMetricsSurfaces(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.SLOs = []flight.Objective{{Op: "*", Latency: time.Second, Target: 0.99}}
	})
	db, items := testDB(t, testDatasetN)
	q, ct, _ := testQuery(t, db, items)
	if w, _ := do(t, s, "POST", "/v1/whynot",
		fmt.Sprintf(`{"q":[%g,%g],"customer_id":%d}`, q[0], q[1], ct.ID)); w.Code != 200 {
		t.Fatalf("whynot = %d", w.Code)
	}
	waitFlightQuiesce(t, s)

	_, body := do(t, s, "GET", "/v1/admin/status", "")
	fl, ok := body["flight"].(map[string]any)
	if !ok {
		t.Fatalf("status has no flight section: %v", body)
	}
	totals := fl["totals"].(map[string]any)
	if totals["started"].(float64) != 1 || totals["finished"].(float64) != 1 {
		t.Errorf("status flight totals = %v, want 1 started / 1 finished", totals)
	}
	slo, ok := body["slo"].([]any)
	if !ok || len(slo) != 1 {
		t.Fatalf("status has no slo section: %v", body["slo"])
	}
	w5 := slo[0].(map[string]any)["window_5m"].(map[string]any)
	if w5["good"].(float64) != 1 || w5["bad"].(float64) != 0 {
		t.Errorf("slo 5m window = %v, want 1 good / 0 bad", w5)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, req)
	metrics := rw.Body.String()
	for _, name := range []string{"flight_started_total", "flight_records_total", "slo_burn_rate_5m", "slo_burn_rate_1h"} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics lacks %s", name)
		}
	}

	// FlightSize < 0 disables the recorder; SLOs still work.
	off := newTestServer(t, func(c *Config) {
		c.FlightSize = -1
		c.SLOs = []flight.Objective{{Op: "*", Latency: time.Second, Target: 0.99}}
	})
	if off.FlightRecorder() != nil {
		t.Fatal("FlightSize -1 left the recorder enabled")
	}
	if w, _ := do(t, off, "GET", "/v1/debug/queries", ""); w.Code != 404 {
		t.Errorf("debug queries with recorder disabled = %d, want 404", w.Code)
	}
	if w, _ := do(t, off, "POST", "/v1/whynot",
		fmt.Sprintf(`{"q":[%g,%g],"customer_id":%d}`, q[0], q[1], ct.ID)); w.Code != 200 {
		t.Fatalf("whynot with recorder disabled = %d, want 200", w.Code)
	}
	_, body = do(t, off, "GET", "/v1/admin/status", "")
	if _, has := body["flight"]; has {
		t.Error("disabled recorder still renders a flight section")
	}
	if slo := body["slo"].([]any); len(slo) != 1 {
		t.Error("SLO tracking died with the recorder")
	}
}

// TestFlightLedgerConcurrency drives mixed valid and invalid queries,
// mutations, reloads and debug scrapes concurrently (run under -race via
// race-core), then checks the ledger's books: exactly one terminal record per
// request that passed validation, none for rejected requests, and no bad or
// degraded record without its trace.
func TestFlightLedgerConcurrency(t *testing.T) {
	dir := t.TempDir()
	slowlog := filepath.Join(dir, "slow.jsonl")
	s := newTestServer(t, func(c *Config) {
		c.SlowlogPath = slowlog
		c.SLOs = []flight.Objective{{Op: "whynot", Latency: time.Second, Target: 0.99}}
	})
	db, items := testDB(t, testDatasetN)
	q, ct, _ := testQuery(t, db, items)

	const (
		workers = 6
		rounds  = 25
	)
	var expectRecords atomic.Int64 // requests that pass validation → must leave a record
	var workerWG, auxWG sync.WaitGroup
	reloadBody := fmt.Sprintf(`{"generate":{"kind":"UN","n":%d,"dims":2,"seed":7}}`, testDatasetN)
	for wk := 0; wk < workers; wk++ {
		workerWG.Add(1)
		go func(wk int) {
			defer workerWG.Done()
			for i := 0; i < rounds; i++ {
				switch i % 5 {
				case 0: // valid whynot
					do(t, s, "POST", "/v1/whynot",
						fmt.Sprintf(`{"q":[%g,%g],"customer_id":%d}`, q[0], q[1], ct.ID))
					expectRecords.Add(1)
				case 1: // unknown customer: 404 before admission, no record
					w, _ := do(t, s, "POST", "/v1/whynot",
						fmt.Sprintf(`{"q":[%g,%g],"customer_id":99999999}`, q[0], q[1]))
					if w.Code != 404 {
						t.Errorf("unknown customer = %d, want 404", w.Code)
					}
				case 2: // wrong dims: 400 before admission, no record
					w, _ := do(t, s, "POST", "/v1/rskyline", `{"q":[1,2,3]}`)
					if w.Code != 400 {
						t.Errorf("bad dims = %d, want 400", w.Code)
					}
				case 3: // valid rskyline
					do(t, s, "POST", "/v1/rskyline", fmt.Sprintf(`{"q":[%g,%g]}`, q[0], q[1]))
					expectRecords.Add(1)
				case 4: // memory-only insert with a unique ID (bypasses admission)
					w, _ := do(t, s, "POST", "/v1/admin/insert",
						fmt.Sprintf(`{"id":%d,"point":[1,2]}`, 1_000_000+wk*rounds+i))
					if w.Code != 200 {
						t.Errorf("insert = %d, want 200", w.Code)
					}
					expectRecords.Add(1)
				}
			}
		}(wk)
	}
	// A reloader hot-swaps the (identical) dataset so snapshot seqs advance
	// under the queries without invalidating the test customer, and scrapers
	// read both renderings of the debug endpoint while the ledger churns —
	// the race detector patrols these reads.
	stop := make(chan struct{})
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				do(t, s, "POST", "/v1/admin/reload", reloadBody)
			}
		}
	}()
	for i := 0; i < 2; i++ {
		auxWG.Add(1)
		go func() {
			defer auxWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					do(t, s, "GET", "/v1/debug/queries?limit=10", "")
					req := httptest.NewRequest("GET", "/v1/debug/queries?format=text", nil)
					s.Handler().ServeHTTP(httptest.NewRecorder(), req)
					do(t, s, "GET", "/v1/admin/status", "")
				}
			}
		}()
	}

	workerWG.Wait()
	close(stop)
	auxWG.Wait()

	tot := waitFlightQuiesce(t, s)
	if tot.Started != uint64(expectRecords.Load()) {
		t.Errorf("ledger started %d records, want %d (one per request that passed validation)",
			tot.Started, expectRecords.Load())
	}
	if tot.Started != tot.Finished || tot.InFlight != 0 {
		t.Errorf("leaked records: %+v", tot)
	}
	for _, rec := range s.FlightRecorder().Recent(0) {
		bad := rec.Outcome != flight.OutcomeOK && rec.Outcome != flight.OutcomeCanceled
		if (bad || rec.Degraded) && !rec.Sampled {
			t.Errorf("bad/degraded record #%d (%s, outcome %s) lost its trace", rec.ID, rec.Op, rec.Outcome)
		}
	}

	// The slow log (fed by head samples here) must hold valid schema-stamped
	// JSON lines.
	if buf, err := os.ReadFile(slowlog); err == nil && len(buf) > 0 {
		for _, line := range strings.Split(strings.TrimSpace(string(buf)), "\n") {
			var rec flight.QueryRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("slowlog line %q: %v", line, err)
			}
			if rec.Schema != flight.SchemaVersion {
				t.Fatalf("slowlog line with schema %d, want %d", rec.Schema, flight.SchemaVersion)
			}
		}
	}
}
