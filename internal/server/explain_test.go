package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestWhyNotExplainResponse: ?explain=1 attaches the structured plan and its
// rendering to the response; without it the response stays lean — but the
// fingerprint store classifies every admitted query either way, and its
// classes (and the cost model's calibration) survive a dataset hot-swap
// because both live on the server, not the snapshot.
func TestWhyNotExplainResponse(t *testing.T) {
	s := newTestServer(t, nil)
	db, items := testDB(t, testDatasetN)
	q, ct, _ := testQuery(t, db, items)
	body := fmt.Sprintf(`{"q":[%g,%g],"customer_id":%d}`, q[0], q[1], ct.ID)

	w, resp := do(t, s, "POST", "/v1/whynot", body)
	if w.Code != 200 {
		t.Fatalf("whynot = %d: %v", w.Code, resp)
	}
	if _, ok := resp["plan"]; ok {
		t.Error("plan attached without explain=1")
	}

	w, resp = do(t, s, "POST", "/v1/whynot?explain=1", body)
	if w.Code != 200 {
		t.Fatalf("whynot?explain=1 = %d: %v", w.Code, resp)
	}
	plan, ok := resp["plan"].(map[string]any)
	if !ok {
		t.Fatalf("response has no structured plan: %v", resp)
	}
	if plan["op"] != "whynot" || plan["fingerprint"] == "" {
		t.Errorf("plan op/fingerprint = %v/%v", plan["op"], plan["fingerprint"])
	}
	text, _ := resp["plan_text"].(string)
	if !strings.HasPrefix(text, "plan whynot dims=2") || !strings.Contains(text, "rule=") {
		t.Errorf("plan_text = %q, want rendered tree", text)
	}

	w, resp = do(t, s, "GET", "/v1/debug/fingerprints", "")
	if w.Code != 200 {
		t.Fatalf("fingerprints = %d", w.Code)
	}
	classes, _ := resp["classes"].([]any)
	if len(classes) == 0 {
		t.Fatal("no fingerprint classes after two admitted queries")
	}
	c0 := classes[0].(map[string]any)
	if c0["op"] != "whynot" || c0["count"].(float64) < 2 {
		t.Errorf("class = %v, want op=whynot count>=2 (plans built even without explain=1)", c0)
	}

	// Hot-swap the dataset; the store and calibration must survive.
	w, resp = do(t, s, "POST", "/v1/admin/reload",
		fmt.Sprintf(`{"generate":{"kind":"UN","n":%d,"dims":2,"seed":7}}`, testDatasetN))
	if w.Code != 200 {
		t.Fatalf("reload = %d: %v", w.Code, resp)
	}
	w, resp = do(t, s, "GET", "/v1/debug/fingerprints", "")
	if w.Code != 200 {
		t.Fatalf("fingerprints after reload = %d", w.Code)
	}
	if after, _ := resp["classes"].([]any); len(after) != len(classes) {
		t.Errorf("reload dropped fingerprint classes: %d -> %d", len(classes), len(after))
	}
	cal, _ := resp["calibration"].(map[string]any)
	if len(cal) == 0 {
		t.Error("calibration block empty after reload")
	}

	req := httptest.NewRequest("GET", "/v1/debug/fingerprints?format=text", nil)
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, req)
	if rw.Code != 200 || !strings.Contains(rw.Body.String(), "fingerprint classes") {
		t.Errorf("text rendering = %d %q", rw.Code, rw.Body.String())
	}
}

// TestFingerprintDebugConcurrency hammers /v1/debug/queries and
// /v1/debug/fingerprints while query traffic (with and without explain=1),
// inserts and dataset reloads mutate everything they read. Run under -race
// via race-core. Every scrape must decode as valid JSON with internally
// consistent classes (no torn reads), and the store must stay bounded.
func TestFingerprintDebugConcurrency(t *testing.T) {
	s := newTestServer(t, nil)
	db, items := testDB(t, testDatasetN)
	q, ct, _ := testQuery(t, db, items)

	const (
		workers = 4
		rounds  = 20
	)
	var workerWG, auxWG sync.WaitGroup
	reloadBody := fmt.Sprintf(`{"generate":{"kind":"UN","n":%d,"dims":2,"seed":7}}`, testDatasetN)
	for wk := 0; wk < workers; wk++ {
		workerWG.Add(1)
		go func(wk int) {
			defer workerWG.Done()
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0:
					do(t, s, "POST", "/v1/whynot",
						fmt.Sprintf(`{"q":[%g,%g],"customer_id":%d}`, q[0], q[1], ct.ID))
				case 1:
					w, resp := do(t, s, "POST", "/v1/whynot?explain=1",
						fmt.Sprintf(`{"q":[%g,%g],"customer_id":%d}`, q[0], q[1], ct.ID))
					if w.Code == 200 {
						if _, ok := resp["plan"]; !ok {
							t.Errorf("explain=1 response lost its plan: %v", resp)
						}
					}
				case 2:
					do(t, s, "POST", "/v1/rskyline", fmt.Sprintf(`{"q":[%g,%g]}`, q[0], q[1]))
				case 3:
					do(t, s, "POST", "/v1/admin/insert",
						fmt.Sprintf(`{"id":%d,"point":[1,2]}`, 2_000_000+wk*rounds+i))
				}
			}
		}(wk)
	}

	stop := make(chan struct{})
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				do(t, s, "POST", "/v1/admin/reload", reloadBody)
			}
		}
	}()
	for i := 0; i < 2; i++ {
		auxWG.Add(1)
		go func() {
			defer auxWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					w, resp := do(t, s, "GET", "/v1/debug/fingerprints", "")
					if w.Code != 200 {
						t.Errorf("fingerprints scrape = %d", w.Code)
						continue
					}
					checkClassInvariants(t, resp)
					req := httptest.NewRequest("GET", "/v1/debug/fingerprints?format=text", nil)
					s.Handler().ServeHTTP(httptest.NewRecorder(), req)
					do(t, s, "GET", "/v1/debug/queries?limit=10", "")
				}
			}
		}()
	}

	workerWG.Wait()
	close(stop)
	auxWG.Wait()

	// Final state: the store classified the workload and stayed bounded.
	w, resp := do(t, s, "GET", "/v1/debug/fingerprints", "")
	if w.Code != 200 {
		t.Fatalf("final scrape = %d", w.Code)
	}
	classes, _ := resp["classes"].([]any)
	if len(classes) == 0 {
		t.Fatal("no fingerprint classes after concurrent workload")
	}
	checkClassInvariants(t, resp)
	if drift := s.Fingerprints().Drifting(); drift > len(classes) {
		t.Errorf("drifting = %d > classes = %d", drift, len(classes))
	}
}

// checkClassInvariants asserts that one /v1/debug/fingerprints snapshot is
// internally consistent — the torn-read oracle for the concurrency test.
func checkClassInvariants(t *testing.T, resp map[string]any) {
	t.Helper()
	classes, ok := resp["classes"].([]any)
	if !ok {
		t.Errorf("classes missing or wrong type: %T", resp["classes"])
		return
	}
	// Bounded memory: the store rejects new classes past its cap rather than
	// evicting baselines, so the snapshot can never exceed it.
	if len(classes) > 256 {
		t.Errorf("fingerprint store exceeded its bound: %d classes", len(classes))
	}
	seen := map[string]bool{}
	for _, raw := range classes {
		c, ok := raw.(map[string]any)
		if !ok {
			t.Errorf("class is %T, not an object", raw)
			continue
		}
		fp, _ := c["fingerprint"].(string)
		if len(fp) != 16 {
			t.Errorf("torn class: fingerprint %q", fp)
		}
		if seen[fp] {
			t.Errorf("duplicate class %s in one snapshot", fp)
		}
		seen[fp] = true
		if n, _ := c["count"].(float64); n < 1 {
			t.Errorf("class %s: count %v < 1", fp, c["count"])
		}
		p50, _ := c["latency_p50_ms"].(float64)
		p95, _ := c["latency_p95_ms"].(float64)
		if p50 < 0 || p95 < 0 || p95 < p50 {
			t.Errorf("class %s: torn percentiles p50=%v p95=%v", fp, p50, p95)
		}
		if pr, _ := c["prune_ratio_p50"].(float64); pr < 0 || pr > 1 {
			t.Errorf("class %s: prune ratio %v out of [0,1]", fp, pr)
		}
	}
	if d, ok := resp["drifting"].(float64); !ok || int(d) > len(classes) {
		t.Errorf("drifting = %v with %d classes", resp["drifting"], len(classes))
	}
	// The calibration block must always be a complete rule -> ns/unit map.
	cal, ok := resp["calibration"].(map[string]any)
	if !ok || len(cal) == 0 {
		t.Errorf("calibration missing: %v", resp["calibration"])
		return
	}
	for rule, v := range cal {
		if ns, ok := v.(float64); !ok || ns <= 0 {
			t.Errorf("calibration[%s] = %v, want positive ns/unit", rule, v)
		}
	}
}
