package server

import (
	"context"
	"fmt"
	"os"

	"repro"
	"repro/internal/dataset"
)

// DatasetSpec names a dataset source for the initial load and for hot-swap
// reloads: a CSV path or a synthetic-generation spec, optionally with an
// approximate store precomputed on top.
type DatasetSpec struct {
	// Path is a CSV file (id,dim0,dim1,...); empty means Generate.
	Path string
	// Generate builds a synthetic dataset when Path is empty.
	Generate *GenerateSpec
	// BuildStore precomputes the approximate safe-region store over all
	// customers, enabling the ladder's approx rung for this snapshot.
	BuildStore bool
	// K is the approximate-store sampling constant (default 10).
	K int
}

// Snapshot is one fully built, immutable serving state: the indexed DB, the
// item list it was built from, an ID lookup, and optionally the approximate
// store. Snapshots are swapped behind an atomic pointer; a request loads the
// pointer once and sees one consistent dataset for its whole lifetime, no
// matter how many reloads land mid-flight.
type Snapshot struct {
	DB    *repro.DB
	Items []repro.Item
	Store *repro.ApproxStore
	// Name describes the dataset source (path or generator spec).
	Name string
	// Seq is the monotone swap sequence number (1 = boot snapshot).
	Seq uint64

	byID map[int]repro.Item
}

// Customer looks a dataset item up by ID.
func (s *Snapshot) Customer(id int) (repro.Item, bool) {
	it, ok := s.byID[id]
	return it, ok
}

// buildSnapshot constructs a complete immutable snapshot: load or generate
// the items, bulk-load the index, and (optionally) precompute the approximate
// store. All the expensive work happens here, before the swap — the swap
// itself is one atomic pointer store.
func buildSnapshot(ctx context.Context, spec DatasetSpec, opts repro.DBOptions, seq uint64) (*Snapshot, error) {
	var (
		items []repro.Item
		name  string
	)
	switch {
	case spec.Path != "":
		f, err := os.Open(spec.Path)
		if err != nil {
			return nil, err
		}
		d, err := dataset.ReadCSV(spec.Path, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		items = d.Items
		name = spec.Path
	case spec.Generate != nil:
		g := spec.Generate
		var err error
		items, err = repro.GenerateDataset(g.Kind, g.N, g.Dims, g.Seed)
		if err != nil {
			return nil, err
		}
		name = fmt.Sprintf("%s(n=%d,dims=%d,seed=%d)", g.Kind, g.N, g.Dims, g.Seed)
	default:
		return nil, fmt.Errorf("server: dataset spec has neither path nor generator")
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("server: dataset %s is empty", name)
	}

	db := repro.NewDBWithOptions(items[0].Point.Dims(), items, opts)
	snap := &Snapshot{
		DB:    db,
		Items: items,
		Name:  name,
		Seq:   seq,
		byID:  make(map[int]repro.Item, len(items)),
	}
	for _, it := range items {
		snap.byID[it.ID] = it
	}
	if spec.BuildStore {
		k := spec.K
		if k <= 0 {
			k = 10
		}
		store, err := db.BuildApproxStoreParallelContext(ctx, items, k, db.Workers())
		if err != nil {
			return nil, fmt.Errorf("server: approximate store build: %w", err)
		}
		snap.Store = store
	}
	return snap, nil
}
