package server

import (
	"context"
	"fmt"
	"os"

	"repro"
	"repro/internal/dataset"
)

// DatasetSpec names a dataset source for the initial load and for hot-swap
// reloads: a CSV path or a synthetic-generation spec, optionally with an
// approximate store precomputed on top.
type DatasetSpec struct {
	// Path is a CSV file (id,dim0,dim1,...); empty means Generate.
	Path string
	// Generate builds a synthetic dataset when Path is empty.
	Generate *GenerateSpec
	// BuildStore precomputes the approximate safe-region store over all
	// customers, enabling the ladder's approx rung for this snapshot.
	BuildStore bool
	// K is the approximate-store sampling constant (default 10).
	K int
}

// Snapshot is one fully built, immutable serving state: the indexed DB, the
// item list it was built from, an ID lookup, and optionally the approximate
// store. Snapshots are swapped behind an atomic pointer; a request loads the
// pointer once and sees one consistent dataset for its whole lifetime, no
// matter how many reloads land mid-flight.
type Snapshot struct {
	DB    *repro.DB
	Items []repro.Item
	Store *repro.ApproxStore
	// Name describes the dataset source (path or generator spec).
	Name string
	// Seq is the monotone swap sequence number (1 = boot snapshot).
	Seq uint64

	byID map[int]repro.Item
}

// Customer looks a dataset item up by ID.
func (s *Snapshot) Customer(id int) (repro.Item, bool) {
	it, ok := s.byID[id]
	return it, ok
}

// loadItems resolves a DatasetSpec to its item list and display name.
func loadItems(spec DatasetSpec) ([]repro.Item, string, error) {
	var (
		items []repro.Item
		name  string
	)
	switch {
	case spec.Path != "":
		f, err := os.Open(spec.Path)
		if err != nil {
			return nil, "", err
		}
		d, err := dataset.ReadCSV(spec.Path, f)
		f.Close()
		if err != nil {
			return nil, "", err
		}
		items = d.Items
		name = spec.Path
	case spec.Generate != nil:
		g := spec.Generate
		var err error
		items, err = repro.GenerateDataset(g.Kind, g.N, g.Dims, g.Seed)
		if err != nil {
			return nil, "", err
		}
		name = fmt.Sprintf("%s(n=%d,dims=%d,seed=%d)", g.Kind, g.N, g.Dims, g.Seed)
	default:
		return nil, "", fmt.Errorf("server: dataset spec has neither path nor generator")
	}
	if len(items) == 0 {
		return nil, "", fmt.Errorf("server: dataset %s is empty", name)
	}
	return items, name, nil
}

// snapshotFromItems bulk-loads an item list into a fresh immutable snapshot,
// optionally precomputing the approximate store (k ≤ 0 skips the store; the
// mutation path passes k ≤ 0 because a store sampled from the pre-mutation
// dataset would answer for items that no longer exist). Seq is left zero —
// the publisher assigns it under the lock that orders swaps.
func snapshotFromItems(ctx context.Context, items []repro.Item, name string, buildStore bool, k int, opts repro.DBOptions) (*Snapshot, error) {
	db := repro.NewDBWithOptions(items[0].Point.Dims(), items, opts)
	snap := &Snapshot{
		DB:    db,
		Items: items,
		Name:  name,
		byID:  make(map[int]repro.Item, len(items)),
	}
	for _, it := range items {
		snap.byID[it.ID] = it
	}
	if buildStore {
		if k <= 0 {
			k = 10
		}
		store, err := db.BuildApproxStoreParallelContext(ctx, items, k, db.Workers())
		if err != nil {
			return nil, fmt.Errorf("server: approximate store build: %w", err)
		}
		snap.Store = store
	}
	return snap, nil
}

// buildSnapshot constructs a complete immutable snapshot from a dataset spec:
// load or generate the items, bulk-load the index, and (optionally)
// precompute the approximate store. All the expensive work happens here,
// before the swap — the swap itself is one atomic pointer store.
func buildSnapshot(ctx context.Context, spec DatasetSpec, opts repro.DBOptions) (*Snapshot, error) {
	items, name, err := loadItems(spec)
	if err != nil {
		return nil, err
	}
	return snapshotFromItems(ctx, items, name, spec.BuildStore, spec.K, opts)
}
