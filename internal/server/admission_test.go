package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAdmissionFastPath: with free tokens, Acquire returns immediately and
// release returns the token.
func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 2, MaxQueue: 2}, nil)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	if got := a.InFlight(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
	r1()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
	// Double release must be harmless (the handler's defer may race a
	// late-written closure in refactored code).
	r1()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("inflight after double release = %d, want 0", got)
	}
}

// TestAdmissionQueueFullShed: with all tokens held and the queue full, the
// next arrival is shed as queue_full with a positive Retry-After.
func TestAdmissionQueueFullShed(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1}, nil)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("token holder: %v", err)
	}
	defer release()

	// One waiter occupies the whole queue.
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	defer cancelWaiter()
	var wg sync.WaitGroup
	wg.Add(1)
	queued := make(chan struct{})
	go func() {
		defer wg.Done()
		close(queued)
		r, err := a.Acquire(waiterCtx)
		if err == nil {
			r()
		}
	}()
	<-queued
	waitFor(t, time.Second, func() bool { return a.QueueDepth() == 1 })

	_, err = a.Acquire(context.Background())
	var shed *ErrShed
	if !errors.As(err, &shed) {
		t.Fatalf("expected ErrShed, got %v", err)
	}
	if shed.Reason != ShedQueueFull {
		t.Fatalf("reason = %q, want %q", shed.Reason, ShedQueueFull)
	}
	if shed.RetryAfterSeconds() < 1 {
		t.Fatalf("RetryAfterSeconds = %d, want >= 1", shed.RetryAfterSeconds())
	}
	cancelWaiter()
	wg.Wait()
}

// TestAdmissionDeadlineShed: a request whose deadline is already smaller than
// the estimated queue wait is refused without queueing.
func TestAdmissionDeadlineShed(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		MaxConcurrent:   1,
		MaxQueue:        16,
		InitialEstimate: time.Second, // every queued slot is "worth" 1s
	}, nil)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("token holder: %v", err)
	}
	defer release()

	ctx, cancelCtx := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancelCtx()
	_, err = a.Acquire(ctx)
	var shed *ErrShed
	if !errors.As(err, &shed) {
		t.Fatalf("expected ErrShed, got %v", err)
	}
	if shed.Reason != ShedDeadline {
		t.Fatalf("reason = %q, want %q", shed.Reason, ShedDeadline)
	}
}

// TestAdmissionQueuedThenServed: a queued request gets the token when the
// holder releases it.
func TestAdmissionQueuedThenServed(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4}, nil)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("token holder: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := a.Acquire(context.Background())
		if err == nil {
			defer r()
		}
		got <- err
	}()
	waitFor(t, time.Second, func() bool { return a.QueueDepth() == 1 })
	release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never got the token")
	}
}

// TestAdmissionCanceledWhileQueued: a context cancelled mid-queue sheds as
// canceled, a deadline as deadline.
func TestAdmissionCanceledWhileQueued(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4}, nil)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("token holder: %v", err)
	}
	defer release()

	ctx, cancelCtx := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		got <- err
	}()
	waitFor(t, time.Second, func() bool { return a.QueueDepth() == 1 })
	cancelCtx()
	err = <-got
	var shed *ErrShed
	if !errors.As(err, &shed) || shed.Reason != ShedCanceled {
		t.Fatalf("expected canceled shed, got %v", err)
	}
}

// TestShedRetryAfterRoundingAndJitter: a sub-second wait estimate must never
// surface as Retry-After 0, and the jitter must spread a shed burst across
// the [base, 1.5×base] window instead of answering every client identically.
func TestShedRetryAfterRoundingAndJitter(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1}, nil)

	a.jitter = func() float64 { return 0 }
	shed := a.shed(ShedQueueFull, 10*time.Millisecond)
	if shed.RetryAfter != time.Second {
		t.Fatalf("RetryAfter with zero jitter = %v, want exactly 1s (floor)", shed.RetryAfter)
	}
	if shed.RetryAfterSeconds() != 1 {
		t.Fatalf("RetryAfterSeconds = %d, want 1", shed.RetryAfterSeconds())
	}

	a.jitter = func() float64 { return 0.999 }
	shed = a.shed(ShedQueueFull, 4*time.Second)
	if shed.RetryAfter < 4*time.Second || shed.RetryAfter >= 6*time.Second {
		t.Fatalf("RetryAfter with max jitter = %v, want in [4s, 6s)", shed.RetryAfter)
	}
	if got := shed.RetryAfterSeconds(); got < 4 || got > 6 {
		t.Fatalf("RetryAfterSeconds = %d, want in [4, 6]", got)
	}

	// Distinct jitter samples must yield distinct hints — that is the whole
	// point of the spread.
	a.jitter = func() float64 { return 0.2 }
	lo := a.shed(ShedQueueFull, 10*time.Second).RetryAfter
	a.jitter = func() float64 { return 0.8 }
	hi := a.shed(ShedQueueFull, 10*time.Second).RetryAfter
	if lo >= hi {
		t.Fatalf("jitter not spreading: %v vs %v", lo, hi)
	}

	// The production source must stay within the documented window too.
	a = NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1}, nil)
	for i := 0; i < 100; i++ {
		got := a.shed(ShedQueueFull, 2*time.Second).RetryAfter
		if got < 2*time.Second || got >= 3*time.Second {
			t.Fatalf("RetryAfter = %v, want in [2s, 3s)", got)
		}
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
