package server

import (
	"context"
	"fmt"
	"net/http"

	"repro"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/wal"
)

// Mutation endpoints: POST /v1/admin/insert and /v1/admin/delete.
//
// A mutation is acknowledged only after its WAL append returns (in durable
// mode; memory-only otherwise), and is visible only through a freshly built
// immutable snapshot published with the same atomic swap reload uses. The
// serving snapshot is never mutated in place — in-flight queries keep the
// consistent dataset they loaded, and the generation stamps retire the old
// snapshot's caches at swap time. The rebuild makes mutations an admin-rate
// operation (bulk-load cost per call), which is the price of keeping every
// query lock-free.

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.With("insert").Inc()
	req, err := DecodeInsertRequest(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}

	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	snap := s.snap.Load() // under mutMu: no publish can race this read
	if snap == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no dataset loaded")
		return
	}
	if dims := snap.DB.Dims(); len(req.Point) != dims {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("point has %d dims, dataset has %d", len(req.Point), dims))
		return
	}
	if _, dup := snap.byID[req.ID]; dup {
		s.writeError(w, http.StatusConflict, fmt.Sprintf("id %d already present", req.ID))
		return
	}
	it := repro.Item{ID: req.ID, Point: repro.NewPoint(req.Point...)}

	// Mutations skip the admission controller (they hold mutMu instead), so
	// the record says so; the WAL seq that acknowledges the write lands on it.
	began := obs.Now()
	act := s.flight.Begin("insert", "http", fmt.Sprintf("id=%d point=%v", req.ID, req.Point), 0)
	act.SetAdmission("bypass")
	defer func() { s.finishRecord(act, "insert", began, w, nil, nil, [2]uint64{}) }()

	seq, ok := s.commitMutation(w, wal.OpInsert, it)
	if !ok {
		return
	}
	act.SetWALSeq(seq)
	items := make([]repro.Item, 0, len(snap.Items)+1)
	items = append(items, snap.Items...)
	items = append(items, it)
	s.publishMutated(w, snap, items, seq, len(items), act)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.With("delete").Inc()
	req, err := DecodeDeleteRequest(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}

	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	snap := s.snap.Load()
	if snap == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no dataset loaded")
		return
	}
	stored, ok := snap.byID[req.ID]
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("id %d not found", req.ID))
		return
	}
	// An explicit point must match the stored record: deleting "id 7 at p"
	// when id 7 sits elsewhere is a stale-client error, not a delete.
	if len(req.Point) > 0 && !stored.Point.Equal(repro.NewPoint(req.Point...)) {
		s.writeError(w, http.StatusConflict,
			fmt.Sprintf("id %d is not at the given position", req.ID))
		return
	}

	// Refuse before logging: a refused mutation must leave no durable trace,
	// or recovery would replay a delete the client was told failed — and with
	// no later inserts the recovered dataset is empty, which cannot even boot.
	// The item set shrinks to zero only by deleting the whole catalogue —
	// operator territory, not a request path.
	if len(snap.Items) == 1 {
		s.writeError(w, http.StatusConflict, "refusing to delete the last item")
		return
	}

	began := obs.Now()
	act := s.flight.Begin("delete", "http", fmt.Sprintf("id=%d", req.ID), 0)
	act.SetAdmission("bypass")
	defer func() { s.finishRecord(act, "delete", began, w, nil, nil, [2]uint64{}) }()

	seq, ok := s.commitMutation(w, wal.OpDelete, stored)
	if !ok {
		return
	}
	act.SetWALSeq(seq)
	items := make([]repro.Item, 0, len(snap.Items)-1)
	for _, it := range snap.Items {
		if it.ID != req.ID {
			items = append(items, it)
		}
	}
	s.publishMutated(w, snap, items, seq, len(items), act)
}

// commitMutation appends the record to the WAL — the acknowledgement point.
// Memory-only servers (no Durability) skip the append and report seq 0. On an
// append failure the mutation is not acknowledged and the handler answers 500
// (the log is poisoned fail-stop; subsequent mutations fail too, queries keep
// serving).
func (s *Server) commitMutation(w http.ResponseWriter, op wal.Op, it repro.Item) (uint64, bool) {
	if s.wal == nil {
		return 0, true
	}
	if s.walClosed {
		s.writeError(w, http.StatusServiceUnavailable, "write-ahead log is closed")
		return 0, false
	}
	if s.mutPoisoned {
		s.writeError(w, http.StatusServiceUnavailable,
			"mutations disabled: a logged mutation failed to publish (restart to recover)")
		return 0, false
	}
	seq, err := s.wal.Append(op, it)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("wal append: %v", err))
		return 0, false
	}
	return seq, true
}

// publishMutated builds the post-mutation snapshot and publishes it. Called
// with mutMu held, after the WAL append. The approximate store is never
// carried over or rebuilt here: it was sampled from the pre-mutation item
// set, and serving it would answer for items that no longer exist (reload
// with build_store to regain the approx rung after a mutation burst).
func (s *Server) publishMutated(w http.ResponseWriter, old *Snapshot, items []repro.Item, walSeq uint64, count int, act *flight.Active) {
	began := obs.Now()
	snap, err := snapshotFromItems(context.Background(), items, old.Name, false, 0, s.dbOptions())
	if err != nil {
		// Unreachable in practice (no store build, items pre-validated), but
		// if it happens the WAL record is durable while the serving state is
		// not: recovery on restart will apply it. Poison the mutation path so
		// later mutations cannot build on the stale snapshot while WAL seqs
		// advance past the unapplied record; queries keep serving.
		if s.wal != nil {
			s.mutPoisoned = true
		}
		s.writeError(w, http.StatusInternalServerError,
			fmt.Sprintf("mutation logged (wal seq %d) but snapshot rebuild failed: %v", walSeq, err))
		return
	}
	s.publishLocked(snap)
	act.SetSnapshotSeq(snap.Seq)
	s.metrics.Mutations.Inc()
	body := map[string]any{
		"snapshot_seq": snap.Seq,
		"items":        count,
		"build_ms":     float64(obs.Since(began)) / 1e6,
	}
	if s.wal != nil {
		body["wal_seq"] = walSeq
	}
	s.writeJSON(w, http.StatusOK, body)
}
