package server

import (
	"context"
	"fmt"
	"net/http"

	"repro"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/wal"
)

// Mutation endpoints: POST /v1/admin/insert and /v1/admin/delete.
//
// A mutation is acknowledged only after its WAL append returns (in durable
// mode; memory-only otherwise), and is visible only through a freshly built
// immutable snapshot published with the same atomic swap reload uses. The
// serving snapshot is never mutated in place — in-flight queries keep the
// consistent dataset they loaded, and the generation stamps retire the old
// snapshot's caches at swap time. The rebuild makes mutations an admin-rate
// operation (bulk-load cost per call), which is the price of keeping every
// query lock-free.

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.With("insert").Inc()
	req, err := DecodeInsertRequest(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}

	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	snap := s.snap.Load() // under mutMu: no publish can race this read
	if snap == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no dataset loaded")
		return
	}
	if dims := snap.DB.Dims(); len(req.Point) != dims {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("point has %d dims, dataset has %d", len(req.Point), dims))
		return
	}
	if _, dup := snap.byID[req.ID]; dup {
		s.writeError(w, http.StatusConflict, fmt.Sprintf("id %d already present", req.ID))
		return
	}
	it := repro.Item{ID: req.ID, Point: repro.NewPoint(req.Point...)}

	// Mutations skip the admission controller (they hold mutMu instead), so
	// the record says so; the WAL seq that acknowledges the write lands on it.
	began := obs.Now()
	act := s.flight.Begin("insert", "http", fmt.Sprintf("id=%d point=%v", req.ID, req.Point), 0)
	act.SetAdmission("bypass")
	var qerr error
	defer func() { s.finishRecord(act, "insert", began, w, qerr, nil, [2]uint64{}) }()

	seq, qerr := s.commitMutation(w, wal.OpInsert, it)
	if qerr != nil {
		return
	}
	act.SetWALSeq(seq)
	items := make([]repro.Item, 0, len(snap.Items)+1)
	items = append(items, snap.Items...)
	items = append(items, it)
	qerr = s.publishMutated(w, snap, items, seq, len(items), act)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.With("delete").Inc()
	req, err := DecodeDeleteRequest(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}

	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	snap := s.snap.Load()
	if snap == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no dataset loaded")
		return
	}
	stored, ok := snap.byID[req.ID]
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("id %d not found", req.ID))
		return
	}
	// An explicit point must match the stored record: deleting "id 7 at p"
	// when id 7 sits elsewhere is a stale-client error, not a delete.
	if len(req.Point) > 0 && !stored.Point.Equal(repro.NewPoint(req.Point...)) {
		s.writeError(w, http.StatusConflict,
			fmt.Sprintf("id %d is not at the given position", req.ID))
		return
	}

	// Refuse before logging: a refused mutation must leave no durable trace,
	// or recovery would replay a delete the client was told failed — and with
	// no later inserts the recovered dataset is empty, which cannot even boot.
	// The item set shrinks to zero only by deleting the whole catalogue —
	// operator territory, not a request path.
	if len(snap.Items) == 1 {
		s.writeError(w, http.StatusConflict, "refusing to delete the last item")
		return
	}

	began := obs.Now()
	act := s.flight.Begin("delete", "http", fmt.Sprintf("id=%d", req.ID), 0)
	act.SetAdmission("bypass")
	var qerr error
	defer func() { s.finishRecord(act, "delete", began, w, qerr, nil, [2]uint64{}) }()

	seq, qerr := s.commitMutation(w, wal.OpDelete, stored)
	if qerr != nil {
		return
	}
	act.SetWALSeq(seq)
	items := make([]repro.Item, 0, len(snap.Items)-1)
	for _, it := range snap.Items {
		if it.ID != req.ID {
			items = append(items, it)
		}
	}
	qerr = s.publishMutated(w, snap, items, seq, len(items), act)
}

// commitMutation appends the record to the WAL — the acknowledgement point.
// Memory-only servers (no Durability) skip the append and report seq 0. A
// degraded log (prior storage fault, or one raised by this very append)
// answers 503 with Retry-After and wakes the reopen probe; the mutation is
// not acknowledged and queries keep serving. A non-nil error is the qerr for
// the flight record — the response has already been written.
func (s *Server) commitMutation(w http.ResponseWriter, op wal.Op, it repro.Item) (uint64, error) {
	if s.wal == nil {
		return 0, nil
	}
	if s.walClosed {
		s.writeError(w, http.StatusServiceUnavailable, "write-ahead log is closed")
		return 0, errWALClosed
	}
	if se := s.wal.Failed(); se != nil {
		s.noteStorageFault()
		s.writeStorageUnavailable(w, fmt.Sprintf("mutations disabled: %v", se))
		return 0, fmt.Errorf("%w: %v", errStorageDegraded, se)
	}
	if s.pendingPub != nil {
		s.noteStorageFault()
		s.writeStorageUnavailable(w, fmt.Sprintf(
			"mutations disabled: wal seq %d logged but not yet published", s.pendingPub.seq))
		return 0, fmt.Errorf("%w: publish pending at wal seq %d", errStorageDegraded, s.pendingPub.seq)
	}
	seq, err := s.wal.Append(op, it)
	if err != nil {
		if s.wal.Failed() != nil {
			// This append degraded the log: flip read-only and start probing.
			s.updateStorageLocked()
			s.noteStorageFault()
			s.writeStorageUnavailable(w, fmt.Sprintf("wal append: %v", err))
			return 0, fmt.Errorf("%w: %v", errStorageDegraded, err)
		}
		s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("wal append: %v", err))
		return 0, err
	}
	return seq, nil
}

// publishMutated builds the post-mutation snapshot and publishes it. Called
// with mutMu held, after the WAL append. The approximate store is never
// carried over or rebuilt here: it was sampled from the pre-mutation item
// set, and serving it would answer for items that no longer exist (reload
// with build_store to regain the approx rung after a mutation burst).
func (s *Server) publishMutated(w http.ResponseWriter, old *Snapshot, items []repro.Item, walSeq uint64, count int, act *flight.Active) error {
	began := obs.Now()
	snap, err := snapshotFromItems(context.Background(), items, old.Name, false, 0, s.dbOptions())
	if err != nil {
		// Unreachable in practice (no store build, items pre-validated), but
		// if it happens the WAL record is durable while the serving state is
		// not: recovery on restart will apply it. Park the logged item set as
		// the pending publish — further mutations are refused so WAL seqs
		// cannot advance past the unapplied record, queries keep serving, and
		// the storage probe retries the publish until it lands (or a reload
		// checkpoint supersedes it).
		if s.wal != nil {
			s.pendingPub = &pendingPublish{items: items, seq: walSeq, name: old.Name}
			s.updateStorageLocked()
			s.noteStorageFault()
			s.writeStorageUnavailable(w, fmt.Sprintf(
				"mutation logged (wal seq %d) but snapshot rebuild failed: %v; publish retry scheduled", walSeq, err))
			return fmt.Errorf("%w: publish of wal seq %d failed: %v", errStorageDegraded, walSeq, err)
		}
		s.writeError(w, http.StatusInternalServerError,
			fmt.Sprintf("mutation logged (wal seq %d) but snapshot rebuild failed: %v", walSeq, err))
		return err
	}
	s.publishLocked(snap)
	act.SetSnapshotSeq(snap.Seq)
	s.metrics.Mutations.Inc()
	body := map[string]any{
		"snapshot_seq": snap.Seq,
		"items":        count,
		"build_ms":     float64(obs.Since(began)) / 1e6,
	}
	if s.wal != nil {
		body["wal_seq"] = walSeq
	}
	s.writeJSON(w, http.StatusOK, body)
	return nil
}
