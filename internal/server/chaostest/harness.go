// Package chaostest is the chaos/soak harness for the overload-safe query
// service. It boots a real server on a loopback listener, drives a mixed
// workload (why-not queries, reverse-skyline queries, client-side aborts,
// concurrent dataset reloads) while a deterministic fault injector panics and
// stalls inside the query algorithms, and checks the service-level
// invariants the server exists to uphold:
//
//   - every request gets exactly one terminal response (no lost requests),
//   - injected query-algorithm panics never surface as HTTP 500s — the
//     degradation ladder absorbs them into best-effort answers,
//   - every shed (429) carries an honest Retry-After header,
//   - the exact-rung circuit breaker trips under the fault window and
//     re-closes after it ends, with the service back to exact answers.
//
// The same harness backs the short `go test` chaos check and the long-running
// cmd/chaos soak binary; only the durations differ.
package chaostest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cancel"
	"repro/internal/engine/faultinject"
	"repro/internal/obs/flight"
	"repro/internal/server"
)

// Options sizes one chaos run. The zero value is a ~2s smoke suitable for a
// unit test; cmd/chaos scales the phases up for soaking.
type Options struct {
	// FaultFor is how long the fault window stays open (panics + stalls
	// injected into the query algorithms). Default 1s.
	FaultFor time.Duration
	// CoolFor is the recovery phase after the window closes, during which the
	// breaker must re-close. Default 1s.
	CoolFor time.Duration
	// Clients is the number of concurrent workload goroutines. Default 8.
	Clients int
	// Reloaders is the number of concurrent dataset-reload goroutines
	// hot-swapping snapshots throughout the run. Default 2.
	Reloaders int
	// CancelEvery aborts every n-th request client-side with a tiny deadline,
	// exercising mid-flight disconnects. Default 7; negative disables.
	CancelEvery int
	// DatasetN is the synthetic dataset size. Default 300.
	DatasetN int
	// Seed drives the workload mix. Default 1.
	Seed int64
	// SlowlogPath, when set, writes the server's slow-query log there so a
	// failing run leaves its sampled flight records behind as an artifact.
	SlowlogPath string
}

func (o Options) withDefaults() Options {
	if o.FaultFor <= 0 {
		o.FaultFor = time.Second
	}
	if o.CoolFor <= 0 {
		o.CoolFor = time.Second
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Reloaders <= 0 {
		o.Reloaders = 2
	}
	if o.CancelEvery == 0 {
		o.CancelEvery = 7
	}
	if o.DatasetN <= 0 {
		o.DatasetN = 300
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Summary is the schema-versioned outcome of one chaos run; cmd/chaos appends
// it to BENCH_chaos.json.
type Summary struct {
	SchemaVersion int    `json:"schema_version"`
	Harness       string `json:"harness"`

	Requests   int64            `json:"requests"`
	ByStatus   map[string]int64 `json:"by_status"`
	Cancels    int64            `json:"client_cancels"`
	Lost       int64            `json:"lost"` // transport errors that were not client-initiated aborts
	Reloads    int64            `json:"reloads_ok"`
	ReloadBusy int64            `json:"reloads_busy"` // 409: a build was already running

	Sheds              int64             `json:"sheds"`
	RetryAfterMissing  int64             `json:"retry_after_missing"`
	ServerPanics       int64             `json:"server_panics"`       // recoverMiddleware counter: must stay 0
	InjectedExactHits  int64             `json:"injected_exact_hits"` // how often the fault actually fired
	DegradedAnswers    int64             `json:"degraded_answers"`
	BreakerTrips       int64             `json:"breaker_trips"`
	BreakerRecloses    int64             `json:"breaker_recloses"`
	FinalBreakerStates map[string]string `json:"final_breaker_states"`

	// Flight-recorder accounting: every admitted request must leave exactly
	// one terminal record, and every bad or degraded record must have kept
	// its trace (the tail sampler's contract).
	FlightStarted      int64 `json:"flight_started"`
	FlightFinished     int64 `json:"flight_finished"`
	FlightInFlightEnd  int64 `json:"flight_in_flight_end"`
	FlightUnsampledBad int64 `json:"flight_unsampled_bad"`

	P50MS float64 `json:"latency_p50_ms"`
	P99MS float64 `json:"latency_p99_ms"`

	FaultForMS int64 `json:"fault_for_ms"`
	CoolForMS  int64 `json:"cool_for_ms"`
	Clients    int   `json:"clients"`
}

// Violations returns every broken invariant as a human-readable list; an
// empty slice means the run was clean.
func (s *Summary) Violations() []string {
	var v []string
	if s.Lost != 0 {
		v = append(v, fmt.Sprintf("%d requests got no terminal response", s.Lost))
	}
	if n := s.ByStatus["500"]; n != 0 {
		v = append(v, fmt.Sprintf("%d injected faults surfaced as HTTP 500", n))
	}
	if s.ServerPanics != 0 {
		v = append(v, fmt.Sprintf("%d panics reached the server's recover middleware", s.ServerPanics))
	}
	if s.RetryAfterMissing != 0 {
		v = append(v, fmt.Sprintf("%d shed responses lacked Retry-After", s.RetryAfterMissing))
	}
	if s.BreakerTrips == 0 {
		v = append(v, "the fault window never tripped the exact breaker")
	}
	if s.BreakerRecloses == 0 || s.FinalBreakerStates["exact"] != "closed" {
		v = append(v, fmt.Sprintf("exact breaker did not re-close after the fault window (state %q, %d re-closes)",
			s.FinalBreakerStates["exact"], s.BreakerRecloses))
	}
	if s.FlightStarted != s.FlightFinished || s.FlightInFlightEnd != 0 {
		v = append(v, fmt.Sprintf("flight ledger leaked records: %d started, %d finished, %d still in flight",
			s.FlightStarted, s.FlightFinished, s.FlightInFlightEnd))
	}
	if s.FlightUnsampledBad != 0 {
		v = append(v, fmt.Sprintf("%d bad/degraded flight records lost their trace (tail sampler must keep them)",
			s.FlightUnsampledBad))
	}
	return v
}

// Run executes one chaos run and reports the summary. The error is reserved
// for harness failures (listen, boot); invariant breaks are in the summary.
func Run(ctx context.Context, opts Options) (*Summary, error) {
	opts = opts.withDefaults()

	// Fault plan: the exact MWQ rung panics at the safe-region checkpoint —
	// a site only the exact algorithm visits, so the ladder's cheaper rungs
	// stay healthy and "no 5xx" is a real invariant, not luck. The customer
	// scan gets a small stall to build queue pressure.
	inj := faultinject.New(
		faultinject.Rule{Site: cancel.SiteSafeRegion, Panic: "chaos: injected exact-rung bug"},
		faultinject.Rule{Site: cancel.SiteCustomer, Delay: 50 * time.Microsecond},
	)
	window := faultinject.NewSwitch(inj)

	srv, err := server.New(ctx, server.Config{
		Dataset: server.DatasetSpec{
			Generate: &server.GenerateSpec{Kind: "UN", N: opts.DatasetN, Dims: 2, Seed: opts.Seed},
		},
		Admission: server.AdmissionConfig{MaxConcurrent: 2, MaxQueue: 2},
		Breaker: server.BreakerConfig{
			ConsecutiveFailures: 3,
			OpenFor:             200 * time.Millisecond,
			HalfOpenSuccesses:   2,
		},
		RungTimeout:    time.Second,
		RequestTimeout: 5 * time.Second,
		Hook:           window,
		SlowlogPath:    opts.SlowlogPath,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: boot server: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// The workload needs customer IDs; generation is deterministic, so the
	// harness knows them without asking the server.
	items, err := repro.GenerateDataset("UN", opts.DatasetN, 2, opts.Seed)
	if err != nil {
		return nil, err
	}
	ids := make([]int, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}

	var (
		c       counters
		latMu   sync.Mutex
		latency []time.Duration
	)
	runCtx, stop := context.WithCancel(ctx)
	defer stop()

	var wg sync.WaitGroup
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(worker)*7919))
			client := &http.Client{}
			for n := 0; runCtx.Err() == nil; n++ {
				d := fireOne(runCtx, client, base, rng, ids, opts, n, &c)
				if d >= 0 {
					latMu.Lock()
					latency = append(latency, d)
					latMu.Unlock()
				}
			}
		}(i)
	}
	for i := 0; i < opts.Reloaders; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			client := &http.Client{}
			for seed := int64(worker + 100); runCtx.Err() == nil; seed++ {
				reloadOnce(runCtx, client, base, opts.DatasetN, seed, &c)
				select {
				case <-runCtx.Done():
				case <-time.After(20 * time.Millisecond):
				}
			}
		}(i)
	}

	// Phase 1: fault window open.
	window.Set(true)
	sleepCtx(runCtx, opts.FaultFor)
	// Phase 2: faults stop; the breaker must probe its way back.
	window.Set(false)
	sleepCtx(runCtx, opts.CoolFor)
	stop()
	wg.Wait()

	// Every client saw a terminal response, but a handler's deferred record
	// finish can land just after the response bytes — give the ledger a
	// moment to quiesce before reading its accounting.
	var flightTotals flight.Totals
	var unsampledBad int64
	deadline := time.Now().Add(2 * time.Second)
	for {
		flightTotals = srv.FlightRecorder().Totals()
		if flightTotals.Started == flightTotals.Finished || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, rec := range srv.FlightRecorder().Recent(0) {
		bad := rec.Outcome != flight.OutcomeOK && rec.Outcome != flight.OutcomeCanceled
		if (bad || rec.Degraded) && !rec.Sampled {
			unsampledBad++
		}
	}

	shutCtx, cancelShut := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShut()
	if err := srv.Shutdown(shutCtx); err != nil {
		return nil, fmt.Errorf("chaos: shutdown: %w", err)
	}
	if err := <-serveDone; err != nil {
		return nil, fmt.Errorf("chaos: serve: %w", err)
	}

	sum := c.summary(opts)
	sum.InjectedExactHits = int64(inj.Visits(cancel.SiteSafeRegion))
	for rung, st := range srv.Breakers().Status() {
		sum.FinalBreakerStates[rung] = st.State
		sum.BreakerTrips += int64(st.Trips)
		sum.BreakerRecloses += int64(st.Recloses)
	}
	sum.ServerPanics = int64(srv.ServerPanics())
	sum.FlightStarted = int64(flightTotals.Started)
	sum.FlightFinished = int64(flightTotals.Finished)
	sum.FlightInFlightEnd = int64(flightTotals.InFlight)
	sum.FlightUnsampledBad = unsampledBad
	sum.P50MS, sum.P99MS = percentiles(latency)
	return sum, nil
}

// counters is the thread-safe tally shared by all workload goroutines.
type counters struct {
	mu                sync.Mutex
	byStatus          map[string]int64
	requests          atomic.Int64
	cancels           atomic.Int64
	lost              atomic.Int64
	reloads           atomic.Int64
	reloadBusy        atomic.Int64
	sheds             atomic.Int64
	retryAfterMissing atomic.Int64
	degraded          atomic.Int64
}

func (c *counters) status(code int) {
	c.mu.Lock()
	if c.byStatus == nil {
		c.byStatus = make(map[string]int64)
	}
	c.byStatus[fmt.Sprintf("%d", code)]++
	c.mu.Unlock()
}

func (c *counters) summary(opts Options) *Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Summary{
		SchemaVersion:      1,
		Harness:            "chaostest",
		Requests:           c.requests.Load(),
		ByStatus:           make(map[string]int64, len(c.byStatus)),
		Cancels:            c.cancels.Load(),
		Lost:               c.lost.Load(),
		Reloads:            c.reloads.Load(),
		ReloadBusy:         c.reloadBusy.Load(),
		Sheds:              c.sheds.Load(),
		RetryAfterMissing:  c.retryAfterMissing.Load(),
		DegradedAnswers:    c.degraded.Load(),
		FinalBreakerStates: make(map[string]string),
		FaultForMS:         opts.FaultFor.Milliseconds(),
		CoolForMS:          opts.CoolFor.Milliseconds(),
		Clients:            opts.Clients,
	}
	for k, v := range c.byStatus {
		s.ByStatus[k] = v
	}
	return s
}

// fireOne issues a single workload request and returns its latency, or a
// negative duration when the request did not produce a usable sample
// (client-side abort or run shutdown).
func fireOne(ctx context.Context, client *http.Client, base string, rng *rand.Rand,
	ids []int, opts Options, n int, c *counters) time.Duration {
	reqCtx := ctx
	cancelled := false
	if opts.CancelEvery > 0 && n%opts.CancelEvery == opts.CancelEvery-1 {
		var cancelReq context.CancelFunc
		reqCtx, cancelReq = context.WithTimeout(ctx, time.Duration(rng.Intn(3)+1)*time.Millisecond)
		defer cancelReq()
		cancelled = true
	}

	var path, body string
	q := []float64{rng.Float64() * 1000, rng.Float64() * 1000}
	if rng.Intn(3) == 0 {
		path = "/v1/rskyline"
		body = fmt.Sprintf(`{"q":[%g,%g]}`, q[0], q[1])
	} else {
		path = "/v1/whynot"
		body = fmt.Sprintf(`{"q":[%g,%g],"customer_id":%d}`, q[0], q[1], ids[rng.Intn(len(ids))])
	}

	c.requests.Add(1)
	began := time.Now()
	req, err := http.NewRequestWithContext(reqCtx, "POST", base+path, strings.NewReader(body))
	if err != nil {
		c.lost.Add(1)
		return -1
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		// A client-initiated abort (or run shutdown) is a terminal outcome the
		// client chose; anything else is a lost request.
		if cancelled || ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			c.cancels.Add(1)
		} else {
			c.lost.Add(1)
		}
		return -1
	}
	buf, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	c.status(resp.StatusCode)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		c.sheds.Add(1)
		if resp.Header.Get("Retry-After") == "" {
			c.retryAfterMissing.Add(1)
		}
	case resp.StatusCode == http.StatusOK && strings.Contains(string(buf), `"degraded":true`):
		c.degraded.Add(1)
	}
	return time.Since(began)
}

func reloadOnce(ctx context.Context, client *http.Client, base string, n int, seed int64, c *counters) {
	body := fmt.Sprintf(`{"generate":{"kind":"UN","n":%d,"dims":2,"seed":%d}}`, n, seed)
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/admin/reload", strings.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		c.reloads.Add(1)
	case http.StatusConflict:
		c.reloadBusy.Add(1)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func percentiles(lat []time.Duration) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i]) / 1e6
	}
	return at(0.50), at(0.99)
}
