package chaostest

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// Disjoint ID ranges let every response betray which dataset generation it
// was answered from: the boot dataset, a reloaded one, or a mutation insert.
const (
	mutGenSize   = 80
	mutGenBase   = 10_000 // generation g occupies [g*mutGenBase+1, g*mutGenBase+mutGenSize]
	mutInsertID  = 900_000
	mutGenCount  = 3
	mutRaceFor   = 600 * time.Millisecond
	mutMutators  = 4
	mutReloaders = 2
	mutReaders   = 2
)

// writeGenCSV writes one generation's dataset: IDs in its private range,
// deterministic points.
func writeGenCSV(t *testing.T, dir string, gen int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(gen) * 1299721))
	var sb strings.Builder
	for i := 1; i <= mutGenSize; i++ {
		fmt.Fprintf(&sb, "%d,%g,%g\n", gen*mutGenBase+i, rng.Float64()*1000, rng.Float64()*1000)
	}
	path := filepath.Join(dir, fmt.Sprintf("gen%d.csv", gen))
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// genOf classifies an item ID into its dataset generation; mutation inserts
// report -1 (they legitimately mix with any generation).
func genOf(id int) int {
	if id >= mutInsertID {
		return -1
	}
	return id / mutGenBase
}

type mutAck struct {
	op      string // "insert" | "delete"
	id      int
	snapSeq uint64
}

// TestMutationsRacingReload hammers insert/delete mutations, dataset
// hot-swaps, and reverse-skyline reads concurrently, then checks the swap
// contract:
//
//   - every response is answered from exactly one snapshot: a reverse
//     skyline never mixes items of two dataset generations (a generation
//     cache serving pre-swap entries would),
//   - snapshot sequence numbers observed by each mutator strictly increase,
//     and no two acknowledged publishes share a sequence number,
//   - no acknowledged mutation is lost: every mutation acked after the final
//     reload's publish is reflected in the final snapshot (earlier acks are
//     superseded by the swap, by design).
func TestMutationsRacingReload(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation race soak is ~1s; skipped in -short")
	}
	dir := t.TempDir()
	var genPaths []string
	for g := 1; g <= mutGenCount; g++ {
		genPaths = append(genPaths, writeGenCSV(t, dir, g))
	}

	srv, err := server.New(context.Background(), server.Config{
		Dataset:        server.DatasetSpec{Path: genPaths[0]},
		RungTimeout:    2 * time.Second,
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	handler := srv.Handler()
	post := func(path, body string) (int, map[string]any) {
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, req)
		var out map[string]any
		if b := w.Body.Bytes(); len(b) > 0 && strings.Contains(w.Header().Get("Content-Type"), "json") {
			_ = json.Unmarshal(b, &out)
		}
		return w.Code, out
	}

	var (
		mu         sync.Mutex
		acks       [][]mutAck // per mutator, in ack order
		reloadSeqs []uint64
		failures   []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	acks = make([][]mutAck, mutMutators)

	ctx, stop := context.WithTimeout(context.Background(), mutRaceFor)
	defer stop()
	var wg sync.WaitGroup

	// Mutators: insert unique IDs, occasionally delete one of their own.
	for m := 0; m < mutMutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(m) + 17))
			var mine []int // inserted and not yet deleted by this mutator
			next := mutInsertID + m*100_000
			for ctx.Err() == nil {
				if len(mine) > 0 && rng.Float64() < 0.3 {
					id := mine[len(mine)-1]
					code, body := post("/v1/admin/delete", fmt.Sprintf(`{"id":%d}`, id))
					switch code {
					case 200:
						mine = mine[:len(mine)-1]
						mu.Lock()
						acks[m] = append(acks[m], mutAck{op: "delete", id: id, snapSeq: uint64(body["snapshot_seq"].(float64))})
						mu.Unlock()
					case 404:
						// A reload swapped the item away between our insert
						// and this delete — superseded, not lost.
						mine = mine[:len(mine)-1]
					default:
						fail("delete %d: unexpected status %d: %v", id, code, body)
					}
					continue
				}
				id := next
				next++
				code, body := post("/v1/admin/insert",
					fmt.Sprintf(`{"id":%d,"point":[%g,%g]}`, id, rng.Float64()*1000, rng.Float64()*1000))
				if code != 200 {
					fail("insert %d: unexpected status %d: %v", id, code, body)
					continue
				}
				mine = append(mine, id)
				mu.Lock()
				acks[m] = append(acks[m], mutAck{op: "insert", id: id, snapSeq: uint64(body["snapshot_seq"].(float64))})
				mu.Unlock()
			}
		}(m)
	}

	// Reloaders: hot-swap between generations.
	for r := 0; r < mutReloaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; ctx.Err() == nil; i++ {
				path := genPaths[i%len(genPaths)]
				code, body := post("/v1/admin/reload", fmt.Sprintf(`{"path":%q}`, path))
				switch code {
				case 200:
					mu.Lock()
					reloadSeqs = append(reloadSeqs, uint64(body["snapshot_seq"].(float64)))
					mu.Unlock()
				case 409: // a build was already running
				default:
					fail("reload: unexpected status %d: %v", code, body)
				}
				select {
				case <-ctx.Done():
				case <-time.After(10 * time.Millisecond):
				}
			}
		}(r)
	}

	// Readers: every reverse skyline must come from a single generation.
	for q := 0; q < mutReaders; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(q) + 4242))
			for ctx.Err() == nil {
				code, body := post("/v1/rskyline",
					fmt.Sprintf(`{"q":[%g,%g]}`, rng.Float64()*1000, rng.Float64()*1000))
				if code != 200 {
					continue // shed under pressure is fine; purity is the invariant
				}
				gens := map[int]bool{}
				for _, raw := range body["customer_ids"].([]any) {
					if g := genOf(int(raw.(float64))); g >= 0 {
						gens[g] = true
					}
				}
				if len(gens) > 1 {
					fail("rskyline mixed generations %v at snapshot_seq %v", gens, body["snapshot_seq"])
				}
			}
		}(q)
	}

	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for _, f := range failures {
		t.Error(f)
	}
	if len(reloadSeqs) == 0 {
		t.Fatal("no reload succeeded; the race tested nothing")
	}

	// Publish-order checks: per-mutator acks strictly increase, and no two
	// acked publishes (mutation or reload) share a sequence number.
	seen := map[uint64]string{}
	for seq := range reloadSeqs {
		seen[reloadSeqs[seq]] = "reload"
	}
	var lastReload uint64
	for _, seq := range reloadSeqs {
		if seq > lastReload {
			lastReload = seq
		}
	}
	total := 0
	for m, list := range acks {
		total += len(list)
		var prev uint64
		for _, a := range list {
			if a.snapSeq <= prev {
				t.Errorf("mutator %d: snapshot seq went %d -> %d (not monotone)", m, prev, a.snapSeq)
			}
			prev = a.snapSeq
			if who, dup := seen[a.snapSeq]; dup {
				t.Errorf("snapshot seq %d published twice (%s and %s %d)", a.snapSeq, who, a.op, a.id)
			}
			seen[a.snapSeq] = a.op
		}
	}
	if total == 0 {
		t.Fatal("no mutation was acknowledged; the race tested nothing")
	}

	// Lost-update check: replay each mutator's post-final-reload acks and
	// compare against the final snapshot.
	final := map[int]bool{}
	for _, it := range srv.Snapshot().Items {
		final[it.ID] = true
	}
	for m, list := range acks {
		expect := map[int]bool{} // id -> should be present
		for _, a := range list {
			if a.snapSeq <= lastReload {
				continue
			}
			expect[a.id] = a.op == "insert"
		}
		for id, want := range expect {
			if final[id] != want {
				t.Errorf("mutator %d: id %d acked after the last reload (want present=%v) but final snapshot disagrees", m, id, want)
			}
		}
	}
	t.Logf("race: %d mutation acks, %d reloads, final snapshot %d items",
		total, len(reloadSeqs), len(srv.Snapshot().Items))
}
