package chaostest

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/obs/flight"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wal/vfs"
)

// TestStorageFaultWindow is the serving-layer chaos scenario for disk
// faults: a durable server whose WAL sits on a fault injector gets a window
// of fsync failures. During the window every mutation must answer 503 with
// Retry-After (and land in the flight ledger as "readonly"), while
// concurrent reverse-skyline queries keep answering — checked for
// correctness against an oracle DB built from exactly the acknowledged item
// set, not just for status 200. When the window closes the reopen probe must
// return the server to writable with no operator action.
func TestStorageFaultWindow(t *testing.T) {
	const (
		datasetN    = 120
		datasetSeed = int64(5)
		insertBase  = 800_000
	)
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Rule{Op: vfs.OpSync, Path: "wal-", Fault: vfs.FaultSyncFail})
	ffs.SetArmed(false)

	srv, err := server.New(context.Background(), server.Config{
		Dataset: server.DatasetSpec{
			Generate: &server.GenerateSpec{Kind: "UN", N: datasetN, Dims: 2, Seed: datasetSeed},
		},
		Durability:     &wal.Options{Dir: t.TempDir(), Policy: wal.SyncAlways, FS: ffs},
		ReopenProbeMin: 2 * time.Millisecond,
		ReopenProbeMax: 20 * time.Millisecond,
		RungTimeout:    2 * time.Second,
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	handler := srv.Handler()
	post := func(path, body string) (*httptest.ResponseRecorder, map[string]any) {
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, req)
		var out map[string]any
		if b := w.Body.Bytes(); len(b) > 0 && strings.Contains(w.Header().Get("Content-Type"), "json") {
			_ = json.Unmarshal(b, &out)
		}
		return w, out
	}

	// The oracle tracks exactly the acknowledged item set; the workload is
	// deterministic so the harness knows the base dataset without asking.
	oracleItems, err := repro.GenerateDataset("UN", datasetN, 2, datasetSeed)
	if err != nil {
		t.Fatal(err)
	}

	// Healthy phase: acknowledged mutations extend the oracle.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10; i++ {
		it := repro.Item{ID: insertBase + i, Point: repro.NewPoint(rng.Float64()*1000, rng.Float64()*1000)}
		w, body := post("/v1/admin/insert",
			fmt.Sprintf(`{"id":%d,"point":[%g,%g]}`, it.ID, it.Point[0], it.Point[1]))
		if w.Code != 200 {
			t.Fatalf("healthy insert %d = %d %v", i, w.Code, body)
		}
		oracleItems = append(oracleItems, it)
	}
	oracleDB := repro.NewDBWithOptions(2, oracleItems, repro.DBOptions{})

	// Fault window: queries serve (correctly), mutations refuse honestly.
	ffs.SetArmed(true)
	var (
		wg          sync.WaitGroup
		stopReaders = make(chan struct{})
		mu          sync.Mutex
		checked     int
		readerFails []string
	)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 4242))
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				q := repro.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
				w, body := post("/v1/rskyline", fmt.Sprintf(`{"q":[%g,%g]}`, q[0], q[1]))
				if w.Code != 200 {
					continue // a shed under pressure is allowed; wrong answers are not
				}
				if d, _ := body["degraded"].(bool); d {
					continue // a degraded (best-effort) answer makes no exactness claim
				}
				var got []int
				for _, raw := range body["customer_ids"].([]any) {
					got = append(got, int(raw.(float64)))
				}
				sort.Ints(got)
				var want []int
				for _, it := range oracleDB.ReverseSkyline(oracleItems, q) {
					want = append(want, it.ID)
				}
				sort.Ints(want)
				mu.Lock()
				checked++
				if len(got) != len(want) {
					readerFails = append(readerFails, fmt.Sprintf("RSL(%v): got %d ids, oracle %d", q, len(got), len(want)))
				} else {
					for i := range got {
						if got[i] != want[i] {
							readerFails = append(readerFails, fmt.Sprintf("RSL(%v): got %v, oracle %v", q, got, want))
							break
						}
					}
				}
				mu.Unlock()
			}
		}(r)
	}

	refused := 0
	for i := 0; i < 5; i++ {
		w, body := post("/v1/admin/insert",
			fmt.Sprintf(`{"id":%d,"point":[1,2]}`, insertBase+100+i))
		if w.Code != 503 {
			t.Fatalf("mutation in fault window = %d %v, want 503", w.Code, body)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Error("read-only refusal carries no Retry-After")
		}
		if body["reason"] != "storage_degraded" {
			t.Errorf("refusal reason = %v, want storage_degraded", body["reason"])
		}
		refused++
		time.Sleep(10 * time.Millisecond) // let readers interleave with refusals
	}
	close(stopReaders)
	wg.Wait()
	mu.Lock()
	for _, f := range readerFails {
		t.Error(f)
	}
	if checked == 0 {
		t.Error("no query was oracle-checked during the fault window")
	}
	nChecked := checked
	mu.Unlock()

	// Window closes: the probe must bring the server back on its own.
	ffs.SetArmed(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		w, body := post("/v1/admin/insert", fmt.Sprintf(`{"id":%d,"point":[3,4]}`, insertBase+200))
		if w.Code == 200 {
			break
		}
		if w.Code != 503 {
			t.Fatalf("mutation while recovering = %d %v", w.Code, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never returned to writable: %d %v", w.Code, body)
		}
		time.Sleep(2 * time.Millisecond)
	}

	readonly := 0
	for _, rec := range srv.FlightRecorder().Recent(0) {
		if rec.Outcome == flight.OutcomeReadOnly {
			readonly++
		}
	}
	if readonly < refused {
		t.Errorf("flight ledger has %d readonly outcomes, want >= %d", readonly, refused)
	}
	t.Logf("fault window: %d refusals, %d oracle-checked queries, %d readonly flight records",
		refused, nChecked, readonly)
}
