package chaostest

import (
	"context"
	"testing"
	"time"
)

// TestChaosSmoke runs the full chaos harness at test scale: ~1s of injected
// exact-rung panics and stalls plus concurrent hot-swaps under a mixed
// workload with client aborts, then ~1s of recovery. Every service-level
// invariant in Summary.Violations must hold.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos smoke is ~2s; skipped in -short")
	}
	sum, err := Run(context.Background(), Options{
		FaultFor: 1200 * time.Millisecond,
		CoolFor:  1200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	t.Logf("chaos: %d requests, by_status=%v, sheds=%d, cancels=%d, reloads=%d (busy %d), degraded=%d, trips=%d, recloses=%d, p99=%.1fms",
		sum.Requests, sum.ByStatus, sum.Sheds, sum.Cancels, sum.Reloads, sum.ReloadBusy,
		sum.DegradedAnswers, sum.BreakerTrips, sum.BreakerRecloses, sum.P99MS)

	if sum.Requests < 50 {
		t.Fatalf("workload barely ran: %d requests", sum.Requests)
	}
	if sum.InjectedExactHits == 0 {
		t.Fatal("the fault injector never fired — the chaos run tested nothing")
	}
	if sum.DegradedAnswers == 0 {
		t.Fatal("no degraded answers: injected exact-rung faults were never absorbed by the ladder")
	}
	if sum.Reloads == 0 {
		t.Fatal("no successful hot-swaps during the run")
	}
	for _, v := range sum.Violations() {
		t.Errorf("invariant broken: %s", v)
	}
}
