package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/obs/flight"
	"repro/internal/wal"
	"repro/internal/wal/vfs"
)

// faultyDurable wires a durable test server whose WAL sits on a fault
// injector, with the reopen probe's backoff shrunk so recovery happens
// within a test's patience.
func faultyDurable(t *testing.T, ffs *vfs.FaultFS, dir string) func(*Config) {
	t.Helper()
	return func(cfg *Config) {
		cfg.Durability = &wal.Options{Dir: dir, Policy: wal.SyncAlways, FS: ffs}
		cfg.ReopenProbeMin = 2 * time.Millisecond
		cfg.ReopenProbeMax = 20 * time.Millisecond
	}
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// waitWritable polls the mutation path until it accepts again (the reopen
// probe runs on its own goroutine) and returns the successful response body.
func waitWritable(t *testing.T, s *Server, body string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		w, resp := do(t, s, "POST", "/v1/admin/insert", body)
		if w.Code == 200 {
			return resp
		}
		if w.Code != 503 {
			t.Fatalf("mutation while recovering = %d %v, want 200 or 503", w.Code, resp)
		}
		if time.Now().After(deadline) {
			t.Fatalf("mutation path never recovered: last %d %v", w.Code, resp)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDegradedModeRefusesMutationsAndProbeRecovers is the end-to-end
// degraded-mode contract: a disk fault flips the server read-only (mutations
// and reloads answer 503 + Retry-After, queries and readiness keep serving,
// the flight ledger records "readonly"), and once the disk recovers the
// probe returns the server to writable with no operator action.
func TestDegradedModeRefusesMutationsAndProbeRecovers(t *testing.T) {
	// An unlimited fsync-failure rule on segment files: while armed, appends
	// degrade the log and the reopen probe's own repair fsync fails too, so
	// the server verifiably STAYS degraded until the window closes.
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Rule{Op: vfs.OpSync, Path: "wal-", Fault: vfs.FaultSyncFail})
	ffs.SetArmed(false)
	s := newTestServer(t, faultyDurable(t, ffs, t.TempDir()))
	defer shutdownServer(t, s)

	w, body := do(t, s, "POST", "/v1/admin/insert", `{"id":910001,"point":[480,520]}`)
	if w.Code != 200 {
		t.Fatalf("healthy insert = %d %v", w.Code, body)
	}

	ffs.SetArmed(true)
	w, body = do(t, s, "POST", "/v1/admin/insert", `{"id":910002,"point":[100,200]}`)
	if w.Code != 503 {
		t.Fatalf("degraded insert = %d %v, want 503", w.Code, body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("degraded insert carries no Retry-After header")
	}
	if body["reason"] != "storage_degraded" {
		t.Errorf("degraded insert reason = %v, want storage_degraded", body["reason"])
	}
	if _, ok := s.Snapshot().Customer(910002); ok {
		t.Error("refused insert leaked into the serving snapshot")
	}

	// Sticky: the next mutation is refused by the parked log without touching
	// the disk again, and a reload is refused the same way (its checkpoint
	// cannot run on an IO-degraded log).
	w, _ = do(t, s, "POST", "/v1/admin/delete", `{"id":910001}`)
	if w.Code != 503 {
		t.Fatalf("second mutation while degraded = %d, want 503", w.Code)
	}
	w, body = do(t, s, "POST", "/v1/admin/reload",
		`{"generate":{"kind":"UN","n":50,"dims":2,"seed":9}}`)
	if w.Code != 503 {
		t.Fatalf("reload while degraded = %d %v, want 503", w.Code, body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("degraded reload carries no Retry-After header")
	}

	// Queries and readiness keep serving; the status surface tells the truth.
	w, body = do(t, s, "POST", "/v1/rskyline", `{"q":[480,520]}`)
	if w.Code != 200 {
		t.Fatalf("query while degraded = %d %v, want 200", w.Code, body)
	}
	w, body = do(t, s, "GET", "/v1/readyz", "")
	if w.Code != 200 || body["ready"] != true {
		t.Fatalf("readyz while degraded = %d %v, want ready", w.Code, body)
	}
	if body["storage"] != "degraded (io)" {
		t.Errorf("readyz storage = %v, want %q", body["storage"], "degraded (io)")
	}
	_, body = do(t, s, "GET", "/v1/admin/status", "")
	storage, _ := body["storage"].(map[string]any)
	if storage == nil || storage["reason"] != "io" {
		t.Errorf("status storage = %v, want reason io", body["storage"])
	}

	// The refusals land in the flight ledger as "readonly", distinguishable
	// from overload sheds and crashes.
	readonly := 0
	for _, rec := range s.FlightRecorder().Recent(0) {
		if rec.Outcome == flight.OutcomeReadOnly {
			readonly++
		}
	}
	if readonly < 2 {
		t.Errorf("flight ledger has %d readonly outcomes, want >= 2", readonly)
	}

	// Disk recovers: the probe re-arms the WAL and the server goes writable
	// again on its own.
	ffs.SetArmed(false)
	s.noteStorageFault()
	waitWritable(t, s, `{"id":910002,"point":[100,200]}`)
	if _, ok := s.Snapshot().Customer(910002); !ok {
		t.Error("post-recovery insert not serving")
	}
	_, body = do(t, s, "GET", "/v1/readyz", "")
	if body["storage"] != "ok" {
		t.Errorf("readyz storage after recovery = %v, want ok", body["storage"])
	}
	if s.metrics.ReopenProbes.Value() == 0 {
		t.Error("recovery happened but no reopen probe was counted")
	}
}

// TestPendingPublishClearsViaProbe covers clear path A of the old
// mutation-path poisoning: a mutation that was durably logged but whose
// snapshot publish failed parks the server in "degraded (publish)" — further
// mutations refuse so WAL order and publish order cannot diverge — and the
// probe republishes the logged item set, reopening the path automatically.
func TestPendingPublishClearsViaProbe(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.OS)
	ffs.SetArmed(false)
	s := newTestServer(t, faultyDurable(t, ffs, t.TempDir()))
	defer shutdownServer(t, s)

	// Inject the poisoned state directly: the logged set = serving set plus
	// one item that never made it into a snapshot. (Forcing snapshotFromItems
	// itself to fail would need an engine fault; the state machine downstream
	// of the failure is what this test pins.)
	snap := s.Snapshot()
	items := append(append([]repro.Item{}, snap.Items...),
		repro.Item{ID: 920001, Point: repro.NewPoint(111, 222)})
	seq, err := s.wal.Append(wal.OpInsert, repro.Item{ID: 920001, Point: repro.NewPoint(111, 222)})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	s.mutMu.Lock()
	s.pendingPub = &pendingPublish{items: items, seq: seq, name: snap.Name}
	s.updateStorageLocked()
	s.mutMu.Unlock()

	w, body := do(t, s, "POST", "/v1/admin/insert", `{"id":920002,"point":[50,60]}`)
	if w.Code != 503 {
		t.Fatalf("insert with pending publish = %d %v, want 503", w.Code, body)
	}
	if body["reason"] != "storage_degraded" {
		t.Errorf("refusal reason = %v, want storage_degraded", body["reason"])
	}
	_, body = do(t, s, "GET", "/v1/readyz", "")
	if body["storage"] != "degraded (publish)" {
		t.Errorf("readyz storage = %v, want %q", body["storage"], "degraded (publish)")
	}

	// The probe retries the publish: the pending item set becomes the serving
	// snapshot and the mutation path reopens.
	s.noteStorageFault()
	waitWritable(t, s, `{"id":920002,"point":[50,60]}`)
	if _, ok := s.Snapshot().Customer(920001); !ok {
		t.Error("pending item not serving after the probe's republish")
	}
	if _, ok := s.Snapshot().Customer(920002); !ok {
		t.Error("post-recovery insert not serving")
	}
	s.mutMu.Lock()
	pending := s.pendingPub
	s.mutMu.Unlock()
	if pending != nil {
		t.Error("pendingPub still set after successful republish")
	}
}

// TestPendingPublishClearsViaReload covers clear path B: an operator reload
// supersedes the pending mutation — the reload's checkpoint starts a new
// durability epoch, so the logged-but-unpublished record is deliberately
// retired and the mutation path reopens immediately.
func TestPendingPublishClearsViaReload(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.OS)
	ffs.SetArmed(false)
	s := newTestServer(t, faultyDurable(t, ffs, t.TempDir()))
	defer shutdownServer(t, s)

	snap := s.Snapshot()
	items := append(append([]repro.Item{}, snap.Items...),
		repro.Item{ID: 930001, Point: repro.NewPoint(1, 2)})
	seq, err := s.wal.Append(wal.OpInsert, repro.Item{ID: 930001, Point: repro.NewPoint(1, 2)})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	s.mutMu.Lock()
	s.pendingPub = &pendingPublish{items: items, seq: seq, name: snap.Name}
	s.updateStorageLocked()
	s.mutMu.Unlock()

	if w, _ := do(t, s, "POST", "/v1/admin/insert", `{"id":930002,"point":[3,4]}`); w.Code != 503 {
		t.Fatalf("insert with pending publish = %d, want 503", w.Code)
	}

	w, body := do(t, s, "POST", "/v1/admin/reload",
		`{"generate":{"kind":"UN","n":80,"dims":2,"seed":11}}`)
	if w.Code != 200 {
		t.Fatalf("reload with pending publish = %d %v, want 200", w.Code, body)
	}
	s.mutMu.Lock()
	pending := s.pendingPub
	s.mutMu.Unlock()
	if pending != nil {
		t.Error("pendingPub survived the reload that superseded it")
	}
	_, body = do(t, s, "GET", "/v1/readyz", "")
	if body["storage"] != "ok" {
		t.Errorf("readyz storage after reload = %v, want ok", body["storage"])
	}
	if w, body := do(t, s, "POST", "/v1/admin/insert", `{"id":930002,"point":[3,4]}`); w.Code != 200 {
		t.Fatalf("insert after reload = %d %v, want 200", w.Code, body)
	}
}

// TestServerScrubQuarantinesRotAndStatusReports drives the server-level
// scrubber entry point over injected media rot: the scrub finds the damage,
// salvages via the wired checkpoint, quarantines the rotten segment, the
// server stays writable throughout, and the status surface reports the pass.
func TestServerScrubQuarantinesRotAndStatusReports(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS)
	ffs.SetArmed(false)
	s := newTestServer(t, func(cfg *Config) {
		cfg.Durability = &wal.Options{Dir: dir, Policy: wal.SyncAlways, FS: ffs, SegmentBytes: 256}
		cfg.ReopenProbeMin = 2 * time.Millisecond
		cfg.ReopenProbeMax = 20 * time.Millisecond
	})
	defer shutdownServer(t, s)

	// Enough mutations to seal at least one segment behind the active one.
	for i := 0; i < 8; i++ {
		body := fmt.Sprintf(`{"id":%d,"point":[10,20]}`, 940000+i)
		if w, resp := do(t, s, "POST", "/v1/admin/insert", body); w.Code != 200 {
			t.Fatalf("insert %d = %d %v", i, w.Code, resp)
		}
	}
	segs := walFilesWithPrefix(t, dir, "wal-")
	if len(segs) < 2 {
		t.Fatalf("workload sealed no segment: %v", segs)
	}
	flipFileBit(t, filepath.Join(dir, segs[0]))

	rep, err := s.RunScrub()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Corruptions != 1 || rep.Quarantined != 1 {
		t.Fatalf("scrub report %+v, want 1 corruption quarantined", rep)
	}
	if s.storageState().Degraded {
		t.Fatalf("server degraded after salvageable rot: %+v", s.storageState())
	}
	_, body := do(t, s, "GET", "/v1/admin/status", "")
	storage, _ := body["storage"].(map[string]any)
	if storage == nil || storage["last_scrub"] == nil {
		t.Errorf("status storage has no last_scrub: %v", body["storage"])
	}
	if w, resp := do(t, s, "POST", "/v1/admin/insert", `{"id":940100,"point":[30,40]}`); w.Code != 200 {
		t.Fatalf("insert after scrub = %d %v", w.Code, resp)
	}
}

// walFilesWithPrefix lists base names in dir starting with prefix, sorted.
func walFilesWithPrefix(t *testing.T, dir, prefix string) []string {
	t.Helper()
	ents, err := vfs.OS.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), prefix) && !strings.HasSuffix(e.Name(), ".quarantined") {
			out = append(out, e.Name())
		}
	}
	return out
}

// flipFileBit flips one bit in the middle of the file at path.
func flipFileBit(t *testing.T, path string) {
	t.Helper()
	buf, err := vfs.OS.ReadFile(path)
	if err != nil || len(buf) == 0 {
		t.Fatalf("read %s: %v (len %d)", path, err, len(buf))
	}
	buf[len(buf)/2] ^= 1
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}
