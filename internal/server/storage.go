package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro"
	"repro/internal/obs/flight"
	"repro/internal/wal"
)

// Storage degraded mode: the serving-layer half of the WAL's fault story.
//
// When the disk misbehaves — an append EIO, a failed fsync, ENOSPC during
// rotation, scrubber-detected rot — the WAL parks itself with a typed
// StorageError and the server flips to read-only: mutation and reload
// requests answer 503 with an honest Retry-After while queries keep serving
// the last published snapshot. A supervised probe (capped exponential
// backoff) retries wal.Reopen until the disk recovers, then republishes any
// mutation that was durably logged but never made it into a snapshot — the
// same pending-publish state that used to permanently poison the mutation
// path — and the server returns to writable with no operator action.

// errStorageDegraded marks a mutation/admin request refused because the WAL
// is degraded. finishRecord maps it to the "readonly" flight outcome.
var errStorageDegraded = errors.New("storage degraded")

// errWALClosed marks a mutation refused because the log is already closed
// (shutdown path).
var errWALClosed = errors.New("write-ahead log is closed")

// pendingPublish holds a durably-logged mutation whose snapshot failed to
// build: serving state lags the WAL by exactly this item set. The probe
// retries the publish; until it succeeds further mutations are refused so
// WAL order and publish order cannot diverge.
type pendingPublish struct {
	items []repro.Item
	seq   uint64 // WAL seq of the logged-but-unpublished mutation
	name  string // dataset name for the rebuilt snapshot
}

// storageState is the lock-free health summary readyz/status read.
type storageState struct {
	Degraded bool
	Reason   string // "io", "corruption" or "publish"
	Detail   string
}

func (st storageState) String() string {
	if !st.Degraded {
		return "ok"
	}
	return fmt.Sprintf("degraded (%s)", st.Reason)
}

// updateStorageLocked recomputes the degraded condition, publishes it to the
// lock-free state and the storage_degraded gauge family. Called under mutMu
// by every site that can change the condition.
func (s *Server) updateStorageLocked() {
	var st storageState
	if s.wal != nil {
		if se := s.wal.Failed(); se != nil {
			st = storageState{Degraded: true, Reason: se.Kind.String(), Detail: se.Error()}
		}
	}
	if !st.Degraded && s.pendingPub != nil {
		st = storageState{Degraded: true, Reason: "publish",
			Detail: fmt.Sprintf("wal seq %d logged but not yet published", s.pendingPub.seq)}
	}
	s.storageSt.Store(st)
	for _, reason := range []string{"io", "corruption", "publish"} {
		v := 0.0
		if st.Degraded && st.Reason == reason {
			v = 1
		}
		s.metrics.StorageDegraded.With(reason).Set(v)
	}
}

// storageState returns the current health summary without taking locks.
func (s *Server) storageState() storageState {
	st, _ := s.storageSt.Load().(storageState)
	return st
}

// noteStorageFault kicks the reopen probe. Safe from any goroutine; a probe
// already pending absorbs the signal.
func (s *Server) noteStorageFault() {
	if s.storageNotify == nil {
		return
	}
	select {
	case s.storageNotify <- struct{}{}:
	default:
	}
}

// storageRetryAfter is the Retry-After the read-only refusals advertise: the
// probe's backoff cap, the longest a recovered disk goes unnoticed.
func (s *Server) storageRetryAfter() time.Duration {
	d := s.cfg.ReopenProbeMax
	if d < time.Second {
		d = time.Second
	}
	return d
}

// writeStorageUnavailable answers a mutation/admin request refused by the
// degraded state: 503 with Retry-After, distinguishable from overload sheds.
func (s *Server) writeStorageUnavailable(w http.ResponseWriter, msg string) {
	retry := int((s.storageRetryAfter() + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":         msg,
		"reason":        "storage_degraded",
		"retry_after_s": retry,
	})
}

// storageProbeLoop is the supervisor: woken by noteStorageFault, it retries
// repair with capped exponential backoff until the server is healthy again,
// then sleeps until the next fault.
func (s *Server) storageProbeLoop() {
	minDelay, maxDelay := s.cfg.ReopenProbeMin, s.cfg.ReopenProbeMax
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-s.storageNotify:
		}
		delay := minDelay
		for !s.storageProbeOnce() {
			select {
			case <-s.baseCtx.Done():
				return
			case <-time.After(delay):
			}
			delay *= 2
			if delay > maxDelay {
				delay = maxDelay
			}
		}
	}
}

// storageProbeOnce attempts one full repair pass and reports whether the
// server is healthy afterwards: re-arm the WAL if degraded (for corruption,
// checkpoint first so the salvage has a covering snapshot to quarantine
// against), then retry any pending publish.
func (s *Server) storageProbeOnce() bool {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	if s.walClosed {
		s.updateStorageLocked()
		return true
	}
	healthy := true
	if s.wal != nil {
		if se := s.wal.Failed(); se != nil {
			s.metrics.ReopenProbes.Inc()
			if se.Kind == wal.KindCorruption {
				// Best effort: a fresh snapshot of the correct live state is
				// what lets Reopen quarantine the rotten file. Reopen decides
				// whether coverage is now sufficient.
				_ = s.wal.Checkpoint(s.checkpointItemsLocked(), s.wal.LastSeq())
			}
			if err := s.wal.Reopen(); err != nil {
				healthy = false
			}
		}
	}
	if healthy && s.pendingPub != nil {
		// The WAL is fine (or absent); what lags is the serving snapshot.
		// Rebuild it from the logged item set — success realigns publish
		// order with WAL order, preserving the no-divergence guarantee.
		snap, err := snapshotFromItems(context.Background(), s.pendingPub.items,
			s.pendingPub.name, false, 0, s.dbOptions())
		if err != nil {
			healthy = false
		} else {
			s.publishLocked(snap)
			s.metrics.Mutations.Inc()
			s.pendingPub = nil
		}
	}
	s.updateStorageLocked()
	return healthy
}

// checkpointItemsLocked is the item set a salvage checkpoint must persist:
// the pending (logged-but-unpublished) set when one exists — checkpointing
// the stale serving set at LastSeq would silently discard the pending
// record — otherwise the serving snapshot's items.
func (s *Server) checkpointItemsLocked() []repro.Item {
	if s.pendingPub != nil {
		return s.pendingPub.items
	}
	if snap := s.snap.Load(); snap != nil {
		return snap.Items
	}
	return nil
}

// scrubLoop runs the background integrity scrubber at the configured period.
func (s *Server) scrubLoop() {
	t := time.NewTicker(s.cfg.ScrubEvery)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
		}
		_, _ = s.RunScrub()
	}
}

// RunScrub executes one WAL integrity-scrub pass (rate-limited, salvage
// escalation wired to a checkpoint of the live state) and records it in the
// flight ledger under op "scrub". Exposed for the chaos harness and tests;
// the background loop calls it on its ticker.
func (s *Server) RunScrub() (wal.ScrubReport, error) {
	if s.wal == nil {
		return wal.ScrubReport{}, errors.New("server: no write-ahead log")
	}
	var act *flight.Active
	if s.flight != nil {
		act = s.flight.Begin("scrub", "background", "", 0)
		act.SetAdmission("bypass")
	}
	rep, err := s.wal.Scrub(wal.ScrubConfig{
		BytesPerSec: s.cfg.ScrubBytesPerSec,
		Checkpoint: func() error {
			s.mutMu.Lock()
			defer s.mutMu.Unlock()
			return s.wal.Checkpoint(s.checkpointItemsLocked(), s.wal.LastSeq())
		},
	})
	s.lastScrub.Store(&rep)
	if act != nil {
		outcome, msg := flight.OutcomeOK, ""
		if err != nil {
			outcome, msg = flight.OutcomeError, err.Error()
		}
		act.Finish(outcome, msg)
	}
	if rep.Degraded || err != nil {
		s.mutMu.Lock()
		s.updateStorageLocked()
		s.mutMu.Unlock()
		s.noteStorageFault()
	}
	return rep, err
}
