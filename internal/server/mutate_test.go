package server

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/wal"
)

// TestMutationEndpoints drives insert/delete happy paths and rejections on a
// memory-only server (no WAL): mutations still publish new snapshots, they
// are just not durable.
func TestMutationEndpoints(t *testing.T) {
	s := newTestServer(t, nil)
	seq0 := s.Snapshot().Seq

	t.Run("insert", func(t *testing.T) {
		w, body := do(t, s, "POST", "/v1/admin/insert", `{"id":900001,"point":[480,520]}`)
		if w.Code != 200 {
			t.Fatalf("insert = %d %v", w.Code, body)
		}
		if int(body["items"].(float64)) != testDatasetN+1 {
			t.Fatalf("items = %v, want %d", body["items"], testDatasetN+1)
		}
		snap := s.Snapshot()
		if snap.Seq <= seq0 {
			t.Fatalf("snapshot seq %d not advanced past %d", snap.Seq, seq0)
		}
		if _, ok := snap.Customer(900001); !ok {
			t.Fatal("inserted item not in the serving snapshot")
		}
	})
	t.Run("insert duplicate", func(t *testing.T) {
		w, _ := do(t, s, "POST", "/v1/admin/insert", `{"id":900001,"point":[1,2]}`)
		if w.Code != 409 {
			t.Fatalf("duplicate insert = %d, want 409", w.Code)
		}
	})
	t.Run("insert wrong dims", func(t *testing.T) {
		w, _ := do(t, s, "POST", "/v1/admin/insert", `{"id":900002,"point":[1,2,3]}`)
		if w.Code != 400 {
			t.Fatalf("wrong-dims insert = %d, want 400", w.Code)
		}
	})
	t.Run("delete", func(t *testing.T) {
		w, body := do(t, s, "POST", "/v1/admin/delete", `{"id":900001}`)
		if w.Code != 200 {
			t.Fatalf("delete = %d %v", w.Code, body)
		}
		if _, ok := s.Snapshot().Customer(900001); ok {
			t.Fatal("deleted item still in the serving snapshot")
		}
	})
	t.Run("delete absent", func(t *testing.T) {
		w, _ := do(t, s, "POST", "/v1/admin/delete", `{"id":900001}`)
		if w.Code != 404 {
			t.Fatalf("absent delete = %d, want 404", w.Code)
		}
	})
	t.Run("delete wrong position", func(t *testing.T) {
		it := s.Snapshot().Items[0]
		w, _ := do(t, s, "POST", "/v1/admin/delete",
			fmt.Sprintf(`{"id":%d,"point":[%g,%g]}`, it.ID, it.Point[0]+1, it.Point[1]))
		if w.Code != 409 {
			t.Fatalf("wrong-position delete = %d, want 409", w.Code)
		}
	})
	t.Run("queries still answer", func(t *testing.T) {
		w, body := do(t, s, "POST", "/v1/rskyline", `{"q":[480,520]}`)
		if w.Code != 200 {
			t.Fatalf("rskyline after mutations = %d %v", w.Code, body)
		}
	})
}

// TestDurableMutationsSurviveRestart is the server-level recovery test: boot
// a durable server, mutate, shut down, boot a second server over the same WAL
// directory and base dataset, and assert the mutations are serving again.
func TestDurableMutationsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	durable := func(cfg *Config) {
		cfg.Durability = &wal.Options{Dir: dir, Policy: wal.SyncAlways}
	}

	s := newTestServer(t, durable)
	if w, body := do(t, s, "POST", "/v1/admin/insert", `{"id":900100,"point":[11,12]}`); w.Code != 200 {
		t.Fatalf("insert = %d %v", w.Code, body)
	} else if body["wal_seq"].(float64) != 1 {
		t.Fatalf("wal_seq = %v, want 1", body["wal_seq"])
	}
	victim := s.Snapshot().Items[0]
	if w, body := do(t, s, "POST", "/v1/admin/delete", fmt.Sprintf(`{"id":%d}`, victim.ID)); w.Code != 200 {
		t.Fatalf("delete = %d %v", w.Code, body)
	}
	// Shutdown (no listener attached) flushes and checkpoints the WAL.
	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	s2 := newTestServer(t, durable)
	defer func() {
		ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelCtx()
		_ = s2.Shutdown(ctx)
	}()
	snap := s2.Snapshot()
	if _, ok := snap.Customer(900100); !ok {
		t.Fatal("insert lost across restart")
	}
	if _, ok := snap.Customer(victim.ID); ok {
		t.Fatal("delete lost across restart")
	}
	if len(snap.Items) != testDatasetN {
		t.Fatalf("recovered %d items, want %d", len(snap.Items), testDatasetN)
	}
	// The clean shutdown checkpointed: recovery replayed an empty tail.
	if got := len(s2.walRec.Tail); got != 0 {
		t.Fatalf("recovery replayed %d records, want 0 after a checkpointing shutdown", got)
	}
	if !s2.walRec.HaveSnapshot {
		t.Fatal("recovery found no snapshot after a checkpointing shutdown")
	}
	// Mutations after recovery continue the sequence.
	if w, body := do(t, s2, "POST", "/v1/admin/insert", `{"id":900101,"point":[13,14]}`); w.Code != 200 {
		t.Fatalf("post-recovery insert = %d %v", w.Code, body)
	} else if body["wal_seq"].(float64) != 3 {
		t.Fatalf("post-recovery wal_seq = %v, want 3", body["wal_seq"])
	}
}

// TestRefusedLastItemDeleteLeavesNoWALRecord: a 409-refused delete must leave
// no durable trace. If it were logged, a crash-recovery replay would either
// yield an empty dataset that cannot boot, or silently apply a delete the
// client was told failed.
func TestRefusedLastItemDeleteLeavesNoWALRecord(t *testing.T) {
	dir := t.TempDir()
	oneItem := func(cfg *Config) {
		cfg.Dataset.Generate = &GenerateSpec{Kind: "UN", N: 1, Dims: 2, Seed: 3}
		cfg.Durability = &wal.Options{Dir: dir, Policy: wal.SyncAlways}
	}

	s := newTestServer(t, oneItem)
	id := s.Snapshot().Items[0].ID
	if w, _ := do(t, s, "POST", "/v1/admin/delete", fmt.Sprintf(`{"id":%d}`, id)); w.Code != 409 {
		t.Fatalf("last-item delete = %d, want 409", w.Code)
	}
	if got := s.wal.LastSeq(); got != 0 {
		t.Fatalf("refused delete was logged: wal LastSeq = %d, want 0", got)
	}

	// Crash-style restart: abandon s without the shutdown checkpoint and boot
	// over the raw log. Had the refused delete been logged, replay would
	// produce an empty dataset and recovery would refuse to start.
	s2 := newTestServer(t, oneItem)
	defer func() {
		ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelCtx()
		_ = s2.Shutdown(ctx)
	}()
	if got := len(s2.Snapshot().Items); got != 1 {
		t.Fatalf("recovered %d items, want 1", got)
	}
}

// TestReloadStartsNewDurabilityEpoch: a reload checkpoints the new dataset,
// so a restart recovers the reloaded dataset — not the boot dataset plus the
// pre-reload mutations.
func TestReloadStartsNewDurabilityEpoch(t *testing.T) {
	dir := t.TempDir()
	durable := func(cfg *Config) {
		cfg.Durability = &wal.Options{Dir: dir, Policy: wal.SyncAlways}
	}

	s := newTestServer(t, durable)
	if w, body := do(t, s, "POST", "/v1/admin/insert", `{"id":900200,"point":[1,2]}`); w.Code != 200 {
		t.Fatalf("insert = %d %v", w.Code, body)
	}
	w, body := do(t, s, "POST", "/v1/admin/reload",
		`{"generate":{"kind":"UN","n":50,"dims":2,"seed":11}}`)
	if w.Code != 200 {
		t.Fatalf("reload = %d %v", w.Code, body)
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	s2 := newTestServer(t, durable)
	defer func() {
		ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelCtx()
		_ = s2.Shutdown(ctx)
	}()
	snap := s2.Snapshot()
	if len(snap.Items) != 50 {
		t.Fatalf("recovered %d items, want the reloaded 50", len(snap.Items))
	}
	if _, ok := snap.Customer(900200); ok {
		t.Fatal("pre-reload mutation resurrected after restart — reload must supersede it")
	}
}

// TestMutationsRefusedWhileDraining: the mutation path checks drain state
// before touching the WAL.
func TestMutationsRefusedWhileDraining(t *testing.T) {
	s := newTestServer(t, nil)
	s.BeginDrain()
	if w, _ := do(t, s, "POST", "/v1/admin/insert", `{"id":1,"point":[1,2]}`); w.Code != 503 {
		t.Fatalf("insert while draining = %d, want 503", w.Code)
	}
	if w, _ := do(t, s, "POST", "/v1/admin/delete", `{"id":1}`); w.Code != 503 {
		t.Fatalf("delete while draining = %d, want 503", w.Code)
	}
}
