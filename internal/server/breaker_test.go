package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

var errBoom = errors.New("boom")

// mockClock drives obs.Now deterministically for the breaker's open-period
// timing.
func mockClock(t *testing.T) *int64 {
	t.Helper()
	now := new(int64)
	restore := obs.SetClockForTest(func() int64 { return *now })
	t.Cleanup(restore)
	return now
}

// TestBreakerConsecutiveTrip: N consecutive failures open the breaker; the
// open breaker vetoes until the open period elapses, then half-open probes
// re-close it.
func TestBreakerConsecutiveTrip(t *testing.T) {
	now := mockClock(t)
	b := NewBreaker("exact", BreakerConfig{
		ConsecutiveFailures: 3,
		OpenFor:             time.Second,
		HalfOpenSuccesses:   2,
		// Window conditions sized to not interfere with the consecutive rule.
		Window: 64, MinSamples: 64,
	}, nil)

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker vetoed request %d", i)
		}
		b.Record(errBoom)
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request before the open period elapsed")
	}

	// Open period elapses: exactly one probe gets through.
	*now += int64(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not half-open after the open period")
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}

	// Two successful probes close it.
	b.Record(nil)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the second probe")
	}
	b.Record(nil)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after probe successes = %v, want closed", got)
	}
	st := b.Status()
	if st.Trips != 1 || st.Recloses != 1 {
		t.Fatalf("trips/recloses = %d/%d, want 1/1", st.Trips, st.Recloses)
	}
}

// TestBreakerFailureRateTrip: interleaved failures below the consecutive
// threshold still trip once the windowed failure rate crosses the bar.
func TestBreakerFailureRateTrip(t *testing.T) {
	mockClock(t)
	b := NewBreaker("exact", BreakerConfig{
		Window:              8,
		MinSamples:          8,
		FailureRate:         0.5,
		ConsecutiveFailures: 100, // out of reach
		OpenFor:             time.Second,
	}, nil)
	// Alternate success/failure: rate stays at 50%, trips exactly when the
	// window has MinSamples outcomes.
	outcomes := []error{nil, errBoom, nil, errBoom, nil, errBoom, nil, errBoom}
	for i, out := range outcomes {
		if !b.Allow() {
			t.Fatalf("vetoed at outcome %d before the window filled", i)
		}
		b.Record(out)
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after 50%% failures over a full window = %v, want open", got)
	}
}

// TestBreakerHalfOpenFailureReopens: a failed probe sends the breaker
// straight back to open with a fresh open period.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	now := mockClock(t)
	b := NewBreaker("exact", BreakerConfig{
		ConsecutiveFailures: 1,
		OpenFor:             time.Second,
		Window:              8, MinSamples: 8,
	}, nil)
	b.Allow()
	b.Record(errBoom) // trip
	*now += int64(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after open period")
	}
	b.Record(errBoom) // failed probe
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The open period restarted: half a period in, still vetoed.
	*now += int64(time.Second / 2)
	if b.Allow() {
		t.Fatal("breaker half-opened before the restarted open period elapsed")
	}
}

// TestBreakerSetGatesRungs: the set implements engine.RungGate — exact and
// approx are gated independently, MWP is always allowed.
func TestBreakerSetGatesRungs(t *testing.T) {
	mockClock(t)
	s := NewBreakerSet(BreakerConfig{ConsecutiveFailures: 2, OpenFor: time.Second, Window: 8, MinSamples: 8}, nil)
	var _ engine.RungGate = s

	for i := 0; i < 2; i++ {
		if !s.Allow(engine.RungExact) {
			t.Fatalf("exact vetoed at %d", i)
		}
		s.Record(engine.RungExact, errBoom)
	}
	if s.Allow(engine.RungExact) {
		t.Fatal("exact breaker should be open")
	}
	if !s.Allow(engine.RungApprox) {
		t.Fatal("approx breaker tripped by exact failures")
	}
	// MWP is the ladder floor: never vetoed, and failures recorded against it
	// are ignored.
	for i := 0; i < 10; i++ {
		if !s.Allow(engine.RungMWP) {
			t.Fatal("MWP rung vetoed")
		}
		s.Record(engine.RungMWP, errBoom)
	}
	if st := s.Status()["exact"]; st.State != "open" {
		t.Fatalf("status[exact] = %+v, want open", st)
	}
}

// TestRunnerWithBreaker: end-to-end through the engine — a gate that vetoes
// the exact rung degrades the answer to MWP with reason "skipped".
func TestRunnerWithBreaker(t *testing.T) {
	mockClock(t)
	db, items := testDB(t, 64)
	set := NewBreakerSet(BreakerConfig{ConsecutiveFailures: 1, OpenFor: time.Hour, Window: 8, MinSamples: 8}, nil)
	// Trip the exact breaker by hand.
	set.exact.Allow()
	set.exact.Record(errBoom)

	runner := engine.NewRunner(db.Engine(), engine.Config{Degrade: true, Gate: set})
	q, ct, rsl := testQuery(t, db, items)
	ans, err := runner.MWQ(context.Background(), ct, q, rsl)
	if err != nil {
		t.Fatalf("MWQ with open exact breaker: %v", err)
	}
	if !ans.Degraded || ans.Rung != engine.RungMWP {
		t.Fatalf("answer = rung %v degraded=%v, want degraded MWP", ans.Rung, ans.Degraded)
	}
}
