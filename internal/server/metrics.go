package server

import "repro/internal/obs"

// Metrics is the serving layer's instrumentation bundle, registered under
// server_* names in one obs.Registry alongside the engine's ladder metrics
// and the process cost counters, so one /metrics scrape tells the whole
// story: offered load, shed load, breaker posture, queue pressure, drain
// state.
type Metrics struct {
	Reg *obs.Registry

	// Requests counts accepted HTTP requests by endpoint.
	Requests *obs.LabeledCounter
	// Responses counts terminal responses by status code.
	Responses *obs.LabeledCounter
	// RequestDur observes end-to-end request latency (admission wait
	// included) for the query endpoints.
	RequestDur *obs.Histogram
	// Sheds counts load-shedding decisions by reason.
	Sheds *obs.LabeledCounter
	// QueueWait observes the time admitted requests spent queued for a token.
	QueueWait *obs.Histogram
	// BreakerState gauges each rung's breaker state (0 closed, 1 half-open,
	// 2 open).
	BreakerState *obs.LabeledGauge
	// BreakerTransitions counts state changes by "rung:from->to".
	BreakerTransitions *obs.LabeledCounter
	// BreakerVetoes counts rung executions skipped by an open breaker.
	BreakerVetoes *obs.LabeledCounter
	// Panics counts handler panics caught by the isolation middleware
	// (engine panics never reach it — the ladder absorbs those).
	Panics *obs.Counter
	// Reloads counts completed dataset hot-swaps.
	Reloads *obs.Counter
	// Mutations counts acknowledged insert/delete mutations published.
	Mutations *obs.Counter
	// SnapshotSeq gauges the sequence number of the serving snapshot.
	SnapshotSeq *obs.Gauge
	// Draining gauges drain state (0 serving, 1 draining).
	Draining *obs.Gauge
	// StorageDegraded gauges the read-only degraded condition by reason
	// ("io", "corruption", "publish"): at most one reason is 1 at a time.
	StorageDegraded *obs.LabeledGauge
	// ReopenProbes counts supervised WAL reopen attempts (successful or not).
	ReopenProbes *obs.Counter
}

// NewMetrics registers the server metric family in reg and wires the
// admission gauges (queue depth, in-flight, estimated wait) as read-through
// gauges over adm.
func NewMetrics(reg *obs.Registry, adm func() *Admission) *Metrics {
	m := &Metrics{
		Reg: reg,
		Requests: reg.LabeledCounter("server_requests_total",
			"HTTP requests accepted for processing, by endpoint.", "endpoint"),
		Responses: reg.LabeledCounter("server_responses_total",
			"Terminal HTTP responses, by status code.", "code"),
		RequestDur: reg.Histogram("server_request_duration_seconds",
			"End-to-end query request latency including admission wait.", nil),
		Sheds: reg.LabeledCounter("server_shed_total",
			"Requests refused by admission control, by reason.", "reason"),
		QueueWait: reg.Histogram("server_queue_wait_seconds",
			"Time admitted requests spent waiting for an execution token.", nil),
		BreakerState: reg.LabeledGauge("server_breaker_state",
			"Circuit breaker state by rung (0 closed, 1 half-open, 2 open).", "rung"),
		BreakerTransitions: reg.LabeledCounter("server_breaker_transitions_total",
			"Circuit breaker state transitions, by rung:from->to.", "transition"),
		BreakerVetoes: reg.LabeledCounter("server_breaker_vetoes_total",
			"Ladder rung executions skipped by an open breaker, by rung.", "rung"),
		Panics: reg.Counter("server_handler_panics_total",
			"Handler panics caught by the isolation middleware."),
		Reloads: reg.Counter("server_reloads_total",
			"Completed zero-downtime dataset hot-swaps."),
		Mutations: reg.Counter("server_mutations_total",
			"Acknowledged insert/delete mutations published as snapshots."),
		SnapshotSeq: reg.Gauge("server_snapshot_seq",
			"Sequence number of the snapshot currently serving."),
		Draining: reg.Gauge("server_draining",
			"1 while the server is draining (readyz not-ready), else 0."),
		StorageDegraded: reg.LabeledGauge("storage_degraded",
			"1 while storage is degraded for the labelled reason (mutations 503), else 0.", "reason"),
		ReopenProbes: reg.Counter("server_storage_reopen_probes_total",
			"Supervised WAL reopen attempts made by the storage probe."),
	}
	if adm != nil {
		reg.GaugeFunc("server_queue_depth",
			"Requests currently queued for an execution token.",
			func() float64 { return float64(adm().QueueDepth()) })
		reg.GaugeFunc("server_inflight",
			"Requests currently holding an execution token.",
			func() float64 { return float64(adm().InFlight()) })
		reg.GaugeFunc("server_queue_wait_estimate_seconds",
			"Admission controller's current wait estimate for a new arrival.",
			func() float64 { return adm().EstimatedWait().Seconds() })
	}
	return m
}
