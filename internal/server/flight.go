package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// initFlight wires the flight recorder, slow-query log and SLO tracker from
// the config. A negative FlightSize disables the recorder (and with it the
// slow log); SLO tracking is independent and stays on either way.
func (s *Server) initFlight() error {
	s.slo = flight.NewSLOTracker(s.cfg.SLOs, s.cfg.Registry)
	if s.cfg.FlightSize < 0 {
		return nil
	}
	if s.cfg.SlowlogPath != "" {
		sl, err := flight.OpenSlowLog(s.cfg.SlowlogPath, s.cfg.SlowlogMaxBytes)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		s.slowlog = sl
	}
	s.flight = flight.New(flight.Config{
		Size:     s.cfg.FlightSize,
		Latency:  s.metrics.RequestDur,
		Slowlog:  s.slowlog,
		Epoch:    time.Now().Add(-time.Duration(obs.Now())),
		Registry: s.cfg.Registry,
	})
	return nil
}

// FlightRecorder returns the query ledger (nil when disabled) — the chaos
// harness and tests read record accounting through it.
func (s *Server) FlightRecorder() *flight.Ledger { return s.flight }

func (s *Server) closeSlowlog() error {
	if s.slowlog == nil {
		return nil
	}
	if err := s.slowlog.Close(); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return nil
}

// finishRecord closes one query's flight record and feeds the SLO tracker.
// qerr is the query failure the handler saw (nil for shed/validation paths —
// the written HTTP status then classifies the outcome); the response writer
// is the middleware's statusWriter, so the status read here is the one the
// client actually got, even if a deeper layer wrote it.
func (s *Server) finishRecord(act *flight.Active, op string, began int64,
	w http.ResponseWriter, qerr error, snap *Snapshot, cacheBefore [2]uint64) {
	if snap != nil {
		after := cacheCounts(snap)
		act.SetCache(after[0]-cacheBefore[0], after[1]-cacheBefore[1])
	}
	outcome := s.outcomeFor(qerr, statusOf(w))
	msg := ""
	if qerr != nil {
		msg = qerr.Error()
	}
	act.Finish(outcome, msg)
	s.slo.Observe(op, obs.Since(began), sloFailed(outcome))
}

// statusOf reads the response status through the recover middleware's
// statusWriter; 0 means nothing was written yet (treated as OK by
// outcomeFor, which only happens on panic paths that the middleware then
// turns into a 500 — the record still exists either way).
func statusOf(w http.ResponseWriter) int {
	if sw, ok := w.(*statusWriter); ok {
		return sw.status
	}
	return 0
}

// outcomeFor classifies a finished request. The handler's query error wins
// when present (it is the cause); otherwise the written HTTP status is
// mapped back — that covers sheds (429), drain cancellations (503) and
// validation-free success paths uniformly.
func (s *Server) outcomeFor(qerr error, status int) string {
	if qerr != nil {
		var shed *ErrShed
		switch {
		case errors.As(qerr, &shed):
			return flight.OutcomeShed
		case errors.Is(qerr, context.DeadlineExceeded):
			return flight.OutcomeDeadline
		case errors.Is(qerr, context.Canceled):
			if s.draining.Load() {
				return flight.OutcomeUnavailable
			}
			return flight.OutcomeCanceled
		case errors.Is(qerr, engine.ErrRungSkipped):
			return flight.OutcomeUnavailable
		case errors.Is(qerr, errStorageDegraded):
			return flight.OutcomeReadOnly
		case errors.Is(qerr, errWALClosed):
			return flight.OutcomeUnavailable
		default:
			return flight.OutcomeError
		}
	}
	switch {
	case status == 0 || status/100 == 2:
		return flight.OutcomeOK
	case status == http.StatusTooManyRequests:
		return flight.OutcomeShed
	case status == 499:
		return flight.OutcomeCanceled
	case status == http.StatusGatewayTimeout:
		return flight.OutcomeDeadline
	case status == http.StatusServiceUnavailable:
		return flight.OutcomeUnavailable
	default:
		return flight.OutcomeError
	}
}

// sloFailed says which outcomes count against the error budget. Cancellation
// is the client hanging up — their choice, not our failure — and sheds DO
// count: a refused request is still a request the service failed to serve.
func sloFailed(outcome string) bool {
	return outcome != flight.OutcomeOK && outcome != flight.OutcomeCanceled
}

// cacheCounts sums both memoisation caches' hits and misses for per-query
// before/after deltas (exact when requests run serially; an aggregate
// attribution under concurrency, same contract as the obs.Cost deltas).
func cacheCounts(snap *Snapshot) [2]uint64 {
	cs := snap.DB.CacheStats()
	return [2]uint64{cs.DSL.Hits + cs.AntiDDR.Hits, cs.DSL.Misses + cs.AntiDDR.Misses}
}

// handleDebugQueries is the in-flight inspector plus recent-records view:
//
//	GET /v1/debug/queries            JSON, params redacted
//	GET /v1/debug/queries?raw=1      include raw request parameters
//	GET /v1/debug/queries?limit=20   cap the recent list
//	GET /v1/debug/queries?format=text (or Accept: text/plain) human rendering
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		s.writeError(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		limit, _ = strconv.Atoi(v)
	}
	raw := q.Get("raw") == "1"
	inflight := s.flight.InFlight()
	recent := s.flight.Recent(limit)
	if !raw {
		// Raw parameters are data points (query positions, customer IDs);
		// the digest is enough to correlate, so they stay out by default.
		for i := range recent {
			recent[i].Params = ""
		}
	}
	if q.Get("format") == "text" || strings.Contains(r.Header.Get("Accept"), "text/plain") {
		s.writeDebugText(w, inflight, recent)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"in_flight": inflight,
		"recent":    recent,
		"totals":    s.flight.Totals(),
		"redacted":  !raw,
	})
}

func (s *Server) writeDebugText(w http.ResponseWriter, inflight []flight.InFlightInfo, recent []flight.QueryRecord) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "in-flight (%d):\n", len(inflight))
	for _, q := range inflight {
		fmt.Fprintf(w, "  #%-6d %-10s %-6s age=%-10s phase=%s workers=%d\n",
			q.ID, q.Op, q.Source, fmtMS(q.AgeMS), q.Phase, q.Workers)
	}
	fmt.Fprintf(w, "recent (%d, newest first):\n", len(recent))
	for _, rec := range recent {
		line := fmt.Sprintf("  #%-6d %-10s %-12s %-10s adm=%-14s", rec.ID, rec.Op,
			rec.Outcome, fmtMS(rec.DurationMS), rec.Admission)
		if rec.Rung != "" {
			line += " rung=" + rec.Rung
		}
		if rec.Degraded {
			line += " DEGRADED"
		}
		if rec.Sampled {
			line += " sampled=" + rec.SampleReason
		}
		fmt.Fprintln(w, line)
	}
	s.metrics.Responses.With(strconv.Itoa(http.StatusOK)).Inc()
}

func fmtMS(ms float64) string {
	return (time.Duration(ms*1e6) * time.Nanosecond).Round(10 * time.Microsecond).String()
}
