package server

import (
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// BreakerState is the classic three-state circuit breaker automaton.
type BreakerState int32

const (
	// StateClosed: requests flow, outcomes are tallied.
	StateClosed BreakerState = iota
	// StateHalfOpen: the probe window is open — a limited number of trial
	// requests run; success closes the breaker, failure re-opens it.
	StateHalfOpen
	// StateOpen: requests are vetoed without running until the open period
	// elapses.
	StateOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes one circuit breaker. Zero fields get the documented
// defaults.
type BreakerConfig struct {
	// Window is the size of the sliding outcome window used for the
	// failure-rate trip condition. Default: 32.
	Window int
	// MinSamples is the minimum number of outcomes in the window before the
	// failure-rate condition can trip (prevents one early failure from
	// reading as a 100% failure rate). Default: 8.
	MinSamples int
	// FailureRate trips the breaker when the windowed failure fraction
	// reaches it. Default: 0.5.
	FailureRate float64
	// ConsecutiveFailures trips the breaker regardless of rate when this many
	// failures arrive back-to-back. Default: 5.
	ConsecutiveFailures int
	// OpenFor is how long a tripped breaker vetoes requests before letting a
	// probe through (the probe window). Default: 2s.
	OpenFor time.Duration
	// HalfOpenSuccesses is how many consecutive probe successes re-close the
	// breaker. Default: 2.
	HalfOpenSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 2
	}
	return c
}

// Breaker is one circuit breaker: closed → open on failure-rate or
// consecutive-failure tripping, open → half-open after OpenFor, half-open →
// closed after HalfOpenSuccesses probe successes (or straight back to open on
// a probe failure). Time comes from obs.Now, so tests can drive the automaton
// with a mock clock. Safe for concurrent use.
type Breaker struct {
	cfg  BreakerConfig
	name string
	// onTransition, when non-nil, observes every state change (metrics hook).
	// Called with the breaker's lock held — must not call back in.
	onTransition func(name string, from, to BreakerState)

	mu    sync.Mutex
	state BreakerState
	// ring is the sliding outcome window (true = failure).
	ring      []bool
	ringIdx   int
	ringFill  int
	ringFails int
	consec    int
	openedAt  int64 // obs.Now at the transition to open
	probing   int   // probes currently in flight (half-open)
	probeSucc int
	trips     uint64 // transitions into open
	recloses  uint64 // transitions half-open → closed
}

// NewBreaker builds a breaker named name (label for metrics/status).
func NewBreaker(name string, cfg BreakerConfig, onTransition func(name string, from, to BreakerState)) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, name: name, onTransition: onTransition, ring: make([]bool, cfg.Window)}
}

// Allow reports whether a request may proceed through this breaker now. An
// open breaker whose OpenFor period has elapsed transitions to half-open and
// admits the caller as its probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if obs.Now()-b.openedAt < int64(b.cfg.OpenFor) {
			return false
		}
		b.transition(StateHalfOpen)
		b.probing = 1
		b.probeSucc = 0
		return true
	default: // StateHalfOpen
		// One probe at a time: a burst hitting a half-open breaker must not
		// re-stampede the failing rung.
		if b.probing > 0 {
			return false
		}
		b.probing = 1
		return true
	}
}

// Record observes the outcome of a request that was allowed through.
func (b *Breaker) Record(err error) {
	failed := err != nil
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.push(failed)
		if failed {
			b.consec++
		} else {
			b.consec = 0
		}
		if b.consec >= b.cfg.ConsecutiveFailures ||
			(b.ringFill >= b.cfg.MinSamples &&
				float64(b.ringFails) >= b.cfg.FailureRate*float64(b.ringFill)) {
			b.trip()
		}
	case StateHalfOpen:
		if b.probing > 0 {
			b.probing--
		}
		if failed {
			b.trip()
			return
		}
		b.probeSucc++
		if b.probeSucc >= b.cfg.HalfOpenSuccesses {
			b.recloses++
			b.transition(StateClosed)
			b.resetWindow()
		}
	case StateOpen:
		// A request admitted before the trip finished afterwards; its outcome
		// says nothing the trip didn't already.
	}
}

// trip moves to open and starts the open period. Caller holds the lock.
func (b *Breaker) trip() {
	b.trips++
	b.transition(StateOpen)
	b.openedAt = obs.Now()
	b.probing = 0
	b.probeSucc = 0
	b.resetWindow()
}

func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(b.name, from, to)
	}
}

func (b *Breaker) push(failed bool) {
	if b.ringFill == len(b.ring) {
		if b.ring[b.ringIdx] {
			b.ringFails--
		}
	} else {
		b.ringFill++
	}
	b.ring[b.ringIdx] = failed
	if failed {
		b.ringFails++
	}
	b.ringIdx = (b.ringIdx + 1) % len(b.ring)
}

func (b *Breaker) resetWindow() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.ringIdx, b.ringFill, b.ringFails, b.consec = 0, 0, 0, 0
}

// State returns the current automaton state (open may read as open even when
// the next Allow would flip it to half-open; the flip happens on demand).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStatus is a point-in-time snapshot for the status endpoint.
type BreakerStatus struct {
	State          string  `json:"state"`
	Trips          uint64  `json:"trips"`
	Recloses       uint64  `json:"recloses"`
	WindowFailRate float64 `json:"window_fail_rate"`
}

// Status snapshots the breaker.
func (b *Breaker) Status() BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	rate := 0.0
	if b.ringFill > 0 {
		rate = float64(b.ringFails) / float64(b.ringFill)
	}
	return BreakerStatus{
		State:          b.state.String(),
		Trips:          b.trips,
		Recloses:       b.recloses,
		WindowFailRate: rate,
	}
}

// BreakerSet is the per-rung breaker bank wired into the engine's degradation
// ladder as its RungGate. The exact and approximate rungs each get their own
// breaker — a rung the engine keeps failing is skipped for the open period
// and the ladder falls straight through to the next one. The MWP rung is
// deliberately exempt: it is the terminal floor of the ladder, and vetoing it
// would turn a degraded answer into no answer at all.
type BreakerSet struct {
	exact  *Breaker
	approx *Breaker
	m      *Metrics
}

// NewBreakerSet builds the per-rung breakers. m may be nil.
func NewBreakerSet(cfg BreakerConfig, m *Metrics) *BreakerSet {
	onTransition := func(name string, from, to BreakerState) {
		if m == nil {
			return
		}
		m.BreakerState.With(name).Set(float64(to))
		m.BreakerTransitions.With(name + ":" + from.String() + "->" + to.String()).Inc()
	}
	s := &BreakerSet{
		exact:  NewBreaker("exact", cfg, onTransition),
		approx: NewBreaker("approx", cfg, onTransition),
		m:      m,
	}
	if m != nil {
		m.BreakerState.With("exact").Set(float64(StateClosed))
		m.BreakerState.With("approx").Set(float64(StateClosed))
	}
	return s
}

func (s *BreakerSet) breaker(r engine.Rung) *Breaker {
	switch r {
	case engine.RungExact:
		return s.exact
	case engine.RungApprox:
		return s.approx
	}
	return nil
}

// Allow implements engine.RungGate.
func (s *BreakerSet) Allow(r engine.Rung) bool {
	b := s.breaker(r)
	if b == nil {
		return true
	}
	allowed := b.Allow()
	if !allowed && s.m != nil {
		s.m.BreakerVetoes.With(r.String()).Inc()
	}
	return allowed
}

// Record implements engine.RungGate.
func (s *BreakerSet) Record(r engine.Rung, err error) {
	if b := s.breaker(r); b != nil {
		b.Record(err)
	}
}

// Status snapshots every breaker by rung name.
func (s *BreakerSet) Status() map[string]BreakerStatus {
	return map[string]BreakerStatus{
		"exact":  s.exact.Status(),
		"approx": s.approx.Status(),
	}
}
