package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/obs/explain"
)

// Fingerprints returns the server's query-fingerprint regression store —
// tests and the chaos harness read class aggregates through it.
func (s *Server) Fingerprints() *explain.Store { return s.fingerprints }

// handleDebugFingerprints serves the query-fingerprint regression store:
//
//	GET /v1/debug/fingerprints             JSON, busiest class first
//	GET /v1/debug/fingerprints?format=text (or Accept: text/plain)
//
// Each class is one workload shape (op × dims × rung × plan shape) with its
// latency/cost/prune-ratio percentiles, the frozen baseline p95, and the
// drift verdict. The calibration block is the live cost model (ns per work
// unit per pruning rule) the per-node estimates are made from.
func (s *Server) handleDebugFingerprints(w http.ResponseWriter, r *http.Request) {
	classes := s.fingerprints.Snapshot()
	if r.URL.Query().Get("format") == "text" || strings.Contains(r.Header.Get("Accept"), "text/plain") {
		s.writeFingerprintText(w, classes)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"classes":     classes,
		"drifting":    s.fingerprints.Drifting(),
		"overflow":    s.fingerprints.Overflow(),
		"calibration": s.explainModel.Calibration(),
	})
}

func (s *Server) writeFingerprintText(w http.ResponseWriter, classes []explain.ClassSnapshot) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "fingerprint classes (%d, busiest first):\n", len(classes))
	for _, c := range classes {
		line := fmt.Sprintf("  %s %-8s dims=%d n=%-6d p50=%.2fms p95=%.2fms base=%.2fms cost_p95=%.0f prune_p50=%.0f%%",
			c.Fingerprint, c.Op, c.Dims, c.Count,
			c.LatencyP50MS, c.LatencyP95MS, c.BaselineP95MS, c.CostP95, c.PruneRatioP50*100)
		if c.Rung != "" {
			line += " rung=" + c.Rung
		}
		if c.Drifting {
			line += " DRIFTING"
		}
		fmt.Fprintln(w, line)
	}
	s.metrics.Responses.With(strconv.Itoa(http.StatusOK)).Inc()
}
